#ifndef HCPATH_BFS_BFS_H_
#define HCPATH_BFS_BFS_H_

#include <vector>

#include "bfs/distance_map.h"
#include "graph/graph.h"

namespace hcpath {

/// Hop-capped single-source BFS from `source` following `dir` edges.
/// Returns a map holding dist(source, v) for every v with dist <= max_hops
/// (the source itself has distance 0).
VertexDistMap HopCappedBfs(const Graph& g, VertexId source, Hop max_hops,
                           Direction dir);

/// Convenience: dense distance array (kUnreachable beyond the cap). Used by
/// tests and by the KSP baselines, which want O(1) lookups over all of V.
std::vector<Hop> HopCappedBfsDense(const Graph& g, VertexId source,
                                   Hop max_hops, Direction dir);

/// True iff t is reachable from s within max_hops hops.
bool ReachableWithin(const Graph& g, VertexId s, VertexId t, Hop max_hops);

}  // namespace hcpath

#endif  // HCPATH_BFS_BFS_H_
