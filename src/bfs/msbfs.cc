#include "bfs/msbfs.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace hcpath {

namespace {

/// One wave of <= 64 distinct sources.
struct Wave {
  std::vector<VertexId> sources;  // wave-local index -> vertex
  std::vector<Hop> caps;          // wave-local caps (max across duplicates)
  Hop max_cap = 0;
  std::vector<std::vector<size_t>> slot_to_out;  // wave slot -> out indices
};

/// Runs one wave. `per_source` entries referenced through `slot_to_out` are
/// owned exclusively by this wave (waves partition the unique sources), and
/// `min_dist` / the scratch arrays belong to the caller, so concurrent waves
/// never write the same memory. Returns the discovered-entry count.
uint64_t RunWave(const Graph& g, Direction dir, const Wave& wave,
                 std::vector<uint64_t>& seen,
                 std::vector<uint64_t>& next_mask,
                 std::vector<VertexDistMap>& per_source,
                 std::vector<Hop>& min_dist, const std::vector<Hop>& out_caps) {
  const size_t ns = wave.sources.size();
  uint64_t discovered = 0;
  // `seen` and `next_mask` are |V|-sized scratch arrays shared across waves;
  // only words touched in this wave are dirtied, and we reset them via the
  // touched lists below.
  std::vector<VertexId> frontier;
  std::vector<VertexId> touched;  // vertices with nonzero next_mask
  frontier.reserve(ns);

  auto emit = [&](VertexId v, uint64_t mask, Hop dist) {
    while (mask != 0) {
      const int slot = __builtin_ctzll(mask);
      mask &= mask - 1;
      // The wave runs to the max cap of duplicated sources; each output
      // copy only records entries within its own cap. The min-dist array
      // honors the same per-source caps, which makes it a pure function of
      // the (source, cap) multiset — independent of how sources are
      // grouped into waves — so cache-served index builds (which BFS only
      // the missing endpoints) reproduce it exactly (docs/SERVICE.md).
      for (size_t out_idx : wave.slot_to_out[slot]) {
        if (dist <= out_caps[out_idx]) {
          per_source[out_idx].InsertMin(v, dist);
          ++discovered;
          if (dist < min_dist[v]) min_dist[v] = dist;
        }
      }
    }
  };

  for (size_t i = 0; i < ns; ++i) {
    VertexId s = wave.sources[i];
    if ((seen[s] & (1ULL << i)) == 0 && seen[s] == 0) frontier.push_back(s);
    seen[s] |= 1ULL << i;
  }
  // Emit sources at distance 0. A vertex can be the source of several wave
  // slots only if duplicated, which the caller dedups, so emit per slot.
  for (size_t i = 0; i < ns; ++i) {
    emit(wave.sources[i], 1ULL << i, 0);
  }
  // Deduplicate the initial frontier (a vertex may appear once per slot).
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());

  for (Hop level = 0; level < wave.max_cap && !frontier.empty(); ++level) {
    touched.clear();
    for (VertexId u : frontier) {
      const uint64_t umask = seen[u];
      for (VertexId v : g.Neighbors(u, dir)) {
        const uint64_t fresh = umask & ~seen[v];
        if (fresh != 0) {
          if (next_mask[v] == 0) touched.push_back(v);
          next_mask[v] |= fresh;
        }
      }
    }
    frontier.clear();
    for (VertexId v : touched) {
      const uint64_t fresh = next_mask[v] & ~seen[v];
      next_mask[v] = 0;
      if (fresh == 0) continue;
      seen[v] |= fresh;
      emit(v, fresh, static_cast<Hop>(level + 1));
      frontier.push_back(v);
    }
  }

  // Clear `seen` for the next wave: walk all vertices we marked. Rather than
  // tracking every marked vertex, reuse min_dist: any vertex seen in this
  // wave has seen[v] != 0. A full clear is O(|V|) per wave which is fine at
  // our scales and branch-free.
  std::fill(seen.begin(), seen.end(), 0);
  return discovered;
}

}  // namespace

MsBfsResult MultiSourceBfs(const Graph& g,
                           const std::vector<VertexId>& sources,
                           const std::vector<Hop>& caps, Direction dir,
                           ThreadPool* pool) {
  MsBfsResult out;
  MultiSourceBfs(g, sources, caps, dir, pool, nullptr, &out);
  return out;
}

void MultiSourceBfs(const Graph& g, const std::vector<VertexId>& sources,
                    const std::vector<Hop>& caps, Direction dir,
                    ThreadPool* pool, MsBfsScratch* scratch,
                    MsBfsResult* result) {
  HCPATH_CHECK_EQ(sources.size(), caps.size());
  MsBfsResult& out = *result;
  // Recycle whatever map storage the caller's result already holds
  // (BatchContext hands the previous batch's index back in).
  for (VertexDistMap& m : out.per_source) m.ClearKeepCapacity();
  out.per_source.resize(sources.size());
  out.min_dist.assign(g.NumVertices(), kUnreachable);
  out.total_discovered = 0;
  if (sources.empty()) return;
  for (VertexId s : sources) HCPATH_CHECK_LT(s, g.NumVertices());
  // Let every output map switch to its dense backing once it crosses the
  // density threshold (distance_map.h).
  for (VertexDistMap& m : out.per_source) m.SetUniverse(g.NumVertices());

  // Deduplicate (vertex) -> wave slot; a duplicated source shares one slot
  // with the max cap among its occurrences.
  std::unordered_map<VertexId, size_t> slot_of;  // vertex -> global slot id
  std::vector<VertexId> uniq_sources;
  std::vector<Hop> uniq_caps;
  std::vector<std::vector<size_t>> slot_to_out;  // global slot -> out indices
  for (size_t i = 0; i < sources.size(); ++i) {
    auto [it, inserted] = slot_of.try_emplace(sources[i], uniq_sources.size());
    if (inserted) {
      uniq_sources.push_back(sources[i]);
      uniq_caps.push_back(caps[i]);
      slot_to_out.emplace_back();
    } else {
      uniq_caps[it->second] = std::max(uniq_caps[it->second], caps[i]);
    }
    slot_to_out[it->second].push_back(i);
  }

  std::vector<Wave> waves;
  for (size_t base = 0; base < uniq_sources.size(); base += 64) {
    Wave wave;
    const size_t end = std::min(base + 64, uniq_sources.size());
    for (size_t i = base; i < end; ++i) {
      wave.sources.push_back(uniq_sources[i]);
      wave.caps.push_back(uniq_caps[i]);
      wave.max_cap = std::max(wave.max_cap, uniq_caps[i]);
      wave.slot_to_out.push_back(std::move(slot_to_out[i]));
    }
    waves.push_back(std::move(wave));
  }

  // A call-local scratch keeps the scratch-free overloads allocation-
  // compatible with the recycling path; long-lived callers pass their own.
  MsBfsScratch local_scratch;
  MsBfsScratch& sc = scratch != nullptr ? *scratch : local_scratch;

  // Even a 1-worker pool doubles compute: ParallelFor callers work too.
  if (pool != nullptr && waves.size() > 1) {
    // Wave-parallel build: every running wave owns a working set (seen /
    // next_mask / min-dist accumulator) checked out of a free list, so
    // peak memory is O(concurrent tasks * |V|), not O(waves * |V|).
    // Per-source maps are partitioned by wave, and the final
    // elementwise-min merge is order-insensitive, so the result is
    // identical to the sequential build.
    //
    // Retained working sets from a previous call re-enter the free list
    // after a per-call reset: seen/next_mask are left zeroed by RunWave, so
    // only the min-dist accumulator (and a possible graph-size change)
    // needs re-initializing.
    std::mutex scratch_mu;
    std::vector<MsBfsScratch::PerWave*> free_scratch;
    for (auto& s : sc.wave_scratch) {
      s->seen.resize(g.NumVertices(), 0);
      s->next_mask.resize(g.NumVertices(), 0);
      s->min_dist.assign(g.NumVertices(), kUnreachable);
      s->discovered = 0;
      free_scratch.push_back(s.get());
    }
    pool->ParallelFor(waves.size(), [&](size_t w) {
      MsBfsScratch::PerWave* s = nullptr;
      {
        std::lock_guard<std::mutex> lk(scratch_mu);
        if (!free_scratch.empty()) {
          s = free_scratch.back();
          free_scratch.pop_back();
        }
      }
      if (s == nullptr) {
        auto owned = std::make_unique<MsBfsScratch::PerWave>();
        owned->seen.assign(g.NumVertices(), 0);
        owned->next_mask.assign(g.NumVertices(), 0);
        owned->min_dist.assign(g.NumVertices(), kUnreachable);
        s = owned.get();
        std::lock_guard<std::mutex> lk(scratch_mu);
        sc.wave_scratch.push_back(std::move(owned));
      }
      // RunWave leaves seen/next_mask cleared for reuse; min_dist keeps
      // accumulating (elementwise min commutes across waves).
      s->discovered += RunWave(g, dir, waves[w], s->seen, s->next_mask,
                               out.per_source, s->min_dist, caps);
      std::lock_guard<std::mutex> lk(scratch_mu);
      free_scratch.push_back(s);
    });
    for (const auto& s : sc.wave_scratch) {
      out.total_discovered += s->discovered;
      for (size_t v = 0; v < s->min_dist.size(); ++v) {
        if (s->min_dist[v] < out.min_dist[v]) out.min_dist[v] = s->min_dist[v];
      }
    }
  } else {
    sc.seen.assign(g.NumVertices(), 0);
    sc.next_mask.assign(g.NumVertices(), 0);
    for (const Wave& wave : waves) {
      out.total_discovered += RunWave(g, dir, wave, sc.seen, sc.next_mask,
                                      out.per_source, out.min_dist, caps);
    }
  }
}

}  // namespace hcpath
