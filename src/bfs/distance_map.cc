#include "bfs/distance_map.h"

#include <algorithm>

namespace hcpath {

const VertexDistMap::Slot* VertexDistMap::SentinelTable() {
  static const Slot kSentinel[1] = {};
  return kSentinel;
}

VertexDistMap& VertexDistMap::operator=(const VertexDistMap& other) {
  if (this == &other) return *this;
  slots_ = other.slots_;
  size_ = other.size_;
  universe_ = other.universe_;
  dense_bound_ = other.dense_bound_;
  dense_ = other.dense_;
  sorted_keys_ = other.sorted_keys_;
  sorted_valid_ = other.sorted_valid_;
  RefreshTable();
  return *this;
}

VertexDistMap& VertexDistMap::operator=(VertexDistMap&& other) noexcept {
  if (this == &other) return *this;
  slots_ = std::move(other.slots_);
  size_ = other.size_;
  universe_ = other.universe_;
  dense_bound_ = other.dense_bound_;
  dense_ = std::move(other.dense_);
  sorted_keys_ = std::move(other.sorted_keys_);
  sorted_valid_ = other.sorted_valid_;
  RefreshTable();
  other.slots_.clear();
  other.dense_.clear();
  other.size_ = 0;
  other.dense_bound_ = 0;
  other.sorted_valid_ = false;
  other.RefreshTable();
  return *this;
}

void VertexDistMap::SetUniverse(size_t num_vertices) {
  universe_ = num_vertices;
  if (dense_bound_ == 0 && universe_ != 0 && size_ * 8 >= universe_) {
    ConvertToDense();
  }
}

void VertexDistMap::Reserve(size_t expected) {
  if (dense_bound_ != 0) return;  // dense backing needs no reservation
  if (universe_ != 0 && expected * 8 >= universe_) {
    ConvertToDense();
    return;
  }
  size_t cap = 16;
  while (cap < expected * 2) cap <<= 1;
  if (cap > slots_.size()) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    RefreshTable();
    size_ = 0;
    for (const Slot& s : old) {
      if (s.key != kEmptyKey) InsertMin(s.key, s.dist);
    }
  }
}

void VertexDistMap::ClearKeepCapacity() {
  std::fill(slots_.begin(), slots_.end(), Slot{});
  dense_.clear();        // keeps capacity for the next ConvertToDense
  sorted_keys_.clear();  // keeps capacity for the next SortedKeys
  size_ = 0;
  universe_ = 0;
  dense_bound_ = 0;
  sorted_valid_ = false;
  RefreshTable();
}

void VertexDistMap::InsertMin(VertexId v, Hop dist) {
  HCPATH_DCHECK(v != kEmptyKey);
  if (dense_bound_ != 0) {
    HCPATH_DCHECK(v < dense_bound_);
    Hop& d = dense_[v];
    if (d == kUnreachable) {
      ++size_;
      sorted_valid_ = false;
    }
    if (dist < d) d = dist;
    return;
  }
  if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) Grow();
  const size_t mask = mask_;
  size_t i = Probe(v) & mask;
  while (true) {
    Slot& s = slots_[i];
    if (s.key == kEmptyKey) {
      s.key = v;
      s.dist = dist;
      ++size_;
      sorted_valid_ = false;
      if (universe_ != 0 && size_ * 8 >= universe_) ConvertToDense();
      return;
    }
    if (s.key == v) {
      if (dist < s.dist) s.dist = dist;
      return;
    }
    i = (i + 1) & mask;
  }
}

void VertexDistMap::Grow() {
  size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(cap, Slot{});
  RefreshTable();
  size_t old_size = size_;
  size_ = 0;
  for (const Slot& s : old) {
    if (s.key != kEmptyKey) InsertMin(s.key, s.dist);
  }
  HCPATH_CHECK_EQ(size_, old_size);
}

void VertexDistMap::ConvertToDense() {
  HCPATH_DCHECK(universe_ != 0);
  dense_.assign(universe_, kUnreachable);
  for (const Slot& s : slots_) {
    if (s.key != kEmptyKey) {
      HCPATH_DCHECK(s.key < universe_);
      dense_[s.key] = s.dist;
    }
  }
  dense_bound_ = universe_;
  slots_.clear();
  slots_.shrink_to_fit();
  RefreshTable();
}

const std::vector<VertexId>& VertexDistMap::SortedKeys() const {
  if (!sorted_valid_) {
    sorted_keys_.clear();
    sorted_keys_.reserve(size_);
    if (dense_bound_ != 0) {
      for (size_t v = 0; v < dense_bound_; ++v) {
        if (dense_[v] != kUnreachable) {
          sorted_keys_.push_back(static_cast<VertexId>(v));
        }
      }
    } else {
      for (const Slot& s : slots_) {
        if (s.key != kEmptyKey) sorted_keys_.push_back(s.key);
      }
      std::sort(sorted_keys_.begin(), sorted_keys_.end());
    }
    sorted_valid_ = true;
  }
  return sorted_keys_;
}

}  // namespace hcpath
