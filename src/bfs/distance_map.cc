#include "bfs/distance_map.h"

#include <algorithm>

namespace hcpath {

void VertexDistMap::Reserve(size_t expected) {
  size_t cap = 16;
  while (cap < expected * 2) cap <<= 1;
  if (cap > slots_.size()) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    size_ = 0;
    for (const Slot& s : old) {
      if (s.key != kEmptyKey) InsertMin(s.key, s.dist);
    }
  }
}

void VertexDistMap::InsertMin(VertexId v, Hop dist) {
  HCPATH_DCHECK(v != kEmptyKey);
  if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) Grow();
  size_t mask = slots_.size() - 1;
  size_t i = Probe(v) & mask;
  while (true) {
    Slot& s = slots_[i];
    if (s.key == kEmptyKey) {
      s.key = v;
      s.dist = dist;
      ++size_;
      sorted_valid_ = false;
      return;
    }
    if (s.key == v) {
      if (dist < s.dist) s.dist = dist;
      return;
    }
    i = (i + 1) & mask;
  }
}

void VertexDistMap::Grow() {
  size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(cap, Slot{});
  size_t old_size = size_;
  size_ = 0;
  for (const Slot& s : old) {
    if (s.key != kEmptyKey) InsertMin(s.key, s.dist);
  }
  HCPATH_CHECK_EQ(size_, old_size);
}

const std::vector<VertexId>& VertexDistMap::SortedKeys() const {
  if (!sorted_valid_) {
    sorted_keys_.clear();
    sorted_keys_.reserve(size_);
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey) sorted_keys_.push_back(s.key);
    }
    std::sort(sorted_keys_.begin(), sorted_keys_.end());
    sorted_valid_ = true;
  }
  return sorted_keys_;
}

}  // namespace hcpath
