#include "bfs/bfs.h"

#include <deque>

namespace hcpath {

VertexDistMap HopCappedBfs(const Graph& g, VertexId source, Hop max_hops,
                           Direction dir) {
  VertexDistMap dist;
  HCPATH_CHECK_LT(source, g.NumVertices());
  dist.InsertMin(source, 0);
  std::vector<VertexId> frontier = {source};
  std::vector<VertexId> next;
  for (Hop level = 0; level < max_hops && !frontier.empty(); ++level) {
    next.clear();
    for (VertexId u : frontier) {
      for (VertexId v : g.Neighbors(u, dir)) {
        if (!dist.Contains(v)) {
          dist.InsertMin(v, static_cast<Hop>(level + 1));
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::vector<Hop> HopCappedBfsDense(const Graph& g, VertexId source,
                                   Hop max_hops, Direction dir) {
  std::vector<Hop> dist(g.NumVertices(), kUnreachable);
  HCPATH_CHECK_LT(source, g.NumVertices());
  dist[source] = 0;
  std::vector<VertexId> frontier = {source};
  std::vector<VertexId> next;
  for (Hop level = 0; level < max_hops && !frontier.empty(); ++level) {
    next.clear();
    for (VertexId u : frontier) {
      for (VertexId v : g.Neighbors(u, dir)) {
        if (dist[v] == kUnreachable) {
          dist[v] = static_cast<Hop>(level + 1);
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

bool ReachableWithin(const Graph& g, VertexId s, VertexId t, Hop max_hops) {
  if (s >= g.NumVertices() || t >= g.NumVertices()) return false;
  if (s == t) return true;
  VertexDistMap dist = HopCappedBfs(g, s, max_hops, Direction::kForward);
  return dist.Contains(t);
}

}  // namespace hcpath
