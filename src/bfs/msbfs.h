#ifndef HCPATH_BFS_MSBFS_H_
#define HCPATH_BFS_MSBFS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bfs/distance_map.h"
#include "graph/graph.h"
#include "util/thread_pool.h"

namespace hcpath {

/// Result of a multi-source BFS: one hop-capped distance map per source,
/// plus a dense array of the minimum distance to *any* source. The min
/// array backs the cheap kGlobalMin shared-pruning mode (DESIGN.md D3) and
/// the detection traversal's frontier filter.
struct MsBfsResult {
  /// per_source[i] holds dist(sources[i], v) for all v within caps[i] hops.
  std::vector<VertexDistMap> per_source;
  /// min_dist[v] = min_i { dist(sources[i], v) : dist <= caps[i] },
  /// kUnreachable if no source reaches v within its own cap. Honoring the
  /// per-source caps makes the array a pure function of the (source, cap)
  /// multiset — the property cache-served index builds rely on.
  std::vector<Hop> min_dist;
  /// Total vertices discovered across sources (with multiplicity).
  uint64_t total_discovered = 0;
};

/// Reusable |V|-sized working memory for MultiSourceBfs. A long-lived
/// caller (BatchContext / PathEngine) keeps one per concurrent build
/// direction and hands it back on every call, so sustained batch traffic
/// stops paying two |V|-sized allocations (plus one per parallel wave
/// slot) per index build. The scratch is owned exclusively by one
/// MultiSourceBfs call at a time; contents are re-initialized per call, so
/// results are identical to scratch-free runs.
struct MsBfsScratch {
  /// One parallel wave task's private working set.
  struct PerWave {
    std::vector<uint64_t> seen;
    std::vector<uint64_t> next_mask;
    std::vector<Hop> min_dist;  // accumulates across this slot's waves
    uint64_t discovered = 0;
  };
  /// Checked-out-and-recycled working sets for the wave-parallel build;
  /// grows to the peak wave concurrency and is then reused forever.
  std::vector<std::unique_ptr<PerWave>> wave_scratch;
  /// Sequential-path working arrays.
  std::vector<uint64_t> seen;
  std::vector<uint64_t> next_mask;
};

/// Bit-parallel multi-source BFS after Then et al. (VLDB'15), the
/// "state-of-the-art multi-source BFSs [36]" the paper builds its index
/// with. Sources are processed in waves of up to 64; each vertex carries a
/// 64-bit "seen" mask and frontiers advance with word-wide OR/ANDNOT,
/// amortizing edge traversals across sources that explore overlapping
/// neighborhoods.
///
/// `caps[i]` is the per-source hop cap (typically the query's k); the wave
/// runs to the max cap of its 64 sources, and discoveries beyond a source's
/// own cap are discarded on output. Duplicate sources are deduplicated
/// internally and share one BFS.
///
/// When `pool` is non-null and more than one wave exists, waves run across
/// the pool's workers: each wave owns its scratch arrays and a private
/// min-dist accumulator, and per-source output maps are disjoint across
/// waves, so the result is bit-identical to the sequential run
/// (docs/PARALLELISM.md).
MsBfsResult MultiSourceBfs(const Graph& g,
                           const std::vector<VertexId>& sources,
                           const std::vector<Hop>& caps, Direction dir,
                           ThreadPool* pool = nullptr);

/// As above, but writes into `out` (per-source maps are recycled via
/// ClearKeepCapacity, so their backing storage survives across batches) and
/// borrows working memory from `scratch` when non-null. Either pointer may
/// be null; the convenience overload above forwards here.
void MultiSourceBfs(const Graph& g, const std::vector<VertexId>& sources,
                    const std::vector<Hop>& caps, Direction dir,
                    ThreadPool* pool, MsBfsScratch* scratch,
                    MsBfsResult* out);

}  // namespace hcpath

#endif  // HCPATH_BFS_MSBFS_H_
