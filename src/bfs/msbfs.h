#ifndef HCPATH_BFS_MSBFS_H_
#define HCPATH_BFS_MSBFS_H_

#include <cstdint>
#include <vector>

#include "bfs/distance_map.h"
#include "graph/graph.h"
#include "util/thread_pool.h"

namespace hcpath {

/// Result of a multi-source BFS: one hop-capped distance map per source,
/// plus a dense array of the minimum distance to *any* source. The min
/// array backs the cheap kGlobalMin shared-pruning mode (DESIGN.md D3) and
/// the detection traversal's frontier filter.
struct MsBfsResult {
  /// per_source[i] holds dist(sources[i], v) for all v within caps[i] hops.
  std::vector<VertexDistMap> per_source;
  /// min_dist[v] = min_i dist(sources[i], v), kUnreachable if none.
  std::vector<Hop> min_dist;
  /// Total vertices discovered across sources (with multiplicity).
  uint64_t total_discovered = 0;
};

/// Bit-parallel multi-source BFS after Then et al. (VLDB'15), the
/// "state-of-the-art multi-source BFSs [36]" the paper builds its index
/// with. Sources are processed in waves of up to 64; each vertex carries a
/// 64-bit "seen" mask and frontiers advance with word-wide OR/ANDNOT,
/// amortizing edge traversals across sources that explore overlapping
/// neighborhoods.
///
/// `caps[i]` is the per-source hop cap (typically the query's k); the wave
/// runs to the max cap of its 64 sources, and discoveries beyond a source's
/// own cap are discarded on output. Duplicate sources are deduplicated
/// internally and share one BFS.
///
/// When `pool` is non-null and more than one wave exists, waves run across
/// the pool's workers: each wave owns its scratch arrays and a private
/// min-dist accumulator, and per-source output maps are disjoint across
/// waves, so the result is bit-identical to the sequential run
/// (docs/PARALLELISM.md).
MsBfsResult MultiSourceBfs(const Graph& g,
                           const std::vector<VertexId>& sources,
                           const std::vector<Hop>& caps, Direction dir,
                           ThreadPool* pool = nullptr);

}  // namespace hcpath

#endif  // HCPATH_BFS_MSBFS_H_
