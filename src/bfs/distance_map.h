#ifndef HCPATH_BFS_DISTANCE_MAP_H_
#define HCPATH_BFS_DISTANCE_MAP_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace hcpath {

/// Hop distance; queries use small k so 8 bits suffice.
using Hop = uint8_t;

/// Distance treated as infinity (vertex not within the hop cap).
inline constexpr Hop kUnreachable = 0xFF;

/// Insert-only open-addressing hash map VertexId -> Hop, tuned for the
/// PathEnum index: built once per endpoint by (multi-source) BFS, then
/// probed on every edge expansion during enumeration.
///
/// This mirrors the paper's choice of storing only entities with
/// dist <= k instead of a dense |V| array per endpoint (Section III).
class VertexDistMap {
 public:
  VertexDistMap() = default;

  /// Pre-sizes for an expected number of entries.
  void Reserve(size_t expected);

  /// Inserts v -> dist, keeping the smaller value on duplicate insert.
  void InsertMin(VertexId v, Hop dist);

  /// Distance of v, or kUnreachable when absent.
  Hop Lookup(VertexId v) const {
    if (size_ == 0) return kUnreachable;
    size_t mask = slots_.size() - 1;
    size_t i = Probe(v) & mask;
    while (true) {
      const Slot& s = slots_[i];
      if (s.key == kEmptyKey) return kUnreachable;
      if (s.key == v) return s.dist;
      i = (i + 1) & mask;
    }
  }

  bool Contains(VertexId v) const { return Lookup(v) != kUnreachable; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Keys in ascending vertex-id order (the Γ set of Def 4.4); built lazily
  /// and cached.
  const std::vector<VertexId>& SortedKeys() const;

  /// Calls fn(vertex, dist) for every entry, unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey) fn(s.key, s.dist);
    }
  }

  /// Approximate heap bytes used.
  size_t MemoryBytes() const {
    return slots_.capacity() * sizeof(Slot) +
           sorted_keys_.capacity() * sizeof(VertexId);
  }

 private:
  struct Slot {
    VertexId key = kEmptyKey;
    Hop dist = kUnreachable;
  };

  static constexpr VertexId kEmptyKey = kInvalidVertex;

  static size_t Probe(VertexId v) {
    // Fibonacci-style multiplicative hash.
    return static_cast<size_t>(
        (static_cast<uint64_t>(v) * 0x9E3779B97F4A7C15ULL) >> 32);
  }

  void Grow();

  std::vector<Slot> slots_;
  size_t size_ = 0;
  mutable std::vector<VertexId> sorted_keys_;
  mutable bool sorted_valid_ = false;
};

}  // namespace hcpath

#endif  // HCPATH_BFS_DISTANCE_MAP_H_
