#ifndef HCPATH_BFS_DISTANCE_MAP_H_
#define HCPATH_BFS_DISTANCE_MAP_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace hcpath {

/// Hop distance; queries use small k so 8 bits suffice.
using Hop = uint8_t;

/// Distance treated as infinity (vertex not within the hop cap).
inline constexpr Hop kUnreachable = 0xFF;

/// Insert-only map VertexId -> Hop, tuned for the PathEnum index: built
/// once per endpoint by (multi-source) BFS, then probed on every edge
/// expansion during enumeration.
///
/// Two backings, switched automatically:
///  * open-addressing hash table — the default, mirroring the paper's
///    choice of storing only entities with dist <= k (Section III);
///  * a flat |V|-sized array of Hop — adopted once the map holds more than
///    ~1/8 of the universe (see SetUniverse), where the probe loop loses to
///    a single indexed load on the hottest lookup in enumeration.
///
/// Empty maps probe a shared one-slot sentinel table instead of branching
/// on size() == 0, keeping Lookup branch-light in the common case.
class VertexDistMap {
 public:
  VertexDistMap() = default;

  VertexDistMap(const VertexDistMap& other) { *this = other; }
  VertexDistMap& operator=(const VertexDistMap& other);
  VertexDistMap(VertexDistMap&& other) noexcept { *this = std::move(other); }
  VertexDistMap& operator=(VertexDistMap&& other) noexcept;

  /// Declares the vertex-id universe [0, num_vertices). Once set, the map
  /// converts to the dense backing when its size crosses num_vertices / 8.
  /// Callers that never set it keep the pure hash behavior.
  void SetUniverse(size_t num_vertices);

  /// Pre-sizes for an expected number of entries (and converts to dense
  /// immediately when the expectation already crosses the threshold).
  void Reserve(size_t expected);

  /// Empties the map but keeps its backing storage (hash table, dense
  /// array, sorted-keys cache) for reuse, reverting to the hash backing and
  /// clearing the universe. The recycling path for per-batch index storage
  /// (BatchContext): lookups on the refilled map are content-identical to a
  /// fresh build, though the retained table size (and hence unordered
  /// iteration order) may differ — every consumer is order-insensitive.
  void ClearKeepCapacity();

  /// Inserts v -> dist, keeping the smaller value on duplicate insert.
  void InsertMin(VertexId v, Hop dist);

  /// Distance of v, or kUnreachable when absent.
  Hop Lookup(VertexId v) const {
    HCPATH_DCHECK(v != kEmptyKey);
    if (v < dense_bound_) return dense_[v];  // dense fast path
    if (dense_bound_ != 0) return kUnreachable;  // dense, v out of universe
    const size_t mask = mask_;
    size_t i = Probe(v) & mask;
    while (true) {
      const Slot& s = table_[i];
      if (s.key == kEmptyKey) return kUnreachable;
      if (s.key == v) return s.dist;
      i = (i + 1) & mask;
    }
  }

  bool Contains(VertexId v) const { return Lookup(v) != kUnreachable; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True when backed by the flat dense array (introspection for tests).
  bool IsDense() const { return dense_bound_ != 0; }

  /// Keys in ascending vertex-id order (the Γ set of Def 4.4); built lazily
  /// and cached. Not safe to call concurrently with itself or mutators.
  const std::vector<VertexId>& SortedKeys() const;

  /// Calls fn(vertex, dist) for every entry, unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (dense_bound_ != 0) {
      for (size_t v = 0; v < dense_bound_; ++v) {
        if (dense_[v] != kUnreachable) fn(static_cast<VertexId>(v), dense_[v]);
      }
      return;
    }
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey) fn(s.key, s.dist);
    }
  }

  /// Approximate heap bytes used.
  size_t MemoryBytes() const {
    return slots_.capacity() * sizeof(Slot) +
           dense_.capacity() * sizeof(Hop) +
           sorted_keys_.capacity() * sizeof(VertexId);
  }

 private:
  struct Slot {
    VertexId key = kEmptyKey;
    Hop dist = kUnreachable;
  };

  static constexpr VertexId kEmptyKey = kInvalidVertex;

  /// Shared immutable one-slot empty table; every empty map points here so
  /// Lookup needs no size check.
  static const Slot* SentinelTable();

  static size_t Probe(VertexId v) {
    // Fibonacci-style multiplicative hash.
    return static_cast<size_t>(
        (static_cast<uint64_t>(v) * 0x9E3779B97F4A7C15ULL) >> 32);
  }

  /// Re-derives table_/mask_ from slots_ (after growth, moves, copies).
  void RefreshTable() {
    if (slots_.empty()) {
      table_ = SentinelTable();
      mask_ = 0;
    } else {
      table_ = slots_.data();
      mask_ = slots_.size() - 1;
    }
  }

  void Grow();
  void ConvertToDense();

  std::vector<Slot> slots_;
  const Slot* table_ = SentinelTable();
  size_t mask_ = 0;
  size_t size_ = 0;
  size_t universe_ = 0;     // 0 = dense switching disabled
  size_t dense_bound_ = 0;  // == universe_ when dense, else 0
  std::vector<Hop> dense_;
  mutable std::vector<VertexId> sorted_keys_;
  mutable bool sorted_valid_ = false;
};

}  // namespace hcpath

#endif  // HCPATH_BFS_DISTANCE_MAP_H_
