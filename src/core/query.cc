#include "core/query.h"

#include <cstdio>

namespace hcpath {

std::string PathQuery::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "q(s=%u, t=%u, k=%d)", s, t, k);
  return buf;
}

Status ValidateQueries(const Graph& g,
                       const std::vector<PathQuery>& queries) {
  for (size_t i = 0; i < queries.size(); ++i) {
    const PathQuery& q = queries[i];
    if (q.s >= g.NumVertices() || q.t >= g.NumVertices()) {
      return Status::InvalidArgument("query " + std::to_string(i) +
                                     " has out-of-range endpoint: " +
                                     q.ToString());
    }
    if (q.s == q.t) {
      return Status::InvalidArgument(
          "query " + std::to_string(i) +
          " has s == t (simple s-t paths require distinct endpoints): " +
          q.ToString());
    }
    if (q.k < 1 || q.k > kMaxHops) {
      return Status::InvalidArgument("query " + std::to_string(i) +
                                     " needs 1 <= k <= " +
                                     std::to_string(kMaxHops) + ": " +
                                     q.ToString());
    }
  }
  return Status::OK();
}

}  // namespace hcpath
