#ifndef HCPATH_CORE_PARALLEL_MERGE_H_
#define HCPATH_CORE_PARALLEL_MERGE_H_

#include <atomic>
#include <vector>

#include "core/buffered_sink.h"
#include "core/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hcpath {

/// The buffered-parallel scaffold shared by the batch engines
/// (docs/PARALLELISM.md): runs `task(i, sink, stats)` for every i in
/// [0, n) across the pool — each item emitting into a private arena-backed
/// buffer with private stats — then merges in input order so the
/// downstream sink observes exactly the sequential emission stream and the
/// counters sum to the sequential totals.
///
/// Error semantics mirror the sequential early return: once any item
/// fails, unstarted items are skipped; at merge time, skipped items
/// ordered before the first failure are completed synchronously (straight
/// into `sink`), buffered results are replayed up to and including the
/// failing item's pre-error paths, and the first failure's Status is
/// returned.
///
/// `task` must be safe to run concurrently for distinct i and is invoked
/// once per item (possibly again at merge time only if that item was
/// skipped, i.e. never started).
template <typename TaskFn>
Status RunBufferedParallel(ThreadPool& pool, size_t n, PathSink* sink,
                           BatchStats* stats, const TaskFn& task) {
  std::vector<BufferedSink> buffers(n);
  std::vector<Status> status(n, Status::OK());
  std::vector<char> skipped(n, 0);
  std::vector<BatchStats> item_stats(stats != nullptr ? n : 0);
  std::atomic<bool> abort{false};
  pool.ParallelFor(n, [&](size_t i) {
    // Early abort: the first failure already decides the run's outcome, so
    // don't start remaining items — finishing them would only burn CPU and
    // buffer memory.
    if (abort.load(std::memory_order_relaxed)) {
      skipped[i] = 1;
      return;
    }
    status[i] =
        task(i, &buffers[i], stats != nullptr ? &item_stats[i] : nullptr);
    if (!status[i].ok()) abort.store(true, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < n; ++i) {
    if (skipped[i]) {
      // An item ordered before the first failure may have been skipped by
      // the abort flag (scheduling is unordered); the sequential engine
      // would have completed it before reaching the failure, so run it now.
      HCPATH_RETURN_NOT_OK(task(i, sink, stats));
      continue;
    }
    // Replay before surfacing the error: the sequential engine has already
    // streamed a failing item's pre-error paths to the sink.
    if (sink != nullptr) buffers[i].Replay(sink);
    if (stats != nullptr) stats->Accumulate(item_stats[i]);
    HCPATH_RETURN_NOT_OK(status[i]);
  }
  return Status::OK();
}

}  // namespace hcpath

#endif  // HCPATH_CORE_PARALLEL_MERGE_H_
