#ifndef HCPATH_CORE_PARALLEL_MERGE_H_
#define HCPATH_CORE_PARALLEL_MERGE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/buffered_sink.h"
#include "core/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hcpath {

/// Observability of one RunBufferedParallel call. Every field is
/// scheduling-dependent: the determinism identity covers the emitted path
/// stream and the BatchStats work counters, never these.
struct MergeMetrics {
  /// High-water mark of bytes held in completed-or-filling private buffers.
  uint64_t peak_buffered_bytes = 0;
  /// Bytes that ever passed through a private buffer (the gather-then-merge
  /// baseline would have held all of them simultaneously).
  uint64_t total_buffered_bytes = 0;
  /// Items drained to the sink while the parallel section was still running.
  uint64_t streamed_items = 0;
  /// Items drained (or completed synchronously) in the final sweep.
  uint64_t final_items = 0;

  void Accumulate(const MergeMetrics& other) {
    peak_buffered_bytes =
        peak_buffered_bytes > other.peak_buffered_bytes
            ? peak_buffered_bytes
            : other.peak_buffered_bytes;
    total_buffered_bytes += other.total_buffered_bytes;
    streamed_items += other.streamed_items;
    final_items += other.final_items;
  }
};

/// Folds one call's metrics into the run-level BatchStats mirror fields.
inline void FoldMergeMetrics(const MergeMetrics& m, BatchStats* stats) {
  if (stats == nullptr) return;
  stats->merge_peak_buffered_bytes =
      std::max(stats->merge_peak_buffered_bytes, m.peak_buffered_bytes);
  stats->merge_total_buffered_bytes += m.total_buffered_bytes;
  stats->merge_streamed_items += m.streamed_items;
  stats->merge_final_items += m.final_items;
}

/// The buffered-parallel scaffold shared by the batch engines
/// (docs/PARALLELISM.md): runs `task(i, sink, stats)` for every i in
/// [0, n) across the pool — each item emitting into a private buffered
/// buffer with private stats — and merges in input order so the downstream
/// sink observes exactly the sequential emission stream and the counters
/// sum to the sequential totals.
///
/// The merge *streams*: whenever the lowest-indexed unfinished item
/// completes, the worker that finished it drains the contiguous completed
/// prefix to the sink (under a single drain lock, so emission stays
/// serialized and ordered) and recycles the drained buffers. Peak
/// buffer memory is therefore bounded by the completed-but-undrained window
/// — in practice the in-flight items — instead of the whole batch, and the
/// first item's results reach the sink as soon as it finishes rather than
/// after the last one. Sink note: `sink->OnPath` calls are totally ordered
/// (the drain lock serializes them) but may run on any pool thread while
/// the parallel section is live; observers reading sink state concurrently
/// must synchronize themselves.
///
/// Error semantics mirror the sequential early return: once any item
/// fails, unstarted items are skipped; the drain stops permanently at the
/// first failed item after replaying its pre-error paths, and that item's
/// Status is returned. Items skipped by the abort flag but ordered before
/// the first failure are completed synchronously (straight into `sink`) in
/// the final sweep, exactly as the sequential engine would have run them.
///
/// `task` must be safe to run concurrently for distinct i and is invoked
/// once per item (possibly again at merge time only if that item was
/// skipped, i.e. never started).
///
/// With a `sink_pool` (BatchContext), per-item buffers are acquired from
/// the pool instead of constructed, and a drained buffer is released back
/// the moment the streaming drain passes it — so its path storage flows
/// straight to concurrent nested merges and to the next batch, instead of
/// being freed and reallocated.
template <typename TaskFn>
Status RunBufferedParallel(ThreadPool& pool, size_t n, PathSink* sink,
                           BatchStats* stats, const TaskFn& task,
                           MergeMetrics* metrics = nullptr,
                           SinkPool* sink_pool = nullptr) {
  if (n == 0) return Status::OK();
  enum ItemState : uint8_t { kRunning = 0, kDone, kFailed, kSkipped };
  std::vector<BufferedSink> local_buffers(sink_pool != nullptr ? 0 : n);
  std::vector<BufferedSink*> buffers(n);
  for (size_t i = 0; i < n; ++i) {
    buffers[i] = sink_pool != nullptr ? sink_pool->Acquire()
                                      : &local_buffers[i];
  }
  std::vector<Status> status(n, Status::OK());
  std::vector<BatchStats> item_stats(stats != nullptr ? n : 0);
  std::vector<uint8_t> state(n, kRunning);
  std::atomic<bool> abort{false};

  // Streaming-drain state, all guarded by `mu`. `frontier` is the first
  // undrained item; it only ever advances over kDone items and stops for
  // good at the first kFailed one (`closed`).
  std::mutex mu;
  size_t frontier = 0;
  bool closed = false;
  Status first_error = Status::OK();
  uint64_t buffered_bytes = 0;
  MergeMetrics mm;

  auto drain_locked = [&](bool streaming) {
    while (!closed && frontier < n &&
           (state[frontier] == kDone || state[frontier] == kFailed)) {
      BufferedSink& buf = *buffers[frontier];
      // Replay before surfacing an error: the sequential engine has already
      // streamed a failing item's pre-error paths to the sink.
      if (sink != nullptr) buf.Replay(sink);
      if (stats != nullptr) stats->Accumulate(item_stats[frontier]);
      buffered_bytes -= buf.buffered_bytes();
      if (sink_pool != nullptr) {
        // Hand the drained buffer (and its storage) back for reuse now.
        sink_pool->Release(buffers[frontier]);
        buffers[frontier] = nullptr;
      } else {
        buf.Clear();  // recycle the storage now, not at scope exit
      }
      if (streaming) {
        ++mm.streamed_items;
      } else {
        ++mm.final_items;
      }
      if (state[frontier] == kFailed) {
        first_error = status[frontier];
        closed = true;
      }
      ++frontier;
    }
  };

  pool.ParallelFor(n, [&](size_t i) {
    // Early abort: the first failure already decides the run's outcome, so
    // don't start remaining items — finishing them would only burn CPU and
    // buffer memory.
    if (abort.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lk(mu);
      state[i] = kSkipped;
      return;
    }
    Status st =
        task(i, buffers[i], stats != nullptr ? &item_stats[i] : nullptr);
    std::lock_guard<std::mutex> lk(mu);
    status[i] = std::move(st);
    state[i] = status[i].ok() ? kDone : kFailed;
    if (state[i] == kFailed) abort.store(true, std::memory_order_relaxed);
    const uint64_t bytes = buffers[i]->buffered_bytes();
    buffered_bytes += bytes;
    mm.total_buffered_bytes += bytes;
    if (buffered_bytes > mm.peak_buffered_bytes) {
      mm.peak_buffered_bytes = buffered_bytes;
    }
    drain_locked(/*streaming=*/true);
  });

  // Final sweep: everything past the frontier is either stalled behind a
  // skipped item or was completed after the drain closed on a failure.
  Status result = first_error;
  if (result.ok()) {
    for (size_t i = frontier; i < n; ++i) {
      if (state[i] == kSkipped) {
        // An item ordered before the first failure may have been skipped by
        // the abort flag (scheduling is unordered); the sequential engine
        // would have completed it before reaching the failure, so run it
        // now, straight into the sink.
        ++mm.final_items;
        result = task(i, sink, stats);
        if (!result.ok()) break;
        continue;
      }
      if (sink != nullptr) buffers[i]->Replay(sink);
      if (stats != nullptr) stats->Accumulate(item_stats[i]);
      buffers[i]->Clear();
      ++mm.final_items;
      if (state[i] == kFailed) {
        result = status[i];
        break;
      }
    }
  }
  if (sink_pool != nullptr) {
    // Whatever the streaming drain didn't already hand back (post-failure
    // items, buffers of skipped items) goes to the pool here.
    for (BufferedSink* buf : buffers) {
      if (buf != nullptr) sink_pool->Release(buf);
    }
  }
  if (metrics != nullptr) metrics->Accumulate(mm);
  return result;
}

}  // namespace hcpath

#endif  // HCPATH_CORE_PARALLEL_MERGE_H_
