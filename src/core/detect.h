#ifndef HCPATH_CORE_DETECT_H_
#define HCPATH_CORE_DETECT_H_

#include <vector>

#include "core/options.h"
#include "core/query.h"
#include "core/sharing_graph.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "index/distance_index.h"

namespace hcpath {

/// Output of common HC-s path query detection for one cluster+direction.
struct DetectionResult {
  SharingGraph psi;
  /// root_of[i] = root node serving cluster member i (kNoNode when the
  /// member is skipped, e.g. its target is unreachable within k).
  std::vector<SharingGraph::NodeId> root_of;
};

/// DetectCommonQuery (Algorithm 3): synchronized descending-hop-budget
/// traversal over the cluster's HC-s path queries in direction `dir`
/// (DESIGN.md D4 documents the deviations from the paper's pseudocode).
///
/// * Roots are deduplicated per start vertex keeping the max budget; every
///   cluster member records which root serves it.
/// * When >= 2 nodes reach the same vertex with the same remaining budget,
///   a dominating node is created and linked (Fig 6).
/// * When a node reaches a vertex anchored by a node of >= remaining
///   budget, a reuse edge is added and the traversal stops there (Fig 5b).
/// * Frontier expansion is filtered by the batch-wide min-distance array so
///   detection never walks vertices no query can use.
///
/// `budgets[i]` is cluster member i's half budget in this direction
/// (⌈k/2⌉ forward / ⌊k/2⌋ backward, or the optimized split); `skip[i]`
/// marks members excluded from detection (unreachable queries).
DetectionResult DetectCommonQueries(
    const Graph& g, Direction dir, const std::vector<PathQuery>& queries,
    const std::vector<size_t>& cluster, const std::vector<Hop>& budgets,
    const std::vector<bool>& skip, const DistanceIndex& index,
    const BatchOptions& options, BatchStats* stats);

class ThreadPool;

/// Runs DetectCommonQueries for both directions of one cluster — the two
/// traversals read only immutable batch state, so with a non-null `pool`
/// they run as two concurrent sub-tasks (the first intra-cluster
/// parallelism stage). Each direction accumulates into a private BatchStats
/// which is folded into `stats` forward-first, so counter totals are
/// identical to the sequential pool == nullptr path.
void DetectBothDirections(const Graph& g,
                          const std::vector<PathQuery>& queries,
                          const std::vector<size_t>& cluster,
                          const std::vector<Hop>& fwd_budgets,
                          const std::vector<Hop>& bwd_budgets,
                          const std::vector<bool>& skip,
                          const DistanceIndex& index,
                          const BatchOptions& options, ThreadPool* pool,
                          DetectionResult* fwd, DetectionResult* bwd,
                          BatchStats* stats);

}  // namespace hcpath

#endif  // HCPATH_CORE_DETECT_H_
