#ifndef HCPATH_CORE_ENUMERATOR_H_
#define HCPATH_CORE_ENUMERATOR_H_

#include <memory>
#include <vector>

#include "core/options.h"
#include "core/path.h"
#include "core/query.h"
#include "core/search.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "util/status.h"

namespace hcpath {

/// Outcome of a batch run: per-query result counts plus phase timings and
/// work counters.
struct BatchResult {
  std::vector<uint64_t> path_counts;
  BatchStats stats;

  uint64_t TotalPaths() const {
    uint64_t total = 0;
    for (uint64_t c : path_counts) total += c;
    return total;
  }
};

/// Unified façade over every algorithm in the library. Typical use:
///
///   BatchPathEnumerator enumerator(g);
///   BatchOptions opt;
///   opt.algorithm = Algorithm::kBatchEnumPlus;
///   auto result = enumerator.Run(queries, opt, &my_sink);
///
/// The sink is optional; pass nullptr to only count paths. The graph must
/// outlive the enumerator.
class BatchPathEnumerator {
 public:
  explicit BatchPathEnumerator(const Graph& g) : g_(g) {}

  /// Runs all `queries` with the algorithm selected in `options`, streaming
  /// every path to `sink` (when non-null) and returning per-query counts.
  ///
  /// Not thread-safe across concurrent Run calls on one enumerator (the
  /// remap cache below mutates); intra-batch parallelism lives in the
  /// engines. Lease one enumerator per concurrent caller.
  StatusOr<BatchResult> Run(const std::vector<PathQuery>& queries,
                            const BatchOptions& options,
                            PathSink* sink = nullptr);

 private:
  /// Returns the remap for `mode`, building it on first use and reusing
  /// it across Run calls. The renumbering is a per-graph index build
  /// (like loading), not a per-batch cost: a driver that holds one
  /// enumerator per graph pays it once, the same amortization PathEngine
  /// gets by building its remap at engine construction. Keyed on
  /// (mode, Graph::version()): a driver that assigns a rebuilt graph into
  /// the referenced object between Run calls gets a fresh remap instead of
  /// a silently stale renumbering of the dead graph.
  const GraphRemap& RemapFor(RemapMode mode);

  /// Kernel dispatch for (mode, run graph), resolved once and reused
  /// across Run calls — the same hoist as the remap cache, keyed the same
  /// way so a graph swap re-resolves the prefetch gate.
  const ResolvedKernel& KernelFor(KernelMode mode, const Graph& run_g);

  const Graph& g_;
  std::unique_ptr<GraphRemap> remap_cache_;
  RemapMode cached_mode_ = RemapMode::kNone;
  uint64_t cached_graph_version_ = 0;  ///< 0 = cache empty (versions are >= 1)
  ResolvedKernel kernel_cache_;
  KernelMode kernel_cache_mode_ = KernelMode::kAuto;
  uint64_t kernel_cache_graph_version_ = 0;  ///< 0 = cache empty
};

/// Sink adapter that translates every emitted path from a renumbered id
/// space (GraphRemap) back to original ids before forwarding. Interposed
/// by the remap-aware entry points (BatchPathEnumerator::Run, PathEngine)
/// between the engines and the caller's sink, so callers always observe
/// original ids regardless of BatchOptions::remap_mode. Forwards one path
/// per downstream OnPath call — the same per-path sequence the default
/// PathSink::OnPaths produces — so emission streams are byte-identical to
/// an un-remapped run. Not thread-safe (engine emission is serialized by
/// the input-order merge; see docs/PARALLELISM.md).
class TranslatingSink : public PathSink {
 public:
  TranslatingSink(const GraphRemap& remap, PathSink* downstream)
      : remap_(remap), downstream_(downstream) {}

  void OnPath(size_t query_index, PathView path) override {
    buf_.assign(path.begin(), path.end());
    for (VertexId& v : buf_) v = remap_.ToOriginal(v);
    downstream_->OnPath(query_index, buf_);
  }

 private:
  const GraphRemap& remap_;
  PathSink* downstream_;
  std::vector<VertexId> buf_;  ///< recycled translation buffer
};

const char* AlgorithmName(Algorithm a);

/// Parses "pathenum", "basic", "basic+", "batch", "batch+" (as used by the
/// bench binaries' --algos flag).
StatusOr<Algorithm> ParseAlgorithm(const std::string& name);

}  // namespace hcpath

#endif  // HCPATH_CORE_ENUMERATOR_H_
