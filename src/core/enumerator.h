#ifndef HCPATH_CORE_ENUMERATOR_H_
#define HCPATH_CORE_ENUMERATOR_H_

#include <vector>

#include "core/options.h"
#include "core/path.h"
#include "core/query.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "util/status.h"

namespace hcpath {

/// Outcome of a batch run: per-query result counts plus phase timings and
/// work counters.
struct BatchResult {
  std::vector<uint64_t> path_counts;
  BatchStats stats;

  uint64_t TotalPaths() const {
    uint64_t total = 0;
    for (uint64_t c : path_counts) total += c;
    return total;
  }
};

/// Unified façade over every algorithm in the library. Typical use:
///
///   BatchPathEnumerator enumerator(g);
///   BatchOptions opt;
///   opt.algorithm = Algorithm::kBatchEnumPlus;
///   auto result = enumerator.Run(queries, opt, &my_sink);
///
/// The sink is optional; pass nullptr to only count paths. The graph must
/// outlive the enumerator.
class BatchPathEnumerator {
 public:
  explicit BatchPathEnumerator(const Graph& g) : g_(g) {}

  /// Runs all `queries` with the algorithm selected in `options`, streaming
  /// every path to `sink` (when non-null) and returning per-query counts.
  StatusOr<BatchResult> Run(const std::vector<PathQuery>& queries,
                            const BatchOptions& options,
                            PathSink* sink = nullptr);

 private:
  const Graph& g_;
};

const char* AlgorithmName(Algorithm a);

/// Parses "pathenum", "basic", "basic+", "batch", "batch+" (as used by the
/// bench binaries' --algos flag).
StatusOr<Algorithm> ParseAlgorithm(const std::string& name);

}  // namespace hcpath

#endif  // HCPATH_CORE_ENUMERATOR_H_
