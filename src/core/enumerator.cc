#include "core/enumerator.h"

#include "core/basic_enum.h"
#include "core/batch_enum.h"
#include "core/path_enum.h"
#include "util/timer.h"

namespace hcpath {

namespace {

/// Counts per query and forwards to an optional downstream sink.
class TeeSink : public PathSink {
 public:
  TeeSink(size_t num_queries, PathSink* downstream)
      : counts_(num_queries, 0), downstream_(downstream) {}

  void OnPath(size_t query_index, PathView path) override {
    ++counts_[query_index];
    if (downstream_ != nullptr) downstream_->OnPath(query_index, path);
  }

  std::vector<uint64_t> TakeCounts() { return std::move(counts_); }

 private:
  std::vector<uint64_t> counts_;
  PathSink* downstream_;
};

}  // namespace

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kPathEnum:
      return "PathEnum";
    case Algorithm::kBasicEnum:
      return "BasicEnum";
    case Algorithm::kBasicEnumPlus:
      return "BasicEnum+";
    case Algorithm::kBatchEnum:
      return "BatchEnum";
    case Algorithm::kBatchEnumPlus:
      return "BatchEnum+";
  }
  return "?";
}

StatusOr<Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "pathenum" || name == "PathEnum") return Algorithm::kPathEnum;
  if (name == "basic" || name == "BasicEnum") return Algorithm::kBasicEnum;
  if (name == "basic+" || name == "BasicEnum+") {
    return Algorithm::kBasicEnumPlus;
  }
  if (name == "batch" || name == "BatchEnum") return Algorithm::kBatchEnum;
  if (name == "batch+" || name == "BatchEnum+") {
    return Algorithm::kBatchEnumPlus;
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

StatusOr<BatchResult> BatchPathEnumerator::Run(
    const std::vector<PathQuery>& queries, const BatchOptions& options,
    PathSink* sink) {
  // The batch engines validate too, but kPathEnum bypasses them, so every
  // algorithm must range-check its options here.
  Status validated = options.Validate();
  if (!validated.ok()) return validated;
  BatchResult result;
  TeeSink tee(queries.size(), sink);
  Status st;
  switch (options.algorithm) {
    case Algorithm::kPathEnum: {
      WallTimer total;
      SingleQueryOptions sq;
      sq.max_paths = options.max_paths_per_query;
      st = Status::OK();
      for (size_t i = 0; i < queries.size() && st.ok(); ++i) {
        st = PathEnumQuery(g_, queries[i], sq, i, &tee, &result.stats);
      }
      result.stats.total_seconds = total.ElapsedSeconds();
      break;
    }
    case Algorithm::kBasicEnum:
      st = RunBasicEnum(g_, queries, options, /*optimized_order=*/false,
                        &tee, &result.stats);
      break;
    case Algorithm::kBasicEnumPlus:
      st = RunBasicEnum(g_, queries, options, /*optimized_order=*/true,
                        &tee, &result.stats);
      break;
    case Algorithm::kBatchEnum:
      st = RunBatchEnum(g_, queries, options, /*optimized_order=*/false,
                        &tee, &result.stats);
      break;
    case Algorithm::kBatchEnumPlus:
      st = RunBatchEnum(g_, queries, options, /*optimized_order=*/true,
                        &tee, &result.stats);
      break;
  }
  if (!st.ok()) return st;
  result.path_counts = tee.TakeCounts();
  return result;
}

}  // namespace hcpath
