#include "core/enumerator.h"

#include "core/basic_enum.h"
#include "core/batch_enum.h"
#include "core/path_enum.h"
#include "util/timer.h"

namespace hcpath {

namespace {

/// Counts per query and forwards to an optional downstream sink.
class TeeSink : public PathSink {
 public:
  TeeSink(size_t num_queries, PathSink* downstream)
      : counts_(num_queries, 0), downstream_(downstream) {}

  void OnPath(size_t query_index, PathView path) override {
    ++counts_[query_index];
    if (downstream_ != nullptr) downstream_->OnPath(query_index, path);
  }

  std::vector<uint64_t> TakeCounts() { return std::move(counts_); }

 private:
  std::vector<uint64_t> counts_;
  PathSink* downstream_;
};

}  // namespace

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kPathEnum:
      return "PathEnum";
    case Algorithm::kBasicEnum:
      return "BasicEnum";
    case Algorithm::kBasicEnumPlus:
      return "BasicEnum+";
    case Algorithm::kBatchEnum:
      return "BatchEnum";
    case Algorithm::kBatchEnumPlus:
      return "BatchEnum+";
  }
  return "?";
}

StatusOr<Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "pathenum" || name == "PathEnum") return Algorithm::kPathEnum;
  if (name == "basic" || name == "BasicEnum") return Algorithm::kBasicEnum;
  if (name == "basic+" || name == "BasicEnum+") {
    return Algorithm::kBasicEnumPlus;
  }
  if (name == "batch" || name == "BatchEnum") return Algorithm::kBatchEnum;
  if (name == "batch+" || name == "BatchEnum+") {
    return Algorithm::kBatchEnumPlus;
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

const GraphRemap& BatchPathEnumerator::RemapFor(RemapMode mode) {
  // Keyed on the graph's content version, not just the mode: the reference
  // g_ is stable but the Graph object behind it may be assigned a rebuilt
  // graph between Run calls, and a remap of the dead content would
  // silently translate queries and paths through the wrong renumbering.
  const uint64_t graph_version = g_.version();
  if (remap_cache_ == nullptr || cached_mode_ != mode ||
      cached_graph_version_ != graph_version) {
    remap_cache_ = std::make_unique<GraphRemap>(GraphRemap::Build(g_, mode));
    cached_mode_ = mode;
    cached_graph_version_ = graph_version;
  }
  return *remap_cache_;
}

const ResolvedKernel& BatchPathEnumerator::KernelFor(KernelMode mode,
                                                     const Graph& run_g) {
  const uint64_t graph_version = run_g.version();
  if (kernel_cache_graph_version_ != graph_version ||
      kernel_cache_mode_ != mode) {
    kernel_cache_ = ResolveKernel(mode, run_g);
    kernel_cache_mode_ = mode;
    kernel_cache_graph_version_ = graph_version;
  }
  return kernel_cache_;
}

StatusOr<BatchResult> BatchPathEnumerator::Run(
    const std::vector<PathQuery>& queries, const BatchOptions& options,
    PathSink* sink) {
  // The batch engines validate too, but kPathEnum bypasses them, so every
  // algorithm must range-check its options here.
  Status validated = options.Validate();
  if (!validated.ok()) return validated;
  BatchResult result;
  TeeSink tee(queries.size(), sink);

  // Remapping is handled entirely at this facade: the engines below run on
  // the renumbered graph with translated queries and never see remap_mode,
  // and every emitted path is translated back before reaching `tee`.
  // Queries are validated against the ORIGINAL graph before translation —
  // at the same points the engines validate, so failure ordering and error
  // messages (which embed query ids) are byte-identical to a kNone run.
  const GraphRemap& remap = RemapFor(options.remap_mode);
  TranslatingSink translating(remap, &tee);
  // Translation exists for the caller's sink; per-query counts only key on
  // the query index. With no downstream sink nobody observes path bytes,
  // so the per-path translate-and-copy is skipped and the engines feed the
  // counting tee directly (counts are id-invariant, so this is unobservable
  // apart from the time saved).
  const bool translate = !remap.is_identity() && sink != nullptr;
  PathSink* engine_sink =
      translate ? static_cast<PathSink*>(&translating) : &tee;
  const Graph& run_g = remap.is_identity() ? g_ : remap.remapped();
  BatchOptions run_options = options;
  run_options.remap_mode = RemapMode::kNone;

  Status st = Status::OK();
  switch (options.algorithm) {
    case Algorithm::kPathEnum: {
      WallTimer total;
      SingleQueryOptions sq;
      sq.max_paths = options.max_paths_per_query;
      sq.kernel = options.kernel_mode;
      sq.resolved = KernelFor(options.kernel_mode, run_g);
      // Per-query validation, matching the sequencing of PathEnumQuery
      // itself: queries before an invalid one still emit.
      for (size_t i = 0; i < queries.size() && st.ok(); ++i) {
        PathQuery q = queries[i];
        if (!remap.is_identity()) {
          st = ValidateQueries(g_, {q});
          if (!st.ok()) break;
          q.s = remap.ToNew(q.s);
          q.t = remap.ToNew(q.t);
        }
        st = PathEnumQuery(run_g, q, sq, i, engine_sink, &result.stats);
      }
      result.stats.total_seconds = total.ElapsedSeconds();
      break;
    }
    default: {
      const std::vector<PathQuery>* run_queries = &queries;
      std::vector<PathQuery> translated;
      if (!remap.is_identity()) {
        // Mirrors the batch engines' own up-front whole-batch validation.
        st = ValidateQueries(g_, queries);
        if (!st.ok()) return st;
        translated = remap.TranslateQueries(queries);
        run_queries = &translated;
      }
      const bool optimized = options.algorithm == Algorithm::kBasicEnumPlus ||
                             options.algorithm == Algorithm::kBatchEnumPlus;
      if (options.algorithm == Algorithm::kBasicEnum ||
          options.algorithm == Algorithm::kBasicEnumPlus) {
        st = RunBasicEnum(run_g, *run_queries, run_options, optimized,
                          engine_sink, &result.stats);
      } else {
        st = RunBatchEnum(run_g, *run_queries, run_options, optimized,
                          engine_sink, &result.stats);
      }
      break;
    }
  }
  if (!st.ok()) return st;
  result.path_counts = tee.TakeCounts();
  return result;
}

}  // namespace hcpath
