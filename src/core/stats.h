#ifndef HCPATH_CORE_STATS_H_
#define HCPATH_CORE_STATS_H_

#include <cstdint>
#include <string>

namespace hcpath {

/// Counters and phase timings for one batch run. The four phase timers are
/// exactly the decomposition reported by Exp-3 (Fig 9).
struct BatchStats {
  // --- Fig 9 phases (seconds) ---
  double build_index_seconds = 0;   ///< BuildIndex: multi-source BFSs
  double cluster_seconds = 0;       ///< ClusterQuery: Algorithm 2
  double detect_seconds = 0;        ///< IdentifySubquery: Algorithm 3
  double enumerate_seconds = 0;     ///< Enumeration: search + join + output

  double total_seconds = 0;

  // --- work counters ---
  uint64_t edges_expanded = 0;      ///< DFS edge expansions performed
  uint64_t edges_pruned = 0;        ///< expansions rejected by the index
  uint64_t paths_emitted = 0;       ///< HC-s-t paths output across queries
  uint64_t join_probes = 0;         ///< forward/backward join attempts
  uint64_t join_rejected = 0;       ///< join pairs rejected (dup vertex)
  /// Midpoint bucket indexes built by JoinAndEmit (one per query whose
  /// join can probe, i.e. hb > 0 and a non-empty backward set). The index
  /// lives in recycled JoinScratch storage, so rebuilds reuse capacity;
  /// steady-state scratch reuse shows up as rebuilds without allocation
  /// growth (exp9 service stats). Deterministic: part of the counter
  /// identity across thread counts.
  uint64_t join_index_rebuilds = 0;

  // --- sharing counters (BatchEnum only) ---
  uint64_t num_clusters = 0;
  uint64_t sharing_nodes = 0;       ///< HC-s path nodes in all Ψ
  uint64_t dominating_nodes = 0;    ///< non-root nodes (detected sharing)
  uint64_t sharing_edges = 0;
  uint64_t shortcut_splices = 0;    ///< cache concatenations performed
  uint64_t cached_paths = 0;        ///< paths materialized into R
  uint64_t cache_peak_vertices = 0; ///< high-water mark of R
  uint64_t cycle_edges_skipped = 0; ///< reuse edges dropped to keep Ψ a DAG

  // --- cross-batch distance-cache counters (PathEngine / BatchContext) ---
  // Unique (endpoint, direction, hop-cap) keys served from / missed in the
  // cross-batch endpoint distance cache during index builds. Observability
  // like the merge metrics below, NOT part of the determinism identity: a
  // warm engine reports hits where a one-shot run reports misses, while
  // emitting the bit-identical path stream (docs/SERVICE.md).
  uint64_t distance_cache_hits = 0;
  uint64_t distance_cache_misses = 0;

  // --- streaming-merge metrics (parallel runs only) ---
  // Scheduling-dependent observability: zero at num_threads == 1 and NOT
  // part of the determinism identity (the path stream and the counters
  // above are; these vary run to run).
  uint64_t merge_peak_buffered_bytes = 0;  ///< high-water mark of undrained buffers
  uint64_t merge_total_buffered_bytes = 0; ///< gather-then-merge would hold all of this at once
  uint64_t merge_streamed_items = 0;       ///< buffers drained while workers still ran
  uint64_t merge_final_items = 0;          ///< buffers drained in the final sweep

  void Accumulate(const BatchStats& other);
  std::string ToString() const;
};

/// Per-tenant admission counters of the PathEngine scheduler
/// (docs/SERVICE.md). Every Submit naming a tenant lands in exactly one of
/// {rejected, fast_failed, admitted}; every admitted query later lands in
/// exactly one of {completed, shed, lag_failed} — so
///   submitted == rejected + fast_failed + admitted   (once unblocked) and
///   admitted  == completed + shed + lag_failed + currently-queued.
/// The one exception: a submit that fails because the engine is shutting
/// down counts only as submitted (the differential suite checks the laws
/// on quiesced engines, where the exception cannot occur).
struct TenantAdmissionStats {
  uint64_t submitted = 0;    ///< Submit calls naming this tenant
  uint64_t admitted = 0;     ///< entered the admission queue
  uint64_t completed = 0;    ///< carried through a micro-batch
  uint64_t rejected = 0;     ///< failed admission-time validation
  uint64_t fast_failed = 0;  ///< ResourceExhausted at a full queue (fail-fast)
  uint64_t shed = 0;         ///< dropped by overload shedding
  uint64_t blocked = 0;      ///< submits that waited for queue space
  uint64_t lag_failed = 0;   ///< failed while queued: pinned snapshot over
                             ///< AdmissionOptions::max_snapshot_lag

  void Accumulate(const TenantAdmissionStats& other);
  std::string ToString() const;
};

}  // namespace hcpath

#endif  // HCPATH_CORE_STATS_H_
