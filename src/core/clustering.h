#ifndef HCPATH_CORE_CLUSTERING_H_
#define HCPATH_CORE_CLUSTERING_H_

#include <cstddef>
#include <vector>

#include "core/similarity.h"

namespace hcpath {

/// ClusterQuery (Algorithm 2): hierarchical agglomerative clustering of the
/// query batch under the group similarity δ (Def 4.6, average linkage).
/// Repeatedly merges the two clusters with the highest δ until no pair
/// exceeds γ. Returns clusters as lists of query indices; every query
/// appears in exactly one cluster. Deterministic: ties break toward the
/// smallest indices.
std::vector<std::vector<size_t>> ClusterQueries(const SimilarityMatrix& sim,
                                                double gamma);

}  // namespace hcpath

#endif  // HCPATH_CORE_CLUSTERING_H_
