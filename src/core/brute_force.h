#ifndef HCPATH_CORE_BRUTE_FORCE_H_
#define HCPATH_CORE_BRUTE_FORCE_H_

#include "core/path.h"
#include "core/query.h"
#include "graph/graph.h"
#include "util/status.h"

namespace hcpath {

/// Reference oracle: enumerates all HC-s-t paths of `q` by plain recursive
/// DFS with no index and no pruning beyond the hop cap. Exponential and
/// only suitable for tests, where it cross-validates every production
/// algorithm.
Status BruteForceEnumerate(const Graph& g, const PathQuery& q,
                           size_t query_index, PathSink* sink);

/// Convenience wrapper returning a materialized PathSet.
StatusOr<PathSet> BruteForcePaths(const Graph& g, const PathQuery& q);

}  // namespace hcpath

#endif  // HCPATH_CORE_BRUTE_FORCE_H_
