#ifndef HCPATH_CORE_CACHE_H_
#define HCPATH_CORE_CACHE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/path.h"
#include "core/sharing_graph.h"
#include "util/status.h"

namespace hcpath {

/// The materialized-result cache R of Algorithm 4 for one sharing graph:
/// node id -> PathSet with reference counting. A node's refcount is the
/// number of consumers that still need its results (sharing-graph users
/// plus attached queries for roots); Release() drops it and evicts at zero
/// (Algorithm 4 lines 14-16).
class ResultCache {
 public:
  /// `refcounts[i]` = initial consumer count of node i. `max_vertices`
  /// bounds the total vertices materialized at once (0 = unlimited).
  void Init(std::vector<uint32_t> refcounts, uint64_t max_vertices);

  /// Stores the result of `node`. Fails with ResourceExhausted when the
  /// memory cap would be exceeded. Nodes with zero consumers are dropped
  /// immediately.
  Status Put(SharingGraph::NodeId node, PathSet&& paths);

  /// Result of `node`; CHECK-fails if absent (topological processing
  /// guarantees presence for live dependencies).
  const PathSet& Get(SharingGraph::NodeId node) const;

  bool Contains(SharingGraph::NodeId node) const;

  /// Drops one reference; evicts the entry at zero.
  void Release(SharingGraph::NodeId node);

  uint64_t current_vertices() const { return current_vertices_; }
  uint64_t peak_vertices() const { return peak_vertices_; }
  uint64_t total_paths_cached() const { return total_paths_cached_; }

  /// True iff every refcount has drained to zero (tested invariant).
  bool Drained() const;

 private:
  std::vector<std::optional<PathSet>> entries_;
  std::vector<uint32_t> refcounts_;
  uint64_t max_vertices_ = 0;
  uint64_t current_vertices_ = 0;
  uint64_t peak_vertices_ = 0;
  uint64_t total_paths_cached_ = 0;
};

}  // namespace hcpath

#endif  // HCPATH_CORE_CACHE_H_
