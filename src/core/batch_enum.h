#ifndef HCPATH_CORE_BATCH_ENUM_H_
#define HCPATH_CORE_BATCH_ENUM_H_

#include <vector>

#include "core/options.h"
#include "core/path.h"
#include "core/query.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "util/status.h"

namespace hcpath {

/// BatchEnum (Algorithm 4), the paper's contribution: builds the shared
/// index, clusters the queries (Algorithm 2), detects common dominating
/// HC-s path queries per cluster and direction (Algorithm 3), enumerates
/// the sharing graphs in topological order with cached-result splicing, and
/// assembles every query's HC-s-t paths with the concatenation join.
/// `optimized_order` selects BatchEnum+.
Status RunBatchEnum(const Graph& g, const std::vector<PathQuery>& queries,
                    const BatchOptions& options, bool optimized_order,
                    PathSink* sink, BatchStats* stats);

}  // namespace hcpath

#endif  // HCPATH_CORE_BATCH_ENUM_H_
