#ifndef HCPATH_CORE_BATCH_ENUM_H_
#define HCPATH_CORE_BATCH_ENUM_H_

#include <vector>

#include "core/batch_context.h"
#include "core/options.h"
#include "core/path.h"
#include "core/query.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "util/status.h"

namespace hcpath {

/// BatchEnum (Algorithm 4), the paper's contribution: builds the shared
/// index, clusters the queries (Algorithm 2), detects common dominating
/// HC-s path queries per cluster and direction (Algorithm 3), enumerates
/// the sharing graphs in topological order with cached-result splicing, and
/// assembles every query's HC-s-t paths with the concatenation join.
/// `optimized_order` selects BatchEnum+.
///
/// `ctx` optionally supplies recycled per-batch state and the cross-batch
/// distance cache (see BatchContext); null gives a call-local context with
/// identical output. The emitted stream, Status, and work counters do not
/// depend on ctx reuse or cache warmth (docs/SERVICE.md).
Status RunBatchEnum(const Graph& g, const std::vector<PathQuery>& queries,
                    const BatchOptions& options, bool optimized_order,
                    PathSink* sink, BatchStats* stats,
                    BatchContext* ctx = nullptr);

}  // namespace hcpath

#endif  // HCPATH_CORE_BATCH_ENUM_H_
