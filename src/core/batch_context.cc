#include "core/batch_context.h"

namespace hcpath {

ThreadPool* BatchContext::PoolFor(int num_threads) {
  if (!pool_resolved_ || pool_threads_ != num_threads) {
    pool_ = ThreadPool::ForNumThreads(num_threads);
    pool_threads_ = num_threads;
    pool_resolved_ = true;
  }
  return pool_.get();
}

}  // namespace hcpath
