#ifndef HCPATH_CORE_SEARCH_H_
#define HCPATH_CORE_SEARCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bfs/distance_map.h"
#include "core/options.h"
#include "core/path.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "util/epoch_stamp.h"
#include "util/status.h"

namespace hcpath {

class ThreadPool;

/// One pruning constraint for a half search: a vertex u at suffix depth d
/// is admissible if dist(u) <= slack - d, where dist comes from the
/// opposite-endpoint distance map (Lemma 3.1). A shared HC-s path node
/// carries one entry per (transitively) sharing target; a single-query
/// search carries exactly one.
struct TargetSlack {
  const VertexDistMap* dist = nullptr;
  int slack = 0;
};

/// Kernel-dispatch decisions of one (KernelMode, Graph) pair, resolved
/// once — at enumerator/engine construction or per batch — instead of per
/// half search. A default-constructed value is the "unresolved" sentinel
/// (dfs_batch_cutover == 0, a value no mode produces); RunHalfSearch then
/// falls back to resolving from HalfSearchSpec::kernel, so one-shot
/// callers need not pre-resolve. The resolution is pure dispatch: every
/// (mode, graph) pair stores identical paths and counters either way.
struct ResolvedKernel {
  /// Adjacency blocks of >= this many vertices take the batched on-path
  /// probe; 0 = unresolved.
  size_t dfs_batch_cutover = 0;
  /// Cached suffixes of >= this many vertices take the batched splice
  /// disjointness probe.
  size_t splice_batch_cutover = 0;
  bool naive = false;     ///< KernelMode::kNaive: path-scan oracle
  bool prefetch = false;  ///< adjacency prefetch pays on this graph
  bool resolved() const { return dfs_batch_cutover != 0; }
};

/// Resolves `mode` against `g` (cutover thresholds, naive oracle flag,
/// prefetch gate). Cheap, but hot paths hoist it out of the per-search
/// setup: an enumerator resolves at construction, an engine once per
/// batch (docs/PERF.md "Kernel dispatch").
ResolvedKernel ResolveKernel(KernelMode mode, const Graph& g);

/// A materialized HC-s path result usable as a DFS shortcut: when the
/// search steps onto `vertex` with remaining budget <= `budget`, cached
/// paths are spliced instead of recursing (Algorithm 4 lines 22-23).
struct SearchDep {
  VertexId vertex = kInvalidVertex;
  Hop budget = 0;
  const PathSet* paths = nullptr;
};

/// Configuration of one HC-s path enumeration (Def 4.2): all simple paths
/// starting at `start` with at most `budget` hops in direction `dir`,
/// subject to index pruning.
struct HalfSearchSpec {
  VertexId start = kInvalidVertex;
  Hop budget = 0;
  Direction dir = Direction::kForward;

  /// Exact per-target pruning entries; may be empty when `global_min` is
  /// set instead.
  std::span<const TargetSlack> slacks;

  /// Optional O(1) pruning: dense min-dist-to-any-opposite-endpoint array
  /// plus the max slack across sharing queries (SharedPruning::kGlobalMin).
  const std::vector<Hop>* global_min = nullptr;
  int global_max_slack = 0;

  /// Optional shortcut table sorted by vertex id (BatchEnum only).
  std::span<const SearchDep> deps;

  /// When set, only paths that can participate in the canonical-split join
  /// are stored: length == budget, or ending at `store_target`. Used by the
  /// non-shared algorithms to avoid materializing useless prefixes.
  bool filter_for_join = false;
  VertexId store_target = kInvalidVertex;

  /// Abort with ResourceExhausted beyond this many stored paths (0 = off).
  uint64_t max_paths = 0;

  /// Optional intra-search parallelism: when set (and the budget is deep
  /// enough to amortize it), the root's first-level frontier is split into
  /// per-neighbor sub-searches scheduled on the pool, then sub-merged in
  /// neighbor order. Stored paths, their order, the work counters, and the
  /// success/error outcome are identical to pool == nullptr; only the
  /// counter values of *failed* runs may differ (the sequential search
  /// stops mid-subtree at the cap, sub-searches at their own boundary).
  ThreadPool* pool = nullptr;

  /// Optional recycled epoch-stamp tables (BatchContext::stamps) backing
  /// the O(1) on-path and splice-disjointness tests; nullptr falls back to
  /// a per-thread table. Pure scratch plumbing: the visit order, prune
  /// decisions, stored paths, and counters do not depend on it.
  EpochStampPool* stamps = nullptr;

  /// Probe-kernel selection for the on-path and splice disjointness tests;
  /// every mode stores identical paths and counters (see KernelMode).
  KernelMode kernel = KernelMode::kAuto;

  /// Pre-resolved dispatch for `kernel` on the search's graph. When left
  /// unresolved (the default), RunHalfSearch resolves it on entry; callers
  /// running many searches set it once via ResolveKernel to keep the
  /// mode switch and prefetch gate out of per-search setup.
  ResolvedKernel resolved;
};

/// Runs the recursive Search procedure (Algorithm 1 lines 9-13 /
/// Algorithm 4 lines 17-24) and appends every admissible path (including
/// the trivial path `(start)`) to `out`.
Status RunHalfSearch(const Graph& g, const HalfSearchSpec& spec,
                     PathSet* out, BatchStats* stats);

}  // namespace hcpath

#endif  // HCPATH_CORE_SEARCH_H_
