#include "core/stats.h"

#include <algorithm>
#include <cstdio>

namespace hcpath {

void BatchStats::Accumulate(const BatchStats& other) {
  build_index_seconds += other.build_index_seconds;
  cluster_seconds += other.cluster_seconds;
  detect_seconds += other.detect_seconds;
  enumerate_seconds += other.enumerate_seconds;
  total_seconds += other.total_seconds;
  edges_expanded += other.edges_expanded;
  edges_pruned += other.edges_pruned;
  paths_emitted += other.paths_emitted;
  join_probes += other.join_probes;
  join_rejected += other.join_rejected;
  join_index_rebuilds += other.join_index_rebuilds;
  num_clusters += other.num_clusters;
  sharing_nodes += other.sharing_nodes;
  dominating_nodes += other.dominating_nodes;
  sharing_edges += other.sharing_edges;
  shortcut_splices += other.shortcut_splices;
  cached_paths += other.cached_paths;
  cache_peak_vertices = std::max(cache_peak_vertices,
                                 other.cache_peak_vertices);
  cycle_edges_skipped += other.cycle_edges_skipped;
  distance_cache_hits += other.distance_cache_hits;
  distance_cache_misses += other.distance_cache_misses;
  // Concurrent peaks don't sum; the max is a sound (conservative) bound.
  merge_peak_buffered_bytes = std::max(merge_peak_buffered_bytes,
                                       other.merge_peak_buffered_bytes);
  merge_total_buffered_bytes += other.merge_total_buffered_bytes;
  merge_streamed_items += other.merge_streamed_items;
  merge_final_items += other.merge_final_items;
}

std::string BatchStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "total=%.3fs (index=%.3fs cluster=%.3fs detect=%.3fs enum=%.3fs) "
      "paths=%llu expanded=%llu pruned=%llu clusters=%llu "
      "nodes=%llu dominating=%llu splices=%llu cached=%llu joinidx=%llu",
      total_seconds, build_index_seconds, cluster_seconds, detect_seconds,
      enumerate_seconds, static_cast<unsigned long long>(paths_emitted),
      static_cast<unsigned long long>(edges_expanded),
      static_cast<unsigned long long>(edges_pruned),
      static_cast<unsigned long long>(num_clusters),
      static_cast<unsigned long long>(sharing_nodes),
      static_cast<unsigned long long>(dominating_nodes),
      static_cast<unsigned long long>(shortcut_splices),
      static_cast<unsigned long long>(cached_paths),
      static_cast<unsigned long long>(join_index_rebuilds));
  return buf;
}

void TenantAdmissionStats::Accumulate(const TenantAdmissionStats& other) {
  submitted += other.submitted;
  admitted += other.admitted;
  completed += other.completed;
  rejected += other.rejected;
  fast_failed += other.fast_failed;
  shed += other.shed;
  blocked += other.blocked;
  lag_failed += other.lag_failed;
}

std::string TenantAdmissionStats::ToString() const {
  char buf[192];
  std::snprintf(
      buf, sizeof(buf),
      "submitted=%llu admitted=%llu completed=%llu rejected=%llu "
      "fast_failed=%llu shed=%llu blocked=%llu lag_failed=%llu",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(fast_failed),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(blocked),
      static_cast<unsigned long long>(lag_failed));
  return buf;
}

}  // namespace hcpath
