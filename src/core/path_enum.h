#ifndef HCPATH_CORE_PATH_ENUM_H_
#define HCPATH_CORE_PATH_ENUM_H_

#include "bfs/distance_map.h"
#include "core/join.h"
#include "core/path.h"
#include "core/query.h"
#include "core/search.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "util/epoch_stamp.h"
#include "util/status.h"

namespace hcpath {

/// Options for the single-query engine.
struct SingleQueryOptions {
  /// Optimized search order (the "+" variants in Section V): instead of the
  /// fixed ⌈k/2⌉/⌊k/2⌋ split, the forward/backward hop budgets are chosen
  /// from the per-level reach counts of the two endpoint BFS maps so the
  /// cheaper side absorbs more hops.
  bool optimized_order = false;
  uint64_t max_paths = 0;  ///< 0 = unlimited
  /// Probe-kernel selection forwarded to the half searches and the join;
  /// every mode emits byte-identical output (see KernelMode).
  KernelMode kernel = KernelMode::kAuto;
  /// Pre-resolved dispatch for `kernel` (ResolveKernel). Batch callers set
  /// it once per batch/enumerator so EnumerateWithMaps skips the
  /// per-query resolution; the default (unresolved) resolves lazily.
  ResolvedKernel resolved;
};

/// Chooses the forward hop budget hf in [1, k] minimizing the estimated
/// bidirectional search cost; ties prefer the balanced split ⌈k/2⌉.
/// `to_target` maps v -> dist(v, t); `from_source` maps v -> dist(s, v).
Hop ChooseForwardBudget(const VertexDistMap& from_source,
                        const VertexDistMap& to_target, int k,
                        bool optimized_order);

/// PathEnum (Sun et al., SIGMOD'21), the paper's single-query
/// state-of-the-art baseline: builds a per-query distance index with two
/// hop-capped BFSs, then runs the bidirectional pruned DFS and the
/// concatenation join (Section III). Emits every HC-s-t path of `q` to
/// `sink` tagged with `query_index`.
Status PathEnumQuery(const Graph& g, const PathQuery& q,
                     const SingleQueryOptions& options, size_t query_index,
                     PathSink* sink, BatchStats* stats);

/// Core of Algorithm 1's per-query loop: enumerates `q` given prebuilt
/// endpoint distance maps (from a shared index or per-query BFSs).
/// `stamps` / `join_scratch` recycle the kernel working sets across
/// queries (BatchContext); nullptr falls back to per-thread scratch.
Status EnumerateWithMaps(const Graph& g, const PathQuery& q,
                         const VertexDistMap& from_source,
                         const VertexDistMap& to_target,
                         const SingleQueryOptions& options,
                         size_t query_index, PathSink* sink,
                         BatchStats* stats,
                         EpochStampPool* stamps = nullptr,
                         JoinScratchPool* join_scratch = nullptr);

}  // namespace hcpath

#endif  // HCPATH_CORE_PATH_ENUM_H_
