#ifndef HCPATH_CORE_SHARING_GRAPH_H_
#define HCPATH_CORE_SHARING_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "bfs/distance_map.h"
#include "graph/graph.h"

namespace hcpath {

/// The query sharing graph Ψ (Def 4.7) for one cluster and one traversal
/// direction. Nodes are HC-s path queries q_{v, budget}; a directed edge
/// dep -> user records that the user's enumeration can splice the dep's
/// materialized results when it steps onto dep's anchor vertex.
///
/// Invariants (checked in tests):
///  * acyclic — reuse edges that would close a cycle are skipped
///    (DESIGN.md D5);
///  * at most one node per anchor vertex at any time, the one with the
///    largest budget (Theorem 4.1).
class SharingGraph {
 public:
  using NodeId = uint32_t;
  static constexpr NodeId kNoNode = UINT32_MAX;

  /// One (target, slack) pruning entry: `query` indexes the batch, and the
  /// relevant endpoint map (target map for forward graphs, source map for
  /// backward) is resolved at enumeration time.
  struct SlackEntry {
    uint32_t query = 0;
    int slack = 0;
  };

  struct Node {
    VertexId vertex = kInvalidVertex;
    Hop budget = 0;
    bool is_root = false;
    std::vector<NodeId> deps;   ///< dominating queries this node can splice
    std::vector<NodeId> users;  ///< nodes that splice this node's results
    /// vertex -> dep node, sorted by vertex (built as edges are added).
    std::vector<std::pair<VertexId, NodeId>> dep_at;
    /// pruning slacks; for roots seeded from attached queries, for others
    /// propagated by PropagateSlacks().
    std::vector<SlackEntry> slacks;
    /// batch query indices attached to this root (empty for non-roots).
    std::vector<uint32_t> attached_queries;
  };

  NodeId AddNode(VertexId vertex, Hop budget, bool is_root);

  size_t NumNodes() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  Node& mutable_node(NodeId id) { return nodes_[id]; }

  /// Adds edge dep -> user plus the user's dep_at entry for the dep's
  /// anchor vertex. Returns false (and adds nothing) if the edge would
  /// create a cycle or already exists.
  bool TryAddEdge(NodeId dep, NodeId user);

  /// Topological order with dependencies before users (Kahn).
  std::vector<NodeId> TopologicalOrder() const;

  /// Pushes root slacks down to dependencies: a dep inherits each user
  /// slack shifted by the minimum splice depth max(0, κ_user − κ_dep),
  /// keeping the max slack per (query, endpoint) (DESIGN.md D3).
  void PropagateSlacks();

  /// Total number of edges.
  uint64_t NumEdges() const { return num_edges_; }

  /// Count of reuse edges skipped by the cycle guard.
  uint64_t cycle_edges_skipped() const { return cycle_edges_skipped_; }

 private:
  bool WouldCreateCycle(NodeId dep, NodeId user) const;

  std::vector<Node> nodes_;
  uint64_t num_edges_ = 0;
  uint64_t cycle_edges_skipped_ = 0;
};

}  // namespace hcpath

#endif  // HCPATH_CORE_SHARING_GRAPH_H_
