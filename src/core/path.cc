#include "core/path.h"

#include <algorithm>

#include "util/hash.h"

namespace hcpath {

std::string PathToString(PathView p) {
  std::string out = "(";
  for (size_t i = 0; i < p.size(); ++i) {
    if (i > 0) out += ", ";
    out += "v" + std::to_string(p[i]);
  }
  out += ")";
  return out;
}

bool IsSimplePath(PathView p) {
  for (size_t i = 0; i < p.size(); ++i) {
    for (size_t j = i + 1; j < p.size(); ++j) {
      if (p[i] == p[j]) return false;
    }
  }
  return true;
}

bool PathExistsInGraph(const Graph& g, PathView p) {
  if (p.empty()) return false;
  for (VertexId v : p) {
    if (v >= g.NumVertices()) return false;
  }
  for (size_t i = 0; i + 1 < p.size(); ++i) {
    if (!g.HasEdge(p[i], p[i + 1])) return false;
  }
  return true;
}

std::vector<std::vector<VertexId>> PathSet::ToSortedVectors() const {
  std::vector<std::vector<VertexId>> out;
  out.reserve(size());
  for (size_t i = 0; i < size(); ++i) {
    PathView p = (*this)[i];
    out.emplace_back(p.begin(), p.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t PathSet::Fingerprint() const {
  // Sum of per-path hashes is order-insensitive; each path hashed over its
  // vertices and length so multisets compare correctly.
  uint64_t acc = 0;
  for (size_t i = 0; i < size(); ++i) {
    PathView p = (*this)[i];
    uint64_t h = Mix64(p.size());
    for (VertexId v : p) {
      h = Mix64(h ^ (0x517cc1b727220a95ULL + v));
    }
    acc += h;
  }
  return acc ^ Mix64(size());
}

uint64_t CountingSink::Total() const {
  uint64_t total = 0;
  for (uint64_t c : counts_) total += c;
  return total;
}

}  // namespace hcpath
