#include "core/path_enum.h"

#include <algorithm>
#include <array>

#include "bfs/bfs.h"
#include "core/join.h"
#include "core/search.h"
#include "util/timer.h"

namespace hcpath {

Hop ChooseForwardBudget(const VertexDistMap& from_source,
                        const VertexDistMap& to_target, int k,
                        bool optimized_order) {
  const Hop balanced = static_cast<Hop>((k + 1) / 2);
  if (!optimized_order) return balanced;

  // Cumulative reach counts per level: cum_s[l] = #vertices within l-1 hops
  // of s. The bidirectional cost is dominated by |forward set| x |backward
  // set| (the join bound), so we minimize the product of the two reaches —
  // a deliberately cheap proxy for PathEnum's cost-based join ordering.
  // The split is confined to a window of +-2 around the balanced split to
  // bound memory when the proxy is misleading.
  std::array<uint64_t, kMaxHops + 1> level_s{}, level_t{};
  from_source.ForEach([&](VertexId, Hop d) {
    if (d <= k) ++level_s[d];
  });
  to_target.ForEach([&](VertexId, Hop d) {
    if (d <= k) ++level_t[d];
  });
  std::array<uint64_t, kMaxHops + 2> cum_s{}, cum_t{};
  for (int l = 0; l <= k; ++l) {
    cum_s[l + 1] = cum_s[l] + level_s[l];
    cum_t[l + 1] = cum_t[l] + level_t[l];
  }

  const int lo = std::max(1, balanced - 2);
  const int hi = std::min(k, balanced + 2);
  // Sum of the two reaches as the cost proxy. DFS work is convex in the
  // hop budget, so a deviation from the balanced split must be backed by
  // strong evidence: we only move when the estimate improves by 2x (a
  // product proxy would chase degenerate extreme splits, and marginal
  // estimated wins lose to the convexity the proxy cannot see).
  const uint64_t balanced_cost =
      cum_s[balanced + 1] + cum_t[k - balanced + 1];
  Hop best = balanced;
  uint64_t best_cost = balanced_cost;
  for (int hf = lo; hf <= hi; ++hf) {
    if (hf == balanced) continue;
    const int hb = k - hf;
    const uint64_t cost = cum_s[hf + 1] + cum_t[hb + 1];
    if (cost * 2 <= balanced_cost && cost < best_cost) {
      best_cost = cost;
      best = static_cast<Hop>(hf);
    }
  }
  return best;
}

Status EnumerateWithMaps(const Graph& g, const PathQuery& q,
                         const VertexDistMap& from_source,
                         const VertexDistMap& to_target,
                         const SingleQueryOptions& options,
                         size_t query_index, PathSink* sink,
                         BatchStats* stats, EpochStampPool* stamps,
                         JoinScratchPool* join_scratch) {
  // Unreachable within k hops: no results.
  Hop st = to_target.Lookup(q.s);
  if (st == kUnreachable || st > q.k) return Status::OK();

  const Hop hf = ChooseForwardBudget(from_source, to_target, q.k,
                                     options.optimized_order);
  const Hop hb = static_cast<Hop>(q.k - hf);

  const TargetSlack fwd_slack[] = {{&to_target, q.k}};
  const TargetSlack bwd_slack[] = {{&from_source, q.k}};

  const ResolvedKernel rk = options.resolved.resolved()
                                ? options.resolved
                                : ResolveKernel(options.kernel, g);

  PathSet fwd_paths;
  HalfSearchSpec fwd;
  fwd.start = q.s;
  fwd.budget = hf;
  fwd.dir = Direction::kForward;
  fwd.slacks = fwd_slack;
  fwd.filter_for_join = true;
  fwd.store_target = q.t;
  fwd.max_paths = options.max_paths;
  fwd.stamps = stamps;
  fwd.kernel = options.kernel;
  fwd.resolved = rk;
  HCPATH_RETURN_NOT_OK(RunHalfSearch(g, fwd, &fwd_paths, stats));

  PathSet bwd_paths;
  if (hb > 0) {
    HalfSearchSpec bwd;
    bwd.start = q.t;
    bwd.budget = hb;
    bwd.dir = Direction::kBackward;
    bwd.slacks = bwd_slack;
    bwd.max_paths = options.max_paths;
    bwd.stamps = stamps;
    bwd.kernel = options.kernel;
    bwd.resolved = rk;
    HCPATH_RETURN_NOT_OK(RunHalfSearch(g, bwd, &bwd_paths, stats));
  }

  JoinSpec join;
  join.forward = &fwd_paths;
  join.backward = &bwd_paths;
  join.s = q.s;
  join.t = q.t;
  join.hf = hf;
  join.hb = hb;
  join.max_paths = options.max_paths;
  join.kernel = options.kernel;
  auto emitted = JoinAndEmit(join, query_index, sink, stats, join_scratch);
  if (!emitted.ok()) return emitted.status();
  return Status::OK();
}

Status PathEnumQuery(const Graph& g, const PathQuery& q,
                     const SingleQueryOptions& options, size_t query_index,
                     PathSink* sink, BatchStats* stats) {
  HCPATH_RETURN_NOT_OK(ValidateQueries(g, {q}));
  double index_seconds = 0;
  VertexDistMap from_source, to_target;
  {
    ScopedTimer timer(&index_seconds);
    from_source = HopCappedBfs(g, q.s, static_cast<Hop>(q.k),
                               Direction::kForward);
    to_target = HopCappedBfs(g, q.t, static_cast<Hop>(q.k),
                             Direction::kBackward);
  }
  if (stats != nullptr) stats->build_index_seconds += index_seconds;

  double enum_seconds = 0;
  Status st;
  {
    ScopedTimer timer(&enum_seconds);
    st = EnumerateWithMaps(g, q, from_source, to_target, options,
                           query_index, sink, stats);
  }
  if (stats != nullptr) {
    stats->enumerate_seconds += enum_seconds;
    stats->total_seconds += index_seconds + enum_seconds;
  }
  return st;
}

}  // namespace hcpath
