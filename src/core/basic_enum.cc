#include "core/basic_enum.h"

#include "core/path_enum.h"
#include "util/timer.h"

namespace hcpath {

void BuildBatchIndex(const Graph& g, const std::vector<PathQuery>& queries,
                     DistanceIndex* index, BatchStats* stats) {
  std::vector<VertexId> sources, targets;
  std::vector<Hop> hops;
  sources.reserve(queries.size());
  targets.reserve(queries.size());
  hops.reserve(queries.size());
  for (const PathQuery& q : queries) {
    sources.push_back(q.s);
    targets.push_back(q.t);
    hops.push_back(static_cast<Hop>(q.k));
  }
  index->Build(g, sources, targets, hops);
  if (stats != nullptr) {
    stats->build_index_seconds += index->build_seconds();
  }
}

Status RunBasicEnum(const Graph& g, const std::vector<PathQuery>& queries,
                    const BatchOptions& options, bool optimized_order,
                    PathSink* sink, BatchStats* stats) {
  HCPATH_RETURN_NOT_OK(ValidateQueries(g, queries));
  WallTimer total;
  DistanceIndex index;
  BuildBatchIndex(g, queries, &index, stats);

  SingleQueryOptions sq;
  sq.optimized_order = optimized_order;
  sq.max_paths = options.max_paths_per_query;

  double enum_seconds = 0;
  {
    ScopedTimer timer(&enum_seconds);
    for (size_t i = 0; i < queries.size(); ++i) {
      HCPATH_RETURN_NOT_OK(EnumerateWithMaps(
          g, queries[i], index.FromSourceMap(i), index.ToTargetMap(i), sq, i,
          sink, stats));
    }
  }
  if (stats != nullptr) {
    stats->enumerate_seconds += enum_seconds;
    stats->total_seconds += total.ElapsedSeconds();
  }
  return Status::OK();
}

}  // namespace hcpath
