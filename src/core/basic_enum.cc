#include "core/basic_enum.h"

#include <memory>

#include "core/parallel_merge.h"
#include "core/path_enum.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hcpath {

void BuildBatchIndex(const Graph& g, const std::vector<PathQuery>& queries,
                     DistanceIndex* index, BatchStats* stats,
                     ThreadPool* pool, BatchContext* ctx) {
  std::vector<VertexId> sources, targets;
  std::vector<Hop> hops;
  sources.reserve(queries.size());
  targets.reserve(queries.size());
  hops.reserve(queries.size());
  for (const PathQuery& q : queries) {
    sources.push_back(q.s);
    targets.push_back(q.t);
    hops.push_back(static_cast<Hop>(q.k));
  }
  index->Build(g, sources, targets, hops, pool,
               ctx != nullptr ? ctx->distance_cache : nullptr,
               ctx != nullptr ? &ctx->fwd_bfs_scratch : nullptr,
               ctx != nullptr ? &ctx->bwd_bfs_scratch : nullptr,
               ctx != nullptr ? ctx->graph_epoch : 0);
  if (stats != nullptr) {
    stats->build_index_seconds += index->build_seconds();
    stats->distance_cache_hits += index->cache_hits();
    stats->distance_cache_misses += index->cache_misses();
  }
}

Status RunBasicEnum(const Graph& g, const std::vector<PathQuery>& queries,
                    const BatchOptions& options, bool optimized_order,
                    PathSink* sink, BatchStats* stats, BatchContext* ctx) {
  HCPATH_RETURN_NOT_OK(options.Validate());
  HCPATH_RETURN_NOT_OK(ValidateQueries(g, queries));
  WallTimer total;

  // One-shot callers get a call-local context; a long-lived caller's ctx
  // recycles the index storage, BFS scratch, and merge buffers instead.
  BatchContext local_ctx;
  BatchContext& c = ctx != nullptr ? *ctx : local_ctx;
  ThreadPool* pool = c.PoolFor(options.num_threads);

  DistanceIndex& index = c.index;
  BuildBatchIndex(g, queries, &index, stats, pool, &c);

  SingleQueryOptions sq;
  sq.optimized_order = optimized_order;
  sq.max_paths = options.max_paths_per_query;
  sq.kernel = options.kernel_mode;
  sq.resolved = ResolveKernel(options.kernel_mode, g);  // once per batch

  double enum_seconds = 0;
  if (pool == nullptr) {
    // Sequential reference implementation.
    ScopedTimer timer(&enum_seconds);
    for (size_t i = 0; i < queries.size(); ++i) {
      HCPATH_RETURN_NOT_OK(EnumerateWithMaps(
          g, queries[i], index.FromSourceMap(i), index.ToTargetMap(i), sq, i,
          sink, stats, &c.stamps, &c.join_scratch));
    }
  } else {
    // Query-parallel: each query emits into its own private buffer and
    // accumulates its own stats; RunBufferedParallel streams the buffers
    // out in query order as they finish, so the downstream sink sees the
    // sequential emission stream and the counters match the sequential run
    // exactly, while peak buffering tracks in-flight queries only.
    ScopedTimer timer(&enum_seconds);
    MergeMetrics mm;
    Status st = RunBufferedParallel(
        *pool, queries.size(), sink, stats,
        [&](size_t i, PathSink* query_sink, BatchStats* query_stats) {
          return EnumerateWithMaps(g, queries[i], index.FromSourceMap(i),
                                   index.ToTargetMap(i), sq, i, query_sink,
                                   query_stats, &c.stamps, &c.join_scratch);
        },
        &mm, &c.sinks);
    FoldMergeMetrics(mm, stats);
    HCPATH_RETURN_NOT_OK(st);
  }
  if (stats != nullptr) {
    stats->enumerate_seconds += enum_seconds;
    stats->total_seconds += total.ElapsedSeconds();
  }
  return Status::OK();
}

}  // namespace hcpath
