#include "core/batch_enum.h"

#include <algorithm>
#include <memory>

#include "core/basic_enum.h"
#include "core/cache.h"
#include "core/clustering.h"
#include "core/detect.h"
#include "core/join.h"
#include "core/parallel_merge.h"
#include "core/path_enum.h"
#include "core/search.h"
#include "core/similarity.h"
#include "index/distance_index.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hcpath {

namespace {

using NodeId = SharingGraph::NodeId;

/// Consumer count of a node: sharing users (unless reuse is disabled) plus
/// one per attached query (roots are read once more at assembly).
uint32_t ConsumerCount(const SharingGraph::Node& node,
                       const BatchOptions& options) {
  uint32_t users = options.disable_cache_reuse
                       ? 0
                       : static_cast<uint32_t>(node.users.size());
  return users + static_cast<uint32_t>(node.attached_queries.size());
}

/// Enumerates every HC-s path node of one sharing graph in topological
/// order, filling `cache` (Algorithm 4 lines 6-10 and 14-16).
Status EnumerateSharingGraph(const Graph& g, Direction dir,
                             const SharingGraph& psi,
                             const std::vector<PathQuery>& queries,
                             const DistanceIndex& index,
                             const BatchOptions& options,
                             ResultCache* cache, BatchStats* stats,
                             ThreadPool* pool, EpochStampPool* stamps) {
  std::vector<uint32_t> refcounts(psi.NumNodes());
  for (NodeId id = 0; id < psi.NumNodes(); ++id) {
    refcounts[id] = ConsumerCount(psi.node(id), options);
  }
  cache->Init(std::move(refcounts), options.max_cache_vertices);

  // Kernel dispatch resolved once per sharing graph, not per node search.
  const ResolvedKernel rk = ResolveKernel(options.kernel_mode, g);

  for (NodeId id : psi.TopologicalOrder()) {
    const SharingGraph::Node& node = psi.node(id);
    const bool wanted = ConsumerCount(node, options) > 0;
    if (!wanted) continue;  // isolated node (reuse disabled or all edges
                            // dropped); nothing reads it

    // Resolve pruning slacks against the batch index: forward searches
    // prune with target maps, backward with source maps. Queries sharing
    // the same opposite endpoint collapse to one entry (max slack), which
    // keeps the per-edge pruning loop short for near-duplicate clusters.
    std::vector<TargetSlack> slacks;
    std::vector<VertexId> slack_endpoints;
    int max_slack = 0;
    slacks.reserve(node.slacks.size());
    for (const auto& se : node.slacks) {
      const VertexId endpoint = dir == Direction::kForward
                                    ? queries[se.query].t
                                    : queries[se.query].s;
      const VertexDistMap* map = dir == Direction::kForward
                                     ? &index.ToTargetMap(se.query)
                                     : &index.FromSourceMap(se.query);
      bool merged = false;
      for (size_t i = 0; i < slack_endpoints.size(); ++i) {
        if (slack_endpoints[i] == endpoint) {
          // Same opposite endpoint: keep the larger (more permissive)
          // slack and the map whose cap covers it.
          if (se.slack > slacks[i].slack) slacks[i] = {map, se.slack};
          merged = true;
          break;
        }
      }
      if (!merged) {
        slacks.push_back({map, se.slack});
        slack_endpoints.push_back(endpoint);
      }
      max_slack = std::max(max_slack, se.slack);
    }
    // Most permissive entries first: Admissible() exits on the first hit.
    std::sort(slacks.begin(), slacks.end(),
              [](const TargetSlack& a, const TargetSlack& b) {
                return a.slack > b.slack;
              });

    // Shortcut table from the reuse edges discovered by detection.
    std::vector<SearchDep> deps;
    const SearchDep* self_dep = nullptr;
    if (!options.disable_cache_reuse) {
      deps.reserve(node.dep_at.size());
      for (const auto& [vertex, dep_id] : node.dep_at) {
        deps.push_back(
            {vertex, psi.node(dep_id).budget, &cache->Get(dep_id)});
      }
      for (const SearchDep& d : deps) {
        if (d.vertex == node.vertex && d.budget >= node.budget) {
          self_dep = &d;
          break;
        }
      }
    }

    PathSet result;
    if (self_dep != nullptr) {
      // This node was displaced by a larger-budget node anchored at the
      // same vertex: derive by filtering the cached superset (Theorem 4.1).
      const PathSet& src = *self_dep->paths;
      for (size_t i = 0; i < src.size(); ++i) {
        if (src.Length(i) <= node.budget) {
          if (options.max_paths_per_query != 0 &&
              result.size() >= options.max_paths_per_query) {
            return Status::ResourceExhausted(
                "HC-s path node exceeded max_paths_per_query");
          }
          result.Add(src[i]);
          if (stats != nullptr) ++stats->shortcut_splices;
        }
      }
    } else {
      HalfSearchSpec spec;
      spec.start = node.vertex;
      spec.budget = node.budget;
      spec.dir = dir;
      if (options.shared_pruning == SharedPruning::kGlobalMin) {
        spec.global_min = &index.MinDistToOpposite(dir);
        spec.global_max_slack = max_slack;
      } else {
        spec.slacks = slacks;
      }
      spec.deps = deps;
      spec.max_paths = options.max_paths_per_query;
      spec.kernel = options.kernel_mode;
      spec.resolved = rk;
      // Deep root searches of a giant cluster frontier-split on the pool
      // (search.cc); the sub-merge keeps the stored order sequential.
      spec.pool = pool;
      spec.stamps = stamps;
      // A forward root that nobody shares only feeds its own query's join,
      // so useless prefixes need not be materialized — this makes
      // BatchEnum degrade to BasicEnum cost when there is no sharing.
      if (dir == Direction::kForward && node.is_root && node.users.empty() &&
          node.attached_queries.size() == 1 && deps.empty()) {
        spec.filter_for_join = true;
        spec.store_target = queries[node.attached_queries[0]].t;
      }
      HCPATH_RETURN_NOT_OK(RunHalfSearch(g, spec, &result, stats));
    }

    if (stats != nullptr) stats->cached_paths += result.size();
    HCPATH_RETURN_NOT_OK(cache->Put(id, std::move(result)));
    if (!options.disable_cache_reuse) {
      for (NodeId dep_id : node.deps) cache->Release(dep_id);
    }
    if (stats != nullptr) {
      stats->cache_peak_vertices =
          std::max(stats->cache_peak_vertices, cache->peak_vertices());
    }
  }
  return Status::OK();
}

/// Phases 2+3 for one cluster: detection, shared enumeration, assembly.
/// Reads only immutable batch state (graph, queries, index, budgets), so
/// independent clusters can run on different workers; every mutable object
/// (sharing graphs, caches, sink, stats) is local to the call.
///
/// With a non-null `pool` and enough live queries
/// (BatchOptions::intra_cluster_min_queries) the cluster's own phases also
/// run as sub-tasks: the two detection traversals and the two sharing-graph
/// enumerations pair up, deep root searches frontier-split (search.cc), and
/// the per-query assembly joins go through the same buffered streaming
/// merge as the clusters themselves. Every sub-merge is in input order, so
/// the cluster's emission stream, counters, and error outcome match the
/// sequential path — this is what keeps thread scaling on skewed batches
/// where one giant cluster would otherwise serialize on one worker.
Status ProcessCluster(const Graph& g, const std::vector<PathQuery>& queries,
                      const BatchOptions& options,
                      const std::vector<size_t>& cluster,
                      const std::vector<Hop>& hf, const std::vector<Hop>& hb,
                      const std::vector<bool>& reachable,
                      const DistanceIndex& index, ThreadPool* pool,
                      BatchContext& bctx, PathSink* sink,
                      BatchStats* stats) {
  std::vector<Hop> fwd_budgets, bwd_budgets;
  std::vector<bool> skip;
  size_t live = 0;
  for (size_t qi : cluster) {
    fwd_budgets.push_back(hf[qi]);
    bwd_budgets.push_back(hb[qi]);
    skip.push_back(!reachable[qi]);
    if (reachable[qi]) ++live;
  }
  if (live == 0) return Status::OK();

  const size_t intra_min = static_cast<size_t>(
      std::max(2, options.intra_cluster_min_queries));
  const bool intra =
      pool != nullptr && pool->num_workers() > 0 && live >= intra_min;
  ThreadPool* intra_pool = intra ? pool : nullptr;

  DetectionResult fwd, bwd;
  {
    WallTimer detect_timer;
    DetectBothDirections(g, queries, cluster, fwd_budgets, bwd_budgets,
                         skip, index, options, intra_pool, &fwd, &bwd,
                         stats);
    if (stats != nullptr) stats->detect_seconds += detect_timer.ElapsedSeconds();
  }

  double enum_seconds = 0;
  {
    ScopedTimer timer(&enum_seconds);
    ResultCache fwd_cache, bwd_cache;
    if (intra_pool != nullptr) {
      // The two directions touch disjoint caches and private stats, so
      // they enumerate concurrently; stats fold forward-first and the
      // forward error (the one the sequential order hits first) wins.
      Status dir_status[2];
      BatchStats dir_stats[2];
      intra_pool->ParallelFor(2, [&](size_t d) {
        if (d == 0) {
          dir_status[0] = EnumerateSharingGraph(
              g, Direction::kForward, fwd.psi, queries, index, options,
              &fwd_cache, stats != nullptr ? &dir_stats[0] : nullptr,
              intra_pool, &bctx.stamps);
        } else {
          dir_status[1] = EnumerateSharingGraph(
              g, Direction::kBackward, bwd.psi, queries, index, options,
              &bwd_cache, stats != nullptr ? &dir_stats[1] : nullptr,
              intra_pool, &bctx.stamps);
        }
      });
      if (stats != nullptr) {
        stats->Accumulate(dir_stats[0]);
        stats->Accumulate(dir_stats[1]);
      }
      HCPATH_RETURN_NOT_OK(dir_status[0]);
      HCPATH_RETURN_NOT_OK(dir_status[1]);
    } else {
      HCPATH_RETURN_NOT_OK(EnumerateSharingGraph(
          g, Direction::kForward, fwd.psi, queries, index, options,
          &fwd_cache, stats, nullptr, &bctx.stamps));
      HCPATH_RETURN_NOT_OK(EnumerateSharingGraph(
          g, Direction::kBackward, bwd.psi, queries, index, options,
          &bwd_cache, stats, nullptr, &bctx.stamps));
    }

    // Assembly (Algorithm 4 lines 11-13): per-query concatenation join
    // over the shared root results, filtered to this query's budgets.
    auto join_one = [&](size_t pos, PathSink* join_sink,
                        BatchStats* join_stats) -> Status {
      if (skip[pos]) return Status::OK();
      const size_t qi = cluster[pos];
      JoinSpec join;
      join.forward = &fwd_cache.Get(fwd.root_of[pos]);
      join.backward = &bwd_cache.Get(bwd.root_of[pos]);
      join.s = queries[qi].s;
      join.t = queries[qi].t;
      join.hf = hf[qi];
      join.hb = hb[qi];
      join.max_paths = options.max_paths_per_query;
      join.kernel = options.kernel_mode;
      return JoinAndEmit(join, qi, join_sink, join_stats,
                         &bctx.join_scratch)
          .status();
    };
    if (intra_pool != nullptr) {
      // Query-parallel assembly: joins only read the caches; releases move
      // after the merge (ResultCache is not thread-safe). The streaming
      // merge reproduces the sequential per-query emission order.
      MergeMetrics mm;
      Status st = RunBufferedParallel(*intra_pool, cluster.size(), sink,
                                      stats, join_one, &mm, &bctx.sinks);
      FoldMergeMetrics(mm, stats);
      HCPATH_RETURN_NOT_OK(st);
      for (size_t pos = 0; pos < cluster.size(); ++pos) {
        if (skip[pos]) continue;
        fwd_cache.Release(fwd.root_of[pos]);
        bwd_cache.Release(bwd.root_of[pos]);
      }
    } else {
      for (size_t pos = 0; pos < cluster.size(); ++pos) {
        if (skip[pos]) continue;
        HCPATH_RETURN_NOT_OK(join_one(pos, sink, stats));
        fwd_cache.Release(fwd.root_of[pos]);
        bwd_cache.Release(bwd.root_of[pos]);
      }
    }
    HCPATH_DCHECK(fwd_cache.Drained());
    HCPATH_DCHECK(bwd_cache.Drained());
  }
  if (stats != nullptr) stats->enumerate_seconds += enum_seconds;
  return Status::OK();
}

}  // namespace

Status RunBatchEnum(const Graph& g, const std::vector<PathQuery>& queries,
                    const BatchOptions& options, bool optimized_order,
                    PathSink* sink, BatchStats* stats, BatchContext* ctx) {
  HCPATH_RETURN_NOT_OK(options.Validate());
  HCPATH_RETURN_NOT_OK(ValidateQueries(g, queries));
  WallTimer total;

  // One-shot callers get a call-local context; a long-lived caller's ctx
  // recycles the index storage, BFS scratch, clustering scratch, and merge
  // buffers, and carries the cross-batch distance cache.
  BatchContext local_ctx;
  BatchContext& c = ctx != nullptr ? *ctx : local_ctx;
  ThreadPool* pool = c.PoolFor(options.num_threads);

  // Phase 0: shared index (Algorithm 4 lines 1-2).
  DistanceIndex& index = c.index;
  BuildBatchIndex(g, queries, &index, stats, pool, &c);

  const size_t n = queries.size();
  std::vector<bool> reachable(n);
  for (size_t i = 0; i < n; ++i) {
    Hop d = index.DistToTarget(i, queries[i].s);
    reachable[i] = d != kUnreachable && d <= queries[i].k;
  }

  // Phase 1: query clustering (Algorithm 2).
  std::vector<std::vector<size_t>> clusters;
  {
    WallTimer cluster_timer;
    if (options.disable_clustering || n < 2) {
      clusters.emplace_back();
      for (size_t i = 0; i < n; ++i) clusters[0].push_back(i);
    } else {
      SimilarityMatrix sim =
          ComputeSimilarityMatrix(g, queries, index, options.similarity_mode,
                                  pool, &c.similarity);
      clusters = ClusterQueries(sim, options.gamma);
    }
    if (stats != nullptr) {
      stats->cluster_seconds += cluster_timer.ElapsedSeconds();
      stats->num_clusters += clusters.size();
    }
  }

  // Hop budget split per query. The optimized search order (the "+"
  // variants) only applies to queries clustered alone: queries that share
  // need aligned ⌈k/2⌉/⌊k/2⌋ budgets for dominating queries to meet at the
  // same remaining budget, and misaligned splits would both shrink sharing
  // and inflate the detection cones.
  std::vector<size_t> cluster_size_of(n, 1);
  for (const std::vector<size_t>& cluster : clusters) {
    for (size_t qi : cluster) cluster_size_of[qi] = cluster.size();
  }
  std::vector<Hop> hf(n), hb(n);
  for (size_t i = 0; i < n; ++i) {
    const bool optimize_this = optimized_order && cluster_size_of[i] == 1;
    hf[i] = ChooseForwardBudget(index.FromSourceMap(i), index.ToTargetMap(i),
                                queries[i].k, optimize_this);
    hb[i] = static_cast<Hop>(queries[i].k - hf[i]);
  }

  // Phases 2+3 per cluster: detection, shared enumeration, assembly.
  if (pool == nullptr || clusters.size() < 2) {
    // One cluster (or sequential run): emit straight into the sink. A
    // fully skewed parallel batch lands here with its single giant cluster
    // and parallelizes *inside* ProcessCluster instead.
    for (const std::vector<size_t>& cluster : clusters) {
      HCPATH_RETURN_NOT_OK(ProcessCluster(g, queries, options, cluster, hf,
                                          hb, reachable, index, pool, c,
                                          sink, stats));
    }
  } else {
    // Cluster-parallel: clusters are independent by construction
    // (Algorithm 2 partitions the batch), so each runs as one buffered
    // task; the streaming ordered merge (parallel_merge.h) reproduces the
    // sequential emission stream, counters, and error semantics bit for
    // bit while draining finished prefixes early. Big clusters additionally
    // fan out into sub-tasks inside ProcessCluster.
    MergeMetrics mm;
    Status st = RunBufferedParallel(
        *pool, clusters.size(), sink, stats,
        [&](size_t ci, PathSink* cluster_sink, BatchStats* cluster_stats) {
          return ProcessCluster(g, queries, options, clusters[ci], hf, hb,
                                reachable, index, pool, c, cluster_sink,
                                cluster_stats);
        },
        &mm, &c.sinks);
    FoldMergeMetrics(mm, stats);
    HCPATH_RETURN_NOT_OK(st);
  }

  if (stats != nullptr) stats->total_seconds += total.ElapsedSeconds();
  return Status::OK();
}

}  // namespace hcpath
