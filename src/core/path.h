#ifndef HCPATH_CORE_PATH_H_
#define HCPATH_CORE_PATH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/logging.h"

namespace hcpath {

/// A path is a vertex sequence; its length (hop count) is size() - 1.
using PathView = std::span<const VertexId>;

std::string PathToString(PathView p);

/// True iff no vertex repeats in p. O(|p|^2) with tiny constants — paths
/// have at most k+1 <= 31 vertices, where linear scans beat hashing.
bool IsSimplePath(PathView p);

/// True iff consecutive vertices of p are connected by edges of g.
bool PathExistsInGraph(const Graph& g, PathView p);

/// Densely packed set of variable-length paths: one flat vertex array plus
/// an offsets array (CSR for paths). This is the materialized result
/// representation R of Algorithm 4 — cache-friendly to scan and join, and
/// two orders of magnitude smaller than vector<vector<>> per path.
class PathSet {
 public:
  PathSet() { offsets_.push_back(0); }

  /// Appends a path (sequence of vertices, length >= 1 vertex).
  void Add(PathView p) {
    HCPATH_DCHECK(!p.empty());
    data_.insert(data_.end(), p.begin(), p.end());
    offsets_.push_back(static_cast<uint64_t>(data_.size()));
  }

  /// Appends prefix + suffix as one path without an intermediate copy.
  void AddConcat(PathView prefix, PathView suffix) {
    data_.insert(data_.end(), prefix.begin(), prefix.end());
    data_.insert(data_.end(), suffix.begin(), suffix.end());
    offsets_.push_back(static_cast<uint64_t>(data_.size()));
  }

  /// Appends paths [begin, end) of `other`, in order: one bulk vertex copy
  /// plus a rebased offsets append instead of path-at-a-time Add. The
  /// resulting set is element-for-element identical to the Add loop.
  void AppendRange(const PathSet& other, size_t begin, size_t end) {
    HCPATH_DCHECK(begin <= end && end <= other.size());
    if (begin == end) return;
    const uint64_t src_lo = other.offsets_[begin];
    const uint64_t src_hi = other.offsets_[end];
    // Every appended offset is the source offset shifted by one constant.
    const uint64_t shift = static_cast<uint64_t>(data_.size()) - src_lo;
    data_.insert(data_.end(), other.data_.begin() + src_lo,
                 other.data_.begin() + src_hi);
    offsets_.reserve(offsets_.size() + (end - begin));
    for (size_t i = begin + 1; i <= end; ++i) {
      offsets_.push_back(other.offsets_[i] + shift);
    }
  }

  /// Appends every path of `other` (bulk transfer of a whole sub-result).
  void AppendSet(const PathSet& other) {
    AppendRange(other, 0, other.size());
  }

  size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  PathView operator[](size_t i) const {
    return {data_.data() + offsets_[i],
            data_.data() + offsets_[i + 1]};
  }

  /// Hop count of path i.
  size_t Length(size_t i) const {
    return static_cast<size_t>(offsets_[i + 1] - offsets_[i]) - 1;
  }

  VertexId Head(size_t i) const { return data_[offsets_[i]]; }
  VertexId Tail(size_t i) const { return data_[offsets_[i + 1] - 1]; }

  void Clear() {
    data_.clear();
    offsets_.assign(1, 0);
  }

  uint64_t MemoryBytes() const {
    return data_.capacity() * sizeof(VertexId) +
           offsets_.capacity() * sizeof(uint64_t);
  }

  uint64_t TotalVertices() const { return data_.size(); }

  /// Lexicographically sorted copy of all paths; canonical form for tests.
  std::vector<std::vector<VertexId>> ToSortedVectors() const;

  /// Order- and layout-insensitive fingerprint; equal iff the path multisets
  /// are equal (up to hash collisions). Used to cross-validate algorithms.
  uint64_t Fingerprint() const;

 private:
  std::vector<VertexId> data_;
  std::vector<uint64_t> offsets_;
};

/// Receives enumerated paths. Implementations must copy the data if they
/// keep it: the span is only valid during the call.
class PathSink {
 public:
  virtual ~PathSink() = default;
  /// `query_index` is the position of the owning query in the input batch.
  virtual void OnPath(size_t query_index, PathView path) = 0;

  /// Bulk variant: paths [begin, end) of `paths`, in order, all owned by
  /// `query_index`. The default forwards path-at-a-time, so every sink
  /// observes a stream identical to repeated OnPath calls; sinks that
  /// store paths contiguously (BufferedSink, CollectingSink) override it
  /// with a bulk copy (PathSet::AppendRange), which is what makes the
  /// streaming merge drains allocation- and dispatch-light.
  virtual void OnPaths(size_t query_index, const PathSet& paths,
                       size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) OnPath(query_index, paths[i]);
  }
};

/// Sink that counts paths per query (the common benchmarking mode).
class CountingSink : public PathSink {
 public:
  explicit CountingSink(size_t num_queries) : counts_(num_queries, 0) {}
  void OnPath(size_t query_index, PathView) override {
    ++counts_[query_index];
  }
  void OnPaths(size_t query_index, const PathSet&, size_t begin,
               size_t end) override {
    counts_[query_index] += end - begin;
  }
  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t Total() const;

 private:
  std::vector<uint64_t> counts_;
};

/// Sink that materializes every path per query (testing / small batches).
class CollectingSink : public PathSink {
 public:
  explicit CollectingSink(size_t num_queries) : sets_(num_queries) {}
  void OnPath(size_t query_index, PathView path) override {
    sets_[query_index].Add(path);
  }
  void OnPaths(size_t query_index, const PathSet& paths, size_t begin,
               size_t end) override {
    sets_[query_index].AppendRange(paths, begin, end);
  }
  const PathSet& paths(size_t query_index) const {
    return sets_[query_index];
  }
  const std::vector<PathSet>& all() const { return sets_; }

 private:
  std::vector<PathSet> sets_;
};

}  // namespace hcpath

#endif  // HCPATH_CORE_PATH_H_
