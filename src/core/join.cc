#include "core/join.h"

#include <unordered_map>
#include <vector>

namespace hcpath {

StatusOr<uint64_t> JoinAndEmit(const JoinSpec& spec, size_t query_index,
                               PathSink* sink, BatchStats* stats) {
  HCPATH_CHECK(spec.forward != nullptr && spec.backward != nullptr);
  HCPATH_CHECK(sink != nullptr);
  const PathSet& fwd = *spec.forward;
  const PathSet& bwd = *spec.backward;

  // Group usable backward paths (length in [1, hb]) by their forward-
  // orientation head == their stored tail (they are stored t-first).
  std::unordered_map<VertexId, std::vector<uint32_t>> by_midpoint;
  by_midpoint.reserve(bwd.size());
  for (size_t i = 0; i < bwd.size(); ++i) {
    const size_t len = bwd.Length(i);
    if (len < 1 || len > spec.hb) continue;
    by_midpoint[bwd.Tail(i)].push_back(static_cast<uint32_t>(i));
  }

  uint64_t emitted = 0;
  std::vector<VertexId> buf;
  buf.reserve(static_cast<size_t>(spec.hf) + spec.hb + 1);

  auto emit = [&](PathView p) -> bool {
    if (spec.max_paths != 0 && emitted >= spec.max_paths) return false;
    sink->OnPath(query_index, p);
    ++emitted;
    if (stats != nullptr) ++stats->paths_emitted;
    return true;
  };

  for (size_t i = 0; i < fwd.size(); ++i) {
    const size_t len = fwd.Length(i);
    if (len > spec.hf) continue;  // shared cache may hold longer paths
    PathView pf = fwd[i];
    if (pf.back() == spec.t) {
      // Canonical split with an empty backward part.
      if (!emit(pf)) {
        return Status::ResourceExhausted("query exceeded max_paths");
      }
    }
    if (len != spec.hf || spec.hb == 0) continue;
    auto it = by_midpoint.find(pf.back());
    if (it == by_midpoint.end()) continue;
    for (uint32_t bi : it->second) {
      PathView pb = bwd[bi];
      if (stats != nullptr) ++stats->join_probes;
      // pb is (t, x1, ..., xm) with xm == pf.back(); the forward suffix is
      // (x_{m-1}, ..., x1, t). Simplicity: none of pb's vertices except the
      // shared midpoint may appear in pf.
      bool disjoint = true;
      for (size_t j = 0; j + 1 < pb.size(); ++j) {
        for (VertexId w : pf) {
          if (w == pb[j]) {
            disjoint = false;
            break;
          }
        }
        if (!disjoint) break;
      }
      if (!disjoint) {
        if (stats != nullptr) ++stats->join_rejected;
        continue;
      }
      buf.assign(pf.begin(), pf.end());
      for (size_t j = pb.size() - 1; j-- > 0;) buf.push_back(pb[j]);
      if (!emit(buf)) {
        return Status::ResourceExhausted("query exceeded max_paths");
      }
    }
  }
  return emitted;
}

}  // namespace hcpath
