#include "core/join.h"

#include <algorithm>

namespace hcpath {

namespace {

/// Counting-sorts the usable backward paths (length in [1, hb]) into a CSR
/// bucket index keyed by their stored tail (== forward-orientation head).
/// Slots are assigned in first-appearance order and each bucket keeps its
/// paths in ascending index order, so probing yields candidates in exactly
/// the order the old per-query hash map produced them. Returns the number
/// of distinct tails; every array lives in the recycled scratch.
uint32_t BuildMidpointIndex(const PathSet& bwd, Hop hb, bool with_spans,
                            JoinScratch& s) {
  s.tails.Clear();
  s.counts.clear();
  uint32_t num_slots = 0;
  for (size_t i = 0; i < bwd.size(); ++i) {
    const size_t len = bwd.Length(i);
    if (len < 1 || len > hb) continue;
    const VertexId v = bwd.Tail(i);
    if (s.tails.Mark(v)) {
      if (v >= s.slot_of.size()) {
        s.slot_of.resize(std::max<size_t>(v + 1, s.slot_of.size() * 2));
      }
      s.slot_of[v] = num_slots++;
      s.counts.push_back(1);
    } else {
      ++s.counts[s.slot_of[v]];
    }
  }
  s.offsets.resize(num_slots + 1);
  s.offsets[0] = 0;
  for (uint32_t k = 0; k < num_slots; ++k) {
    s.offsets[k + 1] = s.offsets[k] + s.counts[k];
  }
  s.cursor.assign(s.offsets.begin(), s.offsets.end() - 1);
  s.items.resize(s.offsets[num_slots]);
  for (size_t i = 0; i < bwd.size(); ++i) {
    const size_t len = bwd.Length(i);
    if (len < 1 || len > hb) continue;
    s.items[s.cursor[s.slot_of[bwd.Tail(i)]]++] =
        static_cast<uint32_t>(i);
  }
  // Room for the lazily staged probe spans (JoinScratch::probe); the
  // spans themselves are written bucket-by-bucket on first probe, so
  // unprobed buckets never pay the staging pass. Skipped for the naive
  // kernel, which re-scans the paths directly.
  if (with_spans) s.probe.resize(s.items.size());
  return num_slots;
}

/// Adaptive cutover of KernelMode::kAuto: forward paths at or below this
/// many vertices probe with the naive nested scan instead of the stamp
/// table — at that size the whole forward path fits in two cache lines
/// and the restamp + probe round trip cannot beat re-scanning it. The
/// threshold sits well below the BM_StampTestAny scalar/SIMD crossover
/// (docs/PERF.md "Adaptive cutover") because the batched path here is
/// run-amortized: one TestAnySpans call probes a whole bucket run, so it
/// already wins at backward-span length 8 (BM_JoinProbeDisjoint).
constexpr size_t kJoinNaiveCutover = 4;

/// Minimum backward budget for the run-batched TestAnySpans probe. A
/// backward path of length hb holds hb + 1 vertices, so its interior
/// probe span holds at most hb: below this budget no span can ever fill
/// an 8-lane gather and the batched machinery (staging, verdict buffer,
/// out-of-line call) is pure overhead against the fused per-candidate
/// loop of stamped Contains() early-exits — measured ~5% end to end on
/// exp7's k<=7 workloads. At hb >= 8 runs batch.
constexpr Hop kJoinBatchMinHb = 8;

/// Re-points fwd_mark at `pf`, touching only the suffix that differs from
/// the previously stamped path. Consecutive forward paths come out of a
/// DFS in lexicographic-by-prefix order, so runs of equal-midpoint probes
/// share long prefixes and the amortized restamp cost per path is the few
/// vertices that actually changed, not |pf|. All Unmarks are issued before
/// any Mark so a vertex moving between positions ends marked.
void RestampTo(JoinScratch& s, PathView pf) {
  size_t c = 0;
  const size_t lim = std::min(s.stamped.size(), pf.size());
  while (c < lim && s.stamped[c] == pf[c]) ++c;
  for (size_t j = c; j < s.stamped.size(); ++j) {
    s.fwd_mark.Unmark(s.stamped[j]);
  }
  s.stamped.resize(c);
  for (size_t j = c; j < pf.size(); ++j) {
    s.fwd_mark.Mark(pf[j]);
    s.stamped.push_back(pf[j]);
  }
}

}  // namespace

StatusOr<uint64_t> JoinAndEmit(const JoinSpec& spec, size_t query_index,
                               PathSink* sink, BatchStats* stats,
                               JoinScratchPool* scratch) {
  HCPATH_CHECK(spec.forward != nullptr && spec.backward != nullptr);
  HCPATH_CHECK(sink != nullptr);
  const PathSet& fwd = *spec.forward;
  const PathSet& bwd = *spec.backward;

  ScratchLease<JoinScratch> lease(scratch);
  JoinScratch& s = *lease;

  // The midpoint index only ever feeds probes of forward paths of length
  // exactly hf with hb > 0; when hb == 0 or there is nothing to bucket,
  // skip building it entirely.
  const bool need_index = spec.hb > 0 && !bwd.empty();
  // Run-batched probing only engages when a probe span could fill a
  // gather; below kJoinBatchMinHb the stamped probes run fused (below).
  const bool batch_runs = spec.kernel != KernelMode::kNaive &&
                          spec.hb >= kJoinBatchMinHb;
  if (need_index) {
    BuildMidpointIndex(bwd, spec.hb, batch_runs, s);
    if (stats != nullptr) ++stats->join_index_rebuilds;
  }

  // One Clear per join call; within the call the mark table follows the
  // forward paths by incremental restamps (RestampTo). `stamped` always
  // mirrors the marks actually in the table, so paths probed naively (the
  // kAuto cutover) simply skip the restamp without invalidating it.
  if (spec.kernel != KernelMode::kNaive) {
    s.fwd_mark.Clear();
    s.stamped.clear();
    s.staged_slots.Clear();
  }

  uint64_t emitted = 0;
  auto emit = [&](PathView p) -> bool {
    if (spec.max_paths != 0 && emitted >= spec.max_paths) return false;
    sink->OnPath(query_index, p);
    ++emitted;
    if (stats != nullptr) ++stats->paths_emitted;
    return true;
  };

  for (size_t i = 0; i < fwd.size(); ++i) {
    const size_t len = fwd.Length(i);
    if (len > spec.hf) continue;  // shared cache may hold longer paths
    PathView pf = fwd[i];
    if (pf.back() == spec.t) {
      // Canonical split with an empty backward part.
      if (!emit(pf)) {
        return Status::ResourceExhausted("query exceeded max_paths");
      }
    }
    if (len != spec.hf || !need_index) continue;
    const VertexId mid = pf.back();
    if (!s.tails.Contains(mid)) continue;
    // Probe-kernel choice for this forward path. Stamped restamps the
    // mark table to pf (suffix-diff only), then either probes the whole
    // bucket run with one TestAnySpans call — O(|pb|) lookups per
    // candidate, 8 per gather, with the kernel dispatch and SIMD
    // constants paid once per run — and consumes the verdicts in the emit
    // loop below, or, when spans are too short to ever fill a gather
    // (hb < kJoinBatchMinHb), runs fused: per-candidate early-exit
    // Contains() loads with inline emission, the naive loop's exact shape
    // with the nested scan replaced by one stamp load per vertex. Naive
    // (the oracle, and kAuto's cutover for very short pf): nested scans
    // per candidate.
    //
    // pb is (t, x1, ..., xm) with xm == pf.back(); the forward suffix is
    // (x_{m-1}, ..., x1, t). Simplicity: none of pb's vertices except the
    // shared midpoint may appear in pf, so the probe span is pb minus its
    // last vertex. Counters accumulate in locals and flush on every exit;
    // `probes` counts consumed candidates, which keeps the counter
    // identical across kernel modes even when max_paths stops a run early.
    const bool naive_probe =
        spec.kernel == KernelMode::kNaive ||
        (spec.kernel == KernelMode::kAuto && pf.size() <= kJoinNaiveCutover);
    const uint32_t slot = s.slot_of[mid];
    const uint32_t begin = s.offsets[slot];
    const uint32_t end = s.offsets[slot + 1];
    uint64_t probes = 0;
    uint64_t rejected = 0;
    if (naive_probe) {
      for (uint32_t idx = begin; idx < end; ++idx) {
        PathView pb = bwd[s.items[idx]];
        ++probes;
        bool disjoint = true;
        for (size_t j = 0; j + 1 < pb.size() && disjoint; ++j) {
          for (VertexId w : pf) {
            if (pb[j] == w) {
              disjoint = false;
              break;
            }
          }
        }
        if (!disjoint) {
          ++rejected;
          continue;
        }
        s.buf.assign(pf.begin(), pf.end());
        for (size_t j = pb.size() - 1; j-- > 0;) s.buf.push_back(pb[j]);
        if (!emit(s.buf)) {
          if (stats != nullptr) {
            stats->join_probes += probes;
            stats->join_rejected += rejected;
          }
          return Status::ResourceExhausted("query exceeded max_paths");
        }
      }
    } else if (!batch_runs) {
      RestampTo(s, pf);
      for (uint32_t idx = begin; idx < end; ++idx) {
        PathView pb = bwd[s.items[idx]];
        ++probes;
        bool disjoint = true;
        for (size_t j = 0; j + 1 < pb.size(); ++j) {
          if (s.fwd_mark.Contains(pb[j])) {
            disjoint = false;
            break;
          }
        }
        if (!disjoint) {
          ++rejected;
          continue;
        }
        s.buf.assign(pf.begin(), pf.end());
        for (size_t j = pb.size() - 1; j-- > 0;) s.buf.push_back(pb[j]);
        if (!emit(s.buf)) {
          if (stats != nullptr) {
            stats->join_probes += probes;
            stats->join_rejected += rejected;
          }
          return Status::ResourceExhausted("query exceeded max_paths");
        }
      }
    } else {
      RestampTo(s, pf);
      if (s.staged_slots.Mark(slot)) {
        // First stamped probe of this bucket this call: stage the runs'
        // interior probe spans (candidate minus shared-midpoint tail).
        for (uint32_t idx = begin; idx < end; ++idx) {
          PathView pb = bwd[s.items[idx]];
          s.probe[idx] = pb.first(pb.size() - 1);
        }
      }
      const size_t run = end - begin;
      if (s.hits.size() < run) s.hits.resize(run);
      s.fwd_mark.TestAnySpans(
          std::span<const PathView>(s.probe).subspan(begin, run),
          s.hits.data());
      // The whole run was physically probed above, but `probes` stays
      // "consumed candidates" (adjusted down on the rare early exit) so
      // the counter matches the naive loop exactly in every mode.
      probes += run;
      for (size_t j = 0; j < run; ++j) {
        if (s.hits[j] != 0) {
          ++rejected;
          continue;
        }
        // The probe span is the candidate minus its shared-midpoint tail;
        // the full view is the same storage, one vertex longer.
        const PathView& ps = s.probe[begin + j];
        PathView pb(ps.data(), ps.size() + 1);
        s.buf.assign(pf.begin(), pf.end());
        for (size_t x = pb.size() - 1; x-- > 0;) s.buf.push_back(pb[x]);
        if (!emit(s.buf)) {
          if (stats != nullptr) {
            stats->join_probes += probes - (run - (j + 1));
            stats->join_rejected += rejected;
          }
          return Status::ResourceExhausted("query exceeded max_paths");
        }
      }
    }
    if (stats != nullptr) {
      stats->join_probes += probes;
      stats->join_rejected += rejected;
    }
  }
  return emitted;
}

}  // namespace hcpath
