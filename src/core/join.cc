#include "core/join.h"

#include <algorithm>

namespace hcpath {

namespace {

/// Counting-sorts the usable backward paths (length in [1, hb]) into a CSR
/// bucket index keyed by their stored tail (== forward-orientation head).
/// Slots are assigned in first-appearance order and each bucket keeps its
/// paths in ascending index order, so probing yields candidates in exactly
/// the order the old per-query hash map produced them. Returns the number
/// of distinct tails; every array lives in the recycled scratch.
uint32_t BuildMidpointIndex(const PathSet& bwd, Hop hb, JoinScratch& s) {
  s.tails.Clear();
  s.counts.clear();
  uint32_t num_slots = 0;
  for (size_t i = 0; i < bwd.size(); ++i) {
    const size_t len = bwd.Length(i);
    if (len < 1 || len > hb) continue;
    const VertexId v = bwd.Tail(i);
    if (s.tails.Mark(v)) {
      if (v >= s.slot_of.size()) {
        s.slot_of.resize(std::max<size_t>(v + 1, s.slot_of.size() * 2));
      }
      s.slot_of[v] = num_slots++;
      s.counts.push_back(1);
    } else {
      ++s.counts[s.slot_of[v]];
    }
  }
  s.offsets.resize(num_slots + 1);
  s.offsets[0] = 0;
  for (uint32_t k = 0; k < num_slots; ++k) {
    s.offsets[k + 1] = s.offsets[k] + s.counts[k];
  }
  s.cursor.assign(s.offsets.begin(), s.offsets.end() - 1);
  s.items.resize(s.offsets[num_slots]);
  for (size_t i = 0; i < bwd.size(); ++i) {
    const size_t len = bwd.Length(i);
    if (len < 1 || len > hb) continue;
    s.items[s.cursor[s.slot_of[bwd.Tail(i)]]++] =
        static_cast<uint32_t>(i);
  }
  return num_slots;
}

}  // namespace

StatusOr<uint64_t> JoinAndEmit(const JoinSpec& spec, size_t query_index,
                               PathSink* sink, BatchStats* stats,
                               JoinScratchPool* scratch) {
  HCPATH_CHECK(spec.forward != nullptr && spec.backward != nullptr);
  HCPATH_CHECK(sink != nullptr);
  const PathSet& fwd = *spec.forward;
  const PathSet& bwd = *spec.backward;

  ScratchLease<JoinScratch> lease(scratch);
  JoinScratch& s = *lease;

  // The midpoint index only ever feeds probes of forward paths of length
  // exactly hf with hb > 0; when hb == 0 or there is nothing to bucket,
  // skip building it entirely.
  const bool need_index = spec.hb > 0 && !bwd.empty();
  if (need_index) {
    BuildMidpointIndex(bwd, spec.hb, s);
    if (stats != nullptr) ++stats->join_index_rebuilds;
  }

  uint64_t emitted = 0;
  auto emit = [&](PathView p) -> bool {
    if (spec.max_paths != 0 && emitted >= spec.max_paths) return false;
    sink->OnPath(query_index, p);
    ++emitted;
    if (stats != nullptr) ++stats->paths_emitted;
    return true;
  };

  for (size_t i = 0; i < fwd.size(); ++i) {
    const size_t len = fwd.Length(i);
    if (len > spec.hf) continue;  // shared cache may hold longer paths
    PathView pf = fwd[i];
    if (pf.back() == spec.t) {
      // Canonical split with an empty backward part.
      if (!emit(pf)) {
        return Status::ResourceExhausted("query exceeded max_paths");
      }
    }
    if (len != spec.hf || !need_index) continue;
    const VertexId mid = pf.back();
    if (!s.tails.Contains(mid)) continue;
    // Stamp the forward path once; every backward candidate then tests
    // disjointness in O(|pb|) lookups instead of O(|pb| x |pf|) scans.
    s.fwd_mark.Clear();
    for (VertexId w : pf) s.fwd_mark.Mark(w);
    const uint32_t slot = s.slot_of[mid];
    for (uint32_t idx = s.offsets[slot]; idx < s.offsets[slot + 1]; ++idx) {
      const uint32_t bi = s.items[idx];
      PathView pb = bwd[bi];
      if (stats != nullptr) ++stats->join_probes;
      // pb is (t, x1, ..., xm) with xm == pf.back(); the forward suffix is
      // (x_{m-1}, ..., x1, t). Simplicity: none of pb's vertices except the
      // shared midpoint may appear in pf.
      bool disjoint = true;
      for (size_t j = 0; j + 1 < pb.size(); ++j) {
        if (s.fwd_mark.Contains(pb[j])) {
          disjoint = false;
          break;
        }
      }
      if (!disjoint) {
        if (stats != nullptr) ++stats->join_rejected;
        continue;
      }
      s.buf.assign(pf.begin(), pf.end());
      for (size_t j = pb.size() - 1; j-- > 0;) s.buf.push_back(pb[j]);
      if (!emit(s.buf)) {
        return Status::ResourceExhausted("query exceeded max_paths");
      }
    }
  }
  return emitted;
}

}  // namespace hcpath
