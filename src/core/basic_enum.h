#ifndef HCPATH_CORE_BASIC_ENUM_H_
#define HCPATH_CORE_BASIC_ENUM_H_

#include <vector>

#include "core/batch_context.h"
#include "core/options.h"
#include "core/path.h"
#include "core/query.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "index/distance_index.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hcpath {

/// BasicEnum (Algorithm 1): the batch baseline. One shared index is built
/// with two multi-source BFSs over all query endpoints, then each query is
/// processed independently with the PathEnum bidirectional search.
/// `optimized_order` selects the BasicEnum+ variant.
///
/// `ctx` optionally supplies recycled per-batch state and the cross-batch
/// distance cache (see BatchContext); null gives a call-local context with
/// identical output. The emitted stream, Status, and work counters do not
/// depend on ctx reuse or cache warmth (docs/SERVICE.md).
Status RunBasicEnum(const Graph& g, const std::vector<PathQuery>& queries,
                    const BatchOptions& options, bool optimized_order,
                    PathSink* sink, BatchStats* stats,
                    BatchContext* ctx = nullptr);

/// Shared helper: builds the batch index for `queries` (timed into
/// stats->build_index_seconds). With a pool, the two MS-BFS sweeps run
/// concurrently and shard their waves across workers. With a ctx, the
/// build reuses the ctx's BFS scratch and probes its distance cache,
/// folding hit/miss totals into `stats`.
void BuildBatchIndex(const Graph& g, const std::vector<PathQuery>& queries,
                     DistanceIndex* index, BatchStats* stats,
                     ThreadPool* pool = nullptr, BatchContext* ctx = nullptr);

}  // namespace hcpath

#endif  // HCPATH_CORE_BASIC_ENUM_H_
