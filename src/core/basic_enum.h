#ifndef HCPATH_CORE_BASIC_ENUM_H_
#define HCPATH_CORE_BASIC_ENUM_H_

#include <vector>

#include "core/options.h"
#include "core/path.h"
#include "core/query.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "index/distance_index.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hcpath {

/// BasicEnum (Algorithm 1): the batch baseline. One shared index is built
/// with two multi-source BFSs over all query endpoints, then each query is
/// processed independently with the PathEnum bidirectional search.
/// `optimized_order` selects the BasicEnum+ variant.
Status RunBasicEnum(const Graph& g, const std::vector<PathQuery>& queries,
                    const BatchOptions& options, bool optimized_order,
                    PathSink* sink, BatchStats* stats);

/// Shared helper: builds the batch index for `queries` (timed into
/// stats->build_index_seconds). With a pool, the two MS-BFS sweeps run
/// concurrently and shard their waves across workers.
void BuildBatchIndex(const Graph& g, const std::vector<PathQuery>& queries,
                     DistanceIndex* index, BatchStats* stats,
                     ThreadPool* pool = nullptr);

}  // namespace hcpath

#endif  // HCPATH_CORE_BASIC_ENUM_H_
