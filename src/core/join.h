#ifndef HCPATH_CORE_JOIN_H_
#define HCPATH_CORE_JOIN_H_

#include <cstdint>

#include "bfs/distance_map.h"
#include "core/path.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "util/status.h"

namespace hcpath {

/// Inputs to the path concatenation operator ⊕ (Def 3.1), specialized to
/// the canonical split that makes the join duplicate-free (DESIGN.md D2):
/// a result path of length L splits at m = min(L, hf), so
///   * a forward path of length exactly `hf` joins every backward path of
///     length in [1, hb] whose forward-orientation head matches its tail;
///   * a forward path ending at `t` (any length <= hf) is emitted alone.
///
/// `forward` holds paths from s in forward orientation; `backward` holds
/// paths from t in Gr orientation (t first). Both may contain extra paths
/// (longer than the per-query budgets, or pruned for other sharing
/// queries); they are filtered here, which is what lets several queries
/// share one materialized HC-s path result.
struct JoinSpec {
  const PathSet* forward = nullptr;
  const PathSet* backward = nullptr;
  VertexId s = kInvalidVertex;
  VertexId t = kInvalidVertex;
  Hop hf = 0;  ///< forward budget for this query
  Hop hb = 0;  ///< backward budget for this query
  uint64_t max_paths = 0;  ///< 0 = unlimited
};

/// Joins the two halves and emits every HC-s-t path of the query to `sink`
/// (tagged with `query_index`). Returns the number of paths emitted or
/// ResourceExhausted if `max_paths` was exceeded.
StatusOr<uint64_t> JoinAndEmit(const JoinSpec& spec, size_t query_index,
                               PathSink* sink, BatchStats* stats);

}  // namespace hcpath

#endif  // HCPATH_CORE_JOIN_H_
