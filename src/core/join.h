#ifndef HCPATH_CORE_JOIN_H_
#define HCPATH_CORE_JOIN_H_

#include <cstdint>
#include <vector>

#include "bfs/distance_map.h"
#include "core/options.h"
#include "core/path.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "util/epoch_stamp.h"
#include "util/status.h"

namespace hcpath {

/// Recyclable working set of JoinAndEmit, leased from a BatchContext pool
/// (or a per-thread fallback) so the join performs zero heap allocations
/// in steady state: the midpoint index is a counting-sorted CSR over
/// recycled flat arrays instead of a per-query hash map, and disjointness
/// is tested against an epoch-stamped mark table instead of nested scans.
/// All arrays grow to the high-water mark of the queries they serve and
/// are reused as-is; validity is epoch-gated, so nothing is re-zeroed.
struct JoinScratch {
  EpochStampTable fwd_mark;   ///< vertices of the current forward path
  EpochStampTable tails;      ///< stamped iff slot_of[tail] is valid
  std::vector<uint32_t> slot_of;  ///< tail vertex -> dense bucket slot
  std::vector<uint32_t> counts;   ///< slot -> usable backward paths
  std::vector<uint32_t> offsets;  ///< CSR bucket offsets (size slots + 1)
  std::vector<uint32_t> cursor;   ///< per-slot fill cursors
  std::vector<uint32_t> items;    ///< CSR payload: backward path indices
  std::vector<VertexId> buf;      ///< concatenation buffer for emission
  /// The forward path currently marked in fwd_mark. Consecutive forward
  /// paths come out of a DFS, so they share long prefixes; the join
  /// restamps only the suffix that differs (Unmark old tail, Mark new
  /// tail) instead of Clear + full re-Mark per path.
  std::vector<VertexId> stamped;
  /// Probe staging, aligned with `items`: probe[i] is the interior probe
  /// span of candidate items[i] (the candidate minus its shared-midpoint
  /// tail; the full candidate is the same storage one vertex longer).
  /// Staged lazily, one bucket at a time on its first probe of the call
  /// (`staged_slots` remembers which, epoch-cleared per call), so buckets
  /// no forward path reaches cost nothing and each probed bucket's run
  /// probes as a single TestAnySpans call over a contiguous slice. `hits`
  /// holds that call's per-candidate disjointness verdicts. Entries of
  /// unstaged buckets are stale views into prior queries' path sets and
  /// must never be read — `staged_slots` is what guards that.
  std::vector<PathView> probe;
  EpochStampTable staged_slots;
  std::vector<uint8_t> hits;
};

using JoinScratchPool = ScratchPool<JoinScratch>;

/// Inputs to the path concatenation operator ⊕ (Def 3.1), specialized to
/// the canonical split that makes the join duplicate-free (DESIGN.md D2):
/// a result path of length L splits at m = min(L, hf), so
///   * a forward path of length exactly `hf` joins every backward path of
///     length in [1, hb] whose forward-orientation head matches its tail;
///   * a forward path ending at `t` (any length <= hf) is emitted alone.
///
/// `forward` holds paths from s in forward orientation; `backward` holds
/// paths from t in Gr orientation (t first). Both may contain extra paths
/// (longer than the per-query budgets, or pruned for other sharing
/// queries); they are filtered here, which is what lets several queries
/// share one materialized HC-s path result.
///
/// Precondition: every forward path is SIMPLE (vertex-distinct) — the half
/// searches guarantee this by construction. The incremental prefix-diff
/// restamp of the probe kernel depends on it: unmarking a departing suffix
/// vertex must never erase the mark of a vertex the kept prefix still
/// holds, which only a repeated vertex could cause.
struct JoinSpec {
  const PathSet* forward = nullptr;
  const PathSet* backward = nullptr;
  VertexId s = kInvalidVertex;
  VertexId t = kInvalidVertex;
  Hop hf = 0;  ///< forward budget for this query
  Hop hb = 0;  ///< backward budget for this query
  uint64_t max_paths = 0;  ///< 0 = unlimited
  /// Probe-kernel selection for the disjointness test; every mode emits
  /// identical paths and counters (see KernelMode).
  KernelMode kernel = KernelMode::kAuto;
};

/// Joins the two halves and emits every HC-s-t path of the query to `sink`
/// (tagged with `query_index`). Returns the number of paths emitted or
/// ResourceExhausted if `max_paths` was exceeded.
///
/// `scratch` recycles the midpoint index and mark tables across queries
/// (BatchContext::join_scratch); nullptr falls back to a per-thread
/// working set. Emission order, counters, and error points are identical
/// either way — the scratch only changes where the index storage lives.
StatusOr<uint64_t> JoinAndEmit(const JoinSpec& spec, size_t query_index,
                               PathSink* sink, BatchStats* stats,
                               JoinScratchPool* scratch = nullptr);

}  // namespace hcpath

#endif  // HCPATH_CORE_JOIN_H_
