#include "core/brute_force.h"

#include <vector>

namespace hcpath {

namespace {

void Dfs(const Graph& g, const PathQuery& q, size_t query_index,
         PathSink* sink, std::vector<VertexId>& path) {
  const VertexId tail = path.back();
  if (tail == q.t) {
    sink->OnPath(query_index, path);
    return;  // extending past t can never yield another simple s-t path
  }
  if (path.size() - 1 >= static_cast<size_t>(q.k)) return;
  for (VertexId u : g.OutNeighbors(tail)) {
    bool seen = false;
    for (VertexId w : path) {
      if (w == u) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    path.push_back(u);
    Dfs(g, q, query_index, sink, path);
    path.pop_back();
  }
}

}  // namespace

Status BruteForceEnumerate(const Graph& g, const PathQuery& q,
                           size_t query_index, PathSink* sink) {
  HCPATH_RETURN_NOT_OK(ValidateQueries(g, {q}));
  std::vector<VertexId> path;
  path.reserve(static_cast<size_t>(q.k) + 1);
  path.push_back(q.s);
  Dfs(g, q, query_index, sink, path);
  return Status::OK();
}

StatusOr<PathSet> BruteForcePaths(const Graph& g, const PathQuery& q) {
  CollectingSink sink(1);
  HCPATH_RETURN_NOT_OK(BruteForceEnumerate(g, q, 0, &sink));
  return PathSet(sink.paths(0));
}

}  // namespace hcpath
