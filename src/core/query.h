#ifndef HCPATH_CORE_QUERY_H_
#define HCPATH_CORE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bfs/distance_map.h"
#include "graph/graph.h"
#include "util/status.h"

namespace hcpath {

/// A hop-constrained s-t simple path query q(s, t, k): enumerate all simple
/// paths from s to t with at most k hops (Section II of the paper).
struct PathQuery {
  VertexId s = kInvalidVertex;
  VertexId t = kInvalidVertex;
  int k = 0;

  /// Forward half hop budget ⌈k/2⌉ used by bidirectional search.
  Hop ForwardBudget() const { return static_cast<Hop>((k + 1) / 2); }
  /// Backward half hop budget ⌊k/2⌋.
  Hop BackwardBudget() const { return static_cast<Hop>(k / 2); }

  bool operator==(const PathQuery& other) const {
    return s == other.s && t == other.t && k == other.k;
  }

  std::string ToString() const;
};

/// Validates a batch of queries against a graph: endpoints in range,
/// s != t, and 1 <= k <= kMaxHops (distances are stored in 8 bits and the
/// enumeration cost is exponential in k, so we cap it defensively).
inline constexpr int kMaxHops = 30;
Status ValidateQueries(const Graph& g, const std::vector<PathQuery>& queries);

}  // namespace hcpath

#endif  // HCPATH_CORE_QUERY_H_
