#include "core/search.h"

#include <algorithm>

namespace hcpath {

namespace {

struct SearchCtx {
  const Graph& g;
  const HalfSearchSpec& spec;
  PathSet* out;
  BatchStats* stats;
  std::vector<VertexId> path;
  Status status = Status::OK();
};

/// Lemma 3.1 pruning: is `u` admissible at suffix depth `depth`?
inline bool Admissible(const HalfSearchSpec& spec, VertexId u, int depth) {
  if (spec.global_min != nullptr) {
    Hop d = (*spec.global_min)[u];
    return d != kUnreachable && d <= spec.global_max_slack - depth;
  }
  if (spec.slacks.empty()) return true;
  for (const TargetSlack& ts : spec.slacks) {
    Hop d = ts.dist->Lookup(u);
    if (d != kUnreachable && d <= ts.slack - depth) return true;
  }
  return false;
}

inline bool OnPath(const std::vector<VertexId>& path, VertexId u) {
  for (VertexId w : path) {
    if (w == u) return true;
  }
  return false;
}

inline const SearchDep* FindDep(std::span<const SearchDep> deps,
                                VertexId u) {
  // deps is sorted by vertex; it is tiny (one entry per reuse edge), so a
  // branchless lower_bound is plenty.
  auto it = std::lower_bound(
      deps.begin(), deps.end(), u,
      [](const SearchDep& d, VertexId v) { return d.vertex < v; });
  if (it != deps.end() && it->vertex == u) return &*it;
  return nullptr;
}

/// Stores the current path if it passes the join filter; returns false on
/// resource exhaustion.
bool StoreCurrent(SearchCtx& c) {
  const size_t len = c.path.size() - 1;
  if (c.spec.filter_for_join) {
    const bool useful = len == c.spec.budget ||
                        c.path.back() == c.spec.store_target;
    if (!useful) return true;
  }
  if (c.spec.max_paths != 0 && c.out->size() >= c.spec.max_paths) {
    c.status = Status::ResourceExhausted(
        "half search exceeded max_paths = " +
        std::to_string(c.spec.max_paths));
    return false;
  }
  c.out->Add(c.path);
  return true;
}

bool Dfs(SearchCtx& c) {
  if (!StoreCurrent(c)) return false;
  const size_t len = c.path.size() - 1;
  if (len >= c.spec.budget) return true;
  const VertexId tail = c.path.back();
  const int depth = static_cast<int>(len) + 1;
  for (VertexId u : c.g.Neighbors(tail, c.spec.dir)) {
    if (c.stats != nullptr) ++c.stats->edges_expanded;
    if (!Admissible(c.spec, u, depth)) {
      if (c.stats != nullptr) ++c.stats->edges_pruned;
      continue;
    }
    if (OnPath(c.path, u)) continue;
    const Hop remaining = static_cast<Hop>(c.spec.budget - depth);
    const SearchDep* dep =
        c.spec.deps.empty() ? nullptr : FindDep(c.spec.deps, u);
    if (dep != nullptr && dep->budget >= remaining) {
      // Algorithm 4 lines 22-23: splice the cached HC-s path results of the
      // dominating query instead of recursing. cached[0] == u by
      // construction; longer cached paths than the remaining budget and
      // paths revisiting prefix vertices are filtered here (DESIGN.md D6).
      const PathSet& cached = *dep->paths;
      const size_t max_vertices = static_cast<size_t>(remaining) + 1;
      for (size_t i = 0; i < cached.size(); ++i) {
        PathView cp = cached[i];
        if (cp.size() > max_vertices) continue;
        bool disjoint = true;
        for (size_t j = 1; j < cp.size(); ++j) {
          if (OnPath(c.path, cp[j])) {
            disjoint = false;
            break;
          }
        }
        if (!disjoint) continue;
        if (c.spec.max_paths != 0 && c.out->size() >= c.spec.max_paths) {
          c.status = Status::ResourceExhausted(
              "half search exceeded max_paths = " +
              std::to_string(c.spec.max_paths));
          return false;
        }
        c.out->AddConcat(c.path, cp);
        if (c.stats != nullptr) ++c.stats->shortcut_splices;
      }
      continue;
    }
    c.path.push_back(u);
    const bool keep_going = Dfs(c);
    c.path.pop_back();
    if (!keep_going) return false;
  }
  return true;
}

}  // namespace

Status RunHalfSearch(const Graph& g, const HalfSearchSpec& spec,
                     PathSet* out, BatchStats* stats) {
  HCPATH_CHECK(spec.start < g.NumVertices());
  HCPATH_CHECK(out != nullptr);
  SearchCtx ctx{g, spec, out, stats, {}, Status::OK()};
  ctx.path.reserve(static_cast<size_t>(spec.budget) + 1);
  ctx.path.push_back(spec.start);
  Dfs(ctx);
  return ctx.status;
}

}  // namespace hcpath
