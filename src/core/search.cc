#include "core/search.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace hcpath {

namespace {

/// `on_path` mirrors `path` as an epoch-stamped membership table (one mark
/// per path vertex, maintained incrementally on push/pop), so the DFS
/// cycle check and the splice disjointness test are O(1) per vertex
/// instead of a scan of the path (docs/PERF.md).
struct SearchCtx {
  const Graph& g;
  const HalfSearchSpec& spec;
  PathSet* out;
  BatchStats* stats;
  EpochStampTable* on_path;
  std::vector<VertexId> path = {};
  Status status = Status::OK();
  /// Per-depth on-path bitmasks for the batched neighbor probe, indexed by
  /// the path length at which Dfs computed them. One buffer per depth (not
  /// one shared buffer) because the recursion below a neighbor runs while
  /// this level's mask is still live; distinct depths never alias. Inner
  /// buffers stay valid across outer-vector growth (vector move steals the
  /// heap block), so the raw pointer Dfs holds survives deeper resizes.
  std::vector<std::vector<uint8_t>> probe_masks = {};
  /// Kernel decisions copied from the pre-resolved dispatch (InitSearch),
  /// so the recursive frame tests one precomputed threshold / bool instead
  /// of re-deriving the mode logic at every vertex visit.
  size_t batch_cutover = 0;  ///< nbrs.size() >= this => batched TestBatch
  size_t splice_cutover = 0;
  bool naive_kernel = false;
  bool prefetch = false;
};

/// The pre-stamp cycle check (KernelMode::kNaive): scan the path.
inline bool NaiveOnPath(const std::vector<VertexId>& path, VertexId u) {
  for (VertexId w : path) {
    if (w == u) return true;
  }
  return false;
}

/// Adaptive cutovers of KernelMode::kAuto (kStamped forces the batched
/// probe everywhere, which is what the differential tests sweep). The
/// batched probe pays call context a short span cannot amortize —
/// span staging, the out-of-line call, the mask-buffer round trip —
/// while a handful of inline Contains() loads early-exits from L1.
/// Measured with BM_HalfSearch / BM_DfsOnPath / BM_SpliceDisjoint /
/// BM_StampTestBatch A/B sweeps (docs/PERF.md "Adaptive cutover").
constexpr size_t kDfsBatchCutover = 16;     ///< adjacency-block vertices
constexpr size_t kSpliceBatchCutover = 16;  ///< cached-suffix vertices

/// Prefetching the next adjacency block only pays once the CSR arrays
/// outgrow the fast cache levels; on small graphs the prefetch
/// instruction itself is the only effect.
constexpr VertexId kPrefetchMinVertices = 1u << 15;

/// Lemma 3.1 pruning: is `u` admissible at suffix depth `depth`?
inline bool Admissible(const HalfSearchSpec& spec, VertexId u, int depth) {
  if (spec.global_min != nullptr) {
    Hop d = (*spec.global_min)[u];
    return d != kUnreachable && d <= spec.global_max_slack - depth;
  }
  if (spec.slacks.empty()) return true;
  for (const TargetSlack& ts : spec.slacks) {
    Hop d = ts.dist->Lookup(u);
    if (d != kUnreachable && d <= ts.slack - depth) return true;
  }
  return false;
}

inline const SearchDep* FindDep(std::span<const SearchDep> deps,
                                VertexId u) {
  // deps is sorted by vertex; it is tiny (one entry per reuse edge), so a
  // branchless lower_bound is plenty.
  auto it = std::lower_bound(
      deps.begin(), deps.end(), u,
      [](const SearchDep& d, VertexId v) { return d.vertex < v; });
  if (it != deps.end() && it->vertex == u) return &*it;
  return nullptr;
}

Status ExceededMaxPaths(uint64_t max_paths) {
  return Status::ResourceExhausted("half search exceeded max_paths = " +
                                   std::to_string(max_paths));
}

/// Stores the current path if it passes the join filter; returns false on
/// resource exhaustion.
bool StoreCurrent(SearchCtx& c) {
  const size_t len = c.path.size() - 1;
  if (c.spec.filter_for_join) {
    const bool useful = len == c.spec.budget ||
                        c.path.back() == c.spec.store_target;
    if (!useful) return true;
  }
  if (c.spec.max_paths != 0 && c.out->size() >= c.spec.max_paths) {
    c.status = ExceededMaxPaths(c.spec.max_paths);
    return false;
  }
  c.out->Add(c.path);
  return true;
}

/// Algorithm 4 lines 22-23: splices every cached HC-s path compatible with
/// `prefix` (within the remaining budget, disjoint from the prefix) into
/// `out` instead of recursing. cached[0] == the shortcut vertex by
/// construction, so only suffix vertices are checked (DESIGN.md D6).
/// `prefix_mark` holds exactly the vertices of `prefix`, so each cached
/// suffix is tested in O(|suffix|) stamp lookups. Shared by the recursion
/// and the frontier-split sub-merge so the filter and cap semantics cannot
/// diverge. `naive` / `splice_cutover` come from the pre-resolved kernel
/// dispatch. Returns false + sets `status` at the max_paths cap.
bool SpliceCached(const HalfSearchSpec& spec, bool naive,
                  size_t splice_cutover, const std::vector<VertexId>& prefix,
                  const EpochStampTable& prefix_mark, const PathSet& cached,
                  Hop remaining, PathSet* out, BatchStats* stats,
                  Status* status) {
  const size_t max_vertices = static_cast<size_t>(remaining) + 1;
  // The prefix is already stamped by the DFS, so probing has zero marginal
  // stamping cost. The kernel branch is hoisted out of the candidate loop:
  // kNaive gets its own loop (the oracle, scanning the prefix per suffix
  // vertex); the stamped loop applies kAuto's span cutover as one compare
  // against a precomputed threshold — short suffixes probe with inline
  // early-exit Contains() loads, long ones with one batched TestAny
  // through a handle resolved once for the whole candidate sweep (the
  // mark table is immutable here).
  if (naive) {
    for (size_t i = 0; i < cached.size(); ++i) {
      PathView cp = cached[i];
      if (cp.size() > max_vertices) continue;
      bool disjoint = true;
      for (size_t j = 1; j < cp.size() && disjoint; ++j) {
        disjoint = !NaiveOnPath(prefix, cp[j]);
      }
      if (!disjoint) continue;
      if (spec.max_paths != 0 && out->size() >= spec.max_paths) {
        *status = ExceededMaxPaths(spec.max_paths);
        return false;
      }
      out->AddConcat(prefix, cp);
      if (stats != nullptr) ++stats->shortcut_splices;
    }
    return true;
  }
  const size_t batch_min = splice_cutover;
  const EpochStampTable::Prober prober = prefix_mark.prober();
  for (size_t i = 0; i < cached.size(); ++i) {
    PathView cp = cached[i];
    if (cp.size() > max_vertices) continue;
    bool disjoint = true;
    if (cp.size() - 1 >= batch_min) {
      disjoint = !prober.TestAny(cp.subspan(1));
    } else {
      for (size_t j = 1; j < cp.size(); ++j) {
        if (prefix_mark.Contains(cp[j])) {
          disjoint = false;
          break;
        }
      }
    }
    if (!disjoint) continue;
    if (spec.max_paths != 0 && out->size() >= spec.max_paths) {
      *status = ExceededMaxPaths(spec.max_paths);
      return false;
    }
    out->AddConcat(prefix, cp);
    if (stats != nullptr) ++stats->shortcut_splices;
  }
  return true;
}

/// Batched cycle check: one TestBatch over the whole adjacency block
/// computes every neighbor's on-path bit up front (8 gathered stamps per
/// iteration). The mask stays valid across the child recursions below the
/// caller because each push/Mark ... pop/Unmark pair restores the table to
/// exactly the state the mask was computed against. Out of line (and cold)
/// on purpose: short adjacency blocks never come here, and keeping the
/// buffer bookkeeping out of the recursive frame keeps Dfs itself tight.
__attribute__((noinline)) const uint8_t* ComputeNeighborMask(
    SearchCtx& c, std::span<const VertexId> nbrs, size_t len) {
  if (c.probe_masks.size() <= len) c.probe_masks.resize(len + 1);
  std::vector<uint8_t>& buf = c.probe_masks[len];
  if (buf.size() < nbrs.size()) buf.resize(nbrs.size());
  c.on_path->TestBatch(nbrs, buf.data());
  return buf.data();
}

template <bool kNaive, bool kPrefetch>
bool Dfs(SearchCtx& c);

/// The per-neighbor tail of the DFS expansion (everything after the
/// cycle check): splice a cached subtree or recurse. Force-inlined into
/// both neighbor loops of Dfs so the split into specialized loops costs
/// no call overhead.
template <bool kNaive, bool kPrefetch>
__attribute__((always_inline)) inline bool ExpandNeighbor(SearchCtx& c,
                                                          VertexId u,
                                                          int depth) {
  const Hop remaining = static_cast<Hop>(c.spec.budget - depth);
  const SearchDep* dep =
      c.spec.deps.empty() ? nullptr : FindDep(c.spec.deps, u);
  if (dep != nullptr && dep->budget >= remaining) {
    return SpliceCached(c.spec, kNaive, c.splice_cutover, c.path, *c.on_path,
                        *dep->paths, remaining, c.out, c.stats, &c.status);
  }
  // Pull u's adjacency block toward cache while this frame finishes its
  // bookkeeping; the recursion reads it a few dozen instructions later.
  // Only worth the instruction once the CSR arrays outgrow cache
  // (InitSearch resolves the gate, the template drops the test entirely).
  if constexpr (kPrefetch) c.g.PrefetchNeighbors(u, c.spec.dir);
  c.path.push_back(u);
  c.on_path->Mark(u);
  const bool keep_going = Dfs<kNaive, kPrefetch>(c);
  c.path.pop_back();
  c.on_path->Unmark(u);
  return keep_going;
}

/// The recursion is specialized on the per-search-invariant kernel
/// decisions (naive oracle? prefetch?) so its hot loop carries no
/// per-neighbor mode branches; only the per-node adaptive choice — batch
/// the whole adjacency block or probe per neighbor — remains, as a single
/// compare against the precomputed threshold. InitSearch + RunDfs pick
/// the instantiation.
template <bool kNaive, bool kPrefetch>
bool Dfs(SearchCtx& c) {
  if (!StoreCurrent(c)) return false;
  const size_t len = c.path.size() - 1;
  if (len >= c.spec.budget) return true;
  const VertexId tail = c.path.back();
  const int depth = static_cast<int>(len) + 1;
  const std::span<const VertexId> nbrs = c.g.Neighbors(tail, c.spec.dir);

  if constexpr (!kNaive) {
    // Block long enough to amortize the gather (threshold resolved once
    // in InitSearch: kAuto => kDfsBatchCutover, kStamped => always)?
    // Probe it in one batch and run the mask loop.
    if (nbrs.size() >= c.batch_cutover) {
      const uint8_t* mask = ComputeNeighborMask(c, nbrs, len);
      for (size_t ni = 0; ni < nbrs.size(); ++ni) {
        const VertexId u = nbrs[ni];
        if (c.stats != nullptr) ++c.stats->edges_expanded;
        if (!Admissible(c.spec, u, depth)) {
          if (c.stats != nullptr) ++c.stats->edges_pruned;
          continue;
        }
        if (mask[ni] != 0) continue;
        if (!ExpandNeighbor<kNaive, kPrefetch>(c, u, depth)) return false;
      }
      return true;
    }
  }
  for (VertexId u : nbrs) {
    if (c.stats != nullptr) ++c.stats->edges_expanded;
    if (!Admissible(c.spec, u, depth)) {
      if (c.stats != nullptr) ++c.stats->edges_pruned;
      continue;
    }
    const bool on_path =
        kNaive ? NaiveOnPath(c.path, u) : c.on_path->Contains(u);
    if (on_path) continue;
    if (!ExpandNeighbor<kNaive, kPrefetch>(c, u, depth)) return false;
  }
  return true;
}

/// Dispatches the recursion to the instantiation matching the decisions
/// InitSearch resolved.
bool RunDfs(SearchCtx& c) {
  if (c.naive_kernel) {
    return c.prefetch ? Dfs<true, true>(c) : Dfs<true, false>(c);
  }
  return c.prefetch ? Dfs<false, true>(c) : Dfs<false, false>(c);
}

/// Seeds the mark table with the initial path vertices before the
/// recursion takes over the incremental maintenance, and copies the
/// pre-resolved kernel decisions into the fields the recursive frame
/// reads. The mode switch and prefetch gate themselves live in
/// ResolveKernel, hoisted out of per-search setup.
void InitSearch(SearchCtx& c, const ResolvedKernel& rk) {
  c.on_path->Clear();
  for (VertexId v : c.path) c.on_path->Mark(v);
  c.batch_cutover = rk.dfs_batch_cutover;
  c.splice_cutover = rk.splice_batch_cutover;
  c.naive_kernel = rk.naive;
  c.prefetch = rk.prefetch;
}

/// Splitting a 1- or 2-hop search buys nothing: the subtrees are a handful
/// of vertex visits, far below task-dispatch cost.
constexpr Hop kMinSplitBudget = 3;

/// Frontier-split variant of the root search: the sequential Dfs over the
/// root's first-level neighbors is unrolled here — prune/expand counters
/// and splice decisions happen in first-pass neighbor order exactly as the
/// recursion would make them — and each surviving neighbor's subtree runs
/// as an independent sub-search on the pool. The sub-merge then replays
/// splices and subtree results in the same neighbor order, so stored
/// paths, their order, and (on success) every counter are byte-identical
/// to the sequential search.
Status RunHalfSearchSplit(const Graph& g, const HalfSearchSpec& spec,
                          const ResolvedKernel& rk, PathSet* out,
                          BatchStats* stats) {
  struct SubSearch {
    VertexId first = kInvalidVertex;  // first-hop neighbor of this subtree
    PathSet out;
    BatchStats stats;
    Status status = Status::OK();
  };
  // One entry per non-pruned neighbor, in adjacency order: either a cached
  // splice (dep != nullptr) or an index into `subs`.
  struct Action {
    const SearchDep* dep = nullptr;
    size_t sub_index = 0;
  };

  // First pass, mirroring the sequential neighbor loop. Counters stage into
  // locals: if too few subtrees emerge the scan is discarded and the plain
  // recursion runs instead (which then counts normally).
  std::vector<Action> actions;
  std::vector<SubSearch> subs;
  uint64_t scan_expanded = 0, scan_pruned = 0;
  const Hop remaining = static_cast<Hop>(spec.budget - 1);
  for (VertexId u : g.Neighbors(spec.start, spec.dir)) {
    ++scan_expanded;
    if (!Admissible(spec, u, 1)) {
      ++scan_pruned;
      continue;
    }
    if (u == spec.start) continue;  // self-loop: u is already on the path
    const SearchDep* dep =
        spec.deps.empty() ? nullptr : FindDep(spec.deps, u);
    if (dep != nullptr && dep->budget >= remaining) {
      actions.push_back({dep, 0});
    } else {
      actions.push_back({nullptr, subs.size()});
      subs.push_back({});
      subs.back().first = u;
    }
  }
  if (subs.size() < 2) {
    // Nothing to parallelize: discard the scan (no counters were committed)
    // and run the plain recursion, which counts as it goes.
    ScratchLease<EpochStampTable> mark(spec.stamps);
    SearchCtx ctx{g, spec, out, stats, mark.get()};
    ctx.path.reserve(static_cast<size_t>(spec.budget) + 1);
    ctx.path.push_back(spec.start);
    InitSearch(ctx, rk);
    RunDfs(ctx);
    return ctx.status;
  }
  if (stats != nullptr) {
    stats->edges_expanded += scan_expanded;
    stats->edges_pruned += scan_pruned;
  }

  HalfSearchSpec sub_spec = spec;
  sub_spec.pool = nullptr;  // one split level; subtrees recurse sequentially
  spec.pool->ParallelFor(subs.size(), [&](size_t i) {
    ScratchLease<EpochStampTable> mark(sub_spec.stamps);
    SearchCtx c{g, sub_spec, &subs[i].out,
                stats != nullptr ? &subs[i].stats : nullptr, mark.get()};
    c.path.reserve(static_cast<size_t>(spec.budget) + 1);
    c.path.push_back(spec.start);
    c.path.push_back(subs[i].first);
    InitSearch(c, rk);
    RunDfs(c);
    subs[i].status = c.status;
  });

  // Sub-merge, in the order the recursion would have stored everything:
  // the trivial path (start), then per neighbor its splices or its subtree.
  ScratchLease<EpochStampTable> root_mark(spec.stamps);
  SearchCtx root{g, spec, out, stats, root_mark.get()};
  root.path.push_back(spec.start);
  InitSearch(root, rk);
  if (!StoreCurrent(root)) return root.status;
  for (const Action& a : actions) {
    if (a.dep != nullptr) {
      Status st;
      if (!SpliceCached(spec, rk.naive, rk.splice_batch_cutover, root.path,
                        *root_mark, *a.dep->paths, remaining, out, stats,
                        &st)) {
        return st;
      }
      continue;
    }
    SubSearch& sub = subs[a.sub_index];
    if (stats != nullptr) stats->Accumulate(sub.stats);
    if (!sub.status.ok()) return sub.status;
    // Bulk transfer of the whole subtree result. The cap trips at exactly
    // the point the per-path loop would have: before the first path that
    // does not fit.
    if (spec.max_paths != 0) {
      const uint64_t room = spec.max_paths > out->size()
                                ? spec.max_paths - out->size()
                                : 0;
      if (sub.out.size() > room) {
        out->AppendRange(sub.out, 0, static_cast<size_t>(room));
        return ExceededMaxPaths(spec.max_paths);
      }
    }
    out->AppendSet(sub.out);
    sub.out.Clear();  // drained; don't hold every subtree to the end
  }
  return Status::OK();
}

}  // namespace

ResolvedKernel ResolveKernel(KernelMode mode, const Graph& g) {
  ResolvedKernel rk;
  switch (mode) {
    case KernelMode::kStamped:
      rk.dfs_batch_cutover = 1;     // every non-empty block probes batched
      rk.splice_batch_cutover = 0;  // every cached suffix probes batched
      break;
    case KernelMode::kNaive:
      rk.dfs_batch_cutover = SIZE_MAX;  // never
      rk.splice_batch_cutover = SIZE_MAX;
      rk.naive = true;
      break;
    case KernelMode::kAuto:
      rk.dfs_batch_cutover = kDfsBatchCutover;
      rk.splice_batch_cutover = kSpliceBatchCutover;
      break;
  }
  rk.prefetch = g.NumVertices() >= kPrefetchMinVertices;
  return rk;
}

Status RunHalfSearch(const Graph& g, const HalfSearchSpec& spec,
                     PathSet* out, BatchStats* stats) {
  HCPATH_CHECK(spec.start < g.NumVertices());
  HCPATH_CHECK(out != nullptr);
  // One-shot callers leave spec.resolved defaulted and pay the (cheap)
  // resolution here; enumerators and engines pre-resolve it so sustained
  // workloads skip this per search.
  const ResolvedKernel rk =
      spec.resolved.resolved() ? spec.resolved : ResolveKernel(spec.kernel, g);
  if (spec.pool != nullptr && spec.pool->num_workers() > 0 &&
      spec.budget >= kMinSplitBudget) {
    return RunHalfSearchSplit(g, spec, rk, out, stats);
  }
  ScratchLease<EpochStampTable> mark(spec.stamps);
  SearchCtx ctx{g, spec, out, stats, mark.get()};
  ctx.path.reserve(static_cast<size_t>(spec.budget) + 1);
  ctx.path.push_back(spec.start);
  InitSearch(ctx, rk);
  RunDfs(ctx);
  return ctx.status;
}

}  // namespace hcpath
