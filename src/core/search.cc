#include "core/search.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace hcpath {

namespace {

/// `on_path` mirrors `path` as an epoch-stamped membership table (one mark
/// per path vertex, maintained incrementally on push/pop), so the DFS
/// cycle check and the splice disjointness test are O(1) per vertex
/// instead of a scan of the path (docs/PERF.md).
struct SearchCtx {
  const Graph& g;
  const HalfSearchSpec& spec;
  PathSet* out;
  BatchStats* stats;
  EpochStampTable* on_path;
  std::vector<VertexId> path;
  Status status = Status::OK();
};

/// Lemma 3.1 pruning: is `u` admissible at suffix depth `depth`?
inline bool Admissible(const HalfSearchSpec& spec, VertexId u, int depth) {
  if (spec.global_min != nullptr) {
    Hop d = (*spec.global_min)[u];
    return d != kUnreachable && d <= spec.global_max_slack - depth;
  }
  if (spec.slacks.empty()) return true;
  for (const TargetSlack& ts : spec.slacks) {
    Hop d = ts.dist->Lookup(u);
    if (d != kUnreachable && d <= ts.slack - depth) return true;
  }
  return false;
}

inline const SearchDep* FindDep(std::span<const SearchDep> deps,
                                VertexId u) {
  // deps is sorted by vertex; it is tiny (one entry per reuse edge), so a
  // branchless lower_bound is plenty.
  auto it = std::lower_bound(
      deps.begin(), deps.end(), u,
      [](const SearchDep& d, VertexId v) { return d.vertex < v; });
  if (it != deps.end() && it->vertex == u) return &*it;
  return nullptr;
}

Status ExceededMaxPaths(uint64_t max_paths) {
  return Status::ResourceExhausted("half search exceeded max_paths = " +
                                   std::to_string(max_paths));
}

/// Stores the current path if it passes the join filter; returns false on
/// resource exhaustion.
bool StoreCurrent(SearchCtx& c) {
  const size_t len = c.path.size() - 1;
  if (c.spec.filter_for_join) {
    const bool useful = len == c.spec.budget ||
                        c.path.back() == c.spec.store_target;
    if (!useful) return true;
  }
  if (c.spec.max_paths != 0 && c.out->size() >= c.spec.max_paths) {
    c.status = ExceededMaxPaths(c.spec.max_paths);
    return false;
  }
  c.out->Add(c.path);
  return true;
}

/// Algorithm 4 lines 22-23: splices every cached HC-s path compatible with
/// `prefix` (within the remaining budget, disjoint from the prefix) into
/// `out` instead of recursing. cached[0] == the shortcut vertex by
/// construction, so only suffix vertices are checked (DESIGN.md D6).
/// `prefix_mark` holds exactly the vertices of `prefix`, so each cached
/// suffix is tested in O(|suffix|) stamp lookups. Shared by the recursion
/// and the frontier-split sub-merge so the filter and cap semantics cannot
/// diverge. Returns false + sets `status` at the max_paths cap.
bool SpliceCached(const HalfSearchSpec& spec,
                  const std::vector<VertexId>& prefix,
                  const EpochStampTable& prefix_mark, const PathSet& cached,
                  Hop remaining, PathSet* out, BatchStats* stats,
                  Status* status) {
  const size_t max_vertices = static_cast<size_t>(remaining) + 1;
  for (size_t i = 0; i < cached.size(); ++i) {
    PathView cp = cached[i];
    if (cp.size() > max_vertices) continue;
    bool disjoint = true;
    for (size_t j = 1; j < cp.size(); ++j) {
      if (prefix_mark.Contains(cp[j])) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;
    if (spec.max_paths != 0 && out->size() >= spec.max_paths) {
      *status = ExceededMaxPaths(spec.max_paths);
      return false;
    }
    out->AddConcat(prefix, cp);
    if (stats != nullptr) ++stats->shortcut_splices;
  }
  return true;
}

bool Dfs(SearchCtx& c) {
  if (!StoreCurrent(c)) return false;
  const size_t len = c.path.size() - 1;
  if (len >= c.spec.budget) return true;
  const VertexId tail = c.path.back();
  const int depth = static_cast<int>(len) + 1;
  for (VertexId u : c.g.Neighbors(tail, c.spec.dir)) {
    if (c.stats != nullptr) ++c.stats->edges_expanded;
    if (!Admissible(c.spec, u, depth)) {
      if (c.stats != nullptr) ++c.stats->edges_pruned;
      continue;
    }
    if (c.on_path->Contains(u)) continue;
    const Hop remaining = static_cast<Hop>(c.spec.budget - depth);
    const SearchDep* dep =
        c.spec.deps.empty() ? nullptr : FindDep(c.spec.deps, u);
    if (dep != nullptr && dep->budget >= remaining) {
      if (!SpliceCached(c.spec, c.path, *c.on_path, *dep->paths, remaining,
                        c.out, c.stats, &c.status)) {
        return false;
      }
      continue;
    }
    c.path.push_back(u);
    c.on_path->Mark(u);
    const bool keep_going = Dfs(c);
    c.path.pop_back();
    c.on_path->Unmark(u);
    if (!keep_going) return false;
  }
  return true;
}

/// Seeds the mark table with the initial path vertices before the
/// recursion takes over the incremental maintenance.
void SeedMarks(SearchCtx& c) {
  c.on_path->Clear();
  for (VertexId v : c.path) c.on_path->Mark(v);
}

/// Splitting a 1- or 2-hop search buys nothing: the subtrees are a handful
/// of vertex visits, far below task-dispatch cost.
constexpr Hop kMinSplitBudget = 3;

/// Frontier-split variant of the root search: the sequential Dfs over the
/// root's first-level neighbors is unrolled here — prune/expand counters
/// and splice decisions happen in first-pass neighbor order exactly as the
/// recursion would make them — and each surviving neighbor's subtree runs
/// as an independent sub-search on the pool. The sub-merge then replays
/// splices and subtree results in the same neighbor order, so stored
/// paths, their order, and (on success) every counter are byte-identical
/// to the sequential search.
Status RunHalfSearchSplit(const Graph& g, const HalfSearchSpec& spec,
                          PathSet* out, BatchStats* stats) {
  struct SubSearch {
    VertexId first = kInvalidVertex;  // first-hop neighbor of this subtree
    PathSet out;
    BatchStats stats;
    Status status = Status::OK();
  };
  // One entry per non-pruned neighbor, in adjacency order: either a cached
  // splice (dep != nullptr) or an index into `subs`.
  struct Action {
    const SearchDep* dep = nullptr;
    size_t sub_index = 0;
  };

  // First pass, mirroring the sequential neighbor loop. Counters stage into
  // locals: if too few subtrees emerge the scan is discarded and the plain
  // recursion runs instead (which then counts normally).
  std::vector<Action> actions;
  std::vector<SubSearch> subs;
  uint64_t scan_expanded = 0, scan_pruned = 0;
  const Hop remaining = static_cast<Hop>(spec.budget - 1);
  for (VertexId u : g.Neighbors(spec.start, spec.dir)) {
    ++scan_expanded;
    if (!Admissible(spec, u, 1)) {
      ++scan_pruned;
      continue;
    }
    if (u == spec.start) continue;  // self-loop: u is already on the path
    const SearchDep* dep =
        spec.deps.empty() ? nullptr : FindDep(spec.deps, u);
    if (dep != nullptr && dep->budget >= remaining) {
      actions.push_back({dep, 0});
    } else {
      actions.push_back({nullptr, subs.size()});
      subs.push_back({});
      subs.back().first = u;
    }
  }
  if (subs.size() < 2) {
    // Nothing to parallelize: discard the scan (no counters were committed)
    // and run the plain recursion, which counts as it goes.
    ScratchLease<EpochStampTable> mark(spec.stamps);
    SearchCtx ctx{g, spec, out, stats, mark.get(), {}, Status::OK()};
    ctx.path.reserve(static_cast<size_t>(spec.budget) + 1);
    ctx.path.push_back(spec.start);
    SeedMarks(ctx);
    Dfs(ctx);
    return ctx.status;
  }
  if (stats != nullptr) {
    stats->edges_expanded += scan_expanded;
    stats->edges_pruned += scan_pruned;
  }

  HalfSearchSpec sub_spec = spec;
  sub_spec.pool = nullptr;  // one split level; subtrees recurse sequentially
  spec.pool->ParallelFor(subs.size(), [&](size_t i) {
    ScratchLease<EpochStampTable> mark(sub_spec.stamps);
    SearchCtx c{g,
                sub_spec,
                &subs[i].out,
                stats != nullptr ? &subs[i].stats : nullptr,
                mark.get(),
                {},
                Status::OK()};
    c.path.reserve(static_cast<size_t>(spec.budget) + 1);
    c.path.push_back(spec.start);
    c.path.push_back(subs[i].first);
    SeedMarks(c);
    Dfs(c);
    subs[i].status = c.status;
  });

  // Sub-merge, in the order the recursion would have stored everything:
  // the trivial path (start), then per neighbor its splices or its subtree.
  ScratchLease<EpochStampTable> root_mark(spec.stamps);
  SearchCtx root{g, spec, out, stats, root_mark.get(), {}, Status::OK()};
  root.path.push_back(spec.start);
  SeedMarks(root);
  if (!StoreCurrent(root)) return root.status;
  for (const Action& a : actions) {
    if (a.dep != nullptr) {
      Status st;
      if (!SpliceCached(spec, root.path, *root_mark, *a.dep->paths,
                        remaining, out, stats, &st)) {
        return st;
      }
      continue;
    }
    SubSearch& sub = subs[a.sub_index];
    if (stats != nullptr) stats->Accumulate(sub.stats);
    if (!sub.status.ok()) return sub.status;
    // Bulk transfer of the whole subtree result. The cap trips at exactly
    // the point the per-path loop would have: before the first path that
    // does not fit.
    if (spec.max_paths != 0) {
      const uint64_t room = spec.max_paths > out->size()
                                ? spec.max_paths - out->size()
                                : 0;
      if (sub.out.size() > room) {
        out->AppendRange(sub.out, 0, static_cast<size_t>(room));
        return ExceededMaxPaths(spec.max_paths);
      }
    }
    out->AppendSet(sub.out);
    sub.out.Clear();  // drained; don't hold every subtree to the end
  }
  return Status::OK();
}

}  // namespace

Status RunHalfSearch(const Graph& g, const HalfSearchSpec& spec,
                     PathSet* out, BatchStats* stats) {
  HCPATH_CHECK(spec.start < g.NumVertices());
  HCPATH_CHECK(out != nullptr);
  if (spec.pool != nullptr && spec.pool->num_workers() > 0 &&
      spec.budget >= kMinSplitBudget) {
    return RunHalfSearchSplit(g, spec, out, stats);
  }
  ScratchLease<EpochStampTable> mark(spec.stamps);
  SearchCtx ctx{g, spec, out, stats, mark.get(), {}, Status::OK()};
  ctx.path.reserve(static_cast<size_t>(spec.budget) + 1);
  ctx.path.push_back(spec.start);
  SeedMarks(ctx);
  Dfs(ctx);
  return ctx.status;
}

}  // namespace hcpath
