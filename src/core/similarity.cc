#include "core/similarity.h"

#include <algorithm>

#include "util/bitset.h"
#include "util/hash.h"

namespace hcpath {

namespace {

constexpr size_t kSketchSize = 256;
constexpr uint64_t kAutoSketchVertexThreshold = 1ull << 20;

double HarmonicMu(double fwd, double bwd) {
  if (fwd <= 0.0 || bwd <= 0.0) return 0.0;
  return 2.0 * fwd * bwd / (fwd + bwd);
}

/// Bottom-k sketch of a vertex set: the k smallest Mix64 hashes, sorted.
/// Built straight from the distance map to avoid materializing and sorting
/// the full key set; `hashes` is a recycled output vector. Hashes key on
/// *original* vertex ids so the sketch — and therefore clustering — is
/// invariant under a GraphRemap renumbering.
void BuildSketch(const Graph& g, const VertexDistMap& set,
                 std::vector<uint64_t>* hashes) {
  hashes->clear();
  hashes->reserve(set.size());
  set.ForEach(
      [&](VertexId v, Hop) { hashes->push_back(Mix64(g.OriginalId(v))); });
  if (hashes->size() > kSketchSize) {
    std::nth_element(hashes->begin(), hashes->begin() + kSketchSize - 1,
                     hashes->end());
    hashes->resize(kSketchSize);
  }
  std::sort(hashes->begin(), hashes->end());
}

/// Estimates |A ∩ B| / min(|A|, |B|) from two bottom-k sketches and the
/// true set sizes. Within the hash window below both sketches' thresholds
/// each sketch is a *complete* uniform sample of its set, so
///   shared_in_window / min(a_in_window, b_in_window)
/// is a consistent estimator of the overlap coefficient.
double SketchOverlap(const std::vector<uint64_t>& sa, size_t size_a,
                     const std::vector<uint64_t>& sb, size_t size_b) {
  if (size_a == 0 || size_b == 0 || sa.empty() || sb.empty()) return 0.0;
  // A sketch is truncated only when its set exceeds kSketchSize; its last
  // hash is then the completeness threshold.
  const uint64_t cap_a = size_a > kSketchSize ? sa.back() : UINT64_MAX;
  const uint64_t cap_b = size_b > kSketchSize ? sb.back() : UINT64_MAX;
  const uint64_t tau = std::min(cap_a, cap_b);
  size_t i = 0, j = 0, shared = 0, a_in = 0, b_in = 0;
  while (i < sa.size() && sa[i] <= tau) ++i;
  a_in = i;
  while (j < sb.size() && sb[j] <= tau) ++j;
  b_in = j;
  i = 0;
  j = 0;
  while (i < a_in && j < b_in) {
    if (sa[i] == sb[j]) {
      ++shared;
      ++i;
      ++j;
    } else if (sa[i] < sb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t denom = std::min(a_in, b_in);
  if (denom == 0) return 0.0;
  return std::clamp(
      static_cast<double>(shared) / static_cast<double>(denom), 0.0, 1.0);
}

/// Exact overlap of a small sorted set against a large sorted set via
/// binary search; used when one side fits entirely in a sketch, where the
/// windowed estimator above has no samples to work with.
double SmallSetOverlap(const std::vector<VertexId>& small,
                       const std::vector<VertexId>& big) {
  if (small.empty() || big.empty()) return 0.0;
  size_t inter = 0;
  for (VertexId v : small) {
    if (std::binary_search(big.begin(), big.end(), v)) ++inter;
  }
  return static_cast<double>(inter) / static_cast<double>(small.size());
}

}  // namespace

double SimilarityMatrix::Average() const {
  if (n_ < 2) return 0.0;
  double acc = 0;
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = i + 1; j < n_; ++j) acc += Get(i, j);
  }
  return acc / (static_cast<double>(n_) * (n_ - 1) / 2.0);
}

double OverlapCoefficient(const std::vector<VertexId>& a,
                          const std::vector<VertexId>& b) {
  if (a.empty() || b.empty()) return 0.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return static_cast<double>(inter) /
         static_cast<double>(std::min(a.size(), b.size()));
}

SimilarityMatrix ComputeSimilarityMatrix(
    const Graph& g, const std::vector<PathQuery>& queries,
    const DistanceIndex& index, SimilarityMode mode, ThreadPool* pool,
    SimilarityScratch* scratch) {
  const size_t n = queries.size();
  SimilarityMatrix sim(n);
  if (n < 2) return sim;

  // Working memory: the caller's recycled scratch, or a call-local one.
  SimilarityScratch local_scratch;
  SimilarityScratch& sc = scratch != nullptr ? *scratch : local_scratch;

  // Row-parallel driver: pair (i, j > i) is computed by row task i alone,
  // and Set writes only that pair's two mirror cells, so rows never touch
  // the same memory. Sequential when no pool is given.
  auto for_each_row = [&](const std::function<void(size_t)>& row_fn) {
    if (pool != nullptr) {
      pool->ParallelFor(n, row_fn);
    } else {
      for (size_t i = 0; i < n; ++i) row_fn(i);
    }
  };

  bool use_sketch = mode == SimilarityMode::kSketch;
  if (mode == SimilarityMode::kAuto) {
    // Exact bitset intersections cost |Q|^2 * |V|/64 word operations plus
    // the bitset fills; switch to sketches once that exceeds a small
    // fixed budget.
    const double exact_ops = static_cast<double>(n) * n *
                             (static_cast<double>(g.NumVertices()) / 64.0);
    use_sketch = exact_ops > 10e6;
  }

  if (use_sketch) {
    std::vector<std::vector<uint64_t>>& fwd_sketch = sc.fwd_sketch;
    std::vector<std::vector<uint64_t>>& bwd_sketch = sc.bwd_sketch;
    std::vector<size_t>& fwd_size = sc.fwd_size;
    std::vector<size_t>& bwd_size = sc.bwd_size;
    fwd_sketch.resize(n);
    bwd_sketch.resize(n);
    fwd_size.assign(n, 0);
    bwd_size.assign(n, 0);
    for_each_row([&](size_t i) {
      BuildSketch(g, index.FromSourceMap(i), &fwd_sketch[i]);
      BuildSketch(g, index.ToTargetMap(i), &bwd_sketch[i]);
      fwd_size[i] = index.FromSourceMap(i).size();
      bwd_size[i] = index.ToTargetMap(i).size();
    });
    // The small-set fallback below reads lazily cached SortedKeys; rows
    // would race building the same query's cache, so materialize them up
    // front (one query per task) whenever any set can take that path.
    bool any_small_fwd = false, any_small_bwd = false;
    for (size_t i = 0; i < n; ++i) {
      any_small_fwd = any_small_fwd || fwd_size[i] <= kSketchSize;
      any_small_bwd = any_small_bwd || bwd_size[i] <= kSketchSize;
    }
    if (pool != nullptr && (any_small_fwd || any_small_bwd)) {
      for_each_row([&](size_t i) {
        if (any_small_fwd) index.Gamma(i);
        if (any_small_bwd) index.GammaR(i);
      });
    }
    auto overlap = [&](size_t i, size_t j, bool fwd) {
      const size_t si = fwd ? fwd_size[i] : bwd_size[i];
      const size_t sj = fwd ? fwd_size[j] : bwd_size[j];
      if (std::min(si, sj) <= kSketchSize) {
        // One side fits in a sketch entirely: intersect it exactly against
        // the other's full sorted key set (tiny sets vs huge reaches are
        // common for low-in-degree targets).
        const auto& gi = fwd ? index.Gamma(i) : index.GammaR(i);
        const auto& gj = fwd ? index.Gamma(j) : index.GammaR(j);
        return si <= sj ? SmallSetOverlap(gi, gj) : SmallSetOverlap(gj, gi);
      }
      return fwd ? SketchOverlap(fwd_sketch[i], si, fwd_sketch[j], sj)
                 : SketchOverlap(bwd_sketch[i], si, bwd_sketch[j], sj);
    };
    for_each_row([&](size_t i) {
      for (size_t j = i + 1; j < n; ++j) {
        sim.Set(i, j, HarmonicMu(overlap(i, j, true), overlap(i, j, false)));
      }
    });
    return sim;
  }

  // Exact mode: per-endpoint bitsets, word-parallel intersections.
  const size_t nv = g.NumVertices();
  std::vector<DynamicBitset>& fwd_bits = sc.fwd_bits;
  std::vector<DynamicBitset>& bwd_bits = sc.bwd_bits;
  std::vector<size_t>& fwd_size = sc.fwd_size;
  std::vector<size_t>& bwd_size = sc.bwd_size;
  fwd_bits.resize(n);
  bwd_bits.resize(n);
  fwd_size.assign(n, 0);
  bwd_size.assign(n, 0);
  // Safe row-parallel: task i only touches query i's bitsets and lazy key
  // caches. Resize re-zeroes recycled bitsets while keeping their word
  // storage, so bits a previous batch left behind cannot leak in.
  for_each_row([&](size_t i) {
    fwd_bits[i].Resize(nv);
    for (VertexId v : index.Gamma(i)) fwd_bits[i].Set(v);
    fwd_size[i] = index.Gamma(i).size();
    bwd_bits[i].Resize(nv);
    for (VertexId v : index.GammaR(i)) bwd_bits[i].Set(v);
    bwd_size[i] = index.GammaR(i).size();
  });
  auto intersect_count = [](const DynamicBitset& a, const DynamicBitset& b) {
    const uint64_t* wa = a.words();
    const uint64_t* wb = b.words();
    size_t c = 0;
    for (size_t w = 0; w < a.num_words(); ++w) {
      c += static_cast<size_t>(__builtin_popcountll(wa[w] & wb[w]));
    }
    return c;
  };
  for_each_row([&](size_t i) {
    for (size_t j = i + 1; j < n; ++j) {
      double f = 0, b = 0;
      if (fwd_size[i] != 0 && fwd_size[j] != 0) {
        f = static_cast<double>(intersect_count(fwd_bits[i], fwd_bits[j])) /
            static_cast<double>(std::min(fwd_size[i], fwd_size[j]));
      }
      if (bwd_size[i] != 0 && bwd_size[j] != 0) {
        b = static_cast<double>(intersect_count(bwd_bits[i], bwd_bits[j])) /
            static_cast<double>(std::min(bwd_size[i], bwd_size[j]));
      }
      sim.Set(i, j, HarmonicMu(f, b));
    }
  });
  return sim;
}

}  // namespace hcpath
