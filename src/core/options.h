#ifndef HCPATH_CORE_OPTIONS_H_
#define HCPATH_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "graph/graph_remap.h"
#include "util/status.h"

namespace hcpath {

/// Which batch algorithm to run (Section V, "Algorithms").
enum class Algorithm {
  kPathEnum,       ///< per-query PathEnum, index built per query (baseline)
  kBasicEnum,      ///< Algorithm 1: shared MS-BFS index, independent queries
  kBasicEnumPlus,  ///< BasicEnum with the optimized search order
  kBatchEnum,      ///< Algorithm 4: clustering + HC-s path sharing
  kBatchEnumPlus,  ///< BatchEnum with the optimized search order
};

const char* AlgorithmName(Algorithm a);

/// Pruning rule for *shared* HC-s path queries (DESIGN.md D3). Single-query
/// searches always use exact per-target pruning.
enum class SharedPruning {
  /// Per-(target, slack) list propagated through Ψ: tightest sound rule,
  /// O(#sharing targets) per expansion.
  kPerTarget,
  /// Batch-wide min-distance array: O(1) per expansion but weaker.
  kGlobalMin,
};

/// How query similarity (Def 4.5) is evaluated for clustering.
enum class SimilarityMode {
  kAuto,    ///< exact bitsets when |V| is small, sketches otherwise
  kExact,   ///< exact |Γ| intersections via bitsets
  kSketch,  ///< bottom-k minhash estimate (fast, approximate)
};

/// Which membership-probe kernel the enumeration hot loops use for the
/// disjointness tests (join backward-candidate probe, cached-suffix splice
/// probe, DFS on-path check). All modes compute identical results — this
/// knob exists for benchmarking and differential testing, never for
/// correctness (docs/PERF.md "Kernel inventory").
enum class KernelMode {
  /// Stamped probes with the batched TestAny/TestBatch path, plus the
  /// measured adaptive cutover to the naive scan for very short probes.
  kAuto,
  /// Stamped probes only — no naive cutover, batched tests always.
  kStamped,
  /// The pre-stamp linear scans (the verbatim reference kernels); the
  /// differential oracle.
  kNaive,
};

const char* KernelModeName(KernelMode m);
const char* RemapModeName(RemapMode m);

/// Parses "auto" / "stamped" / "naive" (case-insensitive).
StatusOr<KernelMode> ParseKernelMode(const std::string& name);
/// Parses "none" / "bfs" / "degree" (case-insensitive).
StatusOr<RemapMode> ParseRemapMode(const std::string& name);

/// Options controlling a batch run. Defaults mirror the paper's settings
/// (γ = 0.5, Section V "Settings").
struct BatchOptions {
  Algorithm algorithm = Algorithm::kBatchEnumPlus;

  /// Clustering threshold γ of Algorithm 2.
  double gamma = 0.5;

  SharedPruning shared_pruning = SharedPruning::kPerTarget;
  SimilarityMode similarity_mode = SimilarityMode::kAuto;

  /// Minimum hop budget for creating a dominating HC-s path query node;
  /// sharing a 1-hop suffix costs more bookkeeping than it saves.
  int min_dominating_budget = 1;

  /// Per-cluster cap on dominating nodes, as a multiple of the cluster
  /// size. Every dominating node re-expands its own detection cone, so on
  /// saturated clusters (hub-dominated graphs where all reach sets
  /// coincide) unlimited creation degrades Algorithm 3 from
  /// O(|Q|(V+E)) toward O(V(V+E)). 0 = unlimited.
  double max_dominating_per_query = 8.0;

  /// Safety valve: a query producing more results than this fails the run
  /// with ResourceExhausted instead of exhausting memory. 0 = unlimited.
  uint64_t max_paths_per_query = 0;

  /// Cap on materialized vertices held in the sharing cache R (0 = off).
  uint64_t max_cache_vertices = 0;

  /// Compute threads for the batch engines. 0 (or any value < 1) = use
  /// every hardware thread; 1 = the single-threaded reference
  /// implementation (default). Any larger value N runs on N compute
  /// threads (N - 1 shared pool workers plus the calling thread): the
  /// index build shards its BFS waves, BatchEnum runs clusters and
  /// BasicEnum runs queries in parallel, and results are merged in input
  /// order so paths, counts, and work counters are identical to
  /// num_threads = 1 (docs/PARALLELISM.md).
  int num_threads = 1;

  /// Minimum live queries in a cluster before its internal phases also run
  /// as sub-tasks on the pool (forward/backward detection and enumeration
  /// concurrently, assembly joins query-parallel, large root searches
  /// frontier-split). This is what keeps thread scaling on skewed batches
  /// where one giant cluster would otherwise serialize on a single worker.
  /// Output stays bit-identical to num_threads = 1 regardless of the value
  /// (docs/PARALLELISM.md); the knob only trades sub-task overhead against
  /// balance. Values < 2 behave as 2. Ignored when num_threads == 1.
  int intra_cluster_min_queries = 2;

  /// Disable phase 1 clustering (every query in one cluster); ablation.
  bool disable_clustering = false;

  /// Disable HC-s path sharing entirely inside BatchEnum (detection still
  /// runs, shortcuts are ignored); ablation of the cache reuse.
  bool disable_cache_reuse = false;

  /// Membership-probe kernel selection for the enumeration hot loops.
  /// Every mode produces byte-identical output; see KernelMode.
  KernelMode kernel_mode = KernelMode::kAuto;

  /// Vertex renumbering applied before enumeration (GraphRemap). Handled
  /// at the facade (BatchPathEnumerator::Run, PathEngine construction):
  /// the engines below always see RemapMode::kNone and a graph already in
  /// the id space they should search, and emitted paths are translated
  /// back so output is byte-identical in original ids.
  RemapMode remap_mode = RemapMode::kNone;

  /// Range-checks the option values: γ must lie in [0, 1] (Algorithm 2
  /// clusters on a similarity threshold), and min_dominating_budget /
  /// max_dominating_per_query must be non-negative. Called at every
  /// pipeline entry point (RunBatchEnum, RunBasicEnum,
  /// BatchPathEnumerator::Run, PathEngine construction), so malformed
  /// options fail fast with InvalidArgument instead of silently steering
  /// clustering or detection.
  Status Validate() const;
};

/// How a full admission queue pushes back on Submit (docs/SERVICE.md).
enum class AdmissionBackpressure {
  /// Submit blocks until queue space frees (or the engine stops). Blocked
  /// submitters are admitted in FIFO order of arrival.
  kBlock,
  /// Submit resolves the query's future immediately with ResourceExhausted
  /// ("admission queue full ...").
  kFailFast,
};

/// Multi-tenant admission configuration of a PathEngine: the bounded
/// admission queue, the backpressure policy, overload shedding, and tenant
/// weights for the weighted-fair-queueing drain (docs/SERVICE.md covers
/// the state machine and the fairness/determinism argument). Validated at
/// engine construction next to BatchOptions::Validate().
struct AdmissionOptions {
  /// Entry budget of the admission queue (> 0): the queue never holds more
  /// than this many waiting queries.
  size_t max_queued_queries = 4096;

  /// Byte budget of the admission queue (> 0), accounting each waiting
  /// query's bookkeeping footprint. A query is always admissible into an
  /// *empty* queue (otherwise an over-budget single query could never run),
  /// which is the one case the budget may be exceeded.
  uint64_t max_queued_bytes = 16ull << 20;

  AdmissionBackpressure backpressure = AdmissionBackpressure::kBlock;

  /// Overload begins when the queue reaches `shed_high_watermark` of either
  /// budget, and ends when it drops below. Once overload has persisted for
  /// `shed_patience_seconds`, waiting queries are shed —
  /// lowest-weight-first (see WeightedFairQueue::ShedDownTo) — until the
  /// queue is back at `shed_low_watermark` of both budgets. Shed queries'
  /// futures resolve with ResourceExhausted ("query shed by admission
  /// control ..."). Watermarks are fractions: 0 < low <= high <= 1.
  double shed_high_watermark = 1.0;
  double shed_low_watermark = 0.5;
  double shed_patience_seconds = 0.050;

  /// Max snapshot lag (store-backed engines, docs/DYNAMIC.md): when > 0,
  /// each update install fails every still-queued query whose pinned
  /// snapshot now lags the new current epoch by MORE than this many
  /// epochs. The query's future resolves with FailedPrecondition
  /// ("query snapshot over max lag ..."), its pin is released, and the
  /// store's deferred GC can reclaim the retired snapshot — bounding how
  /// much superseded-graph memory long-queued queries keep alive. 0 (the
  /// default) never fails a pin; queries keep their admission snapshot
  /// indefinitely. Dispatched queries are unaffected either way: once
  /// running, a query always finishes on its pinned snapshot.
  uint64_t max_snapshot_lag = 0;

  /// WFQ weight for tenants absent from `tenant_weights` (> 0).
  double default_tenant_weight = 1.0;

  /// Per-tenant WFQ weights (each > 0). Over any backlogged interval a
  /// tenant receives micro-batch slots proportional to its weight; under
  /// shedding, lower weight is shed first.
  std::map<std::string, double> tenant_weights;

  /// Range-checks the admission configuration: positive queue budgets,
  /// consistent shed watermarks (0 < low <= high <= 1), non-negative
  /// patience, and strictly positive tenant weights (NaN rejected
  /// everywhere). Called by PathEngine construction; a failed engine
  /// rejects every Submit/RunBatch.
  Status Validate() const;
};

}  // namespace hcpath

#endif  // HCPATH_CORE_OPTIONS_H_
