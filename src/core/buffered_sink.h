#ifndef HCPATH_CORE_BUFFERED_SINK_H_
#define HCPATH_CORE_BUFFERED_SINK_H_

#include <memory>
#include <mutex>
#include <vector>

#include "core/path.h"

namespace hcpath {

/// Per-worker path buffer for the parallel batch engines. Each worker emits
/// into its own BufferedSink (no locks on the hot emit path); the
/// coordinating thread replays the buffers in input order afterwards, so
/// the downstream sink observes exactly the sequential emission stream
/// (docs/PARALLELISM.md).
///
/// Storage is one densely packed PathSet plus a run table: consecutive
/// emissions for the same query collapse into one [begin, end) run, so a
/// buffer replays as a handful of bulk OnPaths calls — and when the
/// downstream is itself a BufferedSink (nested merges) or a CollectingSink,
/// each run lands as one PathSet::AppendRange copy instead of a virtual
/// call and a vertex copy per path.
class BufferedSink : public PathSink {
 public:
  BufferedSink() = default;

  // Non-copyable and non-movable; hold them in fixed-size containers.
  BufferedSink(const BufferedSink&) = delete;
  BufferedSink& operator=(const BufferedSink&) = delete;

  void OnPath(size_t query_index, PathView path) override {
    paths_.Add(path);
    ExtendRun(query_index, 1);
  }

  void OnPaths(size_t query_index, const PathSet& paths, size_t begin,
               size_t end) override {
    if (begin == end) return;
    paths_.AppendRange(paths, begin, end);
    ExtendRun(query_index, end - begin);
  }

  /// Re-emits every buffered path, in emission order, to `downstream`:
  /// one bulk OnPaths call per query run.
  void Replay(PathSink* downstream) const {
    for (const Run& r : runs_) {
      downstream->OnPaths(r.query_index, paths_, r.begin, r.end);
    }
  }

  /// Drops every buffered path and returns the path storage and run table
  /// to the system. The streaming merge calls this as soon as a buffer
  /// drains, so peak memory tracks undrained buffers, not the batch.
  void Clear() {
    paths_ = PathSet();
    runs_ = {};
  }

  /// Drops every buffered path but keeps the storage capacity for reuse.
  /// The recycling path for pooled sinks (SinkPool below): a rewound
  /// buffer serves its next run without returning to the system allocator.
  void Rewind() {
    paths_.Clear();
    runs_.clear();
  }

  /// Bytes currently pinned by this buffer (path storage + run table).
  uint64_t buffered_bytes() const {
    return paths_.MemoryBytes() + runs_.capacity() * sizeof(Run);
  }

  size_t num_paths() const { return paths_.size(); }

 private:
  struct Run {
    size_t query_index;
    size_t begin;  ///< first path index in paths_
    size_t end;    ///< one past the last path index
  };

  /// Runs are contiguous by construction (each covers the paths appended
  /// since the previous run's end), so extending only needs the query id.
  void ExtendRun(size_t query_index, size_t num_paths) {
    if (!runs_.empty() && runs_.back().query_index == query_index) {
      runs_.back().end += num_paths;
      return;
    }
    runs_.push_back({query_index, paths_.size() - num_paths, paths_.size()});
  }

  PathSet paths_;
  std::vector<Run> runs_;
};

/// Thread-safe free list of BufferedSinks, owned by a BatchContext so the
/// parallel merge reuses buffers (and their arena chunks / record tables)
/// across calls and across batches instead of reallocating per run.
///
/// Acquire/Release are mutex-guarded but off the hot path: one pair per
/// merge *item*, never per emitted path. Nested merges (intra-cluster
/// assembly inside a cluster task) share the pool safely — a buffer drained
/// by the streaming merge is released immediately, so its storage flows to
/// whichever concurrent merge acquires next.
///
/// Retention is budgeted: a released buffer keeps its storage (Rewind)
/// only while the pool's total retained bytes stay under
/// `kMaxRetainedBytes`, and no single buffer may pin more than
/// `kMaxRetainedPerSink`; beyond either bound the buffer's storage is
/// freed (Clear) before pooling. This preserves cross-batch chunk reuse
/// for a bounded working set while keeping the PR-2 streaming guarantee —
/// a giant batch's drained buffers cannot re-accumulate gather-baseline
/// memory inside the pool.
class SinkPool {
 public:
  static constexpr uint64_t kMaxRetainedBytes = 16 << 20;    // whole pool
  static constexpr uint64_t kMaxRetainedPerSink = 1 << 20;   // per buffer
  static constexpr size_t kMaxPooledSinks = 1024;            // object count

  SinkPool() = default;
  SinkPool(const SinkPool&) = delete;
  SinkPool& operator=(const SinkPool&) = delete;

  /// Returns an empty buffer, recycled when one is available.
  BufferedSink* Acquire() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!free_.empty()) {
        BufferedSink* s = free_.back().release();
        free_.pop_back();
        retained_bytes_ -= s->buffered_bytes();
        return s;
      }
    }
    return new BufferedSink();
  }

  /// Takes the buffer back, emptied; storage is kept only within budget.
  void Release(BufferedSink* sink) {
    sink->Rewind();
    uint64_t bytes = sink->buffered_bytes();
    std::lock_guard<std::mutex> lk(mu_);
    if (free_.size() >= kMaxPooledSinks) {
      delete sink;
      return;
    }
    if (bytes > kMaxRetainedPerSink ||
        retained_bytes_ + bytes > kMaxRetainedBytes) {
      sink->Clear();
      bytes = sink->buffered_bytes();  // record-table slack only
    }
    retained_bytes_ += bytes;
    free_.emplace_back(sink);
  }

  size_t free_count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return free_.size();
  }

  uint64_t retained_bytes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return retained_bytes_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<BufferedSink>> free_;
  uint64_t retained_bytes_ = 0;
};

}  // namespace hcpath

#endif  // HCPATH_CORE_BUFFERED_SINK_H_
