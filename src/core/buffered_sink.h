#ifndef HCPATH_CORE_BUFFERED_SINK_H_
#define HCPATH_CORE_BUFFERED_SINK_H_

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

#include "core/path.h"
#include "util/arena.h"

namespace hcpath {

/// Per-worker path buffer for the parallel batch engines. Each worker emits
/// into its own BufferedSink (no locks on the hot emit path); the
/// coordinating thread replays the buffers in input order afterwards, so
/// the downstream sink observes exactly the sequential emission stream
/// (docs/PARALLELISM.md).
///
/// Path storage is arena-backed: vertices are bump-allocated in chunks and
/// released wholesale when the buffer dies, so buffering adds no per-path
/// free-list churn.
class BufferedSink : public PathSink {
 public:
  /// Small first chunk: parallel runs allocate one buffer per query or
  /// cluster, and most hold few paths; the arena doubles into more chunks
  /// only when a buffer actually fills.
  BufferedSink() : arena_(16 << 10) {}

  // Non-copyable and non-movable (the arena pins its chunks); hold them in
  // fixed-size containers.
  BufferedSink(const BufferedSink&) = delete;
  BufferedSink& operator=(const BufferedSink&) = delete;

  void OnPath(size_t query_index, PathView path) override {
    VertexId* dst = arena_.AllocateArray<VertexId>(path.size());
    std::copy(path.begin(), path.end(), dst);
    records_.push_back({query_index, dst, path.size()});
  }

  /// Re-emits every buffered path, in emission order, to `downstream`.
  void Replay(PathSink* downstream) const {
    for (const Record& r : records_) {
      downstream->OnPath(r.query_index, PathView{r.vertices, r.num_vertices});
    }
  }

  /// Drops every buffered path and returns the arena chunks and record
  /// table to the system. The streaming merge calls this as soon as a
  /// buffer drains, so peak memory tracks undrained buffers, not the batch.
  void Clear() {
    arena_.Clear();
    records_ = {};
  }

  /// Drops every buffered path but keeps the arena's largest chunk and the
  /// record table's capacity for reuse. The recycling path for pooled
  /// sinks (SinkPool below): a rewound buffer serves its next run without
  /// returning to the system allocator.
  void Rewind() {
    arena_.Rewind();
    records_.clear();
  }

  /// Bytes currently pinned by this buffer (arena chunks + record table).
  uint64_t buffered_bytes() const {
    return arena_.bytes_reserved() + records_.capacity() * sizeof(Record);
  }

  size_t num_paths() const { return records_.size(); }

 private:
  struct Record {
    size_t query_index;
    const VertexId* vertices;
    size_t num_vertices;
  };

  Arena arena_;
  std::vector<Record> records_;
};

/// Thread-safe free list of BufferedSinks, owned by a BatchContext so the
/// parallel merge reuses buffers (and their arena chunks / record tables)
/// across calls and across batches instead of reallocating per run.
///
/// Acquire/Release are mutex-guarded but off the hot path: one pair per
/// merge *item*, never per emitted path. Nested merges (intra-cluster
/// assembly inside a cluster task) share the pool safely — a buffer drained
/// by the streaming merge is released immediately, so its storage flows to
/// whichever concurrent merge acquires next.
///
/// Retention is budgeted: a released buffer keeps its storage (Rewind)
/// only while the pool's total retained bytes stay under
/// `kMaxRetainedBytes`, and no single buffer may pin more than
/// `kMaxRetainedPerSink`; beyond either bound the buffer's storage is
/// freed (Clear) before pooling. This preserves cross-batch chunk reuse
/// for a bounded working set while keeping the PR-2 streaming guarantee —
/// a giant batch's drained buffers cannot re-accumulate gather-baseline
/// memory inside the pool.
class SinkPool {
 public:
  static constexpr uint64_t kMaxRetainedBytes = 16 << 20;    // whole pool
  static constexpr uint64_t kMaxRetainedPerSink = 1 << 20;   // per buffer
  static constexpr size_t kMaxPooledSinks = 1024;            // object count

  SinkPool() = default;
  SinkPool(const SinkPool&) = delete;
  SinkPool& operator=(const SinkPool&) = delete;

  /// Returns an empty buffer, recycled when one is available.
  BufferedSink* Acquire() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!free_.empty()) {
        BufferedSink* s = free_.back().release();
        free_.pop_back();
        retained_bytes_ -= s->buffered_bytes();
        return s;
      }
    }
    return new BufferedSink();
  }

  /// Takes the buffer back, emptied; storage is kept only within budget.
  void Release(BufferedSink* sink) {
    sink->Rewind();
    uint64_t bytes = sink->buffered_bytes();
    std::lock_guard<std::mutex> lk(mu_);
    if (free_.size() >= kMaxPooledSinks) {
      delete sink;
      return;
    }
    if (bytes > kMaxRetainedPerSink ||
        retained_bytes_ + bytes > kMaxRetainedBytes) {
      sink->Clear();
      bytes = sink->buffered_bytes();  // record-table slack only
    }
    retained_bytes_ += bytes;
    free_.emplace_back(sink);
  }

  size_t free_count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return free_.size();
  }

  uint64_t retained_bytes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return retained_bytes_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<BufferedSink>> free_;
  uint64_t retained_bytes_ = 0;
};

}  // namespace hcpath

#endif  // HCPATH_CORE_BUFFERED_SINK_H_
