#ifndef HCPATH_CORE_BUFFERED_SINK_H_
#define HCPATH_CORE_BUFFERED_SINK_H_

#include <algorithm>
#include <vector>

#include "core/path.h"
#include "util/arena.h"

namespace hcpath {

/// Per-worker path buffer for the parallel batch engines. Each worker emits
/// into its own BufferedSink (no locks on the hot emit path); the
/// coordinating thread replays the buffers in input order afterwards, so
/// the downstream sink observes exactly the sequential emission stream
/// (docs/PARALLELISM.md).
///
/// Path storage is arena-backed: vertices are bump-allocated in chunks and
/// released wholesale when the buffer dies, so buffering adds no per-path
/// free-list churn.
class BufferedSink : public PathSink {
 public:
  /// Small first chunk: parallel runs allocate one buffer per query or
  /// cluster, and most hold few paths; the arena doubles into more chunks
  /// only when a buffer actually fills.
  BufferedSink() : arena_(16 << 10) {}

  // Non-copyable and non-movable (the arena pins its chunks); hold them in
  // fixed-size containers.
  BufferedSink(const BufferedSink&) = delete;
  BufferedSink& operator=(const BufferedSink&) = delete;

  void OnPath(size_t query_index, PathView path) override {
    VertexId* dst = arena_.AllocateArray<VertexId>(path.size());
    std::copy(path.begin(), path.end(), dst);
    records_.push_back({query_index, dst, path.size()});
  }

  /// Re-emits every buffered path, in emission order, to `downstream`.
  void Replay(PathSink* downstream) const {
    for (const Record& r : records_) {
      downstream->OnPath(r.query_index, PathView{r.vertices, r.num_vertices});
    }
  }

  /// Drops every buffered path and returns the arena chunks and record
  /// table to the system. The streaming merge calls this as soon as a
  /// buffer drains, so peak memory tracks undrained buffers, not the batch.
  void Clear() {
    arena_.Clear();
    records_ = {};
  }

  /// Bytes currently pinned by this buffer (arena chunks + record table).
  uint64_t buffered_bytes() const {
    return arena_.bytes_reserved() + records_.capacity() * sizeof(Record);
  }

  size_t num_paths() const { return records_.size(); }

 private:
  struct Record {
    size_t query_index;
    const VertexId* vertices;
    size_t num_vertices;
  };

  Arena arena_;
  std::vector<Record> records_;
};

}  // namespace hcpath

#endif  // HCPATH_CORE_BUFFERED_SINK_H_
