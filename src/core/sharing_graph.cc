#include "core/sharing_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace hcpath {

SharingGraph::NodeId SharingGraph::AddNode(VertexId vertex, Hop budget,
                                           bool is_root) {
  Node n;
  n.vertex = vertex;
  n.budget = budget;
  n.is_root = is_root;
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

bool SharingGraph::WouldCreateCycle(NodeId dep, NodeId user) const {
  // Edge dep -> user closes a cycle iff dep is already reachable from user
  // (following dep -> user edges, i.e. the `users` adjacency).
  if (dep == user) return true;
  std::vector<NodeId> stack = {user};
  std::vector<bool> visited(nodes_.size(), false);
  visited[user] = true;
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    for (NodeId next : nodes_[cur].users) {
      if (next == dep) return true;
      if (!visited[next]) {
        visited[next] = true;
        stack.push_back(next);
      }
    }
  }
  return false;
}

bool SharingGraph::TryAddEdge(NodeId dep, NodeId user) {
  HCPATH_DCHECK(dep < nodes_.size() && user < nodes_.size());
  Node& u = nodes_[user];
  for (NodeId existing : u.deps) {
    if (existing == dep) return true;  // already linked
  }
  if (WouldCreateCycle(dep, user)) {
    ++cycle_edges_skipped_;
    return false;
  }
  u.deps.push_back(dep);
  nodes_[dep].users.push_back(user);
  ++num_edges_;
  // Maintain the user's vertex -> dep lookup, keeping the larger budget on
  // collision (larger budgets can serve strictly more splice depths).
  const VertexId anchor = nodes_[dep].vertex;
  auto it = std::lower_bound(
      u.dep_at.begin(), u.dep_at.end(), anchor,
      [](const std::pair<VertexId, NodeId>& e, VertexId v) {
        return e.first < v;
      });
  if (it != u.dep_at.end() && it->first == anchor) {
    if (nodes_[it->second].budget < nodes_[dep].budget) it->second = dep;
  } else {
    u.dep_at.insert(it, {anchor, dep});
  }
  return true;
}

std::vector<SharingGraph::NodeId> SharingGraph::TopologicalOrder() const {
  std::vector<uint32_t> pending(nodes_.size(), 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    pending[i] = static_cast<uint32_t>(nodes_[i].deps.size());
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  std::vector<NodeId> ready;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (pending[i] == 0) ready.push_back(static_cast<NodeId>(i));
  }
  while (!ready.empty()) {
    NodeId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (NodeId user : nodes_[id].users) {
      if (--pending[user] == 0) ready.push_back(user);
    }
  }
  HCPATH_CHECK_EQ(order.size(), nodes_.size());  // acyclic by construction
  return order;
}

void SharingGraph::PropagateSlacks() {
  // Users before deps == reverse topological order.
  std::vector<NodeId> topo = TopologicalOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const Node& user = nodes_[*it];
    for (NodeId dep_id : user.deps) {
      Node& dep = nodes_[dep_id];
      const int shift =
          std::max(0, static_cast<int>(user.budget) -
                          static_cast<int>(dep.budget));
      for (const SlackEntry& se : user.slacks) {
        const int shifted = se.slack - shift;
        bool merged = false;
        for (SlackEntry& existing : dep.slacks) {
          if (existing.query == se.query) {
            existing.slack = std::max(existing.slack, shifted);
            merged = true;
            break;
          }
        }
        if (!merged) dep.slacks.push_back({se.query, shifted});
      }
    }
  }
}

}  // namespace hcpath
