#include "core/detect.h"

#include <algorithm>
#include <unordered_map>

#include "bfs/distance_map.h"
#include "util/thread_pool.h"

namespace hcpath {

namespace {

using NodeId = SharingGraph::NodeId;

void MergeSlack(std::vector<SharingGraph::SlackEntry>& slacks,
                uint32_t query, int slack) {
  for (auto& se : slacks) {
    if (se.query == query) {
      se.slack = std::max(se.slack, slack);
      return;
    }
  }
  slacks.push_back({query, slack});
}

/// Insert-only vertex set on top of the open-addressing distance map;
/// cheaper than unordered_set in the detection hot loop.
class VisitedSet {
 public:
  bool Insert(VertexId v) {
    if (map_.Contains(v)) return false;
    map_.InsertMin(v, 0);
    return true;
  }
  bool Contains(VertexId v) const { return map_.Contains(v); }

 private:
  VertexDistMap map_;
};

}  // namespace

DetectionResult DetectCommonQueries(
    const Graph& g, Direction dir, const std::vector<PathQuery>& queries,
    const std::vector<size_t>& cluster, const std::vector<Hop>& budgets,
    const std::vector<bool>& skip, const DistanceIndex& index,
    const BatchOptions& options, BatchStats* stats) {
  DetectionResult out;
  SharingGraph& psi = out.psi;
  out.root_of.assign(cluster.size(), SharingGraph::kNoNode);

  // --- roots, deduplicated per start vertex (max budget wins) ---
  std::unordered_map<VertexId, NodeId> anchored;
  Hop kmax = 0;
  int max_query_k = 0;
  size_t live = 0;
  for (size_t pos = 0; pos < cluster.size(); ++pos) {
    if (skip[pos]) continue;
    ++live;
    const size_t qi = cluster[pos];
    const VertexId v =
        dir == Direction::kForward ? queries[qi].s : queries[qi].t;
    NodeId r;
    auto it = anchored.find(v);
    if (it == anchored.end()) {
      r = psi.AddNode(v, budgets[pos], true);
      anchored.emplace(v, r);
    } else {
      r = it->second;
      if (psi.node(r).budget < budgets[pos]) {
        psi.mutable_node(r).budget = budgets[pos];
      }
    }
    psi.mutable_node(r).attached_queries.push_back(
        static_cast<uint32_t>(qi));
    MergeSlack(psi.mutable_node(r).slacks, static_cast<uint32_t>(qi),
               queries[qi].k);
    out.root_of[pos] = r;
    kmax = std::max(kmax, budgets[pos]);
    max_query_k = std::max(max_query_k, queries[qi].k);
  }
  auto finish = [&]() {
    psi.PropagateSlacks();
    if (stats != nullptr) {
      stats->sharing_nodes += psi.NumNodes();
      stats->sharing_edges += psi.NumEdges();
      stats->cycle_edges_skipped += psi.cycle_edges_skipped();
    }
    return std::move(out);
  };
  // A single live query (or a single shared root) has nobody to share
  // with: skip the traversal entirely. This keeps BatchEnum's overhead
  // near zero on dissimilar batches (Exp-1 at low µ_Q).
  if (psi.NumNodes() <= 1 || live <= 1 || kmax == 0) return finish();

  // --- synchronized descending-budget traversal ---
  const std::vector<Hop>& min_opp = index.MinDistToOpposite(dir);
  // buckets[rb] = (vertex, node) arrivals with remaining budget rb.
  std::vector<std::vector<std::pair<VertexId, NodeId>>> buckets(
      static_cast<size_t>(kmax) + 1);
  std::vector<VisitedSet> visited(psi.NumNodes());
  for (const auto& [v, r] : anchored) {
    buckets[psi.node(r).budget].push_back({v, r});
  }

  // Expansion is depth-pruned: a vertex at depth d of node N can only
  // matter if some query target is still within reach (d + 1 + dist <= k).
  auto expand = [&](NodeId n, VertexId v, Hop rb) {
    if (rb <= 1) return;
    const int depth = psi.node(n).budget - rb;  // depth of v within n
    for (VertexId u : g.Neighbors(v, dir)) {
      const Hop d = min_opp[u];
      if (d == kUnreachable || depth + 1 + d > max_query_k) continue;
      if (visited[n].Contains(u)) continue;
      buckets[rb - 1].push_back({u, n});
    }
  };

  uint64_t dominating_created = 0;
  const uint64_t dominating_cap =
      options.max_dominating_per_query <= 0
          ? UINT64_MAX
          : static_cast<uint64_t>(options.max_dominating_per_query *
                                  static_cast<double>(live)) +
                1;

  std::vector<NodeId> fresh, others, to_expand;
  for (Hop rb = kmax; rb >= 1; --rb) {
    auto& level = buckets[rb];
    if (level.empty()) continue;
    // Canonicalize arrival order by *original* vertex id so detection makes
    // identical decisions (dominating-node creation order, reuse-edge
    // order) on a renumbered graph (GraphRemap). Ids are permuted
    // bijectively, so grouping by new id below still groups exactly the
    // equal-original-id runs this sort produces.
    std::sort(level.begin(), level.end(),
              [&g](const std::pair<VertexId, NodeId>& a,
                   const std::pair<VertexId, NodeId>& b) {
                const VertexId oa = g.OriginalId(a.first);
                const VertexId ob = g.OriginalId(b.first);
                return oa != ob ? oa < ob : a.second < b.second;
              });
    // Early exit: a level whose arrivals all belong to one node can still
    // discover reuse edges against anchored vertices, so only the
    // per-vertex grouping below is skipped when groups are trivial.
    size_t i = 0;
    while (i < level.size()) {
      size_t j = i;
      const VertexId v = level[i].first;
      while (j < level.size() && level[j].first == v) ++j;

      fresh.clear();
      for (size_t a = i; a < j; ++a) {
        NodeId n = level[a].second;
        if ((a == i || level[a].second != level[a - 1].second) &&
            visited[n].Insert(v)) {
          fresh.push_back(n);
        }
      }
      i = j;
      if (fresh.empty()) continue;

      auto anchor_it = anchored.find(v);
      NodeId anchor = anchor_it != anchored.end()
                          ? anchor_it->second
                          : SharingGraph::kNoNode;
      to_expand.clear();
      others.clear();
      for (NodeId n : fresh) {
        if (n == anchor) {
          to_expand.push_back(n);  // a node starting at its own anchor
        } else {
          others.push_back(n);
        }
      }

      if (anchor != SharingGraph::kNoNode &&
          psi.node(anchor).budget >= rb) {
        // Fig 5(b): reuse the anchored node; arrivals stop here.
        for (NodeId n : others) {
          if (!psi.TryAddEdge(anchor, n)) to_expand.push_back(n);
        }
      } else if (static_cast<int>(rb) >= options.min_dominating_budget &&
                 others.size() >= 2 &&
                 dominating_created < dominating_cap) {
        // Fig 6: several queries share vertex v with the same remaining
        // budget -> new dominating HC-s path query q_{v, rb}.
        NodeId dom = psi.AddNode(v, rb, false);
        visited.emplace_back();
        visited[dom].Insert(v);
        for (NodeId n : others) psi.TryAddEdge(dom, n);
        if (anchor != SharingGraph::kNoNode) {
          // The displaced smaller-budget node derives from the new one.
          psi.TryAddEdge(dom, anchor);
        }
        anchored[v] = dom;
        ++dominating_created;
        if (stats != nullptr) ++stats->dominating_nodes;
        to_expand.push_back(dom);
      } else {
        to_expand.insert(to_expand.end(), others.begin(), others.end());
      }

      for (NodeId n : to_expand) expand(n, v, rb);
    }
    buckets[rb].clear();
    buckets[rb].shrink_to_fit();
  }

  return finish();
}

void DetectBothDirections(const Graph& g,
                          const std::vector<PathQuery>& queries,
                          const std::vector<size_t>& cluster,
                          const std::vector<Hop>& fwd_budgets,
                          const std::vector<Hop>& bwd_budgets,
                          const std::vector<bool>& skip,
                          const DistanceIndex& index,
                          const BatchOptions& options, ThreadPool* pool,
                          DetectionResult* fwd, DetectionResult* bwd,
                          BatchStats* stats) {
  if (pool == nullptr || pool->num_workers() == 0) {
    *fwd = DetectCommonQueries(g, Direction::kForward, queries, cluster,
                               fwd_budgets, skip, index, options, stats);
    *bwd = DetectCommonQueries(g, Direction::kBackward, queries, cluster,
                               bwd_budgets, skip, index, options, stats);
    return;
  }
  BatchStats dir_stats[2];
  pool->ParallelFor(2, [&](size_t d) {
    if (d == 0) {
      *fwd = DetectCommonQueries(g, Direction::kForward, queries, cluster,
                                 fwd_budgets, skip, index, options,
                                 stats != nullptr ? &dir_stats[0] : nullptr);
    } else {
      *bwd = DetectCommonQueries(g, Direction::kBackward, queries, cluster,
                                 bwd_budgets, skip, index, options,
                                 stats != nullptr ? &dir_stats[1] : nullptr);
    }
  });
  if (stats != nullptr) {
    stats->Accumulate(dir_stats[0]);
    stats->Accumulate(dir_stats[1]);
  }
}

}  // namespace hcpath
