#ifndef HCPATH_CORE_SIMILARITY_H_
#define HCPATH_CORE_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "core/query.h"
#include "graph/graph.h"
#include "index/distance_index.h"
#include "util/bitset.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hcpath {

/// Symmetric matrix of pairwise HC-s-t path query similarities µ (Def 4.5).
class SimilarityMatrix {
 public:
  explicit SimilarityMatrix(size_t n) : n_(n), values_(n * n, 0.0) {
    for (size_t i = 0; i < n; ++i) values_[i * n + i] = 1.0;
  }

  size_t size() const { return n_; }
  double Get(size_t i, size_t j) const { return values_[i * n_ + j]; }
  void Set(size_t i, size_t j, double v) {
    values_[i * n_ + j] = v;
    values_[j * n_ + i] = v;
  }

  /// Average pairwise similarity µ_Q over distinct pairs (Exp-1); 0 when
  /// |Q| < 2.
  double Average() const;

 private:
  size_t n_;
  std::vector<double> values_;
};

/// µ(qA, qB): harmonic mean of the forward and backward neighborhood
/// overlap coefficients
///   o = |Γ(qA) ∩ Γ(qB)| / min(|Γ(qA)|, |Γ(qB)|),
/// 0 when either intersection is empty (DESIGN.md D7). The Γ sets come from
/// the batch index, reusing the BFS work exactly as the paper prescribes
/// ("we do not need to compute Γ(q) ... specialized for query clustering").
///
/// `mode` chooses exact bitset intersections or bottom-k minhash sketches
/// (kAuto picks sketches on graphs above ~1M vertices).
///
/// With a pool, the per-query set materialization and the O(|Q|^2) pair
/// loop run row-parallel; every pair is computed by exactly one task, so
/// the matrix is identical to the sequential one.
/// Reusable working memory for ComputeSimilarityMatrix: per-query sketches
/// in sketch mode, per-endpoint bitsets in exact mode. A long-lived caller
/// (BatchContext) passes the same scratch every batch so the O(|Q|) outer
/// vectors and the |V|-bit sets are recycled instead of reallocated; the
/// computed matrix is unaffected.
struct SimilarityScratch {
  std::vector<std::vector<uint64_t>> fwd_sketch, bwd_sketch;
  std::vector<size_t> fwd_size, bwd_size;
  std::vector<DynamicBitset> fwd_bits, bwd_bits;
};

SimilarityMatrix ComputeSimilarityMatrix(const Graph& g,
                                         const std::vector<PathQuery>& queries,
                                         const DistanceIndex& index,
                                         SimilarityMode mode,
                                         ThreadPool* pool = nullptr,
                                         SimilarityScratch* scratch = nullptr);

/// Exact overlap coefficient of two sorted vertex sets (exposed for tests).
double OverlapCoefficient(const std::vector<VertexId>& a,
                          const std::vector<VertexId>& b);

}  // namespace hcpath

#endif  // HCPATH_CORE_SIMILARITY_H_
