#ifndef HCPATH_CORE_BATCH_CONTEXT_H_
#define HCPATH_CORE_BATCH_CONTEXT_H_

#include <memory>

#include "core/buffered_sink.h"
#include "core/join.h"
#include "core/similarity.h"
#include "index/distance_index.h"
#include "index/endpoint_cache.h"
#include "util/epoch_stamp.h"
#include "util/thread_pool.h"

namespace hcpath {

/// All recyclable per-batch state of the batch pipeline, gathered so a
/// long-lived owner (PathEngine, or any caller serving sustained traffic)
/// reuses it across batches instead of reallocating per RunBatchEnum /
/// RunBasicEnum call:
///
///  * `index` — the batch distance index; Build() clears its maps in place,
///    so map tables, dense arrays, and sorted-key caches survive;
///  * `fwd_bfs_scratch` / `bwd_bfs_scratch` — the |V|-sized MS-BFS working
///    sets for the two concurrent build directions;
///  * `similarity` — clustering scratch (sketches / bitsets);
///  * `sinks` — pooled BufferedSinks (path storage, run tables) for the
///    streaming ordered merge;
///  * `stamps` / `join_scratch` — pooled epoch-stamp tables and join
///    working sets for the enumeration hot-loop kernels (DFS on-path
///    test, splice/join disjointness, midpoint bucket index), leased one
///    per concurrently active kernel (docs/PERF.md);
///  * `distance_cache` — optional non-owning pointer to a cross-batch
///    endpoint distance cache (the owner decides retention policy); index
///    builds probe it and feed BatchStats::distance_cache_{hits,misses}.
///
/// One-shot callers can pass nullptr everywhere and get a call-local
/// context — identical behavior, no reuse. A BatchContext must not be used
/// by two batch runs concurrently; the engine serializes batches.
class BatchContext {
 public:
  BatchContext() = default;
  BatchContext(const BatchContext&) = delete;
  BatchContext& operator=(const BatchContext&) = delete;

  DistanceIndex index;
  MsBfsScratch fwd_bfs_scratch;
  MsBfsScratch bwd_bfs_scratch;
  SimilarityScratch similarity;
  SinkPool sinks;
  EpochStampPool stamps;
  JoinScratchPool join_scratch;
  EndpointDistanceCache* distance_cache = nullptr;
  /// Snapshot epoch of the graph the current batch runs on (GraphStore /
  /// docs/DYNAMIC.md). The batch owner (PathEngine) sets it per batch from
  /// the batch's pinned snapshot before executing; index builds probe and
  /// fill the distance cache under this epoch. Static-graph callers leave
  /// the 0 default, which matches a cache that never sees an update.
  uint64_t graph_epoch = 0;

  /// The engine pool for `num_threads` compute threads, pinned in this
  /// context so repeated batches reuse one pool (ThreadPool::ForNumThreads
  /// semantics: nullptr = sequential reference). Re-resolves only when the
  /// requested thread count changes.
  ThreadPool* PoolFor(int num_threads);

 private:
  std::shared_ptr<ThreadPool> pool_;
  int pool_threads_ = 0;
  bool pool_resolved_ = false;
};

}  // namespace hcpath

#endif  // HCPATH_CORE_BATCH_CONTEXT_H_
