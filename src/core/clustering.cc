#include "core/clustering.h"

#include <algorithm>

namespace hcpath {

std::vector<std::vector<size_t>> ClusterQueries(const SimilarityMatrix& sim,
                                                double gamma) {
  const size_t n = sim.size();
  std::vector<std::vector<size_t>> clusters(n);
  for (size_t i = 0; i < n; ++i) clusters[i] = {i};
  if (n < 2) return clusters;

  // pair_sum[i][j] = sum of µ over cross pairs of clusters i, j; average
  // linkage δ = pair_sum / (|Ci| * |Cj|). Merging i <- j updates sums by
  // simple addition, keeping every step O(n).
  std::vector<std::vector<double>> pair_sum(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) pair_sum[i][j] = sim.Get(i, j);
    }
  }
  std::vector<bool> active(n, true);

  while (true) {
    double best = gamma;
    size_t bi = n, bj = n;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        double delta = pair_sum[i][j] /
                       (static_cast<double>(clusters[i].size()) *
                        static_cast<double>(clusters[j].size()));
        if (delta > best) {
          best = delta;
          bi = i;
          bj = j;
        }
      }
    }
    if (bi == n) break;  // no pair above gamma
    // Merge bj into bi.
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(),
                        clusters[bj].end());
    clusters[bj].clear();
    active[bj] = false;
    for (size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi) continue;
      pair_sum[bi][k] += pair_sum[bj][k];
      pair_sum[k][bi] = pair_sum[bi][k];
    }
  }

  std::vector<std::vector<size_t>> out;
  for (size_t i = 0; i < n; ++i) {
    if (active[i]) {
      std::sort(clusters[i].begin(), clusters[i].end());
      out.push_back(std::move(clusters[i]));
    }
  }
  return out;
}

}  // namespace hcpath
