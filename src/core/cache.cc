#include "core/cache.h"

#include <algorithm>

namespace hcpath {

void ResultCache::Init(std::vector<uint32_t> refcounts,
                       uint64_t max_vertices) {
  refcounts_ = std::move(refcounts);
  entries_.assign(refcounts_.size(), std::nullopt);
  max_vertices_ = max_vertices;
  current_vertices_ = 0;
  peak_vertices_ = 0;
  total_paths_cached_ = 0;
}

Status ResultCache::Put(SharingGraph::NodeId node, PathSet&& paths) {
  HCPATH_CHECK_LT(node, entries_.size());
  HCPATH_CHECK(!entries_[node].has_value());
  if (refcounts_[node] == 0) return Status::OK();  // nobody will read it
  const uint64_t vertices = paths.TotalVertices();
  if (max_vertices_ != 0 && current_vertices_ + vertices > max_vertices_) {
    return Status::ResourceExhausted(
        "sharing cache exceeded max_cache_vertices = " +
        std::to_string(max_vertices_));
  }
  current_vertices_ += vertices;
  peak_vertices_ = std::max(peak_vertices_, current_vertices_);
  total_paths_cached_ += paths.size();
  entries_[node] = std::move(paths);
  return Status::OK();
}

const PathSet& ResultCache::Get(SharingGraph::NodeId node) const {
  HCPATH_CHECK_LT(node, entries_.size());
  HCPATH_CHECK(entries_[node].has_value())
      << "cache miss for node " << node << " (evicted too early?)";
  return *entries_[node];
}

bool ResultCache::Contains(SharingGraph::NodeId node) const {
  return node < entries_.size() && entries_[node].has_value();
}

void ResultCache::Release(SharingGraph::NodeId node) {
  HCPATH_CHECK_LT(node, entries_.size());
  HCPATH_CHECK_GT(refcounts_[node], 0u);
  if (--refcounts_[node] == 0 && entries_[node].has_value()) {
    current_vertices_ -= entries_[node]->TotalVertices();
    entries_[node].reset();
  }
}

bool ResultCache::Drained() const {
  for (uint32_t rc : refcounts_) {
    if (rc != 0) return false;
  }
  return true;
}

}  // namespace hcpath
