#include "core/options.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace hcpath {

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

const char* KernelModeName(KernelMode m) {
  switch (m) {
    case KernelMode::kAuto:
      return "auto";
    case KernelMode::kStamped:
      return "stamped";
    case KernelMode::kNaive:
      return "naive";
  }
  return "unknown";
}

const char* RemapModeName(RemapMode m) {
  switch (m) {
    case RemapMode::kNone:
      return "none";
    case RemapMode::kBfs:
      return "bfs";
    case RemapMode::kDegree:
      return "degree";
  }
  return "unknown";
}

StatusOr<KernelMode> ParseKernelMode(const std::string& name) {
  const std::string n = Lower(name);
  if (n == "auto") return KernelMode::kAuto;
  if (n == "stamped") return KernelMode::kStamped;
  if (n == "naive") return KernelMode::kNaive;
  return Status::InvalidArgument(
      "unknown kernel mode \"" + name +
      "\" (expected one of: auto, stamped, naive)");
}

StatusOr<RemapMode> ParseRemapMode(const std::string& name) {
  const std::string n = Lower(name);
  if (n == "none") return RemapMode::kNone;
  if (n == "bfs") return RemapMode::kBfs;
  if (n == "degree") return RemapMode::kDegree;
  return Status::InvalidArgument(
      "unknown remap mode \"" + name +
      "\" (expected one of: none, bfs, degree)");
}

Status BatchOptions::Validate() const {
  if (!(gamma >= 0.0 && gamma <= 1.0)) {  // the negation also rejects NaN
    return Status::InvalidArgument("BatchOptions.gamma must be in [0, 1], got " +
                                   std::to_string(gamma));
  }
  if (min_dominating_budget < 0) {
    return Status::InvalidArgument(
        "BatchOptions.min_dominating_budget must be >= 0, got " +
        std::to_string(min_dominating_budget));
  }
  if (!(max_dominating_per_query >= 0.0)) {  // rejects negatives and NaN
    return Status::InvalidArgument(
        "BatchOptions.max_dominating_per_query must be >= 0, got " +
        std::to_string(max_dominating_per_query));
  }
  // Guard against out-of-range casts into the mode enums (e.g. from raw
  // flag integers); a bad value here would silently pick a probe kernel.
  switch (kernel_mode) {
    case KernelMode::kAuto:
    case KernelMode::kStamped:
    case KernelMode::kNaive:
      break;
    default:
      return Status::InvalidArgument(
          "BatchOptions.kernel_mode holds an invalid enum value");
  }
  switch (remap_mode) {
    case RemapMode::kNone:
    case RemapMode::kBfs:
    case RemapMode::kDegree:
      break;
    default:
      return Status::InvalidArgument(
          "BatchOptions.remap_mode holds an invalid enum value");
  }
  return Status::OK();
}

Status AdmissionOptions::Validate() const {
  if (max_queued_queries < 1) {
    return Status::InvalidArgument(
        "AdmissionOptions.max_queued_queries must be >= 1, got 0");
  }
  if (max_queued_bytes < 1) {
    return Status::InvalidArgument(
        "AdmissionOptions.max_queued_bytes must be >= 1, got 0");
  }
  if (!(shed_low_watermark > 0.0 && shed_low_watermark <= 1.0)) {
    return Status::InvalidArgument(
        "AdmissionOptions.shed_low_watermark must be in (0, 1], got " +
        std::to_string(shed_low_watermark));
  }
  if (!(shed_high_watermark > 0.0 && shed_high_watermark <= 1.0)) {
    return Status::InvalidArgument(
        "AdmissionOptions.shed_high_watermark must be in (0, 1], got " +
        std::to_string(shed_high_watermark));
  }
  if (!(shed_low_watermark <= shed_high_watermark)) {
    return Status::InvalidArgument(
        "AdmissionOptions shed watermarks are inconsistent: low " +
        std::to_string(shed_low_watermark) + " > high " +
        std::to_string(shed_high_watermark));
  }
  // Rejects negatives, NaN, and infinity (an infinite deadline is not
  // representable by the wall clock's wait; "never shed" is expressed with
  // shed_low_watermark = 1.0 instead).
  if (!(shed_patience_seconds >= 0.0) ||
      !std::isfinite(shed_patience_seconds)) {
    return Status::InvalidArgument(
        "AdmissionOptions.shed_patience_seconds must be finite and >= 0, "
        "got " +
        std::to_string(shed_patience_seconds));
  }
  if (!(default_tenant_weight > 0.0)) {  // rejects 0, negatives, NaN
    return Status::InvalidArgument(
        "AdmissionOptions.default_tenant_weight must be > 0, got " +
        std::to_string(default_tenant_weight));
  }
  for (const auto& [tenant, weight] : tenant_weights) {
    if (!(weight > 0.0)) {
      return Status::InvalidArgument(
          "AdmissionOptions.tenant_weights[\"" + tenant +
          "\"] must be > 0, got " + std::to_string(weight));
    }
  }
  return Status::OK();
}

}  // namespace hcpath
