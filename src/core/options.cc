#include "core/options.h"

namespace hcpath {

Status BatchOptions::Validate() const {
  if (!(gamma >= 0.0 && gamma <= 1.0)) {  // the negation also rejects NaN
    return Status::InvalidArgument("BatchOptions.gamma must be in [0, 1], got " +
                                   std::to_string(gamma));
  }
  if (min_dominating_budget < 0) {
    return Status::InvalidArgument(
        "BatchOptions.min_dominating_budget must be >= 0, got " +
        std::to_string(min_dominating_budget));
  }
  if (!(max_dominating_per_query >= 0.0)) {  // rejects negatives and NaN
    return Status::InvalidArgument(
        "BatchOptions.max_dominating_per_query must be >= 0, got " +
        std::to_string(max_dominating_per_query));
  }
  return Status::OK();
}

}  // namespace hcpath
