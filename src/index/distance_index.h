#ifndef HCPATH_INDEX_DISTANCE_INDEX_H_
#define HCPATH_INDEX_DISTANCE_INDEX_H_

#include <cstdint>
#include <vector>

#include "bfs/msbfs.h"
#include "graph/graph.h"
#include "index/endpoint_cache.h"

namespace hcpath {

/// The PathEnum-style pruning index for a batch of queries (Section III of
/// the paper): for every query source s, dist_G(s, v) for all v within the
/// query's hop constraint, and for every target t, dist_Gr(t, v) likewise.
/// Built with two multi-source BFSs (Algorithm 1, lines 1-2).
///
/// Lookups drive Lemma 3.1 pruning: a neighbor v can extend a forward
/// prefix of length l for query (s, t, k) only if
///   dist_Gr(t, v) == dist_G(v, t) <= k - l - 1.
///
/// The index also exposes:
///  * Γ(q) / Γr(q) (Def 4.4) as the sorted key sets of the per-endpoint
///    maps, reused by query clustering exactly as the paper reuses the
///    index construction traversals;
///  * dense min-distance arrays over all sources/targets, used by the
///    detection traversal and by the kGlobalMin shared-pruning mode.
///
/// A DistanceIndex is designed to be *recycled*: Build() clears the
/// previous batch's maps in place (keeping their backing storage) instead
/// of reallocating, which is what lets a long-lived PathEngine run batch
/// after batch without per-batch index churn (docs/SERVICE.md).
class DistanceIndex {
 public:
  DistanceIndex() = default;

  /// Builds the index. `sources[i]` / `targets[i]` / `hops[i]` describe
  /// query i. Sources are BFS'd on G, targets on Gr, both capped at the
  /// query's hop constraint. With a pool, the forward and backward builds
  /// run concurrently and each shards its source waves across workers; the
  /// result is identical to the sequential build (docs/PARALLELISM.md).
  ///
  /// With a `cache`, each unique (endpoint, direction, cap) key is probed
  /// first; hits are copied out of the cache instead of BFS'd, and maps
  /// built for misses are inserted for future batches. Served maps are
  /// content-identical to a fresh build, so batch output is unchanged
  /// (docs/SERVICE.md has the coherence argument); hit/miss totals for the
  /// last Build are exposed below. Probes and fills run strictly outside
  /// the parallel BFS section, on the calling thread.
  ///
  /// `graph_epoch` is the snapshot epoch `g` corresponds to on a dynamic
  /// graph (GraphStore / docs/DYNAMIC.md): probes only hit entries valid
  /// at that epoch and misses are inserted under it. Static callers leave
  /// the default 0.
  ///
  /// `fwd_scratch` / `bwd_scratch` optionally recycle the BFS working
  /// memory across builds (they must be distinct: the two directions run
  /// concurrently).
  void Build(const Graph& g, const std::vector<VertexId>& sources,
             const std::vector<VertexId>& targets,
             const std::vector<Hop>& hops, ThreadPool* pool = nullptr,
             EndpointDistanceCache* cache = nullptr,
             MsBfsScratch* fwd_scratch = nullptr,
             MsBfsScratch* bwd_scratch = nullptr, uint64_t graph_epoch = 0);

  size_t num_queries() const { return fwd_.per_source.size(); }

  /// Full distance map of source i (dist_G(source_i, v)).
  const VertexDistMap& FromSourceMap(size_t i) const {
    return fwd_.per_source[i];
  }
  /// Full distance map of target i (dist_G(v, target_i), built on Gr).
  const VertexDistMap& ToTargetMap(size_t i) const {
    return bwd_.per_source[i];
  }

  /// dist_G(source_i, v); kUnreachable beyond the cap.
  Hop DistFromSource(size_t i, VertexId v) const {
    return fwd_.per_source[i].Lookup(v);
  }
  /// dist_G(v, target_i) (computed on Gr); kUnreachable beyond the cap.
  Hop DistToTarget(size_t i, VertexId v) const {
    return bwd_.per_source[i].Lookup(v);
  }

  /// Distance map of endpoint i in the given search direction:
  /// kForward -> target map (prunes forward searches),
  /// kBackward -> source map (prunes backward searches).
  Hop DistToOpposite(Direction dir, size_t i, VertexId v) const {
    return dir == Direction::kForward ? DistToTarget(i, v)
                                      : DistFromSource(i, v);
  }

  /// Γ(q_i): vertices within hops[i] of source i on G (sorted).
  const std::vector<VertexId>& Gamma(size_t i) const {
    return fwd_.per_source[i].SortedKeys();
  }
  /// Γr(q_i): vertices within hops[i] of target i on Gr (sorted).
  const std::vector<VertexId>& GammaR(size_t i) const {
    return bwd_.per_source[i].SortedKeys();
  }

  /// min_i dist_G(source_i, v) — dense, kUnreachable if none.
  const std::vector<Hop>& MinDistFromAnySource() const {
    return fwd_.min_dist;
  }
  /// min_i dist_G(v, target_i) — dense, kUnreachable if none.
  const std::vector<Hop>& MinDistToAnyTarget() const { return bwd_.min_dist; }

  /// Dense min-dist array that prunes searches in direction `dir`.
  const std::vector<Hop>& MinDistToOpposite(Direction dir) const {
    return dir == Direction::kForward ? bwd_.min_dist : fwd_.min_dist;
  }

  /// Seconds spent in the last Build() (the BuildIndex phase of Fig 9).
  double build_seconds() const { return build_seconds_; }

  /// Unique (endpoint, direction, cap) keys served from / missed in the
  /// distance cache during the last Build(); both zero without a cache.
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }

  /// Approximate heap bytes.
  uint64_t MemoryBytes() const;

 private:
  struct DirectionPlan;
  void ProbeAndPlan(const Graph& g, EndpointDistanceCache* cache,
                    const std::vector<Hop>& hops, uint64_t graph_epoch,
                    DirectionPlan& plan);
  void CommitMisses(EndpointDistanceCache* cache, uint64_t graph_epoch,
                    DirectionPlan& plan);

  MsBfsResult fwd_;  // per-source maps on G + min-dist to any source
  MsBfsResult bwd_;  // per-target maps on Gr + min-dist to any target
  MsBfsResult miss_build_[2];  // recycled BFS outputs for cache misses
  double build_seconds_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
};

}  // namespace hcpath

#endif  // HCPATH_INDEX_DISTANCE_INDEX_H_
