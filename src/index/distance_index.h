#ifndef HCPATH_INDEX_DISTANCE_INDEX_H_
#define HCPATH_INDEX_DISTANCE_INDEX_H_

#include <cstdint>
#include <vector>

#include "bfs/msbfs.h"
#include "graph/graph.h"

namespace hcpath {

/// The PathEnum-style pruning index for a batch of queries (Section III of
/// the paper): for every query source s, dist_G(s, v) for all v within the
/// query's hop constraint, and for every target t, dist_Gr(t, v) likewise.
/// Built with two multi-source BFSs (Algorithm 1, lines 1-2).
///
/// Lookups drive Lemma 3.1 pruning: a neighbor v can extend a forward
/// prefix of length l for query (s, t, k) only if
///   dist_Gr(t, v) == dist_G(v, t) <= k - l - 1.
///
/// The index also exposes:
///  * Γ(q) / Γr(q) (Def 4.4) as the sorted key sets of the per-endpoint
///    maps, reused by query clustering exactly as the paper reuses the
///    index construction traversals;
///  * dense min-distance arrays over all sources/targets, used by the
///    detection traversal and by the kGlobalMin shared-pruning mode.
class DistanceIndex {
 public:
  DistanceIndex() = default;

  /// Builds the index. `sources[i]` / `targets[i]` / `hops[i]` describe
  /// query i. Sources are BFS'd on G, targets on Gr, both capped at the
  /// query's hop constraint. With a pool, the forward and backward builds
  /// run concurrently and each shards its source waves across workers; the
  /// result is identical to the sequential build (docs/PARALLELISM.md).
  void Build(const Graph& g, const std::vector<VertexId>& sources,
             const std::vector<VertexId>& targets,
             const std::vector<Hop>& hops, ThreadPool* pool = nullptr);

  size_t num_queries() const { return from_source_.size(); }

  /// Full distance map of source i (dist_G(source_i, v)).
  const VertexDistMap& FromSourceMap(size_t i) const {
    return from_source_[i];
  }
  /// Full distance map of target i (dist_G(v, target_i), built on Gr).
  const VertexDistMap& ToTargetMap(size_t i) const { return to_target_[i]; }

  /// dist_G(source_i, v); kUnreachable beyond the cap.
  Hop DistFromSource(size_t i, VertexId v) const {
    return from_source_[i].Lookup(v);
  }
  /// dist_G(v, target_i) (computed on Gr); kUnreachable beyond the cap.
  Hop DistToTarget(size_t i, VertexId v) const {
    return to_target_[i].Lookup(v);
  }

  /// Distance map of endpoint i in the given search direction:
  /// kForward -> target map (prunes forward searches),
  /// kBackward -> source map (prunes backward searches).
  Hop DistToOpposite(Direction dir, size_t i, VertexId v) const {
    return dir == Direction::kForward ? DistToTarget(i, v)
                                      : DistFromSource(i, v);
  }

  /// Γ(q_i): vertices within hops[i] of source i on G (sorted).
  const std::vector<VertexId>& Gamma(size_t i) const {
    return from_source_[i].SortedKeys();
  }
  /// Γr(q_i): vertices within hops[i] of target i on Gr (sorted).
  const std::vector<VertexId>& GammaR(size_t i) const {
    return to_target_[i].SortedKeys();
  }

  /// min_i dist_G(source_i, v) — dense, kUnreachable if none.
  const std::vector<Hop>& MinDistFromAnySource() const {
    return min_from_source_;
  }
  /// min_i dist_G(v, target_i) — dense, kUnreachable if none.
  const std::vector<Hop>& MinDistToAnyTarget() const {
    return min_to_target_;
  }

  /// Dense min-dist array that prunes searches in direction `dir`.
  const std::vector<Hop>& MinDistToOpposite(Direction dir) const {
    return dir == Direction::kForward ? min_to_target_ : min_from_source_;
  }

  /// Seconds spent in Build() (the BuildIndex phase of Fig 9).
  double build_seconds() const { return build_seconds_; }

  /// Approximate heap bytes.
  uint64_t MemoryBytes() const;

 private:
  std::vector<VertexDistMap> from_source_;
  std::vector<VertexDistMap> to_target_;
  std::vector<Hop> min_from_source_;
  std::vector<Hop> min_to_target_;
  double build_seconds_ = 0;
};

}  // namespace hcpath

#endif  // HCPATH_INDEX_DISTANCE_INDEX_H_
