#ifndef HCPATH_INDEX_ENDPOINT_CACHE_H_
#define HCPATH_INDEX_ENDPOINT_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "bfs/distance_map.h"
#include "graph/graph.h"

namespace hcpath {

/// Cross-batch LRU cache of endpoint distance maps, keyed by
/// (vertex, direction, hop cap). A long-lived PathEngine keeps one of these
/// so a hot endpoint that repeats across micro-batches (the same power-law
/// skew that motivates the paper's intra-batch sharing) skips its BFS in
/// the next batch's index build entirely.
///
/// Coherence: the graph is immutable for the cache's lifetime, and a BFS
/// from a fixed (vertex, direction) capped at a fixed hop count is a pure
/// function of the graph, so an entry never goes stale. A served map holds
/// exactly the entry set {(v, d) : d = dist(vertex, v) <= cap} a fresh
/// build would produce; since every index consumer is insensitive to map
/// layout (lookups and order-insensitive folds only — docs/SERVICE.md),
/// batch output on cache hits is bit-identical to cold runs. Invalidate()
/// is the escape hatch if a caller ever mutates or swaps the graph.
///
/// Not thread-safe: callers (DistanceIndex::Build probes and fills it
/// strictly outside the parallel BFS section; PathEngine runs one batch at
/// a time) must serialize access externally.
class EndpointDistanceCache {
 public:
  /// `max_entries` = 0 disables the cache (every probe misses, inserts are
  /// dropped). `max_bytes` = 0 means no byte budget.
  explicit EndpointDistanceCache(size_t max_entries = 4096,
                                 uint64_t max_bytes = 0)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  /// Returns the cached map for (vertex, dir, cap) and refreshes its LRU
  /// position, or nullptr. The pointer is stable until the next Insert /
  /// Invalidate call. Counts one hit or miss.
  const VertexDistMap* Lookup(VertexId vertex, Direction dir, Hop cap);

  /// Inserts (or replaces) the map for (vertex, dir, cap) as most recently
  /// used, then evicts least-recently-used entries until both budgets hold.
  void Insert(VertexId vertex, Direction dir, Hop cap, VertexDistMap map);

  /// Drops every entry (budgets and counters are kept).
  void Invalidate();

  size_t entries() const { return lru_.size(); }
  uint64_t bytes() const { return bytes_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

  /// Zeroes the hit/miss/eviction counters (entries stay).
  void ResetCounters() { hits_ = misses_ = evictions_ = 0; }

 private:
  struct Key {
    VertexId vertex;
    Direction dir;
    Hop cap;
    bool operator==(const Key& other) const {
      return vertex == other.vertex && dir == other.dir && cap == other.cap;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = (static_cast<uint64_t>(k.vertex) << 16) ^
                   (static_cast<uint64_t>(k.cap) << 8) ^
                   static_cast<uint64_t>(k.dir == Direction::kForward);
      h *= 0x9E3779B97F4A7C15ULL;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };
  struct Entry {
    Key key;
    VertexDistMap map;
    uint64_t bytes = 0;
  };

  void EvictToBudget();

  size_t max_entries_;
  uint64_t max_bytes_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> by_key_;
  uint64_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace hcpath

#endif  // HCPATH_INDEX_ENDPOINT_CACHE_H_
