#ifndef HCPATH_INDEX_ENDPOINT_CACHE_H_
#define HCPATH_INDEX_ENDPOINT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bfs/distance_map.h"
#include "graph/graph.h"
#include "util/epoch_stamp.h"

namespace hcpath {

/// Cross-batch LRU cache of endpoint distance maps, keyed by
/// (vertex, direction, hop cap). A long-lived PathEngine keeps one of these
/// so a hot endpoint that repeats across micro-batches (the same power-law
/// skew that motivates the paper's intra-batch sharing) skips its BFS in
/// the next batch's index build entirely.
///
/// Coherence on a dynamic graph (docs/DYNAMIC.md): every entry carries the
/// graph-epoch interval [built_epoch, valid_through] over which its content
/// is known to equal a fresh BFS. A hop-capped BFS from a fixed
/// (vertex, direction) is a pure function of the graph within the entry's
/// cone, so when an update batch lands, InvalidateUpdated() extends
/// valid_through for exactly the entries whose cone provably misses every
/// touched edge and erases the rest — cone-precise invalidation, not a
/// blanket flush. Lookups pass the epoch of the snapshot their batch
/// admitted against and only hit inside the entry's validity interval, so
/// pinned in-flight batches and post-update batches each see maps
/// bit-identical to a from-scratch build on their own snapshot. A static
/// graph degenerates to epoch 0 everywhere and behaves exactly as before.
///
/// Thread-safe: all public methods lock an internal mutex, so an update
/// thread may invalidate while a pinned batch probes/fills concurrently
/// (PathEngine::ApplyUpdates runs outside the batch-execution lock).
/// Served maps are copied out under the lock; no internal pointer escapes.
class EndpointDistanceCache {
 public:
  /// `max_entries` = 0 disables the cache (every probe misses, inserts are
  /// dropped). `max_bytes` = 0 means no byte budget.
  explicit EndpointDistanceCache(size_t max_entries = 4096,
                                 uint64_t max_bytes = 0)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  /// Probes (vertex, dir, cap) at graph epoch `epoch`. On a hit — the
  /// entry exists and `epoch` lies in its validity interval — copies the
  /// map into `*out` (copy-assignment recycles out's storage), refreshes
  /// the entry's LRU position, counts a hit, and returns true. An entry
  /// whose interval misses `epoch` counts as a miss (plus stale_misses).
  bool Lookup(VertexId vertex, Direction dir, Hop cap, uint64_t epoch,
              VertexDistMap* out);

  /// Inserts the map built at graph epoch `epoch` for (vertex, dir, cap)
  /// as most recently used, then evicts least-recently-used entries until
  /// both budgets hold. Over an existing key:
  ///  * interval covers `epoch` — same graph-determined content; only the
  ///    recency is refreshed;
  ///  * entry is older (valid_through < epoch) — replaced, with the byte
  ///    budget charged for exactly the delta (the overwrite path must not
  ///    double-count or leak; asserted by endpoint_cache_test's
  ///    bytes_accounted == sum(entries) invariant);
  ///  * entry is newer (built_epoch > epoch) — the insert is dropped: a
  ///    batch pinned to an old snapshot must not clobber current state.
  void Insert(VertexId vertex, Direction dir, Hop cap, uint64_t epoch,
              VertexDistMap map);

  /// Per-call outcome of InvalidateUpdated.
  struct InvalidationResult {
    uint64_t invalidated = 0;  ///< entries whose cone intersects the update
    uint64_t revalidated = 0;  ///< entries carried forward to new_epoch
  };

  /// Identity of an entry InvalidateUpdated erased — everything incremental
  /// repair needs to re-run the capped BFS on the new snapshot and reinsert
  /// (PathEngine::ApplyUpdates; docs/DYNAMIC.md "cache repair").
  struct RepairKey {
    VertexId vertex;
    Direction dir;
    Hop cap;
  };

  /// Graph transition old_epoch -> new_epoch = old_epoch + 1 with the
  /// given effective edge deltas (GraphBuilder::ApplyUpdates's stats):
  /// revalidates every entry whose hop-capped BFS cone provably avoids all
  /// touched edges — forward entry (v, cap) is kept iff no removed-edge
  /// tail is within cap-1 of v in `old_g` and no added-edge tail is within
  /// cap-1 of v in `new_g` (symmetrically via edge heads for backward
  /// entries) — and erases the rest. Kept entries get
  /// valid_through = new_epoch; only entries currently valid at old_epoch
  /// participate (anything older can already never serve new_epoch).
  ///
  /// Cost: at most four hop-capped multi-source BFSs from the touched
  /// endpoints, capped at (max cached hop cap) - 1 — independent of entry
  /// count beyond a linear classification scan. The BFS distance fields
  /// and frontier buffers come from a recycled scratch pool, so a
  /// steady-state update batch allocates nothing here.
  ///
  /// When `dead` is non-null, the key of every erased entry is appended —
  /// the exact (vertex, dir, cap) set whose cones the update changed —
  /// so the caller can repair them against the new snapshot.
  InvalidationResult InvalidateUpdated(
      const Graph& old_g, const Graph& new_g,
      const std::vector<std::pair<VertexId, VertexId>>& added,
      const std::vector<std::pair<VertexId, VertexId>>& removed,
      uint64_t old_epoch, uint64_t new_epoch,
      std::vector<RepairKey>* dead = nullptr);

  /// Drops every entry (budgets and counters are kept).
  void Invalidate();

  size_t entries() const;
  uint64_t bytes() const;
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  /// Misses caused by an entry that exists but whose validity interval
  /// does not contain the probed epoch.
  uint64_t stale_misses() const;
  /// Misses on keys the cache once held but invalidated (InvalidateUpdated
  /// erase or full Invalidate) and has not re-learned — as opposed to keys
  /// never seen. Splitting these is what makes repair efficacy measurable:
  /// repair exists precisely to turn would-be invalidated misses back into
  /// hits (exp11_dynamic reports both). Tracking is best-effort — the
  /// tombstone set is capped at a multiple of max_entries and cleared if
  /// an adversarial stream overflows it.
  uint64_t invalidated_misses() const;
  /// Cumulative InvalidateUpdated outcomes (plus full Invalidate() drops
  /// under `entries_invalidated`).
  uint64_t entries_invalidated() const;
  uint64_t entries_revalidated() const;

  /// Zeroes the hit/miss/eviction/invalidation counters (entries stay).
  void ResetCounters();

  /// One cache entry lifted out of (or headed into) the LRU — the unit the
  /// spill/restore layer (index/cache_persist.h) serializes.
  struct PersistedEntry {
    VertexId vertex;
    Direction dir;
    Hop cap;
    VertexDistMap map;
  };

  /// Snapshot of every entry valid at `epoch`, most-recently-used first.
  /// Entries whose validity interval misses `epoch` are skipped: a spill
  /// taken at a checkpoint epoch must only carry maps that equal a fresh
  /// BFS on the checkpointed graph. Maps are copied out under the lock.
  std::vector<PersistedEntry> ExportEntries(uint64_t epoch) const;

  /// Re-inserts previously exported entries as built at `epoch`, restoring
  /// the export's recency order (first element of `entries` ends up most
  /// recently used). Goes through Insert, so entry/byte budgets and the
  /// 3-case epoch logic apply — restoring into a smaller cache keeps the
  /// hottest prefix. Returns how many entries were accepted.
  size_t RestoreEntries(std::vector<PersistedEntry> entries, uint64_t epoch);

  /// Recomputes sum over live entries of their accounted size — the
  /// invariant bytes() must equal after any operation sequence. Test-only
  /// (linear walk).
  uint64_t DebugSumEntryBytes() const;

 private:
  struct Key {
    VertexId vertex;
    Direction dir;
    Hop cap;
    bool operator==(const Key& other) const {
      return vertex == other.vertex && dir == other.dir && cap == other.cap;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = (static_cast<uint64_t>(k.vertex) << 16) ^
                   (static_cast<uint64_t>(k.cap) << 8) ^
                   static_cast<uint64_t>(k.dir == Direction::kForward);
      h *= 0x9E3779B97F4A7C15ULL;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };
  struct Entry {
    Key key;
    VertexDistMap map;
    uint64_t bytes = 0;
    /// Content == fresh BFS on every snapshot in [built_epoch,
    /// valid_through] (inclusive).
    uint64_t built_epoch = 0;
    uint64_t valid_through = 0;
  };

  /// Grow-only buffers for the four classification BFSs, leased from a
  /// pool per InvalidateUpdated call so steady-state updates allocate
  /// nothing. Invariant between uses: every `dist` slot is kUnreachable —
  /// maintained by resetting only the slots each BFS touched (recorded in
  /// `touched`), which keeps the reset O(touched) like the BFS itself.
  struct InvalidationScratch {
    std::vector<Hop> dist[4];
    std::vector<VertexId> touched[4];
    std::vector<VertexId> sources[4];
    std::vector<VertexId> frontier;
    std::vector<VertexId> next;
  };

  void EvictToBudgetLocked();
  void MarkInvalidatedLocked(const Key& key);

  size_t max_entries_;
  uint64_t max_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> by_key_;
  /// Tombstones of invalidated-but-not-relearned keys, for the
  /// invalidated-vs-never-seen miss split. Size-capped; see
  /// invalidated_misses().
  std::unordered_set<Key, KeyHash> invalidated_keys_;
  ScratchPool<InvalidationScratch> inval_scratch_;
  uint64_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t stale_misses_ = 0;
  uint64_t invalidated_misses_ = 0;
  uint64_t entries_invalidated_ = 0;
  uint64_t entries_revalidated_ = 0;
};

}  // namespace hcpath

#endif  // HCPATH_INDEX_ENDPOINT_CACHE_H_
