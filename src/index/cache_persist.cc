#include "index/cache_persist.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <vector>

#include "graph/graph_snapshot_io.h"

namespace hcpath {

namespace {

constexpr uint64_t kSpillMagic = 0x3148434143504348ULL;  // "HCPCACH1" LE
constexpr uint32_t kSpillFormatVersion = 1;
constexpr uint64_t kEndianMarker = 0x0102030405060708ULL;

struct SpillHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t reserved;
  uint64_t endian;
  uint64_t epoch;
  uint64_t graph_checksum;
  uint64_t num_vertices;
  uint64_t entry_count;
  uint64_t payload_bytes;
  uint64_t payload_checksum;
  uint64_t header_checksum;  ///< Checksum64 over the preceding 72 bytes
};
static_assert(sizeof(SpillHeader) == 80);
constexpr size_t kHeaderChecksumOffset =
    offsetof(SpillHeader, header_checksum);

struct EntryHeader {
  uint32_t vertex;
  uint8_t dir;
  uint8_t cap;
  uint16_t reserved;
  uint32_t pair_count;
};
static_assert(sizeof(EntryHeader) == 12);

struct Pair {
  uint32_t vertex;
  uint8_t hop;
};
constexpr size_t kPairBytes = 5;  // packed on disk: u32 vertex + u8 hop

void AppendBytes(std::vector<char>& out, const void* p, size_t len) {
  const char* c = static_cast<const char*>(p);
  out.insert(out.end(), c, c + len);
}

}  // namespace

Status SaveEndpointCacheSpill(const EndpointDistanceCache& cache,
                              uint64_t epoch, const Graph& graph,
                              const std::string& path, CacheSpillInfo* info) {
  std::vector<EndpointDistanceCache::PersistedEntry> entries =
      cache.ExportEntries(epoch);

  // Serialize the payload in memory first (spills are small relative to
  // the graph: bounded by the cache's byte budget).
  std::vector<char> payload;
  std::vector<Pair> pairs;
  for (const auto& e : entries) {
    pairs.clear();
    pairs.reserve(e.map.size());
    e.map.ForEach([&](VertexId v, Hop d) {
      pairs.push_back(Pair{v, d});
    });
    // ForEach order depends on the backing (hash vs dense); sort so the
    // spill bytes are deterministic for identical cache content.
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair& a, const Pair& b) { return a.vertex < b.vertex; });
    EntryHeader eh{e.vertex, static_cast<uint8_t>(e.dir == Direction::kBackward ? 1 : 0),
                   e.cap, 0, static_cast<uint32_t>(pairs.size())};
    AppendBytes(payload, &eh, sizeof(eh));
    for (const Pair& p : pairs) {
      AppendBytes(payload, &p.vertex, sizeof(p.vertex));
      AppendBytes(payload, &p.hop, sizeof(p.hop));
    }
  }

  SpillHeader h{};
  h.magic = kSpillMagic;
  h.version = kSpillFormatVersion;
  h.reserved = 0;
  h.endian = kEndianMarker;
  h.epoch = epoch;
  h.graph_checksum = GraphContentChecksum(graph);
  h.num_vertices = graph.NumVertices();
  h.entry_count = entries.size();
  h.payload_bytes = payload.size();
  h.payload_checksum = Checksum64(payload.data(), payload.size(), 0);
  h.header_checksum = Checksum64(&h, kHeaderChecksumOffset, 0);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open cache spill for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  if (!out) return Status::IOError("short write while saving cache spill: " + path);
  if (info != nullptr) {
    *info = {h.epoch, h.graph_checksum, h.num_vertices, h.entry_count,
             sizeof(h) + payload.size()};
  }
  return Status::OK();
}

namespace {

Status ValidateSpillHeader(const std::string& path, const SpillHeader& h,
                           uint64_t file_bytes) {
  if (h.magic != kSpillMagic) {
    return Status::InvalidArgument("not a cache spill (bad magic): " + path);
  }
  if (h.header_checksum != Checksum64(&h, kHeaderChecksumOffset, 0)) {
    return Status::InvalidArgument("cache spill header checksum mismatch: " +
                                   path);
  }
  if (h.endian != kEndianMarker) {
    return Status::InvalidArgument(
        "cache spill written with different byte order: " + path);
  }
  if (h.version != kSpillFormatVersion) {
    return Status::InvalidArgument("unsupported cache spill version " +
                                   std::to_string(h.version) + ": " + path);
  }
  if (file_bytes != sizeof(SpillHeader) + h.payload_bytes) {
    return Status::InvalidArgument(
        "cache spill size inconsistent with header: " + path);
  }
  // Every entry costs at least an EntryHeader; bounds entry_count before
  // anyone sizes anything from it.
  if (h.entry_count > h.payload_bytes / sizeof(EntryHeader) + 1) {
    return Status::InvalidArgument("cache spill entry count corrupt: " + path);
  }
  return Status::OK();
}

}  // namespace

StatusOr<size_t> RestoreEndpointCacheSpill(EndpointDistanceCache* cache,
                                           uint64_t epoch, const Graph& graph,
                                           const std::string& path,
                                           CacheSpillInfo* info) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open cache spill: " + path);
  in.seekg(0, std::ios::end);
  const uint64_t file_bytes = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  if (file_bytes < sizeof(SpillHeader)) {
    return Status::InvalidArgument("cache spill file too small: " + path);
  }
  SpillHeader h;
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in) return Status::IOError("cannot read cache spill header: " + path);
  HCPATH_RETURN_NOT_OK(ValidateSpillHeader(path, h, file_bytes));

  // Revalidation gate: the spill must have been taken against exactly this
  // graph content, or every map in it is potentially wrong.
  const uint64_t n = graph.NumVertices();
  if (h.num_vertices != n ||
      h.graph_checksum != GraphContentChecksum(graph)) {
    return Status::FailedPrecondition(
        "cache spill was taken against different graph content: " + path);
  }

  std::vector<char> payload(static_cast<size_t>(h.payload_bytes));
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!in) return Status::IOError("truncated cache spill: " + path);
  if (Checksum64(payload.data(), payload.size(), 0) != h.payload_checksum) {
    return Status::InvalidArgument("cache spill payload checksum mismatch: " +
                                   path);
  }

  std::vector<EndpointDistanceCache::PersistedEntry> entries;
  entries.reserve(static_cast<size_t>(h.entry_count));
  size_t pos = 0;
  for (uint64_t i = 0; i < h.entry_count; ++i) {
    if (pos + sizeof(EntryHeader) > payload.size()) {
      return Status::InvalidArgument("cache spill truncated entry: " + path);
    }
    EntryHeader eh;
    std::memcpy(&eh, payload.data() + pos, sizeof(eh));
    pos += sizeof(eh);
    if (eh.vertex >= n || eh.dir > 1 || eh.reserved != 0 ||
        eh.cap == kUnreachable) {
      return Status::InvalidArgument("cache spill entry corrupt: " + path);
    }
    const size_t pair_bytes = static_cast<size_t>(eh.pair_count) * kPairBytes;
    if (pos + pair_bytes > payload.size()) {
      return Status::InvalidArgument("cache spill truncated pairs: " + path);
    }
    EndpointDistanceCache::PersistedEntry pe;
    pe.vertex = eh.vertex;
    pe.dir = eh.dir == 1 ? Direction::kBackward : Direction::kForward;
    pe.cap = eh.cap;
    pe.map.SetUniverse(static_cast<size_t>(n));
    pe.map.Reserve(eh.pair_count);
    VertexId prev = kInvalidVertex;
    for (uint32_t p = 0; p < eh.pair_count; ++p) {
      uint32_t v;
      uint8_t d;
      std::memcpy(&v, payload.data() + pos, sizeof(v));
      d = static_cast<uint8_t>(payload[pos + sizeof(v)]);
      pos += kPairBytes;
      // Sorted-ascending is part of the format; it also rejects duplicate
      // keys. Hops beyond the entry's cap (or kUnreachable) are corrupt.
      if (v >= n || d > eh.cap || (prev != kInvalidVertex && v <= prev)) {
        return Status::InvalidArgument("cache spill pair corrupt: " + path);
      }
      prev = v;
      pe.map.InsertMin(v, d);
    }
    entries.push_back(std::move(pe));
  }
  if (pos != payload.size()) {
    return Status::InvalidArgument("cache spill trailing bytes: " + path);
  }

  const size_t resident = cache->RestoreEntries(std::move(entries), epoch);
  if (info != nullptr) {
    *info = {h.epoch, h.graph_checksum, h.num_vertices, h.entry_count,
             file_bytes};
  }
  return resident;
}

StatusOr<CacheSpillInfo> ReadCacheSpillInfo(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open cache spill: " + path);
  in.seekg(0, std::ios::end);
  const uint64_t file_bytes = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  if (file_bytes < sizeof(SpillHeader)) {
    return Status::InvalidArgument("cache spill file too small: " + path);
  }
  SpillHeader h;
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in) return Status::IOError("cannot read cache spill header: " + path);
  HCPATH_RETURN_NOT_OK(ValidateSpillHeader(path, h, file_bytes));
  return CacheSpillInfo{h.epoch, h.graph_checksum, h.num_vertices,
                        h.entry_count, file_bytes};
}

}  // namespace hcpath
