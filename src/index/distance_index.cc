#include "index/distance_index.h"

#include "util/timer.h"

namespace hcpath {

void DistanceIndex::Build(const Graph& g,
                          const std::vector<VertexId>& sources,
                          const std::vector<VertexId>& targets,
                          const std::vector<Hop>& hops, ThreadPool* pool) {
  HCPATH_CHECK_EQ(sources.size(), targets.size());
  HCPATH_CHECK_EQ(sources.size(), hops.size());
  WallTimer timer;
  MsBfsResult fwd, bwd;
  if (pool != nullptr) {
    // The two directions are independent; run them concurrently, and let
    // each shard its waves over the same pool (nested ParallelFor is safe:
    // blocked callers help drain the queues).
    pool->ParallelFor(2, [&](size_t dir) {
      if (dir == 0) {
        fwd = MultiSourceBfs(g, sources, hops, Direction::kForward, pool);
      } else {
        bwd = MultiSourceBfs(g, targets, hops, Direction::kBackward, pool);
      }
    });
  } else {
    fwd = MultiSourceBfs(g, sources, hops, Direction::kForward);
    bwd = MultiSourceBfs(g, targets, hops, Direction::kBackward);
  }
  from_source_ = std::move(fwd.per_source);
  to_target_ = std::move(bwd.per_source);
  min_from_source_ = std::move(fwd.min_dist);
  min_to_target_ = std::move(bwd.min_dist);
  build_seconds_ = timer.ElapsedSeconds();
}

uint64_t DistanceIndex::MemoryBytes() const {
  uint64_t total = (min_from_source_.capacity() + min_to_target_.capacity()) *
                   sizeof(Hop);
  for (const auto& m : from_source_) total += m.MemoryBytes();
  for (const auto& m : to_target_) total += m.MemoryBytes();
  return total;
}

}  // namespace hcpath
