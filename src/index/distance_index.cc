#include "index/distance_index.h"

#include <unordered_map>
#include <utility>

#include "util/timer.h"

namespace hcpath {

namespace {

/// Folds one endpoint map into a dense min-distance array. Iteration order
/// is irrelevant (elementwise min commutes), so cache-served maps fold to
/// the same array a fresh BFS would have produced.
void FoldMin(const VertexDistMap& map, std::vector<Hop>& min_dist) {
  map.ForEach([&](VertexId v, Hop d) {
    if (d < min_dist[v]) min_dist[v] = d;
  });
}

}  // namespace

/// Cache-aware build plan for one direction: which request slots were
/// served from the cache, and the deduplicated (endpoint, cap) list that
/// still needs a BFS.
struct DistanceIndex::DirectionPlan {
  Direction dir;
  const std::vector<VertexId>* endpoints = nullptr;
  MsBfsResult* out = nullptr;          // fwd_ or bwd_
  MsBfsResult* miss_out = nullptr;     // recycled BFS result for the misses
  MsBfsScratch* scratch = nullptr;
  std::vector<VertexId> miss_sources;  // one entry per unique missing key
  std::vector<Hop> miss_caps;
  std::vector<std::vector<size_t>> miss_requests;  // key -> request slots
};

void DistanceIndex::ProbeAndPlan(const Graph& g, EndpointDistanceCache* cache,
                                 const std::vector<Hop>& hops,
                                 uint64_t graph_epoch, DirectionPlan& plan) {
  const size_t n = plan.endpoints->size();
  MsBfsResult& out = *plan.out;
  for (VertexDistMap& m : out.per_source) m.ClearKeepCapacity();
  out.per_source.resize(n);
  out.min_dist.assign(g.NumVertices(), kUnreachable);
  out.total_discovered = 0;

  // (vertex, cap) -> first request slot if served, or ~miss_index.
  std::unordered_map<uint64_t, size_t> seen;
  seen.reserve(n * 2);
  for (size_t i = 0; i < n; ++i) {
    const VertexId v = (*plan.endpoints)[i];
    const Hop cap = hops[i];
    const uint64_t key = (static_cast<uint64_t>(v) << 8) | cap;
    auto [it, first] = seen.try_emplace(key, 0);
    if (first) {
      // A hit is copied straight into the slot under the cache's lock
      // (copy-assignment reuses the slot's storage); only entries valid at
      // this batch's pinned snapshot epoch are served.
      if (cache->Lookup(v, plan.dir, cap, graph_epoch, &out.per_source[i])) {
        FoldMin(out.per_source[i], out.min_dist);
        ++cache_hits_;
        it->second = i;
      } else {
        ++cache_misses_;
        it->second = ~plan.miss_sources.size();
        plan.miss_sources.push_back(v);
        plan.miss_caps.push_back(cap);
        plan.miss_requests.emplace_back();
        plan.miss_requests.back().push_back(i);
      }
      continue;
    }
    // Batch-internal duplicate of an already-resolved key.
    const size_t state = it->second;
    if (state >> 63) {
      plan.miss_requests[~state].push_back(i);
    } else {
      out.per_source[i] = out.per_source[state];
    }
  }
}

void DistanceIndex::CommitMisses(EndpointDistanceCache* cache,
                                 uint64_t graph_epoch, DirectionPlan& plan) {
  MsBfsResult& out = *plan.out;
  MsBfsResult& built = *plan.miss_out;
  for (size_t k = 0; k < plan.miss_sources.size(); ++k) {
    for (size_t slot : plan.miss_requests[k]) {
      out.per_source[slot] = built.per_source[k];
    }
    cache->Insert(plan.miss_sources[k], plan.dir, plan.miss_caps[k],
                  graph_epoch, std::move(built.per_source[k]));
  }
  // The miss BFS only saw the missing endpoints; cache-served maps were
  // folded in during the probe, so the elementwise min completes the array.
  for (size_t v = 0; v < built.min_dist.size(); ++v) {
    if (built.min_dist[v] < out.min_dist[v]) out.min_dist[v] = built.min_dist[v];
  }
  out.total_discovered += built.total_discovered;
}

void DistanceIndex::Build(const Graph& g,
                          const std::vector<VertexId>& sources,
                          const std::vector<VertexId>& targets,
                          const std::vector<Hop>& hops, ThreadPool* pool,
                          EndpointDistanceCache* cache,
                          MsBfsScratch* fwd_scratch,
                          MsBfsScratch* bwd_scratch, uint64_t graph_epoch) {
  HCPATH_CHECK_EQ(sources.size(), targets.size());
  HCPATH_CHECK_EQ(sources.size(), hops.size());
  WallTimer timer;
  cache_hits_ = 0;
  cache_misses_ = 0;

  if (cache == nullptr) {
    // Cold path: one BFS slot per request, exactly the original pipeline.
    if (pool != nullptr) {
      // The two directions are independent; run them concurrently, and let
      // each shard its waves over the same pool (nested ParallelFor is
      // safe: blocked callers help drain the queues).
      pool->ParallelFor(2, [&](size_t dir) {
        if (dir == 0) {
          MultiSourceBfs(g, sources, hops, Direction::kForward, pool,
                         fwd_scratch, &fwd_);
        } else {
          MultiSourceBfs(g, targets, hops, Direction::kBackward, pool,
                         bwd_scratch, &bwd_);
        }
      });
    } else {
      MultiSourceBfs(g, sources, hops, Direction::kForward, nullptr,
                     fwd_scratch, &fwd_);
      MultiSourceBfs(g, targets, hops, Direction::kBackward, nullptr,
                     bwd_scratch, &bwd_);
    }
    build_seconds_ = timer.ElapsedSeconds();
    return;
  }

  // Cache-aware build. Probes (phase 1) and fills (phase 3) run on the
  // calling thread; only the miss BFSs (phase 2) go parallel. Served maps
  // replicate to every requesting slot, and misses deduplicate to one BFS
  // per unique (endpoint, cap) key.
  DirectionPlan plans[2];
  plans[0] = {Direction::kForward, &sources, &fwd_, &miss_build_[0],
              fwd_scratch,         {},       {},    {}};
  plans[1] = {Direction::kBackward, &targets, &bwd_, &miss_build_[1],
              bwd_scratch,          {},       {},    {}};
  for (DirectionPlan& plan : plans) {
    ProbeAndPlan(g, cache, hops, graph_epoch, plan);
  }

  auto run_misses = [&](DirectionPlan& plan) {
    MultiSourceBfs(g, plan.miss_sources, plan.miss_caps, plan.dir, pool,
                   plan.scratch, plan.miss_out);
  };
  if (pool != nullptr) {
    pool->ParallelFor(2, [&](size_t d) { run_misses(plans[d]); });
  } else {
    run_misses(plans[0]);
    run_misses(plans[1]);
  }

  for (DirectionPlan& plan : plans) CommitMisses(cache, graph_epoch, plan);
  build_seconds_ = timer.ElapsedSeconds();
}

uint64_t DistanceIndex::MemoryBytes() const {
  uint64_t total =
      (fwd_.min_dist.capacity() + bwd_.min_dist.capacity()) * sizeof(Hop);
  for (const auto& m : fwd_.per_source) total += m.MemoryBytes();
  for (const auto& m : bwd_.per_source) total += m.MemoryBytes();
  return total;
}

}  // namespace hcpath
