#include "index/endpoint_cache.h"

namespace hcpath {

const VertexDistMap* EndpointDistanceCache::Lookup(VertexId vertex,
                                                   Direction dir, Hop cap) {
  auto it = by_key_.find(Key{vertex, dir, cap});
  if (it == by_key_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->map;
}

void EndpointDistanceCache::Insert(VertexId vertex, Direction dir, Hop cap,
                                   VertexDistMap map) {
  if (max_entries_ == 0) return;
  const Key key{vertex, dir, cap};
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    // Same key means same graph-determined content; just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  Entry e;
  e.key = key;
  e.map = std::move(map);
  e.bytes = e.map.MemoryBytes() + sizeof(Entry);
  bytes_ += e.bytes;
  lru_.push_front(std::move(e));
  by_key_.emplace(key, lru_.begin());
  EvictToBudget();
}

void EndpointDistanceCache::Invalidate() {
  lru_.clear();
  by_key_.clear();
  bytes_ = 0;
}

void EndpointDistanceCache::EvictToBudget() {
  while (lru_.size() > max_entries_ ||
         (max_bytes_ != 0 && bytes_ > max_bytes_ && lru_.size() > 1)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    by_key_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace hcpath
