#include "index/endpoint_cache.h"

#include <algorithm>

namespace hcpath {

namespace {

/// Plain hop-capped multi-source BFS into a dense distance array whose
/// slots are all kUnreachable on entry. Small and allocation-free in
/// steady state on purpose: it runs under the cache lock, capped at the
/// largest cached hop cap minus one, from only the update batch's touched
/// endpoints, with every buffer leased from the invalidation scratch
/// pool. Each newly labeled slot (sources included) is recorded in
/// `touched` so the caller can restore the all-kUnreachable invariant in
/// O(touched).
void CappedMultiSourceDist(const Graph& g, Direction dir,
                           const std::vector<VertexId>& sources, Hop cap,
                           std::vector<Hop>& dist,
                           std::vector<VertexId>& frontier,
                           std::vector<VertexId>& next,
                           std::vector<VertexId>& touched) {
  frontier.clear();
  next.clear();
  touched.clear();
  frontier.reserve(sources.size());
  for (VertexId s : sources) {
    if (dist[s] != 0) {
      dist[s] = 0;
      frontier.push_back(s);
      touched.push_back(s);
    }
  }
  for (Hop h = 1; h <= cap && !frontier.empty(); ++h) {
    next.clear();
    for (VertexId u : frontier) {
      for (VertexId w : g.Neighbors(u, dir)) {
        if (dist[w] == kUnreachable) {
          dist[w] = h;
          next.push_back(w);
          touched.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
}

/// Grows `dist` to cover [0, n) keeping the all-kUnreachable invariant.
void EnsureUnreachable(std::vector<Hop>& dist, size_t n) {
  if (dist.size() < n) dist.resize(n, kUnreachable);
}

}  // namespace

bool EndpointDistanceCache::Lookup(VertexId vertex, Direction dir, Hop cap,
                                   uint64_t epoch, VertexDistMap* out) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_key_.find(Key{vertex, dir, cap});
  if (it == by_key_.end()) {
    ++misses_;
    if (invalidated_keys_.count(Key{vertex, dir, cap}) != 0) {
      ++invalidated_misses_;
    }
    return false;
  }
  const Entry& e = *it->second;
  if (epoch < e.built_epoch || epoch > e.valid_through) {
    ++misses_;
    ++stale_misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = e.map;
  return true;
}

void EndpointDistanceCache::Insert(VertexId vertex, Direction dir, Hop cap,
                                   uint64_t epoch, VertexDistMap map) {
  if (max_entries_ == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  const Key key{vertex, dir, cap};
  invalidated_keys_.erase(key);  // re-learned (repair or fresh build)
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    Entry& e = *it->second;
    if (epoch >= e.built_epoch && epoch <= e.valid_through) {
      // Same snapshot interval means same graph-determined content; just
      // refresh recency.
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (epoch < e.built_epoch) {
      // A batch pinned to an older snapshot rebuilt a key the cache has
      // since re-learned for a newer epoch; keep the newer content.
      return;
    }
    // Replace: the entry predates `epoch` and was not revalidated across
    // the intervening update(s), so its content is for a dead snapshot.
    // Charge the byte budget for exactly the delta.
    bytes_ -= e.bytes;
    e.map = std::move(map);
    e.bytes = e.map.MemoryBytes() + sizeof(Entry);
    e.built_epoch = epoch;
    e.valid_through = epoch;
    bytes_ += e.bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    EvictToBudgetLocked();
    return;
  }
  Entry e;
  e.key = key;
  e.map = std::move(map);
  e.bytes = e.map.MemoryBytes() + sizeof(Entry);
  e.built_epoch = epoch;
  e.valid_through = epoch;
  bytes_ += e.bytes;
  lru_.push_front(std::move(e));
  by_key_.emplace(key, lru_.begin());
  EvictToBudgetLocked();
}

EndpointDistanceCache::InvalidationResult
EndpointDistanceCache::InvalidateUpdated(
    const Graph& old_g, const Graph& new_g,
    const std::vector<std::pair<VertexId, VertexId>>& added,
    const std::vector<std::pair<VertexId, VertexId>>& removed,
    uint64_t old_epoch, uint64_t new_epoch, std::vector<RepairKey>* dead) {
  InvalidationResult result;
  std::lock_guard<std::mutex> lk(mu_);

  // Only entries valid at old_epoch can possibly carry forward; find the
  // deepest cone among them to cap the classification BFSs.
  Hop max_cap = 0;
  for (const Entry& e : lru_) {
    if (e.valid_through == old_epoch && e.key.cap > max_cap) {
      max_cap = e.key.cap;
    }
  }
  if (max_cap == 0) return result;
  if (added.empty() && removed.empty()) {
    // Pure no-op batch: every snapshot-identical entry carries forward.
    for (Entry& e : lru_) {
      if (e.valid_through == old_epoch) {
        e.valid_through = new_epoch;
        ++result.revalidated;
      }
    }
    entries_revalidated_ += result.revalidated;
    return result;
  }

  // A forward entry (v, cap) changes only if its BFS can reach a touched
  // edge's TAIL within cap-1 hops — removed edges on the old graph, added
  // edges on the new one (docs/DYNAMIC.md has the two-sided argument).
  // dist(v -> tail) for all v at once is one backward multi-source BFS
  // from the tails; backward entries are the mirror image via edge HEADS
  // and forward BFSs.
  ScratchLease<InvalidationScratch> scratch(&inval_scratch_);
  for (int k = 0; k < 4; ++k) scratch->sources[k].clear();
  std::vector<VertexId>& removed_tails = scratch->sources[0];
  std::vector<VertexId>& added_tails = scratch->sources[1];
  std::vector<VertexId>& removed_heads = scratch->sources[2];
  std::vector<VertexId>& added_heads = scratch->sources[3];
  for (const auto& [u, v] : removed) {
    removed_tails.push_back(u);
    removed_heads.push_back(v);
  }
  for (const auto& [u, v] : added) {
    added_tails.push_back(u);
    added_heads.push_back(v);
  }
  const size_t max_n =
      std::max<size_t>(old_g.NumVertices(), new_g.NumVertices());
  const Hop cone_cap = static_cast<Hop>(max_cap - 1);
  // Four independent distance fields — one per (delta kind, graph side) —
  // NOT folded into two: sharing an array would stop the second BFS's
  // propagation at vertices the first already labeled with a smaller
  // distance, under-counting reach and letting stale entries survive.
  // to_tail_*[v] = hops from v to the nearest touched tail (fwd-entry
  // test); from_head_*[v] = hops from the nearest touched head to v
  // (bwd-entry test). All four live in pooled scratch holding the
  // all-kUnreachable invariant between calls.
  std::vector<Hop>& to_tail_removed = scratch->dist[0];
  std::vector<Hop>& to_tail_added = scratch->dist[1];
  std::vector<Hop>& from_head_removed = scratch->dist[2];
  std::vector<Hop>& from_head_added = scratch->dist[3];
  for (int k = 0; k < 4; ++k) EnsureUnreachable(scratch->dist[k], max_n);
  CappedMultiSourceDist(old_g, Direction::kBackward, removed_tails, cone_cap,
                        to_tail_removed, scratch->frontier, scratch->next,
                        scratch->touched[0]);
  CappedMultiSourceDist(new_g, Direction::kBackward, added_tails, cone_cap,
                        to_tail_added, scratch->frontier, scratch->next,
                        scratch->touched[1]);
  CappedMultiSourceDist(old_g, Direction::kForward, removed_heads, cone_cap,
                        from_head_removed, scratch->frontier, scratch->next,
                        scratch->touched[2]);
  CappedMultiSourceDist(new_g, Direction::kForward, added_heads, cone_cap,
                        from_head_added, scratch->frontier, scratch->next,
                        scratch->touched[3]);

  for (auto it = lru_.begin(); it != lru_.end();) {
    Entry& e = *it;
    if (e.valid_through != old_epoch) {
      ++it;
      continue;
    }
    // Cached keys come from queries validated against their snapshot, and
    // vertex counts only grow, so e.key.vertex always indexes the arrays.
    const VertexId v = e.key.vertex;
    const Hop d = e.key.dir == Direction::kForward
                      ? std::min(to_tail_removed[v], to_tail_added[v])
                      : std::min(from_head_removed[v], from_head_added[v]);
    if (d != kUnreachable && d + 1 <= e.key.cap) {
      if (dead != nullptr) {
        dead->push_back(RepairKey{e.key.vertex, e.key.dir, e.key.cap});
      }
      MarkInvalidatedLocked(e.key);
      bytes_ -= e.bytes;
      by_key_.erase(e.key);
      it = lru_.erase(it);
      ++result.invalidated;
    } else {
      e.valid_through = new_epoch;
      ++result.revalidated;
      ++it;
    }
  }
  entries_invalidated_ += result.invalidated;
  entries_revalidated_ += result.revalidated;

  // Restore the scratch invariant in O(touched).
  for (int k = 0; k < 4; ++k) {
    for (VertexId v : scratch->touched[k]) scratch->dist[k][v] = kUnreachable;
  }
  return result;
}

void EndpointDistanceCache::MarkInvalidatedLocked(const Key& key) {
  // Best-effort bound: the tombstone set only matters for miss
  // attribution, so an adversarial stream that overflows it just loses
  // classification history, never correctness.
  if (invalidated_keys_.size() >= 8 * max_entries_ + 1024) {
    invalidated_keys_.clear();
  }
  invalidated_keys_.insert(key);
}

void EndpointDistanceCache::Invalidate() {
  std::lock_guard<std::mutex> lk(mu_);
  entries_invalidated_ += lru_.size();
  for (const Entry& e : lru_) MarkInvalidatedLocked(e.key);
  lru_.clear();
  by_key_.clear();
  bytes_ = 0;
}

void EndpointDistanceCache::EvictToBudgetLocked() {
  while (lru_.size() > max_entries_ ||
         (max_bytes_ != 0 && bytes_ > max_bytes_ && lru_.size() > 1)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    by_key_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

size_t EndpointDistanceCache::entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lru_.size();
}
uint64_t EndpointDistanceCache::bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_;
}
uint64_t EndpointDistanceCache::hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hits_;
}
uint64_t EndpointDistanceCache::misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return misses_;
}
uint64_t EndpointDistanceCache::evictions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evictions_;
}
uint64_t EndpointDistanceCache::stale_misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stale_misses_;
}
uint64_t EndpointDistanceCache::invalidated_misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return invalidated_misses_;
}
uint64_t EndpointDistanceCache::entries_invalidated() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_invalidated_;
}
uint64_t EndpointDistanceCache::entries_revalidated() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_revalidated_;
}

void EndpointDistanceCache::ResetCounters() {
  std::lock_guard<std::mutex> lk(mu_);
  hits_ = misses_ = evictions_ = stale_misses_ = invalidated_misses_ = 0;
  entries_invalidated_ = entries_revalidated_ = 0;
}

std::vector<EndpointDistanceCache::PersistedEntry>
EndpointDistanceCache::ExportEntries(uint64_t epoch) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<PersistedEntry> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) {  // front = MRU, so export is MRU-first
    if (epoch < e.built_epoch || epoch > e.valid_through) continue;
    out.push_back(PersistedEntry{e.key.vertex, e.key.dir, e.key.cap, e.map});
  }
  return out;
}

size_t EndpointDistanceCache::RestoreEntries(
    std::vector<PersistedEntry> entries, uint64_t epoch) {
  // Insert in reverse so entries[0] — the export's MRU — is inserted last
  // and lands at the front of the LRU; if budgets force evictions during
  // the restore, the coldest imports go first, exactly as if the original
  // cache had been shrunk.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    Insert(it->vertex, it->dir, it->cap, epoch, std::move(it->map));
  }
  // "Accepted" = still resident after the whole restore (evictions during
  // the loop may have displaced earlier imports). Export keys are unique,
  // so counting presence is exact.
  size_t accepted = 0;
  std::lock_guard<std::mutex> lk(mu_);
  for (const PersistedEntry& e : entries) {
    if (by_key_.count(Key{e.vertex, e.dir, e.cap}) != 0) ++accepted;
  }
  return accepted;
}

uint64_t EndpointDistanceCache::DebugSumEntryBytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const Entry& e : lru_) total += e.map.MemoryBytes() + sizeof(Entry);
  return total;
}

}  // namespace hcpath
