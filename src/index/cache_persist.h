#ifndef HCPATH_INDEX_CACHE_PERSIST_H_
#define HCPATH_INDEX_CACHE_PERSIST_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "index/endpoint_cache.h"
#include "util/status.h"

namespace hcpath {

/// Endpoint-distance cache spill/restore (docs/PERSIST.md): serializes the
/// cache's live entries at shutdown and reloads them at startup, so a
/// restarted PathEngine warms from disk instead of re-running one BFS per
/// hot endpoint.
///
/// Correctness rests on a revalidation argument, not trust: each cached
/// map is a pure function of (graph content, vertex, direction, hop cap).
/// The spill header records GraphContentChecksum of the graph the entries
/// were valid against plus the checkpoint epoch; restore recomputes the
/// checksum of the graph it is restoring against and refuses on mismatch
/// (FailedPrecondition). When the checksums agree the graphs have
/// identical CSR arrays, so every restored map equals the BFS the engine
/// would have rebuilt — the restore is indistinguishable from a warm
/// cache, and the entries are stamped with the restoring store's epoch.
///
/// File layout (native-endian; sizes in bytes):
///   header (72): magic "HCPCACH1" u64, version u32, reserved u32,
///     endian marker u64, epoch u64, graph_checksum u64, num_vertices u64,
///     entry_count u64, payload_bytes u64, payload_checksum u64,
///     header_checksum u64 (Checksum64 over the preceding 64 bytes)
///   per entry: vertex u32, dir u8, cap u8, reserved u16, pair_count u32,
///     then pair_count × (vertex u32, hop u8) sorted by vertex id.
struct CacheSpillInfo {
  uint64_t epoch = 0;           ///< checkpoint epoch recorded at save
  uint64_t graph_checksum = 0;  ///< GraphContentChecksum of the graph
  uint64_t num_vertices = 0;
  uint64_t entry_count = 0;     ///< entries in the file
  uint64_t file_bytes = 0;
};

/// Spills every entry of `cache` valid at `epoch` to `path`, recording
/// `graph`'s content checksum for restore-time revalidation. `graph` must
/// be the graph the engine serves at `epoch` — for an engine running
/// remapped, that is the run graph the cache's keys live in
/// (PathEngine::SaveDistanceCache passes the right one). Entries are
/// written in LRU order (hottest first) so a truncating reader or a
/// smaller restore target keeps the most valuable prefix.
Status SaveEndpointCacheSpill(const EndpointDistanceCache& cache,
                              uint64_t epoch, const Graph& graph,
                              const std::string& path,
                              CacheSpillInfo* info = nullptr);

/// Restores a spill into `cache`, stamping every entry with `epoch` (the
/// restoring store's current epoch). Refuses with FailedPrecondition when
/// the spill's graph checksum or vertex count does not match `graph` —
/// the spill was taken against different content and its maps would be
/// silently wrong. Corrupt files are InvalidArgument/IOError. Returns the
/// number of entries resident in the cache after the restore (budgets may
/// evict cold imports).
StatusOr<size_t> RestoreEndpointCacheSpill(EndpointDistanceCache* cache,
                                           uint64_t epoch, const Graph& graph,
                                           const std::string& path,
                                           CacheSpillInfo* info = nullptr);

/// Header-only peek: epoch, checksum, and entry count of a spill file.
StatusOr<CacheSpillInfo> ReadCacheSpillInfo(const std::string& path);

}  // namespace hcpath

#endif  // HCPATH_INDEX_CACHE_PERSIST_H_
