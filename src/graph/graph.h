#ifndef HCPATH_GRAPH_GRAPH_H_
#define HCPATH_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/logging.h"

namespace hcpath {

class DeltaOverlay;

/// Vertex identifier. Graphs are limited to 2^32 - 2 vertices, which covers
/// every dataset in the paper while halving index memory vs 64-bit ids.
using VertexId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = UINT32_MAX;

/// Direction of traversal: forward uses out-edges of G, backward uses
/// out-edges of the reverse graph Gr (= in-edges of G).
enum class Direction { kForward, kBackward };

inline Direction Reverse(Direction d) {
  return d == Direction::kForward ? Direction::kBackward
                                  : Direction::kForward;
}

/// Immutable unweighted directed graph in CSR form, storing both the
/// out-adjacency (G) and in-adjacency (Gr). Neighbor lists are sorted by
/// vertex id, enabling O(log d) HasEdge and deterministic iteration.
///
/// Construct via GraphBuilder or one of the generators. A graph object is
/// immutable once built, but the *variable* holding it may be reassigned;
/// consumers that cache state derived from a graph (GraphRemap in
/// BatchPathEnumerator, the endpoint-distance cache) key on version() to
/// detect that the object they were built against has been replaced.
///
/// Storage modes (all indistinguishable through the accessors — every
/// reader goes through the same raw-pointer views):
///  * owned — the CSR arrays live in this object's vectors (GraphBuilder,
///    generators, MergeRebuild);
///  * external — the arrays are read-only views into storage pinned by a
///    shared_ptr, e.g. an mmapped snapshot file (graph_snapshot_io,
///    docs/PERSIST.md): zero-copy, pages fault in on demand, and copies of
///    the Graph share the mapping;
///  * overlay — reads consult a DeltaOverlay's patch tables and fall back
///    to its flat base CSR (docs/DYNAMIC.md).
class Graph {
 public:
  Graph() : version_(NextVersion()) {}

  /// Takes ownership of prebuilt CSR arrays. `out_offsets`/`in_offsets`
  /// have n+1 entries; adjacency arrays are sorted per vertex.
  Graph(std::vector<uint64_t> out_offsets, std::vector<VertexId> out_adj,
        std::vector<uint64_t> in_offsets, std::vector<VertexId> in_adj);

  /// External-storage mode: wraps CSR arrays that live outside this object
  /// — typically sections of an mmapped snapshot — without copying them.
  /// `storage` pins whatever owns the bytes (the mapped region) for the
  /// life of this graph and every copy of it; the spans must stay valid
  /// exactly as long as `storage` is alive. The caller has already
  /// validated the arrays (graph_snapshot_io does); the checks here are
  /// the same structural invariants the owned constructor asserts.
  Graph(std::shared_ptr<const void> storage,
        std::span<const uint64_t> out_offsets,
        std::span<const VertexId> out_adj,
        std::span<const uint64_t> in_offsets,
        std::span<const VertexId> in_adj);

  /// Wraps a delta overlay (docs/DYNAMIC.md) as a graph snapshot: reads
  /// consult the overlay's patch tables and fall back to its flat base
  /// CSR. The flat-CSR members stay empty; every accessor branches on
  /// `overlay_` — one well-predicted null check on the flat path, so
  /// graphs without an overlay read exactly as before.
  explicit Graph(std::shared_ptr<const DeltaOverlay> overlay);

  // Copies and moves rebind the raw-pointer views: an owned copy points
  // into its own vectors, an external copy shares the pinned storage, and
  // a moved-from graph is left empty-but-valid. version_ is carried along
  // (copies have identical CSR content, so sharing the version is
  // correct).
  Graph(const Graph& other) { CopyFrom(other); }
  Graph& operator=(const Graph& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Graph(Graph&& other) noexcept { MoveFrom(std::move(other)); }
  Graph& operator=(Graph&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  /// Number of vertices.
  VertexId NumVertices() const {
    if (overlay_ != nullptr) [[unlikely]] return OverlayNumVertices();
    return n_;
  }
  /// Number of directed edges.
  uint64_t NumEdges() const {
    if (overlay_ != nullptr) [[unlikely]] return OverlayNumEdges();
    return m_;
  }

  /// Out-neighbors of v in G (sorted).
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    HCPATH_DCHECK(v < NumVertices());
    if (overlay_ != nullptr) [[unlikely]] {
      return OverlayNeighbors(v, Direction::kForward);
    }
    return {out_adj_p_ + out_offsets_p_[v], out_adj_p_ + out_offsets_p_[v + 1]};
  }

  /// In-neighbors of v in G (sorted) == out-neighbors of v in Gr.
  std::span<const VertexId> InNeighbors(VertexId v) const {
    HCPATH_DCHECK(v < NumVertices());
    if (overlay_ != nullptr) [[unlikely]] {
      return OverlayNeighbors(v, Direction::kBackward);
    }
    return {in_adj_p_ + in_offsets_p_[v], in_adj_p_ + in_offsets_p_[v + 1]};
  }

  /// Neighbors in the requested traversal direction.
  std::span<const VertexId> Neighbors(VertexId v, Direction d) const {
    return d == Direction::kForward ? OutNeighbors(v) : InNeighbors(v);
  }

  uint64_t OutDegree(VertexId v) const {
    if (overlay_ != nullptr) [[unlikely]] {
      return OverlayNeighbors(v, Direction::kForward).size();
    }
    return out_offsets_p_[v + 1] - out_offsets_p_[v];
  }
  uint64_t InDegree(VertexId v) const {
    if (overlay_ != nullptr) [[unlikely]] {
      return OverlayNeighbors(v, Direction::kBackward).size();
    }
    return in_offsets_p_[v + 1] - in_offsets_p_[v];
  }
  uint64_t Degree(VertexId v, Direction d) const {
    return d == Direction::kForward ? OutDegree(v) : InDegree(v);
  }

  /// True iff the directed edge (u, v) exists; O(log outdeg(u)).
  /// Only valid on graphs whose adjacency is sorted by vertex id — i.e.
  /// not on a renumbered graph from GraphRemap, whose lists are ordered
  /// by *original* neighbor id instead.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Pre-renumbering id of v on a remapped graph (GraphRemap); identity
  /// on graphs that were never renumbered. Order-sensitive consumers
  /// (detection level grouping, similarity sketch hashing) key on this so
  /// renumbering never changes an observable decision.
  VertexId OriginalId(VertexId v) const {
    return original_ids_.empty() ? v : original_ids_[v];
  }

  /// Attaches the original-id annotation of a renumbered graph;
  /// `ids[new_id] == original_id`, one entry per vertex. GraphRemap is the
  /// only intended caller.
  void SetOriginalIds(std::vector<VertexId> ids) {
    HCPATH_CHECK_EQ(ids.size(), static_cast<size_t>(NumVertices()));
    original_ids_ = std::move(ids);
  }

  /// Stage-1 companion to PrefetchNeighbors: pulls v's offset line (flat)
  /// or patch-table slot (overlay) into cache so the stage-2 hint's
  /// dependent load doesn't stall; correctness never depends on it.
  void PrefetchOffsets(VertexId v, Direction d) const {
    if (overlay_ != nullptr) [[unlikely]] {
      OverlayPrefetchSlot(v, d);
      return;
    }
    if (d == Direction::kForward) {
      __builtin_prefetch(&out_offsets_p_[v]);
    } else {
      __builtin_prefetch(&in_offsets_p_[v]);
    }
  }

  /// Hints the adjacency block of v into cache ahead of the DFS expanding
  /// it (core/search.cc); correctness never depends on it.
  void PrefetchNeighbors(VertexId v, Direction d) const {
    if (overlay_ != nullptr) [[unlikely]] {
      __builtin_prefetch(OverlayNeighbors(v, d).data());
      return;
    }
    if (d == Direction::kForward) {
      __builtin_prefetch(out_adj_p_ + out_offsets_p_[v]);
    } else {
      __builtin_prefetch(in_adj_p_ + in_offsets_p_[v]);
    }
  }

  /// All edges as (src, dst) pairs, ordered by src then dst.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;

  /// Approximate resident memory of the CSR arrays. For an overlay
  /// snapshot this is the patch tables only — the shared flat base is
  /// accounted by the snapshot that owns it. External (mmapped) graphs
  /// report the mapped array bytes; actual residency is whatever the
  /// page cache has faulted in.
  uint64_t MemoryBytes() const {
    if (overlay_ != nullptr) [[unlikely]] return OverlayMemoryBytes();
    if (out_offsets_p_ == nullptr) return 0;
    return 2 * (static_cast<uint64_t>(n_) + 1) * sizeof(uint64_t) +
           2 * m_ * sizeof(VertexId);
  }

  /// Flat-CSR array views: offsets have NumVertices()+1 entries, adjacency
  /// NumEdges(). Empty on a default-constructed graph; must not be called
  /// on an overlay snapshot (whose arrays are virtual — fold it first).
  /// These exist for the serialization layer (graph_snapshot_io) and
  /// structural-equality tests; engines read through the accessors above.
  std::span<const uint64_t> OutOffsetsView() const {
    HCPATH_DCHECK(overlay_ == nullptr);
    if (out_offsets_p_ == nullptr) return {};
    return {out_offsets_p_, static_cast<size_t>(n_) + 1};
  }
  std::span<const VertexId> OutAdjView() const {
    HCPATH_DCHECK(overlay_ == nullptr);
    return {out_adj_p_, m_};
  }
  std::span<const uint64_t> InOffsetsView() const {
    HCPATH_DCHECK(overlay_ == nullptr);
    if (in_offsets_p_ == nullptr) return {};
    return {in_offsets_p_, static_cast<size_t>(n_) + 1};
  }
  std::span<const VertexId> InAdjView() const {
    HCPATH_DCHECK(overlay_ == nullptr);
    return {in_adj_p_, m_};
  }

  /// True when the CSR arrays live in external pinned storage (an mmapped
  /// snapshot) rather than this object's vectors. Readers never need
  /// this; tests assert the zero-copy path actually engaged.
  bool uses_external_storage() const { return storage_ != nullptr; }

  /// Non-null iff this graph is a delta-overlay snapshot (GraphStore's
  /// O(touched) update path). Readers never need this — every accessor
  /// reads through the overlay transparently — but GraphStore keys its
  /// extend-vs-compact decision on it.
  const DeltaOverlay* overlay() const { return overlay_.get(); }

  /// Process-unique identity of this graph's content, assigned at
  /// construction from a global counter and carried along by copy/move
  /// (copies have identical CSR content, so sharing the version is
  /// correct). Reassigning a Graph variable from a freshly built graph
  /// changes its version, which is how derived-state caches detect that
  /// the object they were built against has been replaced.
  uint64_t version() const { return version_; }

 private:
  static uint64_t NextVersion();

  /// Re-derives the raw-pointer views after construction, copy, or move:
  /// owned mode points them into this object's vectors; external and
  /// overlay modes keep (or don't need) the pointers already set.
  void Rebind();
  void CopyFrom(const Graph& other);
  void MoveFrom(Graph&& other) noexcept;

  // Overlay-mode slow paths, out of line so graph.h needs only a forward
  // declaration of DeltaOverlay and the flat path stays fully inline.
  std::span<const VertexId> OverlayNeighbors(VertexId v, Direction d) const;
  void OverlayPrefetchSlot(VertexId v, Direction d) const;
  VertexId OverlayNumVertices() const;
  uint64_t OverlayNumEdges() const;
  uint64_t OverlayMemoryBytes() const;

  // Owned-mode backing arrays; empty in external and overlay modes.
  std::vector<uint64_t> out_offsets_;
  std::vector<VertexId> out_adj_;
  std::vector<uint64_t> in_offsets_;
  std::vector<VertexId> in_adj_;
  std::vector<VertexId> original_ids_;  ///< empty on non-renumbered graphs
  std::shared_ptr<const DeltaOverlay> overlay_;  ///< null on flat graphs
  /// Pins external array storage (the mmapped snapshot region); null in
  /// owned and overlay modes.
  std::shared_ptr<const void> storage_;
  // Unified read views every flat accessor goes through — identical cost
  // for owned and external storage. Null/0 on overlay and empty graphs.
  const uint64_t* out_offsets_p_ = nullptr;
  const VertexId* out_adj_p_ = nullptr;
  const uint64_t* in_offsets_p_ = nullptr;
  const VertexId* in_adj_p_ = nullptr;
  VertexId n_ = 0;
  uint64_t m_ = 0;
  uint64_t version_ = 0;
};

}  // namespace hcpath

#endif  // HCPATH_GRAPH_GRAPH_H_
