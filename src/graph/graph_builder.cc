#include "graph/graph_builder.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>

namespace hcpath {

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  HCPATH_CHECK(u != kInvalidVertex && v != kInvalidVertex);
  num_vertices_ = std::max(num_vertices_, static_cast<VertexId>(
                                              std::max(u, v) + 1));
  edges_.emplace_back(u, v);
}

StatusOr<Graph> GraphBuilder::Build() {
  if (num_vertices_ == 0) {
    // An empty graph with a single isolated vertex keeps offset arrays
    // well-formed for downstream code.
    num_vertices_ = 1;
  }
  // Drop self-loops.
  self_loops_dropped_ = 0;
  auto keep_end = std::remove_if(
      edges_.begin(), edges_.end(),
      [this](const std::pair<VertexId, VertexId>& e) {
        if (e.first == e.second) {
          ++self_loops_dropped_;
          return true;
        }
        return false;
      });
  edges_.erase(keep_end, edges_.end());

  std::sort(edges_.begin(), edges_.end());
  auto uniq_end = std::unique(edges_.begin(), edges_.end());
  duplicates_dropped_ = static_cast<uint64_t>(edges_.end() - uniq_end);
  edges_.erase(uniq_end, edges_.end());

  const VertexId n = num_vertices_;
  const uint64_t m = edges_.size();

  std::vector<uint64_t> out_offsets(n + 1, 0);
  std::vector<VertexId> out_adj(m);
  std::vector<uint64_t> in_offsets(n + 1, 0);
  std::vector<VertexId> in_adj(m);

  for (const auto& [u, v] : edges_) {
    ++out_offsets[u + 1];
    ++in_offsets[v + 1];
  }
  for (VertexId i = 0; i < n; ++i) {
    out_offsets[i + 1] += out_offsets[i];
    in_offsets[i + 1] += in_offsets[i];
  }
  // Edges are sorted by (u, v), so filling out_adj in order keeps each
  // out-neighbor list sorted.
  {
    std::vector<uint64_t> cursor(out_offsets.begin(), out_offsets.end() - 1);
    for (const auto& [u, v] : edges_) out_adj[cursor[u]++] = v;
  }
  // For in_adj, a counting pass over (u, v) sorted by u produces, per
  // destination v, sources in ascending order as well.
  {
    std::vector<uint64_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
    for (const auto& [u, v] : edges_) in_adj[cursor[v]++] = u;
  }

  edges_.clear();
  edges_.shrink_to_fit();
  return Graph(std::move(out_offsets), std::move(out_adj),
               std::move(in_offsets), std::move(in_adj));
}

namespace {

/// Merges one adjacency direction: for every vertex `w` in [0, n), base
/// neighbors minus `removes` plus `adds`, all three sorted in (w, nbr)
/// order, emitted in ascending neighbor order. `get_base` returns the base
/// adjacency of w (only called for w < base_n).
template <typename GetBase>
void MergeAdjacency(VertexId n, VertexId base_n, GetBase get_base,
                    const std::vector<std::pair<VertexId, VertexId>>& adds,
                    const std::vector<std::pair<VertexId, VertexId>>& removes,
                    std::vector<uint64_t>& offsets,
                    std::vector<VertexId>& adj) {
  size_t ai = 0, ri = 0;
  offsets.assign(n + 1, 0);
  for (VertexId w = 0; w < n; ++w) {
    std::span<const VertexId> base_nbrs =
        w < base_n ? get_base(w) : std::span<const VertexId>();
    size_t bi = 0;
    while (true) {
      VertexId from_base =
          bi < base_nbrs.size() ? base_nbrs[bi] : kInvalidVertex;
      // Every remove names a present base edge, and both streams are
      // sorted, so the remove cursor advances in lockstep with the base
      // scan of w.
      if (from_base != kInvalidVertex && ri < removes.size() &&
          removes[ri].first == w && removes[ri].second == from_base) {
        ++bi;
        ++ri;
        continue;
      }
      const VertexId from_add =
          (ai < adds.size() && adds[ai].first == w) ? adds[ai].second
                                                    : kInvalidVertex;
      if (from_base == kInvalidVertex && from_add == kInvalidVertex) break;
      // Added edges are absent from base, so the two heads never tie;
      // kInvalidVertex sorts last, making this a plain two-way merge.
      if (from_add < from_base) {
        adj.push_back(from_add);
        ++ai;
      } else {
        adj.push_back(from_base);
        ++bi;
      }
    }
    offsets[w + 1] = adj.size();
  }
}

}  // namespace

Status GraphBuilder::ClassifyUpdates(const Graph& base,
                                     std::span<const EdgeUpdate> updates,
                                     UpdateApplyStats* stats) {
  UpdateApplyStats& s = *stats;
  s = UpdateApplyStats();

  // Pass 1: validate, count self-loops (into locals so `stats` stays
  // empty on a validation failure), and key every remaining update as
  // ((u << 32) | v, batch index). Sorting the keys collapses the batch:
  // the deciding update for each edge is the last element of its
  // equal-key run, and because the key order IS (u, v) order the
  // survivors come out already sorted — exactly the order the effective
  // lists must be emitted in, so no per-list sort is needed.
  uint64_t self_loop_adds = 0, self_loop_removes = 0;
  std::vector<std::pair<uint64_t, uint32_t>> keyed;
  keyed.reserve(updates.size());
  for (size_t i = 0; i < updates.size(); ++i) {
    const EdgeUpdate& up = updates[i];
    if (up.u == kInvalidVertex || up.v == kInvalidVertex) {
      return Status::InvalidArgument("edge update " + std::to_string(i) +
                                     " has an invalid endpoint");
    }
    if (up.u == up.v) {
      // Simple paths never use self-loops, and Build drops them, so none
      // can be present.
      if (up.op == EdgeUpdate::Op::kAddEdge) {
        ++self_loop_adds;
      } else {
        ++self_loop_removes;
      }
      continue;
    }
    keyed.emplace_back((static_cast<uint64_t>(up.u) << 32) | up.v,
                       static_cast<uint32_t>(i));
  }
  s.self_loops_dropped = self_loop_adds;
  s.remove_noops = self_loop_removes;
  std::sort(keyed.begin(), keyed.end());

  // Pass 2: classify each deciding update against the base graph,
  // pipelined in blocks so the membership probes' random reads are in
  // flight instead of stalling one miss at a time: offset lines (or
  // overlay hash slots) are requested one block ahead, then the block's
  // neighbor spans are resolved once — cached for the classify sweep —
  // while their adjacency lines stream in behind the resolve sweep.
  constexpr size_t kBlock = 16;
  std::span<const VertexId> nbrs[kBlock];
  const VertexId base_n = base.NumVertices();
  VertexId last_tail = kInvalidVertex;
  for (size_t blk = 0; blk < keyed.size(); blk += kBlock) {
    const size_t blk_end = std::min(blk + kBlock, keyed.size());
    const size_t next_end = std::min(blk_end + kBlock, keyed.size());
    for (size_t j = blk_end; j < next_end; ++j) {
      const VertexId u = static_cast<VertexId>(keyed[j].first >> 32);
      if (u < base_n) base.PrefetchOffsets(u, Direction::kForward);
    }
    for (size_t j = blk; j < blk_end; ++j) {
      const VertexId u = static_cast<VertexId>(keyed[j].first >> 32);
      nbrs[j - blk] =
          u < base_n ? base.OutNeighbors(u) : std::span<const VertexId>();
      __builtin_prefetch(nbrs[j - blk].data());
    }
    for (size_t j = blk; j < blk_end; ++j) {
      if (j + 1 < keyed.size() && keyed[j + 1].first == keyed[j].first) {
        continue;  // superseded by a later update of the same edge
      }
      const EdgeUpdate& up = updates[keyed[j].second];
      // Heads at or above base_n cannot appear in base adjacency, and an
      // out-of-range tail resolved to the empty span — the search alone
      // decides membership.
      const std::span<const VertexId>& un = nbrs[j - blk];
      const bool present = std::binary_search(un.begin(), un.end(), up.v);
      bool effective = false;
      if (up.op == EdgeUpdate::Op::kAddEdge) {
        if (present) {
          ++s.add_noops;
        } else {
          s.added.emplace_back(up.u, up.v);
          effective = true;
        }
      } else {
        if (present) {
          s.removed.emplace_back(up.u, up.v);
          effective = true;
        } else {
          ++s.remove_noops;
        }
      }
      // Keys are processed in (u, v) order, so effective tails arrive
      // non-decreasing: one span per distinct tail, in tail order —
      // exactly the forward-side tail sequence Extend derives.
      if (effective && up.u != last_tail) {
        s.tail_views.push_back(un);
        last_tail = up.u;
      }
    }
  }
  return Status::OK();
}

Graph GraphBuilder::MergeRebuild(const Graph& base,
                                 const UpdateApplyStats& delta) {
  const VertexId base_n = base.NumVertices();
  const std::vector<std::pair<VertexId, VertexId>>& adds = delta.added;
  const std::vector<std::pair<VertexId, VertexId>>& removes = delta.removed;

  // Only effective adds can introduce vertices; an isolated base graph
  // keeps its (possibly inferred) vertex count.
  VertexId n = std::max<VertexId>(base_n, 1);
  for (const auto& [u, v] : adds) n = std::max(n, std::max(u, v) + 1);

  const uint64_t m = base.NumEdges() + adds.size() - removes.size();
  std::vector<uint64_t> out_offsets, in_offsets;
  std::vector<VertexId> out_adj, in_adj;
  out_adj.reserve(m);
  in_adj.reserve(m);
  MergeAdjacency(
      n, base_n, [&](VertexId w) { return base.OutNeighbors(w); }, adds,
      removes, out_offsets, out_adj);

  // The in-direction consumes the same deltas keyed by head: (v, u) pairs
  // sorted by (v, u), matching in-adjacency's source-ascending order.
  auto by_head = [](std::vector<std::pair<VertexId, VertexId>> kv) {
    for (auto& [u, v] : kv) std::swap(u, v);
    std::sort(kv.begin(), kv.end());
    return kv;
  };
  MergeAdjacency(
      n, base_n, [&](VertexId w) { return base.InNeighbors(w); },
      by_head(adds), by_head(removes), in_offsets, in_adj);

  HCPATH_CHECK_EQ(out_adj.size(), m);
  HCPATH_CHECK_EQ(in_adj.size(), m);
  return Graph(std::move(out_offsets), std::move(out_adj),
               std::move(in_offsets), std::move(in_adj));
}

StatusOr<Graph> GraphBuilder::ApplyUpdates(const Graph& base,
                                           std::span<const EdgeUpdate> updates,
                                           UpdateApplyStats* stats) {
  UpdateApplyStats local;
  UpdateApplyStats& s = stats != nullptr ? *stats : local;
  HCPATH_RETURN_NOT_OK(ClassifyUpdates(base, updates, &s));
  return MergeRebuild(base, s);
}

}  // namespace hcpath
