#include "graph/graph_builder.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>

namespace hcpath {

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  HCPATH_CHECK(u != kInvalidVertex && v != kInvalidVertex);
  num_vertices_ = std::max(num_vertices_, static_cast<VertexId>(
                                              std::max(u, v) + 1));
  edges_.emplace_back(u, v);
}

StatusOr<Graph> GraphBuilder::Build() {
  if (num_vertices_ == 0) {
    // An empty graph with a single isolated vertex keeps offset arrays
    // well-formed for downstream code.
    num_vertices_ = 1;
  }
  // Drop self-loops.
  self_loops_dropped_ = 0;
  auto keep_end = std::remove_if(
      edges_.begin(), edges_.end(),
      [this](const std::pair<VertexId, VertexId>& e) {
        if (e.first == e.second) {
          ++self_loops_dropped_;
          return true;
        }
        return false;
      });
  edges_.erase(keep_end, edges_.end());

  std::sort(edges_.begin(), edges_.end());
  auto uniq_end = std::unique(edges_.begin(), edges_.end());
  duplicates_dropped_ = static_cast<uint64_t>(edges_.end() - uniq_end);
  edges_.erase(uniq_end, edges_.end());

  const VertexId n = num_vertices_;
  const uint64_t m = edges_.size();

  std::vector<uint64_t> out_offsets(n + 1, 0);
  std::vector<VertexId> out_adj(m);
  std::vector<uint64_t> in_offsets(n + 1, 0);
  std::vector<VertexId> in_adj(m);

  for (const auto& [u, v] : edges_) {
    ++out_offsets[u + 1];
    ++in_offsets[v + 1];
  }
  for (VertexId i = 0; i < n; ++i) {
    out_offsets[i + 1] += out_offsets[i];
    in_offsets[i + 1] += in_offsets[i];
  }
  // Edges are sorted by (u, v), so filling out_adj in order keeps each
  // out-neighbor list sorted.
  {
    std::vector<uint64_t> cursor(out_offsets.begin(), out_offsets.end() - 1);
    for (const auto& [u, v] : edges_) out_adj[cursor[u]++] = v;
  }
  // For in_adj, a counting pass over (u, v) sorted by u produces, per
  // destination v, sources in ascending order as well.
  {
    std::vector<uint64_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
    for (const auto& [u, v] : edges_) in_adj[cursor[v]++] = u;
  }

  edges_.clear();
  edges_.shrink_to_fit();
  return Graph(std::move(out_offsets), std::move(out_adj),
               std::move(in_offsets), std::move(in_adj));
}

namespace {

/// Merges one adjacency direction: for every vertex `w` in [0, n), base
/// neighbors minus `removes` plus `adds`, all three sorted in (w, nbr)
/// order, emitted in ascending neighbor order. `get_base` returns the base
/// adjacency of w (only called for w < base_n).
template <typename GetBase>
void MergeAdjacency(VertexId n, VertexId base_n, GetBase get_base,
                    const std::vector<std::pair<VertexId, VertexId>>& adds,
                    const std::vector<std::pair<VertexId, VertexId>>& removes,
                    std::vector<uint64_t>& offsets,
                    std::vector<VertexId>& adj) {
  size_t ai = 0, ri = 0;
  offsets.assign(n + 1, 0);
  for (VertexId w = 0; w < n; ++w) {
    std::span<const VertexId> base_nbrs =
        w < base_n ? get_base(w) : std::span<const VertexId>();
    size_t bi = 0;
    while (true) {
      VertexId from_base =
          bi < base_nbrs.size() ? base_nbrs[bi] : kInvalidVertex;
      // Every remove names a present base edge, and both streams are
      // sorted, so the remove cursor advances in lockstep with the base
      // scan of w.
      if (from_base != kInvalidVertex && ri < removes.size() &&
          removes[ri].first == w && removes[ri].second == from_base) {
        ++bi;
        ++ri;
        continue;
      }
      const VertexId from_add =
          (ai < adds.size() && adds[ai].first == w) ? adds[ai].second
                                                    : kInvalidVertex;
      if (from_base == kInvalidVertex && from_add == kInvalidVertex) break;
      // Added edges are absent from base, so the two heads never tie;
      // kInvalidVertex sorts last, making this a plain two-way merge.
      if (from_add < from_base) {
        adj.push_back(from_add);
        ++ai;
      } else {
        adj.push_back(from_base);
        ++bi;
      }
    }
    offsets[w + 1] = adj.size();
  }
}

}  // namespace

StatusOr<Graph> GraphBuilder::ApplyUpdates(const Graph& base,
                                           std::span<const EdgeUpdate> updates,
                                           UpdateApplyStats* stats) {
  UpdateApplyStats local;
  UpdateApplyStats& s = stats != nullptr ? *stats : local;
  s = UpdateApplyStats();

  // Pass 1: validate and record, per edge, the index of its LAST update in
  // the batch — the one that decides the outcome.
  std::unordered_map<uint64_t, size_t> last;
  last.reserve(updates.size() * 2);
  for (size_t i = 0; i < updates.size(); ++i) {
    const EdgeUpdate& up = updates[i];
    if (up.u == kInvalidVertex || up.v == kInvalidVertex) {
      return Status::InvalidArgument("edge update " + std::to_string(i) +
                                     " has an invalid endpoint");
    }
    if (up.u == up.v) continue;  // never lands in the CSR; classified below
    last[(static_cast<uint64_t>(up.u) << 32) | up.v] = i;
  }

  // Pass 2: classify each deciding update against the base graph.
  const VertexId base_n = base.NumVertices();
  std::vector<std::pair<VertexId, VertexId>> adds, removes;
  for (size_t i = 0; i < updates.size(); ++i) {
    const EdgeUpdate& up = updates[i];
    if (up.u == up.v) {
      // Simple paths never use self-loops, and Build drops them, so none
      // can be present.
      if (up.op == EdgeUpdate::Op::kAddEdge) {
        ++s.self_loops_dropped;
      } else {
        ++s.remove_noops;
      }
      continue;
    }
    if (last[(static_cast<uint64_t>(up.u) << 32) | up.v] != i) {
      continue;  // superseded by a later update of the same edge
    }
    const bool present =
        up.u < base_n && up.v < base_n && base.HasEdge(up.u, up.v);
    if (up.op == EdgeUpdate::Op::kAddEdge) {
      if (present) {
        ++s.add_noops;
      } else {
        adds.emplace_back(up.u, up.v);
      }
    } else {
      if (present) {
        removes.emplace_back(up.u, up.v);
      } else {
        ++s.remove_noops;
      }
    }
  }
  std::sort(adds.begin(), adds.end());
  std::sort(removes.begin(), removes.end());

  // Only effective adds can introduce vertices; an isolated base graph
  // keeps its (possibly inferred) vertex count.
  VertexId n = std::max<VertexId>(base_n, 1);
  for (const auto& [u, v] : adds) n = std::max(n, std::max(u, v) + 1);

  const uint64_t m = base.NumEdges() + adds.size() - removes.size();
  std::vector<uint64_t> out_offsets, in_offsets;
  std::vector<VertexId> out_adj, in_adj;
  out_adj.reserve(m);
  in_adj.reserve(m);
  MergeAdjacency(
      n, base_n, [&](VertexId w) { return base.OutNeighbors(w); }, adds,
      removes, out_offsets, out_adj);

  // The in-direction consumes the same deltas keyed by head: (v, u) pairs
  // sorted by (v, u), matching in-adjacency's source-ascending order.
  auto by_head = [](std::vector<std::pair<VertexId, VertexId>> kv) {
    for (auto& [u, v] : kv) std::swap(u, v);
    std::sort(kv.begin(), kv.end());
    return kv;
  };
  MergeAdjacency(
      n, base_n, [&](VertexId w) { return base.InNeighbors(w); },
      by_head(adds), by_head(removes), in_offsets, in_adj);

  HCPATH_CHECK_EQ(out_adj.size(), m);
  HCPATH_CHECK_EQ(in_adj.size(), m);
  s.added = std::move(adds);
  s.removed = std::move(removes);
  return Graph(std::move(out_offsets), std::move(out_adj),
               std::move(in_offsets), std::move(in_adj));
}

}  // namespace hcpath
