#include "graph/graph_builder.h"

#include <algorithm>

namespace hcpath {

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  HCPATH_CHECK(u != kInvalidVertex && v != kInvalidVertex);
  num_vertices_ = std::max(num_vertices_, static_cast<VertexId>(
                                              std::max(u, v) + 1));
  edges_.emplace_back(u, v);
}

StatusOr<Graph> GraphBuilder::Build() {
  if (num_vertices_ == 0) {
    // An empty graph with a single isolated vertex keeps offset arrays
    // well-formed for downstream code.
    num_vertices_ = 1;
  }
  // Drop self-loops.
  self_loops_dropped_ = 0;
  auto keep_end = std::remove_if(
      edges_.begin(), edges_.end(),
      [this](const std::pair<VertexId, VertexId>& e) {
        if (e.first == e.second) {
          ++self_loops_dropped_;
          return true;
        }
        return false;
      });
  edges_.erase(keep_end, edges_.end());

  std::sort(edges_.begin(), edges_.end());
  auto uniq_end = std::unique(edges_.begin(), edges_.end());
  duplicates_dropped_ = static_cast<uint64_t>(edges_.end() - uniq_end);
  edges_.erase(uniq_end, edges_.end());

  const VertexId n = num_vertices_;
  const uint64_t m = edges_.size();

  std::vector<uint64_t> out_offsets(n + 1, 0);
  std::vector<VertexId> out_adj(m);
  std::vector<uint64_t> in_offsets(n + 1, 0);
  std::vector<VertexId> in_adj(m);

  for (const auto& [u, v] : edges_) {
    ++out_offsets[u + 1];
    ++in_offsets[v + 1];
  }
  for (VertexId i = 0; i < n; ++i) {
    out_offsets[i + 1] += out_offsets[i];
    in_offsets[i + 1] += in_offsets[i];
  }
  // Edges are sorted by (u, v), so filling out_adj in order keeps each
  // out-neighbor list sorted.
  {
    std::vector<uint64_t> cursor(out_offsets.begin(), out_offsets.end() - 1);
    for (const auto& [u, v] : edges_) out_adj[cursor[u]++] = v;
  }
  // For in_adj, a counting pass over (u, v) sorted by u produces, per
  // destination v, sources in ascending order as well.
  {
    std::vector<uint64_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
    for (const auto& [u, v] : edges_) in_adj[cursor[v]++] = u;
  }

  edges_.clear();
  edges_.shrink_to_fit();
  return Graph(std::move(out_offsets), std::move(out_adj),
               std::move(in_offsets), std::move(in_adj));
}

}  // namespace hcpath
