#ifndef HCPATH_GRAPH_EDGE_LIST_IO_H_
#define HCPATH_GRAPH_EDGE_LIST_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace hcpath {

/// Loads a SNAP-style text edge list: one "src dst" pair per line
/// (whitespace- or tab-separated); lines starting with '#' or '%' are
/// comments. Self-loops and duplicates are cleaned by GraphBuilder.
StatusOr<Graph> LoadEdgeListText(const std::string& path);

/// Writes the graph as a text edge list compatible with LoadEdgeListText.
Status SaveEdgeListText(const Graph& g, const std::string& path);

/// Binary format: magic, vertex count, edge count, then (u,v) uint32 pairs.
/// Roughly 6x faster to load than text for large graphs.
StatusOr<Graph> LoadEdgeListBinary(const std::string& path);
Status SaveEdgeListBinary(const Graph& g, const std::string& path);

}  // namespace hcpath

#endif  // HCPATH_GRAPH_EDGE_LIST_IO_H_
