#include "graph/sampler.h"

#include "graph/graph_builder.h"

namespace hcpath {

StatusOr<SampledGraph> SampleVerticesInduced(const Graph& g, double fraction,
                                             Rng& rng) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in (0, 1]");
  }
  const VertexId n = g.NumVertices();
  SampledGraph out;
  out.old_to_new.assign(n, kInvalidVertex);
  VertexId kept = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (rng.NextBernoulli(fraction)) {
      out.old_to_new[v] = kept++;
      out.new_to_old.push_back(v);
    }
  }
  if (kept < 2) {
    return Status::FailedPrecondition("sample kept fewer than 2 vertices");
  }
  GraphBuilder builder(kept);
  for (VertexId u = 0; u < n; ++u) {
    if (out.old_to_new[u] == kInvalidVertex) continue;
    for (VertexId v : g.OutNeighbors(u)) {
      if (out.old_to_new[v] == kInvalidVertex) continue;
      builder.AddEdge(out.old_to_new[u], out.old_to_new[v]);
    }
  }
  auto built = builder.Build();
  if (!built.ok()) return built.status();
  out.graph = std::move(*built);
  return out;
}

StatusOr<Graph> SampleEdges(const Graph& g, double fraction, Rng& rng) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in (0, 1]");
  }
  GraphBuilder builder(g.NumVertices());
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (rng.NextBernoulli(fraction)) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

}  // namespace hcpath
