#ifndef HCPATH_GRAPH_SAMPLER_H_
#define HCPATH_GRAPH_SAMPLER_H_

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace hcpath {

/// Result of a vertex-induced sample: the subgraph plus the mapping from
/// new vertex ids back to ids in the original graph.
struct SampledGraph {
  Graph graph;
  std::vector<VertexId> old_to_new;  // kInvalidVertex if dropped
  std::vector<VertexId> new_to_old;
};

/// Keeps a uniform random `fraction` of vertices (clamped to (0, 1]) and all
/// edges between kept vertices, with compacted ids. This is the sampling
/// scheme of Exp-5 (Fig 11): "randomly sample their vertices ... from 20% to
/// 100%".
StatusOr<SampledGraph> SampleVerticesInduced(const Graph& g, double fraction,
                                             Rng& rng);

/// Keeps a uniform random `fraction` of edges; vertex set unchanged.
StatusOr<Graph> SampleEdges(const Graph& g, double fraction, Rng& rng);

}  // namespace hcpath

#endif  // HCPATH_GRAPH_SAMPLER_H_
