#ifndef HCPATH_GRAPH_GRAPH_STORE_H_
#define HCPATH_GRAPH_GRAPH_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/graph_snapshot_io.h"
#include "util/status.h"

namespace hcpath {

/// One immutable, epoch-stamped version of a dynamic graph. Readers pin a
/// snapshot by holding the shared_ptr handed out by GraphStore::Current()
/// and keep enumerating their pinned view while later updates land; the
/// snapshot (and the CSR inside it) stays alive until every pin is
/// released and the store's deferred GC collects it (docs/DYNAMIC.md).
struct GraphSnapshot {
  Graph graph;
  /// 0 for the seed graph; +1 per applied update batch.
  uint64_t epoch = 0;
};

/// Observable lifecycle counters of a GraphStore.
struct GraphStoreStats {
  uint64_t snapshots_created = 0;    ///< including the seed
  uint64_t snapshots_retired = 0;    ///< superseded by an update batch
  uint64_t snapshots_collected = 0;  ///< retired and freed (pin count zero)
  uint64_t snapshots_live = 0;       ///< current + retired-but-still-pinned
  uint64_t update_batches = 0;
  uint64_t edges_added = 0;
  uint64_t edges_removed = 0;
  uint64_t overlay_extends = 0;  ///< batches served by the O(touched) path
  uint64_t full_rebuilds = 0;    ///< batches that built a fresh flat CSR
  uint64_t compactions = 0;      ///< rebuilds that folded a live overlay
  uint64_t overlay_depth = 0;    ///< current chain depth (0 = flat current)
  uint64_t overlay_delta_edges = 0;  ///< current chain cumulative delta
};

/// Tunables of the snapshot store.
struct GraphStoreOptions {
  /// Delta-overlay compaction threshold as a fraction of the flat base
  /// CSR's edge count (docs/DYNAMIC.md). A batch extends the overlay when
  /// the chain's cumulative effective delta would stay at or below
  /// `compaction_threshold * max(|E_base|, 1)`; past that — or when the
  /// threshold is <= 0, which disables the overlay outright (the
  /// pre-overlay always-rebuild behavior) — the batch folds base +
  /// overlay + delta into a fresh flat CSR. Large values defer compaction
  /// indefinitely; read cost still stays bounded because lookups never
  /// chain (every overlay patches the flat base directly).
  double compaction_threshold = 0.25;
};

/// Outcome of one ApplyUpdates batch.
struct GraphUpdateResult {
  /// The new current snapshot (already installed when this returns).
  std::shared_ptr<const GraphSnapshot> snapshot;
  /// Effective adds/removes and no-op counts; the edge lists drive
  /// cone-precise endpoint-cache invalidation.
  UpdateApplyStats applied;
  /// True when the batch extended the delta overlay (O(touched)) instead
  /// of rebuilding the flat CSR.
  bool used_overlay = false;
};

/// Holder of the current snapshot of a dynamic graph, modeled on the
/// deferred-GC shape of memgraph's skiplist_gc: writers install a new
/// epoch-stamped snapshot per update batch, readers pin whatever was
/// current at admission, and superseded snapshots sit on a retired list
/// until their pin count drains to zero — CollectGarbage() then frees
/// them. No reader ever blocks a writer or vice versa; the only mutual
/// exclusion is between concurrent writers (update batches serialize).
///
/// Thread-safe: Current/ApplyUpdates/CollectGarbage/GetStats may be called
/// from any thread.
class GraphStore {
 public:
  /// Adopts `seed` as the initial snapshot. `seed_epoch` is 0 for a fresh
  /// store; OpenSnapshot passes the checkpointed epoch so a restarted
  /// store resumes the epoch sequence where the saved one left off —
  /// result stamps and cache validity intervals stay comparable across
  /// the restart (docs/PERSIST.md).
  explicit GraphStore(Graph seed, GraphStoreOptions options = {},
                      uint64_t seed_epoch = 0);

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// The current snapshot; holding the returned pointer pins it.
  std::shared_ptr<const GraphSnapshot> Current() const;

  /// Epoch of the current snapshot.
  uint64_t epoch() const;

  /// Applies one update batch (GraphBuilder::ApplyUpdates semantics),
  /// installs the result as the current snapshot with the next epoch, and
  /// retires the previous one. Concurrent calls serialize; readers keep
  /// using their pinned snapshots throughout. Opportunistically collects
  /// unpinned retired snapshots before returning.
  ///
  /// Small batches extend a DeltaOverlay over the last compaction point's
  /// flat CSR (O(touched)); once the chain's cumulative delta crosses
  /// `options.compaction_threshold` of the base edge count the batch
  /// compacts everything into a fresh flat CSR instead. Either way the
  /// installed snapshot is structurally identical to a from-scratch
  /// rebuild. While an overlay chain is live, its flat base snapshot
  /// stays on the retired list (each overlay holds a reference), so it is
  /// counted in snapshots_live until the whole chain is collected.
  StatusOr<GraphUpdateResult> ApplyUpdates(std::span<const EdgeUpdate> updates);

  /// Frees every retired snapshot whose pin count has drained to zero and
  /// returns how many were freed. Called internally by ApplyUpdates; a
  /// long-lived owner (PathEngine) also calls it as batches finish so a
  /// quiet store does not hold dead snapshots until the next write.
  size_t CollectGarbage();

  /// Checkpoints the current snapshot to a mmap-loadable snapshot file
  /// (graph/graph_snapshot_io.h), folding a live overlay into a flat CSR
  /// first and recording the snapshot's epoch in the header. Readers and
  /// writers are not blocked: the save works off a pinned snapshot while
  /// updates keep landing (a concurrent batch simply isn't in this
  /// checkpoint).
  Status SaveSnapshot(const std::string& path) const;

  /// Reopens a checkpoint written by SaveSnapshot: mmaps the graph
  /// (zero-copy external storage) and seeds a store whose epoch resumes
  /// at the checkpointed value. `load.verify=true` (default) pays one
  /// streaming validation pass; pass false for trusted storage.
  static StatusOr<std::unique_ptr<GraphStore>> OpenSnapshot(
      const std::string& path, GraphStoreOptions options = {},
      GraphSnapshotLoadOptions load = {});

  GraphStoreStats GetStats() const;

 private:
  size_t CollectGarbageLocked();

  /// Serializes writers across the (potentially long) CSR rebuild, held
  /// around mu_ — never acquired while mu_ is held.
  std::mutex update_mu_;
  /// Guards the snapshot pointers and stats; held only for pointer swaps
  /// and scans, so readers see at most a brief critical section.
  mutable std::mutex mu_;
  const GraphStoreOptions options_;
  std::shared_ptr<const GraphSnapshot> current_;
  /// Superseded snapshots still (possibly) pinned by in-flight readers.
  std::vector<std::shared_ptr<const GraphSnapshot>> retired_;
  GraphStoreStats stats_;
};

}  // namespace hcpath

#endif  // HCPATH_GRAPH_GRAPH_STORE_H_
