#ifndef HCPATH_GRAPH_GRAPH_SNAPSHOT_IO_H_
#define HCPATH_GRAPH_GRAPH_SNAPSHOT_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace hcpath {

/// Binary CSR snapshot format (docs/PERSIST.md): a Graph's four CSR
/// arrays serialized verbatim behind a versioned, checksummed header, so
/// loading is a validation pass over an mmap instead of a rebuild —
/// `LoadGraphSnapshot` returns a Graph in external-storage mode whose
/// accessors read the mapped pages directly (zero copy).
///
/// Layout (all fields native-endian; an endian marker in the header
/// rejects cross-endian files):
///
///   offset  size  field
///        0     8  magic            "HCPSNAP1" little-endian u64
///        8     4  format version   (currently 1)
///       12     4  flags            (reserved, must be 0)
///       16     8  endian marker    0x0102030405060708
///       24     8  n  (vertices)
///       32     8  m  (directed edges)
///       40     8  epoch            (GraphStore epoch at save; 0 if none)
///       48     8  payload bytes    (sections + padding, excl. header pad)
///       56     8  reserved         (must be 0)
///       64     8  payload checksum (chained over the 4 sections)
///       72     8  header checksum  (Checksum64 over bytes [0, 72))
///      128   ...  sections, each 64-byte aligned, zero-padded between:
///                   out_offsets  8*(n+1) bytes
///                   out_adj      4*m
///                   in_offsets   8*(n+1)
///                   in_adj       4*m
///
/// The payload checksum chains the four section checksums (padding
/// excluded), which makes it equal to GraphContentChecksum of the loaded
/// graph — the content identity the cache spill/restore layer
/// (index/cache_persist.h) revalidates against.
///
/// Remapped graphs: the original-id annotation (Graph::OriginalId) is NOT
/// serialized — snapshots always hold original-id-space CSR. GraphStore
/// snapshots satisfy this by construction; callers snapshotting a
/// remapped graph get back a graph whose ids are its (remapped) vertex
/// ids with an identity annotation.

/// Field offsets within the header, exported so corruption tests can
/// craft precise mutations without duplicating the layout.
inline constexpr size_t kSnapshotMagicOffset = 0;
inline constexpr size_t kSnapshotVersionOffset = 8;
inline constexpr size_t kSnapshotEndianOffset = 16;
inline constexpr size_t kSnapshotNumVerticesOffset = 24;
inline constexpr size_t kSnapshotNumEdgesOffset = 32;
inline constexpr size_t kSnapshotEpochOffset = 40;
inline constexpr size_t kSnapshotPayloadBytesOffset = 48;
inline constexpr size_t kSnapshotPayloadChecksumOffset = 64;
inline constexpr size_t kSnapshotHeaderChecksumOffset = 72;
/// First section starts here; sections are 64-byte aligned.
inline constexpr size_t kSnapshotHeaderBytes = 128;

/// 64-bit chained checksum (murmur-style word mix + avalanche finish).
/// Chainable: feed one call's result as the next call's seed. Not
/// cryptographic — it detects corruption, not adversaries.
uint64_t Checksum64(const void* data, size_t len, uint64_t seed = 0);

/// Content identity of a graph's CSR arrays: the four section checksums
/// chained in file order. Equal to the payload checksum of any snapshot
/// of this graph, regardless of how the graph is stored (owned, mmapped,
/// or overlay — overlays are folded through the accessors). Two graphs
/// with identical edge sets always agree.
uint64_t GraphContentChecksum(const Graph& g);

struct GraphSnapshotInfo {
  uint64_t epoch = 0;             ///< store epoch recorded at save time
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint64_t payload_checksum = 0;  ///< == GraphContentChecksum of the graph
  uint64_t file_bytes = 0;
};

struct GraphSnapshotLoadOptions {
  /// Verify the payload on load: one streaming pass over the mapped
  /// sections checking the payload checksum, offset monotonicity, and
  /// adjacency-id bounds before any engine sees the graph. Costs one
  /// sequential read of the file (still no parse/rebuild). `false` is
  /// the O(1) trusted open — header checks only, pages fault lazily —
  /// for snapshots this process just wrote or storage with its own
  /// integrity layer.
  bool verify = true;
};

/// Writes `g` as a snapshot at `path` (created or truncated). Overlay
/// graphs are folded to a flat CSR first (GraphBuilder::MergeRebuild), so
/// a snapshot never contains patch tables. `epoch` is recorded verbatim
/// for GraphStore checkpoints; plain graphs pass 0.
Status SaveGraphSnapshot(const Graph& g, const std::string& path,
                         uint64_t epoch = 0,
                         GraphSnapshotInfo* info = nullptr);

/// Opens, validates, and mmaps the snapshot at `path`, returning a Graph
/// in external-storage mode that reads the mapping in place. The mapping
/// is pinned by the returned Graph and every copy of it, and unmapped
/// when the last copy dies; deleting the file while mapped is safe on
/// POSIX (the inode outlives the unlink). All validation failures are
/// clean Statuses — no allocation is sized from header fields before
/// they are checked against the real file size.
StatusOr<Graph> LoadGraphSnapshot(const std::string& path,
                                  const GraphSnapshotLoadOptions& options = {},
                                  GraphSnapshotInfo* info = nullptr);

/// Reads and validates only the header — cheap way to get the epoch and
/// dimensions of a snapshot without mapping its payload.
StatusOr<GraphSnapshotInfo> ReadGraphSnapshotInfo(const std::string& path);

}  // namespace hcpath

#endif  // HCPATH_GRAPH_GRAPH_SNAPSHOT_IO_H_
