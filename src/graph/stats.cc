#include "graph/stats.h"

#include <algorithm>
#include <cstdio>

#include "util/stringx.h"

namespace hcpath {

GraphStats ComputeGraphStats(const Graph& g) {
  GraphStats s;
  s.num_vertices = g.NumVertices();
  s.num_edges = g.NumEdges();
  if (s.num_vertices == 0) return s;
  s.avg_degree =
      static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    uint64_t outd = g.OutDegree(v);
    uint64_t ind = g.InDegree(v);
    s.max_out_degree = std::max(s.max_out_degree, outd);
    s.max_in_degree = std::max(s.max_in_degree, ind);
    s.max_total_degree = std::max(s.max_total_degree, outd + ind);
    if (outd + ind == 0) ++s.num_isolated;
  }
  return s;
}

std::vector<uint64_t> OutDegreeHistogram(const Graph& g, size_t buckets) {
  std::vector<uint64_t> hist(std::max<size_t>(buckets, 1), 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    uint64_t d = g.OutDegree(v);
    if (d >= hist.size()) {
      ++hist.back();
    } else {
      ++hist[d];
    }
  }
  return hist;
}

std::string FormatStatsRow(const std::string& name, const GraphStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-6s |V|=%-11s |E|=%-12s davg=%-8.1f dmax=%s",
                name.c_str(), FormatWithCommas(s.num_vertices).c_str(),
                FormatWithCommas(s.num_edges).c_str(), s.avg_degree,
                FormatWithCommas(s.max_total_degree).c_str());
  return buf;
}

}  // namespace hcpath
