#ifndef HCPATH_GRAPH_GRAPH_REMAP_H_
#define HCPATH_GRAPH_GRAPH_REMAP_H_

#include <vector>

#include "graph/graph.h"

namespace hcpath {

/// Vertex renumbering applied before enumeration to compact the working
/// sets of the hot kernels (docs/PERF.md): the epoch-stamp tables and BFS
/// frontiers span [0, max id touched], and the CSR adjacency of vertices
/// visited together lands closer together, so both see fewer cache and
/// TLB misses after a locality-aware renumbering.
enum class RemapMode {
  kNone,    ///< identity — run on the input graph as-is
  kBfs,     ///< BFS visit order from vertex 0 (neighborhood locality)
  kDegree,  ///< descending total degree (hubs compact at low ids)
};

/// A vertex permutation plus the renumbered graph it induces.
///
/// Determinism: enumeration on the remapped graph must be byte-identical
/// (in original ids) to enumeration on the original. Two properties carry
/// the whole argument:
///   1. the remapped adjacency lists keep the ORIGINAL neighbor-id order
///      (the permuted image of the original sorted lists, not re-sorted),
///      so every traversal visits the same neighbors in the same order;
///   2. Graph::OriginalId() lets the few order-sensitive tie-breaks that
///      sort by vertex id (detection level grouping, similarity sketch
///      hashes) key on original ids.
/// Everything else the engines decide on — distances, reach counts, set
/// intersections, counters — is invariant under any permutation. The
/// DifferentialFuzz.RemapParity suite enforces the identity end to end.
///
/// Note the remapped graph therefore does NOT satisfy the sorted-adjacency
/// invariant in its own id space; Graph::HasEdge must not be used on it.
class GraphRemap {
 public:
  /// Builds the permutation and the renumbered graph. kNone yields an
  /// identity remap (is_identity() true) holding no graph copy.
  static GraphRemap Build(const Graph& g, RemapMode mode);

  bool is_identity() const { return to_new_.empty(); }

  /// The renumbered graph; only valid when !is_identity().
  const Graph& remapped() const { return remapped_; }

  VertexId ToNew(VertexId original) const {
    return to_new_.empty() ? original : to_new_[original];
  }
  VertexId ToOriginal(VertexId renumbered) const {
    return remapped_.OriginalId(renumbered);
  }

  /// Copies `queries` with endpoints translated into the renumbered id
  /// space. Callers must validate against the original graph first so
  /// error messages keep original ids.
  template <typename Query>
  std::vector<Query> TranslateQueries(const std::vector<Query>& queries) const {
    std::vector<Query> out = queries;
    for (Query& q : out) {
      q.s = ToNew(q.s);
      q.t = ToNew(q.t);
    }
    return out;
  }

 private:
  Graph remapped_;
  std::vector<VertexId> to_new_;  ///< original id -> new id; empty = identity
};

}  // namespace hcpath

#endif  // HCPATH_GRAPH_GRAPH_REMAP_H_
