#include "graph/delta_overlay.h"

#include <algorithm>

namespace hcpath {

namespace {

size_t NextPow2(size_t x) {
  size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Pipeline block for the merge loop: lines are prefetched one block
/// (~a microsecond of merge work) before they are dereferenced — far
/// beyond a DRAM round trip.
constexpr size_t kBlock = 16;

}  // namespace

VertexId* DeltaOverlay::Pool::Alloc(size_t n) {
  entries += n;
  if (n > left) {
    const size_t size = std::max(n, kChunkEntries);
    chunks.push_back(std::make_unique<VertexId[]>(size));
    cur = chunks.back().get();
    left = size;
  }
  VertexId* p = cur;
  cur += n;
  left -= n;
  return p;
}

void DeltaOverlay::BuildSide(
    Direction dir, const Side* prior_side, const std::vector<Edge>& adds,
    const std::vector<Edge>& removes,
    std::span<const std::span<const VertexId>> tail_views, Pool* pool,
    Side* out) const {
  // Distinct touched tails in ascending order (the delta lists are
  // sorted); drives both the exact table bound and the prefetch window.
  std::vector<VertexId> tails;
  tails.reserve(adds.size() + removes.size());
  {
    size_t ai = 0, ri = 0;
    while (ai < adds.size() || ri < removes.size()) {
      VertexId w = kInvalidVertex;
      if (ai < adds.size()) w = adds[ai].first;
      if (ri < removes.size()) w = std::min(w, removes[ri].first);
      tails.push_back(w);
      while (ai < adds.size() && adds[ai].first == w) ++ai;
      while (ri < removes.size() && removes[ri].first == w) ++ri;
    }
  }

  const uint64_t prior_patched =
      prior_side != nullptr ? prior_side->patched : 0;
  // Upper bound on patched vertices: every prior patch survives and every
  // touched tail is new. Table stays under 50% load. Growth takes one
  // doubling beyond the minimum so successive extends absorb a few more
  // batches via the verbatim copy-forward before the next re-hash.
  const size_t bound = prior_patched + tails.size();
  const size_t min_capacity = NextPow2(std::max<size_t>(4, 2 * bound));
  const size_t capacity =
      (prior_side != nullptr && prior_side->table.size() >= min_capacity)
          ? min_capacity
          : 2 * min_capacity;
  if (prior_side != nullptr && prior_side->table.size() >= capacity) {
    // Copy-forward fast path: one sequential slot-table copy; the slots'
    // list pointers stay valid because the pool is shared and only grows.
    out->table = prior_side->table;
    out->mask = prior_side->mask;
    out->patched = prior_side->patched;
  } else {
    // Grow path (and first extend): fresh table at the next power of two,
    // prior slots re-hashed once — pointers carry over untouched. The
    // source scan is sequential; the random-target insert lines are
    // requested a fixed lookahead ahead of the insert that needs them.
    out->table.assign(capacity, Slot{});
    out->mask = capacity - 1;
    if (prior_side != nullptr) {
      const std::vector<Slot>& prior_table = prior_side->table;
      for (size_t p = 0; p < prior_table.size(); ++p) {
        if (p + kBlock < prior_table.size()) {
          const Slot& ahead = prior_table[p + kBlock];
          if (ahead.key != kInvalidVertex) {
            __builtin_prefetch(&out->table[Hash(ahead.key) & out->mask], 1);
          }
        }
        const Slot& slot = prior_table[p];
        if (slot.key == kInvalidVertex) continue;
        size_t i = Hash(slot.key) & out->mask;
        while (out->table[i].key != kInvalidVertex) i = (i + 1) & out->mask;
        out->table[i] = slot;
        ++out->patched;
      }
    }
  }

  auto prior_view = [&](VertexId w) -> std::span<const VertexId> {
    if (prior_side != nullptr) {
      size_t i = Hash(w) & prior_side->mask;
      while (true) {
        const Slot& slot = prior_side->table[i];
        if (slot.key == w) return {slot.list, slot.count};
        if (slot.key == kInvalidVertex) break;
        i = (i + 1) & prior_side->mask;
      }
    }
    if (w < base_n_) return base_->Neighbors(w, dir);
    return {};
  };

  // Re-merge every vertex the batch touches. Deltas are sorted by
  // (w, nbr), so one sweep groups them; the per-vertex merge is the same
  // lockstep three-way scan GraphBuilder uses for full rebuilds, which is
  // what makes patched lists bit-identical to the rebuilt CSR's. Merged
  // lists are written straight into pool space sized at the per-vertex
  // upper bound (prior list + this vertex's adds); the unused tail is
  // handed back to the pool.
  //
  // The loop is pipelined in blocks of kBlock tails so each random
  // access's line is requested a block before it is needed: hash-slot and
  // offset lines one block ahead, then the block's prior views resolved
  // once (cached for the merge sweep — no second probe) while their list
  // lines stream in behind the resolve sweep.
  const bool have_views = !tail_views.empty();
  if (have_views) HCPATH_CHECK_EQ(tail_views.size(), tails.size());
  std::span<const VertexId> views[kBlock];
  size_t ai = 0, ri = 0;
  for (size_t blk = 0; blk < tails.size(); blk += kBlock) {
    const size_t blk_end = std::min(blk + kBlock, tails.size());
    const size_t next_end = std::min(blk_end + kBlock, tails.size());
    for (size_t t = blk_end; t < next_end; ++t) {
      const VertexId wp = tails[t];
      __builtin_prefetch(&out->table[Hash(wp) & out->mask]);
      if (!have_views) {
        if (prior_side != nullptr) {
          __builtin_prefetch(&prior_side->table[Hash(wp) & prior_side->mask]);
        }
        if (wp < base_n_) base_->PrefetchOffsets(wp, dir);
      }
    }
    for (size_t t = blk; t < blk_end; ++t) {
      views[t - blk] = have_views ? tail_views[t] : prior_view(tails[t]);
      __builtin_prefetch(views[t - blk].data());
    }
    for (size_t t = blk; t < blk_end; ++t) {
      const VertexId w = tails[t];
      const std::span<const VertexId> cur = views[t - blk];
      size_t group_adds = 0;
      while (ai + group_adds < adds.size() &&
             adds[ai + group_adds].first == w) {
        ++group_adds;
      }
      VertexId* list = pool->Alloc(cur.size() + group_adds);
      VertexId* end = list;
      size_t bi = 0;
      while (true) {
        VertexId from_base = bi < cur.size() ? cur[bi] : kInvalidVertex;
        // Every remove names an edge present in the prior view, so the
        // remove cursor advances in lockstep with the scan of w's list.
        if (from_base != kInvalidVertex && ri < removes.size() &&
            removes[ri].first == w && removes[ri].second == from_base) {
          ++bi;
          ++ri;
          continue;
        }
        const VertexId from_add =
            (ai < adds.size() && adds[ai].first == w) ? adds[ai].second
                                                      : kInvalidVertex;
        if (from_base == kInvalidVertex && from_add == kInvalidVertex) break;
        // Added edges are absent from the prior view, so the heads never
        // tie; kInvalidVertex sorts last, making this a two-way merge.
        if (from_add < from_base) {
          *end++ = from_add;
          ++ai;
        } else {
          *end++ = from_base;
          ++bi;
        }
      }
      const size_t count = static_cast<size_t>(end - list);
      pool->Unalloc(cur.size() + group_adds - count);
      // An emptied list must still be patched, or lookups would fall
      // through to the stale base span. A key carried forward from the
      // prior overlay is overwritten in place; its superseded list bytes
      // stay in the pool until compaction.
      size_t i = Hash(w) & out->mask;
      while (out->table[i].key != kInvalidVertex && out->table[i].key != w) {
        i = (i + 1) & out->mask;
      }
      if (out->table[i].key != w) ++out->patched;
      out->table[i] = Slot{w, static_cast<uint32_t>(count), list};
    }
  }
}

std::shared_ptr<const DeltaOverlay> DeltaOverlay::Extend(
    std::shared_ptr<const Graph> base, const DeltaOverlay* prior,
    const std::vector<Edge>& adds, const std::vector<Edge>& removes,
    std::span<const std::span<const VertexId>> out_tail_views) {
  HCPATH_CHECK(base != nullptr);
  HCPATH_CHECK(base->overlay() == nullptr);  // chains are flattened
  auto next = std::shared_ptr<DeltaOverlay>(new DeltaOverlay());
  next->base_ = std::move(base);
  next->base_n_ = next->base_->NumVertices();
  next->pool_ = prior != nullptr ? prior->pool_ : std::make_shared<Pool>();

  const VertexId prior_n =
      prior != nullptr ? prior->num_vertices() : next->base_n_;
  const uint64_t prior_m =
      prior != nullptr ? prior->num_edges() : next->base_->NumEdges();
  VertexId n = std::max<VertexId>(prior_n, 1);
  for (const auto& [u, v] : adds) n = std::max(n, std::max(u, v) + 1);
  next->num_vertices_ = n;
  next->num_edges_ = prior_m + adds.size() - removes.size();
  next->depth_ = (prior != nullptr ? prior->depth() : 0) + 1;
  next->delta_edges_ = (prior != nullptr ? prior->delta_edges() : 0) +
                       adds.size() + removes.size();

  next->BuildSide(Direction::kForward,
                  prior != nullptr ? &prior->out_ : nullptr, adds, removes,
                  out_tail_views, next->pool_.get(), &next->out_);

  // The in-direction consumes the same deltas keyed by head: (v, u)
  // sorted by (v, u), matching in-adjacency's source-ascending order.
  // No pre-resolved views exist for this side — the classifier only
  // probed out-adjacency — so its merge resolves against the tables.
  auto by_head = [](std::vector<Edge> kv) {
    for (auto& [u, v] : kv) std::swap(u, v);
    std::sort(kv.begin(), kv.end());
    return kv;
  };
  next->BuildSide(Direction::kBackward,
                  prior != nullptr ? &prior->in_ : nullptr, by_head(adds),
                  by_head(removes), {}, next->pool_.get(), &next->in_);
  return next;
}

uint64_t DeltaOverlay::MemoryBytes() const {
  return (out_.table.size() + in_.table.size()) * sizeof(Slot) +
         pool_->entries * sizeof(VertexId);
}

}  // namespace hcpath
