#ifndef HCPATH_GRAPH_GENERATORS_H_
#define HCPATH_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace hcpath {

/// Synthetic graph generators standing in for the paper's SNAP/LAW/
/// NetworkRepository datasets (see DESIGN.md §5). All generators are
/// deterministic given the Rng seed and produce directed graphs without
/// self-loops or duplicate edges.

/// G(n, m) Erdős–Rényi digraph: m distinct directed edges drawn uniformly.
/// Degree distribution is near-uniform (Friendster-like).
StatusOr<Graph> GenerateErdosRenyi(VertexId n, uint64_t m, Rng& rng);

/// Directed Barabási–Albert preferential attachment: each new vertex
/// attaches `out_degree` edges to existing vertices chosen proportionally
/// to their current degree; a random half of the edges are flipped so both
/// in- and out-degree are skewed (social-network-like power law).
StatusOr<Graph> GenerateBarabasiAlbert(VertexId n, uint32_t out_degree,
                                       Rng& rng);

/// R-MAT (Chakrabarti et al.): recursive quadrant sampling with
/// probabilities (a, b, c, d), a + b + c + d = 1. Heavier `a` gives a more
/// skewed, web/Twitter-like graph. 2^scale vertices, `m` edges drawn
/// (duplicates removed, so the final edge count can be slightly lower).
StatusOr<Graph> GenerateRMat(uint32_t scale, uint64_t m, double a, double b,
                             double c, Rng& rng);

/// Directed Watts–Strogatz small world: ring of n vertices, each with
/// `k_out` forward-arc neighbors; every edge rewired with probability
/// `rewire_p` to a uniform target. Dense, high-clustering (UK-web-like).
StatusOr<Graph> GenerateSmallWorld(VertexId n, uint32_t k_out,
                                   double rewire_p, Rng& rng);

/// rows x cols directed grid with east and south edges; handy in tests
/// because the number of monotone s-t paths is a closed-form binomial.
StatusOr<Graph> GenerateGrid(uint32_t rows, uint32_t cols);

/// Complete digraph K_n (all ordered pairs). Worst case for enumeration.
StatusOr<Graph> GenerateComplete(VertexId n);

/// Simple directed path 0 -> 1 -> ... -> n-1.
StatusOr<Graph> GeneratePath(VertexId n);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
StatusOr<Graph> GenerateCycle(VertexId n);

/// Layered DAG: `layers` layers of `width` vertices; each vertex in layer i
/// points to `fanout` random vertices of layer i+1. Path counts explode
/// combinatorially with depth, mimicking Fig 13's exponential growth.
StatusOr<Graph> GenerateLayeredDag(uint32_t layers, uint32_t width,
                                   uint32_t fanout, Rng& rng);

}  // namespace hcpath

#endif  // HCPATH_GRAPH_GENERATORS_H_
