#include "graph/edge_list_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/graph_builder.h"
#include "util/stringx.h"

namespace hcpath {

namespace {
constexpr uint64_t kBinaryMagic = 0x48435041544847ULL;  // "HCPATHG"
}  // namespace

StatusOr<Graph> LoadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open: " + path);
  GraphBuilder builder;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#' || sv[0] == '%') continue;
    // Accept both spaces and tabs as separators.
    std::string norm(sv);
    for (char& c : norm) {
      if (c == '\t') c = ' ';
    }
    auto fields = Split(norm, ' ');
    if (fields.size() < 2) {
      return Status::InvalidArgument("bad edge at " + path + ":" +
                                     std::to_string(lineno));
    }
    auto u = ParseUint64(fields[0]);
    auto v = ParseUint64(fields[1]);
    if (!u.ok()) return u.status();
    if (!v.ok()) return v.status();
    if (*u >= kInvalidVertex || *v >= kInvalidVertex) {
      return Status::OutOfRange("vertex id too large at " + path + ":" +
                                std::to_string(lineno));
    }
    builder.AddEdge(static_cast<VertexId>(*u), static_cast<VertexId>(*v));
  }
  return builder.Build();
}

Status SaveEdgeListText(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IOError("cannot open: " + path);
  out << "# hcpath edge list: " << g.NumVertices() << " vertices, "
      << g.NumEdges() << " edges\n";
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      out << u << ' ' << v << '\n';
    }
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<Graph> LoadEdgeListBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open: " + path);
  uint64_t magic = 0, n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in || magic != kBinaryMagic) {
    return Status::InvalidArgument("not an hcpath binary edge list: " + path);
  }
  if (n >= kInvalidVertex) {
    return Status::OutOfRange("vertex count too large: " + path);
  }
  // Sanity-check the header against the real file size BEFORE m sizes
  // Reserve(m) and n sizes GraphBuilder(n): a corrupt or hostile 24-byte
  // header must produce InvalidArgument, not a multi-GB allocation. The
  // payload must be exactly 8 bytes per declared edge — trailing bytes are
  // rejected too (a well-formed writer never produces them, and accepting
  // them would silently mask a corrupted edge count).
  constexpr uint64_t kHeaderBytes = 3 * sizeof(uint64_t);
  in.seekg(0, std::ios::end);
  const auto end_pos = in.tellg();
  if (end_pos < static_cast<std::streamoff>(kHeaderBytes)) {
    return Status::InvalidArgument("truncated binary edge list: " + path);
  }
  const uint64_t payload_bytes =
      static_cast<uint64_t>(end_pos) - kHeaderBytes;
  if (m > payload_bytes / (2 * sizeof(VertexId)) ||
      m * 2 * sizeof(VertexId) != payload_bytes) {
    return Status::InvalidArgument(
        "edge count inconsistent with file size: " + path);
  }
  // Isolated vertices are legitimate (n may exceed every edge endpoint),
  // but an n wildly beyond what the edges imply is a corrupt header; allow
  // up to 2m + 2^24 declared vertices so real sparse graphs round-trip
  // while a hostile count can no longer size an arbitrary allocation.
  if (n > 2 * m + (uint64_t{1} << 24)) {
    return Status::InvalidArgument(
        "vertex count inconsistent with edge count: " + path);
  }
  in.seekg(static_cast<std::streamoff>(kHeaderBytes), std::ios::beg);
  GraphBuilder builder(static_cast<VertexId>(n));
  builder.Reserve(m);
  std::vector<VertexId> buf(2 * 4096);
  uint64_t remaining = m;
  while (remaining > 0) {
    uint64_t batch = std::min<uint64_t>(remaining, 4096);
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(batch * 2 * sizeof(VertexId)));
    if (!in) return Status::IOError("truncated binary edge list: " + path);
    for (uint64_t i = 0; i < batch; ++i) {
      if (buf[2 * i] >= n || buf[2 * i + 1] >= n) {
        return Status::OutOfRange("edge endpoint out of range: " + path);
      }
      builder.AddEdge(buf[2 * i], buf[2 * i + 1]);
    }
    remaining -= batch;
  }
  return builder.Build();
}

Status SaveEdgeListBinary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return Status::IOError("cannot open: " + path);
  uint64_t magic = kBinaryMagic;
  uint64_t n = g.NumVertices();
  uint64_t m = g.NumEdges();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  // Batch edge pairs through a reused buffer: one write per ~8K edges
  // instead of one per edge, byte-identical output.
  std::vector<VertexId> buf;
  buf.reserve(2 * 8192);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      buf.push_back(u);
      buf.push_back(v);
      if (buf.size() == buf.capacity()) {
        out.write(reinterpret_cast<const char*>(buf.data()),
                  static_cast<std::streamsize>(buf.size() * sizeof(VertexId)));
        buf.clear();
      }
    }
  }
  if (!buf.empty()) {
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size() * sizeof(VertexId)));
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace hcpath
