#ifndef HCPATH_GRAPH_STATS_H_
#define HCPATH_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace hcpath {

/// Summary statistics matching Table I of the paper (|V|, |E|, d_avg,
/// d_max), plus a few extras useful for sanity-checking generators.
struct GraphStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  double avg_degree = 0;       // total degree (in+out)/2 per vertex, as in
                               // Table I's undirected-style d_avg = m/n
  uint64_t max_out_degree = 0;
  uint64_t max_in_degree = 0;
  uint64_t max_total_degree = 0;  // Table I's d_max
  uint64_t num_isolated = 0;
};

GraphStats ComputeGraphStats(const Graph& g);

/// Degree histogram: bucket[i] = #vertices with out-degree exactly i, for
/// i < bucket count; the last bucket aggregates the tail.
std::vector<uint64_t> OutDegreeHistogram(const Graph& g, size_t buckets);

/// Formats stats as a Table-I-style row.
std::string FormatStatsRow(const std::string& name, const GraphStats& s);

}  // namespace hcpath

#endif  // HCPATH_GRAPH_STATS_H_
