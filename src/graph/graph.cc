#include "graph/graph.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "graph/delta_overlay.h"

namespace hcpath {

uint64_t Graph::NextVersion() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void Graph::Rebind() {
  if (overlay_ != nullptr || storage_ != nullptr) return;
  if (out_offsets_.empty()) {
    out_offsets_p_ = nullptr;
    out_adj_p_ = nullptr;
    in_offsets_p_ = nullptr;
    in_adj_p_ = nullptr;
    n_ = 0;
    m_ = 0;
    return;
  }
  out_offsets_p_ = out_offsets_.data();
  out_adj_p_ = out_adj_.data();
  in_offsets_p_ = in_offsets_.data();
  in_adj_p_ = in_adj_.data();
  n_ = static_cast<VertexId>(out_offsets_.size() - 1);
  m_ = out_adj_.size();
}

void Graph::CopyFrom(const Graph& other) {
  out_offsets_ = other.out_offsets_;
  out_adj_ = other.out_adj_;
  in_offsets_ = other.in_offsets_;
  in_adj_ = other.in_adj_;
  original_ids_ = other.original_ids_;
  overlay_ = other.overlay_;
  storage_ = other.storage_;
  out_offsets_p_ = other.out_offsets_p_;
  out_adj_p_ = other.out_adj_p_;
  in_offsets_p_ = other.in_offsets_p_;
  in_adj_p_ = other.in_adj_p_;
  n_ = other.n_;
  m_ = other.m_;
  version_ = other.version_;
  // External pointers aim at shared pinned storage and stay valid as-is;
  // owned pointers must re-aim at this object's fresh vector copies.
  Rebind();
}

void Graph::MoveFrom(Graph&& other) noexcept {
  out_offsets_ = std::move(other.out_offsets_);
  out_adj_ = std::move(other.out_adj_);
  in_offsets_ = std::move(other.in_offsets_);
  in_adj_ = std::move(other.in_adj_);
  original_ids_ = std::move(other.original_ids_);
  overlay_ = std::move(other.overlay_);
  storage_ = std::move(other.storage_);
  out_offsets_p_ = other.out_offsets_p_;
  out_adj_p_ = other.out_adj_p_;
  in_offsets_p_ = other.in_offsets_p_;
  in_adj_p_ = other.in_adj_p_;
  n_ = other.n_;
  m_ = other.m_;
  version_ = other.version_;
  // Vector moves may transfer or reuse heap buffers; re-derive the views
  // rather than trusting the stolen pointers, and leave the source as a
  // valid empty graph.
  Rebind();
  other.original_ids_.clear();
  other.out_offsets_.clear();
  other.out_adj_.clear();
  other.in_offsets_.clear();
  other.in_adj_.clear();
  other.Rebind();
}

Graph::Graph(std::vector<uint64_t> out_offsets, std::vector<VertexId> out_adj,
             std::vector<uint64_t> in_offsets, std::vector<VertexId> in_adj)
    : out_offsets_(std::move(out_offsets)),
      out_adj_(std::move(out_adj)),
      in_offsets_(std::move(in_offsets)),
      in_adj_(std::move(in_adj)),
      version_(NextVersion()) {
  HCPATH_CHECK_EQ(out_offsets_.size(), in_offsets_.size());
  HCPATH_CHECK(!out_offsets_.empty());
  HCPATH_CHECK_EQ(out_offsets_.back(), out_adj_.size());
  HCPATH_CHECK_EQ(in_offsets_.back(), in_adj_.size());
  HCPATH_CHECK_EQ(out_adj_.size(), in_adj_.size());
  Rebind();
}

Graph::Graph(std::shared_ptr<const void> storage,
             std::span<const uint64_t> out_offsets,
             std::span<const VertexId> out_adj,
             std::span<const uint64_t> in_offsets,
             std::span<const VertexId> in_adj)
    : storage_(std::move(storage)), version_(NextVersion()) {
  HCPATH_CHECK(storage_ != nullptr);
  HCPATH_CHECK_EQ(out_offsets.size(), in_offsets.size());
  HCPATH_CHECK(!out_offsets.empty());
  HCPATH_CHECK_EQ(out_offsets.back(), out_adj.size());
  HCPATH_CHECK_EQ(in_offsets.back(), in_adj.size());
  HCPATH_CHECK_EQ(out_adj.size(), in_adj.size());
  out_offsets_p_ = out_offsets.data();
  out_adj_p_ = out_adj.data();
  in_offsets_p_ = in_offsets.data();
  in_adj_p_ = in_adj.data();
  n_ = static_cast<VertexId>(out_offsets.size() - 1);
  m_ = out_adj.size();
}

Graph::Graph(std::shared_ptr<const DeltaOverlay> overlay)
    : overlay_(std::move(overlay)), version_(NextVersion()) {
  HCPATH_CHECK(overlay_ != nullptr);
}

std::span<const VertexId> Graph::OverlayNeighbors(VertexId v,
                                                  Direction d) const {
  return overlay_->Neighbors(v, d);
}

void Graph::OverlayPrefetchSlot(VertexId v, Direction d) const {
  overlay_->PrefetchSlot(v, d);
}

VertexId Graph::OverlayNumVertices() const {
  return overlay_->num_vertices();
}

uint64_t Graph::OverlayNumEdges() const { return overlay_->num_edges(); }

uint64_t Graph::OverlayMemoryBytes() const {
  return overlay_->MemoryBytes();
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::pair<VertexId, VertexId>> Graph::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  out.reserve(NumEdges());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : OutNeighbors(u)) out.emplace_back(u, v);
  }
  return out;
}

}  // namespace hcpath
