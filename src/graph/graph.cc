#include "graph/graph.h"

#include <algorithm>
#include <atomic>

#include "graph/delta_overlay.h"

namespace hcpath {

uint64_t Graph::NextVersion() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Graph::Graph(std::vector<uint64_t> out_offsets, std::vector<VertexId> out_adj,
             std::vector<uint64_t> in_offsets, std::vector<VertexId> in_adj)
    : out_offsets_(std::move(out_offsets)),
      out_adj_(std::move(out_adj)),
      in_offsets_(std::move(in_offsets)),
      in_adj_(std::move(in_adj)),
      version_(NextVersion()) {
  HCPATH_CHECK_EQ(out_offsets_.size(), in_offsets_.size());
  HCPATH_CHECK(!out_offsets_.empty());
  HCPATH_CHECK_EQ(out_offsets_.back(), out_adj_.size());
  HCPATH_CHECK_EQ(in_offsets_.back(), in_adj_.size());
  HCPATH_CHECK_EQ(out_adj_.size(), in_adj_.size());
}

Graph::Graph(std::shared_ptr<const DeltaOverlay> overlay)
    : overlay_(std::move(overlay)), version_(NextVersion()) {
  HCPATH_CHECK(overlay_ != nullptr);
}

std::span<const VertexId> Graph::OverlayNeighbors(VertexId v,
                                                  Direction d) const {
  return overlay_->Neighbors(v, d);
}

void Graph::OverlayPrefetchSlot(VertexId v, Direction d) const {
  overlay_->PrefetchSlot(v, d);
}

VertexId Graph::OverlayNumVertices() const {
  return overlay_->num_vertices();
}

uint64_t Graph::OverlayNumEdges() const { return overlay_->num_edges(); }

uint64_t Graph::OverlayMemoryBytes() const {
  return overlay_->MemoryBytes();
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::pair<VertexId, VertexId>> Graph::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  out.reserve(NumEdges());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : OutNeighbors(u)) out.emplace_back(u, v);
  }
  return out;
}

}  // namespace hcpath
