#ifndef HCPATH_GRAPH_GRAPH_BUILDER_H_
#define HCPATH_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace hcpath {

/// Accumulates directed edges and finalizes them into a CSR Graph.
///
/// Duplicate edges are deduplicated and self-loops dropped at Build() time
/// (a simple path can never use a self-loop, so keeping them would only
/// waste index space). Vertex count may be declared up front or inferred
/// from the largest endpoint.
class GraphBuilder {
 public:
  GraphBuilder() = default;
  explicit GraphBuilder(VertexId num_vertices)
      : num_vertices_(num_vertices) {}

  /// Adds edge (u, v). Ids beyond the declared vertex count grow the graph.
  void AddEdge(VertexId u, VertexId v);

  void Reserve(size_t num_edges) { edges_.reserve(num_edges); }

  size_t NumBufferedEdges() const { return edges_.size(); }

  /// Number of self-loops dropped so far (populated by Build).
  uint64_t self_loops_dropped() const { return self_loops_dropped_; }
  /// Number of duplicate edges removed (populated by Build).
  uint64_t duplicates_dropped() const { return duplicates_dropped_; }

  /// Sorts, dedups and builds the CSR graph. The builder is left empty.
  StatusOr<Graph> Build();

 private:
  VertexId num_vertices_ = 0;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  uint64_t self_loops_dropped_ = 0;
  uint64_t duplicates_dropped_ = 0;
};

}  // namespace hcpath

#endif  // HCPATH_GRAPH_GRAPH_BUILDER_H_
