#ifndef HCPATH_GRAPH_GRAPH_BUILDER_H_
#define HCPATH_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace hcpath {

/// One element of a graph-update batch (dynamic graphs, docs/DYNAMIC.md).
struct EdgeUpdate {
  enum class Op : uint8_t { kAddEdge, kRemoveEdge };

  Op op = Op::kAddEdge;
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;

  static EdgeUpdate Add(VertexId u, VertexId v) {
    return {Op::kAddEdge, u, v};
  }
  static EdgeUpdate Remove(VertexId u, VertexId v) {
    return {Op::kRemoveEdge, u, v};
  }
};

/// What one ApplyUpdates batch actually did to the graph. The effective
/// edge lists drive cone-precise cache invalidation (docs/DYNAMIC.md):
/// no-op updates (adding a present edge, removing an absent one) touch
/// nothing and so appear in neither list.
struct UpdateApplyStats {
  std::vector<std::pair<VertexId, VertexId>> added;    ///< edges now present
  std::vector<std::pair<VertexId, VertexId>> removed;  ///< edges now absent
  uint64_t add_noops = 0;     ///< adds of already-present edges
  uint64_t remove_noops = 0;  ///< removes of absent edges
  uint64_t self_loops_dropped = 0;

  /// Pre-update out-neighbor span of each distinct tail of added∪removed,
  /// in ascending tail order — the spans ClassifyUpdates already resolved
  /// for its membership probes, saved so DeltaOverlay::Extend's forward
  /// side can merge without re-probing the same tables. Non-owning views
  /// into the classified-against graph: valid only while that snapshot is
  /// alive and unmodified, i.e. for the ApplyUpdates call that produced
  /// them. MergeRebuild ignores them.
  std::vector<std::span<const VertexId>> tail_views;
};

/// Accumulates directed edges and finalizes them into a CSR Graph.
///
/// Duplicate edges are deduplicated and self-loops dropped at Build() time
/// (a simple path can never use a self-loop, so keeping them would only
/// waste index space). Vertex count may be declared up front or inferred
/// from the largest endpoint.
class GraphBuilder {
 public:
  GraphBuilder() = default;
  explicit GraphBuilder(VertexId num_vertices)
      : num_vertices_(num_vertices) {}

  /// Adds edge (u, v). Ids beyond the declared vertex count grow the graph.
  void AddEdge(VertexId u, VertexId v);

  void Reserve(size_t num_edges) { edges_.reserve(num_edges); }

  size_t NumBufferedEdges() const { return edges_.size(); }

  /// Number of self-loops dropped so far (populated by Build).
  uint64_t self_loops_dropped() const { return self_loops_dropped_; }
  /// Number of duplicate edges removed (populated by Build).
  uint64_t duplicates_dropped() const { return duplicates_dropped_; }

  /// Sorts, dedups and builds the CSR graph. The builder is left empty.
  StatusOr<Graph> Build();

  /// Applies a batch of edge updates to `base` and returns the resulting
  /// graph as a fresh CSR (base is untouched — snapshot semantics; see
  /// GraphStore for the epoch-stamped lifecycle around this).
  ///
  /// Semantics, chosen so a batch always has one deterministic outcome:
  ///  * several updates to the same (u, v) collapse to the LAST one in
  ///    batch order;
  ///  * adding a present edge / removing an absent one is a counted no-op;
  ///  * self-loop adds are dropped (as in Build);
  ///  * ids beyond base's vertex count grow the graph (isolated vertices
  ///    stay); kInvalidVertex endpoints fail with InvalidArgument.
  ///
  /// The result is structurally identical — same CSR content as a
  /// from-scratch Build over the surviving edge set — which the
  /// update-interleaved differential fuzz suite cross-checks.
  ///
  /// This is the full-rebuild path — O(|E|) regardless of batch size.
  /// GraphStore routes small batches through DeltaOverlay::Extend instead
  /// (O(touched)) and calls back into this only at compaction points.
  static StatusOr<Graph> ApplyUpdates(const Graph& base,
                                      std::span<const EdgeUpdate> updates,
                                      UpdateApplyStats* stats = nullptr);

  /// Classification half of ApplyUpdates, shared with the overlay path:
  /// collapses the batch last-wins, drops self-loops, classifies each
  /// deciding update against `base` (present → remove effective / add
  /// no-op, absent → add effective / remove no-op) and fills `stats` with
  /// the sorted effective `added` / `removed` lists plus the no-op
  /// counters. `base` may itself be an overlay snapshot. Fails with
  /// InvalidArgument on kInvalidVertex endpoints, leaving `stats` empty.
  static Status ClassifyUpdates(const Graph& base,
                                std::span<const EdgeUpdate> updates,
                                UpdateApplyStats* stats);

  /// Rebuild half of ApplyUpdates: merges a classified delta into a fresh
  /// flat CSR. Reads `base` only through its neighbor spans, so calling
  /// it on an overlay snapshot folds base + overlay + delta in one pass —
  /// this is GraphStore's compaction primitive.
  static Graph MergeRebuild(const Graph& base, const UpdateApplyStats& delta);

 private:
  VertexId num_vertices_ = 0;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  uint64_t self_loops_dropped_ = 0;
  uint64_t duplicates_dropped_ = 0;
};

}  // namespace hcpath

#endif  // HCPATH_GRAPH_GRAPH_BUILDER_H_
