#include "graph/graph_store.h"

#include <utility>

namespace hcpath {

GraphStore::GraphStore(Graph seed) {
  auto snap = std::make_shared<GraphSnapshot>();
  snap->graph = std::move(seed);
  snap->epoch = 0;
  current_ = std::move(snap);
  stats_.snapshots_created = 1;
  stats_.snapshots_live = 1;
}

std::shared_ptr<const GraphSnapshot> GraphStore::Current() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_;
}

uint64_t GraphStore::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_->epoch;
}

StatusOr<GraphUpdateResult> GraphStore::ApplyUpdates(
    std::span<const EdgeUpdate> updates) {
  // Writers serialize here; the base snapshot cannot change underneath the
  // rebuild because only this function installs new ones.
  std::lock_guard<std::mutex> update_lk(update_mu_);
  std::shared_ptr<const GraphSnapshot> base;
  {
    std::lock_guard<std::mutex> lk(mu_);
    base = current_;
  }

  GraphUpdateResult result;
  StatusOr<Graph> next =
      GraphBuilder::ApplyUpdates(base->graph, updates, &result.applied);
  HCPATH_RETURN_NOT_OK(next.status());

  auto snap = std::make_shared<GraphSnapshot>();
  snap->graph = std::move(next).value();
  snap->epoch = base->epoch + 1;
  result.snapshot = snap;
  // Drop the writer's own pin before the GC scan below, or the snapshot
  // this batch retires would always look pinned and linger one batch.
  base.reset();

  {
    std::lock_guard<std::mutex> lk(mu_);
    retired_.push_back(std::move(current_));
    current_ = std::move(snap);
    ++stats_.snapshots_created;
    ++stats_.snapshots_retired;
    ++stats_.snapshots_live;
    ++stats_.update_batches;
    stats_.edges_added += result.applied.added.size();
    stats_.edges_removed += result.applied.removed.size();
    CollectGarbageLocked();
  }
  return result;
}

size_t GraphStore::CollectGarbage() {
  std::lock_guard<std::mutex> lk(mu_);
  return CollectGarbageLocked();
}

size_t GraphStore::CollectGarbageLocked() {
  size_t freed = 0;
  for (size_t i = 0; i < retired_.size();) {
    // use_count() == 1 means the retired list holds the only reference:
    // every reader pin has been released. New pins of this snapshot are
    // impossible (Current() only hands out current_), so the count cannot
    // rise again and freeing is safe.
    if (retired_[i].use_count() == 1) {
      retired_[i] = std::move(retired_.back());
      retired_.pop_back();
      ++freed;
    } else {
      ++i;
    }
  }
  stats_.snapshots_collected += freed;
  stats_.snapshots_live -= freed;
  return freed;
}

GraphStoreStats GraphStore::GetStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace hcpath
