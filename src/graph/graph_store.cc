#include "graph/graph_store.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/delta_overlay.h"

namespace hcpath {

GraphStore::GraphStore(Graph seed, GraphStoreOptions options,
                       uint64_t seed_epoch)
    : options_(options) {
  HCPATH_CHECK(!std::isnan(options_.compaction_threshold));
  auto snap = std::make_shared<GraphSnapshot>();
  snap->graph = std::move(seed);
  snap->epoch = seed_epoch;
  current_ = std::move(snap);
  stats_.snapshots_created = 1;
  stats_.snapshots_live = 1;
}

Status GraphStore::SaveSnapshot(const std::string& path) const {
  // Pin the snapshot once; saving then races with nothing — updates that
  // land mid-save install new snapshots without touching this one.
  std::shared_ptr<const GraphSnapshot> snap = Current();
  return SaveGraphSnapshot(snap->graph, path, snap->epoch);
}

StatusOr<std::unique_ptr<GraphStore>> GraphStore::OpenSnapshot(
    const std::string& path, GraphStoreOptions options,
    GraphSnapshotLoadOptions load) {
  GraphSnapshotInfo info;
  StatusOr<Graph> g = LoadGraphSnapshot(path, load, &info);
  if (!g.ok()) return g.status();
  return std::make_unique<GraphStore>(std::move(g).value(), options,
                                      info.epoch);
}

std::shared_ptr<const GraphSnapshot> GraphStore::Current() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_;
}

uint64_t GraphStore::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_->epoch;
}

StatusOr<GraphUpdateResult> GraphStore::ApplyUpdates(
    std::span<const EdgeUpdate> updates) {
  // Writers serialize here; the base snapshot cannot change underneath the
  // rebuild because only this function installs new ones.
  std::lock_guard<std::mutex> update_lk(update_mu_);
  std::shared_ptr<const GraphSnapshot> base;
  {
    std::lock_guard<std::mutex> lk(mu_);
    base = current_;
  }

  GraphUpdateResult result;
  HCPATH_RETURN_NOT_OK(
      GraphBuilder::ClassifyUpdates(base->graph, updates, &result.applied));

  // Extend-vs-compact decision: keep extending the overlay while the
  // chain's cumulative effective delta stays within the threshold
  // fraction of the flat base's edge count.
  const DeltaOverlay* prior = base->graph.overlay();
  const uint64_t base_edges =
      prior != nullptr ? prior->base().NumEdges() : base->graph.NumEdges();
  const uint64_t next_delta = (prior != nullptr ? prior->delta_edges() : 0) +
                              result.applied.added.size() +
                              result.applied.removed.size();
  const bool extend =
      options_.compaction_threshold > 0 &&
      static_cast<double>(next_delta) <=
          options_.compaction_threshold *
              static_cast<double>(std::max<uint64_t>(base_edges, 1));
  const bool folded_overlay = !extend && prior != nullptr;

  auto snap = std::make_shared<GraphSnapshot>();
  if (extend) {
    // O(touched): the new snapshot shares the chain's flat base CSR. The
    // aliasing shared_ptr pins the base *snapshot*, so the pin-aware GC
    // below keeps the flat CSR alive as long as any overlay needs it.
    std::shared_ptr<const Graph> flat =
        prior != nullptr
            ? prior->base_ptr()
            : std::shared_ptr<const Graph>(base, &base->graph);
    snap->graph = Graph(DeltaOverlay::Extend(
        std::move(flat), prior, result.applied.added, result.applied.removed,
        result.applied.tail_views));
  } else {
    // Full rebuild; when `base` is an overlay snapshot this folds base +
    // overlay + batch into one fresh flat CSR (compaction).
    snap->graph = GraphBuilder::MergeRebuild(base->graph, result.applied);
  }
  // The classifier's resolved spans point into `base`, which may be
  // collected once the new snapshot is installed — don't let them escape
  // in the returned result.
  result.applied.tail_views.clear();
  result.applied.tail_views.shrink_to_fit();
  snap->epoch = base->epoch + 1;
  result.snapshot = snap;
  result.used_overlay = extend;
  // Drop the writer's own pin before the GC scan below, or the snapshot
  // this batch retires would always look pinned and linger one batch.
  // (`prior` dangles past this point.)
  base.reset();

  {
    std::lock_guard<std::mutex> lk(mu_);
    retired_.push_back(std::move(current_));
    current_ = std::move(snap);
    ++stats_.snapshots_created;
    ++stats_.snapshots_retired;
    ++stats_.snapshots_live;
    ++stats_.update_batches;
    stats_.edges_added += result.applied.added.size();
    stats_.edges_removed += result.applied.removed.size();
    if (extend) {
      ++stats_.overlay_extends;
    } else {
      ++stats_.full_rebuilds;
      if (folded_overlay) ++stats_.compactions;
    }
    const DeltaOverlay* installed = current_->graph.overlay();
    stats_.overlay_depth = installed != nullptr ? installed->depth() : 0;
    stats_.overlay_delta_edges =
        installed != nullptr ? installed->delta_edges() : 0;
    CollectGarbageLocked();
  }
  return result;
}

size_t GraphStore::CollectGarbage() {
  std::lock_guard<std::mutex> lk(mu_);
  return CollectGarbageLocked();
}

size_t GraphStore::CollectGarbageLocked() {
  size_t freed = 0;
  for (size_t i = 0; i < retired_.size();) {
    // use_count() == 1 means the retired list holds the only reference:
    // every reader pin has been released. New pins of this snapshot are
    // impossible (Current() only hands out current_), so the count cannot
    // rise again and freeing is safe.
    if (retired_[i].use_count() == 1) {
      retired_[i] = std::move(retired_.back());
      retired_.pop_back();
      ++freed;
    } else {
      ++i;
    }
  }
  stats_.snapshots_collected += freed;
  stats_.snapshots_live -= freed;
  return freed;
}

GraphStoreStats GraphStore::GetStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace hcpath
