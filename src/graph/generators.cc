#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/graph_builder.h"
#include "util/hash.h"

namespace hcpath {

StatusOr<Graph> GenerateErdosRenyi(VertexId n, uint64_t m, Rng& rng) {
  if (n < 2) return Status::InvalidArgument("ErdosRenyi needs n >= 2");
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1);
  if (m > max_edges) {
    return Status::InvalidArgument("ErdosRenyi: m exceeds n*(n-1)");
  }
  GraphBuilder builder(n);
  builder.Reserve(m);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) continue;
    uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) builder.AddEdge(u, v);
  }
  return builder.Build();
}

StatusOr<Graph> GenerateBarabasiAlbert(VertexId n, uint32_t out_degree,
                                       Rng& rng) {
  if (n < 2 || out_degree == 0) {
    return Status::InvalidArgument("BarabasiAlbert needs n >= 2, degree > 0");
  }
  GraphBuilder builder(n);
  builder.Reserve(static_cast<uint64_t>(n) * out_degree);
  // `targets` holds one entry per edge endpoint, so uniform sampling from it
  // realizes preferential attachment.
  std::vector<VertexId> targets;
  targets.reserve(2ULL * n * out_degree);
  // Seed clique among the first out_degree+1 vertices (ring).
  VertexId seed = std::min<VertexId>(n, out_degree + 1);
  for (VertexId u = 0; u < seed; ++u) {
    VertexId v = (u + 1) % seed;
    if (u != v) {
      builder.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (VertexId u = seed; u < n; ++u) {
    for (uint32_t e = 0; e < out_degree; ++e) {
      VertexId v;
      if (targets.empty() || rng.NextBernoulli(0.05)) {
        // Small uniform escape keeps the graph from being a star chain.
        v = static_cast<VertexId>(rng.NextBounded(u));
      } else {
        v = targets[rng.NextBounded(targets.size())];
      }
      if (v == u) v = (v + 1) % std::max<VertexId>(u, 1);
      // Mostly citation-style (new -> old) edges: out-degree stays bounded
      // by `out_degree` while in-degree is power-law. A small reversed
      // fraction keeps the graph cyclic (fraud-style cycles exist) without
      // collapsing k-hop in-neighborhoods to the whole graph.
      if (rng.NextBernoulli(0.15)) {
        builder.AddEdge(v, u);
      } else {
        builder.AddEdge(u, v);
      }
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return builder.Build();
}

StatusOr<Graph> GenerateRMat(uint32_t scale, uint64_t m, double a, double b,
                             double c, Rng& rng) {
  if (scale == 0 || scale > 31) {
    return Status::InvalidArgument("RMat scale must be in [1, 31]");
  }
  double d = 1.0 - a - b - c;
  if (a < 0 || b < 0 || c < 0 || d < 0) {
    return Status::InvalidArgument("RMat probabilities must be >= 0, sum <= 1");
  }
  const VertexId n = static_cast<VertexId>(1u) << scale;
  GraphBuilder builder(n);
  builder.Reserve(m);
  for (uint64_t e = 0; e < m; ++e) {
    VertexId u = 0, v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      double r = rng.NextDouble();
      // Slight per-level noise avoids the artificial staircase R-MAT
      // produces with fixed quadrant probabilities.
      double aa = a * (0.95 + 0.1 * rng.NextDouble());
      double bb = b * (0.95 + 0.1 * rng.NextDouble());
      double cc = c * (0.95 + 0.1 * rng.NextDouble());
      double norm = aa + bb + cc + d * (0.95 + 0.1 * rng.NextDouble());
      aa /= norm;
      bb /= norm;
      cc /= norm;
      u <<= 1;
      v <<= 1;
      if (r < aa) {
        // top-left quadrant: no bits set.
      } else if (r < aa + bb) {
        v |= 1;
      } else if (r < aa + bb + cc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) builder.AddEdge(u, v);
  }
  return builder.Build();
}

StatusOr<Graph> GenerateSmallWorld(VertexId n, uint32_t k_out,
                                   double rewire_p, Rng& rng) {
  if (n < 3 || k_out == 0 || k_out >= n) {
    return Status::InvalidArgument("SmallWorld needs n >= 3, 0 < k_out < n");
  }
  if (rewire_p < 0 || rewire_p > 1) {
    return Status::InvalidArgument("SmallWorld rewire_p must be in [0, 1]");
  }
  GraphBuilder builder(n);
  builder.Reserve(static_cast<uint64_t>(n) * k_out);
  for (VertexId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= k_out; ++j) {
      VertexId v = (u + j) % n;
      if (rng.NextBernoulli(rewire_p)) {
        v = static_cast<VertexId>(rng.NextBounded(n));
        if (v == u) v = (v + 1) % n;
      }
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

StatusOr<Graph> GenerateGrid(uint32_t rows, uint32_t cols) {
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument("Grid needs rows, cols >= 1");
  }
  uint64_t n64 = static_cast<uint64_t>(rows) * cols;
  if (n64 >= kInvalidVertex) return Status::OutOfRange("Grid too large");
  GraphBuilder builder(static_cast<VertexId>(n64));
  auto id = [cols](uint32_t r, uint32_t c) {
    return static_cast<VertexId>(r) * cols + c;
  };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return builder.Build();
}

StatusOr<Graph> GenerateComplete(VertexId n) {
  if (n < 2) return Status::InvalidArgument("Complete needs n >= 2");
  if (n > 4096) {
    return Status::InvalidArgument("Complete graph capped at n = 4096");
  }
  GraphBuilder builder(n);
  builder.Reserve(static_cast<uint64_t>(n) * (n - 1));
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

StatusOr<Graph> GeneratePath(VertexId n) {
  if (n < 2) return Status::InvalidArgument("Path needs n >= 2");
  GraphBuilder builder(n);
  for (VertexId u = 0; u + 1 < n; ++u) builder.AddEdge(u, u + 1);
  return builder.Build();
}

StatusOr<Graph> GenerateCycle(VertexId n) {
  if (n < 2) return Status::InvalidArgument("Cycle needs n >= 2");
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) builder.AddEdge(u, (u + 1) % n);
  return builder.Build();
}

StatusOr<Graph> GenerateLayeredDag(uint32_t layers, uint32_t width,
                                   uint32_t fanout, Rng& rng) {
  if (layers < 2 || width == 0 || fanout == 0) {
    return Status::InvalidArgument(
        "LayeredDag needs layers >= 2, width > 0, fanout > 0");
  }
  uint64_t n64 = static_cast<uint64_t>(layers) * width;
  if (n64 >= kInvalidVertex) return Status::OutOfRange("LayeredDag too large");
  GraphBuilder builder(static_cast<VertexId>(n64));
  uint32_t eff_fanout = std::min(fanout, width);
  for (uint32_t layer = 0; layer + 1 < layers; ++layer) {
    for (uint32_t i = 0; i < width; ++i) {
      VertexId u = layer * width + i;
      auto picks = rng.SampleWithoutReplacement(width, eff_fanout);
      for (uint64_t p : picks) {
        builder.AddEdge(u, (layer + 1) * width + static_cast<VertexId>(p));
      }
    }
  }
  return builder.Build();
}

}  // namespace hcpath
