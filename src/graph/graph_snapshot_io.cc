#include "graph/graph_snapshot_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <memory>
#include <vector>

#include "graph/graph_builder.h"

namespace hcpath {

namespace {

constexpr uint64_t kSnapshotMagic = 0x3150414E53504348ULL;  // "HCPSNAP1" LE
constexpr uint32_t kSnapshotFormatVersion = 1;
constexpr uint64_t kEndianMarker = 0x0102030405060708ULL;
constexpr size_t kSectionAlign = 64;

constexpr size_t AlignUp(size_t x) {
  return (x + (kSectionAlign - 1)) & ~(kSectionAlign - 1);
}

// Header mirror of the byte layout documented in graph_snapshot_io.h.
// Packed 8/4-byte fields at naturally aligned offsets — static_asserts
// below pin the layout so the documented offsets can't drift.
struct SnapshotHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t flags;
  uint64_t endian;
  uint64_t num_vertices;
  uint64_t num_edges;
  uint64_t epoch;
  uint64_t payload_bytes;
  uint64_t reserved;
  uint64_t payload_checksum;
  uint64_t header_checksum;
};
static_assert(offsetof(SnapshotHeader, magic) == kSnapshotMagicOffset);
static_assert(offsetof(SnapshotHeader, version) == kSnapshotVersionOffset);
static_assert(offsetof(SnapshotHeader, endian) == kSnapshotEndianOffset);
static_assert(offsetof(SnapshotHeader, num_vertices) ==
              kSnapshotNumVerticesOffset);
static_assert(offsetof(SnapshotHeader, num_edges) == kSnapshotNumEdgesOffset);
static_assert(offsetof(SnapshotHeader, epoch) == kSnapshotEpochOffset);
static_assert(offsetof(SnapshotHeader, payload_bytes) ==
              kSnapshotPayloadBytesOffset);
static_assert(offsetof(SnapshotHeader, payload_checksum) ==
              kSnapshotPayloadChecksumOffset);
static_assert(offsetof(SnapshotHeader, header_checksum) ==
              kSnapshotHeaderChecksumOffset);
static_assert(sizeof(SnapshotHeader) == 80);

struct SectionLayout {
  size_t out_offsets_pos;
  size_t out_adj_pos;
  size_t in_offsets_pos;
  size_t in_adj_pos;
  size_t offsets_bytes;  ///< per offsets section: 8*(n+1)
  size_t adj_bytes;      ///< per adjacency section: 4*m
  size_t payload_bytes;  ///< total from kSnapshotHeaderBytes to EOF
};

// Overflow-safe section layout for validated (n, m). Callers must have
// bounded n and m against the file size first.
SectionLayout ComputeLayout(uint64_t n, uint64_t m) {
  SectionLayout l{};
  l.offsets_bytes = static_cast<size_t>(n + 1) * sizeof(uint64_t);
  l.adj_bytes = static_cast<size_t>(m) * sizeof(VertexId);
  l.out_offsets_pos = kSnapshotHeaderBytes;
  l.out_adj_pos = AlignUp(l.out_offsets_pos + l.offsets_bytes);
  l.in_offsets_pos = AlignUp(l.out_adj_pos + l.adj_bytes);
  l.in_adj_pos = AlignUp(l.in_offsets_pos + l.offsets_bytes);
  l.payload_bytes =
      AlignUp(l.in_adj_pos + l.adj_bytes) - kSnapshotHeaderBytes;
  return l;
}

/// RAII owner of the mmapped file region; the loaded Graph pins it via an
/// aliasing shared_ptr, so the mapping lives exactly as long as the last
/// Graph copy reading it.
class MappedRegion {
 public:
  MappedRegion(void* addr, size_t len) : addr_(addr), len_(len) {}
  ~MappedRegion() {
    if (addr_ != nullptr) ::munmap(addr_, len_);
  }
  MappedRegion(const MappedRegion&) = delete;
  MappedRegion& operator=(const MappedRegion&) = delete;
  const std::byte* data() const {
    return static_cast<const std::byte*>(addr_);
  }

 private:
  void* addr_;
  size_t len_;
};

Status WriteSection(std::ofstream& out, const void* data, size_t bytes,
                    size_t end_pad) {
  static const char kZeros[kSectionAlign] = {};
  if (bytes > 0) out.write(static_cast<const char*>(data), bytes);
  if (end_pad > 0) out.write(kZeros, end_pad);
  if (!out) return Status::IOError("short write while saving snapshot");
  return Status::OK();
}

}  // namespace

uint64_t Checksum64(const void* data, size_t len, uint64_t seed) {
  // Murmur-style: mix whole 64-bit words, fold the tail, avalanche. The
  // length is folded in so that e.g. trailing zero bytes change the sum.
  constexpr uint64_t kMul = 0xC6A4A7935BD1E995ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed ^ (static_cast<uint64_t>(len) * kMul);
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t k;
    std::memcpy(&k, p + i, 8);
    k *= kMul;
    k ^= k >> 47;
    k *= kMul;
    h ^= k;
    h *= kMul;
  }
  uint64_t tail = 0;
  for (size_t j = len; j > i; --j) tail = (tail << 8) | p[j - 1];
  if (len > i) {
    h ^= tail;
    h *= kMul;
  }
  h ^= h >> 47;
  h *= kMul;
  h ^= h >> 47;
  return h;
}

uint64_t GraphContentChecksum(const Graph& g) {
  if (g.overlay() != nullptr) {
    // Overlay arrays are virtual; fold to a flat CSR and checksum that.
    // Identical edge sets fold to identical arrays (docs/DYNAMIC.md), so
    // the identity is storage-independent.
    Graph flat = GraphBuilder::MergeRebuild(g, UpdateApplyStats{});
    return GraphContentChecksum(flat);
  }
  auto oo = g.OutOffsetsView();
  auto oa = g.OutAdjView();
  auto io = g.InOffsetsView();
  auto ia = g.InAdjView();
  uint64_t h = Checksum64(oo.data(), oo.size_bytes(), 0);
  h = Checksum64(oa.data(), oa.size_bytes(), h);
  h = Checksum64(io.data(), io.size_bytes(), h);
  h = Checksum64(ia.data(), ia.size_bytes(), h);
  return h;
}

Status SaveGraphSnapshot(const Graph& g, const std::string& path,
                         uint64_t epoch, GraphSnapshotInfo* info) {
  if (g.overlay() != nullptr) {
    Graph flat = GraphBuilder::MergeRebuild(g, UpdateApplyStats{});
    return SaveGraphSnapshot(flat, path, epoch, info);
  }
  auto oo = g.OutOffsetsView();
  auto oa = g.OutAdjView();
  auto io = g.InOffsetsView();
  auto ia = g.InAdjView();
  // A default-constructed graph has no arrays at all; serialize it as the
  // canonical empty CSR (n = 0: one zero offset per direction) so every
  // snapshot round-trips to a structurally valid graph.
  static const uint64_t kZeroOffset = 0;
  if (oo.empty()) {
    oo = {&kZeroOffset, 1};
    io = {&kZeroOffset, 1};
  }
  const uint64_t n = oo.size() - 1;
  const uint64_t m = oa.size();
  const SectionLayout l = ComputeLayout(n, m);

  SnapshotHeader h{};
  h.magic = kSnapshotMagic;
  h.version = kSnapshotFormatVersion;
  h.flags = 0;
  h.endian = kEndianMarker;
  h.num_vertices = n;
  h.num_edges = m;
  h.epoch = epoch;
  h.payload_bytes = l.payload_bytes;
  h.reserved = 0;
  uint64_t payload = Checksum64(oo.data(), oo.size_bytes(), 0);
  payload = Checksum64(oa.data(), oa.size_bytes(), payload);
  payload = Checksum64(io.data(), io.size_bytes(), payload);
  payload = Checksum64(ia.data(), ia.size_bytes(), payload);
  h.payload_checksum = payload;
  h.header_checksum = Checksum64(&h, kSnapshotHeaderChecksumOffset, 0);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open snapshot for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  static const char kZeros[kSectionAlign] = {};
  out.write(kZeros, kSnapshotHeaderBytes - sizeof(h));
  HCPATH_RETURN_NOT_OK(WriteSection(out, oo.data(), oo.size_bytes(),
                                    l.out_adj_pos - l.out_offsets_pos -
                                        l.offsets_bytes));
  HCPATH_RETURN_NOT_OK(WriteSection(out, oa.data(), oa.size_bytes(),
                                    l.in_offsets_pos - l.out_adj_pos -
                                        l.adj_bytes));
  HCPATH_RETURN_NOT_OK(WriteSection(out, io.data(), io.size_bytes(),
                                    l.in_adj_pos - l.in_offsets_pos -
                                        l.offsets_bytes));
  HCPATH_RETURN_NOT_OK(WriteSection(
      out, ia.data(), ia.size_bytes(),
      kSnapshotHeaderBytes + l.payload_bytes - l.in_adj_pos - l.adj_bytes));
  out.flush();
  if (!out) return Status::IOError("short write while saving snapshot");
  if (info != nullptr) {
    *info = {epoch, n, m, payload,
             static_cast<uint64_t>(kSnapshotHeaderBytes + l.payload_bytes)};
  }
  return Status::OK();
}

namespace {

/// Reads and fully validates the header against the real file size.
/// Nothing downstream (allocation, mmap length, span construction) uses a
/// header field this function hasn't bounded — that is the contract the
/// corruption tests lock.
Status ValidateHeader(const std::string& path, const SnapshotHeader& h,
                      uint64_t file_bytes, SectionLayout* layout) {
  const uint64_t expect =
      Checksum64(&h, kSnapshotHeaderChecksumOffset, 0);
  if (h.magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a graph snapshot (bad magic): " +
                                   path);
  }
  if (h.header_checksum != expect) {
    return Status::InvalidArgument("snapshot header checksum mismatch: " +
                                   path);
  }
  if (h.endian != kEndianMarker) {
    return Status::InvalidArgument(
        "snapshot written with different byte order: " + path);
  }
  if (h.version != kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot format version " + std::to_string(h.version) +
        ": " + path);
  }
  if (h.flags != 0 || h.reserved != 0) {
    return Status::InvalidArgument("snapshot reserved fields nonzero: " +
                                   path);
  }
  // Bound n and m by what the payload could physically hold BEFORE
  // computing the layout, so hostile counts can't overflow the layout
  // arithmetic or size an allocation/mapping.
  if (h.num_vertices >= kInvalidVertex) {
    return Status::InvalidArgument("snapshot vertex count too large: " +
                                   path);
  }
  const uint64_t payload_avail =
      file_bytes > kSnapshotHeaderBytes ? file_bytes - kSnapshotHeaderBytes
                                        : 0;
  if (h.num_vertices + 1 > payload_avail / sizeof(uint64_t) ||
      h.num_edges > payload_avail / sizeof(VertexId)) {
    return Status::InvalidArgument(
        "snapshot header counts exceed file size (truncated or oversized "
        "header): " +
        path);
  }
  const SectionLayout l = ComputeLayout(h.num_vertices, h.num_edges);
  if (h.payload_bytes != l.payload_bytes ||
      file_bytes != kSnapshotHeaderBytes + l.payload_bytes) {
    return Status::InvalidArgument(
        "snapshot size inconsistent with header counts (truncated or "
        "oversized header): " +
        path);
  }
  *layout = l;
  return Status::OK();
}

}  // namespace

StatusOr<Graph> LoadGraphSnapshot(const std::string& path,
                                  const GraphSnapshotLoadOptions& options,
                                  GraphSnapshotInfo* info) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open snapshot: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat snapshot: " + path + " (" +
                           std::strerror(err) + ")");
  }
  const uint64_t file_bytes = static_cast<uint64_t>(st.st_size);
  if (file_bytes < kSnapshotHeaderBytes) {
    ::close(fd);
    return Status::InvalidArgument("snapshot file too small: " + path);
  }
  SnapshotHeader h;
  ssize_t got = ::pread(fd, &h, sizeof(h), 0);
  if (got != static_cast<ssize_t>(sizeof(h))) {
    ::close(fd);
    return Status::IOError("cannot read snapshot header: " + path);
  }
  SectionLayout l;
  Status st_hdr = ValidateHeader(path, h, file_bytes, &l);
  if (!st_hdr.ok()) {
    ::close(fd);
    return st_hdr;
  }

  void* addr = ::mmap(nullptr, static_cast<size_t>(file_bytes), PROT_READ,
                      MAP_PRIVATE, fd, 0);
  // The mapping keeps its own reference to the inode; the fd is not
  // needed afterwards.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError("mmap failed for snapshot: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  auto region = std::make_shared<MappedRegion>(
      addr, static_cast<size_t>(file_bytes));
  const std::byte* base = region->data();

  const uint64_t n = h.num_vertices;
  const uint64_t m = h.num_edges;
  std::span<const uint64_t> oo{
      reinterpret_cast<const uint64_t*>(base + l.out_offsets_pos),
      static_cast<size_t>(n + 1)};
  std::span<const VertexId> oa{
      reinterpret_cast<const VertexId*>(base + l.out_adj_pos),
      static_cast<size_t>(m)};
  std::span<const uint64_t> io{
      reinterpret_cast<const uint64_t*>(base + l.in_offsets_pos),
      static_cast<size_t>(n + 1)};
  std::span<const VertexId> ia{
      reinterpret_cast<const VertexId*>(base + l.in_adj_pos),
      static_cast<size_t>(m)};

  if (options.verify) {
    uint64_t payload = Checksum64(oo.data(), oo.size_bytes(), 0);
    payload = Checksum64(oa.data(), oa.size_bytes(), payload);
    payload = Checksum64(io.data(), io.size_bytes(), payload);
    payload = Checksum64(ia.data(), ia.size_bytes(), payload);
    if (payload != h.payload_checksum) {
      return Status::InvalidArgument("snapshot payload checksum mismatch: " +
                                     path);
    }
    // Structural invariants the Graph constructor would otherwise CHECK
    // (abort) on: offsets monotone from 0 to m, adjacency ids in range.
    for (auto [offsets, name] :
         {std::pair{oo, "out"}, std::pair{io, "in"}}) {
      if (offsets.front() != 0 || offsets.back() != m) {
        return Status::InvalidArgument(
            std::string("snapshot ") + name + "-offsets corrupt: " + path);
      }
      for (size_t i = 0; i + 1 < offsets.size(); ++i) {
        if (offsets[i] > offsets[i + 1]) {
          return Status::InvalidArgument(
              std::string("snapshot ") + name +
              "-offsets not monotone: " + path);
        }
      }
    }
    for (auto adj : {oa, ia}) {
      for (VertexId v : adj) {
        if (v >= n) {
          return Status::InvalidArgument(
              "snapshot adjacency id out of range: " + path);
        }
      }
    }
  } else {
    // Trusted open: still refuse layouts the Graph ctor would abort on.
    if (oo.front() != 0 || oo.back() != m || io.front() != 0 ||
        io.back() != m) {
      return Status::InvalidArgument("snapshot offsets corrupt: " + path);
    }
  }

  if (info != nullptr) {
    *info = {h.epoch, n, m, h.payload_checksum, file_bytes};
  }
  // Aliasing shared_ptr: the Graph pins the whole mapped region.
  std::shared_ptr<const void> storage(region, base);
  return Graph(std::move(storage), oo, oa, io, ia);
}

StatusOr<GraphSnapshotInfo> ReadGraphSnapshotInfo(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open snapshot: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat snapshot: " + path + " (" +
                           std::strerror(err) + ")");
  }
  const uint64_t file_bytes = static_cast<uint64_t>(st.st_size);
  SnapshotHeader h;
  const bool header_read =
      file_bytes >= kSnapshotHeaderBytes &&
      ::pread(fd, &h, sizeof(h), 0) == static_cast<ssize_t>(sizeof(h));
  ::close(fd);
  if (file_bytes < kSnapshotHeaderBytes) {
    return Status::InvalidArgument("snapshot file too small: " + path);
  }
  if (!header_read) {
    return Status::IOError("cannot read snapshot header: " + path);
  }
  SectionLayout l;
  HCPATH_RETURN_NOT_OK(ValidateHeader(path, h, file_bytes, &l));
  return GraphSnapshotInfo{h.epoch, h.num_vertices, h.num_edges,
                           h.payload_checksum, file_bytes};
}

}  // namespace hcpath
