#include "graph/graph_remap.h"

#include <algorithm>
#include <numeric>

namespace hcpath {

namespace {

/// BFS visit order over the out-adjacency, seeding unreached vertices in
/// ascending original id. Wholly deterministic: seeds and neighbor
/// expansion both follow original-id order.
std::vector<VertexId> BfsOrder(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<uint8_t> seen(n, 0);
  for (VertexId seed = 0; seed < n; ++seed) {
    if (seen[seed]) continue;
    seen[seed] = 1;
    size_t head = order.size();
    order.push_back(seed);
    // order doubles as the BFS queue: everything from `head` on is the
    // frontier of this component.
    while (head < order.size()) {
      const VertexId u = order[head++];
      for (VertexId w : g.OutNeighbors(u)) {
        if (!seen[w]) {
          seen[w] = 1;
          order.push_back(w);
        }
      }
    }
  }
  return order;
}

/// Descending total degree, ties in ascending original id: hot hub rows
/// compact at the low end of the stamp table and the CSR.
std::vector<VertexId> DegreeOrder(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return g.OutDegree(a) + g.InDegree(a) > g.OutDegree(b) + g.InDegree(b);
  });
  return order;
}

}  // namespace

GraphRemap GraphRemap::Build(const Graph& g, RemapMode mode) {
  GraphRemap remap;
  if (mode == RemapMode::kNone) return remap;

  // to_original[new_id] == original id, in the chosen visit order.
  std::vector<VertexId> to_original =
      mode == RemapMode::kBfs ? BfsOrder(g) : DegreeOrder(g);
  const VertexId n = g.NumVertices();
  remap.to_new_.resize(n);
  for (VertexId x = 0; x < n; ++x) remap.to_new_[to_original[x]] = x;

  // Rebuild both CSR sides under the permutation. Each list is the mapped
  // image of the original (sorted-by-original-id) list — NOT re-sorted —
  // which is what keeps every traversal order invariant.
  std::vector<uint64_t> out_offsets(n + 1, 0), in_offsets(n + 1, 0);
  std::vector<VertexId> out_adj, in_adj;
  out_adj.reserve(g.NumEdges());
  in_adj.reserve(g.NumEdges());
  for (VertexId x = 0; x < n; ++x) {
    const VertexId orig = to_original[x];
    for (VertexId w : g.OutNeighbors(orig)) {
      out_adj.push_back(remap.to_new_[w]);
    }
    out_offsets[x + 1] = out_adj.size();
    for (VertexId w : g.InNeighbors(orig)) {
      in_adj.push_back(remap.to_new_[w]);
    }
    in_offsets[x + 1] = in_adj.size();
  }
  remap.remapped_ = Graph(std::move(out_offsets), std::move(out_adj),
                          std::move(in_offsets), std::move(in_adj));
  remap.remapped_.SetOriginalIds(std::move(to_original));
  return remap;
}

}  // namespace hcpath
