#ifndef HCPATH_GRAPH_DELTA_OVERLAY_H_
#define HCPATH_GRAPH_DELTA_OVERLAY_H_

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace hcpath {

/// Patch tables layered over a flat base CSR, making a small update batch
/// cost O(touched) instead of the O(|E|) full rebuild (docs/DYNAMIC.md).
///
/// Representation: per direction, an open-addressing table mapping each
/// *touched* vertex to its fully materialized patched neighbor list
/// (base minus removed plus added, sorted by vertex id). Neighbor lookup
/// probes the table; a miss falls through to the base CSR span. Because
/// every patched list is exactly the list a from-scratch rebuild would
/// produce for that vertex, iteration order is *structurally identical*
/// to the rebuilt CSR — the update-interleaved fuzz oracle
/// (`Edges() == rebuilt`) holds by construction, per vertex.
///
/// Chains are flattened: every overlay in a chain points at the same flat
/// base graph and carries the cumulative patch set since the last
/// compaction point, so lookup cost never grows with chain depth and
/// retired intermediate snapshots free their tables independently.
///
/// Patched lists live in an append-only chunk pool shared by the whole
/// chain: chunk addresses are stable, so an extend appends its re-merged
/// lists without copying (or invalidating) any prior snapshot's lists.
/// Only the slot table is carried forward — verbatim when capacity
/// allows, re-hashed once on growth — so per-extend work is the batch's
/// touched vertices plus one sequential table copy bounded by the
/// compaction threshold. A re-merged vertex's superseded list bytes stay
/// dead in the pool until compaction; MemoryBytes counts them.
class DeltaOverlay {
 public:
  using Edge = std::pair<VertexId, VertexId>;

  /// Builds the overlay for one more update batch. `base` must be a flat
  /// (non-overlay) graph; `prior` is the overlay being extended (nullptr
  /// starts a new chain directly over `base`). `adds` / `removes` are the
  /// batch's *effective* edge deltas relative to the prior view — the
  /// last-wins-collapsed, no-op-free lists GraphBuilder::ClassifyUpdates
  /// produces, sorted by (tail, head). The in-direction deltas are
  /// derived internally. `out_tail_views`, when non-empty, is the
  /// classifier's already-resolved pre-update out-neighbor span per
  /// distinct tail (UpdateApplyStats::tail_views): the forward side then
  /// merges from those spans instead of re-probing the prior tables.
  /// Concurrent Extend calls on the same chain must be externally
  /// serialized (GraphStore's update lock does); readers of prior
  /// snapshots are never disturbed — the shared pool only grows.
  static std::shared_ptr<const DeltaOverlay> Extend(
      std::shared_ptr<const Graph> base, const DeltaOverlay* prior,
      const std::vector<Edge>& adds, const std::vector<Edge>& removes,
      std::span<const std::span<const VertexId>> out_tail_views = {});

  VertexId num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return num_edges_; }

  /// Update batches folded into this overlay since the flat base.
  uint64_t depth() const { return depth_; }
  /// Cumulative effective adds + removes since the flat base — the
  /// "overlay size" the GraphStore compaction threshold is measured
  /// against. Repeated toggles of one edge count every time even though
  /// the patch tables stay small; that only compacts earlier, never
  /// later, so read cost stays bounded either way.
  uint64_t delta_edges() const { return delta_edges_; }
  uint64_t patched_vertices() const { return out_.patched + in_.patched; }

  /// The flat base CSR this overlay patches. The shared_ptr keeps the
  /// base snapshot alive for as long as any overlay in the chain is.
  const Graph& base() const { return *base_; }
  const std::shared_ptr<const Graph>& base_ptr() const { return base_; }

  /// Patched neighbor span of v, falling back to the base CSR when v was
  /// never touched since the last compaction.
  std::span<const VertexId> Neighbors(VertexId v, Direction d) const {
    const Side& s = d == Direction::kForward ? out_ : in_;
    size_t i = Hash(v) & s.mask;
    while (true) {
      const Slot& slot = s.table[i];
      if (slot.key == v) return {slot.list, slot.count};
      if (slot.key == kInvalidVertex) break;
      i = (i + 1) & s.mask;
    }
    if (v < base_n_) {
      return d == Direction::kForward ? base_->OutNeighbors(v)
                                      : base_->InNeighbors(v);
    }
    return {};  // introduced by an update; untouched in this direction
  }

  /// Cache hint: pulls v's hash slot line in ahead of a Neighbors probe;
  /// correctness never depends on it.
  void PrefetchSlot(VertexId v, Direction d) const {
    const Side& s = d == Direction::kForward ? out_ : in_;
    __builtin_prefetch(&s.table[Hash(v) & s.mask]);
  }

  /// Bytes of the patch tables and the chain's shared list pool
  /// (including superseded lists) — the flat base CSR is accounted by
  /// its own snapshot.
  uint64_t MemoryBytes() const;

 private:
  struct Slot {
    VertexId key = kInvalidVertex;
    uint32_t count = 0;
    const VertexId* list = nullptr;
  };
  /// One direction's patch set. `table` is a power-of-two open-addressing
  /// array kept under 50% load, so probes terminate on an empty slot.
  struct Side {
    std::vector<Slot> table;
    size_t mask = 0;
    uint64_t patched = 0;
  };
  /// Append-only arena holding every patched list of a chain. Chunk
  /// addresses are stable across growth, so slots in retired snapshots
  /// stay valid while later extends append. Writers are serialized by
  /// the store's update lock; a snapshot's lists are fully written
  /// before the snapshot is published, and readers only follow slots
  /// reachable from their own (already published) table.
  struct Pool {
    static constexpr size_t kChunkEntries = size_t{1} << 16;
    std::vector<std::unique_ptr<VertexId[]>> chunks;
    VertexId* cur = nullptr;
    size_t left = 0;
    uint64_t entries = 0;  ///< cumulative, including superseded lists

    VertexId* Alloc(size_t n);
    /// Returns the unused tail of the most recent Alloc (merges allocate
    /// at the per-vertex upper bound, then give back what the removes
    /// freed). Always within the current chunk: Alloc never splits a
    /// request across chunks.
    void Unalloc(size_t n) {
      entries -= n;
      cur -= n;
      left += n;
    }
  };

  static size_t Hash(VertexId v) {
    uint64_t x = v;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }

  /// Builds one direction: prior slot table carried forward, touched
  /// vertices re-merged against the prior view (prior patch, else base)
  /// into pool-allocated lists. `tail_views`, when non-empty, supplies
  /// the prior view of each touched tail (one per distinct tail, tail
  /// order) and suppresses the probe that would otherwise resolve it.
  void BuildSide(Direction dir, const Side* prior_side,
                 const std::vector<Edge>& adds,
                 const std::vector<Edge>& removes,
                 std::span<const std::span<const VertexId>> tail_views,
                 Pool* pool, Side* out) const;

  DeltaOverlay() = default;

  std::shared_ptr<const Graph> base_;
  std::shared_ptr<Pool> pool_;  ///< shared by every overlay in the chain
  VertexId base_n_ = 0;
  VertexId num_vertices_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t depth_ = 0;
  uint64_t delta_edges_ = 0;
  Side out_;
  Side in_;
};

}  // namespace hcpath

#endif  // HCPATH_GRAPH_DELTA_OVERLAY_H_
