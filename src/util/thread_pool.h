#ifndef HCPATH_UTIL_THREAD_POOL_H_
#define HCPATH_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hcpath {

/// Work-stealing thread pool backing the parallel batch engines
/// (docs/PARALLELISM.md). Each worker owns a deque: it pushes and pops its
/// own tasks LIFO (cache-warm) and steals FIFO from siblings when empty, so
/// skewed workloads (one giant cluster among many small ones) keep every
/// core busy without a contended central queue.
///
/// Blocking waits (`ParallelFor`) lend the calling thread to the pool: the
/// caller drains queued tasks instead of sleeping, which both adds a worker
/// and makes nested ParallelFor calls from inside a task deadlock-free.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(size_t num_threads = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Enqueues one fire-and-forget task (round-robin across worker deques;
  /// a worker submitting from inside a task pushes to its own deque).
  void Submit(std::function<void()> fn);

  /// Runs fn(0), ..., fn(n - 1) across the pool and the calling thread,
  /// returning when all have finished. If any invocations throw, the
  /// exception of the lowest index is rethrown (deterministic regardless of
  /// scheduling). Runs inline when the pool has no workers or n <= 1.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Pops and runs one queued task if any is available; used by blocked
  /// callers to help instead of sleeping. Returns false when idle.
  bool TryRunOneTask();

  /// Resolves a user-facing thread count: 0 = hardware_concurrency
  /// (minimum 1), otherwise the requested value.
  static size_t EffectiveThreads(int requested);

  /// Process-wide shared pool with `num_workers` workers, created lazily
  /// and reused across calls (rebuilding only when a different size is
  /// requested), so engines don't pay thread spawn/join per batch.
  /// Concurrent holders of the same pool simply interleave their tasks.
  static std::shared_ptr<ThreadPool> Shared(size_t num_workers);

  /// Resolves BatchOptions::num_threads into an engine pool: nullptr for a
  /// single-threaded run (num_threads == 1, or one hardware thread), else
  /// the shared pool with one worker fewer than the target — the
  /// ParallelFor caller works too, so N compute threads = N - 1 workers
  /// plus the calling thread.
  static std::shared_ptr<ThreadPool> ForNumThreads(int num_threads);

 private:
  struct TaskQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  /// Pops from queue `qi`: back for the owner (LIFO), front for a thief.
  bool Pop(size_t qi, bool owner, std::function<void()>* out);
  /// One scan over all queues starting at `home`; true if a task ran.
  bool RunOneFrom(size_t home);

  std::vector<std::unique_ptr<TaskQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<uint64_t> pending_{0};
  std::atomic<uint64_t> next_queue_{0};
  bool stop_ = false;  // guarded by wake_mu_
};

}  // namespace hcpath

#endif  // HCPATH_UTIL_THREAD_POOL_H_
