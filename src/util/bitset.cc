#include "util/bitset.h"

#include <algorithm>

#include "util/logging.h"

namespace hcpath {

void DynamicBitset::Resize(size_t num_bits) {
  num_bits_ = num_bits;
  words_.assign((num_bits + 63) / 64, 0);
}

void DynamicBitset::Reset() {
  std::fill(words_.begin(), words_.end(), 0);
}

size_t DynamicBitset::Count() const {
  size_t c = 0;
  for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
  return c;
}

bool DynamicBitset::Any() const {
  for (uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

void DynamicBitset::UnionWith(const DynamicBitset& other) {
  HCPATH_CHECK_EQ(num_bits_, other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void DynamicBitset::IntersectWith(const DynamicBitset& other) {
  HCPATH_CHECK_EQ(num_bits_, other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

}  // namespace hcpath
