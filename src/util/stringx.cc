#include "util/stringx.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hcpath {

std::vector<std::string_view> Split(std::string_view s, char sep,
                                    bool keep_empty) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) pos = s.size();
    std::string_view field = s.substr(start, pos - start);
    if (keep_empty || !field.empty()) out.push_back(field);
    if (pos == s.size()) break;
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

StatusOr<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("bad integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

StatusOr<uint64_t> ParseUint64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer");
  if (s[0] == '-') return Status::InvalidArgument("negative unsigned");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("bad integer: " + buf);
  }
  return static_cast<uint64_t>(v);
}

StatusOr<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty double");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("double overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("bad double: " + buf);
  }
  return v;
}

std::string FormatWithCommas(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i >= lead && (i - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[u]);
  }
  return buf;
}

}  // namespace hcpath
