#ifndef HCPATH_UTIL_EPOCH_STAMP_H_
#define HCPATH_UTIL_EPOCH_STAMP_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace hcpath {

/// Dense O(1) membership table for vertex ids, cleared by bumping an epoch
/// instead of zeroing storage (docs/PERF.md). A slot is "marked" iff its
/// stamp equals the current epoch, so
///
///   * Clear()    is O(1): one increment forgets every mark;
///   * Mark(v)    is one store (plus amortized growth past the high id);
///   * Contains(v) is one bounds check + one load;
///   * Unmark(v)  is one store of 0 (the epoch is never 0, see below).
///
/// This replaces the per-membership-test linear scans of the enumeration
/// hot loops (DFS on-path test, splice/join disjointness) with stamp
/// lookups whose cost is independent of the path length.
///
/// Epoch wraparound: epochs live in [1, UINT32_MAX]. When the increment
/// in Clear() wraps to 0, the storage is re-zeroed and the epoch restarts
/// at 1 — every stale stamp from the previous epoch cycle is erased before
/// any epoch value can repeat, so a mark from 2^32 clears ago can never
/// resurface. Unmark() writes stamp 0, which no live epoch ever equals.
///
/// Not thread-safe; lease one table per concurrent kernel (ScratchPool).
class EpochStampTable {
 public:
  EpochStampTable() = default;

  /// Forgets every mark in O(1). Storage and capacity are retained.
  void Clear() {
    if (++epoch_ == 0) WrapEpoch();
  }

  /// Marks `v`; returns true iff it was not already marked. Grows the
  /// table geometrically when `v` is past the current capacity.
  bool Mark(uint32_t v) {
    if (v >= stamp_.size()) Grow(v);
    if (stamp_[v] == epoch_) return false;
    stamp_[v] = epoch_;
    return true;
  }

  /// Removes a mark set in the current epoch (DFS pop).
  void Unmark(uint32_t v) {
    HCPATH_DCHECK(v < stamp_.size());
    stamp_[v] = 0;
  }

  bool Contains(uint32_t v) const {
    return v < stamp_.size() && stamp_[v] == epoch_;
  }

  /// Batched membership: true iff any vertex of `vs` is marked in the
  /// current epoch — exactly `vs` reduced over Contains(). Spans of 8+
  /// dispatch to an AVX2 gather kernel (8 stamps per iteration) when the
  /// CPU supports it; otherwise (and for the tail) an unrolled scalar loop
  /// runs. Both kernels compute the same predicate, so callers never
  /// observe which one ran; HCPATH_FORCE_SCALAR=1 pins the scalar oracle.
  bool TestAny(std::span<const uint32_t> vs) const;

  /// Batched membership, element-wise: hits[i] = Contains(vs[i]) (0 or 1)
  /// for every i. `hits` must have room for vs.size() bytes. Same kernel
  /// dispatch and equivalence contract as TestAny.
  void TestBatch(std::span<const uint32_t> vs, uint8_t* hits) const;

  /// Whole-run membership: hits[i] = TestAny(spans[i]) (0 or 1) for every
  /// span. `hits` must have room for spans.size() bytes. One call probes a
  /// full run of candidates, so the kernel dispatch and (on the SIMD path)
  /// the broadcast constants are paid once per run instead of once per
  /// candidate — the join probes each equal-midpoint bucket run this way.
  /// Same equivalence contract as TestAny.
  void TestAnySpans(std::span<const std::span<const uint32_t>> spans,
                    uint8_t* hits) const;

  /// True when the batched probes dispatch to the AVX2 gather kernel
  /// (CPU support present, not forced scalar). Informational: the scalar
  /// fallback computes identical results.
  static bool UsingSimd();

  /// Test/bench hook for the kernel dispatch: 1 forces the scalar
  /// fallback, 0 allows SIMD regardless of HCPATH_FORCE_SCALAR, -1
  /// restores the default (env var + CPU detection).
  static void TestOnlyForceScalar(int mode);

  /// Pre-sizes the table (e.g. to the vertex count) so the marking loops
  /// never hit the growth branch.
  void Reserve(size_t n) {
    if (n > stamp_.size()) stamp_.resize(n, 0);
  }

  size_t capacity() const { return stamp_.size(); }
  uint32_t epoch() const { return epoch_; }

  /// Test hook: jump the epoch counter (e.g. next to UINT32_MAX) to
  /// exercise the wraparound path without 2^32 Clear() calls.
  void TestOnlySetEpoch(uint32_t epoch);

  /// Resolved probe handle for tight loops: captures the table view
  /// (stamp array, size, epoch) and the kernel choice once, so each
  /// TestAny call is a direct jump into the chosen kernel with zero
  /// dispatch logic. Invalidated by anything that can move the storage or
  /// change the epoch — Clear(), Reserve(), or a Mark() of an id at or
  /// past the current capacity — so callers re-resolve after mutating and
  /// only probe through a handle taken afterwards (the join re-resolves
  /// once per forward path, after its restamp).
  class Prober {
   public:
    bool TestAny(std::span<const uint32_t> vs) const {
      return fn_(stamp_, n_, epoch_, vs.data(), vs.size());
    }

   private:
    friend class EpochStampTable;
    using Fn = bool (*)(const uint32_t*, size_t, uint32_t, const uint32_t*,
                        size_t);
    Prober(Fn fn, const uint32_t* stamp, size_t n, uint32_t epoch)
        : fn_(fn), stamp_(stamp), n_(n), epoch_(epoch) {}

    Fn fn_;
    const uint32_t* stamp_;
    size_t n_;
    uint32_t epoch_;
  };

  /// Resolves the kernel (AVX2 gather vs scalar, same rules as TestAny)
  /// against the table's current storage and epoch.
  Prober prober() const;

 private:
  void Grow(uint32_t v);
  void WrapEpoch();

  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 1;
};

/// Thread-safe free list of default-constructed scratch objects, owned by
/// a BatchContext so kernels lease warm scratch (stamp tables with grown
/// storage, join index arrays with grown capacity) instead of
/// reallocating per query. Acquire/Release are mutex-guarded but off the
/// hot path: one pair per kernel invocation, never per vertex.
template <typename T>
class ScratchPool {
 public:
  /// Retention cap. Scratch objects are sized O(|V|) (a byte budget like
  /// SinkPool's would force realloc-and-rezero churn on large graphs), so
  /// retention is bounded by the only number that bounds concurrent
  /// leases instead: the hardware thread count, with headroom for nested
  /// kernels. Everything beyond the cap is freed on Release.
  static size_t MaxPooled() {
    static const size_t cap = std::max<size_t>(
        8, 2 * std::thread::hardware_concurrency());
    return cap;
  }

  ScratchPool() = default;
  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// Returns a scratch object in unspecified (but valid) state; the kernel
  /// clears what it uses. Recycled when one is available.
  T* Acquire() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!free_.empty()) {
        T* t = free_.back().release();
        free_.pop_back();
        return t;
      }
    }
    return new T();
  }

  void Release(T* t) {
    std::lock_guard<std::mutex> lk(mu_);
    if (free_.size() >= MaxPooled()) {
      delete t;
      return;
    }
    free_.emplace_back(t);
  }

  size_t free_count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return free_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<T>> free_;
};

/// RAII lease of one scratch object. With a pool, Acquire/Release bracket
/// the scope; with `pool == nullptr` (direct API callers outside a
/// BatchContext) the lease hands out a per-thread fallback object, which
/// keeps bare RunHalfSearch / JoinAndEmit calls allocation-free in steady
/// state too.
///
/// The fallback is a thread_local singleton, so at most one lease per T
/// may be live on a thread at a time. The enumeration kernels satisfy
/// this by construction: none of them calls back into a kernel that
/// leases the same scratch type while holding its own lease.
template <typename T>
class ScratchLease {
 public:
  explicit ScratchLease(ScratchPool<T>* pool) : pool_(pool) {
    if (pool_ != nullptr) {
      obj_ = pool_->Acquire();
    } else {
      static thread_local T fallback;
      obj_ = &fallback;
    }
  }
  ~ScratchLease() {
    if (pool_ != nullptr) pool_->Release(obj_);
  }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  T& operator*() const { return *obj_; }
  T* operator->() const { return obj_; }
  T* get() const { return obj_; }

 private:
  ScratchPool<T>* pool_;
  T* obj_;
};

using EpochStampPool = ScratchPool<EpochStampTable>;

}  // namespace hcpath

#endif  // HCPATH_UTIL_EPOCH_STAMP_H_
