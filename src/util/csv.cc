#include "util/csv.h"

#include <cstdio>

namespace hcpath {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_.is_open()) {
    status_ = Status::IOError("cannot open for writing: " + path);
  }
}

std::string CsvWriter::ToField(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string CsvWriter::Escape(const std::string& field) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!status_.ok()) return;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << Escape(fields[i]);
  }
  out_ << '\n';
  if (!out_) status_ = Status::IOError("write failed");
}

Status CsvWriter::Close() {
  if (out_.is_open()) {
    out_.flush();
    if (!out_) status_ = Status::IOError("flush failed");
    out_.close();
  }
  return status_;
}

}  // namespace hcpath
