#ifndef HCPATH_UTIL_RNG_H_
#define HCPATH_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hcpath {

/// Deterministic xoshiro256++ PRNG seeded through SplitMix64.
///
/// Every randomized component in hcpath (generators, workloads, samplers)
/// takes an explicit Rng so experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound); bound must be > 0. Uses Lemire's
  /// nearly-divisionless rejection method.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in arbitrary order.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Splits off an independently seeded child stream.
  Rng Split();

 private:
  uint64_t s_[4];
};

}  // namespace hcpath

#endif  // HCPATH_UTIL_RNG_H_
