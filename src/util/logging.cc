#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace hcpath {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  const bool enabled =
      static_cast<int>(level_) >=
      g_min_level.load(std::memory_order_relaxed);
  if (enabled || level_ == LogLevel::kFatal) {
    const auto now = std::chrono::system_clock::now();
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count();
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "[%s %lld.%03lld %s:%d] %s\n", LevelName(level_),
                 static_cast<long long>(ms / 1000),
                 static_cast<long long>(ms % 1000), Basename(file_), line_,
                 stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace hcpath
