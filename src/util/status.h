#ifndef HCPATH_UTIL_STATUS_H_
#define HCPATH_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace hcpath {

/// Error categories used across the library. Mirrors the usual
/// database-engine convention (Arrow/RocksDB style): cheap, exception-free
/// error propagation through return values.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kIOError,
  /// A dependency (shard, replica, backend) is temporarily unreachable —
  /// crashed, restarting, or its reply was lost. Always retryable: the same
  /// request can succeed on another replica or after the dependency heals.
  kUnavailable,
  /// The caller's deadline expired before the request completed. The
  /// request itself may be fine; re-submitting with a fresh deadline can
  /// succeed (classified retryable for that reason).
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Canonical transient/permanent classification (docs/SHARDING.md, "Fault
/// model"): true when re-submitting the identical request later — or against
/// another replica — can plausibly succeed because the failure reflects
/// transient system state (overload, shedding, an unavailable shard, an
/// expired deadline) rather than a property of the request itself.
/// Permanent codes (InvalidArgument, FailedPrecondition, NotFound, ...)
/// deterministically fail again and must not be blindly retried.
bool StatusCodeRetryable(StatusCode code);

/// A Status carries either success (`ok()`) or an error code plus message.
/// All fallible public APIs in hcpath return Status or StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// StatusCodeRetryable(code()): whether the same request may succeed if
  /// re-submitted after the transient condition clears. OK is not
  /// "retryable" (there is nothing to retry).
  bool retryable() const {
    return !ok() && StatusCodeRetryable(code_);
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Holds either a value of type T or an error Status. Modeled after
/// absl::StatusOr / arrow::Result.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from Status by design, matching absl::StatusOr,
  /// so `return value;` and `return Status::...;` both work.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value accessors; callers must check ok() first (enforced in debug
  /// builds by the standard library's optional assertions).
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates errors to the caller: `HCPATH_RETURN_NOT_OK(DoThing());`
#define HCPATH_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::hcpath::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace hcpath

#endif  // HCPATH_UTIL_STATUS_H_
