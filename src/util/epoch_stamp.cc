#include "util/epoch_stamp.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define HCPATH_HAVE_X86 1
#endif

namespace hcpath {

namespace {

// ---------------------------------------------------------------------------
// Batched membership kernels. The scalar variant is the oracle on every
// platform; the AVX2 variant gathers 8 stamps per iteration and must be
// bit-equivalent (tests/kernel_equivalence_test.cc cross-checks them).
// Both take the raw table view (stamp array, size, epoch) so the dispatch
// decision sits in one place and the kernels stay branch-light.
// ---------------------------------------------------------------------------

bool ScalarTestAny(const uint32_t* stamp, size_t n, uint32_t epoch,
                   const uint32_t* vs, size_t m) {
  size_t i = 0;
  // Unrolled by 4: the four loads are independent, so the OoO core overlaps
  // them instead of serializing on the per-element branch.
  for (; i + 4 <= m; i += 4) {
    const bool h0 = vs[i] < n && stamp[vs[i]] == epoch;
    const bool h1 = vs[i + 1] < n && stamp[vs[i + 1]] == epoch;
    const bool h2 = vs[i + 2] < n && stamp[vs[i + 2]] == epoch;
    const bool h3 = vs[i + 3] < n && stamp[vs[i + 3]] == epoch;
    if (h0 | h1 | h2 | h3) return true;
  }
  for (; i < m; ++i) {
    if (vs[i] < n && stamp[vs[i]] == epoch) return true;
  }
  return false;
}

void ScalarTestAnySpans(const uint32_t* stamp, size_t n, uint32_t epoch,
                        const std::span<const uint32_t>* spans, size_t count,
                        uint8_t* hits) {
  for (size_t c = 0; c < count; ++c) {
    hits[c] = ScalarTestAny(stamp, n, epoch, spans[c].data(), spans[c].size());
  }
}

void ScalarTestBatch(const uint32_t* stamp, size_t n, uint32_t epoch,
                     const uint32_t* vs, size_t m, uint8_t* hits) {
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    hits[i] = vs[i] < n && stamp[vs[i]] == epoch;
    hits[i + 1] = vs[i + 1] < n && stamp[vs[i + 1]] == epoch;
    hits[i + 2] = vs[i + 2] < n && stamp[vs[i + 2]] == epoch;
    hits[i + 3] = vs[i + 3] < n && stamp[vs[i + 3]] == epoch;
  }
  for (; i < m; ++i) hits[i] = vs[i] < n && stamp[vs[i]] == epoch;
}

#ifdef HCPATH_HAVE_X86

// Unsigned 32-bit a < b via the signed comparator: flip the sign bit of
// both operands. Out-of-bounds lanes are masked OFF the gather, so they
// never touch memory; their result lanes read the zero source, and the
// epoch is never 0, so they compare "not marked" — exactly Contains().
// The vertex ids themselves may exceed INT32_MAX (ids go up to 2^32 - 2);
// only in-bounds lanes feed the gather's sign-extended index, and the
// dispatch below keeps tables at or under 2^31 slots, so every gathered
// index is non-negative.

__attribute__((target("avx2"))) bool Avx2TestAny(const uint32_t* stamp,
                                                 size_t n, uint32_t epoch,
                                                 const uint32_t* vs,
                                                 size_t m) {
  const __m256i flip = _mm256_set1_epi32(INT32_MIN);
  const __m256i bound =
      _mm256_set1_epi32(static_cast<int32_t>(static_cast<uint32_t>(n)) ^
                        INT32_MIN);
  const __m256i vepoch = _mm256_set1_epi32(static_cast<int32_t>(epoch));
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vs + i));
    const __m256i in_bounds =
        _mm256_cmpgt_epi32(bound, _mm256_xor_si256(v, flip));
    const __m256i got = _mm256_mask_i32gather_epi32(
        zero, reinterpret_cast<const int*>(stamp), v, in_bounds, 4);
    const __m256i hit = _mm256_cmpeq_epi32(got, vepoch);
    if (_mm256_movemask_epi8(hit) != 0) return true;
  }
  for (; i < m; ++i) {
    if (vs[i] < n && stamp[vs[i]] == epoch) return true;
  }
  return false;
}

/// Whole-run TestAny: the broadcast constants live in registers across the
/// candidate loop (one set of set1's per run, not per candidate), and the
/// per-candidate cost collapses to the gathers plus loop control. The tail
/// of a span past one vector is covered by a final vector re-aligned to
/// the span's end — the overlapped lanes re-probe ids already tested,
/// which the any-reduction absorbs — so no span of 8+ ever takes the
/// scalar path; only spans shorter than one vector do.
__attribute__((target("avx2"))) void Avx2TestAnySpans(
    const uint32_t* stamp, size_t n, uint32_t epoch,
    const std::span<const uint32_t>* spans, size_t count, uint8_t* hits) {
  const __m256i flip = _mm256_set1_epi32(INT32_MIN);
  const __m256i bound =
      _mm256_set1_epi32(static_cast<int32_t>(static_cast<uint32_t>(n)) ^
                        INT32_MIN);
  const __m256i vepoch = _mm256_set1_epi32(static_cast<int32_t>(epoch));
  const __m256i zero = _mm256_setzero_si256();
  for (size_t c = 0; c < count; ++c) {
    const uint32_t* vs = spans[c].data();
    const size_t m = spans[c].size();
    bool any = false;
    if (m == 8) {
      // Exactly one gather — the most common batched shape (the join's
      // spans are capped by hb, typically one vector wide), peeled so it
      // pays no loop bookkeeping at all.
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vs));
      const __m256i in_bounds =
          _mm256_cmpgt_epi32(bound, _mm256_xor_si256(v, flip));
      const __m256i got = _mm256_mask_i32gather_epi32(
          zero, reinterpret_cast<const int*>(stamp), v, in_bounds, 4);
      const __m256i hit = _mm256_cmpeq_epi32(got, vepoch);
      any = !_mm256_testz_si256(hit, hit);
    } else if (m > 8) {
      size_t i = 0;
      const size_t last = m - 8;
      while (true) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vs + i));
        const __m256i in_bounds =
            _mm256_cmpgt_epi32(bound, _mm256_xor_si256(v, flip));
        const __m256i got = _mm256_mask_i32gather_epi32(
            zero, reinterpret_cast<const int*>(stamp), v, in_bounds, 4);
        const __m256i hit = _mm256_cmpeq_epi32(got, vepoch);
        if (!_mm256_testz_si256(hit, hit)) {
          any = true;
          break;
        }
        if (i >= last) break;
        i = i + 8 <= last ? i + 8 : last;
      }
    } else {
      for (size_t i = 0; i < m; ++i) {
        if (vs[i] < n && stamp[vs[i]] == epoch) {
          any = true;
          break;
        }
      }
    }
    hits[c] = any;
  }
}

__attribute__((target("avx2"))) void Avx2TestBatch(const uint32_t* stamp,
                                                   size_t n, uint32_t epoch,
                                                   const uint32_t* vs,
                                                   size_t m, uint8_t* hits) {
  const __m256i flip = _mm256_set1_epi32(INT32_MIN);
  const __m256i bound =
      _mm256_set1_epi32(static_cast<int32_t>(static_cast<uint32_t>(n)) ^
                        INT32_MIN);
  const __m256i vepoch = _mm256_set1_epi32(static_cast<int32_t>(epoch));
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vs + i));
    const __m256i in_bounds =
        _mm256_cmpgt_epi32(bound, _mm256_xor_si256(v, flip));
    const __m256i got = _mm256_mask_i32gather_epi32(
        zero, reinterpret_cast<const int*>(stamp), v, in_bounds, 4);
    const __m256i hit = _mm256_cmpeq_epi32(got, vepoch);
    // Narrow the eight 0/-1 lanes to eight 0/1 bytes in lane order:
    // packs(lo, hi) interleaves halves as [lo0..lo3, hi0..hi3], and the
    // saturating packs preserve 0/1 exactly. One 8-byte store per vector
    // beats extracting lanes through a scalar movemask loop.
    const __m256i ones = _mm256_and_si256(hit, _mm256_set1_epi32(1));
    const __m128i packed16 =
        _mm_packs_epi32(_mm256_castsi256_si128(ones),
                        _mm256_extracti128_si256(ones, 1));
    const __m128i packed8 = _mm_packs_epi16(packed16, packed16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(hits + i), packed8);
  }
  for (; i < m; ++i) hits[i] = vs[i] < n && stamp[vs[i]] == epoch;
}

#endif  // HCPATH_HAVE_X86

// Dispatch state. The env var is latched once; the test hook overrides it
// at runtime so one process can exercise (and benchmark) both kernels.
std::atomic<int> g_force_scalar_override{-1};

bool EnvForceScalar() {
  static const bool forced = [] {
    const char* e = std::getenv("HCPATH_FORCE_SCALAR");
    return e != nullptr && e[0] != '\0' &&
           !(e[0] == '0' && e[1] == '\0');
  }();
  return forced;
}

bool SimdSupported() {
#ifdef HCPATH_HAVE_X86
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

inline bool UseSimd(size_t table_size) {
  // Tables past 2^31 slots would sign-flip the gather index; no dataset in
  // the paper comes near that, but the scalar kernel stays correct there.
  if (table_size > static_cast<size_t>(INT32_MAX)) return false;
  const int o = g_force_scalar_override.load(std::memory_order_relaxed);
  if (o > 0) return false;
  if (o == 0) return SimdSupported();
  return SimdSupported() && !EnvForceScalar();
}

}  // namespace

bool EpochStampTable::TestAny(std::span<const uint32_t> vs) const {
#ifdef HCPATH_HAVE_X86
  if (vs.size() >= 8 && UseSimd(stamp_.size())) {
    return Avx2TestAny(stamp_.data(), stamp_.size(), epoch_, vs.data(),
                       vs.size());
  }
#endif
  return ScalarTestAny(stamp_.data(), stamp_.size(), epoch_, vs.data(),
                       vs.size());
}

void EpochStampTable::TestBatch(std::span<const uint32_t> vs,
                                uint8_t* hits) const {
#ifdef HCPATH_HAVE_X86
  if (vs.size() >= 8 && UseSimd(stamp_.size())) {
    Avx2TestBatch(stamp_.data(), stamp_.size(), epoch_, vs.data(), vs.size(),
                  hits);
    return;
  }
#endif
  ScalarTestBatch(stamp_.data(), stamp_.size(), epoch_, vs.data(), vs.size(),
                  hits);
}

void EpochStampTable::TestAnySpans(
    std::span<const std::span<const uint32_t>> spans, uint8_t* hits) const {
#ifdef HCPATH_HAVE_X86
  if (UseSimd(stamp_.size())) {
    Avx2TestAnySpans(stamp_.data(), stamp_.size(), epoch_, spans.data(),
                     spans.size(), hits);
    return;
  }
#endif
  ScalarTestAnySpans(stamp_.data(), stamp_.size(), epoch_, spans.data(),
                     spans.size(), hits);
}

EpochStampTable::Prober EpochStampTable::prober() const {
#ifdef HCPATH_HAVE_X86
  if (UseSimd(stamp_.size())) {
    return Prober(&Avx2TestAny, stamp_.data(), stamp_.size(), epoch_);
  }
#endif
  return Prober(&ScalarTestAny, stamp_.data(), stamp_.size(), epoch_);
}

bool EpochStampTable::UsingSimd() { return UseSimd(0); }

void EpochStampTable::TestOnlyForceScalar(int mode) {
  g_force_scalar_override.store(mode, std::memory_order_relaxed);
}

void EpochStampTable::Grow(uint32_t v) {
  // Geometric growth keeps repeated high-id marks amortized O(1); new
  // slots start at stamp 0, which no live epoch equals.
  const size_t want = static_cast<size_t>(v) + 1;
  stamp_.resize(std::max(want, stamp_.size() * 2), 0);
}

void EpochStampTable::WrapEpoch() {
  // Reached only every 2^32 clears: erase all stale stamps so no epoch
  // value can ever re-match a mark from the previous cycle.
  std::fill(stamp_.begin(), stamp_.end(), 0u);
  epoch_ = 1;
}

void EpochStampTable::TestOnlySetEpoch(uint32_t epoch) {
  HCPATH_CHECK(epoch != 0);
  epoch_ = epoch;
}

}  // namespace hcpath
