#include "util/epoch_stamp.h"

#include <algorithm>

namespace hcpath {

void EpochStampTable::Grow(uint32_t v) {
  // Geometric growth keeps repeated high-id marks amortized O(1); new
  // slots start at stamp 0, which no live epoch equals.
  const size_t want = static_cast<size_t>(v) + 1;
  stamp_.resize(std::max(want, stamp_.size() * 2), 0);
}

void EpochStampTable::WrapEpoch() {
  // Reached only every 2^32 clears: erase all stale stamps so no epoch
  // value can ever re-match a mark from the previous cycle.
  std::fill(stamp_.begin(), stamp_.end(), 0u);
  epoch_ = 1;
}

void EpochStampTable::TestOnlySetEpoch(uint32_t epoch) {
  HCPATH_CHECK(epoch != 0);
  epoch_ = epoch;
}

}  // namespace hcpath
