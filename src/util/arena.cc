#include "util/arena.h"

#include <algorithm>

namespace hcpath {

void* Arena::Allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  if (!chunks_.empty()) {
    Chunk& c = chunks_.back();
    // Align the absolute address, not just the offset: the chunk base is
    // only guaranteed to be new[]-aligned.
    uintptr_t base = reinterpret_cast<uintptr_t>(c.data.get());
    size_t offset =
        ((base + c.used + align - 1) & ~(uintptr_t(align) - 1)) - base;
    if (offset + bytes <= c.capacity) {
      c.used = offset + bytes;
      bytes_allocated_ += bytes;
      return c.data.get() + offset;
    }
  }
  // Need a new chunk; oversized requests get a dedicated chunk.
  size_t cap = std::max(chunk_bytes_, bytes + align);
  Chunk c;
  // Default-init (no value-init): zero-filling megabyte chunks costs more
  // than the allocations they serve; clients write before they read.
  c.data = std::unique_ptr<char[]>(new char[cap]);
  c.capacity = cap;
  bytes_reserved_ += cap;
  chunks_.push_back(std::move(c));
  Chunk& nc = chunks_.back();
  uintptr_t base = reinterpret_cast<uintptr_t>(nc.data.get());
  size_t offset = ((base + align - 1) & ~(uintptr_t(align) - 1)) - base;
  nc.used = offset + bytes;
  bytes_allocated_ += bytes;
  return nc.data.get() + offset;
}

void Arena::Clear() {
  chunks_.clear();
  bytes_allocated_ = 0;
  bytes_reserved_ = 0;
}

void Arena::Rewind() {
  // Allocate only ever bumps the last chunk, so keep exactly one: the
  // largest, rewound to empty. Smaller chunks would sit dead in the vector.
  if (chunks_.empty()) {
    bytes_allocated_ = 0;
    bytes_reserved_ = 0;
    return;
  }
  size_t best = 0;
  for (size_t i = 1; i < chunks_.size(); ++i) {
    if (chunks_[i].capacity > chunks_[best].capacity) best = i;
  }
  Chunk keep = std::move(chunks_[best]);
  keep.used = 0;
  chunks_.clear();
  chunks_.push_back(std::move(keep));
  bytes_allocated_ = 0;
  bytes_reserved_ = chunks_[0].capacity;
}

}  // namespace hcpath
