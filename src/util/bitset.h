#ifndef HCPATH_UTIL_BITSET_H_
#define HCPATH_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hcpath {

/// Fixed-capacity dynamic bitset tuned for BFS frontiers: O(1) set/test,
/// word-level iteration of set bits, and a fast Reset that only clears
/// previously touched words when the set is sparse.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t num_bits) { Resize(num_bits); }

  void Resize(size_t num_bits);
  size_t size() const { return num_bits_; }

  void Set(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Sets bit i; returns true if it was previously clear.
  bool TestAndSet(size_t i) {
    uint64_t& w = words_[i >> 6];
    const uint64_t mask = 1ULL << (i & 63);
    const bool was_clear = (w & mask) == 0;
    w |= mask;
    return was_clear;
  }

  /// Clears all bits.
  void Reset();

  /// Number of set bits.
  size_t Count() const;

  bool Any() const;

  /// Calls fn(index) for every set bit in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// In-place union; other must have the same size.
  void UnionWith(const DynamicBitset& other);
  /// In-place intersection; other must have the same size.
  void IntersectWith(const DynamicBitset& other);

  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }
  size_t num_words() const { return words_.size(); }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace hcpath

#endif  // HCPATH_UTIL_BITSET_H_
