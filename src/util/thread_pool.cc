#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <map>

namespace hcpath {

namespace {
/// Identifies the pool/worker the current thread belongs to, so Submit from
/// inside a task targets the submitter's own deque and TryRunOneTask scans
/// starting from it.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker = 0;
}  // namespace

size_t ThreadPool::EffectiveThreads(int requested) {
  if (requested > 0) return static_cast<size_t>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::shared_ptr<ThreadPool> ThreadPool::Shared(size_t num_workers) {
  // Per-size cache so callers alternating between sizes don't churn
  // threads; idle pools cost only sleeping threads. The set of distinct
  // sizes a process requests is tiny in practice.
  static std::mutex mu;
  static std::map<size_t, std::shared_ptr<ThreadPool>> cache;
  std::lock_guard<std::mutex> lk(mu);
  std::shared_ptr<ThreadPool>& slot = cache[num_workers];
  if (slot == nullptr) slot = std::make_shared<ThreadPool>(num_workers);
  return slot;
}

std::shared_ptr<ThreadPool> ThreadPool::ForNumThreads(int num_threads) {
  const size_t compute = num_threads == 1 ? 1 : EffectiveThreads(num_threads);
  if (compute <= 1) return nullptr;
  return Shared(compute - 1);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = EffectiveThreads(0);
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<TaskQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  size_t qi;
  if (tls_pool == this) {
    qi = tls_worker;
  } else {
    qi = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  // pending_ goes up before the push so a concurrent Pop can never drive it
  // below zero; the empty wake_mu_ critical section pairs with the waiters'
  // predicate check so the notify cannot be missed.
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(queues_[qi]->mu);
    queues_[qi]->tasks.push_back(std::move(fn));
  }
  { std::lock_guard<std::mutex> lk(wake_mu_); }
  wake_cv_.notify_one();
}

bool ThreadPool::Pop(size_t qi, bool owner, std::function<void()>* out) {
  TaskQueue& q = *queues_[qi];
  std::lock_guard<std::mutex> lk(q.mu);
  if (q.tasks.empty()) return false;
  if (owner) {
    *out = std::move(q.tasks.back());
    q.tasks.pop_back();
  } else {
    *out = std::move(q.tasks.front());
    q.tasks.pop_front();
  }
  pending_.fetch_sub(1, std::memory_order_release);
  return true;
}

bool ThreadPool::RunOneFrom(size_t home) {
  std::function<void()> task;
  const size_t nq = queues_.size();
  for (size_t i = 0; i < nq; ++i) {
    const size_t qi = (home + i) % nq;
    if (Pop(qi, /*owner=*/i == 0, &task)) {
      task();
      return true;
    }
  }
  return false;
}

bool ThreadPool::TryRunOneTask() {
  const size_t home = tls_pool == this ? tls_worker : 0;
  return RunOneFrom(home);
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_pool = this;
  tls_worker = self;
  while (true) {
    if (RunOneFrom(self)) continue;
    std::unique_lock<std::mutex> lk(wake_mu_);
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
    wake_cv_.wait(lk, [this] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t nw = workers_.size();
  if (nw == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct State {
    std::atomic<size_t> next{0};       // first unclaimed index
    std::atomic<size_t> remaining;     // indices not yet finished
    std::mutex mu;
    std::condition_variable done;
    std::exception_ptr error;
    size_t error_index;
  };
  auto state = std::make_shared<State>();
  state->remaining.store(n, std::memory_order_relaxed);
  state->error_index = n;

  // Dynamic-grain scheduling: one self-draining body per worker pulls index
  // ranges off a shared cursor, so a 256-item loop costs ~nw queue
  // operations instead of 256, while skewed items still spread (small
  // grains re-balance; a body stuck on a long item simply claims no more).
  const size_t grain = std::max<size_t>(1, n / (16 * (nw + 1)));
  auto body = [state, &fn, n, grain] {
    while (true) {
      const size_t begin =
          state->next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const size_t end = std::min(begin + grain, n);
      for (size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lk(state->mu);
          if (i < state->error_index) {
            state->error_index = i;
            state->error = std::current_exception();
          }
        }
      }
      const size_t batch = end - begin;
      if (state->remaining.fetch_sub(batch, std::memory_order_acq_rel) ==
          batch) {
        std::lock_guard<std::mutex> lk(state->mu);
        state->done.notify_all();
      }
    }
  };

  // No point queueing more bodies than there are grains beyond the one
  // stream the caller drains itself: surplus bodies would only wake, see an
  // exhausted cursor, and exit.
  const size_t num_grains = (n + grain - 1) / grain;
  const size_t bodies = std::min(nw, num_grains - 1);
  for (size_t w = 0; w < bodies; ++w) Submit(body);
  // The caller works too: drain the cursor inline (which also makes nested
  // ParallelFor calls from inside tasks deadlock-free), then keep serving
  // other queued tasks — e.g. a sibling ParallelFor's bodies — while
  // stragglers finish. The timed wait is a backstop for the window where
  // the last ranges are already running on workers and nothing is queued.
  body();
  while (state->remaining.load(std::memory_order_acquire) != 0) {
    if (!TryRunOneTask()) {
      std::unique_lock<std::mutex> lk(state->mu);
      state->done.wait_for(lk, std::chrono::milliseconds(1), [&state] {
        return state->remaining.load(std::memory_order_acquire) == 0;
      });
    }
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace hcpath
