#ifndef HCPATH_UTIL_HASH_H_
#define HCPATH_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace hcpath {

/// Finalizer from SplitMix64; an excellent cheap integer mixer used for
/// open-addressing tables throughout the library.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// 32-bit convenience wrapper over Mix64.
inline uint32_t Mix32(uint32_t x) {
  return static_cast<uint32_t>(Mix64(x) >> 32);
}

/// Boost-style hash combiner for composing multi-field hashes.
inline void HashCombine(uint64_t& seed, uint64_t v) {
  seed ^= Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// FNV-1a over raw bytes; used to fingerprint path sets in tests.
inline uint64_t FnvHashBytes(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace hcpath

#endif  // HCPATH_UTIL_HASH_H_
