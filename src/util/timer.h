#ifndef HCPATH_UTIL_TIMER_H_
#define HCPATH_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace hcpath {

/// Monotonic wall-clock timer with microsecond resolution.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time into a double on destruction; used to attribute
/// time to the processing phases reported by Exp-3 (Fig 9).
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() {
    if (sink_ != nullptr) *sink_ += timer_.ElapsedSeconds();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace hcpath

#endif  // HCPATH_UTIL_TIMER_H_
