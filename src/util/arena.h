#ifndef HCPATH_UTIL_ARENA_H_
#define HCPATH_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace hcpath {

/// Chunked bump allocator for short-lived, densely packed allocations
/// (path storage, join scratch). Individual allocations are never freed;
/// the whole arena is released at once.
class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 1 << 20;  // 1 MiB

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Typed helper: allocates an uninitialized array of n T.
  template <typename T>
  T* AllocateArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Total bytes handed out (excluding per-chunk slack).
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total bytes reserved from the system.
  size_t bytes_reserved() const { return bytes_reserved_; }

  /// Releases every chunk; all previously returned pointers die.
  void Clear();

  /// Forgets every allocation but keeps the reserved chunks for reuse; all
  /// previously returned pointers die. This is the recycling path for
  /// pooled scratch (BatchContext): a rewound arena serves its next
  /// allocations without touching the system allocator.
  void Rewind();

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace hcpath

#endif  // HCPATH_UTIL_ARENA_H_
