#ifndef HCPATH_UTIL_LOGGING_H_
#define HCPATH_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace hcpath {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum level emitted to stderr (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it (with timestamp, level and
/// source location) on destruction. LogLevel::kFatal aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows a disabled log statement while keeping the << chain compiling.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace hcpath

#define HCPATH_LOG_INTERNAL(level) \
  ::hcpath::internal::LogMessage(level, __FILE__, __LINE__)

#define LOG_DEBUG() HCPATH_LOG_INTERNAL(::hcpath::LogLevel::kDebug)
#define LOG_INFO() HCPATH_LOG_INTERNAL(::hcpath::LogLevel::kInfo)
#define LOG_WARNING() HCPATH_LOG_INTERNAL(::hcpath::LogLevel::kWarning)
#define LOG_ERROR() HCPATH_LOG_INTERNAL(::hcpath::LogLevel::kError)
#define LOG_FATAL() HCPATH_LOG_INTERNAL(::hcpath::LogLevel::kFatal)

/// CHECK aborts with a diagnostic when `cond` is false; it is active in all
/// build types because enumeration invariants guard correctness, not speed.
#define HCPATH_CHECK(cond)                                            \
  if (!(cond))                                                        \
  HCPATH_LOG_INTERNAL(::hcpath::LogLevel::kFatal)                     \
      << "Check failed: " #cond " "

#define HCPATH_CHECK_EQ(a, b) HCPATH_CHECK((a) == (b))
#define HCPATH_CHECK_NE(a, b) HCPATH_CHECK((a) != (b))
#define HCPATH_CHECK_LT(a, b) HCPATH_CHECK((a) < (b))
#define HCPATH_CHECK_LE(a, b) HCPATH_CHECK((a) <= (b))
#define HCPATH_CHECK_GT(a, b) HCPATH_CHECK((a) > (b))
#define HCPATH_CHECK_GE(a, b) HCPATH_CHECK((a) >= (b))

/// DCHECK compiles away in release builds; use on hot paths.
#ifndef NDEBUG
#define HCPATH_DCHECK(cond) HCPATH_CHECK(cond)
#else
#define HCPATH_DCHECK(cond) \
  if (false) ::hcpath::internal::NullStream()
#endif

#endif  // HCPATH_UTIL_LOGGING_H_
