#ifndef HCPATH_UTIL_STRINGX_H_
#define HCPATH_UTIL_STRINGX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace hcpath {

/// Splits `s` on `sep`, dropping empty fields when `keep_empty` is false.
std::vector<std::string_view> Split(std::string_view s, char sep,
                                    bool keep_empty = false);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict integer / double parsers that reject trailing garbage.
StatusOr<int64_t> ParseInt64(std::string_view s);
StatusOr<uint64_t> ParseUint64(std::string_view s);
StatusOr<double> ParseDouble(std::string_view s);

/// Formats n with thousands separators ("1,234,567") for table output.
std::string FormatWithCommas(uint64_t n);

/// Human-readable byte count ("3.2 MiB").
std::string FormatBytes(uint64_t bytes);

}  // namespace hcpath

#endif  // HCPATH_UTIL_STRINGX_H_
