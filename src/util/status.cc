#include "util/status.h"

namespace hcpath {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

bool StatusCodeRetryable(StatusCode code) {
  switch (code) {
    // Transient system state: pressure drains, shards heal, deadlines can
    // be re-issued. Retrying the identical request can succeed.
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
      return true;
    // Properties of the request or of durable state: deterministic on
    // retry.
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kInternal:
    case StatusCode::kIOError:
      return false;
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace hcpath
