#ifndef HCPATH_UTIL_HISTOGRAM_H_
#define HCPATH_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hcpath {

/// Accumulates scalar samples and reports summary statistics. Used by the
/// bench harness to report per-query time distributions.
class Histogram {
 public:
  void Add(double v);
  void Merge(const Histogram& other);

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;
  /// q in [0,1]; nearest-rank percentile. Requires at least one sample.
  double Percentile(double q) const;

  /// One-line summary: "n=.. mean=.. p50=.. p95=.. max=..".
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
};

}  // namespace hcpath

#endif  // HCPATH_UTIL_HISTOGRAM_H_
