#include "util/flags.h"

#include <cstdio>
#include <map>
#include <memory>
#include <variant>
#include <vector>

#include "util/stringx.h"

namespace hcpath {

namespace {
struct Flag {
  std::string name;
  std::string help;
  std::variant<int64_t*, double*, bool*, std::string*> target;
  std::string default_repr;
};
}  // namespace

struct FlagSet::Impl {
  std::map<std::string, Flag> flags;
  // Owned storage for flag values.
  std::vector<std::unique_ptr<int64_t>> ints;
  std::vector<std::unique_ptr<double>> doubles;
  std::vector<std::unique_ptr<bool>> bools;
  std::vector<std::unique_ptr<std::string>> strings;
};

FlagSet::FlagSet() : impl_(new Impl) {}
FlagSet::~FlagSet() { delete impl_; }

int64_t* FlagSet::AddInt64(const std::string& name, int64_t default_value,
                           const std::string& help) {
  impl_->ints.push_back(std::make_unique<int64_t>(default_value));
  int64_t* p = impl_->ints.back().get();
  impl_->flags[name] = Flag{name, help, p, std::to_string(default_value)};
  return p;
}

double* FlagSet::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  impl_->doubles.push_back(std::make_unique<double>(default_value));
  double* p = impl_->doubles.back().get();
  impl_->flags[name] = Flag{name, help, p, std::to_string(default_value)};
  return p;
}

bool* FlagSet::AddBool(const std::string& name, bool default_value,
                       const std::string& help) {
  impl_->bools.push_back(std::make_unique<bool>(default_value));
  bool* p = impl_->bools.back().get();
  impl_->flags[name] = Flag{name, help, p, default_value ? "true" : "false"};
  return p;
}

std::string* FlagSet::AddString(const std::string& name,
                                const std::string& default_value,
                                const std::string& help) {
  impl_->strings.push_back(std::make_unique<std::string>(default_value));
  std::string* p = impl_->strings.back().get();
  impl_->flags[name] = Flag{name, help, p, default_value};
  return p;
}

namespace {
Status AssignFlag(Flag& flag, std::string_view value) {
  if (std::holds_alternative<int64_t*>(flag.target)) {
    auto v = ParseInt64(value);
    if (!v.ok()) return v.status();
    *std::get<int64_t*>(flag.target) = *v;
  } else if (std::holds_alternative<double*>(flag.target)) {
    auto v = ParseDouble(value);
    if (!v.ok()) return v.status();
    *std::get<double*>(flag.target) = *v;
  } else if (std::holds_alternative<bool*>(flag.target)) {
    if (value == "true" || value == "1") {
      *std::get<bool*>(flag.target) = true;
    } else if (value == "false" || value == "0") {
      *std::get<bool*>(flag.target) = false;
    } else {
      return Status::InvalidArgument("bad bool for --" + flag.name + ": " +
                                     std::string(value));
    }
  } else {
    *std::get<std::string*>(flag.target) = std::string(value);
  }
  return Status::OK();
}
}  // namespace

Status FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument: " +
                                     std::string(arg));
    }
    arg.remove_prefix(2);
    if (arg == "help") {
      std::fprintf(stderr, "%s", Usage().c_str());
      return Status::NotFound("--help requested");
    }
    std::string name;
    std::string_view value;
    bool has_value = false;
    size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = arg.substr(eq + 1);
      has_value = true;
    } else {
      name = std::string(arg);
    }
    auto it = impl_->flags.find(name);
    if (it == impl_->flags.end()) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (std::holds_alternative<bool*>(flag.target)) {
        *std::get<bool*>(flag.target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for --" + name);
      }
      value = argv[++i];
    }
    HCPATH_RETURN_NOT_OK(AssignFlag(flag, value));
  }
  return Status::OK();
}

std::string FlagSet::Usage() const {
  std::string out = "Flags:\n";
  for (const auto& [name, flag] : impl_->flags) {
    out += "  --" + name + " (default: " + flag.default_repr + ")  " +
           flag.help + "\n";
  }
  return out;
}

}  // namespace hcpath
