#include "util/rng.h"

#include <unordered_set>

#include "util/logging.h"

namespace hcpath {

namespace {
uint64_t SplitMix64Next(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64Next(sm);
  // xoshiro256++ must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  HCPATH_CHECK_GT(bound, 0u);
  // Lemire's method: multiply-shift with rejection of the biased region.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  HCPATH_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [lo, hi] wrapped; draw directly.
  if (span == 0) return static_cast<int64_t>(Next());
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  HCPATH_CHECK_LE(k, n);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 2 >= n) {
    // Dense case: shuffle a full permutation prefix.
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(all);
    all.resize(k);
    return all;
  }
  // Sparse case: rejection sample distinct values.
  std::unordered_set<uint64_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    uint64_t v = NextBounded(n);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

Rng Rng::Split() { return Rng(Next() ^ 0xa3c59ac2f1c3b7e9ULL); }

}  // namespace hcpath
