#ifndef HCPATH_UTIL_CSV_H_
#define HCPATH_UTIL_CSV_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace hcpath {

/// Streaming CSV writer used by the bench harness to dump figure series.
/// Fields containing commas, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Check `status()` afterwards.
  explicit CsvWriter(const std::string& path);

  const Status& status() const { return status_; }

  /// Writes one row; the variadic overloads accept strings and numerics.
  void WriteRow(const std::vector<std::string>& fields);

  template <typename... Ts>
  void Row(const Ts&... vals) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(vals));
    (fields.push_back(ToField(vals)), ...);
    WriteRow(fields);
  }

  /// Flushes and closes the file.
  Status Close();

 private:
  static std::string ToField(const std::string& s) { return s; }
  static std::string ToField(const char* s) { return s; }
  static std::string ToField(double v);
  static std::string ToField(int64_t v) { return std::to_string(v); }
  static std::string ToField(uint64_t v) { return std::to_string(v); }
  static std::string ToField(int v) { return std::to_string(v); }

  static std::string Escape(const std::string& field);

  std::ofstream out_;
  Status status_;
};

}  // namespace hcpath

#endif  // HCPATH_UTIL_CSV_H_
