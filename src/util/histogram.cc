#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace hcpath {

void Histogram::Add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_valid_ = false;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sorted_valid_ = false;
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0;
  return sum_ / static_cast<double>(samples_.size());
}

void Histogram::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Histogram::Min() const {
  HCPATH_CHECK(!samples_.empty());
  EnsureSorted();
  return sorted_.front();
}

double Histogram::Max() const {
  HCPATH_CHECK(!samples_.empty());
  EnsureSorted();
  return sorted_.back();
}

double Histogram::Stddev() const {
  if (samples_.size() < 2) return 0;
  double m = Mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Histogram::Percentile(double q) const {
  HCPATH_CHECK(!samples_.empty());
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  if (rank > 0) --rank;
  return sorted_[rank];
}

std::string Histogram::Summary() const {
  if (samples_.empty()) return "n=0";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.4g p50=%.4g p95=%.4g max=%.4g", count(),
                Mean(), Percentile(0.5), Percentile(0.95), Max());
  return buf;
}

}  // namespace hcpath
