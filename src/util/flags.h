#ifndef HCPATH_UTIL_FLAGS_H_
#define HCPATH_UTIL_FLAGS_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace hcpath {

/// Minimal command-line flag registry for bench/example binaries.
///
/// Usage:
///   FlagSet flags;
///   int64_t* n = flags.AddInt64("n", 100, "query set size");
///   HCPATH_CHECK(flags.Parse(argc, argv).ok());
///
/// Accepted syntax: --name=value, --name value, and --flag (bools only).
class FlagSet {
 public:
  FlagSet();
  ~FlagSet();
  FlagSet(const FlagSet&) = delete;
  FlagSet& operator=(const FlagSet&) = delete;

  int64_t* AddInt64(const std::string& name, int64_t default_value,
                    const std::string& help);
  double* AddDouble(const std::string& name, double default_value,
                    const std::string& help);
  bool* AddBool(const std::string& name, bool default_value,
                const std::string& help);
  std::string* AddString(const std::string& name,
                         const std::string& default_value,
                         const std::string& help);

  /// Parses argv; unknown flags and malformed values produce errors.
  /// "--help" prints usage and returns a NotFound status the caller can use
  /// to exit cleanly.
  Status Parse(int argc, char** argv);

  /// Usage text for all registered flags.
  std::string Usage() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace hcpath

#endif  // HCPATH_UTIL_FLAGS_H_
