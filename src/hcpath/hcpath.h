#ifndef HCPATH_HCPATH_H_
#define HCPATH_HCPATH_H_

/// \file
/// Umbrella header for the hcpath library: batch hop-constrained s-t
/// simple path query processing (Yuan et al., ICDE 2024).
///
/// Quick start:
///
///   #include "hcpath/hcpath.h"
///   using namespace hcpath;
///
///   Rng rng(42);
///   Graph g = *GenerateBarabasiAlbert(100000, 6, rng);
///   std::vector<PathQuery> queries = {{.s = 0, .t = 42, .k = 5}};
///   BatchPathEnumerator enumerator(g);
///   BatchOptions options;   // BatchEnum+, gamma = 0.5
///   auto result = enumerator.Run(queries, options);
///   // result->path_counts[0] == number of HC-s-t paths of query 0
///
/// Serving sustained traffic? Use the persistent service layer
/// (docs/SERVICE.md) instead of one-shot calls:
///
///   PathEngine engine(g, PathEngineOptions{});
///   auto future = engine.Submit({.s = 0, .t = 42, .k = 5});
///   uint64_t n = future.get().path_count;  // micro-batched + warm caches
///
/// Multi-tenant serving: Submit("tenant", query) feeds per-tenant queues
/// drained by weighted fair queueing, with bounded-queue backpressure and
/// overload shedding per PathEngineOptions::admission (docs/SERVICE.md,
/// "Admission state machine").
///
/// Scaling out? ShardedPathService (docs/SHARDING.md) routes the query
/// stream over N replicated-graph shards with deadlines, bounded retries,
/// hedged dispatch, and heartbeat-driven failover — byte-identical to a
/// 1-shard run for every query that completes, deterministically
/// fault-injectable via FaultInjector under VirtualClock.
///
/// Restarting fast? The persistence tier (docs/PERSIST.md) checkpoints
/// graphs as mmap-loadable checksummed CSR snapshots
/// (GraphStore::SaveSnapshot/OpenSnapshot) and spills the
/// endpoint-distance cache (PathEngine::SaveDistanceCache /
/// RestoreDistanceCache), so a restarted engine reaches its first
/// result I/O-bound and answers it warm.

#include "core/basic_enum.h"
#include "core/batch_context.h"
#include "core/batch_enum.h"
#include "core/brute_force.h"
#include "core/clustering.h"
#include "core/enumerator.h"
#include "core/options.h"
#include "core/path.h"
#include "core/path_enum.h"
#include "core/query.h"
#include "core/similarity.h"
#include "core/stats.h"
#include "index/cache_persist.h"
#include "index/endpoint_cache.h"
#include "service/admission_status.h"
#include "service/clock.h"
#include "service/fault_injector.h"
#include "service/path_engine.h"
#include "service/sharded_service.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_snapshot_io.h"
#include "graph/graph_store.h"
#include "graph/sampler.h"
#include "graph/stats.h"
#include "util/rng.h"
#include "util/status.h"

#endif  // HCPATH_HCPATH_H_
