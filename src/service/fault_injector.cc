#include "service/fault_injector.h"

#include <utility>

namespace hcpath {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kHang:
      return "hang";
    case FaultKind::kDropReply:
      return "drop-reply";
    case FaultKind::kSlow:
      return "slow";
    case FaultKind::kFailN:
      return "fail-n";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::vector<FaultRule> script) {
  rules_.reserve(script.size());
  for (FaultRule& r : script) rules_.push_back(RuleState{std::move(r), 0});
}

void FaultInjector::AddRule(const FaultRule& rule) {
  rules_.push_back(RuleState{rule, 0});
}

FaultDecision FaultInjector::OnDispatch(int shard, uint64_t dispatch) {
  FaultDecision d;
  for (RuleState& rs : rules_) {
    const FaultRule& r = rs.rule;
    if (r.shard != shard) continue;
    if (rs.fired >= r.count) continue;  // rule consumed
    if (dispatch < r.at_dispatch) continue;
    if (dispatch >= r.at_dispatch + r.count) continue;
    ++rs.fired;
    ++fired_by_kind_[static_cast<int>(r.kind)];
    switch (r.kind) {
      case FaultKind::kCrash:
        d.crash = true;
        break;
      case FaultKind::kHang:
        d.hang_seconds = r.seconds;
        break;
      case FaultKind::kDropReply:
        d.drop_reply = true;
        break;
      case FaultKind::kSlow:
        d.slow_factor = r.factor;
        break;
      case FaultKind::kFailN:
        d.fail = true;
        break;
    }
    // First matching rule wins: one fault per dispatch keeps decisions a
    // tagged record and schedules easy to reason about in replay.
    return d;
  }
  return d;
}

bool FaultInjector::Exhausted() const {
  for (const RuleState& rs : rules_) {
    if (rs.fired < rs.rule.count) return false;
  }
  return true;
}

uint64_t FaultInjector::fired(FaultKind kind) const {
  return fired_by_kind_[static_cast<int>(kind)];
}

std::string FaultInjector::DebugString() const {
  std::string out = "FaultInjector{";
  for (size_t i = 0; i < rules_.size(); ++i) {
    const RuleState& rs = rules_[i];
    if (i) out += ", ";
    out += std::string(FaultKindName(rs.rule.kind)) + "@shard" +
           std::to_string(rs.rule.shard) + "[" +
           std::to_string(rs.rule.at_dispatch) + "+" +
           std::to_string(rs.rule.count) + ") fired=" +
           std::to_string(rs.fired);
  }
  out += "}";
  return out;
}

}  // namespace hcpath
