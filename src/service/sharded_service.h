#ifndef HCPATH_SERVICE_SHARDED_SERVICE_H_
#define HCPATH_SERVICE_SHARDED_SERVICE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "core/batch_context.h"
#include "core/options.h"
#include "core/path.h"
#include "core/query.h"
#include "core/search.h"
#include "graph/graph_store.h"
#include "service/clock.h"
#include "service/fault_injector.h"
#include "service/path_engine.h"
#include "util/rng.h"
#include "util/status.h"

namespace hcpath {

/// How the router picks a query's primary shard (docs/SHARDING.md,
/// "Routing"). Both policies are deterministic functions of the submission
/// stream, so a run replays exactly.
enum class RoutingPolicy {
  /// Mix64 over (tenant, s, t, k): stable placement — the same query always
  /// lands on the same shard, which keeps per-shard endpoint caches warm.
  kHash,
  /// Strict rotation over serving shards: best load spread for adversarial
  /// key distributions.
  kRoundRobin,
};

const char* RoutingPolicyName(RoutingPolicy policy);

/// Supervisor health states for one shard (docs/SHARDING.md, "Supervisor
/// state machine"): healthy → suspect → down → restarting → healthy.
enum class ShardHealth {
  kHealthy,
  kSuspect,     ///< missed >= suspect_after_missed heartbeats
  kDown,        ///< missed >= down_after_missed: failed over, restart queued
  kRestarting,  ///< rebuilding from the shared GraphStore snapshot
};

const char* ShardHealthName(ShardHealth health);

struct ShardedServiceOptions {
  int num_shards = 2;
  RoutingPolicy routing = RoutingPolicy::kHash;

  /// Pipeline configuration every shard runs with (remap is forced to
  /// kNone internally, exactly like PathEngine's micro-batches).
  BatchOptions batch;

  /// Materialize each completed query's paths into QueryResult::paths when
  /// no per-batch sink is given. Sinks always stream in submission order.
  bool collect_paths = true;

  /// Virtual service time one attempt occupies its shard for. Shards are
  /// single servers in virtual time: attempts queue FIFO behind
  /// busy_until. (Real enumeration work happens at the completion event
  /// and is byte-deterministic regardless of when it runs.)
  double service_time_seconds = 0.01;

  /// Overall per-query deadline in virtual seconds; 0 disables. Expiry is
  /// terminal (kDeadlineExceeded) and cancels outstanding attempts.
  double deadline_seconds = 0;
  /// Per-attempt timeout measured from dispatch (queue wait included);
  /// 0 disables. A timed-out attempt counts as kUnavailable and feeds the
  /// retry path — this is the only way a dropped reply is ever detected.
  double attempt_timeout_seconds = 0;

  /// Bounded retry for dispatch-layer kUnavailable failures only.
  /// Pipeline errors (e.g. a max_paths ResourceExhausted) are
  /// deterministic replies and are never redispatched.
  int max_retries = 2;
  double retry_backoff_seconds = 0.05;  ///< base of the exponential
  double retry_backoff_multiplier = 2.0;
  /// Backoff is scaled by (1 + jitter * u), u uniform in [0,1) from a
  /// seeded RNG — deterministic per (seed, retry ordinal).
  double retry_jitter_fraction = 0.1;
  uint64_t seed = 0x9E3779B97F4A7C15ull;

  /// Hedged dispatch: when an attempt is still unanswered past the hedge
  /// threshold, re-dispatch to a same-epoch sibling; first reply wins and
  /// the loser is cancelled. Replicated shards make either reply
  /// byte-identical, so hedging never affects results — only latency.
  bool enable_hedging = false;
  /// Cold-start threshold, used until hedge_min_samples latencies exist.
  double hedge_after_seconds = 0.2;
  double hedge_quantile = 0.9;   ///< of recent attempt latencies
  double hedge_multiplier = 2.0; ///< threshold = quantile * multiplier
  int hedge_min_samples = 8;

  /// Heartbeat cadence and the missed-beat thresholds that drive the
  /// health state machine. A hung or crashed shard stops beating; the
  /// supervisor only ever observes missed beats.
  double heartbeat_interval_seconds = 0.05;
  int suspect_after_missed = 2;
  int down_after_missed = 4;
  /// Down → restart-begin delay, then restart-begin → serving duration
  /// (snapshot re-pin happens at restart completion).
  double restart_delay_seconds = 0.1;
  double restart_duration_seconds = 0.2;

  Status Validate() const;
};

/// Per-shard counters; every attempt ends in exactly one of
/// {completions, failures, cancelled, dropped_replies} or is still
/// in flight, so dispatches reconcile as an identity (GetStats checks it).
struct ShardStats {
  uint64_t dispatches = 0;
  uint64_t completions = 0;
  uint64_t failures = 0;
  uint64_t cancelled = 0;
  uint64_t dropped_replies = 0;
  uint64_t crashes = 0;
  uint64_t restarts = 0;
  ShardHealth health = ShardHealth::kHealthy;
  uint64_t epoch = 0;  ///< epoch of the currently pinned snapshot
};

struct ShardedServiceStats {
  // Query-level conservation: submitted == completed + failed + rejected
  // once the service is idle (rejected = failed admission-time validation).
  uint64_t queries_submitted = 0;
  uint64_t queries_completed = 0;
  uint64_t queries_failed = 0;
  uint64_t queries_rejected = 0;
  /// Queries the event loop could never resolve (a fault schedule with no
  /// detection path, e.g. drop-reply with attempt timeouts disabled).
  /// RunToCompletion fails them with kInternal rather than stalling the
  /// merge; any nonzero value is a test/bench failure.
  uint64_t queries_stalled = 0;

  // Attempt-level conservation:
  // dispatches == completed + failed + cancelled + dropped + in_flight.
  uint64_t dispatches = 0;
  uint64_t attempts_completed = 0;
  uint64_t attempts_failed = 0;
  uint64_t attempts_cancelled = 0;
  uint64_t attempts_dropped = 0;
  uint64_t attempts_in_flight = 0;

  uint64_t retries = 0;          ///< kRetryDue dispatches
  uint64_t hedges = 0;           ///< hedge attempts launched
  uint64_t hedged_wins = 0;      ///< queries whose winning reply was a hedge
  uint64_t failovers = 0;        ///< in-flight attempts failed by down shards
  uint64_t attempt_timeouts = 0;
  uint64_t deadline_expired = 0;

  std::vector<ShardStats> shards;
};

/// An in-process sharded serving layer over N replicated-graph shards
/// (docs/SHARDING.md). Each shard pins one GraphStore snapshot and runs
/// the same enumeration pipeline as PathEngine; the router partitions the
/// query stream; per-batch results merge back in submission order, so a
/// batch's output is byte-identical to a 1-shard no-fault reference for
/// every query that completes.
///
/// The whole layer is a discrete-event simulation over the Clock seam:
/// deadlines, retries with jittered backoff, hedged dispatch, heartbeats,
/// crash detection, restart, and the scripted FaultInjector all advance on
/// virtual time via Step()/RunToCompletion(). One driver thread steps the
/// service; enumeration itself may use the configured thread pool (output
/// is thread-count-invariant by the core contract).
///
/// The partitioned-graph mode (each shard owning a subgraph, with
/// cross-shard path stitching) is a documented follow-up; see
/// docs/SHARDING.md "Follow-ups".
class ShardedPathService {
 public:
  /// Store-backed: every shard pins store->Current() at construction and
  /// re-pins at restart completion.
  ShardedPathService(GraphStore* store, const ShardedServiceOptions& options,
                     Clock* clock = nullptr,
                     FaultInjector* injector = nullptr);
  /// Fixed-graph: shards share `graph` (not owned, must outlive the
  /// service); epoch is 0 everywhere and restarts re-pin the same graph.
  ShardedPathService(const Graph* graph,
                     const ShardedServiceOptions& options,
                     Clock* clock = nullptr,
                     FaultInjector* injector = nullptr);

  ~ShardedPathService();

  ShardedPathService(const ShardedPathService&) = delete;
  ShardedPathService& operator=(const ShardedPathService&) = delete;

  /// Construction-time failure (options validation), checked before use.
  Status init_status() const { return init_status_; }

  /// Submits a batch under `tenant`. Each query is validated individually;
  /// invalid queries fail their future with InvalidArgument and occupy a
  /// zero-path slot in the merge (the merge never stalls on them). All
  /// futures resolve in submission order as the ordered merge drains; when
  /// `sink` is non-null, paths stream to it in submission order with
  /// query_index = position in `queries`.
  std::vector<std::future<QueryResult>> SubmitBatch(
      const std::string& tenant, const std::vector<PathQuery>& queries,
      PathSink* sink = nullptr);

  /// Fires every event due at clock->Now() or earlier, in (time, submit
  /// sequence) order. Returns the number of events processed.
  size_t Step();

  /// Virtual timestamp of the next pending event, or a negative value when
  /// idle. Drive loops as: AdvanceTo(NextEventSeconds()); Step().
  double NextEventSeconds() const;

  /// True when no events are pending (all submitted work resolved or
  /// stalled; see RunToCompletion for the stall backstop).
  bool Idle() const;

  /// Advances `clock` event-to-event until Idle(). Any query left
  /// unresolved with an empty event heap (an undetectable fault schedule)
  /// is failed with kInternal and counted in queries_stalled, so the merge
  /// always completes.
  void RunToCompletion(VirtualClock* clock);

  ShardedServiceStats GetStats() const;
  ShardHealth shard_health(int shard) const;
  /// Epoch pinned by `shard` right now (changes across restarts).
  uint64_t shard_epoch(int shard) const;

  const ShardedServiceOptions& options() const { return options_; }

 private:
  enum class EventType {
    kDispatchDone,
    kAttemptTimeout,
    kRetryDue,
    kHedgeDue,
    kDeadline,
    kHeartbeat,
    kRestartBegin,
    kRestartDone,
  };

  struct Event {
    double time = 0;
    uint64_t seq = 0;  ///< tie-break: events at equal time fire in push order
    EventType type = EventType::kHeartbeat;
    uint64_t id = 0;  ///< attempt / query / shard id depending on type
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  enum class AttemptState { kInFlight, kCompleted, kFailed, kCancelled,
                            kDropped };
  struct Attempt {
    uint64_t query_id = 0;
    int shard = 0;
    bool is_hedge = false;
    bool drop_reply = false;
    AttemptState state = AttemptState::kInFlight;
    double dispatch_time = 0;  ///< when the attempt entered the shard queue
    double done_time = 0;      ///< scheduled completion (0: none, crashed)
  };

  enum class QueryState { kPending, kCompleted, kFailed };
  struct QueryRec {
    std::string tenant;
    PathQuery query;
    uint64_t batch = 0;
    size_t index_in_batch = 0;
    QueryState state = QueryState::kPending;
    Status final_status;
    PathSet paths;
    uint64_t path_count = 0;
    uint64_t graph_epoch = 0;
    double submit_time = 0;
    double finish_time = 0;
    double first_service_start = -1;
    int retries_used = 0;
    int last_shard = -1;
    bool hedged = false;         ///< a hedge attempt was launched
    bool won_by_hedge = false;
    bool emitted = false;        ///< drained by the ordered merge
    std::vector<uint64_t> outstanding;  ///< attempt ids not yet terminal
    std::promise<QueryResult> promise;
  };

  struct BatchRec {
    PathSink* sink = nullptr;
    std::vector<uint64_t> query_ids;
    size_t next_emit = 0;
  };

  struct Shard {
    bool alive = true;
    ShardHealth health = ShardHealth::kHealthy;
    std::shared_ptr<const GraphSnapshot> snapshot;  ///< store mode pin
    const Graph* graph = nullptr;  ///< points into snapshot or fixed graph
    uint64_t epoch = 0;
    ResolvedKernel kernel;
    std::unique_ptr<BatchContext> ctx;
    uint64_t dispatch_ordinal = 0;  ///< per-shard count fed to the injector
    double busy_until = 0;
    double hang_until = 0;  ///< heartbeats suppressed before this time
    int missed_beats = 0;
    bool heartbeat_armed = false;
    std::vector<uint64_t> outstanding;  ///< in-flight attempt ids
    ShardStats stats;
  };

  void Init();
  void PinShard(Shard* shard);
  bool ShardServing(const Shard& shard) const;
  int RouteQuery(const std::string& tenant, const PathQuery& q);
  int NextServingShard(int after) const;
  int HedgeSibling(const QueryRec& q, int primary) const;
  double HedgeThresholdLocked() const;
  double BackoffSeconds(int retry_ordinal);

  void PushEvent(double time, EventType type, uint64_t id);
  void ArmHeartbeatLocked(int shard_id);
  bool AnyOutstandingLocked() const;
  /// True when pending queries exist but only heartbeat events remain and
  /// every shard is alive, healthy, and past any injected hang — i.e. no
  /// future event can resolve them (RunToCompletion's backstop trigger).
  bool QuiescentlyStalledLocked() const;

  void DispatchAttempt(uint64_t query_id, int shard_id, bool is_hedge);
  void HandleDispatchDone(uint64_t attempt_id);
  void HandleAttemptTimeout(uint64_t attempt_id);
  void HandleRetryDue(uint64_t query_id);
  void HandleHedgeDue(uint64_t attempt_id);
  void HandleDeadline(uint64_t query_id);
  void HandleHeartbeat(uint64_t shard_id);
  void HandleRestartBegin(uint64_t shard_id);
  void HandleRestartDone(uint64_t shard_id);
  void TransitionDown(int shard_id);

  /// Runs one query on a shard's pinned graph; fills paths/count. The
  /// per-query result is batch-composition-independent (core determinism
  /// contract), which is the whole parity argument.
  Status ExecuteOnShard(Shard* shard, const PathQuery& q, PathSet* paths,
                        uint64_t* count);

  void AttemptFailed(uint64_t attempt_id, const Status& status);
  void CompleteQuery(uint64_t query_id, uint64_t attempt_id,
                     PathSet&& paths, uint64_t count, uint64_t epoch,
                     const Status& status);
  void FailQuery(uint64_t query_id, const Status& status);
  void CancelOutstanding(QueryRec* q, uint64_t except_attempt);
  void DrainBatch(uint64_t batch_id);
  void RecordLatencySample(double seconds);

  ShardedServiceOptions options_;
  Status init_status_;
  GraphStore* store_ = nullptr;     ///< null in fixed-graph mode
  const Graph* fixed_graph_ = nullptr;
  std::unique_ptr<Clock> owned_clock_;
  Clock* clock_ = nullptr;
  FaultInjector* injector_ = nullptr;  ///< null = inert (production)
  BatchOptions batch_options_;  ///< options_.batch with remap forced kNone

  mutable std::mutex mu_;
  std::vector<Shard> shards_;
  std::vector<QueryRec> queries_;
  std::vector<Attempt> attempts_;
  std::vector<BatchRec> batches_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  uint64_t event_seq_ = 0;
  /// Non-heartbeat events currently in the heap. Heartbeats self-renew
  /// while queries are outstanding, so "heap empty" is the wrong idle
  /// test during a stall — this counter is the progress-possible test.
  size_t pending_work_events_ = 0;
  /// Simulation "now": the clock at SubmitBatch entry, or the firing
  /// event's own timestamp inside Step(). Follow-up events (heartbeats,
  /// backoffs, restart chains) schedule relative to THIS, not to
  /// clock_->Now(), so a driver that advances the clock coarsely (past
  /// several due events at once) replays the same timeline as one that
  /// advances event-to-event.
  double now_ = 0;
  uint64_t round_robin_next_ = 0;
  Rng rng_;

  /// Ring of recent attempt latencies feeding the hedge quantile.
  std::vector<double> latency_ring_;
  size_t latency_next_ = 0;
  size_t latency_count_ = 0;

  ShardedServiceStats stats_;
  /// Queries drained by the ordered merge whose promises are still to be
  /// resolved. Resolution happens after releasing mu_ (set_value may run
  /// caller continuations; never do that under the service lock); ids, not
  /// pointers, because queries_ reallocates while a batch is submitting.
  std::vector<std::pair<uint64_t, QueryResult>> resolved_;
  void FlushResolvedLocked(std::unique_lock<std::mutex>* lk);
};

}  // namespace hcpath

#endif  // HCPATH_SERVICE_SHARDED_SERVICE_H_
