#ifndef HCPATH_SERVICE_ADMISSION_STATUS_H_
#define HCPATH_SERVICE_ADMISSION_STATUS_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace hcpath {

/// The canonical vocabulary by which the serving layer fails a submitted
/// query for policy reasons (docs/SERVICE.md "Overload behavior",
/// docs/SHARDING.md "Fault model"). Every such Status is built here —
/// engine and sharded service alike — so the (code, message-prefix,
/// retryable) triple stays a single point of truth:
///
///   * queue full    — ResourceExhausted, retryable: pressure drains.
///   * shed          — ResourceExhausted, retryable: overload passes.
///   * snapshot lag  — FailedPrecondition, permanent: the pinned snapshot
///                     is gone for good; the caller must re-submit to pin a
///                     fresh one (a NEW submit succeeds, the OLD pin never).
///   * shutting down — FailedPrecondition, permanent: this engine will
///                     never admit again.
///   * shard unavailable / deadline — the sharded layer's transient and
///                     terminal dispatch outcomes.
///
/// The message strings are the legacy prefixes PR 5's tests and bench
/// drivers key on; they are kept verbatim as payloads of the canonical
/// codes (the satellite contract: classification changed, matching did
/// not). Recognizers below are the one sanctioned way to test for them.
inline Status QueueFullStatus(size_t queued_queries, uint64_t queued_bytes) {
  return Status::ResourceExhausted(
      "admission queue full: " + std::to_string(queued_queries) +
      " queries / " + std::to_string(queued_bytes) + " bytes queued");
}

inline Status ShedStatus(const std::string& tenant, double weight) {
  return Status::ResourceExhausted(
      "query shed by admission control: sustained overload (tenant \"" +
      tenant + "\", weight " + std::to_string(weight) + ")");
}

inline Status SnapshotLagStatus(uint64_t pinned_epoch, uint64_t new_epoch,
                                uint64_t max_lag, const std::string& tenant) {
  return Status::FailedPrecondition(
      "query snapshot over max lag: pinned epoch " +
      std::to_string(pinned_epoch) + " lags current epoch " +
      std::to_string(new_epoch) + " beyond max_snapshot_lag " +
      std::to_string(max_lag) + " (tenant \"" + tenant + "\")");
}

inline Status ShuttingDownStatus() {
  return Status::FailedPrecondition("PathEngine is shutting down");
}

/// Sharded dispatch outcomes (docs/SHARDING.md): a shard crashed, hung
/// past its attempt timeout, lost the reply, or was down when routed to.
/// Always kUnavailable — the one code the supervisor's bounded retry
/// redispatches on.
inline Status ShardUnavailableStatus(int shard, const std::string& why) {
  return Status::Unavailable("shard " + std::to_string(shard) +
                             " unavailable: " + why);
}

/// Terminal per-query outcome when the overall deadline expires before any
/// attempt replies. Not redispatched (the deadline is gone); classified
/// retryable for the CALLER, who may re-submit with a fresh deadline.
inline Status QueryDeadlineStatus(double deadline_seconds) {
  return Status::DeadlineExceeded(
      "query deadline of " + std::to_string(deadline_seconds) +
      "s expired before a shard replied");
}

inline bool HasStatusPrefix(const Status& s, const char* prefix) {
  return s.message().rfind(prefix, 0) == 0;
}

inline bool IsQueueFull(const Status& s) {
  return s.code() == StatusCode::kResourceExhausted &&
         HasStatusPrefix(s, "admission queue full");
}
inline bool IsShed(const Status& s) {
  return s.code() == StatusCode::kResourceExhausted &&
         HasStatusPrefix(s, "query shed by admission control");
}
inline bool IsSnapshotLag(const Status& s) {
  return s.code() == StatusCode::kFailedPrecondition &&
         HasStatusPrefix(s, "query snapshot over max lag");
}
inline bool IsShardUnavailable(const Status& s) {
  return s.code() == StatusCode::kUnavailable &&
         HasStatusPrefix(s, "shard ");
}
inline bool IsQueryDeadline(const Status& s) {
  return s.code() == StatusCode::kDeadlineExceeded &&
         HasStatusPrefix(s, "query deadline");
}

}  // namespace hcpath

#endif  // HCPATH_SERVICE_ADMISSION_STATUS_H_
