#include "service/path_engine.h"

#include <chrono>
#include <utility>

#include "core/basic_enum.h"
#include "core/batch_enum.h"
#include "core/path_enum.h"
#include "util/timer.h"

namespace hcpath {

namespace {

/// Routes the micro-batch's emission stream to per-query destinations:
/// counts every path, forwards to the query's own sink when given, and
/// otherwise materializes into the query's result set when the engine
/// collects. OnPath calls arrive serialized (the pipeline's ordered merge
/// holds a drain lock), in the deterministic emission order.
class DemuxSink : public PathSink {
 public:
  DemuxSink(size_t n, const std::vector<PathSink*>& sinks, bool collect)
      : counts_(n, 0), sinks_(sinks), collect_(collect) {
    if (collect_) sets_.resize(n);
  }

  void OnPath(size_t query_index, PathView path) override {
    ++counts_[query_index];
    if (sinks_[query_index] != nullptr) {
      sinks_[query_index]->OnPath(query_index, path);
    } else if (collect_) {
      sets_[query_index].Add(path);
    }
  }

  uint64_t count(size_t i) const { return counts_[i]; }
  PathSet TakePaths(size_t i) {
    return collect_ ? std::move(sets_[i]) : PathSet();
  }

 private:
  std::vector<uint64_t> counts_;
  const std::vector<PathSink*>& sinks_;
  bool collect_;
  std::vector<PathSet> sets_;
};

QueryResult MakeErrorResult(Status status) {
  QueryResult r;
  r.status = std::move(status);
  return r;
}

/// The pipeline requires a sink; count-only callers pass nullptr.
class DiscardSink : public PathSink {
 public:
  void OnPath(size_t, PathView) override {}
};

}  // namespace

PathEngine::PathEngine(const Graph& g, const PathEngineOptions& options)
    : g_(g),
      options_(options),
      init_status_(options.batch.Validate()),
      cache_(options.enable_distance_cache
                 ? options.distance_cache_max_entries
                 : 0,
             options.distance_cache_max_bytes) {
  if (!init_status_.ok()) return;
  if (options_.enable_distance_cache) ctx_.distance_cache = &cache_;
  // Resolve the pool once up front: the engine, not the batch call, owns
  // the threads for its whole lifetime.
  ctx_.PoolFor(options_.batch.num_threads);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

PathEngine::~PathEngine() {
  if (!dispatcher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  dispatcher_.join();
}

std::future<QueryResult> PathEngine::Submit(const PathQuery& query,
                                            PathSink* sink) {
  std::promise<QueryResult> promise;
  std::future<QueryResult> future = promise.get_future();
  if (!init_status_.ok()) {
    promise.set_value(MakeErrorResult(init_status_));
    return future;
  }
  // Admission-time validation: a bad query is rejected here, alone, so it
  // can never fail the whole micro-batch it would have been cut into.
  Status st = ValidateQueries(g_, {query});
  if (!st.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.queries_rejected;
    promise.set_value(MakeErrorResult(std::move(st)));
    return future;
  }
  bool notify = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      promise.set_value(MakeErrorResult(
          Status::FailedPrecondition("PathEngine is shutting down")));
      return future;
    }
    Pending p;
    p.query = query;
    p.sink = sink;
    p.promise = std::move(promise);
    p.enqueued = std::chrono::steady_clock::now();
    queue_.push_back(std::move(p));
    ++stats_.queries_submitted;
    // Wake the dispatcher on the first pending query (it must arm the
    // max-wait timer) and whenever the size cut is reached.
    notify = queue_.size() == 1 || queue_.size() >= options_.max_batch_size;
  }
  if (notify) work_cv_.notify_all();
  return future;
}

void PathEngine::Flush() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (queue_.empty()) return;
    flush_requested_ = true;
  }
  work_cv_.notify_all();
}

void PathEngine::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  drained_cv_.wait(lk, [&] { return queue_.empty() && !batch_in_flight_; });
}

Status PathEngine::RunBatch(const std::vector<PathQuery>& queries,
                            PathSink* sink, BatchStats* stats) {
  if (!init_status_.ok()) return init_status_;
  DiscardSink discard;
  BatchStats local_stats;
  Status st;
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    st = ExecuteBatch(queries, sink != nullptr ? sink : &discard,
                      &local_stats);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.batches_run;
    stats_.batch_stats.Accumulate(local_stats);
    stats_.distance_cache_hits += local_stats.distance_cache_hits;
    stats_.distance_cache_misses += local_stats.distance_cache_misses;
  }
  if (stats != nullptr) stats->Accumulate(local_stats);
  return st;
}

Status PathEngine::ExecuteBatch(const std::vector<PathQuery>& queries,
                                PathSink* sink, BatchStats* stats) {
  switch (options_.batch.algorithm) {
    case Algorithm::kPathEnum: {
      // Per-query baseline: no shared index, so the context and distance
      // cache have nothing to recycle; kept for algorithm parity.
      HCPATH_RETURN_NOT_OK(options_.batch.Validate());
      HCPATH_RETURN_NOT_OK(ValidateQueries(g_, queries));
      SingleQueryOptions sq;
      sq.max_paths = options_.batch.max_paths_per_query;
      for (size_t i = 0; i < queries.size(); ++i) {
        HCPATH_RETURN_NOT_OK(
            PathEnumQuery(g_, queries[i], sq, i, sink, stats));
      }
      return Status::OK();
    }
    case Algorithm::kBasicEnum:
      return RunBasicEnum(g_, queries, options_.batch,
                          /*optimized_order=*/false, sink, stats, &ctx_);
    case Algorithm::kBasicEnumPlus:
      return RunBasicEnum(g_, queries, options_.batch,
                          /*optimized_order=*/true, sink, stats, &ctx_);
    case Algorithm::kBatchEnum:
      return RunBatchEnum(g_, queries, options_.batch,
                          /*optimized_order=*/false, sink, stats, &ctx_);
    case Algorithm::kBatchEnumPlus:
      return RunBatchEnum(g_, queries, options_.batch,
                          /*optimized_order=*/true, sink, stats, &ctx_);
  }
  return Status::Internal("unknown algorithm");
}

void PathEngine::DispatchLoop() {
  const size_t max_batch = options_.max_batch_size < 1
                               ? 1
                               : options_.max_batch_size;
  const bool timed_cuts = options_.max_wait_seconds > 0;
  const auto max_wait = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(timed_cuts ? options_.max_wait_seconds
                                               : 0));

  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (queue_.empty()) {
      if (stopping_) break;
      flush_requested_ = false;  // nothing left to flush
      drained_cv_.notify_all();
      work_cv_.wait(lk, [&] {
        return stopping_ || flush_requested_ || !queue_.empty();
      });
      continue;
    }

    // Decide the cut. Size, flush, and shutdown cut immediately; otherwise
    // sleep until the oldest pending query's deadline and re-check.
    CutReason reason;
    if (queue_.size() >= max_batch) {
      reason = CutReason::kSize;
    } else if (stopping_ || flush_requested_) {
      reason = CutReason::kFlush;
    } else if (timed_cuts) {
      const auto deadline = queue_.front().enqueued + max_wait;
      const bool expired = !work_cv_.wait_until(lk, deadline, [&] {
        return stopping_ || flush_requested_ || queue_.size() >= max_batch;
      });
      if (!expired) continue;  // woken by a stronger cut; re-evaluate
      reason = CutReason::kWait;
    } else {
      // Untimed mode: only size / flush / shutdown cut.
      work_cv_.wait(lk, [&] {
        return stopping_ || flush_requested_ || queue_.size() >= max_batch;
      });
      continue;
    }

    std::vector<Pending> batch;
    const size_t take = std::min(queue_.size(), max_batch);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    batch_in_flight_ = true;
    lk.unlock();
    RunMicroBatch(std::move(batch), reason);
    lk.lock();
    batch_in_flight_ = false;
    if (queue_.empty()) drained_cv_.notify_all();
  }
  drained_cv_.notify_all();
}

void PathEngine::RunMicroBatch(std::vector<Pending> batch, CutReason reason) {
  const size_t n = batch.size();
  const auto dispatched = std::chrono::steady_clock::now();
  std::vector<PathQuery> queries;
  std::vector<PathSink*> sinks;
  queries.reserve(n);
  sinks.reserve(n);
  for (const Pending& p : batch) {
    queries.push_back(p.query);
    sinks.push_back(p.sink);
  }

  DemuxSink demux(n, sinks, options_.collect_paths);
  BatchStats batch_stats;
  WallTimer timer;
  Status st;
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    st = ExecuteBatch(queries, &demux, &batch_stats);
  }
  const double batch_seconds = timer.ElapsedSeconds();

  // Account the batch before resolving any future: a caller that wakes on
  // future.get() must observe the engine stats already covering its batch.
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.batches_run;
    switch (reason) {
      case CutReason::kSize: ++stats_.size_cuts; break;
      case CutReason::kWait: ++stats_.wait_cuts; break;
      case CutReason::kFlush: ++stats_.flush_cuts; break;
    }
    stats_.queries_completed += n;
    stats_.batch_stats.Accumulate(batch_stats);
    stats_.distance_cache_hits += batch_stats.distance_cache_hits;
    stats_.distance_cache_misses += batch_stats.distance_cache_misses;
  }

  for (size_t i = 0; i < n; ++i) {
    QueryResult r;
    r.status = st;  // the whole micro-batch shares the pipeline's outcome
    r.path_count = demux.count(i);
    r.paths = demux.TakePaths(i);
    r.wait_seconds =
        std::chrono::duration<double>(dispatched - batch[i].enqueued).count();
    r.batch_seconds = batch_seconds;
    batch[i].promise.set_value(std::move(r));
  }
}

PathEngineStats PathEngine::GetStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void PathEngine::InvalidateDistanceCache() {
  std::lock_guard<std::mutex> lk(run_mu_);
  cache_.Invalidate();
}

}  // namespace hcpath
