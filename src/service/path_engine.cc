#include "service/path_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "core/basic_enum.h"
#include "core/batch_enum.h"
#include "core/path_enum.h"
#include "index/cache_persist.h"
#include "service/admission_status.h"
#include "util/timer.h"

namespace hcpath {

namespace {

/// Routes the micro-batch's emission stream to per-query destinations:
/// counts every path, forwards to the query's own sink when given, and
/// otherwise materializes into the query's result set when the engine
/// collects. OnPath calls arrive serialized (the pipeline's ordered merge
/// holds a drain lock), in the deterministic emission order.
class DemuxSink : public PathSink {
 public:
  DemuxSink(size_t n, const std::vector<PathSink*>& sinks, bool collect)
      : counts_(n, 0), sinks_(sinks), collect_(collect) {
    if (collect_) sets_.resize(n);
  }

  void OnPath(size_t query_index, PathView path) override {
    ++counts_[query_index];
    if (sinks_[query_index] != nullptr) {
      sinks_[query_index]->OnPath(query_index, path);
    } else if (collect_) {
      sets_[query_index].Add(path);
    }
  }

  uint64_t count(size_t i) const { return counts_[i]; }
  PathSet TakePaths(size_t i) {
    return collect_ ? std::move(sets_[i]) : PathSet();
  }

 private:
  std::vector<uint64_t> counts_;
  const std::vector<PathSink*>& sinks_;
  bool collect_;
  std::vector<PathSet> sets_;
};

QueryResult MakeErrorResult(Status status, const std::string& tenant) {
  QueryResult r;
  r.status = std::move(status);
  r.tenant = tenant;
  return r;
}

/// The pipeline requires a sink; count-only callers pass nullptr.
class DiscardSink : public PathSink {
 public:
  void OnPath(size_t, PathView) override {}
};

}  // namespace

PathEngine::PathEngine(const Graph& g, const PathEngineOptions& options)
    : fixed_graph_(&g),
      options_(options),
      init_status_(options.batch.Validate()),
      clock_(options.clock != nullptr ? options.clock : &WallClock::Default()),
      cache_(options.enable_distance_cache
                 ? options.distance_cache_max_entries
                 : 0,
             options.distance_cache_max_bytes),
      queue_(options.admission.default_tenant_weight > 0
                 ? options.admission.default_tenant_weight
                 : 1.0) {
  Init();
}

PathEngine::PathEngine(GraphStore* store, const PathEngineOptions& options)
    : store_(store),
      options_(options),
      init_status_(store != nullptr
                       ? options.batch.Validate()
                       : Status::InvalidArgument(
                             "PathEngine requires a non-null GraphStore")),
      clock_(options.clock != nullptr ? options.clock : &WallClock::Default()),
      cache_(options.enable_distance_cache
                 ? options.distance_cache_max_entries
                 : 0,
             options.distance_cache_max_bytes),
      queue_(options.admission.default_tenant_weight > 0
                 ? options.admission.default_tenant_weight
                 : 1.0) {
  Init();
}

void PathEngine::Init() {
  if (init_status_.ok()) init_status_ = options_.admission.Validate();
  if (!init_status_.ok()) return;
  batch_options_ = options_.batch;
  batch_options_.remap_mode = RemapMode::kNone;
  // Bootstrap the serving view: one-time layout pass in fixed mode (every
  // micro-batch reuses the renumbered graph and a distance cache coherent
  // with it); in store mode the same pass re-runs per snapshot.
  if (store_ != nullptr) {
    view_ = MakeView(store_->Current(), nullptr, 0);
  } else {
    view_ = MakeView(nullptr, fixed_graph_, 0);
  }
  for (const auto& [tenant, weight] : options_.admission.tenant_weights) {
    queue_.SetWeight(tenant, weight);
  }
  if (options_.enable_distance_cache) ctx_.distance_cache = &cache_;
  // Resolve the pool once up front: the engine, not the batch call, owns
  // the threads for its whole lifetime.
  ctx_.PoolFor(options_.batch.num_threads);
  if (!options_.manual_dispatch) {
    dispatcher_ = std::thread([this] { DispatchLoop(); });
  }
}

std::shared_ptr<const PathEngine::EngineView> PathEngine::MakeView(
    std::shared_ptr<const GraphSnapshot> snapshot, const Graph* graph,
    uint64_t epoch) const {
  auto view = std::make_shared<EngineView>();
  if (snapshot != nullptr) {
    view->graph = &snapshot->graph;
    view->epoch = snapshot->epoch;
    view->snapshot = std::move(snapshot);
  } else {
    view->graph = graph;
    view->epoch = epoch;
  }
  view->remap = std::make_shared<GraphRemap>(
      GraphRemap::Build(*view->graph, options_.batch.remap_mode));
  view->kernel =
      ResolveKernel(options_.batch.kernel_mode, view->run_graph());
  return view;
}

std::shared_ptr<const PathEngine::EngineView> PathEngine::CurrentView()
    const {
  std::lock_guard<std::mutex> lk(view_mu_);
  return view_;
}

uint64_t PathEngine::current_epoch() const {
  if (!init_status_.ok()) return 0;
  return CurrentView()->epoch;
}

PathEngine::~PathEngine() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stopping_ = true;
    // Wake the dispatcher (shutdown = final Flush) and every submit
    // blocked on queue space (they fail with FailedPrecondition, never
    // enqueue) — then wait for in-flight submits to leave the admission
    // critical region: a woken submitter still touches the ticket deque
    // and condition variables on its way out.
    work_cv_.notify_all();
    space_cv_.notify_all();
    idle_cv_.wait(lk, [&] { return submits_active_ == 0; });
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  if (options_.manual_dispatch && init_status_.ok()) {
    // Manual mode has no dispatcher thread: the destructor steps the
    // scheduler itself until the queue is drained.
    std::unique_lock<std::mutex> lk(mu_);
    while (!queue_.empty()) {
      if (StepDispatchLocked(lk) == 0) break;  // unreachable: kFlush cuts
    }
  }
}

uint64_t PathEngine::QueryCostBytes(const std::string& tenant_id) {
  return sizeof(QueueItem) + tenant_id.size();
}

bool PathEngine::HasSpaceLocked(uint64_t cost) const {
  if (queue_.empty()) return true;  // a lone query is always admissible
  const AdmissionOptions& adm = options_.admission;
  return queue_.size() + 1 <= adm.max_queued_queries &&
         queue_.bytes() + cost <= adm.max_queued_bytes;
}

void PathEngine::UpdateOverloadLocked() {
  const AdmissionOptions& adm = options_.admission;
  const bool overloaded =
      static_cast<double>(queue_.size()) >=
          adm.shed_high_watermark *
              static_cast<double>(adm.max_queued_queries) ||
      static_cast<double>(queue_.bytes()) >=
          adm.shed_high_watermark * static_cast<double>(adm.max_queued_bytes);
  if (overloaded) {
    if (!overload_since_.has_value()) overload_since_ = clock_->Now();
  } else {
    overload_since_.reset();
  }
}

void PathEngine::ShedTargetsLocked(size_t* target_items,
                                   uint64_t* target_bytes) const {
  const AdmissionOptions& adm = options_.admission;
  *target_items = static_cast<size_t>(
      adm.shed_low_watermark * static_cast<double>(adm.max_queued_queries));
  *target_bytes = static_cast<uint64_t>(
      adm.shed_low_watermark * static_cast<double>(adm.max_queued_bytes));
}

bool PathEngine::AboveShedTargetsLocked() const {
  size_t target_items;
  uint64_t target_bytes;
  ShedTargetsLocked(&target_items, &target_bytes);
  return queue_.size() > target_items || queue_.bytes() > target_bytes;
}

bool PathEngine::ShedDueLocked() const {
  return overload_since_.has_value() && AboveShedTargetsLocked() &&
         clock_->Now() - *overload_since_ >=
             options_.admission.shed_patience_seconds;
}

bool PathEngine::ShedIfDueLocked(std::vector<QueueItem>* shed) {
  if (!ShedDueLocked()) return false;
  size_t target_items;
  uint64_t target_bytes;
  ShedTargetsLocked(&target_items, &target_bytes);
  *shed = queue_.ShedDownTo(target_items, target_bytes);
  if (shed->empty()) return false;
  ++stats_.shed_rounds;
  stats_.queries_shed += shed->size();
  for (const QueueItem& item : *shed) ++stats_.tenants[item.tenant].shed;
  UpdateOverloadLocked();
  return true;
}

void PathEngine::FinishSubmitLocked() {
  --submits_active_;
  if (submits_active_ == 0) idle_cv_.notify_all();
}

bool PathEngine::ShedAndResolveLocked(std::unique_lock<std::mutex>& lk) {
  std::vector<QueueItem> shed;
  if (!ShedIfDueLocked(&shed)) return false;
  space_cv_.notify_all();
  if (queue_.empty() && batches_in_flight_ == 0) drained_cv_.notify_all();
  lk.unlock();
  ResolveShed(std::move(shed));
  lk.lock();
  return true;
}

void PathEngine::ResolveShed(std::vector<QueueItem> shed) {
  for (QueueItem& item : shed) {
    // The documented shed outcome (docs/SERVICE.md, "Overload behavior"):
    // canonical retryable ResourceExhausted identifying the policy and the
    // tenant (admission_status.h owns the vocabulary).
    item.value.promise.set_value(
        MakeErrorResult(ShedStatus(item.tenant, item.weight), item.tenant));
  }
}

std::vector<PathEngine::QueueItem> PathEngine::CutBatchLocked(size_t take) {
  std::vector<QueueItem> batch;
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) batch.push_back(queue_.PopNext());
  UpdateOverloadLocked();
  space_cv_.notify_all();  // capacity freed: admit blocked submitters
  return batch;
}

std::future<QueryResult> PathEngine::Submit(const PathQuery& query,
                                            PathSink* sink) {
  return Submit(kDefaultTenant, query, sink);
}

std::future<QueryResult> PathEngine::Submit(const std::string& tenant_id,
                                            const PathQuery& query,
                                            PathSink* sink) {
  std::promise<QueryResult> promise;
  std::future<QueryResult> future = promise.get_future();
  if (!init_status_.ok()) {
    promise.set_value(MakeErrorResult(init_status_, tenant_id));
    return future;
  }
  // Pin the serving view current at admission: this query will validate
  // against, and enumerate, exactly this snapshot, however many updates
  // land before its micro-batch runs (docs/DYNAMIC.md).
  std::shared_ptr<const EngineView> view = CurrentView();
  // Admission-time validation: a bad query is rejected here, alone, so it
  // can never fail the whole micro-batch it would have been cut into.
  Status st = ValidateQueries(*view->graph, {query});
  if (!st.ok()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.queries_rejected;
      TenantAdmissionStats& ts = stats_.tenants[tenant_id];
      ++ts.submitted;
      ++ts.rejected;
    }
    promise.set_value(MakeErrorResult(std::move(st), tenant_id));
    return future;
  }

  const AdmissionOptions& adm = options_.admission;
  const uint64_t cost = QueryCostBytes(tenant_id);
  std::unique_lock<std::mutex> lk(mu_);
  const double submitted_seconds = clock_->Now();
  ++submits_active_;
  ++stats_.tenants[tenant_id].submitted;
  bool ticketed = false;
  uint64_t ticket = 0;
  bool counted_block = false;
  for (;;) {
    if (stopping_) {
      if (ticketed) {
        blocked_.erase(std::find(blocked_.begin(), blocked_.end(), ticket));
        space_cv_.notify_all();  // the next ticket holder re-evaluates
      }
      FinishSubmitLocked();
      lk.unlock();
      // Canonical non-retryable release of a (possibly blocked) submitter
      // at shutdown: this engine will never admit again, so the classifier
      // must steer callers to a different engine, not a retry loop.
      promise.set_value(MakeErrorResult(ShuttingDownStatus(), tenant_id));
      return future;
    }
    // Overload shedding may be due while we wait for space (every blocked
    // submitter and the dispatcher race benignly for it — ShedIfDueLocked
    // re-checks the targets under the lock).
    if (ShedAndResolveLocked(lk)) continue;
    // Admit when there is space AND we are first in line: a ticket holder
    // must be at the front of the blocked FIFO, and a new arrival may not
    // overtake anyone already blocked (otherwise steady arrivals could
    // starve a blocked submitter by taking every freed slot).
    if (HasSpaceLocked(cost) &&
        (ticketed ? blocked_.front() == ticket : blocked_.empty())) {
      break;
    }
    if (adm.backpressure == AdmissionBackpressure::kFailFast) {
      ++stats_.submits_fast_failed;
      ++stats_.tenants[tenant_id].fast_failed;
      // The documented fast-fail outcome (docs/SERVICE.md): canonical
      // retryable ResourceExhausted from admission_status.h.
      const Status full = QueueFullStatus(queue_.size(), queue_.bytes());
      // A fail-fast submit never blocks, so it can never hold a ticket.
      HCPATH_DCHECK(!ticketed);
      FinishSubmitLocked();
      lk.unlock();
      promise.set_value(MakeErrorResult(full, tenant_id));
      return future;
    }
    if (!ticketed) {
      ticketed = true;
      ticket = next_ticket_++;
      blocked_.push_back(ticket);
    }
    if (!counted_block) {
      counted_block = true;
      ++stats_.backpressure_blocks;
      ++stats_.tenants[tenant_id].blocked;
    }
    const auto ready = [&] {
      return stopping_ ||
             (blocked_.front() == ticket && HasSpaceLocked(cost)) ||
             ShedDueLocked();
    };
    if (overload_since_.has_value() && AboveShedTargetsLocked()) {
      // Sleep at most until shedding becomes due, so a fully-blocked
      // system still sheds on schedule.
      clock_->WaitUntil(lk, space_cv_,
                        *overload_since_ + adm.shed_patience_seconds, ready);
    } else {
      clock_->Wait(lk, space_cv_, ready);
    }
  }
  if (ticketed) {
    blocked_.erase(std::find(blocked_.begin(), blocked_.end(), ticket));
    space_cv_.notify_all();  // the next ticket may be admissible now
  }
  Pending p;
  p.query = query;
  p.sink = sink;
  p.promise = std::move(promise);
  p.view = std::move(view);
  p.submitted_seconds = submitted_seconds;
  queue_.Push(tenant_id, clock_->Now(), cost, std::move(p));
  ++stats_.queries_submitted;
  ++stats_.tenants[tenant_id].admitted;
  stats_.peak_queued_queries =
      std::max(stats_.peak_queued_queries,
               static_cast<uint64_t>(queue_.size()));
  stats_.peak_queued_bytes =
      std::max(stats_.peak_queued_bytes, queue_.bytes());
  UpdateOverloadLocked();
  // Wake the dispatcher on the first pending query (it must arm the
  // max-wait timer) and whenever the size cut is reached. Notified under
  // the lock: the engine may be destroyed the moment the lock is free.
  if (queue_.size() == 1 || queue_.size() >= options_.max_batch_size) {
    work_cv_.notify_all();
  }
  FinishSubmitLocked();
  lk.unlock();
  return future;
}

void PathEngine::Flush() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (queue_.empty()) return;
    flush_requested_ = true;
  }
  work_cv_.notify_all();
}

void PathEngine::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  drained_cv_.wait(lk,
                   [&] { return queue_.empty() && batches_in_flight_ == 0; });
}

size_t PathEngine::StepDispatch() {
  if (!init_status_.ok() || !options_.manual_dispatch) return 0;
  std::unique_lock<std::mutex> lk(mu_);
  // Counted like a Submit: the destructor must not free the engine while
  // an external stepper is still running a batch.
  ++submits_active_;
  const size_t n = StepDispatchLocked(lk);
  FinishSubmitLocked();
  return n;
}

size_t PathEngine::StepDispatchLocked(std::unique_lock<std::mutex>& lk) {
  const size_t max_batch =
      options_.max_batch_size < 1 ? 1 : options_.max_batch_size;
  // Overload decisions precede cut decisions — except at shutdown, which
  // drains: every still-queued query runs.
  if (!stopping_) ShedAndResolveLocked(lk);
  if (queue_.empty()) {
    flush_requested_ = false;
    if (batches_in_flight_ == 0) drained_cv_.notify_all();
    return 0;
  }
  CutReason reason;
  if (queue_.size() >= max_batch) {
    reason = CutReason::kSize;
  } else if (stopping_ || flush_requested_) {
    reason = CutReason::kFlush;
  } else if (options_.max_wait_seconds > 0 &&
             clock_->Now() >= queue_.OldestEnqueueSeconds() +
                                  options_.max_wait_seconds) {
    reason = CutReason::kWait;
  } else {
    return 0;
  }
  std::vector<QueueItem> batch =
      CutBatchLocked(std::min(queue_.size(), max_batch));
  const size_t n = batch.size();
  ++batches_in_flight_;
  lk.unlock();
  RunMicroBatch(std::move(batch), reason);
  lk.lock();
  --batches_in_flight_;
  if (queue_.empty()) {
    flush_requested_ = false;
    if (batches_in_flight_ == 0) drained_cv_.notify_all();
  }
  return n;
}

Status PathEngine::RunBatch(const std::vector<PathQuery>& queries,
                            PathSink* sink, BatchStats* stats) {
  if (!init_status_.ok()) return init_status_;
  // Synchronous batches pin the current view exactly like Submit does.
  std::shared_ptr<const EngineView> view = CurrentView();
  DiscardSink discard;
  BatchStats local_stats;
  Status st;
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    ctx_.graph_epoch = view->epoch;
    st = ExecuteBatch(*view, queries, sink != nullptr ? sink : &discard,
                      &local_stats);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.batches_run;
    stats_.batch_stats.Accumulate(local_stats);
    stats_.distance_cache_hits += local_stats.distance_cache_hits;
    stats_.distance_cache_misses += local_stats.distance_cache_misses;
  }
  if (stats != nullptr) stats->Accumulate(local_stats);
  view.reset();  // drop the pin before GC so this snapshot can collect
  if (store_ != nullptr) store_->CollectGarbage();
  return st;
}

StatusOr<GraphUpdateResult> PathEngine::ApplyUpdates(
    std::span<const EdgeUpdate> updates) {
  if (!init_status_.ok()) return init_status_;
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "ApplyUpdates requires a store-backed PathEngine");
  }
  // Serializes updaters only: admitted batches keep enumerating their
  // pinned snapshots while the new one is built and installed, so updates
  // never stall serving (docs/DYNAMIC.md has the lifecycle).
  std::lock_guard<std::mutex> lk(update_mu_);
  std::shared_ptr<const EngineView> old_view = CurrentView();
  StatusOr<GraphUpdateResult> applied = store_->ApplyUpdates(updates);
  HCPATH_RETURN_NOT_OK(applied.status());
  std::shared_ptr<const EngineView> next =
      MakeView(applied->snapshot, nullptr, 0);
  if (options_.enable_distance_cache) {
    if (next->remap->is_identity()) {
      // Cone-precise reconciliation: only entries whose capped BFS can
      // cross a touched edge are dropped; everything else is revalidated
      // for the new epoch and keeps serving (the tentpole's correctness
      // core — EndpointDistanceCache::InvalidateUpdated has the argument).
      std::vector<EndpointDistanceCache::RepairKey> dead;
      const bool repair = options_.cache_repair_max_keys > 0;
      cache_.InvalidateUpdated(*old_view->graph, *next->graph,
                               applied->applied.added,
                               applied->applied.removed, old_view->epoch,
                               next->epoch, repair ? &dead : nullptr);
      // Repair before publishing the view: by the time any query can pin
      // the new epoch, the repaired entries are already serving it.
      if (!dead.empty()) RepairCacheEntries(*next, dead);
    } else {
      // A non-identity remap was rebuilt for the new snapshot: cache keys
      // live in the renumbered id space, and the renumbering itself just
      // changed, so no old entry's key is meaningful anymore (repair keys
      // would be meaningless too — skip repair, refill lazily).
      cache_.Invalidate();
    }
  }
  {
    std::lock_guard<std::mutex> vlk(view_mu_);
    view_ = next;
  }
  {
    std::lock_guard<std::mutex> slk(mu_);
    ++stats_.graph_updates;
  }
  // Max-lag enforcement AFTER the swap: `next` is the current epoch the
  // queued pins are measured against, and the failed queries' pins are
  // released before the GC below so their snapshots can reclaim now.
  if (options_.admission.max_snapshot_lag > 0) {
    FailOverLaggedQueued(next->epoch);
  }
  old_view.reset();  // drop our pin on the retired snapshot before GC
  store_->CollectGarbage();
  return applied;
}

void PathEngine::RepairCacheEntries(
    const EngineView& view, std::vector<EndpointDistanceCache::RepairKey>& dead) {
  // `dead` is MRU-first, so truncating to the budget keeps the keys most
  // likely to be probed again; the remainder refills lazily on its next
  // miss exactly as with repair disabled.
  uint64_t skipped = 0;
  if (dead.size() > options_.cache_repair_max_keys) {
    skipped = dead.size() - options_.cache_repair_max_keys;
    dead.resize(options_.cache_repair_max_keys);
  }
  const Graph& g = *view.graph;
  uint64_t repaired = 0;
  for (Direction dir : {Direction::kForward, Direction::kBackward}) {
    repair_sources_.clear();
    repair_caps_.clear();
    for (const EndpointDistanceCache::RepairKey& k : dead) {
      if (k.dir != dir || k.vertex >= g.NumVertices()) continue;
      repair_sources_.push_back(k.vertex);
      repair_caps_.push_back(k.cap);
    }
    if (repair_sources_.empty()) continue;
    // Exactly the BFS a cache miss in the next index build would run
    // (DistanceIndex::Build's miss path), so a repaired entry is
    // bit-identical to the map a cold probe would insert.
    MultiSourceBfs(g, repair_sources_, repair_caps_, dir, nullptr,
                   &repair_scratch_, &repair_result_);
    for (size_t i = 0; i < repair_sources_.size(); ++i) {
      cache_.Insert(repair_sources_[i], dir, repair_caps_[i], view.epoch,
                    std::move(repair_result_.per_source[i]));
    }
    repaired += repair_sources_.size();
  }
  std::lock_guard<std::mutex> lk(mu_);
  stats_.cache_entries_repaired += repaired;
  stats_.cache_repair_skipped += skipped;
}

void PathEngine::FailOverLaggedQueued(uint64_t new_epoch) {
  const uint64_t max_lag = options_.admission.max_snapshot_lag;
  std::vector<QueueItem> lagged;
  {
    std::lock_guard<std::mutex> lk(mu_);
    lagged = queue_.RemoveIf([&](const QueueItem& item) {
      return item.value.view->epoch + max_lag < new_epoch;
    });
    if (lagged.empty()) return;
    stats_.queries_lag_failed += lagged.size();
    for (const QueueItem& item : lagged) {
      ++stats_.tenants[item.tenant].lag_failed;
    }
    UpdateOverloadLocked();
    space_cv_.notify_all();  // capacity freed: admit blocked submitters
    if (queue_.empty() && batches_in_flight_ == 0) drained_cv_.notify_all();
  }
  for (QueueItem& item : lagged) {
    const uint64_t pinned = item.value.view->epoch;
    item.value.view.reset();  // release the snapshot pin before resolving
    // The documented max-lag outcome (docs/DYNAMIC.md): canonical
    // permanent FailedPrecondition naming both epochs and the bound
    // (admission_status.h owns the vocabulary).
    QueryResult r = MakeErrorResult(
        SnapshotLagStatus(pinned, new_epoch, max_lag, item.tenant),
        item.tenant);
    r.graph_epoch = pinned;
    item.value.promise.set_value(std::move(r));
  }
}

Status PathEngine::ExecuteBatch(const EngineView& view,
                                const std::vector<PathQuery>& queries,
                                PathSink* sink, BatchStats* stats) {
  if (view.remap->is_identity()) {
    return ExecuteBatchOn(view, queries, sink, stats);
  }
  // Validate against the ORIGINAL graph before translating, exactly where
  // an un-remapped batch validates: whole-batch, up front. Messages embed
  // the caller's ids; after this passes, translation (a bijection) cannot
  // introduce a validation failure downstream.
  HCPATH_RETURN_NOT_OK(ValidateQueries(*view.graph, queries));
  TranslatingSink translating(*view.remap, sink);
  return ExecuteBatchOn(view, view.remap->TranslateQueries(queries),
                        &translating, stats);
}

Status PathEngine::ExecuteBatchOn(const EngineView& view,
                                  const std::vector<PathQuery>& queries,
                                  PathSink* sink, BatchStats* stats) {
  const Graph& g = view.run_graph();
  switch (batch_options_.algorithm) {
    case Algorithm::kPathEnum: {
      // Per-query baseline: no shared index, so the context and distance
      // cache have nothing to recycle; kept for algorithm parity.
      HCPATH_RETURN_NOT_OK(batch_options_.Validate());
      HCPATH_RETURN_NOT_OK(ValidateQueries(g, queries));
      SingleQueryOptions sq;
      sq.max_paths = batch_options_.max_paths_per_query;
      sq.kernel = batch_options_.kernel_mode;
      sq.resolved = view.kernel;  // dispatch resolved once per view
      for (size_t i = 0; i < queries.size(); ++i) {
        HCPATH_RETURN_NOT_OK(
            PathEnumQuery(g, queries[i], sq, i, sink, stats));
      }
      return Status::OK();
    }
    case Algorithm::kBasicEnum:
      return RunBasicEnum(g, queries, batch_options_,
                          /*optimized_order=*/false, sink, stats, &ctx_);
    case Algorithm::kBasicEnumPlus:
      return RunBasicEnum(g, queries, batch_options_,
                          /*optimized_order=*/true, sink, stats, &ctx_);
    case Algorithm::kBatchEnum:
      return RunBatchEnum(g, queries, batch_options_,
                          /*optimized_order=*/false, sink, stats, &ctx_);
    case Algorithm::kBatchEnumPlus:
      return RunBatchEnum(g, queries, batch_options_,
                          /*optimized_order=*/true, sink, stats, &ctx_);
  }
  return Status::Internal("unknown algorithm");
}

void PathEngine::DispatchLoop() {
  const size_t max_batch = options_.max_batch_size < 1
                               ? 1
                               : options_.max_batch_size;
  const bool timed_cuts = options_.max_wait_seconds > 0;

  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (queue_.empty()) {
      if (stopping_) break;
      flush_requested_ = false;  // nothing left to flush
      drained_cv_.notify_all();
      clock_->Wait(lk, work_cv_, [&] {
        return stopping_ || flush_requested_ || !queue_.empty();
      });
      continue;
    }

    // Overload decisions precede cut decisions — except at shutdown, which
    // drains everything still queued.
    if (!stopping_ && ShedAndResolveLocked(lk)) continue;

    // Decide the cut. Size, flush, and shutdown cut immediately; otherwise
    // sleep until the earliest actionable deadline — the oldest pending
    // query's wait cut and/or the overload shed patience — and re-check.
    CutReason reason;
    if (queue_.size() >= max_batch) {
      reason = CutReason::kSize;
    } else if (stopping_ || flush_requested_) {
      reason = CutReason::kFlush;
    } else {
      double deadline = std::numeric_limits<double>::infinity();
      if (timed_cuts) {
        deadline = queue_.OldestEnqueueSeconds() + options_.max_wait_seconds;
      }
      if (overload_since_.has_value() && AboveShedTargetsLocked()) {
        deadline = std::min(deadline,
                            *overload_since_ +
                                options_.admission.shed_patience_seconds);
      }
      const auto pred = [&] {
        return stopping_ || flush_requested_ || queue_.size() >= max_batch;
      };
      if (!std::isfinite(deadline)) {
        // Untimed mode, no overload: only size / flush / shutdown cut.
        clock_->Wait(lk, work_cv_, pred);
        continue;
      }
      if (clock_->WaitUntil(lk, work_cv_, deadline, pred)) {
        continue;  // woken by a stronger cut; re-evaluate
      }
      // The deadline expired — but the lock was released while we slept:
      // a blocked submitter may have shed the whole queue in the interim.
      if (queue_.empty()) continue;
      // Shedding wins over the wait cut (the loop top sheds); only claim
      // a wait cut when it actually expired.
      if (ShedDueLocked()) continue;
      if (!timed_cuts ||
          clock_->Now() < queue_.OldestEnqueueSeconds() +
                              options_.max_wait_seconds) {
        continue;
      }
      reason = CutReason::kWait;
    }

    std::vector<QueueItem> batch =
        CutBatchLocked(std::min(queue_.size(), max_batch));
    ++batches_in_flight_;
    lk.unlock();
    RunMicroBatch(std::move(batch), reason);
    lk.lock();
    --batches_in_flight_;
    if (queue_.empty() && batches_in_flight_ == 0) drained_cv_.notify_all();
  }
  drained_cv_.notify_all();
}

void PathEngine::RunMicroBatch(std::vector<QueueItem> batch,
                               CutReason reason) {
  const size_t n = batch.size();
  const double dispatched = clock_->Now();

  // Group the cut's queries by pinned snapshot, preserving WFQ drain order
  // within each group. Splitting is sound because admission never alters
  // results: a query's paths, count, and Status are independent of which
  // queries share its pipeline invocation (the determinism contract), so
  // executing per-epoch sub-batches changes no individual result. A
  // fixed-mode cut — and any cut with no update in between — is exactly
  // one group, i.e. the pre-dynamic behavior.
  struct Group {
    const EngineView* view = nullptr;
    std::vector<size_t> items;  // indices into `batch`
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < n; ++i) {
    const EngineView* v = batch[i].value.view.get();
    Group* group = nullptr;
    for (Group& cand : groups) {
      if (cand.view->epoch == v->epoch) {
        group = &cand;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back({v, {}});
      group = &groups.back();
    }
    group->items.push_back(i);
  }

  std::vector<Status> item_status(n);
  std::vector<uint64_t> item_count(n);
  std::vector<PathSet> item_paths(n);
  std::vector<double> item_seconds(n, 0.0);
  std::vector<uint64_t> item_epoch(n, 0);
  BatchStats cut_stats;
  {
    // One run_mu_ hold for the whole cut: the BatchContext (and its
    // graph_epoch) admit one pipeline invocation at a time.
    std::lock_guard<std::mutex> lk(run_mu_);
    for (const Group& group : groups) {
      std::vector<PathQuery> queries;
      std::vector<PathSink*> sinks;
      queries.reserve(group.items.size());
      sinks.reserve(group.items.size());
      for (size_t i : group.items) {
        queries.push_back(batch[i].value.query);
        sinks.push_back(batch[i].value.sink);
      }
      DemuxSink demux(group.items.size(), sinks, options_.collect_paths);
      BatchStats group_stats;
      WallTimer timer;
      ctx_.graph_epoch = group.view->epoch;
      const Status st =
          ExecuteBatch(*group.view, queries, &demux, &group_stats);
      const double group_seconds = timer.ElapsedSeconds();
      for (size_t k = 0; k < group.items.size(); ++k) {
        const size_t i = group.items[k];
        // The whole sub-batch shares its pipeline invocation's outcome.
        item_status[i] = st;
        item_count[i] = demux.count(k);
        item_paths[i] = demux.TakePaths(k);
        item_seconds[i] = group_seconds;
        item_epoch[i] = group.view->epoch;
      }
      cut_stats.Accumulate(group_stats);
    }
  }

  // Account the batch before resolving any future: a caller that wakes on
  // future.get() must observe the engine stats already covering its batch.
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.batches_run += groups.size();
    switch (reason) {
      case CutReason::kSize: ++stats_.size_cuts; break;
      case CutReason::kWait: ++stats_.wait_cuts; break;
      case CutReason::kFlush: ++stats_.flush_cuts; break;
    }
    stats_.queries_completed += n;
    for (const QueueItem& item : batch) {
      ++stats_.tenants[item.tenant].completed;
    }
    stats_.batch_stats.Accumulate(cut_stats);
    stats_.distance_cache_hits += cut_stats.distance_cache_hits;
    stats_.distance_cache_misses += cut_stats.distance_cache_misses;
  }

  for (size_t i = 0; i < n; ++i) {
    QueryResult r;
    r.status = std::move(item_status[i]);
    r.tenant = batch[i].tenant;
    r.path_count = item_count[i];
    r.paths = std::move(item_paths[i]);
    r.graph_epoch = item_epoch[i];
    r.wait_seconds = dispatched - batch[i].value.submitted_seconds;
    r.batch_seconds = item_seconds[i];
    batch[i].value.promise.set_value(std::move(r));
  }
  // Drop this cut's snapshot pins before collecting, so a snapshot whose
  // last reader was this cut reclaims now instead of at the next update.
  batch.clear();
  if (store_ != nullptr) store_->CollectGarbage();
}

PathEngineStats PathEngine::GetStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void PathEngine::InvalidateDistanceCache() {
  std::lock_guard<std::mutex> lk(run_mu_);
  cache_.Invalidate();
}

Status PathEngine::SaveDistanceCache(const std::string& path) {
  if (!init_status_.ok()) return init_status_;
  if (!options_.enable_distance_cache) {
    return Status::FailedPrecondition(
        "distance cache is disabled on this engine");
  }
  // update_mu_ excludes ApplyUpdates, so the view (and with it the epoch
  // and run graph the export is keyed to) cannot advance mid-spill.
  // Lookups/inserts from a concurrently running batch are fine: the cache
  // is internally locked and ExportEntries only takes entries valid at
  // this epoch.
  std::lock_guard<std::mutex> update_lk(update_mu_);
  std::shared_ptr<const EngineView> view = CurrentView();
  return SaveEndpointCacheSpill(cache_, view->epoch, view->run_graph(), path);
}

StatusOr<size_t> PathEngine::RestoreDistanceCache(const std::string& path) {
  if (!init_status_.ok()) return init_status_;
  if (!options_.enable_distance_cache) {
    return Status::FailedPrecondition(
        "distance cache is disabled on this engine");
  }
  std::lock_guard<std::mutex> update_lk(update_mu_);
  std::shared_ptr<const EngineView> view = CurrentView();
  return RestoreEndpointCacheSpill(&cache_, view->epoch, view->run_graph(),
                                   path);
}

}  // namespace hcpath
