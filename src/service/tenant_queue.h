#ifndef HCPATH_SERVICE_TENANT_QUEUE_H_
#define HCPATH_SERVICE_TENANT_QUEUE_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace hcpath {

/// Per-tenant FIFO queues drained by start-time weighted fair queueing,
/// with entry/byte accounting and lowest-weight-first shed selection — the
/// admission data structure of the PathEngine scheduler (docs/SERVICE.md).
///
/// Not thread-safe: the engine guards it with its admission mutex. Every
/// policy here is a pure function of the push/pop/shed call sequence, which
/// is what makes scheduler decisions exactly assertable under the
/// virtual-clock harness.
///
/// Drain policy (PopNext): each tenant carries a virtual service tag; the
/// next item comes from the non-empty tenant whose finish tag
/// (service + 1/weight) is smallest, ties broken by lexicographically
/// smallest tenant id, FIFO within a tenant. A tenant arriving into an
/// empty queue starts at the queue-wide virtual time, so an idle tenant
/// cannot hoard credit. Over any backlogged interval each tenant therefore
/// receives service proportional to its weight (classic SFQ fairness).
///
/// Shed policy (ShedDownTo): drop waiting items, lowest tenant weight
/// first — ties broken by lexicographically greatest tenant id — and
/// newest-first within a tenant (the oldest items have paid the most
/// waiting and are kept), until both the entry and byte targets hold.
template <typename T>
class WeightedFairQueue {
 public:
  struct Item {
    std::string tenant;
    double weight = 1;
    double enqueued_seconds = 0;
    uint64_t cost_bytes = 0;
    T value;
  };

  /// Fixes `tenant`'s weight (> 0). Unregistered tenants use
  /// `default_weight` from the constructor.
  void SetWeight(const std::string& tenant, double weight) {
    HCPATH_DCHECK(weight > 0);
    TenantState& ts = tenants_[tenant];
    ts.weight = weight;
  }

  explicit WeightedFairQueue(double default_weight = 1.0)
      : default_weight_(default_weight) {}

  double WeightOf(const std::string& tenant) const {
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? default_weight_ : it->second.weight;
  }

  size_t size() const { return total_items_; }
  bool empty() const { return total_items_ == 0; }
  uint64_t bytes() const { return total_bytes_; }

  /// Earliest enqueue time over all queued items (the oldest item is at
  /// some tenant's front). Requires !empty().
  double OldestEnqueueSeconds() const {
    HCPATH_DCHECK(!empty());
    double oldest = std::numeric_limits<double>::infinity();
    for (const auto& [id, ts] : tenants_) {
      if (!ts.queue.empty()) {
        oldest = std::min(oldest, ts.queue.front().enqueued_seconds);
      }
    }
    return oldest;
  }

  void Push(const std::string& tenant, double now_seconds,
            uint64_t cost_bytes, T value) {
    TenantState& ts = Ensure(tenant);
    if (ts.queue.empty()) {
      // Re-sync an idle tenant to the queue-wide virtual time: it competes
      // from now on, it does not cash in idle time.
      ts.service = std::max(ts.service, virtual_time_);
    }
    Item item;
    item.tenant = tenant;
    item.weight = ts.weight;
    item.enqueued_seconds = now_seconds;
    item.cost_bytes = cost_bytes;
    item.value = std::move(value);
    ts.queue.push_back(std::move(item));
    ts.bytes += cost_bytes;
    ++total_items_;
    total_bytes_ += cost_bytes;
  }

  /// Dequeues the WFQ-next item. Requires !empty().
  Item PopNext() {
    HCPATH_DCHECK(!empty());
    TenantState* best = nullptr;
    double best_finish = 0;
    for (auto& [id, ts] : tenants_) {
      if (ts.queue.empty()) continue;
      const double finish = ts.service + 1.0 / ts.weight;
      // Strict < plus ascending map order = smallest-id tie-break.
      if (best == nullptr || finish < best_finish) {
        best = &ts;
        best_finish = finish;
      }
    }
    best->service = best_finish;
    virtual_time_ = std::max(virtual_time_, best_finish);
    Item item = std::move(best->queue.front());
    best->queue.pop_front();
    best->bytes -= item.cost_bytes;
    --total_items_;
    total_bytes_ -= item.cost_bytes;
    return item;
  }

  /// Removes waiting items per the shed policy until
  /// size() <= target_items and bytes() <= target_bytes; returns them in
  /// shed order. Never blocks; may return fewer than asked only when the
  /// queue empties.
  std::vector<Item> ShedDownTo(size_t target_items, uint64_t target_bytes) {
    std::vector<Item> shed;
    while (total_items_ > 0 &&
           (total_items_ > target_items || total_bytes_ > target_bytes)) {
      TenantState* victim = nullptr;
      const std::string* victim_id = nullptr;
      for (auto& [id, ts] : tenants_) {
        if (ts.queue.empty()) continue;
        // Lowest weight first; ties -> lexicographically greatest id (the
        // mirror image of the drain tie-break, so the tenant served last is
        // also shed first).
        if (victim == nullptr || ts.weight < victim->weight ||
            (ts.weight == victim->weight && id > *victim_id)) {
          victim = &ts;
          victim_id = &id;
        }
      }
      Item item = std::move(victim->queue.back());
      victim->queue.pop_back();
      victim->bytes -= item.cost_bytes;
      --total_items_;
      total_bytes_ -= item.cost_bytes;
      shed.push_back(std::move(item));
    }
    return shed;
  }

  /// Removes every waiting item for which `pred(item)` returns true,
  /// preserving FIFO order among survivors, and returns the removed items
  /// in deterministic order (ascending tenant id, FIFO within a tenant).
  /// Accounting is maintained; tenant service tags are untouched — removal
  /// is not service, so surviving tenants' WFQ shares are unaffected. The
  /// engine's max-snapshot-lag enforcement drains over-lagged pins with
  /// this (docs/DYNAMIC.md).
  template <typename Pred>
  std::vector<Item> RemoveIf(Pred pred) {
    std::vector<Item> removed;
    for (auto& [id, ts] : tenants_) {
      std::deque<Item> kept;
      for (Item& item : ts.queue) {
        if (pred(item)) {
          ts.bytes -= item.cost_bytes;
          --total_items_;
          total_bytes_ -= item.cost_bytes;
          removed.push_back(std::move(item));
        } else {
          kept.push_back(std::move(item));
        }
      }
      ts.queue.swap(kept);
    }
    return removed;
  }

 private:
  struct TenantState {
    double weight = 1;
    double service = 0;  ///< finish tag of this tenant's last dequeued item
    uint64_t bytes = 0;
    std::deque<Item> queue;
  };

  TenantState& Ensure(const std::string& tenant) {
    auto it = tenants_.find(tenant);
    if (it != tenants_.end()) return it->second;
    TenantState ts;
    ts.weight = default_weight_;
    return tenants_.emplace(tenant, std::move(ts)).first->second;
  }

  double default_weight_;
  double virtual_time_ = 0;  ///< largest finish tag dequeued so far
  size_t total_items_ = 0;
  uint64_t total_bytes_ = 0;
  /// Ordered map: deterministic iteration is what makes the tie-breaks
  /// (and therefore batch composition and shed order) reproducible.
  std::map<std::string, TenantState> tenants_;
};

}  // namespace hcpath

#endif  // HCPATH_SERVICE_TENANT_QUEUE_H_
