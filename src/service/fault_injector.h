#ifndef HCPATH_SERVICE_FAULT_INJECTOR_H_
#define HCPATH_SERVICE_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace hcpath {

/// The kinds of failure a scripted fault schedule can inject at a shard
/// dispatch boundary (docs/SHARDING.md, "Fault model"). All of them are
/// expressed in *virtual* time / dispatch counts, so a schedule replays
/// bit-identically under VirtualClock + Step() — the property every
/// sharded-service test and the differential fuzzer lean on.
enum class FaultKind {
  /// The shard process dies at dispatch start: the in-flight attempt and
  /// everything queued behind it will be failed over once missed heartbeats
  /// drive the supervisor to kDown; the shard later restarts from the
  /// shared GraphStore snapshot.
  kCrash,
  /// The shard stalls for `seconds` of virtual time before executing: the
  /// attempt completes late (possibly after its attempt-timeout already
  /// triggered a retry elsewhere), and heartbeats are suppressed for the
  /// duration.
  kHang,
  /// The shard executes the query but the reply is lost. The caller can
  /// only observe this via the per-attempt timeout; the retry then
  /// re-executes (safe: queries are read-only and deterministic).
  kDropReply,
  /// The shard's service time is multiplied by `factor` — the classic
  /// straggler. This is what hedged dispatch exists to mask.
  kSlow,
  /// The next `count` dispatches on the shard fail immediately with
  /// kUnavailable, then the shard behaves normally. Models transient
  /// dependency errors that bounded retry + backoff should absorb.
  kFailN,
};

const char* FaultKindName(FaultKind kind);

/// One scripted fault: "on shard `shard`, starting at its `at_dispatch`-th
/// dispatch (0-based, counted per shard), apply `kind` to the next `count`
/// dispatches". Fields `seconds` / `factor` parameterize kHang / kSlow.
struct FaultRule {
  int shard = 0;
  uint64_t at_dispatch = 0;  ///< first per-shard dispatch ordinal affected
  uint64_t count = 1;        ///< how many dispatches the rule covers
  FaultKind kind = FaultKind::kFailN;
  double seconds = 0.0;  ///< kHang: virtual stall before execution
  double factor = 1.0;   ///< kSlow: service-time multiplier (>= 1)
};

/// What the injector tells the dispatcher to do with one attempt. At most
/// one rule fires per dispatch (first match in script order wins), so the
/// decision is a simple tagged record rather than a combination.
struct FaultDecision {
  bool crash = false;        ///< kCrash fired: mark the shard dead
  bool drop_reply = false;   ///< kDropReply fired: execute, discard reply
  bool fail = false;         ///< kFailN fired: reply kUnavailable, no work
  double hang_seconds = 0.0; ///< kHang: add this virtual stall
  double slow_factor = 1.0;  ///< kSlow: multiply service time
};

/// A scriptable, deterministic fault seam for the sharded service. The
/// production configuration is simply a null pointer (or an empty script):
/// `OnDispatch` is only consulted by ShardSupervisor, and a null/inert
/// injector costs one branch per dispatch. Under VirtualClock the decision
/// stream is a pure function of (script, per-shard dispatch ordinals), so
/// any failure schedule — and therefore any test — replays exactly.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(std::vector<FaultRule> script);

  /// Appends a rule to the script. Rules are matched in insertion order;
  /// the first rule covering (shard, dispatch ordinal) wins.
  void AddRule(const FaultRule& rule);

  /// Consulted by the supervisor at the start of shard `shard`'s
  /// `dispatch`-th dispatch (per-shard 0-based ordinal). Returns the
  /// decision for this attempt; the default-constructed decision means "no
  /// fault". Each rule fires at most `count` times, tracked per rule, so
  /// fail-N-then-succeed works without the caller counting.
  FaultDecision OnDispatch(int shard, uint64_t dispatch);

  /// True when no rule can ever fire again — used by tests to assert a
  /// schedule was fully consumed.
  bool Exhausted() const;

  /// Total decisions with at least one fault applied, per kind — lets
  /// tests and the bench reconcile injected faults against observed
  /// retries/failovers as an identity.
  uint64_t fired(FaultKind kind) const;

  std::string DebugString() const;

 private:
  struct RuleState {
    FaultRule rule;
    uint64_t fired = 0;  ///< how many dispatches this rule already covered
  };
  std::vector<RuleState> rules_;
  uint64_t fired_by_kind_[5] = {0, 0, 0, 0, 0};
};

}  // namespace hcpath

#endif  // HCPATH_SERVICE_FAULT_INJECTOR_H_
