#ifndef HCPATH_SERVICE_CLOCK_H_
#define HCPATH_SERVICE_CLOCK_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>

namespace hcpath {

/// Time source and wait strategy for the PathEngine admission layer
/// (docs/SERVICE.md, "Admission determinism").
///
/// Every timing decision the scheduler makes — wait cuts, overload patience
/// before shedding, blocked-submit deadlines — goes through one of these
/// three calls, so the wall-clock scheduler and the deterministic
/// virtual-clock simulation the tests drive are the same code with a
/// different Clock injected.
///
/// Contract: `lk` is locked on entry and on return of both wait calls, and
/// the predicate is only ever evaluated while `lk` is held (exactly the
/// std::condition_variable contract). Implementations must wake a waiter
/// whenever `cv` is notified; timed implementations must additionally wake
/// it once Now() reaches `deadline_seconds`.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic seconds since an implementation-defined epoch.
  virtual double Now() const = 0;

  /// Blocks until pred() holds or Now() >= deadline_seconds.
  /// Returns pred() at wakeup (false = the deadline expired first).
  virtual bool WaitUntil(std::unique_lock<std::mutex>& lk,
                         std::condition_variable& cv, double deadline_seconds,
                         const std::function<bool()>& pred) = 0;

  /// Blocks until pred() holds (no deadline).
  virtual void Wait(std::unique_lock<std::mutex>& lk,
                    std::condition_variable& cv,
                    const std::function<bool()>& pred) = 0;
};

/// Production clock: std::chrono::steady_clock, epoch = construction.
class WallClock : public Clock {
 public:
  WallClock() : base_(std::chrono::steady_clock::now()) {}

  double Now() const override;
  bool WaitUntil(std::unique_lock<std::mutex>& lk, std::condition_variable& cv,
                 double deadline_seconds,
                 const std::function<bool()>& pred) override;
  void Wait(std::unique_lock<std::mutex>& lk, std::condition_variable& cv,
            const std::function<bool()>& pred) override;

  /// Process-wide default instance (what a PathEngine uses when no clock is
  /// injected).
  static WallClock& Default();

 private:
  const std::chrono::steady_clock::time_point base_;
};

/// Deterministic test clock: time only moves when the test calls
/// Advance/AdvanceTo. Waiters poll: each blocked wait sleeps in short
/// wait_for slices and re-checks its predicate and deadline, so
/// correctness never depends on a wakeup notification reaching a waiter —
/// AdvanceTo just publishes the new time (a notify sent without the
/// waiter's mutex could otherwise be lost in the window between a
/// predicate check and the block, and a waiter registry would dangle once
/// the owning engine is destroyed). Scheduler *decisions* stay exact: they
/// are pure functions of the virtual time, the poll only bounds how long a
/// sleeping thread takes to observe an advance.
///
/// Lock ordering: the clock's internal mutex is acquired strictly after
/// any caller mutex (Now() runs inside wait predicates that hold the
/// engine lock) and is never held while a caller mutex is taken.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(double start_seconds = 0) : now_(start_seconds) {}

  double Now() const override;
  bool WaitUntil(std::unique_lock<std::mutex>& lk, std::condition_variable& cv,
                 double deadline_seconds,
                 const std::function<bool()>& pred) override;
  void Wait(std::unique_lock<std::mutex>& lk, std::condition_variable& cv,
            const std::function<bool()>& pred) override;

  /// Moves time forward to max(Now(), t); polling waiters observe the new
  /// time within one poll slice. Never moves time backwards.
  void AdvanceTo(double t);
  void Advance(double dt);

 private:
  mutable std::mutex mu_;
  double now_;
};

}  // namespace hcpath

#endif  // HCPATH_SERVICE_CLOCK_H_
