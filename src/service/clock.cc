#include "service/clock.h"

#include <algorithm>

namespace hcpath {

double WallClock::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       base_)
      .count();
}

bool WallClock::WaitUntil(std::unique_lock<std::mutex>& lk,
                          std::condition_variable& cv, double deadline_seconds,
                          const std::function<bool()>& pred) {
  // Deadlines beyond ~30 years from the clock epoch (or non-finite ones)
  // are not representable in steady_clock ticks — converting them would be
  // UB. Treat them as "no deadline".
  constexpr double kMaxDeadlineSeconds = 1e9;
  if (!(deadline_seconds < kMaxDeadlineSeconds)) {
    cv.wait(lk, pred);
    return pred();
  }
  const auto deadline =
      base_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(deadline_seconds));
  return cv.wait_until(lk, deadline, pred);
}

void WallClock::Wait(std::unique_lock<std::mutex>& lk,
                     std::condition_variable& cv,
                     const std::function<bool()>& pred) {
  cv.wait(lk, pred);
}

WallClock& WallClock::Default() {
  static WallClock clock;
  return clock;
}

namespace {
/// How long a virtual waiter sleeps between predicate/deadline re-checks.
/// Notifications on `cv` (Submit wakeups, capacity releases) still
/// interrupt the slice immediately; the slice only bounds how long it
/// takes a sleeping thread to observe AdvanceTo.
constexpr std::chrono::milliseconds kVirtualPollSlice{1};
}  // namespace

double VirtualClock::Now() const {
  std::lock_guard<std::mutex> lk(mu_);
  return now_;
}

bool VirtualClock::WaitUntil(std::unique_lock<std::mutex>& lk,
                             std::condition_variable& cv,
                             double deadline_seconds,
                             const std::function<bool()>& pred) {
  while (!pred() && Now() < deadline_seconds) {
    cv.wait_for(lk, kVirtualPollSlice);
  }
  return pred();
}

void VirtualClock::Wait(std::unique_lock<std::mutex>& lk,
                        std::condition_variable& cv,
                        const std::function<bool()>& pred) {
  while (!pred()) cv.wait_for(lk, kVirtualPollSlice);
}

void VirtualClock::AdvanceTo(double t) {
  std::lock_guard<std::mutex> lk(mu_);
  now_ = std::max(now_, t);
}

void VirtualClock::Advance(double dt) { AdvanceTo(Now() + dt); }

}  // namespace hcpath
