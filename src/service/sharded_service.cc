#include "service/sharded_service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/basic_enum.h"
#include "core/batch_enum.h"
#include "core/path_enum.h"
#include "service/admission_status.h"
#include "util/hash.h"
#include "util/logging.h"

namespace hcpath {

namespace {
constexpr size_t kLatencyRingSize = 256;
}  // namespace

const char* RoutingPolicyName(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kHash:
      return "hash";
    case RoutingPolicy::kRoundRobin:
      return "round-robin";
  }
  return "unknown";
}

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kSuspect:
      return "suspect";
    case ShardHealth::kDown:
      return "down";
    case ShardHealth::kRestarting:
      return "restarting";
  }
  return "unknown";
}

Status ShardedServiceOptions::Validate() const {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(num_shards));
  }
  HCPATH_RETURN_NOT_OK(batch.Validate());
  if (service_time_seconds < 0) {
    return Status::InvalidArgument("service_time_seconds must be >= 0");
  }
  if (deadline_seconds < 0 || attempt_timeout_seconds < 0) {
    return Status::InvalidArgument(
        "deadline_seconds and attempt_timeout_seconds must be >= 0");
  }
  if (max_retries < 0) {
    return Status::InvalidArgument("max_retries must be >= 0");
  }
  if (retry_backoff_seconds < 0 || retry_backoff_multiplier < 1.0) {
    return Status::InvalidArgument(
        "retry backoff needs base >= 0 and multiplier >= 1");
  }
  if (retry_jitter_fraction < 0) {
    return Status::InvalidArgument("retry_jitter_fraction must be >= 0");
  }
  if (enable_hedging &&
      (hedge_after_seconds <= 0 || hedge_quantile <= 0 ||
       hedge_quantile > 1.0 || hedge_multiplier < 1.0 ||
       hedge_min_samples < 1)) {
    return Status::InvalidArgument(
        "hedging needs hedge_after_seconds > 0, quantile in (0,1], "
        "multiplier >= 1, min_samples >= 1");
  }
  if (heartbeat_interval_seconds <= 0) {
    return Status::InvalidArgument(
        "heartbeat_interval_seconds must be > 0: heartbeats are the only "
        "crash-detection path");
  }
  if (suspect_after_missed < 1 || down_after_missed < suspect_after_missed) {
    return Status::InvalidArgument(
        "need 1 <= suspect_after_missed <= down_after_missed");
  }
  if (restart_delay_seconds < 0 || restart_duration_seconds < 0) {
    return Status::InvalidArgument("restart timings must be >= 0");
  }
  return Status::OK();
}

ShardedPathService::ShardedPathService(GraphStore* store,
                                       const ShardedServiceOptions& options,
                                       Clock* clock, FaultInjector* injector)
    : options_(options), store_(store), clock_(clock), injector_(injector),
      rng_(options.seed) {
  Init();
}

ShardedPathService::ShardedPathService(const Graph* graph,
                                       const ShardedServiceOptions& options,
                                       Clock* clock, FaultInjector* injector)
    : options_(options), fixed_graph_(graph), clock_(clock),
      injector_(injector), rng_(options.seed) {
  Init();
}

void ShardedPathService::Init() {
  init_status_ = options_.Validate();
  if (!init_status_.ok()) return;
  if (clock_ == nullptr) clock_ = &WallClock::Default();
  batch_options_ = options_.batch;
  // Shards consume pre-routed single queries; a per-shard renumbering pass
  // would repay nothing and complicate the parity argument. Same choice as
  // PathEngine's micro-batches.
  batch_options_.remap_mode = RemapMode::kNone;
  latency_ring_.assign(kLatencyRingSize, 0.0);
  now_ = clock_->Now();
  shards_.resize(static_cast<size_t>(options_.num_shards));
  stats_.shards.resize(shards_.size());
  for (Shard& shard : shards_) {
    shard.ctx = std::make_unique<BatchContext>();
    shard.ctx->PoolFor(batch_options_.num_threads);
    shard.busy_until = now_;
    PinShard(&shard);
  }
}

ShardedPathService::~ShardedPathService() = default;

void ShardedPathService::PinShard(Shard* shard) {
  if (store_ != nullptr) {
    shard->snapshot = store_->Current();
    shard->graph = &shard->snapshot->graph;
    shard->epoch = shard->snapshot->epoch;
  } else {
    shard->graph = fixed_graph_;
    shard->epoch = 0;
  }
  shard->kernel = ResolveKernel(batch_options_.kernel_mode, *shard->graph);
  shard->stats.epoch = shard->epoch;
}

bool ShardedPathService::ShardServing(const Shard& shard) const {
  return shard.alive && (shard.health == ShardHealth::kHealthy ||
                         shard.health == ShardHealth::kSuspect);
}

int ShardedPathService::RouteQuery(const std::string& tenant,
                                   const PathQuery& q) {
  const int n = options_.num_shards;
  if (options_.routing == RoutingPolicy::kRoundRobin) {
    return static_cast<int>(round_robin_next_++ % static_cast<uint64_t>(n));
  }
  uint64_t h = 0;
  for (char c : tenant) HashCombine(h, static_cast<uint64_t>(c));
  HashCombine(h, static_cast<uint64_t>(q.s));
  HashCombine(h, static_cast<uint64_t>(q.t));
  HashCombine(h, static_cast<uint64_t>(q.k));
  return static_cast<int>(Mix64(h) % static_cast<uint64_t>(n));
}

int ShardedPathService::NextServingShard(int after) const {
  const int n = options_.num_shards;
  for (int i = 1; i <= n; ++i) {
    const int cand = (after + i) % n;
    if (ShardServing(shards_[static_cast<size_t>(cand)])) return cand;
  }
  // Nothing is serving: return the rotation anyway; the dispatch fails
  // with kUnavailable and the bounded retry budget decides the outcome
  // (graceful degradation, not a stall).
  return (after + 1) % n;
}

int ShardedPathService::HedgeSibling(const QueryRec& q, int primary) const {
  const int n = options_.num_shards;
  const uint64_t epoch = shards_[static_cast<size_t>(primary)].epoch;
  for (int i = 1; i < n; ++i) {
    const int cand = (primary + i) % n;
    const Shard& s = shards_[static_cast<size_t>(cand)];
    // Hedging must not change bytes: only a replica pinning the same
    // snapshot epoch is a valid sibling (docs/SHARDING.md, "Determinism").
    if (ShardServing(s) && s.epoch == epoch) return cand;
  }
  (void)q;
  return -1;
}

double ShardedPathService::HedgeThresholdLocked() const {
  if (latency_count_ < static_cast<size_t>(options_.hedge_min_samples)) {
    return options_.hedge_after_seconds;
  }
  std::vector<double> samples(latency_ring_.begin(),
                              latency_ring_.begin() +
                                  static_cast<long>(latency_count_));
  std::sort(samples.begin(), samples.end());
  const size_t idx = std::min(
      samples.size() - 1,
      static_cast<size_t>(options_.hedge_quantile *
                          static_cast<double>(samples.size())));
  return samples[idx] * options_.hedge_multiplier;
}

double ShardedPathService::BackoffSeconds(int retry_ordinal) {
  const double base = options_.retry_backoff_seconds *
                      std::pow(options_.retry_backoff_multiplier,
                               static_cast<double>(retry_ordinal));
  // Jitter is multiplicative and comes from the seeded RNG: the ordinal
  // position of this draw in the event-processing order is deterministic,
  // so a schedule replays exactly under VirtualClock.
  return base * (1.0 + options_.retry_jitter_fraction * rng_.NextDouble());
}

void ShardedPathService::PushEvent(double time, EventType type,
                                   uint64_t id) {
  if (type != EventType::kHeartbeat) ++pending_work_events_;
  events_.push(Event{time, event_seq_++, type, id});
}

bool ShardedPathService::QuiescentlyStalledLocked() const {
  // A pending query is stalled when nothing but heartbeats remains in the
  // heap AND every shard is nominal: heartbeats only produce query
  // progress through failure detection (missed beats -> down -> failover
  // -> retry), so with every shard alive, healthy, and past any injected
  // hang, no future event can resolve the query. Without this check the
  // heartbeat re-arm (which keeps beating while queries are outstanding)
  // would keep the heap non-empty forever and the RunToCompletion
  // backstop would be unreachable.
  if (pending_work_events_ > 0 || !AnyOutstandingLocked()) return false;
  for (const Shard& shard : shards_) {
    if (!shard.alive || shard.health != ShardHealth::kHealthy ||
        shard.hang_until > now_) {
      return false;
    }
  }
  return true;
}

bool ShardedPathService::AnyOutstandingLocked() const {
  return stats_.queries_submitted >
         stats_.queries_completed + stats_.queries_failed +
             stats_.queries_rejected;
}

void ShardedPathService::ArmHeartbeatLocked(int shard_id) {
  Shard& shard = shards_[static_cast<size_t>(shard_id)];
  if (shard.heartbeat_armed) return;
  shard.heartbeat_armed = true;
  PushEvent(now_ + options_.heartbeat_interval_seconds,
            EventType::kHeartbeat, static_cast<uint64_t>(shard_id));
}

std::vector<std::future<QueryResult>> ShardedPathService::SubmitBatch(
    const std::string& tenant, const std::vector<PathQuery>& queries,
    PathSink* sink) {
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(queries.size());
  std::unique_lock<std::mutex> lk(mu_);
  HCPATH_CHECK(init_status_.ok());
  now_ = std::max(now_, clock_->Now());
  const double now = now_;
  const uint64_t batch_id = static_cast<uint64_t>(batches_.size());
  batches_.push_back(BatchRec{sink, {}, 0});
  BatchRec& batch = batches_.back();
  batch.query_ids.reserve(queries.size());

  // Validation graph: what the router sees now. All shards pinned the same
  // snapshot unless a restart re-pinned a newer one; validation is
  // endpoint-range + hop-bound checks, identical across those.
  const Graph* vg = fixed_graph_;
  std::shared_ptr<const GraphSnapshot> vsnap;
  if (store_ != nullptr) {
    vsnap = store_->Current();
    vg = &vsnap->graph;
  }

  for (size_t i = 0; i < queries.size(); ++i) {
    const uint64_t qid = static_cast<uint64_t>(queries_.size());
    queries_.emplace_back();
    QueryRec& rec = queries_.back();
    rec.tenant = tenant;
    rec.query = queries[i];
    rec.batch = batch_id;
    rec.index_in_batch = i;
    rec.submit_time = now;
    batch.query_ids.push_back(qid);
    futures.push_back(rec.promise.get_future());
    ++stats_.queries_submitted;

    const std::vector<PathQuery> one{queries[i]};
    Status v = ValidateQueries(*vg, one);
    if (!v.ok()) {
      // Individual rejection: the query occupies a zero-path slot in the
      // merge so a bad query never stalls its batch.
      ++stats_.queries_rejected;
      rec.state = QueryState::kFailed;
      rec.final_status = std::move(v);
      rec.finish_time = now;
      continue;
    }

    if (options_.deadline_seconds > 0) {
      PushEvent(now + options_.deadline_seconds, EventType::kDeadline, qid);
    }
    DispatchAttempt(qid, RouteQuery(tenant, queries[i]), /*is_hedge=*/false);
  }
  for (int s = 0; s < options_.num_shards; ++s) ArmHeartbeatLocked(s);
  DrainBatch(batch_id);  // resolve any all-rejected prefix immediately
  FlushResolvedLocked(&lk);
  return futures;
}

void ShardedPathService::DispatchAttempt(uint64_t query_id, int shard_id,
                                         bool is_hedge) {
  QueryRec& q = queries_[query_id];
  Shard& shard = shards_[static_cast<size_t>(shard_id)];
  const double now = now_;

  const uint64_t aid = static_cast<uint64_t>(attempts_.size());
  attempts_.emplace_back();
  Attempt& a = attempts_.back();
  a.query_id = query_id;
  a.shard = shard_id;
  a.is_hedge = is_hedge;
  a.dispatch_time = now;
  q.last_shard = shard_id;
  if (is_hedge) q.hedged = true;
  ++stats_.dispatches;
  ++shard.stats.dispatches;

  if (!ShardServing(shard)) {
    // Routed into a down/restarting shard: immediate dispatch-layer
    // failure; the retry budget decides whether a sibling absorbs it.
    a.state = AttemptState::kFailed;
    ++stats_.attempts_failed;
    ++shard.stats.failures;
    AttemptFailed(aid, ShardUnavailableStatus(
                           shard_id, std::string(ShardHealthName(
                                         shard.health)) +
                                         ", not serving"));
    return;
  }

  FaultDecision fault;
  if (injector_ != nullptr) {
    fault = injector_->OnDispatch(shard_id, shard.dispatch_ordinal);
  }
  ++shard.dispatch_ordinal;

  if (fault.crash) {
    // The shard process dies mid-dispatch: no reply will ever arrive for
    // this or any queued attempt. Detection is heartbeat-only.
    shard.alive = false;
    ++shard.stats.crashes;
    q.outstanding.push_back(aid);
    shard.outstanding.push_back(aid);
    return;
  }
  if (fault.fail) {
    a.state = AttemptState::kFailed;
    ++stats_.attempts_failed;
    ++shard.stats.failures;
    AttemptFailed(aid, ShardUnavailableStatus(shard_id,
                                              "injected transient failure"));
    return;
  }

  a.drop_reply = fault.drop_reply;
  const double service =
      options_.service_time_seconds * fault.slow_factor + fault.hang_seconds;
  const double start = std::max(now, shard.busy_until);
  a.done_time = start + service;
  shard.busy_until = a.done_time;
  if (fault.hang_seconds > 0) {
    // A hung shard stops heartbeating until the stall clears.
    shard.hang_until = std::max(shard.hang_until, start + fault.hang_seconds);
  }
  if (q.first_service_start < 0) q.first_service_start = start;
  q.outstanding.push_back(aid);
  shard.outstanding.push_back(aid);
  PushEvent(a.done_time, EventType::kDispatchDone, aid);
  if (options_.attempt_timeout_seconds > 0) {
    PushEvent(now + options_.attempt_timeout_seconds,
              EventType::kAttemptTimeout, aid);
  }
  if (options_.enable_hedging && !is_hedge && options_.num_shards > 1) {
    PushEvent(now + HedgeThresholdLocked(), EventType::kHedgeDue, aid);
  }
}

Status ShardedPathService::ExecuteOnShard(Shard* shard, const PathQuery& q,
                                          PathSet* paths, uint64_t* count) {
  const Graph& g = *shard->graph;
  const std::vector<PathQuery> one{q};
  CollectingSink sink(1);
  BatchStats bstats;
  Status st;
  switch (batch_options_.algorithm) {
    case Algorithm::kPathEnum: {
      SingleQueryOptions sq;
      sq.max_paths = batch_options_.max_paths_per_query;
      sq.kernel = batch_options_.kernel_mode;
      sq.resolved = shard->kernel;
      st = PathEnumQuery(g, q, sq, 0, &sink, &bstats);
      break;
    }
    case Algorithm::kBasicEnum:
      st = RunBasicEnum(g, one, batch_options_, /*optimized_order=*/false,
                        &sink, &bstats, shard->ctx.get());
      break;
    case Algorithm::kBasicEnumPlus:
      st = RunBasicEnum(g, one, batch_options_, /*optimized_order=*/true,
                        &sink, &bstats, shard->ctx.get());
      break;
    case Algorithm::kBatchEnum:
      st = RunBatchEnum(g, one, batch_options_, /*optimized_order=*/false,
                        &sink, &bstats, shard->ctx.get());
      break;
    case Algorithm::kBatchEnumPlus:
      st = RunBatchEnum(g, one, batch_options_, /*optimized_order=*/true,
                        &sink, &bstats, shard->ctx.get());
      break;
  }
  if (st.ok()) {
    *count = sink.paths(0).size();
    paths->AppendSet(sink.paths(0));
  }
  return st;
}

size_t ShardedPathService::Step() {
  std::unique_lock<std::mutex> lk(mu_);
  const double now = clock_->Now();
  size_t processed = 0;
  while (!events_.empty() && events_.top().time <= now) {
    const Event ev = events_.top();
    events_.pop();
    if (ev.type != EventType::kHeartbeat) --pending_work_events_;
    ++processed;
    now_ = std::max(now_, ev.time);
    switch (ev.type) {
      case EventType::kDispatchDone:
        HandleDispatchDone(ev.id);
        break;
      case EventType::kAttemptTimeout:
        HandleAttemptTimeout(ev.id);
        break;
      case EventType::kRetryDue:
        HandleRetryDue(ev.id);
        break;
      case EventType::kHedgeDue:
        HandleHedgeDue(ev.id);
        break;
      case EventType::kDeadline:
        HandleDeadline(ev.id);
        break;
      case EventType::kHeartbeat:
        HandleHeartbeat(ev.id);
        break;
      case EventType::kRestartBegin:
        HandleRestartBegin(ev.id);
        break;
      case EventType::kRestartDone:
        HandleRestartDone(ev.id);
        break;
    }
  }
  FlushResolvedLocked(&lk);
  return processed;
}

double ShardedPathService::NextEventSeconds() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (events_.empty()) return -1;
  return events_.top().time;
}

bool ShardedPathService::Idle() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.empty();
}

void ShardedPathService::RunToCompletion(VirtualClock* clock) {
  while (true) {
    const double next = NextEventSeconds();
    if (next < 0) break;
    {
      std::lock_guard<std::mutex> lk(mu_);
      // Only heartbeats left, every shard nominal, queries still pending:
      // no event can make progress — fall through to the backstop instead
      // of beating forever.
      if (QuiescentlyStalledLocked()) break;
    }
    clock->AdvanceTo(std::max(next, clock->Now()));
    Step();
  }
  // Backstop: a fault schedule with no detection path (e.g. drop-reply and
  // attempt timeouts disabled) leaves queries unresolvable. Fail them
  // loudly instead of stalling the merge; queries_stalled != 0 is a bug in
  // the schedule or the configuration, and tests assert it is zero.
  std::unique_lock<std::mutex> lk(mu_);
  for (uint64_t qid = 0; qid < queries_.size(); ++qid) {
    if (queries_[qid].state == QueryState::kPending) {
      ++stats_.queries_stalled;
      FailQuery(qid, Status::Internal(
                         "query stalled: no pending event can resolve it "
                         "(undetectable fault schedule?)"));
    }
  }
  FlushResolvedLocked(&lk);
}

void ShardedPathService::HandleDispatchDone(uint64_t attempt_id) {
  Attempt& a = attempts_[attempt_id];
  if (a.state != AttemptState::kInFlight) return;  // cancelled/failed: late
  Shard& shard = shards_[static_cast<size_t>(a.shard)];
  if (!shard.alive) return;  // crashed before completion; failover handles
  QueryRec& q = queries_[a.query_id];

  if (a.drop_reply) {
    // The work happened; the reply is lost. Only the attempt timeout can
    // resurrect this query.
    a.state = AttemptState::kDropped;
    ++stats_.attempts_dropped;
    ++shard.stats.dropped_replies;
    return;
  }
  if (q.state != QueryState::kPending) {
    // The race was already won (hedge sibling or an earlier retry).
    a.state = AttemptState::kCancelled;
    ++stats_.attempts_cancelled;
    ++shard.stats.cancelled;
    return;
  }

  PathSet paths;
  uint64_t count = 0;
  const Status st = ExecuteOnShard(&shard, q.query, &paths, &count);
  a.state = AttemptState::kCompleted;
  ++stats_.attempts_completed;
  ++shard.stats.completions;
  RecordLatencySample(now_ - a.dispatch_time);
  // A pipeline error (max_paths ResourceExhausted, internal invariants) is
  // a deterministic reply — every replica would say the same — so it
  // resolves the query instead of feeding the retry path.
  CompleteQuery(a.query_id, attempt_id, std::move(paths), count, shard.epoch,
                st);
}

void ShardedPathService::HandleAttemptTimeout(uint64_t attempt_id) {
  Attempt& a = attempts_[attempt_id];
  QueryRec& q = queries_[a.query_id];
  if (q.state != QueryState::kPending) return;
  if (a.state == AttemptState::kInFlight) {
    a.state = AttemptState::kFailed;
    ++stats_.attempts_failed;
    ++shards_[static_cast<size_t>(a.shard)].stats.failures;
    ++stats_.attempt_timeouts;
    AttemptFailed(attempt_id,
                  ShardUnavailableStatus(
                      a.shard, "attempt timed out after " +
                                   std::to_string(
                                       options_.attempt_timeout_seconds) +
                                   "s"));
  } else if (a.state == AttemptState::kDropped) {
    // The shard finished but the reply never arrived; the timeout is the
    // detection path. The attempt already reconciled as dropped — and this
    // was its one timeout, so it can never answer or be rescued again:
    // take it out of the query's outstanding set so a LATER attempt's
    // failure does not wait on it forever (the gate in AttemptFailed
    // treats kDropped as "rescue scheduled", which is now false).
    q.outstanding.erase(
        std::find(q.outstanding.begin(), q.outstanding.end(), attempt_id));
    ++stats_.attempt_timeouts;
    AttemptFailed(attempt_id,
                  ShardUnavailableStatus(a.shard, "reply lost (timeout)"));
  }
}

void ShardedPathService::HandleRetryDue(uint64_t query_id) {
  QueryRec& q = queries_[query_id];
  if (q.state != QueryState::kPending) return;
  ++stats_.retries;
  DispatchAttempt(query_id, NextServingShard(q.last_shard),
                  /*is_hedge=*/false);
}

void ShardedPathService::HandleHedgeDue(uint64_t attempt_id) {
  Attempt& a = attempts_[attempt_id];
  QueryRec& q = queries_[a.query_id];
  if (q.state != QueryState::kPending) return;
  if (a.state != AttemptState::kInFlight) return;  // already resolved
  if (q.hedged) return;  // one hedge per query
  const int sibling = HedgeSibling(q, a.shard);
  if (sibling < 0) return;  // no same-epoch serving replica
  ++stats_.hedges;
  DispatchAttempt(a.query_id, sibling, /*is_hedge=*/true);
}

void ShardedPathService::HandleDeadline(uint64_t query_id) {
  QueryRec& q = queries_[query_id];
  if (q.state != QueryState::kPending) return;
  ++stats_.deadline_expired;
  FailQuery(query_id, QueryDeadlineStatus(options_.deadline_seconds));
}

void ShardedPathService::HandleHeartbeat(uint64_t shard_id) {
  Shard& shard = shards_[static_cast<size_t>(shard_id)];
  shard.heartbeat_armed = false;
  const double now = now_;
  if (shard.health == ShardHealth::kDown ||
      shard.health == ShardHealth::kRestarting) {
    // Expected-down: the restart event chain owns recovery; keep beating
    // so the supervisor wakes to observe it.
    ArmHeartbeatLocked(static_cast<int>(shard_id));
    return;
  }
  const bool beat = shard.alive && now >= shard.hang_until;
  if (beat) {
    shard.missed_beats = 0;
    if (shard.health == ShardHealth::kSuspect) {
      shard.health = ShardHealth::kHealthy;
    }
  } else {
    ++shard.missed_beats;
    if (shard.missed_beats >= options_.down_after_missed) {
      TransitionDown(static_cast<int>(shard_id));
    } else if (shard.missed_beats >= options_.suspect_after_missed) {
      shard.health = ShardHealth::kSuspect;
    }
  }
  // Keep beating while anything is outstanding or this shard is not
  // plainly healthy; otherwise let the heap drain so Idle() is reachable.
  if (AnyOutstandingLocked() || !shard.alive ||
      shard.health != ShardHealth::kHealthy) {
    ArmHeartbeatLocked(static_cast<int>(shard_id));
  }
}

void ShardedPathService::TransitionDown(int shard_id) {
  Shard& shard = shards_[static_cast<size_t>(shard_id)];
  shard.health = ShardHealth::kDown;
  // Fail over everything the dead shard held: pending and in-flight
  // attempts alike become dispatch-layer kUnavailable, which the bounded
  // retry re-routes to siblings.
  std::vector<uint64_t> held;
  held.swap(shard.outstanding);
  for (uint64_t aid : held) {
    Attempt& a = attempts_[aid];
    if (a.state != AttemptState::kInFlight) continue;
    a.state = AttemptState::kFailed;
    ++stats_.attempts_failed;
    ++shard.stats.failures;
    ++stats_.failovers;
    AttemptFailed(aid, ShardUnavailableStatus(shard_id,
                                              "shard down (failover)"));
  }
  PushEvent(now_ + options_.restart_delay_seconds,
            EventType::kRestartBegin, static_cast<uint64_t>(shard_id));
}

void ShardedPathService::HandleRestartBegin(uint64_t shard_id) {
  Shard& shard = shards_[static_cast<size_t>(shard_id)];
  shard.health = ShardHealth::kRestarting;
  ++shard.stats.restarts;
  PushEvent(now_ + options_.restart_duration_seconds,
            EventType::kRestartDone, shard_id);
}

void ShardedPathService::HandleRestartDone(uint64_t shard_id) {
  Shard& shard = shards_[static_cast<size_t>(shard_id)];
  // Rebuild from the shared store: drop the old pin, pin Current(). The
  // old snapshot stays valid for any sibling still draining it — GC is
  // pin-aware (graph_store_test ConcurrentRestartUpdateGc).
  PinShard(&shard);
  shard.alive = true;
  shard.health = ShardHealth::kHealthy;
  shard.missed_beats = 0;
  shard.busy_until = now_;
  shard.hang_until = 0;
  if (AnyOutstandingLocked()) {
    ArmHeartbeatLocked(static_cast<int>(shard_id));
  }
}

void ShardedPathService::AttemptFailed(uint64_t attempt_id,
                                       const Status& status) {
  Attempt& a = attempts_[attempt_id];
  QueryRec& q = queries_[a.query_id];
  if (q.state != QueryState::kPending) return;
  // Another attempt may still be racing (a hedge pair where one side
  // failed): only schedule recovery when nothing else can answer.
  for (uint64_t oid : q.outstanding) {
    if (oid == attempt_id) continue;
    const AttemptState s = attempts_[oid].state;
    if (s == AttemptState::kInFlight || s == AttemptState::kDropped) return;
  }
  if (q.retries_used < options_.max_retries) {
    ++q.retries_used;
    PushEvent(now_ + BackoffSeconds(q.retries_used - 1),
              EventType::kRetryDue, a.query_id);
    return;
  }
  FailQuery(a.query_id, status);
}

void ShardedPathService::CompleteQuery(uint64_t query_id, uint64_t attempt_id,
                                       PathSet&& paths, uint64_t count,
                                       uint64_t epoch, const Status& status) {
  QueryRec& q = queries_[query_id];
  HCPATH_DCHECK(q.state == QueryState::kPending);
  q.state = QueryState::kCompleted;
  q.final_status = status;
  q.paths = std::move(paths);
  q.path_count = count;
  q.graph_epoch = epoch;
  q.finish_time = now_;
  ++stats_.queries_completed;
  if (attempts_[attempt_id].is_hedge) {
    q.won_by_hedge = true;
    ++stats_.hedged_wins;
  }
  CancelOutstanding(&q, attempt_id);
  DrainBatch(q.batch);
}

void ShardedPathService::FailQuery(uint64_t query_id, const Status& status) {
  QueryRec& q = queries_[query_id];
  HCPATH_DCHECK(q.state == QueryState::kPending);
  q.state = QueryState::kFailed;
  q.final_status = status;
  q.finish_time = now_;
  ++stats_.queries_failed;
  CancelOutstanding(&q, static_cast<uint64_t>(-1));
  DrainBatch(q.batch);
}

void ShardedPathService::CancelOutstanding(QueryRec* q,
                                           uint64_t except_attempt) {
  for (uint64_t aid : q->outstanding) {
    if (aid == except_attempt) continue;
    Attempt& a = attempts_[aid];
    if (a.state != AttemptState::kInFlight) continue;
    // Lazy cancellation: the shard finishes (or died with) the work; only
    // the reply is ignored. Counters reconcile the attempt as cancelled.
    a.state = AttemptState::kCancelled;
    ++stats_.attempts_cancelled;
    ++shards_[static_cast<size_t>(a.shard)].stats.cancelled;
  }
  q->outstanding.clear();
}

void ShardedPathService::DrainBatch(uint64_t batch_id) {
  BatchRec& batch = batches_[batch_id];
  // Contiguous-prefix drain in submission order: paths (and futures) for
  // query i are emitted before anything of query i+1, which is exactly the
  // 1-shard reference stream. A failed query is a zero-path slot.
  while (batch.next_emit < batch.query_ids.size()) {
    const uint64_t qid = batch.query_ids[batch.next_emit];
    QueryRec& q = queries_[qid];
    if (q.state == QueryState::kPending) break;
    HCPATH_DCHECK(!q.emitted);
    q.emitted = true;
    ++batch.next_emit;
    QueryResult r;
    r.status = q.final_status;
    r.tenant = q.tenant;
    r.path_count = q.path_count;
    r.graph_epoch = q.graph_epoch;
    r.wait_seconds =
        q.first_service_start >= 0 ? q.first_service_start - q.submit_time
                                   : 0;
    r.batch_seconds = q.finish_time - q.submit_time;
    if (q.state == QueryState::kCompleted && batch.sink != nullptr) {
      batch.sink->OnPaths(q.index_in_batch, q.paths, 0, q.paths.size());
      q.paths.Clear();
    } else if (q.state == QueryState::kCompleted && options_.collect_paths) {
      r.paths = std::move(q.paths);
    }
    q.paths.Clear();
    resolved_.emplace_back(qid, std::move(r));
  }
}

void ShardedPathService::RecordLatencySample(double seconds) {
  latency_ring_[latency_next_] = seconds;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  latency_count_ = std::min(latency_count_ + 1, latency_ring_.size());
}

void ShardedPathService::FlushResolvedLocked(
    std::unique_lock<std::mutex>* lk) {
  if (resolved_.empty()) return;
  std::vector<std::pair<std::promise<QueryResult>, QueryResult>> out;
  out.reserve(resolved_.size());
  for (auto& [qid, result] : resolved_) {
    out.emplace_back(std::move(queries_[qid].promise), std::move(result));
  }
  resolved_.clear();
  lk->unlock();
  for (auto& [promise, result] : out) {
    promise.set_value(std::move(result));
  }
  lk->lock();
}

ShardedServiceStats ShardedPathService::GetStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ShardedServiceStats s = stats_;
  for (size_t i = 0; i < shards_.size(); ++i) {
    s.shards[i] = shards_[i].stats;
    s.shards[i].health = shards_[i].health;
    s.shards[i].epoch = shards_[i].epoch;
  }
  // The attempt identity: everything dispatched is accounted exactly once.
  s.attempts_in_flight = s.dispatches - s.attempts_completed -
                         s.attempts_failed - s.attempts_cancelled -
                         s.attempts_dropped;
  return s;
}

ShardHealth ShardedPathService::shard_health(int shard) const {
  std::lock_guard<std::mutex> lk(mu_);
  return shards_[static_cast<size_t>(shard)].health;
}

uint64_t ShardedPathService::shard_epoch(int shard) const {
  std::lock_guard<std::mutex> lk(mu_);
  return shards_[static_cast<size_t>(shard)].epoch;
}

}  // namespace hcpath
