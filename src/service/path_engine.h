#ifndef HCPATH_SERVICE_PATH_ENGINE_H_
#define HCPATH_SERVICE_PATH_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bfs/msbfs.h"
#include "core/batch_context.h"
#include "core/enumerator.h"
#include "core/options.h"
#include "core/path.h"
#include "core/query.h"
#include "core/search.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "graph/graph_store.h"
#include "index/endpoint_cache.h"
#include "service/clock.h"
#include "service/tenant_queue.h"
#include "util/status.h"

namespace hcpath {

/// Tenant id used by the tenant-less Submit overload.
inline const std::string kDefaultTenant;

/// Options of a PathEngine (see docs/SERVICE.md).
struct PathEngineOptions {
  /// Pipeline configuration shared by every micro-batch: algorithm,
  /// clustering γ, thread count, per-query caps. Validated at engine
  /// construction.
  BatchOptions batch;

  /// Multi-tenant admission: bounded queue budgets, backpressure policy,
  /// overload shedding, WFQ tenant weights. Validated at engine
  /// construction alongside `batch`.
  AdmissionOptions admission;

  /// Admission cut by size: a micro-batch is dispatched as soon as this
  /// many queries are pending. Values < 1 behave as 1.
  size_t max_batch_size = 64;

  /// Admission cut by wait: a micro-batch is dispatched once its oldest
  /// pending query has waited this long, even if underfull. <= 0 disables
  /// the timer (cuts happen on size, Flush, or shutdown only — the
  /// deterministic mode the differential tests drive).
  double max_wait_seconds = 0.002;

  /// Time source and wait strategy for every admission timing decision
  /// (wait cuts, shed patience, blocked-submit deadlines). nullptr = the
  /// process-wide WallClock. Tests inject a VirtualClock to make cut and
  /// shed ordering exactly assertable; the clock must outlive the engine.
  Clock* clock = nullptr;

  /// Manual dispatch: no background admission thread is started; cuts only
  /// happen when StepDispatch() is called (and at destruction, which still
  /// drains). Combined with a VirtualClock this is the deterministic
  /// scheduler simulation the admission tests drive: the test interleaves
  /// Submit / AdvanceTo / StepDispatch and observes exactly one schedule.
  bool manual_dispatch = false;

  /// Materialize each query's paths into its QueryResult when the caller
  /// gave no per-query sink. Disable for count-only serving.
  bool collect_paths = true;

  /// Cross-batch endpoint distance cache (docs/SERVICE.md): repeated
  /// endpoints skip their BFS in later batches' index builds. Served maps
  /// are content-identical to fresh builds, so results are unaffected.
  bool enable_distance_cache = true;
  size_t distance_cache_max_entries = 4096;
  uint64_t distance_cache_max_bytes = 256ull << 20;

  /// Incremental endpoint-cache repair (store mode, docs/DYNAMIC.md): after
  /// an update batch invalidates cache entries cone-precisely, ApplyUpdates
  /// re-runs the capped BFS for up to this many of the erased
  /// (vertex, direction, cap) keys against the NEW snapshot — most recently
  /// used first — and reinserts the results before the new view is
  /// published. Repaired entries are bit-identical to what the next index
  /// build would have computed on a miss (a capped BFS is a pure function
  /// of (source, cap, graph)), so this trades update-path latency for
  /// post-update hit rate without affecting any query result. 0 disables
  /// repair (invalidated keys refill lazily on their next miss).
  size_t cache_repair_max_keys = 1024;
};

/// Outcome of one submitted query.
struct QueryResult {
  Status status;
  /// Tenant the query was submitted under (kDefaultTenant when none).
  std::string tenant;
  uint64_t path_count = 0;
  /// Epoch of the graph snapshot this query was admitted against and ran
  /// on (GraphStore / docs/DYNAMIC.md). Always 0 on a fixed-graph engine;
  /// on a store-backed engine the result is byte-identical to a
  /// from-scratch run on exactly this snapshot, regardless of updates
  /// applied while the query was queued or running.
  uint64_t graph_epoch = 0;
  /// The query's paths, when the engine collects (collect_paths and no
  /// per-query sink); empty otherwise.
  PathSet paths;
  /// Submit-to-dispatch time in the engine clock's seconds, INCLUDING any
  /// time the Submit call spent blocked on admission backpressure.
  double wait_seconds = 0;
  /// Pipeline wall time of the micro-batch that carried this query.
  double batch_seconds = 0;
};

/// Aggregate engine counters (monotonic since construction).
struct PathEngineStats {
  uint64_t queries_submitted = 0;
  uint64_t queries_rejected = 0;  ///< failed admission-time validation
  uint64_t queries_completed = 0;
  /// Admission-control outcomes (docs/SERVICE.md, "Overload behavior").
  uint64_t queries_shed = 0;        ///< dropped by overload shedding
  uint64_t submits_fast_failed = 0; ///< ResourceExhausted at a full queue
  uint64_t backpressure_blocks = 0; ///< submits that waited for queue space
  uint64_t shed_rounds = 0;         ///< shedding episodes
  uint64_t peak_queued_queries = 0; ///< admission-queue entry high-water mark
  uint64_t peak_queued_bytes = 0;   ///< admission-queue byte high-water mark
  /// Pipeline invocations. Equals the number of micro-batch cuts on a
  /// fixed-graph engine; on a store-backed engine a cut whose queries pin
  /// different snapshots executes once per distinct pinned epoch.
  uint64_t batches_run = 0;
  uint64_t size_cuts = 0;   ///< micro-batches cut on max_batch_size
  uint64_t wait_cuts = 0;   ///< micro-batches cut on max_wait_seconds
  uint64_t flush_cuts = 0;  ///< micro-batches cut by Flush() or shutdown
  uint64_t distance_cache_hits = 0;
  uint64_t distance_cache_misses = 0;
  /// Successful ApplyUpdates calls on a store-backed engine.
  uint64_t graph_updates = 0;
  /// Endpoint-cache entries rebuilt against the new snapshot by incremental
  /// repair (PathEngineOptions::cache_repair_max_keys), and invalidated
  /// keys left for lazy refill because the per-update repair budget was
  /// exhausted.
  uint64_t cache_entries_repaired = 0;
  uint64_t cache_repair_skipped = 0;
  /// Queued queries failed because their pinned snapshot exceeded
  /// AdmissionOptions::max_snapshot_lag when an update installed.
  uint64_t queries_lag_failed = 0;
  /// Pipeline counters accumulated across all micro-batches.
  BatchStats batch_stats;
  /// Per-tenant admission counters, keyed by tenant id (kDefaultTenant for
  /// the tenant-less Submit overload).
  std::map<std::string, TenantAdmissionStats> tenants;
};

/// Long-lived batch path-query service: the architectural seam between the
/// BatchEnum pipeline (a pure batch function) and sustained multi-tenant
/// query traffic.
///
/// A PathEngine owns the graph reference, the shared thread pool, a
/// recycled BatchContext (index storage, BFS/cluster scratch, merge
/// buffers), and the cross-batch endpoint distance cache. Submit() feeds a
/// bounded per-tenant admission queue and returns a future; the dispatcher
/// cuts micro-batches by max-size / max-wait (plus explicit Flush() and
/// shutdown drain), drains them by weighted fair queueing across tenants,
/// and drives each through the configured pipeline, streaming paths to the
/// per-query sinks in the pipeline's deterministic emission order.
///
/// Overload behavior (docs/SERVICE.md has the state machine):
///  * The admission queue is bounded by entry and byte budgets
///    (AdmissionOptions). A Submit that would exceed them either blocks —
///    blocked submitters are admitted in FIFO order — or fails fast with
///    ResourceExhausted ("admission queue full ..."), per
///    `admission.backpressure`.
///  * Once the queue has been at or above the high watermark for
///    `shed_patience_seconds`, waiting queries are shed lowest-weight-first
///    (ties: lexicographically greatest tenant, newest-first within a
///    tenant) down to the low watermark. A shed query's future resolves
///    with ResourceExhausted ("query shed by admission control ...").
///  * Store mode only, when `admission.max_snapshot_lag` > 0: an update
///    install fails every still-queued query whose pinned snapshot now
///    lags the new epoch by more than the configured bound; its future
///    resolves with FailedPrecondition ("query snapshot over max lag ...")
///    and its pin is released so the store can reclaim the snapshot.
///    These three messages are the complete, documented vocabulary by
///    which the engine fails an already-submitted query for policy
///    reasons; with max_snapshot_lag == 0 (the default) an admitted query
///    is never failed by admission control.
///
/// Determinism: admission never alters results — each admitted query's
/// paths, count, and Status are byte-identical to an unloaded one-shot
/// Run{Batch,Basic}Enum call on any batch containing it, regardless of
/// tenant mix, queue pressure, thread count, or cache warmth (asserted by
/// differential_fuzz_test's EngineMultiTenantParity and the virtual-clock
/// suite in admission_sim_test; coherence argument in docs/SERVICE.md).
/// Queries that fail validation are rejected at admission (their future
/// carries InvalidArgument) and never poison co-batched queries; a
/// mid-batch pipeline error (e.g. a max_paths cap) fails every query of
/// that micro-batch with the batch's Status, exactly as the one-shot call
/// would.
///
/// Dynamic graphs (docs/DYNAMIC.md): a PathEngine constructed over a
/// GraphStore serves queries against epoch-stamped snapshots. Submit pins
/// the snapshot current at admission into the query; ApplyUpdates installs
/// a new snapshot without touching in-flight or queued work — each query
/// enumerates exactly the graph it was admitted against, so its result is
/// byte-identical to a from-scratch run on that snapshot. Endpoint-cache
/// entries are invalidated cone-precisely (only keys whose capped BFS can
/// reach a touched edge; EndpointDistanceCache::InvalidateUpdated), and
/// retired snapshots are reclaimed by the store's deferred GC once no
/// pinned query or caller reference remains.
///
/// Thread-safety: Submit/Flush/Drain/RunBatch/GetStats/StepDispatch and
/// (store mode) ApplyUpdates may be called from any thread. In fixed mode
/// the graph must outlive the engine and stay immutable; in store mode the
/// store must outlive the engine and all mutation must go through
/// ApplyUpdates on this engine (mutating the store directly would bypass
/// cache invalidation).
class PathEngine {
 public:
  /// Fixed-graph engine: every query runs on `g`, epoch 0.
  PathEngine(const Graph& g, const PathEngineOptions& options);

  /// Store-backed (dynamic) engine: queries pin the store's current
  /// snapshot at admission; ApplyUpdates advances it.
  PathEngine(GraphStore* store, const PathEngineOptions& options);

  /// Drains every pending query (shutdown acts as a final Flush — in
  /// manual mode the destructor steps the dispatcher itself), wakes blocked
  /// submitters (they fail with FailedPrecondition), then joins the
  /// admission thread. Futures of drained queries are fulfilled.
  ~PathEngine();

  PathEngine(const PathEngine&) = delete;
  PathEngine& operator=(const PathEngine&) = delete;

  /// Construction outcome: InvalidArgument when PathEngineOptions.batch or
  /// .admission fails validation. A failed engine rejects every
  /// Submit/RunBatch.
  const Status& status() const { return init_status_; }

  /// Enqueues one query under `tenant_id`; the future resolves when its
  /// micro-batch completes (or admission control sheds/rejects it — see the
  /// class comment for the documented Status vocabulary). With a `sink`,
  /// the query's paths stream there (tagged with the query's index inside
  /// its micro-batch) and QueryResult.paths stays empty. Sink calls across
  /// a micro-batch are totally ordered (the merge's drain lock serializes
  /// them) and follow the pipeline's deterministic emission order, but at
  /// num_threads > 1 they may arrive on any pool worker thread — sinks must
  /// not assume thread affinity. Invalid queries resolve immediately with
  /// InvalidArgument. May block when the admission queue is full and
  /// `admission.backpressure` is kBlock.
  std::future<QueryResult> Submit(const std::string& tenant_id,
                                  const PathQuery& query,
                                  PathSink* sink = nullptr);

  /// Tenant-less convenience overload: submits under kDefaultTenant.
  std::future<QueryResult> Submit(const PathQuery& query,
                                  PathSink* sink = nullptr);

  /// Requests an immediate cut of everything currently queued (possibly
  /// several max_batch_size micro-batches). Non-blocking; pair with the
  /// returned futures or Drain() to wait (in manual mode, with
  /// StepDispatch).
  void Flush();

  /// Blocks until the admission queue is empty and no batch is in flight.
  /// In manual mode some other thread must call StepDispatch for this to
  /// make progress.
  void Drain();

  /// Manual mode only: performs one dispatcher iteration synchronously on
  /// the calling thread — sheds if overload patience has expired, then, if
  /// a cut condition holds (size, wait per the injected clock, Flush, or
  /// shutdown), cuts one micro-batch by weighted fair queueing and runs it
  /// inline. Returns the number of queries carried (0 = no cut fired).
  size_t StepDispatch();

  /// Synchronous path: runs `queries` as one micro-batch through the same
  /// recycled context and distance cache, bypassing the admission queue
  /// (serialized against it). Exactly the one-shot pipeline semantics,
  /// including whole-batch validation.
  Status RunBatch(const std::vector<PathQuery>& queries, PathSink* sink,
                  BatchStats* stats = nullptr);

  /// Store mode only: applies one batch of edge updates, producing the
  /// store's next snapshot, and reconciles the engine's caches with it —
  /// endpoint-distance entries are invalidated cone-precisely against the
  /// batch's effective delta (blanket-flushed only when a non-identity
  /// remap forces a renumbering rebuild), and the per-snapshot remap /
  /// kernel dispatch are rebuilt. Queries already admitted keep their
  /// pinned snapshot; queries submitted after return see the new one.
  /// Concurrent ApplyUpdates calls serialize; batches need not pause.
  /// Returns FailedPrecondition on a fixed-graph engine, otherwise the
  /// store's result (new snapshot + effective delta).
  StatusOr<GraphUpdateResult> ApplyUpdates(std::span<const EdgeUpdate> updates);

  /// The epoch queries submitted now would pin (always 0 in fixed mode).
  uint64_t current_epoch() const;

  PathEngineStats GetStats() const;

  /// Drops every cached distance map (counters and budgets stay).
  void InvalidateDistanceCache();

  /// Spills the endpoint-distance cache to `path` (index/cache_persist.h,
  /// docs/PERSIST.md): every entry valid at the current serving epoch,
  /// keyed to the current RUN graph's content checksum — the id space the
  /// cache's keys actually live in, remapped or not. Pair with
  /// GraphStore::SaveSnapshot taken under the same quiesced epoch for a
  /// consistent checkpoint. FailedPrecondition when the cache is disabled.
  Status SaveDistanceCache(const std::string& path);

  /// Restores a spill written by SaveDistanceCache into this engine's
  /// cache, stamped at the current epoch. The spill is revalidated against
  /// the current run graph's content checksum and refused on mismatch
  /// (FailedPrecondition) — restoring is then exactly a warm cache, never
  /// a wrong one. The engine must have the same remap_mode the saving
  /// engine had (same graph + same mode → same deterministic remap →
  /// same key space). Returns the number of entries resident after the
  /// restore.
  StatusOr<size_t> RestoreDistanceCache(const std::string& path);

  /// The engine's distance cache, or nullptr when disabled. The cache
  /// object is unsynchronized (the dispatcher mutates it while batches
  /// run), so reading its counters requires a quiesced engine — Drain()
  /// with no concurrent Submit/RunBatch. Concurrent monitoring should use
  /// GetStats(), whose cache totals are mutex-guarded.
  const EndpointDistanceCache* distance_cache() const {
    return options_.enable_distance_cache ? &cache_ : nullptr;
  }

  const PathEngineOptions& options() const { return options_; }

 private:
  /// One immutable serving view: a graph snapshot plus everything the
  /// pipeline derives from its content — the remap (and with it the
  /// renumbered run graph) and the resolved kernel dispatch. Built once
  /// per snapshot (at construction, then per ApplyUpdates) and shared
  /// read-only by every query pinned to it; the shared_ptr keeps the
  /// snapshot alive until its last pinned query resolves, which is what
  /// the store's deferred GC keys on.
  struct EngineView {
    std::shared_ptr<const GraphSnapshot> snapshot;  ///< null in fixed mode
    std::shared_ptr<const GraphRemap> remap;
    uint64_t epoch = 0;
    /// The snapshot's graph in original ids (admission-time validation,
    /// remap translation); outlives the view via `snapshot` / the fixed
    /// graph's engine-outliving contract.
    const Graph* graph = nullptr;
    /// Kernel dispatch resolved once per view (satellite of the same
    /// hoist the enumerator does), against the run graph.
    ResolvedKernel kernel;

    const Graph& run_graph() const {
      return remap->is_identity() ? *graph : remap->remapped();
    }
  };

  struct Pending {
    PathQuery query;
    PathSink* sink = nullptr;
    std::promise<QueryResult> promise;
    /// The serving view pinned at admission: this query enumerates this
    /// snapshot no matter how many updates land before it runs.
    std::shared_ptr<const EngineView> view;
    /// When the Submit call entered the engine — BEFORE any backpressure
    /// blocking, unlike the queue item's enqueue stamp (which drives the
    /// wait cut) — so QueryResult.wait_seconds covers the full
    /// submit-to-dispatch interval.
    double submitted_seconds = 0;
  };
  using QueueItem = WeightedFairQueue<Pending>::Item;
  enum class CutReason { kSize, kWait, kFlush };

  /// Bookkeeping bytes one queued query charges against the byte budget.
  static uint64_t QueryCostBytes(const std::string& tenant_id);

  /// Shared construction tail (view bootstrap, tenant weights, pool,
  /// dispatcher start).
  void Init();
  /// Derives a serving view from a snapshot's graph (remap build, kernel
  /// resolution). `snapshot` is null in fixed mode.
  std::shared_ptr<const EngineView> MakeView(
      std::shared_ptr<const GraphSnapshot> snapshot, const Graph* graph,
      uint64_t epoch) const;
  /// The view a query submitted now pins.
  std::shared_ptr<const EngineView> CurrentView() const;

  void DispatchLoop();
  size_t StepDispatchLocked(std::unique_lock<std::mutex>& lk);
  void RunMicroBatch(std::vector<QueueItem> batch, CutReason reason);
  /// Remap boundary: validates against the view's original graph
  /// (error-message parity), translates queries, and interposes a
  /// TranslatingSink so the pipeline below always runs in the view's
  /// (possibly renumbered) id space while callers only ever see original
  /// ids. Caller holds run_mu_ and has set ctx_.graph_epoch to the view's
  /// epoch.
  Status ExecuteBatch(const EngineView& view,
                      const std::vector<PathQuery>& queries, PathSink* sink,
                      BatchStats* stats);
  /// The algorithm switch proper, running on the view's run graph with
  /// batch_options_ (remap_mode already cleared).
  Status ExecuteBatchOn(const EngineView& view,
                        const std::vector<PathQuery>& queries, PathSink* sink,
                        BatchStats* stats);

  /// True when a query of `cost` bytes fits the queue budgets (an empty
  /// queue always admits).
  bool HasSpaceLocked(uint64_t cost) const;
  /// Refreshes overload_since_ from the current queue level.
  void UpdateOverloadLocked();
  /// The low-watermark shed targets: shedding stops once both hold.
  void ShedTargetsLocked(size_t* target_items, uint64_t* target_bytes) const;
  /// True when shedding would actually remove something (queue above the
  /// low-watermark targets).
  bool AboveShedTargetsLocked() const;
  /// True when the overload episode has outlasted the shed patience and
  /// there is something to shed.
  bool ShedDueLocked() const;
  /// When overload has persisted past patience, sheds down to the low
  /// watermark and moves the victims into *shed (resolve them with
  /// ResolveShed AFTER releasing mu_). Returns whether anything was shed.
  bool ShedIfDueLocked(std::vector<QueueItem>* shed);
  /// Completes shed queries' futures with the documented Status.
  static void ResolveShed(std::vector<QueueItem> shed);
  /// When shedding is due, sheds under `lk`, wakes space/drain waiters,
  /// and resolves the victims' futures with `lk` released (relocked on
  /// return). Returns whether anything was shed.
  bool ShedAndResolveLocked(std::unique_lock<std::mutex>& lk);
  /// Marks one Submit as leaving the admission critical region (wakes the
  /// destructor when the last one leaves).
  void FinishSubmitLocked();
  /// WFQ-drains `take` queries, refreshes overload state, wakes blocked
  /// submitters.
  std::vector<QueueItem> CutBatchLocked(size_t take);

  /// Incremental cache repair (store mode; caller holds update_mu_, the
  /// new view is NOT yet published): re-runs the capped BFS for up to
  /// cache_repair_max_keys of the invalidated keys — `dead` arrives
  /// MRU-first from InvalidateUpdated's LRU scan, so budget truncation
  /// keeps the hottest keys — on `view`'s graph and reinserts the maps at
  /// `view`'s epoch. Updates the repaired/skipped counters under mu_.
  void RepairCacheEntries(const EngineView& view,
                          std::vector<EndpointDistanceCache::RepairKey>& dead);
  /// Max-snapshot-lag enforcement (store mode; called by ApplyUpdates
  /// right after the new view is published): removes every queued query
  /// whose pinned epoch lags `new_epoch` by more than the configured
  /// bound and resolves its future with the documented FailedPrecondition
  /// outside the admission lock, releasing its snapshot pin first.
  void FailOverLaggedQueued(uint64_t new_epoch);

  /// Exactly one of these is set: the immutable fixed-mode graph, or the
  /// dynamic-mode snapshot store.
  const Graph* fixed_graph_ = nullptr;
  GraphStore* store_ = nullptr;
  const PathEngineOptions options_;
  Status init_status_;
  Clock* clock_;
  /// The serving view queries pin at admission. Swapped atomically (under
  /// view_mu_) by ApplyUpdates; each view is immutable once published, so
  /// readers only need the pointer load. In fixed mode this is built once
  /// at construction and never changes — a long-lived engine renumbers the
  /// graph once and amortizes the pass over every micro-batch it serves.
  mutable std::mutex view_mu_;
  std::shared_ptr<const EngineView> view_;
  /// Serializes ApplyUpdates callers (store writes, cache reconciliation,
  /// view swap). Ordered before run_mu_/mu_ is never needed: updates touch
  /// neither; batches keep running on their pinned views throughout.
  std::mutex update_mu_;
  /// Recycled storage of RepairCacheEntries (guarded by update_mu_ like
  /// the repair pass itself): the MS-BFS scratch/result plus the
  /// source/cap staging vectors, so a steady-state update's repair pass
  /// reuses capacity instead of allocating.
  MsBfsScratch repair_scratch_;
  MsBfsResult repair_result_;
  std::vector<VertexId> repair_sources_;
  std::vector<Hop> repair_caps_;
  /// options_.batch with remap_mode cleared to kNone — the pipeline calls
  /// below must never re-apply the remap the engine already performed.
  BatchOptions batch_options_;
  EndpointDistanceCache cache_;

  /// Serializes pipeline execution (admission batches vs RunBatch): the
  /// BatchContext and the distance cache admit one batch at a time.
  std::mutex run_mu_;
  BatchContext ctx_;

  // Admission state, guarded by mu_.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;    // dispatcher wakeups
  std::condition_variable space_cv_;   // blocked-submitter wakeups
  std::condition_variable drained_cv_; // Drain() waiters
  WeightedFairQueue<Pending> queue_;
  /// FIFO tickets of submits blocked on queue space; the front ticket is
  /// admitted first (deterministic backpressure release ordering).
  std::deque<uint64_t> blocked_;
  uint64_t next_ticket_ = 0;
  /// Submit and StepDispatch calls currently inside the engine. The
  /// destructor waits (idle_cv_) until this drops to zero after setting
  /// stopping_, so a submit woken at shutdown — or a batch an external
  /// stepper is still running — finishes with the engine's members alive.
  size_t submits_active_ = 0;
  std::condition_variable idle_cv_;
  /// Clock time the current overload episode began (queue at/above the
  /// high watermark); empty when not overloaded.
  std::optional<double> overload_since_;
  bool flush_requested_ = false;
  bool stopping_ = false;
  /// Micro-batches currently executing outside the lock. A counter, not a
  /// flag: StepDispatch may be called from several threads at once.
  size_t batches_in_flight_ = 0;
  PathEngineStats stats_;

  std::thread dispatcher_;
};

}  // namespace hcpath

#endif  // HCPATH_SERVICE_PATH_ENGINE_H_
