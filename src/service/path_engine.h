#ifndef HCPATH_SERVICE_PATH_ENGINE_H_
#define HCPATH_SERVICE_PATH_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/batch_context.h"
#include "core/enumerator.h"
#include "core/options.h"
#include "core/path.h"
#include "core/query.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "index/endpoint_cache.h"
#include "util/status.h"

namespace hcpath {

/// Options of a PathEngine (see docs/SERVICE.md).
struct PathEngineOptions {
  /// Pipeline configuration shared by every micro-batch: algorithm,
  /// clustering γ, thread count, per-query caps. Validated at engine
  /// construction.
  BatchOptions batch;

  /// Admission cut by size: a micro-batch is dispatched as soon as this
  /// many queries are pending. Values < 1 behave as 1.
  size_t max_batch_size = 64;

  /// Admission cut by wait: a micro-batch is dispatched once its oldest
  /// pending query has waited this long, even if underfull. <= 0 disables
  /// the timer (cuts happen on size, Flush, or shutdown only — the
  /// deterministic mode the differential tests drive).
  double max_wait_seconds = 0.002;

  /// Materialize each query's paths into its QueryResult when the caller
  /// gave no per-query sink. Disable for count-only serving.
  bool collect_paths = true;

  /// Cross-batch endpoint distance cache (docs/SERVICE.md): repeated
  /// endpoints skip their BFS in later batches' index builds. Served maps
  /// are content-identical to fresh builds, so results are unaffected.
  bool enable_distance_cache = true;
  size_t distance_cache_max_entries = 4096;
  uint64_t distance_cache_max_bytes = 256ull << 20;
};

/// Outcome of one submitted query.
struct QueryResult {
  Status status;
  uint64_t path_count = 0;
  /// The query's paths, when the engine collects (collect_paths and no
  /// per-query sink); empty otherwise.
  PathSet paths;
  /// Admission-queue time (submit -> batch dispatch).
  double wait_seconds = 0;
  /// Pipeline wall time of the micro-batch that carried this query.
  double batch_seconds = 0;
};

/// Aggregate engine counters (monotonic since construction).
struct PathEngineStats {
  uint64_t queries_submitted = 0;
  uint64_t queries_rejected = 0;  ///< failed admission-time validation
  uint64_t queries_completed = 0;
  uint64_t batches_run = 0;
  uint64_t size_cuts = 0;   ///< micro-batches cut on max_batch_size
  uint64_t wait_cuts = 0;   ///< micro-batches cut on max_wait_seconds
  uint64_t flush_cuts = 0;  ///< micro-batches cut by Flush() or shutdown
  uint64_t distance_cache_hits = 0;
  uint64_t distance_cache_misses = 0;
  /// Pipeline counters accumulated across all micro-batches.
  BatchStats batch_stats;
};

/// Long-lived batch path-query service: the architectural seam between the
/// BatchEnum pipeline (a pure batch function) and sustained query traffic.
///
/// A PathEngine owns the graph reference, the shared thread pool, a
/// recycled BatchContext (index storage, BFS/cluster scratch, merge
/// buffers), and the cross-batch endpoint distance cache. Submit() enqueues
/// a query and returns a future; an admission thread cuts micro-batches by
/// max-size / max-wait (plus explicit Flush() and shutdown drain) and
/// drives each through the configured pipeline, streaming paths to the
/// per-query sinks in the pipeline's deterministic emission order.
///
/// Determinism: a sequence of micro-batches produces paths, counts, and
/// Status byte-identical to one-shot RunBatchEnum/RunBasicEnum calls on the
/// same batches — regardless of thread count or cache warmth (asserted by
/// differential_fuzz_test's engine configs; coherence argument in
/// docs/SERVICE.md). Queries that fail validation are rejected at admission
/// (their future carries InvalidArgument) and never poison co-batched
/// queries; a mid-batch pipeline error (e.g. a max_paths cap) fails every
/// query of that micro-batch with the batch's Status, exactly as the
/// one-shot call would.
///
/// Thread-safety: Submit/Flush/Drain/RunBatch/GetStats may be called from
/// any thread. The graph must outlive the engine and stay immutable (the
/// distance cache depends on it; see EndpointDistanceCache).
class PathEngine {
 public:
  PathEngine(const Graph& g, const PathEngineOptions& options);

  /// Drains every pending query (shutdown acts as a final Flush), then
  /// joins the admission thread. Futures of drained queries are fulfilled.
  ~PathEngine();

  PathEngine(const PathEngine&) = delete;
  PathEngine& operator=(const PathEngine&) = delete;

  /// Construction outcome: InvalidArgument when PathEngineOptions.batch
  /// fails validation. A failed engine rejects every Submit/RunBatch.
  const Status& status() const { return init_status_; }

  /// Enqueues one query; the future resolves when its micro-batch
  /// completes. With a `sink`, the query's paths stream there (tagged with
  /// the query's index inside its micro-batch) and QueryResult.paths stays
  /// empty. Sink calls across a micro-batch are totally ordered (the
  /// merge's drain lock serializes them) and follow the pipeline's
  /// deterministic emission order, but at num_threads > 1 they may arrive
  /// on any pool worker thread — sinks must not assume thread affinity.
  /// Invalid queries resolve immediately with InvalidArgument.
  std::future<QueryResult> Submit(const PathQuery& query,
                                  PathSink* sink = nullptr);

  /// Requests an immediate cut of everything currently queued (possibly
  /// several max_batch_size micro-batches). Non-blocking; pair with the
  /// returned futures or Drain() to wait.
  void Flush();

  /// Blocks until the admission queue is empty and no batch is in flight.
  void Drain();

  /// Synchronous path: runs `queries` as one micro-batch through the same
  /// recycled context and distance cache, bypassing the admission queue
  /// (serialized against it). Exactly the one-shot pipeline semantics,
  /// including whole-batch validation.
  Status RunBatch(const std::vector<PathQuery>& queries, PathSink* sink,
                  BatchStats* stats = nullptr);

  PathEngineStats GetStats() const;

  /// Drops every cached distance map (counters and budgets stay).
  void InvalidateDistanceCache();

  /// The engine's distance cache, or nullptr when disabled. The cache
  /// object is unsynchronized (the dispatcher mutates it while batches
  /// run), so reading its counters requires a quiesced engine — Drain()
  /// with no concurrent Submit/RunBatch. Concurrent monitoring should use
  /// GetStats(), whose cache totals are mutex-guarded.
  const EndpointDistanceCache* distance_cache() const {
    return options_.enable_distance_cache ? &cache_ : nullptr;
  }

  const PathEngineOptions& options() const { return options_; }

 private:
  struct Pending {
    PathQuery query;
    PathSink* sink = nullptr;
    std::promise<QueryResult> promise;
    std::chrono::steady_clock::time_point enqueued;
  };
  enum class CutReason { kSize, kWait, kFlush };

  void DispatchLoop();
  void RunMicroBatch(std::vector<Pending> batch, CutReason reason);
  Status ExecuteBatch(const std::vector<PathQuery>& queries, PathSink* sink,
                      BatchStats* stats);

  const Graph& g_;
  const PathEngineOptions options_;
  Status init_status_;
  EndpointDistanceCache cache_;

  /// Serializes pipeline execution (admission batches vs RunBatch): the
  /// BatchContext and the distance cache admit one batch at a time.
  std::mutex run_mu_;
  BatchContext ctx_;

  // Admission state, guarded by mu_.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;    // dispatcher wakeups
  std::condition_variable drained_cv_; // Drain() waiters
  std::deque<Pending> queue_;
  bool flush_requested_ = false;
  bool stopping_ = false;
  bool batch_in_flight_ = false;
  PathEngineStats stats_;

  std::thread dispatcher_;
};

}  // namespace hcpath

#endif  // HCPATH_SERVICE_PATH_ENGINE_H_
