#include "workload/dataset_registry.h"

#include <algorithm>
#include <cmath>

#include "graph/generators.h"

namespace hcpath {

const std::vector<DatasetSpec>& AllDatasets() {
  // Densities are m/n of the stand-in; the very dense originals (UK 90,
  // DA 100 edges/vertex) are thinned to keep k in [4,7] enumerable on a
  // laptop, and their bench hop range is reduced (DESIGN.md §5).
  // Most stand-ins are small-world graphs (Watts–Strogatz, `skew` = rewire
  // probability): real SNAP graphs are highly clustered, and at laptop
  // vertex counts only bounded k-hop balls with abundant *local* parallel
  // routes reproduce the paper's regime — enumeration-dominated batches
  // whose similarity varies meaningfully. Expander-style generators (R-MAT
  // kept for the hub-skewed WikiTalk/Rec-dating stand-ins) saturate every
  // k-hop ball at this scale while offering few simple paths. DESIGN.md §5
  // records the full substitution rationale.
  static const std::vector<DatasetSpec>* specs = new std::vector<DatasetSpec>{
      {"EP", "Epinions", "ws", 75888, 508837, 75000, 750000, 0.01, 4, 7},
      {"SL", "Slashdot", "ws", 82168, 948464, 82000, 902000, 0.01, 4, 7},
      {"BK", "Baidu-baike", "ws", 415641, 3284387, 131072, 1179648, 0.01,
       4, 7},
      {"WT", "WikiTalk", "rmat", 2394385, 5021410, 131072, 330000, 0.65, 4,
       5},
      {"BS", "BerkStan", "ws", 685230, 7600595, 65536, 720896, 0.008, 4, 7},
      {"SK", "Skitter", "ws", 1696415, 11095298, 100000, 1000000, 0.01, 4,
       7},
      {"UK", "Web-uk-2005", "ws", 129632, 11744049, 30000, 420000, 0.005, 3,
       5},
      {"DA", "Rec-dating", "rmat", 168791, 17359346, 32768, 260000, 0.55, 3,
       4},
      {"PO", "Pokec", "ws", 1632803, 30622564, 120000, 1200000, 0.01, 4, 6},
      {"LJ", "LiveJournal", "ws", 4847571, 68993773, 131072, 1441792, 0.01,
       4, 6},
      {"TW", "Twitter-2010", "ws", 41652230, 1468365182, 262144, 2621440,
       0.01, 4, 6},
      {"FS", "Friendster", "ws", 65608366, 1806067135, 300000, 2700000,
       0.01, 4, 6},
  };
  return *specs;
}

StatusOr<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("unknown dataset: " + name);
}

StatusOr<Graph> MakeDataset(const std::string& name, double scale,
                            uint64_t seed) {
  auto spec = FindDataset(name);
  if (!spec.ok()) return spec.status();
  scale = std::max(scale, 0.05);
  const auto n = static_cast<VertexId>(
      std::max<double>(64.0, spec->base_vertices * scale));
  const auto m = static_cast<uint64_t>(
      std::max<double>(128.0, static_cast<double>(spec->base_edges) * scale));
  Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (name[0] + 131 * name[1])));

  if (spec->generator == "ba") {
    const uint32_t deg = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::llround(
               static_cast<double>(m) / static_cast<double>(n))));
    return GenerateBarabasiAlbert(n, deg, rng);
  }
  if (spec->generator == "rmat") {
    // Round |V| up to a power of two as R-MAT requires.
    uint32_t scale_bits = 1;
    while ((1u << scale_bits) < n) ++scale_bits;
    const double a = spec->skew;
    const double b = (1.0 - a) * 0.4;
    const double c = (1.0 - a) * 0.4;
    return GenerateRMat(scale_bits, m, a, b, c, rng);
  }
  if (spec->generator == "er") {
    return GenerateErdosRenyi(n, m, rng);
  }
  if (spec->generator == "ws") {
    const uint32_t k_out = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::llround(
               static_cast<double>(m) / static_cast<double>(n))));
    return GenerateSmallWorld(n, k_out, spec->skew, rng);
  }
  return Status::Internal("unhandled generator: " + spec->generator);
}

std::vector<std::string> DefaultBenchDatasets() {
  return {"EP", "SL", "BK", "BS"};
}

}  // namespace hcpath
