#ifndef HCPATH_WORKLOAD_SIMILARITY_GEN_H_
#define HCPATH_WORKLOAD_SIMILARITY_GEN_H_

#include <vector>

#include "core/query.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace hcpath {

/// A query set with a calibrated average pairwise similarity µ_Q (Exp-1 /
/// Fig 7 varies µ_Q from 0% to 90%).
struct SimilarQuerySet {
  std::vector<PathQuery> queries;
  double achieved_mu = 0;
};

/// Generates `count` queries whose average similarity µ_Q approximates
/// `target_mu`:
///  * a fraction f of the queries is drawn from a few "pools" built around
///    seed queries (same or 1-hop-perturbed endpoints -> µ close to 1
///    within a pool);
///  * the rest are independent random queries (µ close to 0 across);
///  * f is calibrated by bisection against the measured µ_Q (computed with
///    the same index + similarity code the algorithms use).
///
/// `target_mu` = 0 yields a purely random set. Measurement is exact for
/// small graphs and sketched for large ones, so `achieved_mu` is reported
/// back for the bench to print.
StatusOr<SimilarQuerySet> GenerateQueriesWithSimilarity(
    const Graph& g, size_t count, int k_min, int k_max, double target_mu,
    Rng& rng);

/// Measures µ_Q of an arbitrary query set (builds a throwaway index).
double MeasureAverageSimilarity(const Graph& g,
                                const std::vector<PathQuery>& queries);

}  // namespace hcpath

#endif  // HCPATH_WORKLOAD_SIMILARITY_GEN_H_
