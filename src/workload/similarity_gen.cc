#include "workload/similarity_gen.h"

#include <algorithm>
#include <cmath>

#include "bfs/bfs.h"
#include "core/basic_enum.h"
#include "core/enumerator.h"
#include "core/similarity.h"
#include "index/distance_index.h"
#include "workload/query_gen.h"

namespace hcpath {

namespace {

/// Perturbs a seed query into a pool member: occasionally swaps the target
/// for a random out-neighbor (keeping it reachable) and re-rolls k.
PathQuery PerturbSeed(const Graph& g, const PathQuery& seed, int k_min,
                      int k_max, Rng& rng) {
  PathQuery q = seed;
  q.k = static_cast<int>(rng.NextInt(k_min, k_max));
  if (rng.NextBernoulli(0.3)) {
    auto nbrs = g.OutNeighbors(seed.t);
    if (!nbrs.empty()) {
      VertexId cand = nbrs[rng.NextBounded(nbrs.size())];
      if (cand != q.s &&
          ReachableWithin(g, q.s, cand, static_cast<Hop>(q.k))) {
        q.t = cand;
      }
    }
  }
  // A re-rolled k below dist(s, t) would make the query vacuous; fall back
  // to the seed's k (the seed is reachable by construction).
  if (!ReachableWithin(g, q.s, q.t, static_cast<Hop>(q.k))) {
    q.k = std::max(q.k, seed.k);
  }
  return q;
}

}  // namespace

double MeasureAverageSimilarity(const Graph& g,
                                const std::vector<PathQuery>& queries) {
  if (queries.size() < 2) return 0;
  DistanceIndex index;
  BuildBatchIndex(g, queries, &index, nullptr);
  SimilarityMatrix sim =
      ComputeSimilarityMatrix(g, queries, index, SimilarityMode::kAuto);
  return sim.Average();
}

StatusOr<SimilarQuerySet> GenerateQueriesWithSimilarity(
    const Graph& g, size_t count, int k_min, int k_max, double target_mu,
    Rng& rng) {
  if (target_mu < 0 || target_mu > 0.97) {
    return Status::InvalidArgument("target_mu must be in [0, 0.97]");
  }
  QueryGenOptions qopt;
  qopt.k_min = k_min;
  qopt.k_max = k_max;
  // Skip near-trivial endpoints: pool seeds are replicated ~|Q| times, so a
  // degenerate seed (adjacent s, t) would collapse the whole workload.
  qopt.min_distance = std::min(3, k_min);

  // Random base set reused across calibration iterations.
  auto random_set = GenerateRandomQueries(g, count, qopt, rng);
  if (!random_set.ok()) return random_set.status();
  if (target_mu == 0) {
    SimilarQuerySet out;
    out.queries = std::move(*random_set);
    out.achieved_mu = MeasureAverageSimilarity(g, out.queries);
    return out;
  }

  // Pool seeds. Cross-pool pairs have µ ≈ 0, so the achievable average
  // similarity is capped near 1/#pools: high targets need one big pool,
  // low targets spread the pooled queries across several hotspots.
  const size_t max_pools = std::max<size_t>(1, count / 12);
  const size_t num_pools = std::clamp<size_t>(
      static_cast<size_t>(1.0 / std::max(target_mu, 0.08)), 1, max_pools);

  // Seeds are drawn from the random base set at the 60th..90th result-count
  // percentile: pooled queries replace random ones as the target grows, so
  // a degenerate (or extreme) seed would make rows incomparable across
  // similarity levels.
  // Result counts are heavy-tailed, so "comparable" means matching the
  // *mean* per-query weight, which sits far above the median.
  std::vector<size_t> seed_order(random_set->size());
  for (size_t i = 0; i < seed_order.size(); ++i) seed_order[i] = i;
  size_t mean_pos = seed_order.size() / 2;
  {
    BatchPathEnumerator probe(g);
    BatchOptions opt;
    opt.algorithm = Algorithm::kBasicEnum;
    opt.max_paths_per_query = 1'000'000;
    auto counts = probe.Run(*random_set, opt);
    if (counts.ok()) {
      std::stable_sort(seed_order.begin(), seed_order.end(),
                       [&](size_t a, size_t b) {
                         return counts->path_counts[a] <
                                counts->path_counts[b];
                       });
      const double mean = static_cast<double>(counts->TotalPaths()) /
                          static_cast<double>(random_set->size());
      mean_pos = 0;
      while (mean_pos + 1 < seed_order.size() &&
             static_cast<double>(
                 counts->path_counts[seed_order[mean_pos]]) < mean) {
        ++mean_pos;
      }
    }
  }
  std::vector<PathQuery> seeds;
  for (size_t p = 0; p < num_pools; ++p) {
    // Seeds straddle the mean-count position so pooled rows carry roughly
    // the same total weight as the random rows they replace.
    const size_t idx =
        std::min(seed_order.size() - 1, mean_pos + p);
    seeds.push_back((*random_set)[seed_order[idx]]);
  }

  auto build = [&](double pool_fraction, Rng& local_rng) {
    std::vector<PathQuery> qs;
    qs.reserve(count);
    const size_t pool_count = static_cast<size_t>(
        std::round(pool_fraction * static_cast<double>(count)));
    for (size_t i = 0; i < count; ++i) {
      if (i < pool_count) {
        const PathQuery& seed = seeds[i % seeds.size()];
        qs.push_back(PerturbSeed(g, seed, k_min, k_max, local_rng));
      } else {
        qs.push_back((*random_set)[i]);
      }
    }
    return qs;
  };

  // Bisection on the pooled fraction; µ_Q grows monotonically with it.
  double lo = 0.0, hi = 1.0;
  double f = std::sqrt(target_mu);  // µ_Q ≈ f² for disjoint pools
  SimilarQuerySet best;
  double best_err = 1e9;
  for (int iter = 0; iter < 7; ++iter) {
    Rng local = rng.Split();
    std::vector<PathQuery> qs = build(f, local);
    const double mu = MeasureAverageSimilarity(g, qs);
    const double err = std::abs(mu - target_mu);
    if (err < best_err) {
      best_err = err;
      best.queries = std::move(qs);
      best.achieved_mu = mu;
    }
    if (err < 0.02) break;
    if (mu < target_mu) {
      lo = f;
    } else {
      hi = f;
    }
    f = (lo + hi) / 2;
  }
  return best;
}

}  // namespace hcpath
