#ifndef HCPATH_WORKLOAD_DATASET_REGISTRY_H_
#define HCPATH_WORKLOAD_DATASET_REGISTRY_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace hcpath {

/// One named synthetic stand-in for a paper dataset (Table I). The
/// generator family and density are matched to the original's character;
/// sizes are scaled to laptop budgets (DESIGN.md §5 records the mapping).
struct DatasetSpec {
  std::string name;         ///< paper short name: EP, SL, ..., FS
  std::string full_name;    ///< paper dataset: Epinions, Slashdot, ...
  std::string generator;    ///< "ba", "rmat", "er", "ws"
  uint64_t paper_vertices;  ///< |V| in Table I
  uint64_t paper_edges;     ///< |E| in Table I
  VertexId base_vertices;   ///< stand-in |V| at scale 1
  uint64_t base_edges;      ///< stand-in |E| target at scale 1
  double skew;              ///< R-MAT `a` parameter / generator skew knob
  /// Hop range recommended for benches on this dataset; dense stand-ins
  /// use smaller k to keep result sizes laptop-friendly.
  int bench_k_min = 4;
  int bench_k_max = 7;
};

/// All twelve stand-ins in Table I order.
const std::vector<DatasetSpec>& AllDatasets();

/// Spec by short name ("EP" ... "FS").
StatusOr<DatasetSpec> FindDataset(const std::string& name);

/// Instantiates a stand-in at `scale` (scales |V| and |E| linearly, min
/// 0.05). Deterministic for a given (name, scale, seed).
StatusOr<Graph> MakeDataset(const std::string& name, double scale,
                            uint64_t seed);

/// Default small subset used by quick bench runs: EP SL BK BS (plus TW FS
/// stand-ins for the scalability experiment).
std::vector<std::string> DefaultBenchDatasets();

}  // namespace hcpath

#endif  // HCPATH_WORKLOAD_DATASET_REGISTRY_H_
