#ifndef HCPATH_WORKLOAD_QUERY_GEN_H_
#define HCPATH_WORKLOAD_QUERY_GEN_H_

#include <vector>

#include "core/query.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace hcpath {

/// Random query workload matching the paper's setup (Section V,
/// "Settings"): queries are random (s, t) pairs such that s reaches t
/// within k hops, with k uniform in [k_min, k_max].
struct QueryGenOptions {
  int k_min = 4;
  int k_max = 7;
  /// Attempts per query before giving up (graphs with tiny reach).
  int max_tries = 200;
  /// Skip targets closer than this many hops (avoids trivial queries).
  int min_distance = 1;
};

/// Generates `count` random reachable queries. Fails with
/// FailedPrecondition when the graph cannot produce them (e.g. edgeless).
StatusOr<std::vector<PathQuery>> GenerateRandomQueries(
    const Graph& g, size_t count, const QueryGenOptions& options, Rng& rng);

}  // namespace hcpath

#endif  // HCPATH_WORKLOAD_QUERY_GEN_H_
