#include "workload/query_gen.h"

#include "bfs/bfs.h"

namespace hcpath {

StatusOr<std::vector<PathQuery>> GenerateRandomQueries(
    const Graph& g, size_t count, const QueryGenOptions& options, Rng& rng) {
  if (g.NumVertices() < 2) {
    return Status::FailedPrecondition("graph too small for queries");
  }
  if (options.k_min < 1 || options.k_max < options.k_min ||
      options.k_max > kMaxHops) {
    return Status::InvalidArgument("bad k range");
  }
  std::vector<PathQuery> out;
  out.reserve(count);
  while (out.size() < count) {
    bool found = false;
    for (int attempt = 0; attempt < options.max_tries; ++attempt) {
      const VertexId s =
          static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
      if (g.OutDegree(s) == 0) continue;
      const int k = static_cast<int>(
          rng.NextInt(options.k_min, options.k_max));
      VertexDistMap reach = HopCappedBfs(g, s, static_cast<Hop>(k),
                                         Direction::kForward);
      // Collect admissible targets: within k hops, not s itself, at least
      // min_distance away.
      std::vector<VertexId> candidates;
      candidates.reserve(reach.size());
      reach.ForEach([&](VertexId v, Hop d) {
        if (v != s && d >= options.min_distance) candidates.push_back(v);
      });
      if (candidates.empty()) continue;
      const VertexId t = candidates[rng.NextBounded(candidates.size())];
      out.push_back({s, t, k});
      found = true;
      break;
    }
    if (!found) {
      return Status::FailedPrecondition(
          "could not generate a reachable query after max_tries attempts");
    }
  }
  return out;
}

}  // namespace hcpath
