#ifndef HCPATH_KSP_ONEPASS_H_
#define HCPATH_KSP_ONEPASS_H_

#include "core/path.h"
#include "core/query.h"
#include "graph/graph.h"
#include "ksp/ksp_common.h"
#include "util/status.h"

namespace hcpath {

/// OnePass (Chondrogiannis et al., VLDBJ'20 [35]) adapted to HC-s-t path
/// enumeration per Section V: the overlap constraint is dropped and results
/// are generated until the hop constraint is reached. The remaining core is
/// the OnePass label expansion: partial simple paths kept in a min-heap
/// keyed by length + lower-bound distance to t (from one reverse BFS), each
/// pop either emits a complete path or expands labels one hop.
///
/// Returns ResourceExhausted when a limit fires (the bench reports OT).
Status OnePassEnumerate(const Graph& g, const PathQuery& q,
                        size_t query_index, PathSink* sink,
                        const KspLimits& limits);

}  // namespace hcpath

#endif  // HCPATH_KSP_ONEPASS_H_
