#include "ksp/onepass.h"

#include <queue>
#include <vector>

#include "bfs/bfs.h"
#include "util/timer.h"

namespace hcpath {

Status OnePassEnumerate(const Graph& g, const PathQuery& q,
                        size_t query_index, PathSink* sink,
                        const KspLimits& limits) {
  HCPATH_RETURN_NOT_OK(ValidateQueries(g, {q}));
  WallTimer timer;

  // One reverse BFS provides the admissible lower bound dist(v, t).
  std::vector<Hop> lb = HopCappedBfsDense(g, q.t, static_cast<Hop>(q.k),
                                          Direction::kBackward);
  if (lb[q.s] == kUnreachable) return Status::OK();

  struct Label {
    std::vector<VertexId> path;
    int f = 0;  // |path| - 1 + lb(tail)
  };
  auto worse = [](const Label& a, const Label& b) {
    if (a.f != b.f) return a.f > b.f;
    return a.path > b.path;  // deterministic tiebreak
  };
  std::priority_queue<Label, std::vector<Label>, decltype(worse)> heap(
      worse);
  heap.push({{q.s}, static_cast<int>(lb[q.s])});

  uint64_t count = 0;
  uint64_t pops = 0;
  while (!heap.empty()) {
    if ((++pops & 1023) == 0 && limits.time_budget_seconds > 0 &&
        timer.ElapsedSeconds() > limits.time_budget_seconds) {
      return Status::ResourceExhausted("OnePass exceeded time budget");
    }
    Label label = heap.top();
    heap.pop();
    const VertexId tail = label.path.back();
    if (tail == q.t) {
      sink->OnPath(query_index, label.path);
      if (limits.max_paths != 0 && ++count >= limits.max_paths) {
        return Status::ResourceExhausted("OnePass exceeded max_paths");
      }
      continue;  // extending past t never yields another simple s-t path
    }
    const int len = static_cast<int>(label.path.size()) - 1;
    if (len >= q.k) continue;
    for (VertexId v : g.OutNeighbors(tail)) {
      if (lb[v] == kUnreachable) continue;
      const int f = len + 1 + lb[v];
      if (f > q.k) continue;
      bool on_path = false;
      for (VertexId w : label.path) {
        if (w == v) {
          on_path = true;
          break;
        }
      }
      if (on_path) continue;
      Label next;
      next.path = label.path;
      next.path.push_back(v);
      next.f = f;
      heap.push(std::move(next));
    }
  }
  return Status::OK();
}

}  // namespace hcpath
