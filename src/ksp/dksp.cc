#include "ksp/dksp.h"

#include <algorithm>
#include <queue>
#include <set>
#include <vector>

#include "util/timer.h"

namespace hcpath {

namespace {

/// BFS shortest path from `src` to `t` avoiding banned vertices and banned
/// out-edges of `src`; returns empty vector when unreachable within
/// `max_hops`. `banned_first_edges` only constrains the first hop, which is
/// how Yen's deviation search excludes previously emitted continuations.
std::vector<VertexId> ConstrainedShortestPath(
    const Graph& g, VertexId src, VertexId t, int max_hops,
    const std::vector<bool>& banned_vertex,
    const std::set<VertexId>& banned_first_edges) {
  if (src == t) return {src};
  std::vector<VertexId> parent(g.NumVertices(), kInvalidVertex);
  std::vector<bool> seen(g.NumVertices(), false);
  std::vector<VertexId> frontier = {src};
  seen[src] = true;
  for (int level = 0; level < max_hops && !frontier.empty(); ++level) {
    std::vector<VertexId> next;
    for (VertexId u : frontier) {
      for (VertexId v : g.OutNeighbors(u)) {
        if (seen[v] || banned_vertex[v]) continue;
        if (level == 0 && banned_first_edges.count(v) != 0) continue;
        seen[v] = true;
        parent[v] = u;
        if (v == t) {
          std::vector<VertexId> path = {t};
          for (VertexId w = t; w != src; w = parent[w]) {
            path.push_back(parent[w]);
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        next.push_back(v);
      }
    }
    frontier.swap(next);
  }
  return {};
}

}  // namespace

Status DkspEnumerate(const Graph& g, const PathQuery& q, size_t query_index,
                     PathSink* sink, const KspLimits& limits) {
  HCPATH_RETURN_NOT_OK(ValidateQueries(g, {q}));
  WallTimer timer;

  using Candidate = std::vector<VertexId>;
  auto longer = [](const Candidate& a, const Candidate& b) {
    if (a.size() != b.size()) return a.size() > b.size();
    return a > b;  // deterministic tiebreak
  };
  std::priority_queue<Candidate, std::vector<Candidate>, decltype(longer)>
      heap(longer);
  std::set<Candidate> enqueued;  // dedup candidates across spur choices

  std::vector<bool> banned_vertex(g.NumVertices(), false);
  Candidate first = ConstrainedShortestPath(g, q.s, q.t, q.k, banned_vertex,
                                            {});
  if (first.empty()) return Status::OK();
  heap.push(first);
  enqueued.insert(first);

  std::vector<Candidate> emitted;
  uint64_t count = 0;
  while (!heap.empty()) {
    if (limits.time_budget_seconds > 0 &&
        timer.ElapsedSeconds() > limits.time_budget_seconds) {
      return Status::ResourceExhausted("DkSP exceeded time budget");
    }
    Candidate p = heap.top();
    heap.pop();
    if (p.size() - 1 > static_cast<size_t>(q.k)) break;
    sink->OnPath(query_index, p);
    emitted.push_back(p);
    if (limits.max_paths != 0 && ++count >= limits.max_paths) {
      return Status::ResourceExhausted("DkSP exceeded max_paths");
    }

    // Yen deviations: spur at every position of the emitted path.
    for (size_t i = 0; i + 1 < p.size(); ++i) {
      const VertexId spur = p[i];
      // Ban root prefix vertices (except the spur) so the spur path stays
      // simple, and ban the continuations already taken by emitted paths
      // sharing this root.
      std::fill(banned_vertex.begin(), banned_vertex.end(), false);
      for (size_t j = 0; j < i; ++j) banned_vertex[p[j]] = true;
      std::set<VertexId> banned_first;
      for (const Candidate& prev : emitted) {
        if (prev.size() > i &&
            std::equal(prev.begin(), prev.begin() + i + 1, p.begin())) {
          banned_first.insert(prev[i + 1]);
        }
      }
      const int remaining = q.k - static_cast<int>(i);
      Candidate spur_path = ConstrainedShortestPath(
          g, spur, q.t, remaining, banned_vertex, banned_first);
      if (spur_path.empty()) continue;
      Candidate full(p.begin(), p.begin() + i);
      full.insert(full.end(), spur_path.begin(), spur_path.end());
      if (full.size() - 1 > static_cast<size_t>(q.k)) continue;
      if (enqueued.insert(full).second) heap.push(full);
    }
  }
  return Status::OK();
}

}  // namespace hcpath
