#ifndef HCPATH_KSP_KSP_COMMON_H_
#define HCPATH_KSP_KSP_COMMON_H_

#include <cstdint>

namespace hcpath {

/// Resource limits for the adapted k-shortest-path baselines. The paper
/// reports OT (over time) for these algorithms on most datasets; the time
/// budget lets the bench harness reproduce that without hanging.
struct KspLimits {
  uint64_t max_paths = 0;           ///< 0 = unlimited
  double time_budget_seconds = 0;   ///< 0 = unlimited
};

}  // namespace hcpath

#endif  // HCPATH_KSP_KSP_COMMON_H_
