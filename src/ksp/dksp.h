#ifndef HCPATH_KSP_DKSP_H_
#define HCPATH_KSP_DKSP_H_

#include "core/path.h"
#include "core/query.h"
#include "graph/graph.h"
#include "ksp/ksp_common.h"
#include "util/status.h"

namespace hcpath {

/// DkSP (Luo et al., VLDB'22 [34]) adapted to HC-s-t path enumeration per
/// Section V: the diversity/similarity constraint is dropped and the
/// algorithm keeps generating results "until reaching the hop constraint".
/// What remains is Yen-style loopless path enumeration in length order:
/// repeatedly pop the shortest candidate, emit it, and push its deviations
/// (BFS shortest paths from each spur node avoiding the root prefix and
/// previously taken deviation edges). Stops once candidates exceed k hops.
///
/// Returns ResourceExhausted when a limit fires (the bench reports OT).
Status DkspEnumerate(const Graph& g, const PathQuery& q, size_t query_index,
                     PathSink* sink, const KspLimits& limits);

}  // namespace hcpath

#endif  // HCPATH_KSP_DKSP_H_
