// Ablation (ours, beyond the paper): isolates the contribution of each
// BatchEnum design choice called out in DESIGN.md — clustering (Alg 2),
// cache reuse (Alg 4 splicing), the shared pruning rule (D3), and the
// optimized search order.

#include <cstdio>

#include "bench_common.h"
#include "workload/dataset_registry.h"
#include "workload/similarity_gen.h"

using namespace hcpath;
using namespace hcpath::bench;

int main(int argc, char** argv) {
  CommonFlags cf;
  ParseOrDie(cf, argc, argv);
  auto csv = OpenCsv(*cf.csv);
  if (csv) csv->Row("dataset", "variant", "seconds", "splices", "expanded");

  struct Variant {
    const char* name;
    Algorithm algo;
    bool disable_clustering;
    bool disable_reuse;
    SharedPruning pruning;
  };
  const Variant kVariants[] = {
      {"Batch+ (full)", Algorithm::kBatchEnumPlus, false, false,
       SharedPruning::kPerTarget},
      {"  - order opt", Algorithm::kBatchEnum, false, false,
       SharedPruning::kPerTarget},
      {"  - clustering", Algorithm::kBatchEnumPlus, true, false,
       SharedPruning::kPerTarget},
      {"  - cache reuse", Algorithm::kBatchEnumPlus, false, true,
       SharedPruning::kPerTarget},
      {"  global-min pruning", Algorithm::kBatchEnumPlus, false, false,
       SharedPruning::kGlobalMin},
      {"  BasicEnum+ (no sharing at all)", Algorithm::kBasicEnumPlus, false,
       false, SharedPruning::kPerTarget},
  };

  for (const std::string& name : ResolveDatasets(*cf.datasets)) {
    Graph g = LoadDataset(name, *cf.scale, *cf.seed);
    auto spec = *FindDataset(name);
    Rng rng(static_cast<uint64_t>(*cf.seed));
    auto qs = GenerateQueriesWithSimilarity(
        g, static_cast<size_t>(*cf.queries), spec.bench_k_min,
        spec.bench_k_max, 0.7, rng);
    if (!qs.ok()) continue;
    std::printf("\nAblation (%s, |Q|=%lld, muQ=%.2f)\n", name.c_str(),
                static_cast<long long>(*cf.queries), qs->achieved_mu);
    std::printf("%-34s %10s %12s %14s\n", "variant", "time (s)",
                "splices", "edges expanded");
    for (const Variant& v : kVariants) {
      BatchOptions opt = MakeBatchOptions(cf);
      opt.disable_clustering = v.disable_clustering;
      opt.disable_cache_reuse = v.disable_reuse;
      opt.shared_pruning = v.pruning;
      opt.max_paths_per_query = 5'000'000;
      RunOutcome o =
          TimeAlgorithm(g, qs->queries, v.algo, opt, *cf.time_budget);
      std::printf("%-34s %10s %12llu %14llu\n", v.name,
                  FormatTime(o).c_str(),
                  static_cast<unsigned long long>(o.stats.shortcut_splices),
                  static_cast<unsigned long long>(o.stats.edges_expanded));
      if (csv) {
        csv->Row(name, v.name, o.seconds, o.stats.shortcut_splices,
                 o.stats.edges_expanded);
      }
    }
  }
  if (csv) csv->Close();
  return 0;
}
