#ifndef HCPATH_BENCH_BENCH_COMMON_H_
#define HCPATH_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/enumerator.h"
#include "core/options.h"
#include "core/query.h"
#include "graph/graph.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/rng.h"

namespace hcpath {
namespace bench {

/// Flags shared by every experiment binary.
struct CommonFlags {
  FlagSet flags;
  std::string* datasets;   ///< comma list, "default" (EP,SL,BK,WT) or "all"
  double* scale;           ///< dataset scale factor (1.0 = DESIGN.md sizes)
  int64_t* queries;        ///< query set size
  int64_t* seed;
  double* gamma;           ///< clustering threshold γ
  int64_t* threads;        ///< engine workers: 0 = all cores, 1 = sequential
  std::string* csv;        ///< optional CSV output path ("" = off)
  double* time_budget;     ///< per-run wall budget in seconds (OT beyond)
  bool* quick;             ///< shrink the sweep for smoke runs
  std::string* kernel;     ///< probe kernel: auto | stamped | naive
  std::string* remap;      ///< vertex renumbering: none | bfs | degree

  CommonFlags();
};

/// Parses flags; exits the process on --help or bad flags.
void ParseOrDie(CommonFlags& cf, int argc, char** argv);

/// BatchOptions seeded from the shared flags (--gamma, --threads) and
/// validated — the one place the per-driver flag-to-options plumbing
/// lives. Drivers override fields (algorithm, caps, sweep values) on the
/// returned struct.
BatchOptions MakeBatchOptions(const CommonFlags& cf);

/// Expands the --datasets flag into registry names (exits on unknown).
std::vector<std::string> ResolveDatasets(const std::string& spec);

/// Instantiates a registry stand-in (exits on failure) and logs its stats.
Graph LoadDataset(const std::string& name, double scale, uint64_t seed);

/// Outcome of timing one algorithm over one query batch.
struct RunOutcome {
  bool over_time = false;    ///< exceeded the time budget / resource caps
  double seconds = 0;
  uint64_t total_paths = 0;
  BatchStats stats;
};

/// Runs `algo` on the batch and returns wall time; a run whose result is
/// ResourceExhausted (per-query caps) or exceeds `time_budget` reports OT
/// like the paper. The enumeration itself is not preempted, so budgets
/// should be paired with max_paths caps for genuinely explosive runs.
///
/// Pass `enumerator` (one per dataset) when timing several batches on the
/// same graph: the facade caches the --remap renumbering across Run
/// calls, so only the first timed batch pays the per-graph remap build —
/// the amortization a long-lived PathEngine gets for free. With nullptr
/// a fresh facade is built (and any remap rebuilt) per call.
RunOutcome TimeAlgorithm(const Graph& g,
                         const std::vector<PathQuery>& queries,
                         Algorithm algo, const BatchOptions& base_options,
                         double time_budget,
                         BatchPathEnumerator* enumerator = nullptr);

/// "12.345" or "OT".
std::string FormatTime(const RunOutcome& o);

/// Opens the CSV sink when --csv is set (returns nullptr otherwise).
std::unique_ptr<CsvWriter> OpenCsv(const std::string& path);

}  // namespace bench
}  // namespace hcpath

#endif  // HCPATH_BENCH_BENCH_COMMON_H_
