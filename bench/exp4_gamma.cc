// Exp-4 (Fig 10): impact of the clustering threshold γ on BatchEnum+.
// The paper reports a U-shape: small γ over-merges dissimilar queries,
// large γ forgoes sharing.

#include <cstdio>

#include "bench_common.h"
#include "workload/dataset_registry.h"
#include "workload/similarity_gen.h"

using namespace hcpath;
using namespace hcpath::bench;

int main(int argc, char** argv) {
  CommonFlags cf;
  ParseOrDie(cf, argc, argv);
  auto csv = OpenCsv(*cf.csv);
  if (csv) csv->Row("dataset", "gamma", "batchplus_s", "clusters");

  std::vector<double> gammas = {0.1, 0.2, 0.3, 0.4, 0.5,
                                0.6, 0.7, 0.8, 0.9, 1.0};
  if (*cf.quick) gammas = {0.1, 0.5, 1.0};

  for (const std::string& name : ResolveDatasets(*cf.datasets)) {
    Graph g = LoadDataset(name, *cf.scale, *cf.seed);
    auto spec = *FindDataset(name);
    Rng rng(static_cast<uint64_t>(*cf.seed));
    // Mixed-similarity workload: half pooled, half random, so γ actually
    // trades sharing against overhead.
    auto qs = GenerateQueriesWithSimilarity(
        g, static_cast<size_t>(*cf.queries), spec.bench_k_min,
        spec.bench_k_max, 0.5, rng);
    if (!qs.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   qs.status().ToString().c_str());
      continue;
    }
    std::printf("\nFig 10 (%s): impact of gamma (|Q|=%lld, muQ=%.2f)\n",
                name.c_str(), static_cast<long long>(*cf.queries),
                qs->achieved_mu);
    std::printf("%6s | %10s %9s\n", "gamma", "Batch+ (s)", "clusters");
    for (double gamma : gammas) {
      BatchOptions opt = MakeBatchOptions(cf);
      opt.gamma = gamma;
      opt.max_paths_per_query = 5'000'000;
      RunOutcome o = TimeAlgorithm(g, qs->queries,
                                   Algorithm::kBatchEnumPlus, opt,
                                   *cf.time_budget);
      std::printf("%6.1f | %10s %9llu\n", gamma, FormatTime(o).c_str(),
                  static_cast<unsigned long long>(o.stats.num_clusters));
      if (csv) csv->Row(name, gamma, o.seconds, o.stats.num_clusters);
    }
  }
  if (csv) csv->Close();
  return 0;
}
