// Exp-12: fault-tolerant sharded serving replay (docs/SHARDING.md). A
// Zipf-skewed query stream runs through ShardedPathService at shard
// counts {1, 2, 4, 8} in virtual time, per scenario:
//
//   * clean:      no faults — the routing/merge overhead baseline.
//   * faulty:     a seeded random schedule of transient faults (fail-N,
//                 drop-reply, slow) at --fault_rate faults per query;
//                 retries and attempt timeouts absorb them.
//   * shard_down: shard 0 crashes on its first dispatch (4-shard run) —
//                 heartbeats detect it, in-flight attempts fail over, the
//                 supervisor restarts it, and availability must stay
//                 >= 75% with a quarter of the fleet down.
//   * straggler:  shard 0 serves --straggler_factor slower for the whole
//                 run (4-shard run) — the hedged pass must not worsen,
//                 and in practice cuts, tail latency versus the unhedged
//                 pass on the identical schedule.
//
// Every scenario runs with hedging off and on. Besides the JSON metrics,
// the driver *verifies* the PR's acceptance criteria live and exits
// non-zero on violation (the CI bench-smoke runs `exp12_shards --quick`):
//   1. every completed query's path count equals the 1-shard no-fault
//      reference (the byte-level stream identity is asserted by
//      sharded_service_test and the ShardedFaultParity fuzz suite),
//   2. query and attempt conservation close with zero stalled merges,
//   3. shard_down availability >= 0.75,
//   4. straggler p99 with hedging <= p99 without.
//
//   ./build/exp12_shards --stream=2000 --fault_rate=0.02 \
//       --straggler_factor=8 --json=BENCH_PR9.json

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "service/admission_status.h"
#include "service/fault_injector.h"
#include "service/sharded_service.h"
#include "service/clock.h"
#include "util/rng.h"
#include "workload/query_gen.h"

using namespace hcpath;
using namespace hcpath::bench;

namespace {

/// Zipf-ish sampler over ranks [0, n): P(r) ~ 1 / (r + 1)^alpha.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double alpha) : cdf_(n) {
    double acc = 0;
    for (size_t r = 0; r < n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
      cdf_[r] = acc;
    }
    for (double& c : cdf_) c /= acc;
  }
  size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

double Percentile(const std::vector<double>& sorted_values, double p) {
  if (sorted_values.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_values.size() - 1));
  return sorted_values[idx];
}

struct Scenario {
  const char* name;
  int shards;
  bool one_shard_down;  ///< crash shard 0 at its first dispatch
  bool straggler;       ///< slow shard 0 for the whole run
  bool random_faults;   ///< seeded transient schedule at --fault_rate
};

struct RunResult {
  uint64_t completed = 0, failed = 0;
  double availability = 0;
  double p50 = 0, p99 = 0;  ///< virtual-time submit-to-finish latency
  bool parity_ok = true;
  bool statuses_documented = true;
  bool conservation_ok = true;
  ShardedServiceStats stats;
};

bool ConservationHolds(const ShardedServiceStats& s) {
  return s.queries_submitted ==
             s.queries_completed + s.queries_failed + s.queries_rejected &&
         s.dispatches == s.attempts_completed + s.attempts_failed +
                             s.attempts_cancelled + s.attempts_dropped &&
         s.attempts_in_flight == 0 && s.queries_stalled == 0;
}

FaultInjector MakeInjector(const Scenario& sc, double fault_rate,
                           double straggler_factor, size_t stream_size,
                           uint64_t seed) {
  FaultInjector injector;
  if (sc.one_shard_down) {
    injector.AddRule(FaultRule{/*shard=*/0, /*at_dispatch=*/0, /*count=*/1,
                               FaultKind::kCrash, 0.0, 1.0});
  }
  if (sc.straggler) {
    injector.AddRule(FaultRule{/*shard=*/0, /*at_dispatch=*/0,
                               /*count=*/4 * stream_size, FaultKind::kSlow,
                               0.0, straggler_factor});
  }
  if (sc.random_faults) {
    // Transient kinds only: crash belongs to shard_down, so availability
    // under this schedule isolates retry/timeout absorption.
    Rng frng(seed);
    const FaultKind kinds[] = {FaultKind::kFailN, FaultKind::kDropReply,
                               FaultKind::kSlow};
    const size_t n_faults = static_cast<size_t>(
        fault_rate * static_cast<double>(stream_size));
    for (size_t i = 0; i < n_faults; ++i) {
      FaultRule rule;
      rule.shard = static_cast<int>(frng.NextBounded(sc.shards));
      rule.at_dispatch = frng.NextBounded(stream_size);
      rule.count = 1 + frng.NextBounded(2);
      rule.kind = kinds[frng.NextBounded(3)];
      rule.seconds = 0.0625;
      rule.factor = 4.0;
      injector.AddRule(rule);
    }
  }
  return injector;
}

}  // namespace

int main(int argc, char** argv) {
  CommonFlags cf;
  int64_t* stream_size = cf.flags.AddInt64("stream", 2000, "queries in the replayed stream");
  int64_t* endpoints = cf.flags.AddInt64("endpoints", 64, "distinct query templates in the pool");
  int64_t* vertices = cf.flags.AddInt64("vertices", 8000, "graph size");
  int64_t* k = cf.flags.AddInt64("k", 4, "hop constraint");
  double* fault_rate = cf.flags.AddDouble("fault_rate", 0.02, "transient faults per streamed query (faulty scenario)");
  double* straggler_factor = cf.flags.AddDouble("straggler_factor", 8.0, "slow-down of shard 0 in the straggler scenario");
  int64_t* max_retries = cf.flags.AddInt64("retries", 3, "per-query retry budget");
  std::string* json = cf.flags.AddString("json", "", "also append JSON here");
  ParseOrDie(cf, argc, argv);

  size_t n_stream = static_cast<size_t>(*stream_size);
  VertexId n_vertices = static_cast<VertexId>(*vertices);
  if (*cf.quick) {
    n_stream = std::min<size_t>(n_stream, 300);
    n_vertices = std::min<VertexId>(n_vertices, 2000);
  }

  Rng grng(static_cast<uint64_t>(*cf.seed));
  auto g = GenerateSmallWorld(n_vertices, 6, 0.05, grng);
  if (!g.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 g.status().ToString().c_str());
    return 1;
  }
  Rng qrng(static_cast<uint64_t>(*cf.seed) + 1);
  QueryGenOptions qopt;
  qopt.k_min = static_cast<int>(*k);
  qopt.k_max = static_cast<int>(*k);
  qopt.min_distance = 2;
  auto pool = GenerateRandomQueries(*g, static_cast<size_t>(*endpoints),
                                    qopt, qrng);
  if (!pool.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 pool.status().ToString().c_str());
    return 1;
  }
  ZipfSampler endpoint_sampler(pool->size(), 1.1);
  std::vector<PathQuery> stream;
  stream.reserve(n_stream);
  for (size_t i = 0; i < n_stream; ++i) {
    stream.push_back((*pool)[endpoint_sampler.Sample(qrng)]);
  }
  std::fprintf(stderr,
               "[exp12] |V|=%lld stream=%zu fault_rate=%.3f straggler=%.1fx\n",
               static_cast<long long>(n_vertices), stream.size(), *fault_rate,
               *straggler_factor);

  ShardedServiceOptions base;
  base.batch = MakeBatchOptions(cf);
  base.collect_paths = false;  // serving-style: count, don't materialize
  base.service_time_seconds = 0.01;
  base.heartbeat_interval_seconds = 0.0625;
  base.suspect_after_missed = 2;
  base.down_after_missed = 4;
  base.restart_delay_seconds = 0.125;
  base.restart_duration_seconds = 0.25;
  base.max_retries = static_cast<int>(*max_retries);
  base.retry_backoff_seconds = 0.0625;
  // Attempt timeouts are the detection path for dropped replies; generous
  // enough that a deep virtual queue alone never trips them.
  base.attempt_timeout_seconds = 60.0;
  base.hedge_after_seconds = 0.5;
  base.hedge_quantile = 0.9;
  base.hedge_multiplier = 2.0;
  base.hedge_min_samples = 32;
  base.seed = static_cast<uint64_t>(*cf.seed);

  // 1-shard no-fault reference: per-query path counts for the parity
  // verification in every scenario below.
  std::vector<uint64_t> reference_counts(stream.size(), 0);
  std::vector<bool> reference_ok(stream.size(), false);
  {
    VirtualClock vc;
    ShardedServiceOptions opt = base;
    opt.num_shards = 1;
    ShardedPathService svc(&*g, opt, &vc);
    if (!svc.init_status().ok()) {
      std::fprintf(stderr, "service construction failed: %s\n",
                   svc.init_status().ToString().c_str());
      return 1;
    }
    auto futures = svc.SubmitBatch("bench", stream, nullptr);
    svc.RunToCompletion(&vc);
    for (size_t i = 0; i < futures.size(); ++i) {
      QueryResult r = futures[i].get();
      if (!r.status.ok()) {
        std::fprintf(stderr, "[exp12] reference query %zu failed: %s\n", i,
                     r.status.ToString().c_str());
        return 1;
      }
      reference_counts[i] = r.path_count;
      reference_ok[i] = true;
    }
    if (!ConservationHolds(svc.GetStats())) {
      std::fprintf(stderr, "[exp12] reference run broke conservation\n");
      return 3;
    }
  }

  std::FILE* jf = nullptr;
  if (!json->empty()) {
    jf = std::fopen(json->c_str(), "a");
    if (jf == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json->c_str());
      return 2;
    }
  }

  std::vector<Scenario> scenarios;
  for (int shards : {1, 2, 4, 8}) {
    scenarios.push_back({"clean", shards, false, false, false});
    scenarios.push_back({"faulty", shards, false, false, true});
  }
  scenarios.push_back({"shard_down", 4, true, false, false});
  scenarios.push_back({"straggler", 4, false, true, false});

  bool all_ok = true;
  double straggler_p99[2] = {0, 0};  // [unhedged, hedged]
  for (const Scenario& sc : scenarios) {
    for (bool hedging : {false, true}) {
      FaultInjector injector =
          MakeInjector(sc, *fault_rate, *straggler_factor, stream.size(),
                       static_cast<uint64_t>(*cf.seed) + 7);
      ShardedServiceOptions opt = base;
      opt.num_shards = sc.shards;
      opt.enable_hedging = hedging;

      VirtualClock vc;
      ShardedPathService svc(&*g, opt, &vc, &injector);
      if (!svc.init_status().ok()) {
        std::fprintf(stderr, "service construction failed: %s\n",
                     svc.init_status().ToString().c_str());
        return 1;
      }
      auto futures = svc.SubmitBatch("bench", stream, nullptr);
      svc.RunToCompletion(&vc);

      RunResult out;
      std::vector<double> latencies;
      for (size_t i = 0; i < futures.size(); ++i) {
        QueryResult r = futures[i].get();
        if (r.status.ok()) {
          ++out.completed;
          latencies.push_back(r.batch_seconds);
          if (!reference_ok[i] || r.path_count != reference_counts[i]) {
            out.parity_ok = false;
            std::fprintf(
                stderr, "[exp12] PARITY VIOLATION query %zu: got %llu want "
                        "%llu (%s/%d shards)\n",
                i, static_cast<unsigned long long>(r.path_count),
                static_cast<unsigned long long>(reference_counts[i]), sc.name,
                sc.shards);
          }
        } else {
          ++out.failed;
          // Degraded queries must carry the canonical serving statuses.
          if (!IsShardUnavailable(r.status) && !IsQueryDeadline(r.status)) {
            out.statuses_documented = false;
            std::fprintf(stderr, "[exp12] UNDOCUMENTED status: %s\n",
                         r.status.ToString().c_str());
          }
        }
      }
      out.availability = stream.empty()
                             ? 1.0
                             : static_cast<double>(out.completed) /
                                   static_cast<double>(stream.size());
      std::sort(latencies.begin(), latencies.end());
      out.p50 = Percentile(latencies, 0.50);
      out.p99 = Percentile(latencies, 0.99);
      out.stats = svc.GetStats();
      out.conservation_ok = ConservationHolds(out.stats);

      uint64_t crashes = 0, restarts = 0;
      for (const ShardStats& ss : out.stats.shards) {
        crashes += ss.crashes;
        restarts += ss.restarts;
      }
      char line[1024];
      std::snprintf(
          line, sizeof(line),
          "{\"bench\":\"exp12_shards\",\"scenario\":\"%s\",\"shards\":%d,"
          "\"hedging\":%s,\"stream\":%zu,\"fault_rate\":%.4f,"
          "\"straggler_factor\":%.1f,\"completed\":%llu,\"failed\":%llu,"
          "\"availability\":%.4f,\"p50_s\":%.4f,\"p99_s\":%.4f,"
          "\"retries\":%llu,\"hedges\":%llu,\"hedged_wins\":%llu,"
          "\"failovers\":%llu,\"attempt_timeouts\":%llu,\"crashes\":%llu,"
          "\"restarts\":%llu,\"stalled\":%llu,\"parity_ok\":%s,"
          "\"conservation_ok\":%s}\n",
          sc.name, sc.shards, hedging ? "true" : "false", stream.size(),
          sc.random_faults ? *fault_rate : 0.0,
          sc.straggler ? *straggler_factor : 1.0,
          static_cast<unsigned long long>(out.completed),
          static_cast<unsigned long long>(out.failed), out.availability,
          out.p50, out.p99,
          static_cast<unsigned long long>(out.stats.retries),
          static_cast<unsigned long long>(out.stats.hedges),
          static_cast<unsigned long long>(out.stats.hedged_wins),
          static_cast<unsigned long long>(out.stats.failovers),
          static_cast<unsigned long long>(out.stats.attempt_timeouts),
          static_cast<unsigned long long>(crashes),
          static_cast<unsigned long long>(restarts),
          static_cast<unsigned long long>(out.stats.queries_stalled),
          out.parity_ok ? "true" : "false",
          out.conservation_ok ? "true" : "false");
      std::fputs(line, stdout);
      if (jf != nullptr) std::fputs(line, jf);

      if (!out.parity_ok || !out.statuses_documented ||
          !out.conservation_ok) {
        all_ok = false;
      }
      if (sc.one_shard_down && out.availability < 0.75) {
        std::fprintf(stderr,
                     "[exp12] AVAILABILITY %.3f < 0.75 with 1/%d shards "
                     "down (hedging=%d)\n",
                     out.availability, sc.shards, hedging ? 1 : 0);
        all_ok = false;
      }
      if (sc.straggler) straggler_p99[hedging ? 1 : 0] = out.p99;
    }
  }
  if (jf != nullptr) std::fclose(jf);

  // Acceptance: on the identical straggler schedule, first-reply-wins
  // hedging must not worsen the tail.
  if (straggler_p99[1] > straggler_p99[0]) {
    std::fprintf(stderr,
                 "[exp12] HEDGING WORSENED straggler p99: %.4fs -> %.4fs\n",
                 straggler_p99[0], straggler_p99[1]);
    all_ok = false;
  }
  std::fprintf(stderr, "[exp12] straggler p99 unhedged=%.4fs hedged=%.4fs\n",
               straggler_p99[0], straggler_p99[1]);

  if (!all_ok) {
    std::fprintf(stderr, "[exp12] VERIFICATION FAILED\n");
    return 3;
  }
  return 0;
}
