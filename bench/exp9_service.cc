// Exp-9: PathEngine service benchmark. Replays an open-loop stream of
// queries whose endpoints follow a power-law (Zipf) popularity — the skew
// that makes hot endpoints repeat across micro-batches — through one
// long-lived PathEngine, sweeping the micro-batch admission window, and
// emits one JSON object per (window, cache) config:
//
//   throughput (queries/s), p50/p95/p99 end-to-end latency, per-batch
//   index-build time, and the distance-cache hit rate.
//
// The cold configs (cache disabled) isolate what the cross-batch endpoint
// distance cache buys: on a skewed stream the warm runs must show
// distance_cache_hits > 0 and a lower avg_build_seconds_per_batch than
// their cold twins (the PR's acceptance criterion).
//
//   ./build/exp9_service --stream=2000 --endpoints=64 --zipf=1.1 \
//       --json=BENCH_service.json

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "service/path_engine.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/query_gen.h"

using namespace hcpath;
using namespace hcpath::bench;

namespace {

/// Zipf-ish sampler over ranks [0, n): P(r) ~ 1 / (r + 1)^alpha.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double alpha) : cdf_(n) {
    double acc = 0;
    for (size_t r = 0; r < n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
      cdf_[r] = acc;
    }
    for (double& c : cdf_) c /= acc;
  }
  size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

double Percentile(std::vector<double> sorted_values, double p) {
  if (sorted_values.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_values.size() - 1));
  return sorted_values[idx];
}

struct StreamOutcome {
  double seconds = 0;
  uint64_t total_paths = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  PathEngineStats stats;
};

/// Replays the stream through a fresh engine; open loop (submit as fast as
/// admission accepts, never waiting for earlier queries).
StreamOutcome ReplayStream(const Graph& g, const std::vector<PathQuery>& stream,
                           const PathEngineOptions& opt) {
  StreamOutcome out;
  PathEngine engine(g, opt);
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(stream.size());
  WallTimer timer;
  for (const PathQuery& q : stream) futures.push_back(engine.Submit(q));
  engine.Flush();
  std::vector<double> latencies;
  latencies.reserve(stream.size());
  for (auto& f : futures) {
    QueryResult r = f.get();
    if (r.status.ok()) out.total_paths += r.path_count;
    latencies.push_back(r.wait_seconds + r.batch_seconds);
  }
  out.seconds = timer.ElapsedSeconds();
  std::sort(latencies.begin(), latencies.end());
  out.p50 = Percentile(latencies, 0.50);
  out.p95 = Percentile(latencies, 0.95);
  out.p99 = Percentile(latencies, 0.99);
  out.stats = engine.GetStats();
  return out;
}

void EmitJson(std::FILE* f, size_t window, bool cache, size_t stream_size,
              size_t endpoints, double zipf, int threads,
              const StreamOutcome& o) {
  const uint64_t probes =
      o.stats.distance_cache_hits + o.stats.distance_cache_misses;
  const double hit_rate =
      probes > 0 ? static_cast<double>(o.stats.distance_cache_hits) /
                       static_cast<double>(probes)
                 : 0;
  const double qps =
      o.seconds > 0 ? static_cast<double>(stream_size) / o.seconds : 0;
  const double build_per_batch =
      o.stats.batches_run > 0
          ? o.stats.batch_stats.build_index_seconds /
                static_cast<double>(o.stats.batches_run)
          : 0;
  std::fprintf(
      f,
      "{\"bench\":\"exp9_service\",\"window\":%zu,\"cache\":%s,"
      "\"stream\":%zu,\"endpoints\":%zu,\"zipf\":%.2f,\"threads\":%d,"
      "\"seconds\":%.6f,\"qps\":%.1f,\"paths\":%llu,"
      "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,"
      "\"batches\":%llu,\"size_cuts\":%llu,\"wait_cuts\":%llu,"
      "\"flush_cuts\":%llu,"
      "\"distance_cache_hits\":%llu,\"distance_cache_misses\":%llu,"
      "\"cache_hit_rate\":%.4f,\"join_index_rebuilds\":%llu,"
      "\"build_index_seconds\":%.6f,\"avg_build_seconds_per_batch\":%.8f}\n",
      window, cache ? "true" : "false", stream_size, endpoints, zipf,
      threads, o.seconds, qps,
      static_cast<unsigned long long>(o.total_paths), o.p50 * 1e3,
      o.p95 * 1e3, o.p99 * 1e3,
      static_cast<unsigned long long>(o.stats.batches_run),
      static_cast<unsigned long long>(o.stats.size_cuts),
      static_cast<unsigned long long>(o.stats.wait_cuts),
      static_cast<unsigned long long>(o.stats.flush_cuts),
      static_cast<unsigned long long>(o.stats.distance_cache_hits),
      static_cast<unsigned long long>(o.stats.distance_cache_misses),
      hit_rate,
      static_cast<unsigned long long>(
          o.stats.batch_stats.join_index_rebuilds),
      o.stats.batch_stats.build_index_seconds, build_per_batch);
}

}  // namespace

int main(int argc, char** argv) {
  CommonFlags cf;
  int64_t* stream_size = cf.flags.AddInt64("stream", 2000, "queries in the replayed stream");
  int64_t* endpoints = cf.flags.AddInt64("endpoints", 64, "distinct query templates in the pool");
  double* zipf = cf.flags.AddDouble("zipf", 1.1, "endpoint popularity skew (0 = uniform)");
  int64_t* vertices = cf.flags.AddInt64("vertices", 20000, "graph size");
  int64_t* k = cf.flags.AddInt64("k", 4, "hop constraint");
  double* max_wait_ms = cf.flags.AddDouble("max_wait_ms", 0.5, "admission max-wait cut (ms)");
  std::string* json = cf.flags.AddString("json", "", "also append JSON here");
  ParseOrDie(cf, argc, argv);

  Rng grng(static_cast<uint64_t>(*cf.seed));
  auto g = GenerateSmallWorld(static_cast<VertexId>(*vertices), 6, 0.05,
                              grng);
  if (!g.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 g.status().ToString().c_str());
    return 1;
  }

  // Endpoint pool + Zipf-weighted stream over it.
  Rng qrng(static_cast<uint64_t>(*cf.seed) + 1);
  QueryGenOptions qopt;
  qopt.k_min = static_cast<int>(*k);
  qopt.k_max = static_cast<int>(*k);
  qopt.min_distance = 2;
  auto pool = GenerateRandomQueries(*g, static_cast<size_t>(*endpoints),
                                    qopt, qrng);
  if (!pool.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 pool.status().ToString().c_str());
    return 1;
  }
  ZipfSampler sampler(pool->size(), *zipf);
  std::vector<PathQuery> stream;
  stream.reserve(static_cast<size_t>(*stream_size));
  for (int64_t i = 0; i < *stream_size; ++i) {
    stream.push_back((*pool)[sampler.Sample(qrng)]);
  }
  std::fprintf(stderr,
               "[exp9] |V|=%lld stream=%zu pool=%zu zipf=%.2f threads=%lld\n",
               static_cast<long long>(*vertices), stream.size(),
               pool->size(), *zipf, static_cast<long long>(*cf.threads));

  std::FILE* jf = nullptr;
  if (!json->empty()) {
    jf = std::fopen(json->c_str(), "a");
    if (jf == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json->c_str());
      return 2;
    }
  }

  std::vector<size_t> windows = {1, 4, 16, 64};
  if (*cf.quick) windows = {4, 32};

  for (size_t window : windows) {
    for (bool cache : {false, true}) {
      PathEngineOptions opt;
      opt.batch = MakeBatchOptions(cf);
      opt.batch.max_paths_per_query = 5'000'000;
      opt.max_batch_size = window;
      opt.max_wait_seconds = *max_wait_ms / 1e3;
      opt.collect_paths = false;  // serving-style: count, don't materialize
      opt.enable_distance_cache = cache;
      StreamOutcome o = ReplayStream(*g, stream, opt);
      EmitJson(stdout, window, cache, stream.size(),
               static_cast<size_t>(*endpoints), *zipf,
               opt.batch.num_threads, o);
      if (jf != nullptr) {
        EmitJson(jf, window, cache, stream.size(),
                 static_cast<size_t>(*endpoints), *zipf,
                 opt.batch.num_threads, o);
      }
    }
  }
  if (jf != nullptr) std::fclose(jf);
  return 0;
}
