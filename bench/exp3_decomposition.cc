// Exp-3 (Fig 9): processing time decomposition of BatchEnum+ into
// BuildIndex, ClusterQuery, IdentifySubquery and Enumeration.

#include <cstdio>

#include "bench_common.h"
#include "workload/dataset_registry.h"
#include "workload/similarity_gen.h"

using namespace hcpath;
using namespace hcpath::bench;

int main(int argc, char** argv) {
  CommonFlags cf;
  ParseOrDie(cf, argc, argv);
  auto csv = OpenCsv(*cf.csv);
  if (csv) {
    csv->Row("dataset", "build_index_s", "cluster_query_s",
             "identify_subquery_s", "enumeration_s", "total_s");
  }

  std::printf("Fig 9: BatchEnum+ time decomposition (|Q|=%lld)\n",
              static_cast<long long>(*cf.queries));
  std::printf("%-4s | %12s %13s %17s %13s %10s\n", "ds", "BuildIndex",
              "ClusterQuery", "IdentifySubquery", "Enumeration", "total");

  for (const std::string& name : ResolveDatasets(*cf.datasets)) {
    Graph g = LoadDataset(name, *cf.scale, *cf.seed);
    auto spec = *FindDataset(name);
    Rng rng(static_cast<uint64_t>(*cf.seed));
    // A moderately similar workload so every phase does real work.
    auto qs = GenerateQueriesWithSimilarity(
        g, static_cast<size_t>(*cf.queries), spec.bench_k_min,
        spec.bench_k_max, 0.5, rng);
    if (!qs.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   qs.status().ToString().c_str());
      continue;
    }
    BatchOptions opt = MakeBatchOptions(cf);
    opt.max_paths_per_query = 5'000'000;
    RunOutcome o = TimeAlgorithm(g, qs->queries, Algorithm::kBatchEnumPlus,
                                 opt, *cf.time_budget);
    if (o.over_time) {
      std::printf("%-4s | OT\n", name.c_str());
      continue;
    }
    std::printf("%-4s | %12.4f %13.4f %17.4f %13.4f %10.4f\n", name.c_str(),
                o.stats.build_index_seconds, o.stats.cluster_seconds,
                o.stats.detect_seconds, o.stats.enumerate_seconds,
                o.stats.total_seconds);
    if (csv) {
      csv->Row(name, o.stats.build_index_seconds, o.stats.cluster_seconds,
               o.stats.detect_seconds, o.stats.enumerate_seconds,
               o.stats.total_seconds);
    }
  }
  if (csv) csv->Close();
  return 0;
}
