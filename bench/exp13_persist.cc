// Exp-13: persistence tier cold-start benchmark (docs/PERSIST.md). One
// ~1M-edge graph is saved three ways — text edge list, binary edge list
// (rebuild on load), and the mmap CSR snapshot — then each path is timed
// from cold open to FIRST query-batch result. A second phase checkpoints
// a warm PathEngine's endpoint-distance cache (SaveDistanceCache +
// GraphStore::SaveSnapshot), "restarts" into OpenSnapshot +
// RestoreDistanceCache, and compares time-to-first-batch and cache hits
// against an identical cold engine.
//
// Besides the JSON metrics the driver *verifies* the PR's acceptance
// criteria live and exits non-zero on violation (CI bench-smoke runs
// `exp13_persist --quick`):
//   1. parity: the first batch's paths are byte-identical (canonicalized)
//      across in-memory, text, binary, and mmap load paths,
//   2. speed (full runs only): mmap cold-start-to-first-result is >= 5x
//      faster than the text-parse cold start on the >= 1M-edge graph,
//   3. warm restore: the restored engine reports cache hits on its very
//      first batch and its results equal the cold engine's.
//
// Snapshots are written to a mkdtemp'd scratch dir (honoring $TMPDIR) and
// removed on exit — no repo-root litter; --dir overrides, --keep retains.
//
//   ./build/exp13_persist --vertices=140000 --degree=8 --json=BENCH_PR10.json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/batch_enum.h"
#include "core/path.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/graph_snapshot_io.h"
#include "graph/graph_store.h"
#include "index/cache_persist.h"
#include "service/path_engine.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/query_gen.h"

using namespace hcpath;
using namespace hcpath::bench;

namespace {

/// Canonical form of one batch's results: per-query sorted path vectors.
using BatchPaths = std::vector<std::vector<std::vector<VertexId>>>;

struct ColdStart {
  double load_seconds = 0;
  double first_batch_seconds = 0;
  double total_seconds() const { return load_seconds + first_batch_seconds; }
  uint64_t file_bytes = 0;
  BatchPaths paths;
  bool ok = false;
};

/// Runs the first query batch on `g` and canonicalizes the results.
bool FirstBatch(const Graph& g, const std::vector<PathQuery>& queries,
                const BatchOptions& opt, double* seconds, BatchPaths* out) {
  WallTimer t;
  CollectingSink sink(queries.size());
  Status st = RunBatchEnum(g, queries, opt, /*optimized_order=*/true, &sink,
                           nullptr);
  *seconds = t.ElapsedSeconds();
  if (!st.ok()) {
    std::fprintf(stderr, "[exp13] first batch failed: %s\n",
                 st.ToString().c_str());
    return false;
  }
  out->clear();
  for (size_t i = 0; i < queries.size(); ++i) {
    out->push_back(sink.paths(i).ToSortedVectors());
  }
  return true;
}

uint64_t FileBytes(const std::string& path) {
  std::error_code ec;
  auto s = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<uint64_t>(s);
}

}  // namespace

int main(int argc, char** argv) {
  CommonFlags cf;
  int64_t* vertices = cf.flags.AddInt64(
      "vertices", 140000, "graph size (Barabasi-Albert)");
  int64_t* degree =
      cf.flags.AddInt64("degree", 8, "BA attachment degree (~m = n*degree)");
  int64_t* k = cf.flags.AddInt64("k", 4, "hop constraint");
  int64_t* first_batch =
      cf.flags.AddInt64("first_batch", 4, "queries in the first batch");
  int64_t* warm_stream = cf.flags.AddInt64(
      "warm_stream", 400, "warmup queries before the cache checkpoint");
  std::string* dir = cf.flags.AddString(
      "dir", "", "scratch directory ('' = mkdtemp under $TMPDIR)");
  int64_t* keep =
      cf.flags.AddInt64("keep", 0, "1 = keep the scratch dir on exit");
  std::string* json = cf.flags.AddString("json", "", "also append JSON here");
  ParseOrDie(cf, argc, argv);

  VertexId n = static_cast<VertexId>(*vertices);
  int deg = static_cast<int>(*degree);
  size_t n_first = static_cast<size_t>(*first_batch);
  size_t n_warm = static_cast<size_t>(*warm_stream);
  if (*cf.quick) {
    n = std::min<VertexId>(n, 4000);
    deg = std::min(deg, 4);
    n_first = std::min<size_t>(n_first, 8);
    n_warm = std::min<size_t>(n_warm, 120);
  }

  // Scratch dir: mkdtemp (respecting $TMPDIR) unless --dir names one.
  std::string scratch = *dir;
  bool made_scratch = false;
  if (scratch.empty()) {
    const char* tmpdir = std::getenv("TMPDIR");
    std::string tmpl = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                       "/hcpath_exp13.XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 2;
    }
    scratch.assign(buf.data());
    made_scratch = true;
  }
  const std::string text_path = scratch + "/graph.txt";
  const std::string bin_path = scratch + "/graph.bin";
  const std::string snap_path = scratch + "/graph.hcs";
  const std::string spill_path = scratch + "/cache.hcc";
  auto cleanup = [&] {
    if (*keep != 0) {
      std::fprintf(stderr, "[exp13] keeping scratch dir %s\n",
                   scratch.c_str());
      return;
    }
    std::error_code ec;
    if (made_scratch) {
      std::filesystem::remove_all(scratch, ec);
    } else {
      for (const auto& p : {text_path, bin_path, snap_path, spill_path}) {
        std::filesystem::remove(p, ec);
      }
    }
  };

  Rng grng(static_cast<uint64_t>(*cf.seed));
  auto g = GenerateBarabasiAlbert(n, deg, grng);
  if (!g.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 g.status().ToString().c_str());
    cleanup();
    return 2;
  }
  std::fprintf(stderr, "[exp13] |V|=%llu |E|=%llu scratch=%s\n",
               static_cast<unsigned long long>(g->NumVertices()),
               static_cast<unsigned long long>(g->NumEdges()),
               scratch.c_str());

  Rng qrng(static_cast<uint64_t>(*cf.seed) + 1);
  QueryGenOptions qopt;
  qopt.k_min = qopt.k_max = static_cast<int>(*k);
  qopt.min_distance = 2;
  auto queries = GenerateRandomQueries(*g, n_first, qopt, qrng);
  if (!queries.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 queries.status().ToString().c_str());
    cleanup();
    return 2;
  }
  BatchOptions bopt = MakeBatchOptions(cf);
  bopt.max_paths_per_query = 5'000'000;

  std::FILE* jf = nullptr;
  if (!json->empty()) {
    jf = std::fopen(json->c_str(), "a");
    if (jf == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json->c_str());
      cleanup();
      return 2;
    }
  }
  bool all_ok = true;

  // ---- Save all three formats (save cost is reported, never gated).
  double text_save_s, bin_save_s, snap_save_s;
  {
    WallTimer t;
    if (!SaveEdgeListText(*g, text_path).ok()) {
      std::fprintf(stderr, "text save failed\n");
      cleanup();
      return 2;
    }
    text_save_s = t.ElapsedSeconds();
    t.Restart();
    if (!SaveEdgeListBinary(*g, bin_path).ok()) {
      std::fprintf(stderr, "binary save failed\n");
      cleanup();
      return 2;
    }
    bin_save_s = t.ElapsedSeconds();
    t.Restart();
    if (!SaveGraphSnapshot(*g, snap_path).ok()) {
      std::fprintf(stderr, "snapshot save failed\n");
      cleanup();
      return 2;
    }
    snap_save_s = t.ElapsedSeconds();
  }

  // ---- In-memory reference (no load cost).
  ColdStart ref;
  ref.ok = FirstBatch(*g, *queries, bopt, &ref.first_batch_seconds, &ref.paths);
  if (!ref.ok) {
    cleanup();
    return 2;
  }

  // ---- Cold starts. Each loader returns a fresh Graph; the first-batch
  // clock includes everything a restarted server would pay after open()
  // (index build, enumeration, materialization).
  auto cold_start = [&](const char* mode,
                        StatusOr<Graph> (*load)(const std::string&),
                        const std::string& path) -> ColdStart {
    ColdStart out;
    out.file_bytes = FileBytes(path);
    WallTimer t;
    StatusOr<Graph> loaded = load(path);
    out.load_seconds = t.ElapsedSeconds();
    if (!loaded.ok()) {
      std::fprintf(stderr, "[exp13] %s load failed: %s\n", mode,
                   loaded.status().ToString().c_str());
      return out;
    }
    out.ok = FirstBatch(*loaded, *queries, bopt, &out.first_batch_seconds,
                        &out.paths);
    return out;
  };
  ColdStart text_cs = cold_start("text", &LoadEdgeListText, text_path);
  ColdStart bin_cs = cold_start("binary", &LoadEdgeListBinary, bin_path);
  ColdStart mmap_cs = cold_start(
      "mmap",
      +[](const std::string& p) {
        return LoadGraphSnapshot(p, GraphSnapshotLoadOptions{});
      },
      snap_path);
  // Trusted open (verify=false): the O(1) header-only variant, reported
  // alongside the verified default.
  double mmap_trusted_load_s = 0;
  {
    WallTimer t;
    auto trusted =
        LoadGraphSnapshot(snap_path, GraphSnapshotLoadOptions{.verify = false});
    mmap_trusted_load_s = t.ElapsedSeconds();
    if (!trusted.ok()) all_ok = false;
  }

  struct Row {
    const char* mode;
    const ColdStart* cs;
    double save_seconds;
  };
  for (const Row& row : {Row{"text", &text_cs, text_save_s},
                         Row{"binary", &bin_cs, bin_save_s},
                         Row{"mmap", &mmap_cs, snap_save_s}}) {
    if (!row.cs->ok) {
      all_ok = false;
      continue;
    }
    if (row.cs->paths != ref.paths) {
      std::fprintf(stderr,
                   "[exp13] FAIL: %s first-batch paths differ from the "
                   "in-memory reference\n",
                   row.mode);
      all_ok = false;
    }
    char line[768];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"exp13_persist\",\"mode\":\"%s\",\"vertices\":%llu,"
        "\"edges\":%llu,\"file_bytes\":%llu,\"save_seconds\":%.6f,"
        "\"load_seconds\":%.6f,\"first_batch_seconds\":%.6f,"
        "\"total_seconds\":%.6f,\"speedup_vs_text\":%.2f,"
        "\"parity_ok\":%s}\n",
        row.mode, static_cast<unsigned long long>(g->NumVertices()),
        static_cast<unsigned long long>(g->NumEdges()),
        static_cast<unsigned long long>(row.cs->file_bytes), row.save_seconds,
        row.cs->load_seconds, row.cs->first_batch_seconds,
        row.cs->total_seconds(),
        row.cs->total_seconds() > 0
            ? text_cs.total_seconds() / row.cs->total_seconds()
            : 0.0,
        row.cs->paths == ref.paths ? "true" : "false");
    std::fputs(line, stdout);
    if (jf != nullptr) std::fputs(line, jf);
  }
  std::fprintf(
      stderr,
      "[exp13] cold start to first result: text=%.3fs binary=%.3fs "
      "mmap=%.3fs (load %.3f/%.3f/%.3f, trusted open %.6fs)\n",
      text_cs.total_seconds(), bin_cs.total_seconds(),
      mmap_cs.total_seconds(), text_cs.load_seconds, bin_cs.load_seconds,
      mmap_cs.load_seconds, mmap_trusted_load_s);
  // Acceptance gate 2 — full runs only: a --quick graph is small enough
  // that fixed batch costs dominate and the ratio is noise.
  if (!*cf.quick && text_cs.ok && mmap_cs.ok &&
      mmap_cs.total_seconds() * 5 > text_cs.total_seconds()) {
    std::fprintf(stderr,
                 "[exp13] FAIL: mmap cold start %.3fs not >=5x faster than "
                 "text %.3fs\n",
                 mmap_cs.total_seconds(), text_cs.total_seconds());
    all_ok = false;
  }

  // ---- Phase 2: warm-cache checkpoint and restore.
  PathEngineOptions eopt;
  eopt.batch = bopt;
  eopt.max_wait_seconds = 0;
  eopt.max_batch_size = 1 << 20;
  eopt.collect_paths = false;

  // Zipf-hot warm stream over the first-batch query pool: repeats are what
  // give the cache something to spill.
  std::vector<PathQuery> warm;
  warm.reserve(n_warm);
  {
    Rng wrng(static_cast<uint64_t>(*cf.seed) + 2);
    for (size_t i = 0; i < n_warm; ++i) {
      const size_t r = static_cast<size_t>(wrng.Next() % 100);
      const size_t idx = r < 70 ? r % std::min<size_t>(4, queries->size())
                                : wrng.Next() % queries->size();
      warm.push_back((*queries)[idx]);
    }
  }

  uint64_t spill_entries = 0, spill_bytes = 0;
  {
    GraphStore store(*g);
    PathEngine engine(&store, eopt);
    if (!engine.status().ok()) {
      std::fprintf(stderr, "engine failed: %s\n",
                   engine.status().ToString().c_str());
      cleanup();
      return 2;
    }
    std::vector<std::future<QueryResult>> futs;
    futs.reserve(warm.size());
    for (const auto& q : warm) futs.push_back(engine.Submit(q));
    engine.Flush();
    engine.Drain();
    for (auto& f : futs) f.get();
    if (!store.SaveSnapshot(snap_path).ok() ||
        !engine.SaveDistanceCache(spill_path).ok()) {
      std::fprintf(stderr, "[exp13] FAIL: checkpoint failed\n");
      cleanup();
      return 2;
    }
    CacheSpillInfo info;
    auto rd = ReadCacheSpillInfo(spill_path);
    if (rd.ok()) info = *rd;
    spill_entries = info.entry_count;
    spill_bytes = info.file_bytes;
  }

  // "Restart": reopen the snapshot twice — one engine restores the spill,
  // the control engine starts cold — and run the identical first batch.
  auto run_restart = [&](bool restore, double* seconds, uint64_t* hits,
                         uint64_t* path_counts_sum,
                         std::vector<uint64_t>* counts) -> bool {
    WallTimer t;
    auto store = GraphStore::OpenSnapshot(snap_path);
    if (!store.ok()) {
      std::fprintf(stderr, "[exp13] OpenSnapshot failed: %s\n",
                   store.status().ToString().c_str());
      return false;
    }
    PathEngine engine(store->get(), eopt);
    if (!engine.status().ok()) return false;
    if (restore) {
      auto restored = engine.RestoreDistanceCache(spill_path);
      if (!restored.ok()) {
        std::fprintf(stderr, "[exp13] RestoreDistanceCache failed: %s\n",
                     restored.status().ToString().c_str());
        return false;
      }
    }
    std::vector<std::future<QueryResult>> futs;
    for (const auto& q : *queries) futs.push_back(engine.Submit(q));
    engine.Flush();
    engine.Drain();
    counts->clear();
    *path_counts_sum = 0;
    for (auto& f : futs) {
      QueryResult r = f.get();
      if (!r.status.ok()) return false;
      counts->push_back(r.path_count);
      *path_counts_sum += r.path_count;
    }
    *seconds = t.ElapsedSeconds();
    *hits = engine.GetStats().distance_cache_hits;
    return true;
  };

  double warm_s = 0, cold_s = 0;
  uint64_t warm_hits = 0, cold_hits = 0, warm_sum = 0, cold_sum = 0;
  std::vector<uint64_t> warm_counts, cold_counts;
  const bool warm_ok =
      run_restart(true, &warm_s, &warm_hits, &warm_sum, &warm_counts);
  const bool cold_ok =
      run_restart(false, &cold_s, &cold_hits, &cold_sum, &cold_counts);
  if (!warm_ok || !cold_ok) {
    all_ok = false;
  } else {
    if (warm_hits == 0) {
      std::fprintf(stderr,
                   "[exp13] FAIL: restored cache served 0 hits on its first "
                   "batch\n");
      all_ok = false;
    }
    if (warm_counts != cold_counts) {
      std::fprintf(stderr,
                   "[exp13] FAIL: restored engine's path counts differ from "
                   "the cold engine's\n");
      all_ok = false;
    }
    char line[640];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"exp13_persist_cache\",\"warm_stream\":%zu,"
        "\"spill_entries\":%llu,\"spill_bytes\":%llu,"
        "\"restored_first_batch_seconds\":%.6f,"
        "\"cold_first_batch_seconds\":%.6f,\"restored_hits\":%llu,"
        "\"cold_hits\":%llu,\"paths\":%llu,\"parity_ok\":%s}\n",
        warm.size(), static_cast<unsigned long long>(spill_entries),
        static_cast<unsigned long long>(spill_bytes), warm_s, cold_s,
        static_cast<unsigned long long>(warm_hits),
        static_cast<unsigned long long>(cold_hits),
        static_cast<unsigned long long>(warm_sum),
        warm_counts == cold_counts ? "true" : "false");
    std::fputs(line, stdout);
    if (jf != nullptr) std::fputs(line, jf);
    std::fprintf(stderr,
                 "[exp13] restart first batch: restored=%.3fs (%llu hits) "
                 "cold=%.3fs (%llu hits) | %s\n",
                 warm_s, static_cast<unsigned long long>(warm_hits), cold_s,
                 static_cast<unsigned long long>(cold_hits),
                 all_ok ? "OK" : "FAIL");
  }

  if (jf != nullptr) std::fclose(jf);
  cleanup();
  return all_ok ? 0 : 3;
}
