// Exp-8: thread-count sweep. Runs a fixed synthetic multi-cluster workload
// (64 near-duplicate query groups by default — the embarrassingly parallel
// structure Algorithm 2 exposes) across threads in {1, 2, 4, 8} and emits
// one machine-readable JSON object per (algorithm, threads) config so the
// BENCH_*.json trajectory can be tracked across PRs.
//
//   ./build/exp8_threads --clusters=64 --clones=4 --json=BENCH_threads.json
//
// --skew replaces the balanced workload with the adversarial shape for
// cluster-level parallelism: half the queries are clones of ONE pair (one
// giant cluster, placed last so the streaming merge can drain the tiny
// clusters while it runs) and half are unrelated singletons. Cluster-only
// scheduling serializes the giant cluster on one worker; the intra-cluster
// sub-tasks (docs/PARALLELISM.md) are what keep the speedup, and the JSON
// adds the streaming-merge fields (merge_peak_buffered_bytes vs
// merge_total_buffered_bytes = the PR-1 gather baseline) to track it.
//
//   ./build/exp8_threads --skew --clusters=64 --clones=4 --json=BENCH_skew.json

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "workload/query_gen.h"

using namespace hcpath;
using namespace hcpath::bench;

namespace {

StatusOr<std::vector<PathQuery>> MakeClusteredWorkload(
    const Graph& g, size_t clusters, size_t clones, int k, Rng& rng) {
  QueryGenOptions qopt;
  qopt.k_min = k;
  qopt.k_max = k;
  qopt.min_distance = 2;  // skip trivial one-hop queries
  auto base = GenerateRandomQueries(g, clusters, qopt, rng);
  if (!base.ok()) return base.status();
  // Interleave the clones so clustering has to regroup them (as a real
  // multi-user trace would arrive).
  std::vector<PathQuery> queries;
  for (size_t c = 0; c < clones; ++c) {
    for (const PathQuery& q : *base) queries.push_back(q);
  }
  return queries;
}

/// --skew workload: one giant near-duplicate group holding half the batch,
/// preceded by unrelated singleton queries (so the giant cluster is the
/// *last* cluster and tiny buffers drain while it runs).
StatusOr<std::vector<PathQuery>> MakeSkewedWorkload(const Graph& g,
                                                    size_t total, int k,
                                                    Rng& rng) {
  QueryGenOptions qopt;
  qopt.k_min = k;
  qopt.k_max = k;
  qopt.min_distance = 2;
  const size_t giant = total / 2;
  auto singles = GenerateRandomQueries(g, total - giant, qopt, rng);
  if (!singles.ok()) return singles.status();
  auto base = GenerateRandomQueries(g, 1, qopt, rng);
  if (!base.ok()) return base.status();
  std::vector<PathQuery> queries = *singles;
  for (size_t c = 0; c < giant; ++c) queries.push_back((*base)[0]);
  return queries;
}

void EmitJson(std::FILE* out, const std::string& algo, size_t clusters,
              size_t clones, bool skew, int threads, const RunOutcome& o,
              double baseline_seconds) {
  const double speedup =
      o.seconds > 0 && baseline_seconds > 0 ? baseline_seconds / o.seconds : 0;
  std::fprintf(
      out,
      "{\"bench\":\"exp8_threads\",\"algo\":\"%s\",\"clusters\":%zu,"
      "\"clones\":%zu,\"skew\":%s,\"threads\":%d,\"seconds\":%.6f,"
      "\"build_index_seconds\":%.6f,\"cluster_seconds\":%.6f,"
      "\"detect_seconds\":%.6f,\"enumerate_seconds\":%.6f,"
      "\"paths\":%llu,\"num_clusters\":%llu,"
      "\"merge_peak_buffered_bytes\":%llu,"
      "\"merge_total_buffered_bytes\":%llu,"
      "\"merge_streamed_items\":%llu,\"over_time\":%s,"
      "\"speedup_vs_1\":%.3f}\n",
      algo.c_str(), clusters, clones, skew ? "true" : "false", threads,
      o.seconds, o.stats.build_index_seconds, o.stats.cluster_seconds,
      o.stats.detect_seconds, o.stats.enumerate_seconds,
      static_cast<unsigned long long>(o.total_paths),
      static_cast<unsigned long long>(o.stats.num_clusters),
      static_cast<unsigned long long>(o.stats.merge_peak_buffered_bytes),
      static_cast<unsigned long long>(o.stats.merge_total_buffered_bytes),
      static_cast<unsigned long long>(o.stats.merge_streamed_items),
      o.over_time ? "true" : "false", speedup);
}

}  // namespace

int main(int argc, char** argv) {
  CommonFlags cf;
  int64_t* clusters = cf.flags.AddInt64("clusters", 64, "query groups");
  int64_t* clones = cf.flags.AddInt64("clones", 4, "queries per group");
  int64_t* vertices = cf.flags.AddInt64("vertices", 20000, "graph size");
  int64_t* k = cf.flags.AddInt64("k", 4, "hop constraint");
  bool* skew = cf.flags.AddBool(
      "skew", false,
      "one giant cluster (half the batch) + unrelated singletons");
  std::string* json = cf.flags.AddString("json", "", "also append JSON here");
  ParseOrDie(cf, argc, argv);

  // Small-world rather than scale-free: hub-dominated graphs make every
  // query's Γ set overlap, which collapses the groups into a handful of
  // clusters and understates cluster parallelism.
  Rng grng(static_cast<uint64_t>(*cf.seed));
  auto g = GenerateSmallWorld(static_cast<VertexId>(*vertices), 6, 0.05,
                              grng);
  if (!g.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 g.status().ToString().c_str());
    return 1;
  }
  Rng qrng(static_cast<uint64_t>(*cf.seed) + 1);
  auto workload =
      *skew ? MakeSkewedWorkload(
                  *g,
                  static_cast<size_t>(*clusters) * static_cast<size_t>(*clones),
                  static_cast<int>(*k), qrng)
            : MakeClusteredWorkload(*g, static_cast<size_t>(*clusters),
                                    static_cast<size_t>(*clones),
                                    static_cast<int>(*k), qrng);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  const std::vector<PathQuery>& queries = *workload;
  if (*skew) {
    std::fprintf(stderr,
                 "[exp8] |V|=%lld |Q|=%zu (skew: 1 giant cluster of %zu + "
                 "%zu singletons)\n",
                 static_cast<long long>(*vertices), queries.size(),
                 queries.size() / 2, queries.size() - queries.size() / 2);
  } else {
    std::fprintf(stderr, "[exp8] |V|=%lld |Q|=%zu (%lld groups x %lld)\n",
                 static_cast<long long>(*vertices), queries.size(),
                 static_cast<long long>(*clusters),
                 static_cast<long long>(*clones));
  }

  std::FILE* jf = nullptr;
  if (!json->empty()) {
    jf = std::fopen(json->c_str(), "a");
    if (jf == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json->c_str());
      return 2;
    }
  }

  std::vector<int> sweep = {1, 2, 4, 8};
  if (*cf.quick) sweep = {1, 4};

  const struct {
    Algorithm algo;
    const char* name;
  } kAlgos[] = {{Algorithm::kBatchEnumPlus, "batch+"},
                {Algorithm::kBasicEnum, "basic"}};
  for (const auto& a : kAlgos) {
    double baseline = 0;
    for (int threads : sweep) {
      BatchOptions opt = MakeBatchOptions(cf);
      opt.num_threads = threads;
      opt.max_paths_per_query = 5'000'000;
      RunOutcome o =
          TimeAlgorithm(*g, queries, a.algo, opt, *cf.time_budget);
      if (threads == 1) baseline = o.seconds;
      EmitJson(stdout, a.name, static_cast<size_t>(*clusters),
               static_cast<size_t>(*clones), *skew, threads, o, baseline);
      if (jf != nullptr) {
        EmitJson(jf, a.name, static_cast<size_t>(*clusters),
                 static_cast<size_t>(*clones), *skew, threads, o, baseline);
      }
    }
  }
  if (jf != nullptr) std::fclose(jf);
  return 0;
}
