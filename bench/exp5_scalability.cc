// Exp-5 (Fig 11): scalability on the two largest stand-ins (TW, FS) when
// sampling 20%..100% of the vertices (induced subgraphs).

#include <cstdio>

#include "bench_common.h"
#include "graph/sampler.h"
#include "workload/dataset_registry.h"
#include "workload/query_gen.h"

using namespace hcpath;
using namespace hcpath::bench;

int main(int argc, char** argv) {
  CommonFlags cf;
  *cf.datasets = "TW,FS";  // default for this experiment
  ParseOrDie(cf, argc, argv);
  auto csv = OpenCsv(*cf.csv);
  if (csv) {
    csv->Row("dataset", "fraction", "basic_s", "basicplus_s", "batch_s",
             "batchplus_s");
  }

  std::vector<double> fractions = {0.2, 0.4, 0.6, 0.8, 1.0};
  if (*cf.quick) fractions = {0.2, 1.0};

  for (const std::string& name : ResolveDatasets(*cf.datasets)) {
    Graph full = LoadDataset(name, *cf.scale, *cf.seed);
    auto spec = *FindDataset(name);
    std::printf("\nFig 11 (%s): time when varying |V(G)| (|Q|=%lld)\n",
                name.c_str(), static_cast<long long>(*cf.queries));
    std::printf("%5s | %9s %9s %9s %9s\n", "|V|%", "Basic", "Basic+",
                "Batch", "Batch+");

    for (double fraction : fractions) {
      Rng srng(static_cast<uint64_t>(*cf.seed) + 1);
      Graph g = full;
      if (fraction < 1.0) {
        auto sampled = SampleVerticesInduced(full, fraction, srng);
        if (!sampled.ok()) continue;
        g = std::move(sampled->graph);
      }
      Rng qrng(static_cast<uint64_t>(*cf.seed) + 2);
      QueryGenOptions qopt;
      qopt.k_min = spec.bench_k_min;
      qopt.k_max = spec.bench_k_max;
      auto queries = GenerateRandomQueries(g, *cf.queries, qopt, qrng);
      if (!queries.ok()) continue;

      BatchOptions opt = MakeBatchOptions(cf);
      opt.max_paths_per_query = 5'000'000;
      RunOutcome ba = TimeAlgorithm(g, *queries, Algorithm::kBasicEnum, opt,
                                    *cf.time_budget);
      RunOutcome bp = TimeAlgorithm(g, *queries, Algorithm::kBasicEnumPlus,
                                    opt, *cf.time_budget);
      RunOutcome bt = TimeAlgorithm(g, *queries, Algorithm::kBatchEnum, opt,
                                    *cf.time_budget);
      RunOutcome btp = TimeAlgorithm(g, *queries, Algorithm::kBatchEnumPlus,
                                     opt, *cf.time_budget);
      std::printf("%4.0f%% | %9s %9s %9s %9s\n", fraction * 100,
                  FormatTime(ba).c_str(), FormatTime(bp).c_str(),
                  FormatTime(bt).c_str(), FormatTime(btp).c_str());
      if (csv) {
        csv->Row(name, fraction, ba.seconds, bp.seconds, bt.seconds,
                 btp.seconds);
      }
    }
  }
  if (csv) csv->Close();
  return 0;
}
