// Exp-10: multi-tenant overload replay. A Zipf-skewed tenant mix — the
// noisiest tenant carries the LOWEST weight (the classic noisy-neighbor
// shape) — floods one PathEngine through a deliberately small admission
// queue, once per backpressure policy:
//
//   * block:     the open loop self-paces on admission backpressure;
//                nothing is lost (every query completes, or is shed with
//                the documented Status if overload outlasts the patience)
//                and the queue never exceeds its budgets.
//   * fail_fast: excess submits get ResourceExhausted immediately and
//                sustained overload sheds the lowest-weight waiting
//                queries; high-weight tenants keep completing.
//
// Besides the JSON metrics, the driver *verifies* the PR's acceptance
// criteria live and exits non-zero on violation (the CI bench-smoke runs
// `exp10_overload --quick`):
//   1. queue memory stays within the configured entry/byte budgets,
//   2. every non-OK outcome carries one of the two documented admission
//      Statuses ("admission queue full ...", "query shed by admission
//      control ..."),
//   3. a sample of admitted queries' path counts is identical to fresh
//      unloaded one-shot runs (the full byte-identity is asserted by
//      admission_sim_test and the EngineMultiTenantParity fuzz suite).
//
//   ./build/exp10_overload --stream=3000 --tenants=4 --queue_entries=128 \
//       --json=BENCH_overload.json

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/batch_enum.h"
#include "graph/generators.h"
#include "service/path_engine.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/query_gen.h"

using namespace hcpath;
using namespace hcpath::bench;

namespace {

/// Zipf-ish sampler over ranks [0, n): P(r) ~ 1 / (r + 1)^alpha.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double alpha) : cdf_(n) {
    double acc = 0;
    for (size_t r = 0; r < n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
      cdf_[r] = acc;
    }
    for (double& c : cdf_) c /= acc;
  }
  size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

double Percentile(const std::vector<double>& sorted_values, double p) {
  if (sorted_values.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_values.size() - 1));
  return sorted_values[idx];
}

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

struct OverloadOutcome {
  double seconds = 0;
  uint64_t completed = 0, shed = 0, fast_failed = 0, other_failures = 0;
  uint64_t total_paths = 0;
  double p50 = 0, p95 = 0;
  bool within_budget = false;
  bool statuses_documented = true;
  bool parity_ok = true;
  size_t parity_checked = 0;
  PathEngineStats stats;
};

}  // namespace

int main(int argc, char** argv) {
  CommonFlags cf;
  int64_t* stream_size = cf.flags.AddInt64("stream", 3000, "queries in the replayed stream");
  int64_t* endpoints = cf.flags.AddInt64("endpoints", 64, "distinct query templates in the pool");
  int64_t* tenants = cf.flags.AddInt64("tenants", 4, "number of tenants (weights 2^i, t0 highest)");
  double* tenant_zipf = cf.flags.AddDouble("tenant_zipf", 1.0, "tenant traffic skew; rank 0 = lowest-weight tenant");
  int64_t* vertices = cf.flags.AddInt64("vertices", 8000, "graph size");
  int64_t* k = cf.flags.AddInt64("k", 4, "hop constraint");
  int64_t* window = cf.flags.AddInt64("window", 16, "micro-batch admission window");
  double* max_wait_ms = cf.flags.AddDouble("max_wait_ms", 0.2, "admission max-wait cut (ms)");
  int64_t* queue_entries = cf.flags.AddInt64("queue_entries", 128, "admission queue entry budget");
  int64_t* queue_bytes = cf.flags.AddInt64("queue_bytes", 1 << 20, "admission queue byte budget");
  double* patience_ms = cf.flags.AddDouble("patience_ms", 2.0, "overload patience before shedding (ms)");
  int64_t* verify = cf.flags.AddInt64("verify", 32, "admitted queries to re-run one-shot for parity");
  std::string* json = cf.flags.AddString("json", "", "also append JSON here");
  ParseOrDie(cf, argc, argv);

  size_t n_stream = static_cast<size_t>(*stream_size);
  VertexId n_vertices = static_cast<VertexId>(*vertices);
  size_t n_verify = static_cast<size_t>(*verify);
  if (*cf.quick) {
    n_stream = std::min<size_t>(n_stream, 400);
    n_vertices = std::min<VertexId>(n_vertices, 2000);
    n_verify = std::min<size_t>(n_verify, 16);
  }
  const size_t n_tenants = static_cast<size_t>(*tenants);

  Rng grng(static_cast<uint64_t>(*cf.seed));
  auto g = GenerateSmallWorld(n_vertices, 6, 0.05, grng);
  if (!g.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 g.status().ToString().c_str());
    return 1;
  }

  // Endpoint pool + Zipf tenant mix. Traffic rank r maps to tenant
  // t_{n-1-r}: the busiest rank lands on the LOWEST-weight tenant.
  Rng qrng(static_cast<uint64_t>(*cf.seed) + 1);
  QueryGenOptions qopt;
  qopt.k_min = static_cast<int>(*k);
  qopt.k_max = static_cast<int>(*k);
  qopt.min_distance = 2;
  auto pool = GenerateRandomQueries(*g, static_cast<size_t>(*endpoints),
                                    qopt, qrng);
  if (!pool.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 pool.status().ToString().c_str());
    return 1;
  }
  ZipfSampler endpoint_sampler(pool->size(), 1.1);
  ZipfSampler tenant_sampler(n_tenants, *tenant_zipf);
  struct StreamEntry {
    PathQuery query;
    std::string tenant;
  };
  std::vector<StreamEntry> stream;
  stream.reserve(n_stream);
  for (size_t i = 0; i < n_stream; ++i) {
    const size_t rank = tenant_sampler.Sample(qrng);
    stream.push_back({(*pool)[endpoint_sampler.Sample(qrng)],
                      "t" + std::to_string(n_tenants - 1 - rank)});
  }
  std::fprintf(stderr,
               "[exp10] |V|=%lld stream=%zu tenants=%zu queue=%lld "
               "entries/%lld bytes threads=%lld\n",
               static_cast<long long>(n_vertices), stream.size(), n_tenants,
               static_cast<long long>(*queue_entries),
               static_cast<long long>(*queue_bytes),
               static_cast<long long>(*cf.threads));

  std::FILE* jf = nullptr;
  if (!json->empty()) {
    jf = std::fopen(json->c_str(), "a");
    if (jf == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json->c_str());
      return 2;
    }
  }

  bool all_ok = true;
  struct Config {
    AdmissionBackpressure policy;
    double patience_seconds;
  };
  // The zero-patience fail-fast config sheds the moment the queue fills,
  // so the JSON always demonstrates the lowest-weight-first shed
  // distribution; with the configured patience, shedding only fires when
  // batches drain slower than the patience window.
  const Config configs[] = {
      {AdmissionBackpressure::kBlock, *patience_ms / 1e3},
      {AdmissionBackpressure::kFailFast, *patience_ms / 1e3},
      {AdmissionBackpressure::kFailFast, 0.0},
  };
  for (const Config& config : configs) {
    const AdmissionBackpressure policy = config.policy;
    const bool fail_fast = policy == AdmissionBackpressure::kFailFast;
    PathEngineOptions opt;
    opt.batch = MakeBatchOptions(cf);
    opt.batch.max_paths_per_query = 5'000'000;
    opt.max_batch_size = static_cast<size_t>(*window);
    opt.max_wait_seconds = *max_wait_ms / 1e3;
    opt.collect_paths = false;  // serving-style: count, don't materialize
    opt.admission.max_queued_queries = static_cast<size_t>(*queue_entries);
    opt.admission.max_queued_bytes = static_cast<uint64_t>(*queue_bytes);
    opt.admission.backpressure = policy;
    opt.admission.shed_high_watermark = 1.0;
    opt.admission.shed_low_watermark = 0.5;
    opt.admission.shed_patience_seconds = config.patience_seconds;
    for (size_t t = 0; t < n_tenants; ++t) {
      // t0 = 2^(n-1) down to t_{n-1} = 1.
      opt.admission.tenant_weights["t" + std::to_string(t)] =
          static_cast<double>(1ull << (n_tenants - 1 - t));
    }

    OverloadOutcome out;
    {
      PathEngine engine(*g, opt);
      if (!engine.status().ok()) {
        std::fprintf(stderr, "engine construction failed: %s\n",
                     engine.status().ToString().c_str());
        return 1;
      }
      std::vector<std::future<QueryResult>> futures;
      futures.reserve(stream.size());
      WallTimer timer;
      for (const StreamEntry& e : stream) {
        futures.push_back(engine.Submit(e.tenant, e.query));
      }
      engine.Flush();
      std::vector<double> latencies;
      std::vector<std::pair<size_t, uint64_t>> admitted;  // index, count
      for (size_t i = 0; i < futures.size(); ++i) {
        QueryResult r = futures[i].get();
        if (r.status.ok()) {
          ++out.completed;
          out.total_paths += r.path_count;
          latencies.push_back(r.wait_seconds + r.batch_seconds);
          admitted.push_back({i, r.path_count});
        } else if (HasPrefix(r.status.message(),
                             "query shed by admission control")) {
          ++out.shed;
        } else if (HasPrefix(r.status.message(), "admission queue full")) {
          ++out.fast_failed;
        } else {
          ++out.other_failures;
          out.statuses_documented = false;
          std::fprintf(stderr, "[exp10] UNDOCUMENTED status: %s\n",
                       r.status.ToString().c_str());
        }
      }
      out.seconds = timer.ElapsedSeconds();
      std::sort(latencies.begin(), latencies.end());
      out.p50 = Percentile(latencies, 0.50);
      out.p95 = Percentile(latencies, 0.95);
      out.stats = engine.GetStats();
      out.within_budget =
          out.stats.peak_queued_queries <= opt.admission.max_queued_queries &&
          out.stats.peak_queued_bytes <= opt.admission.max_queued_bytes;

      // Parity sample: an evenly spaced sample of admitted queries re-run
      // as fresh unloaded one-shot calls must report identical counts.
      const size_t step =
          admitted.empty() ? 1 : std::max<size_t>(1, admitted.size() / std::max<size_t>(1, n_verify));
      for (size_t j = 0; j < admitted.size() && out.parity_checked < n_verify;
           j += step) {
        const StreamEntry& e = stream[admitted[j].first];
        CountingSink counter(1);
        Status st = RunBatchEnum(*g, {e.query}, opt.batch,
                                 /*optimized_order=*/true, &counter, nullptr);
        if (!st.ok() || counter.Total() != admitted[j].second) {
          out.parity_ok = false;
          std::fprintf(stderr,
                       "[exp10] PARITY VIOLATION %s: engine=%llu oneshot=%llu"
                       " (%s)\n",
                       e.query.ToString().c_str(),
                       static_cast<unsigned long long>(admitted[j].second),
                       static_cast<unsigned long long>(counter.Total()),
                       st.ToString().c_str());
        }
        ++out.parity_checked;
      }
    }

    const double qps = out.seconds > 0
                           ? static_cast<double>(stream.size()) / out.seconds
                           : 0;
    std::string tenant_json;
    for (size_t t = 0; t < n_tenants; ++t) {
      const std::string id = "t" + std::to_string(t);
      TenantAdmissionStats ts;
      auto it = out.stats.tenants.find(id);
      if (it != out.stats.tenants.end()) ts = it->second;
      char buf[256];
      std::snprintf(
          buf, sizeof(buf),
          "%s\"%s\":{\"weight\":%.0f,\"submitted\":%llu,\"admitted\":%llu,"
          "\"completed\":%llu,\"shed\":%llu,\"fast_failed\":%llu,"
          "\"blocked\":%llu}",
          t == 0 ? "" : ",", id.c_str(),
          opt.admission.tenant_weights[id],
          static_cast<unsigned long long>(ts.submitted),
          static_cast<unsigned long long>(ts.admitted),
          static_cast<unsigned long long>(ts.completed),
          static_cast<unsigned long long>(ts.shed),
          static_cast<unsigned long long>(ts.fast_failed),
          static_cast<unsigned long long>(ts.blocked));
      tenant_json += buf;
    }
    char line[1536];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"exp10_overload\",\"policy\":\"%s\",\"stream\":%zu,"
        "\"tenants\":%zu,\"window\":%lld,\"queue_entries\":%lld,"
        "\"queue_bytes\":%lld,\"patience_ms\":%.3f,\"threads\":%d,"
        "\"seconds\":%.6f,\"qps\":%.1f,\"paths\":%llu,"
        "\"completed\":%llu,\"shed\":%llu,\"fast_failed\":%llu,"
        "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"batches\":%llu,"
        "\"shed_rounds\":%llu,\"backpressure_blocks\":%llu,"
        "\"peak_queued_queries\":%llu,\"peak_queued_bytes\":%llu,"
        "\"within_budget\":%s,\"statuses_documented\":%s,"
        "\"parity_checked\":%zu,\"parity_ok\":%s,"
        "\"per_tenant\":{%s}}\n",
        fail_fast ? "fail_fast" : "block", stream.size(), n_tenants,
        static_cast<long long>(*window),
        static_cast<long long>(*queue_entries),
        static_cast<long long>(*queue_bytes), config.patience_seconds * 1e3,
        opt.batch.num_threads, out.seconds, qps,
        static_cast<unsigned long long>(out.total_paths),
        static_cast<unsigned long long>(out.completed),
        static_cast<unsigned long long>(out.shed),
        static_cast<unsigned long long>(out.fast_failed), out.p50 * 1e3,
        out.p95 * 1e3,
        static_cast<unsigned long long>(out.stats.batches_run),
        static_cast<unsigned long long>(out.stats.shed_rounds),
        static_cast<unsigned long long>(out.stats.backpressure_blocks),
        static_cast<unsigned long long>(out.stats.peak_queued_queries),
        static_cast<unsigned long long>(out.stats.peak_queued_bytes),
        out.within_budget ? "true" : "false",
        out.statuses_documented ? "true" : "false", out.parity_checked,
        out.parity_ok ? "true" : "false", tenant_json.c_str());
    std::fputs(line, stdout);
    if (jf != nullptr) std::fputs(line, jf);

    if (!out.within_budget || !out.statuses_documented || !out.parity_ok) {
      all_ok = false;
    }
    // Under blocking backpressure nothing may be lost or shed-on-arrival:
    // submits self-pace, so completed must equal the stream.
    if (!fail_fast &&
        out.completed + out.shed != stream.size()) {
      std::fprintf(stderr, "[exp10] LOST QUERIES under block policy\n");
      all_ok = false;
    }
    if (fail_fast && out.completed + out.shed + out.fast_failed !=
                         stream.size()) {
      std::fprintf(stderr, "[exp10] LOST QUERIES under fail_fast policy\n");
      all_ok = false;
    }
  }
  if (jf != nullptr) std::fclose(jf);
  if (!all_ok) {
    std::fprintf(stderr, "[exp10] VERIFICATION FAILED\n");
    return 3;
  }
  return 0;
}
