// Exp-11: dynamic-graph serving replay (docs/DYNAMIC.md). A Zipf-skewed
// query stream over a HOT endpoint pool runs through a store-backed
// PathEngine while edge-update batches land between micro-batches, once
// per invalidation policy:
//
//   * immutable:       no updates — the endpoint-cache hit-rate ceiling.
//   * cone_disjoint:   updates confined to a component the hot cones never
//                      reach; cone-precise invalidation revalidates every
//                      entry, so the hit rate must stay within 5% of the
//                      immutable baseline.
//   * blanket_flush:   same update schedule, but the cache is fully
//                      flushed per batch (the pre-PR behavior, emulated
//                      via InvalidateDistanceCache) — demonstrably loses
//                      the retention the cone test preserves.
//   * hot_overlap:     updates toggle edges inside the hot component;
//                      reports invalidation precision
//                      (revalidated / (revalidated + invalidated)) with
//                      correctness still pinned by the parity check.
//   * hot_no_repair:   hot_overlap with incremental cache repair disabled
//                      (cache_repair_max_keys = 0) — the efficacy
//                      baseline: the hit-rate gap to hot_overlap and its
//                      invalidated_misses are what repair buys.
//
// A second phase sweeps ApplyUpdates latency over --sweep_batch_sizes at
// compaction thresholds {0 (always rebuild), --compaction_threshold}
// (one "exp11_dynamic_sweep" JSON line each), self-verifying that the
// final store content equals a from-scratch rebuild of a shadow edge set.
//
// Besides the JSON metrics the driver *verifies* the PR's acceptance
// criteria live and exits non-zero on violation (CI bench-smoke runs
// `exp11_dynamic --quick`, which includes one small sweep):
//   1. parity: a sample of completed queries re-run as fresh one-shot
//      calls on exactly the snapshot stamped into their result must
//      report identical path counts (full byte-identity is asserted by
//      the update-interleaved differential fuzz suite),
//   2. retention: cone_disjoint hit rate >= 0.95 x immutable baseline,
//      with zero entries invalidated,
//   3. blanket_flush's hit rate is strictly below cone_disjoint's (the
//      precise test is actually buying retention),
//   4. repair: hot_overlap's hit rate is at least hot_no_repair's
//      whenever the updates invalidated anything,
//   5. sweep parity: the post-sweep store equals the shadow rebuild
//      (latency numbers are reported, never gated — perf acceptance is
//      judged offline from BENCH_PR8.json).
//
//   ./build/exp11_dynamic --hot_vertices=2000 --stream=2400 \
//       --update_batches=8 --json=BENCH_dynamic.json

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/batch_enum.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_store.h"
#include "service/path_engine.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/query_gen.h"

using namespace hcpath;
using namespace hcpath::bench;

namespace {

/// Zipf-ish sampler over ranks [0, n): P(r) ~ 1 / (r + 1)^alpha.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double alpha) : cdf_(n) {
    double acc = 0;
    for (size_t r = 0; r < n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
      cdf_[r] = acc;
    }
    for (double& c : cdf_) c /= acc;
  }
  size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

enum class Policy {
  kImmutable,
  kConeDisjoint,
  kBlanketFlush,
  kHotOverlap,
  kHotOverlapNoRepair,
};

const char* PolicyName(Policy p) {
  switch (p) {
    case Policy::kImmutable: return "immutable";
    case Policy::kConeDisjoint: return "cone_disjoint";
    case Policy::kBlanketFlush: return "blanket_flush";
    case Policy::kHotOverlap: return "hot_overlap";
    case Policy::kHotOverlapNoRepair: return "hot_no_repair";
  }
  return "?";
}

struct PolicyOutcome {
  double seconds = 0;
  uint64_t completed = 0;
  uint64_t total_paths = 0;
  uint64_t epochs = 0;
  /// Hit rate of the measured (post-warmup) phase.
  double hit_rate = 0;
  uint64_t invalidated = 0, revalidated = 0;
  double precision = 1.0;  ///< revalidated / (revalidated + invalidated)
  /// Miss-attribution split and repair outcomes of the measured phase.
  uint64_t invalidated_misses = 0;  ///< misses on invalidated-then-unrepaired keys
  uint64_t repaired = 0;            ///< cache entries rebuilt by repair
  uint64_t repair_skipped = 0;      ///< dead keys past the repair budget
  uint64_t overlay_extends = 0;     ///< update batches on the O(touched) path
  double update_seconds = 0;        ///< total ApplyUpdates wall time
  bool parity_ok = true;
  size_t parity_checked = 0;
};

/// Parses "1,16,256" into sizes (empty string = empty list).
std::vector<size_t> ParseSizeList(const std::string& spec) {
  std::vector<size_t> out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const long long v = std::atoll(spec.substr(pos, end - pos).c_str());
    if (v > 0) out.push_back(static_cast<size_t>(v));
    pos = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CommonFlags cf;
  int64_t* hot_vertices = cf.flags.AddInt64(
      "hot_vertices", 2000, "size of the queried (hot) component");
  int64_t* cold_vertices = cf.flags.AddInt64(
      "cold_vertices", 2000, "size of the updated (cold) component");
  int64_t* endpoints = cf.flags.AddInt64(
      "endpoints", 48, "distinct query templates in the hot pool");
  int64_t* stream_size =
      cf.flags.AddInt64("stream", 2400, "queries in the measured stream");
  int64_t* k = cf.flags.AddInt64("k", 4, "hop constraint");
  int64_t* update_batches = cf.flags.AddInt64(
      "update_batches", 8, "edge-update batches interleaved with the stream");
  int64_t* updates_per_batch =
      cf.flags.AddInt64("updates_per_batch", 6, "edge toggles per batch");
  int64_t* verify = cf.flags.AddInt64(
      "verify", 32, "completed queries to re-run one-shot for parity");
  double* compaction_threshold = cf.flags.AddDouble(
      "compaction_threshold", 0.25,
      "GraphStore overlay compaction threshold (0 = always rebuild)");
  std::string* sweep_batch_sizes = cf.flags.AddString(
      "sweep_batch_sizes", "1,16,256",
      "update-batch sizes for the ApplyUpdates latency sweep ('' = skip)");
  int64_t* sweep_batches = cf.flags.AddInt64(
      "sweep_batches", 6, "update batches per sweep configuration");
  std::string* json = cf.flags.AddString("json", "", "also append JSON here");
  ParseOrDie(cf, argc, argv);

  VertexId n_hot = static_cast<VertexId>(*hot_vertices);
  VertexId n_cold = static_cast<VertexId>(*cold_vertices);
  size_t n_stream = static_cast<size_t>(*stream_size);
  size_t n_verify = static_cast<size_t>(*verify);
  if (*cf.quick) {
    n_hot = std::min<VertexId>(n_hot, 800);
    n_cold = std::min<VertexId>(n_cold, 800);
    n_stream = std::min<size_t>(n_stream, 600);
    n_verify = std::min<size_t>(n_verify, 16);
  }
  const size_t n_updates = static_cast<size_t>(*update_batches);

  // Seed graph: hot component on [0, n_hot), cold component on
  // [n_hot, n_hot + n_cold), no edges between them — so updates inside the
  // cold component are provably outside every hot entry's BFS cone.
  Rng grng(static_cast<uint64_t>(*cf.seed));
  auto hot_g = GenerateSmallWorld(n_hot, 6, 0.05, grng);
  auto cold_g = GenerateSmallWorld(n_cold, 6, 0.05, grng);
  if (!hot_g.ok() || !cold_g.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  GraphBuilder builder(n_hot + n_cold);
  for (const auto& [u, v] : hot_g->Edges()) builder.AddEdge(u, v);
  for (const auto& [u, v] : cold_g->Edges()) {
    builder.AddEdge(u + n_hot, v + n_hot);
  }
  auto seed_graph = builder.Build();
  if (!seed_graph.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 seed_graph.status().ToString().c_str());
    return 1;
  }

  // Zipf-hot endpoint pool, drawn from the hot component only.
  Rng qrng(static_cast<uint64_t>(*cf.seed) + 1);
  QueryGenOptions qopt;
  qopt.k_min = static_cast<int>(*k);
  qopt.k_max = static_cast<int>(*k);
  qopt.min_distance = 2;
  auto pool = GenerateRandomQueries(*hot_g, static_cast<size_t>(*endpoints),
                                    qopt, qrng);
  if (!pool.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 pool.status().ToString().c_str());
    return 1;
  }
  ZipfSampler endpoint_sampler(pool->size(), 1.1);
  std::vector<PathQuery> stream;
  stream.reserve(n_stream);
  for (size_t i = 0; i < n_stream; ++i) {
    stream.push_back((*pool)[endpoint_sampler.Sample(qrng)]);
  }
  std::fprintf(stderr,
               "[exp11] |V|=%lld (+%lld cold) stream=%zu updates=%zux%lld "
               "threads=%lld\n",
               static_cast<long long>(n_hot), static_cast<long long>(n_cold),
               stream.size(), n_updates,
               static_cast<long long>(*updates_per_batch),
               static_cast<long long>(*cf.threads));

  std::FILE* jf = nullptr;
  if (!json->empty()) {
    jf = std::fopen(json->c_str(), "a");
    if (jf == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json->c_str());
      return 2;
    }
  }

  auto run_policy = [&](Policy policy) -> PolicyOutcome {
    PolicyOutcome out;
    GraphStore store(*seed_graph, GraphStoreOptions{.compaction_threshold =
                                                        *compaction_threshold});
    PathEngineOptions opt;
    opt.batch = MakeBatchOptions(cf);
    opt.batch.max_paths_per_query = 5'000'000;
    opt.max_wait_seconds = 0;  // explicit Flush boundaries only
    opt.max_batch_size = 1 << 20;
    opt.collect_paths = false;  // serving-style: count, don't materialize
    if (policy == Policy::kHotOverlapNoRepair) opt.cache_repair_max_keys = 0;
    PathEngine engine(&store, opt);
    if (!engine.status().ok()) {
      std::fprintf(stderr, "engine construction failed: %s\n",
                   engine.status().ToString().c_str());
      std::exit(1);
    }

    std::map<uint64_t, Graph> at_epoch;
    at_epoch.emplace(0, store.Current()->graph);

    // Warmup pass fills the cache; it is not measured.
    {
      std::vector<std::future<QueryResult>> warm;
      warm.reserve(stream.size());
      for (const PathQuery& q : stream) warm.push_back(engine.Submit(q));
      engine.Flush();
      engine.Drain();
      for (auto& f : warm) {
        if (!f.get().status.ok()) {
          std::fprintf(stderr, "warmup query failed\n");
          std::exit(1);
        }
      }
    }
    const PathEngineStats warm_stats = engine.GetStats();
    const EndpointDistanceCache* cache = engine.distance_cache();
    const uint64_t inval_before =
        cache != nullptr ? cache->entries_invalidated() : 0;
    const uint64_t reval_before =
        cache != nullptr ? cache->entries_revalidated() : 0;
    const uint64_t inval_miss_before =
        cache != nullptr ? cache->invalidated_misses() : 0;

    // Measured pass: the same Zipf stream cut into one segment per update
    // batch, each segment flushed before the next update lands.
    Rng urng(static_cast<uint64_t>(*cf.seed) + 2);
    const size_t segments =
        policy == Policy::kImmutable ? 1 : std::max<size_t>(n_updates, 1);
    const size_t seg_len = (stream.size() + segments - 1) / segments;
    std::vector<std::pair<PathQuery, std::future<QueryResult>>> results;
    results.reserve(stream.size());
    WallTimer timer;
    for (size_t seg = 0; seg < segments; ++seg) {
      const size_t begin = seg * seg_len;
      const size_t end = std::min(stream.size(), begin + seg_len);
      for (size_t i = begin; i < end; ++i) {
        results.emplace_back(stream[i], engine.Submit(stream[i]));
      }
      engine.Flush();
      engine.Drain();

      if (policy == Policy::kImmutable || seg + 1 == segments) continue;
      // Toggle random edges inside the updated region: the cold component
      // for the disjoint policies, the hot component for the overlap ones.
      const bool hot = policy == Policy::kHotOverlap ||
                       policy == Policy::kHotOverlapNoRepair;
      const VertexId lo = hot ? 0 : n_hot;
      const VertexId extent = hot ? n_hot : n_cold;
      const Graph& current = store.Current()->graph;
      std::vector<EdgeUpdate> batch;
      for (int64_t i = 0; i < *updates_per_batch; ++i) {
        const VertexId u = lo + static_cast<VertexId>(urng.NextBounded(extent));
        const VertexId v = lo + static_cast<VertexId>(urng.NextBounded(extent));
        if (u == v) continue;
        batch.push_back(current.HasEdge(u, v) ? EdgeUpdate::Remove(u, v)
                                              : EdgeUpdate::Add(u, v));
      }
      WallTimer update_timer;
      auto applied = engine.ApplyUpdates(batch);
      out.update_seconds += update_timer.ElapsedSeconds();
      if (!applied.status().ok()) {
        std::fprintf(stderr, "ApplyUpdates failed: %s\n",
                     applied.status().ToString().c_str());
        std::exit(1);
      }
      at_epoch.emplace(applied->snapshot->epoch, applied->snapshot->graph);
      if (policy == Policy::kBlanketFlush) {
        // Emulate the pre-PR behavior: every update batch drops the whole
        // cache instead of the cone-precise invalidation ApplyUpdates did.
        engine.InvalidateDistanceCache();
      }
    }
    engine.Drain();
    out.seconds = timer.ElapsedSeconds();

    const PathEngineStats stats = engine.GetStats();
    const uint64_t hits =
        stats.distance_cache_hits - warm_stats.distance_cache_hits;
    const uint64_t misses =
        stats.distance_cache_misses - warm_stats.distance_cache_misses;
    out.hit_rate = hits + misses > 0
                       ? static_cast<double>(hits) /
                             static_cast<double>(hits + misses)
                       : 0;
    out.epochs = stats.graph_updates;
    out.repaired = stats.cache_entries_repaired;
    out.repair_skipped = stats.cache_repair_skipped;
    out.overlay_extends = store.GetStats().overlay_extends;
    if (cache != nullptr) {
      out.invalidated = cache->entries_invalidated() - inval_before;
      out.revalidated = cache->entries_revalidated() - reval_before;
      out.invalidated_misses =
          cache->invalidated_misses() - inval_miss_before;
      const uint64_t classified = out.invalidated + out.revalidated;
      out.precision = classified > 0 ? static_cast<double>(out.revalidated) /
                                           static_cast<double>(classified)
                                     : 1.0;
    }

    // Parity self-check: an evenly spaced sample of completed queries must
    // report the same count as a fresh one-shot run on exactly the
    // snapshot stamped into the result.
    const size_t step =
        std::max<size_t>(1, results.size() / std::max<size_t>(1, n_verify));
    for (size_t i = 0; i < results.size(); ++i) {
      QueryResult r = results[i].second.get();
      if (!r.status.ok()) {
        std::fprintf(stderr, "[exp11] query failed: %s\n",
                     r.status.ToString().c_str());
        std::exit(1);
      }
      ++out.completed;
      out.total_paths += r.path_count;
      if (i % step != 0 || out.parity_checked >= n_verify) continue;
      auto it = at_epoch.find(r.graph_epoch);
      if (it == at_epoch.end()) {
        out.parity_ok = false;
        continue;
      }
      CountingSink counter(1);
      Status st = RunBatchEnum(it->second, {results[i].first}, opt.batch,
                               /*optimized_order=*/true, &counter, nullptr);
      if (!st.ok() || counter.Total() != r.path_count) {
        out.parity_ok = false;
        std::fprintf(
            stderr,
            "[exp11] PARITY VIOLATION %s epoch=%llu: engine=%llu "
            "oneshot=%llu (%s)\n",
            results[i].first.ToString().c_str(),
            static_cast<unsigned long long>(r.graph_epoch),
            static_cast<unsigned long long>(r.path_count),
            static_cast<unsigned long long>(counter.Total()),
            st.ToString().c_str());
      }
      ++out.parity_checked;
    }
    return out;
  };

  bool all_ok = true;
  std::map<Policy, PolicyOutcome> outcomes;
  for (Policy policy :
       {Policy::kImmutable, Policy::kConeDisjoint, Policy::kBlanketFlush,
        Policy::kHotOverlap, Policy::kHotOverlapNoRepair}) {
    PolicyOutcome out = run_policy(policy);
    outcomes[policy] = out;
    const double qps =
        out.seconds > 0 ? static_cast<double>(out.completed) / out.seconds : 0;
    char line[1024];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"exp11_dynamic\",\"policy\":\"%s\",\"stream\":%zu,"
        "\"update_batches\":%llu,\"threads\":%d,\"seconds\":%.6f,"
        "\"qps\":%.1f,\"paths\":%llu,\"hit_rate\":%.4f,"
        "\"entries_invalidated\":%llu,\"entries_revalidated\":%llu,"
        "\"invalidation_precision\":%.4f,\"invalidated_misses\":%llu,"
        "\"entries_repaired\":%llu,\"repair_skipped\":%llu,"
        "\"overlay_extends\":%llu,\"update_seconds\":%.6f,"
        "\"compaction_threshold\":%.4f,\"parity_checked\":%zu,"
        "\"parity_ok\":%s}\n",
        PolicyName(policy), stream.size(),
        static_cast<unsigned long long>(out.epochs),
        MakeBatchOptions(cf).num_threads, out.seconds, qps,
        static_cast<unsigned long long>(out.total_paths), out.hit_rate,
        static_cast<unsigned long long>(out.invalidated),
        static_cast<unsigned long long>(out.revalidated), out.precision,
        static_cast<unsigned long long>(out.invalidated_misses),
        static_cast<unsigned long long>(out.repaired),
        static_cast<unsigned long long>(out.repair_skipped),
        static_cast<unsigned long long>(out.overlay_extends),
        out.update_seconds, *compaction_threshold, out.parity_checked,
        out.parity_ok ? "true" : "false");
    std::fputs(line, stdout);
    if (jf != nullptr) std::fputs(line, jf);
    if (!out.parity_ok) {
      std::fprintf(stderr, "[exp11] FAIL: %s parity violated\n",
                   PolicyName(policy));
      all_ok = false;
    }
  }

  // Acceptance: cone-precise invalidation retains the immutable hit rate
  // (within 5%) under disjoint updates, with nothing invalidated; the
  // blanket flush demonstrably does not.
  const PolicyOutcome& base = outcomes[Policy::kImmutable];
  const PolicyOutcome& precise = outcomes[Policy::kConeDisjoint];
  const PolicyOutcome& blanket = outcomes[Policy::kBlanketFlush];
  if (precise.hit_rate < 0.95 * base.hit_rate) {
    std::fprintf(stderr,
                 "[exp11] FAIL: cone_disjoint hit rate %.4f below 95%% of "
                 "immutable baseline %.4f\n",
                 precise.hit_rate, base.hit_rate);
    all_ok = false;
  }
  if (precise.invalidated != 0) {
    std::fprintf(stderr,
                 "[exp11] FAIL: disjoint updates invalidated %llu entries "
                 "(expected 0)\n",
                 static_cast<unsigned long long>(precise.invalidated));
    all_ok = false;
  }
  if (blanket.hit_rate >= precise.hit_rate) {
    std::fprintf(stderr,
                 "[exp11] FAIL: blanket flush hit rate %.4f not below "
                 "cone-precise %.4f — the precise test buys nothing here\n",
                 blanket.hit_rate, precise.hit_rate);
    all_ok = false;
  }
  const PolicyOutcome& repaired = outcomes[Policy::kHotOverlap];
  const PolicyOutcome& norepair = outcomes[Policy::kHotOverlapNoRepair];
  if (norepair.invalidated > 0 && repaired.hit_rate < norepair.hit_rate) {
    std::fprintf(stderr,
                 "[exp11] FAIL: hot_overlap hit rate %.4f below the "
                 "repair-disabled baseline %.4f despite %llu invalidations\n",
                 repaired.hit_rate, norepair.hit_rate,
                 static_cast<unsigned long long>(norepair.invalidated));
    all_ok = false;
  }
  std::fprintf(stderr,
               "[exp11] hit rates: immutable=%.4f cone_disjoint=%.4f "
               "blanket_flush=%.4f hot_overlap=%.4f hot_no_repair=%.4f | "
               "precision=%.4f repaired=%llu | %s\n",
               base.hit_rate, precise.hit_rate, blanket.hit_rate,
               repaired.hit_rate, norepair.hit_rate, repaired.precision,
               static_cast<unsigned long long>(repaired.repaired),
               all_ok ? "OK" : "FAIL");

  // ---- Phase 2: ApplyUpdates latency sweep over batch sizes x thresholds.
  // No perf gate — only the parity self-check can fail the run; the
  // latency numbers feed BENCH_PR8.json for offline acceptance.
  std::vector<size_t> sweep_sizes = ParseSizeList(*sweep_batch_sizes);
  size_t n_sweep_batches = static_cast<size_t>(*sweep_batches);
  if (*cf.quick) {
    std::vector<size_t> capped;
    for (size_t b : sweep_sizes) {
      if (b <= 16) capped.push_back(b);
    }
    if (capped.empty() && !sweep_sizes.empty()) capped.push_back(1);
    sweep_sizes.swap(capped);
    n_sweep_batches = std::min<size_t>(n_sweep_batches, 3);
  }
  std::vector<double> thresholds = {0.0};
  if (*compaction_threshold > 0) thresholds.push_back(*compaction_threshold);
  const VertexId n_total = n_hot + n_cold;
  for (const size_t batch_size : sweep_sizes) {
    for (const double threshold : thresholds) {
      GraphStore store(*seed_graph,
                       GraphStoreOptions{.compaction_threshold = threshold});
      // Shadow edge set: the ground truth the final store must equal.
      std::set<std::pair<VertexId, VertexId>> shadow;
      for (const auto& e : seed_graph->Edges()) shadow.insert(e);
      Rng srng(static_cast<uint64_t>(*cf.seed) + 7);
      double total_s = 0, max_s = 0;
      for (size_t b = 0; b < n_sweep_batches; ++b) {
        std::vector<EdgeUpdate> batch;
        std::set<std::pair<VertexId, VertexId>> touched;
        while (batch.size() < batch_size) {
          const VertexId u = static_cast<VertexId>(srng.NextBounded(n_total));
          const VertexId v = static_cast<VertexId>(srng.NextBounded(n_total));
          if (u == v || !touched.insert({u, v}).second) continue;
          if (shadow.erase({u, v}) > 0) {
            batch.push_back(EdgeUpdate::Remove(u, v));
          } else {
            shadow.insert({u, v});
            batch.push_back(EdgeUpdate::Add(u, v));
          }
        }
        WallTimer t;
        auto applied = store.ApplyUpdates(batch);
        const double s = t.ElapsedSeconds();
        total_s += s;
        max_s = std::max(max_s, s);
        if (!applied.ok()) {
          std::fprintf(stderr, "[exp11] sweep ApplyUpdates failed: %s\n",
                       applied.status().ToString().c_str());
          return 3;
        }
      }
      const std::vector<std::pair<VertexId, VertexId>> got =
          store.Current()->graph.Edges();
      const std::vector<std::pair<VertexId, VertexId>> want(shadow.begin(),
                                                            shadow.end());
      const bool sweep_parity = got == want;
      if (!sweep_parity) {
        std::fprintf(stderr,
                     "[exp11] FAIL: sweep parity violated at batch_size=%zu "
                     "threshold=%.4f (store %zu edges, shadow %zu)\n",
                     batch_size, threshold, got.size(), want.size());
        all_ok = false;
      }
      const GraphStoreStats ss = store.GetStats();
      char line[1024];
      std::snprintf(
          line, sizeof(line),
          "{\"bench\":\"exp11_dynamic_sweep\",\"batch_size\":%zu,"
          "\"compaction_threshold\":%.4f,\"batches\":%zu,"
          "\"seed_edges\":%llu,\"mean_update_seconds\":%.6f,"
          "\"max_update_seconds\":%.6f,\"overlay_extends\":%llu,"
          "\"full_rebuilds\":%llu,\"compactions\":%llu,"
          "\"overlay_depth\":%llu,\"overlay_delta_edges\":%llu,"
          "\"parity_ok\":%s}\n",
          batch_size, threshold, n_sweep_batches,
          static_cast<unsigned long long>(seed_graph->NumEdges()),
          n_sweep_batches > 0 ? total_s / static_cast<double>(n_sweep_batches)
                              : 0.0,
          max_s, static_cast<unsigned long long>(ss.overlay_extends),
          static_cast<unsigned long long>(ss.full_rebuilds),
          static_cast<unsigned long long>(ss.compactions),
          static_cast<unsigned long long>(ss.overlay_depth),
          static_cast<unsigned long long>(ss.overlay_delta_edges),
          sweep_parity ? "true" : "false");
      std::fputs(line, stdout);
      if (jf != nullptr) std::fputs(line, jf);
    }
  }
  if (jf != nullptr) std::fclose(jf);
  return all_ok ? 0 : 3;
}
