// Exp-2 (Fig 8): processing time when varying the query set size |Q| from
// 100 to 500 (random query sets, k in the dataset's bench range).

#include <cstdio>

#include "bench_common.h"
#include "workload/dataset_registry.h"
#include "workload/query_gen.h"

using namespace hcpath;
using namespace hcpath::bench;

int main(int argc, char** argv) {
  CommonFlags cf;
  ParseOrDie(cf, argc, argv);
  auto csv = OpenCsv(*cf.csv);
  if (csv) {
    csv->Row("dataset", "query_set_size", "pathenum_s", "basic_s",
             "basicplus_s", "batch_s", "batchplus_s");
  }

  std::vector<size_t> sizes = {100, 200, 300, 400, 500};
  if (*cf.quick) sizes = {50, 100};

  for (const std::string& name : ResolveDatasets(*cf.datasets)) {
    Graph g = LoadDataset(name, *cf.scale, *cf.seed);
    auto spec = *FindDataset(name);
    std::printf("\nFig 8 (%s): time when varying |Q| (k in [%d,%d])\n",
                name.c_str(), spec.bench_k_min, spec.bench_k_max);
    std::printf("%5s | %9s %9s %9s %9s %9s\n", "|Q|", "PathEnum", "Basic",
                "Basic+", "Batch", "Batch+");

    Rng rng(static_cast<uint64_t>(*cf.seed));
    QueryGenOptions qopt;
    qopt.k_min = spec.bench_k_min;
    qopt.k_max = spec.bench_k_max;
    auto pool = GenerateRandomQueries(g, sizes.back(), qopt, rng);
    if (!pool.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   pool.status().ToString().c_str());
      continue;
    }

    for (size_t n : sizes) {
      std::vector<PathQuery> queries(pool->begin(), pool->begin() + n);
      BatchOptions opt = MakeBatchOptions(cf);
      opt.max_paths_per_query = 5'000'000;
      RunOutcome pe = TimeAlgorithm(g, queries, Algorithm::kPathEnum, opt,
                                    *cf.time_budget);
      RunOutcome ba = TimeAlgorithm(g, queries, Algorithm::kBasicEnum, opt,
                                    *cf.time_budget);
      RunOutcome bp = TimeAlgorithm(g, queries, Algorithm::kBasicEnumPlus,
                                    opt, *cf.time_budget);
      RunOutcome bt = TimeAlgorithm(g, queries, Algorithm::kBatchEnum, opt,
                                    *cf.time_budget);
      RunOutcome btp = TimeAlgorithm(g, queries, Algorithm::kBatchEnumPlus,
                                     opt, *cf.time_budget);
      std::printf("%5zu | %9s %9s %9s %9s %9s\n", n,
                  FormatTime(pe).c_str(), FormatTime(ba).c_str(),
                  FormatTime(bp).c_str(), FormatTime(bt).c_str(),
                  FormatTime(btp).c_str());
      if (csv) {
        csv->Row(name, n, pe.seconds, ba.seconds, bp.seconds, bt.seconds,
                 btp.seconds);
      }
    }
  }
  if (csv) csv->Close();
  return 0;
}
