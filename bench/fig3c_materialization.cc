// Fig 3(c): the motivating observation — retrieving materialized HC-s-t
// paths and scanning them once is orders of magnitude faster than
// re-enumerating them with BasicEnum+.

#include <cstdio>

#include "bench_common.h"
#include "core/path.h"
#include "util/timer.h"
#include "workload/dataset_registry.h"
#include "workload/query_gen.h"

using namespace hcpath;
using namespace hcpath::bench;

int main(int argc, char** argv) {
  CommonFlags cf;
  ParseOrDie(cf, argc, argv);
  auto csv = OpenCsv(*cf.csv);
  if (csv) csv->Row("dataset", "enumerate_s", "scan_s", "ratio", "paths");

  std::printf("Fig 3(c): per-batch enumeration vs materialized scan "
              "(|Q|=%lld)\n", static_cast<long long>(*cf.queries));
  std::printf("%-4s %14s %14s %10s %14s\n", "ds", "BasicEnum+ (s)",
              "Materialize(s)", "ratio", "paths");

  for (const std::string& name : ResolveDatasets(*cf.datasets)) {
    Graph g = LoadDataset(name, *cf.scale, *cf.seed);
    auto spec = *FindDataset(name);
    Rng rng(static_cast<uint64_t>(*cf.seed));
    QueryGenOptions qopt;
    qopt.k_min = spec.bench_k_min;
    qopt.k_max = spec.bench_k_max;
    auto queries = GenerateRandomQueries(g, *cf.queries, qopt, rng);
    if (!queries.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   queries.status().ToString().c_str());
      continue;
    }

    // Enumerate and materialize all results once.
    BatchPathEnumerator enumerator(g);
    BatchOptions opt = MakeBatchOptions(cf);
    opt.algorithm = Algorithm::kBasicEnumPlus;
    opt.max_paths_per_query = 2'000'000;
    CollectingSink materialized(queries->size());
    WallTimer enum_timer;
    auto result = enumerator.Run(*queries, opt, &materialized);
    double enum_s = enum_timer.ElapsedSeconds();
    if (!result.ok()) {
      std::printf("%-4s %14s %14s %10s %14s\n", name.c_str(), "OT", "-",
                  "-", "-");
      continue;
    }

    // Scan the materialized paths once (the "Materialize" bar).
    WallTimer scan_timer;
    uint64_t checksum = 0;
    uint64_t paths = 0;
    for (size_t qi = 0; qi < queries->size(); ++qi) {
      const PathSet& ps = materialized.paths(qi);
      paths += ps.size();
      for (size_t i = 0; i < ps.size(); ++i) {
        for (VertexId v : ps[i]) checksum += v;
      }
    }
    double scan_s = scan_timer.ElapsedSeconds();
    if (scan_s <= 0) scan_s = 1e-9;

    std::printf("%-4s %14.4f %14.6f %9.0fx %14llu  (checksum %llu)\n",
                name.c_str(), enum_s, scan_s, enum_s / scan_s,
                static_cast<unsigned long long>(paths),
                static_cast<unsigned long long>(checksum % 1000));
    if (csv) csv->Row(name, enum_s, scan_s, enum_s / scan_s, paths);
  }
  if (csv) csv->Close();
  return 0;
}
