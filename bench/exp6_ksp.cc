// Exp-6 (Fig 12): comparison with the adapted k-shortest-path algorithms
// DkSP and OnePass. The paper reports >= 2 orders of magnitude advantage
// for BatchEnum+ (with several OT entries for the KSP baselines).

#include <cstdio>

#include "bench_common.h"
#include "ksp/dksp.h"
#include "ksp/onepass.h"
#include "util/timer.h"
#include "workload/dataset_registry.h"
#include "workload/query_gen.h"

using namespace hcpath;
using namespace hcpath::bench;

namespace {

/// Runs one KSP baseline over the whole batch with a shared wall budget.
bench::RunOutcome TimeKsp(const Graph& g,
                          const std::vector<PathQuery>& queries,
                          bool use_dksp, double budget_seconds) {
  bench::RunOutcome out;
  WallTimer timer;
  CountingSink sink(queries.size());
  KspLimits limits;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (budget_seconds > 0) {
      double left = budget_seconds - timer.ElapsedSeconds();
      if (left <= 0) {
        out.over_time = true;
        break;
      }
      limits.time_budget_seconds = left;
    }
    Status st = use_dksp ? DkspEnumerate(g, queries[i], i, &sink, limits)
                         : OnePassEnumerate(g, queries[i], i, &sink, limits);
    if (!st.ok()) {
      out.over_time = true;
      break;
    }
  }
  out.seconds = timer.ElapsedSeconds();
  out.total_paths = sink.Total();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CommonFlags cf;
  // KSP baselines are quadratic in the number of emitted paths; a tighter
  // default budget keeps the suite runnable (they hit OT like the paper).
  *cf.time_budget = 30.0;
  ParseOrDie(cf, argc, argv);
  auto csv = OpenCsv(*cf.csv);
  if (csv) csv->Row("dataset", "dksp_s", "onepass_s", "batchplus_s");

  std::printf("Fig 12: comparison with adapted KSP algorithms "
              "(|Q|=%lld, budget %.0fs)\n",
              static_cast<long long>(*cf.queries), *cf.time_budget);
  std::printf("%-4s | %9s %9s %9s\n", "ds", "DkSP", "OnePass", "Batch+");

  for (const std::string& name : ResolveDatasets(*cf.datasets)) {
    Graph g = LoadDataset(name, *cf.scale, *cf.seed);
    auto spec = *FindDataset(name);
    Rng rng(static_cast<uint64_t>(*cf.seed));
    QueryGenOptions qopt;
    // Paper setting: k varies from 3 to 7 here (clamped to the dataset's
    // bench range for the dense stand-ins).
    qopt.k_min = 3;
    qopt.k_max = spec.bench_k_max;
    auto queries = GenerateRandomQueries(g, *cf.queries, qopt, rng);
    if (!queries.ok()) continue;

    RunOutcome dksp = TimeKsp(g, *queries, /*use_dksp=*/true,
                              *cf.time_budget);
    RunOutcome onepass = TimeKsp(g, *queries, /*use_dksp=*/false,
                                 *cf.time_budget);
    BatchOptions opt = MakeBatchOptions(cf);
    opt.max_paths_per_query = 5'000'000;
    RunOutcome btp = TimeAlgorithm(g, *queries, Algorithm::kBatchEnumPlus,
                                   opt, *cf.time_budget);
    std::printf("%-4s | %9s %9s %9s\n", name.c_str(),
                FormatTime(dksp).c_str(), FormatTime(onepass).c_str(),
                FormatTime(btp).c_str());
    if (csv) csv->Row(name, dksp.seconds, onepass.seconds, btp.seconds);
  }
  if (csv) csv->Close();
  return 0;
}
