#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "graph/stats.h"
#include "util/stringx.h"
#include "util/timer.h"
#include "workload/dataset_registry.h"

namespace hcpath {
namespace bench {

CommonFlags::CommonFlags() {
  datasets = flags.AddString("datasets", "default",
                             "comma list of EP..FS, 'default' or 'all'");
  scale = flags.AddDouble("scale", 1.0, "dataset scale factor");
  queries = flags.AddInt64("queries", 100, "query set size");
  seed = flags.AddInt64("seed", 42, "workload / generator seed");
  gamma = flags.AddDouble("gamma", 0.5, "clustering threshold gamma");
  // Default 1 (the sequential reference) so exp1-exp7 timings stay
  // comparable with the paper's single-threaded figures and with earlier
  // trajectories; thread scaling is exp8's job, or opt in with --threads.
  threads = flags.AddInt64("threads", 1,
                           "engine compute threads (<= 0 = all cores, "
                           "1 = sequential reference)");
  csv = flags.AddString("csv", "", "optional CSV output path");
  time_budget =
      flags.AddDouble("time_budget", 120.0, "per-run budget in seconds (OT)");
  quick = flags.AddBool("quick", false, "shrink sweeps for smoke runs");
  kernel = flags.AddString("kernel", "auto",
                           "membership-probe kernel: auto | stamped | naive "
                           "(all byte-identical; perf comparison knob)");
  remap = flags.AddString("remap", "none",
                          "vertex renumbering before enumeration: none | "
                          "bfs | degree (output identical in original ids)");
}

void ParseOrDie(CommonFlags& cf, int argc, char** argv) {
  Status st = cf.flags.Parse(argc, argv);
  if (st.code() == StatusCode::kNotFound) std::exit(0);  // --help
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 cf.flags.Usage().c_str());
    std::exit(2);
  }
}

BatchOptions MakeBatchOptions(const CommonFlags& cf) {
  BatchOptions opt;
  opt.gamma = *cf.gamma;
  opt.num_threads = static_cast<int>(*cf.threads);
  auto kernel = ParseKernelMode(*cf.kernel);
  if (!kernel.ok()) {
    std::fprintf(stderr, "%s\n", kernel.status().ToString().c_str());
    std::exit(2);
  }
  opt.kernel_mode = *kernel;
  auto remap = ParseRemapMode(*cf.remap);
  if (!remap.ok()) {
    std::fprintf(stderr, "%s\n", remap.status().ToString().c_str());
    std::exit(2);
  }
  opt.remap_mode = *remap;
  Status st = opt.Validate();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    std::exit(2);
  }
  return opt;
}

std::vector<std::string> ResolveDatasets(const std::string& spec) {
  if (spec == "default") return DefaultBenchDatasets();
  std::vector<std::string> out;
  if (spec == "all") {
    for (const auto& d : AllDatasets()) out.push_back(d.name);
    return out;
  }
  for (auto part : Split(spec, ',')) {
    std::string name(Trim(part));
    if (!FindDataset(name).ok()) {
      std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
      std::exit(2);
    }
    out.push_back(name);
  }
  return out;
}

Graph LoadDataset(const std::string& name, double scale, uint64_t seed) {
  auto g = MakeDataset(name, scale, seed);
  if (!g.ok()) {
    std::fprintf(stderr, "failed to build %s: %s\n", name.c_str(),
                 g.status().ToString().c_str());
    std::exit(2);
  }
  GraphStats s = ComputeGraphStats(*g);
  std::fprintf(stderr, "[dataset] %s\n", FormatStatsRow(name, s).c_str());
  return std::move(*g);
}

RunOutcome TimeAlgorithm(const Graph& g,
                         const std::vector<PathQuery>& queries,
                         Algorithm algo, const BatchOptions& base_options,
                         double time_budget, BatchPathEnumerator* enumerator) {
  RunOutcome out;
  BatchOptions options = base_options;
  options.algorithm = algo;
  BatchPathEnumerator local(g);
  BatchPathEnumerator& facade = enumerator != nullptr ? *enumerator : local;
  WallTimer timer;
  auto result = facade.Run(queries, options, nullptr);
  out.seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    // Per-query path caps fire as ResourceExhausted; report as OT.
    out.over_time = true;
    return out;
  }
  out.total_paths = result->TotalPaths();
  out.stats = result->stats;
  out.over_time = time_budget > 0 && out.seconds > time_budget;
  return out;
}

std::string FormatTime(const RunOutcome& o) {
  if (o.over_time) return "OT";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", o.seconds);
  return buf;
}

std::unique_ptr<CsvWriter> OpenCsv(const std::string& path) {
  if (path.empty()) return nullptr;
  auto csv = std::make_unique<CsvWriter>(path);
  if (!csv->status().ok()) {
    std::fprintf(stderr, "cannot open csv %s\n", path.c_str());
    std::exit(2);
  }
  return csv;
}

}  // namespace bench
}  // namespace hcpath
