// Exp-7 (Fig 13): average number of HC-s-t paths per query when varying
// the hop constraint k from 3 to 7 — expected to grow exponentially.

#include <cstdio>

#include "bench_common.h"
#include "workload/dataset_registry.h"
#include "workload/query_gen.h"

using namespace hcpath;
using namespace hcpath::bench;

int main(int argc, char** argv) {
  CommonFlags cf;
  *cf.queries = 100;
  ParseOrDie(cf, argc, argv);
  auto csv = OpenCsv(*cf.csv);
  if (csv) csv->Row("dataset", "k", "avg_paths");

  std::printf("Fig 13: average number of paths per query vs k "
              "(|Q|=%lld)\n", static_cast<long long>(*cf.queries));
  std::printf("%-4s |", "ds");
  for (int k = 3; k <= 7; ++k) std::printf(" %12s", ("k=" + std::to_string(k)).c_str());
  std::printf("\n");

  for (const std::string& name : ResolveDatasets(*cf.datasets)) {
    Graph g = LoadDataset(name, *cf.scale, *cf.seed);
    // One facade per dataset: the --remap renumbering is built once and
    // reused across the k sweep instead of once per timed batch.
    BatchPathEnumerator enumerator(g);
    std::printf("%-4s |", name.c_str());
    for (int k = 3; k <= 7; ++k) {
      Rng rng(static_cast<uint64_t>(*cf.seed) + k);
      QueryGenOptions qopt;
      qopt.k_min = k;
      qopt.k_max = k;
      auto queries = GenerateRandomQueries(g, *cf.queries, qopt, rng);
      if (!queries.ok()) {
        std::printf(" %12s", "-");
        continue;
      }
      BatchOptions opt = MakeBatchOptions(cf);
      opt.max_paths_per_query = 20'000'000;
      RunOutcome o = TimeAlgorithm(g, *queries, Algorithm::kBasicEnumPlus,
                                   opt, 0, &enumerator);
      const double avg = static_cast<double>(o.total_paths) /
                         static_cast<double>(queries->size());
      if (o.over_time) {
        std::printf(" %12s", "OT");
      } else {
        std::printf(" %12.1f", avg);
      }
      if (csv) csv->Row(name, k, avg);
    }
    std::printf("\n");
  }
  if (csv) csv->Close();
  return 0;
}
