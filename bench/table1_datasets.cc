// Table I: statistics of the datasets. Prints the synthetic stand-ins'
// measured statistics next to the paper's originals so the substitution is
// auditable.

#include <cstdio>

#include "bench_common.h"
#include "graph/stats.h"
#include "util/stringx.h"
#include "workload/dataset_registry.h"

using namespace hcpath;
using namespace hcpath::bench;

int main(int argc, char** argv) {
  CommonFlags cf;
  ParseOrDie(cf, argc, argv);
  auto csv = OpenCsv(*cf.csv);
  if (csv) {
    csv->Row("name", "paper_V", "paper_E", "standin_V", "standin_E",
             "standin_davg", "standin_dmax");
  }

  std::printf(
      "Table I: dataset statistics (paper original vs synthetic stand-in, "
      "scale=%.2f)\n", *cf.scale);
  std::printf("%-4s %-14s %13s %15s | %11s %13s %8s %9s\n", "name",
              "dataset", "|V| (paper)", "|E| (paper)", "|V| (ours)",
              "|E| (ours)", "davg", "dmax");
  for (const auto& spec : AllDatasets()) {
    Graph g = LoadDataset(spec.name, *cf.scale, 7);
    GraphStats s = ComputeGraphStats(g);
    std::printf("%-4s %-14s %13s %15s | %11s %13s %8.1f %9s\n",
                spec.name.c_str(), spec.full_name.c_str(),
                FormatWithCommas(spec.paper_vertices).c_str(),
                FormatWithCommas(spec.paper_edges).c_str(),
                FormatWithCommas(s.num_vertices).c_str(),
                FormatWithCommas(s.num_edges).c_str(), s.avg_degree,
                FormatWithCommas(s.max_total_degree).c_str());
    if (csv) {
      csv->Row(spec.name, spec.paper_vertices, spec.paper_edges,
               s.num_vertices, s.num_edges, s.avg_degree,
               s.max_total_degree);
    }
  }
  if (csv) csv->Close();
  return 0;
}
