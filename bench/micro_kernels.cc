// Micro-benchmarks (google-benchmark) for the kernels underlying every
// experiment: hop-capped BFS, bit-parallel MS-BFS, the distance map, path
// storage and the canonical-split join.

#include <benchmark/benchmark.h>

#include "bfs/bfs.h"
#include "bfs/msbfs.h"
#include "core/join.h"
#include "core/search.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace hcpath {
namespace {

const Graph& BenchGraph() {
  static const Graph* g = [] {
    Rng rng(7);
    return new Graph(*GenerateBarabasiAlbert(100000, 4, rng));
  }();
  return *g;
}

void BM_HopCappedBfs(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const Hop cap = static_cast<Hop>(state.range(0));
  Rng rng(13);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    VertexDistMap d = HopCappedBfs(g, s, cap, Direction::kForward);
    benchmark::DoNotOptimize(d.size());
  }
}
BENCHMARK(BM_HopCappedBfs)->Arg(3)->Arg(5)->Arg(7);

void BM_MultiSourceBfs(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const size_t num_sources = static_cast<size_t>(state.range(0));
  Rng rng(17);
  std::vector<VertexId> sources;
  std::vector<Hop> caps;
  for (size_t i = 0; i < num_sources; ++i) {
    sources.push_back(static_cast<VertexId>(rng.NextBounded(g.NumVertices())));
    caps.push_back(5);
  }
  for (auto _ : state) {
    MsBfsResult r = MultiSourceBfs(g, sources, caps, Direction::kForward);
    benchmark::DoNotOptimize(r.total_discovered);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_sources));
}
BENCHMARK(BM_MultiSourceBfs)->Arg(64)->Arg(256);

void BM_SequentialBfsBaseline(benchmark::State& state) {
  // The baseline MS-BFS replaces: one hop-capped BFS per source.
  const Graph& g = BenchGraph();
  const size_t num_sources = static_cast<size_t>(state.range(0));
  Rng rng(17);
  std::vector<VertexId> sources;
  for (size_t i = 0; i < num_sources; ++i) {
    sources.push_back(static_cast<VertexId>(rng.NextBounded(g.NumVertices())));
  }
  for (auto _ : state) {
    uint64_t total = 0;
    for (VertexId s : sources) {
      total += HopCappedBfs(g, s, 5, Direction::kForward).size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_sources));
}
BENCHMARK(BM_SequentialBfsBaseline)->Arg(64)->Arg(256);

void BM_VertexDistMapLookup(benchmark::State& state) {
  VertexDistMap map;
  Rng rng(23);
  for (int i = 0; i < 100000; ++i) {
    map.InsertMin(static_cast<VertexId>(rng.NextBounded(1u << 24)), 3);
  }
  Rng probe(29);
  for (auto _ : state) {
    Hop d = map.Lookup(static_cast<VertexId>(probe.NextBounded(1u << 24)));
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_VertexDistMapLookup);

void BM_PathSetAppend(benchmark::State& state) {
  std::vector<VertexId> path = {1, 2, 3, 4, 5, 6};
  for (auto _ : state) {
    PathSet ps;
    for (int i = 0; i < 1000; ++i) ps.Add(path);
    benchmark::DoNotOptimize(ps.TotalVertices());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PathSetAppend);

void BM_HalfSearch(benchmark::State& state) {
  const Graph& g = BenchGraph();
  VertexDistMap to_t = HopCappedBfs(g, 12345, 6, Direction::kBackward);
  TargetSlack slack[] = {{&to_t, 6}};
  for (auto _ : state) {
    HalfSearchSpec spec;
    spec.start = 777;
    spec.budget = 3;
    spec.dir = Direction::kForward;
    spec.slacks = slack;
    PathSet out;
    Status st = RunHalfSearch(g, spec, &out, nullptr);
    benchmark::DoNotOptimize(out.size());
    benchmark::DoNotOptimize(st.ok());
  }
}
BENCHMARK(BM_HalfSearch);

void BM_CanonicalJoin(benchmark::State& state) {
  const Graph& g = BenchGraph();
  PathSet fwd, bwd;
  HalfSearchSpec f;
  f.start = 777;
  f.budget = 3;
  f.dir = Direction::kForward;
  (void)RunHalfSearch(g, f, &fwd, nullptr);
  HalfSearchSpec b;
  b.start = 888;
  b.budget = 3;
  b.dir = Direction::kBackward;
  (void)RunHalfSearch(g, b, &bwd, nullptr);
  CountingSink sink(1);
  for (auto _ : state) {
    JoinSpec join;
    join.forward = &fwd;
    join.backward = &bwd;
    join.s = 777;
    join.t = 888;
    join.hf = 3;
    join.hb = 3;
    auto emitted = JoinAndEmit(join, 0, &sink, nullptr);
    benchmark::DoNotOptimize(emitted.ok());
  }
}
BENCHMARK(BM_CanonicalJoin);

}  // namespace
}  // namespace hcpath

BENCHMARK_MAIN();
