// Micro-benchmarks (google-benchmark) for the kernels underlying every
// experiment: hop-capped BFS, bit-parallel MS-BFS, the distance map, path
// storage, the canonical-split join, and the three enumeration hot-loop
// membership kernels rewritten onto epoch stamps (docs/PERF.md): the DFS
// on-path test, the shortcut-splice disjointness check, and the join-probe
// disjointness check — each on dense-overlap (rejection-heavy) and
// no-overlap (acceptance-heavy) path sets so before/after is quantifiable
// per kernel. Also: the batched stamp probes (AVX2 gather vs the scalar
// fallback, pinned via TestOnlyForceScalar) and the DFS expansion on
// BFS/degree-remapped graph layouts. A 1-iteration smoke run is wired
// into ctest (-L bench).

#include <benchmark/benchmark.h>

#include "bfs/bfs.h"
#include "bfs/msbfs.h"
#include "core/join.h"
#include "core/search.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_remap.h"
#include "util/epoch_stamp.h"
#include "util/rng.h"

namespace hcpath {
namespace {

const Graph& BenchGraph() {
  static const Graph* g = [] {
    Rng rng(7);
    return new Graph(*GenerateBarabasiAlbert(100000, 4, rng));
  }();
  return *g;
}

void BM_HopCappedBfs(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const Hop cap = static_cast<Hop>(state.range(0));
  Rng rng(13);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    VertexDistMap d = HopCappedBfs(g, s, cap, Direction::kForward);
    benchmark::DoNotOptimize(d.size());
  }
}
BENCHMARK(BM_HopCappedBfs)->Arg(3)->Arg(5)->Arg(7);

void BM_MultiSourceBfs(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const size_t num_sources = static_cast<size_t>(state.range(0));
  Rng rng(17);
  std::vector<VertexId> sources;
  std::vector<Hop> caps;
  for (size_t i = 0; i < num_sources; ++i) {
    sources.push_back(static_cast<VertexId>(rng.NextBounded(g.NumVertices())));
    caps.push_back(5);
  }
  for (auto _ : state) {
    MsBfsResult r = MultiSourceBfs(g, sources, caps, Direction::kForward);
    benchmark::DoNotOptimize(r.total_discovered);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_sources));
}
BENCHMARK(BM_MultiSourceBfs)->Arg(64)->Arg(256);

void BM_SequentialBfsBaseline(benchmark::State& state) {
  // The baseline MS-BFS replaces: one hop-capped BFS per source.
  const Graph& g = BenchGraph();
  const size_t num_sources = static_cast<size_t>(state.range(0));
  Rng rng(17);
  std::vector<VertexId> sources;
  for (size_t i = 0; i < num_sources; ++i) {
    sources.push_back(static_cast<VertexId>(rng.NextBounded(g.NumVertices())));
  }
  for (auto _ : state) {
    uint64_t total = 0;
    for (VertexId s : sources) {
      total += HopCappedBfs(g, s, 5, Direction::kForward).size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_sources));
}
BENCHMARK(BM_SequentialBfsBaseline)->Arg(64)->Arg(256);

void BM_VertexDistMapLookup(benchmark::State& state) {
  VertexDistMap map;
  Rng rng(23);
  for (int i = 0; i < 100000; ++i) {
    map.InsertMin(static_cast<VertexId>(rng.NextBounded(1u << 24)), 3);
  }
  Rng probe(29);
  for (auto _ : state) {
    Hop d = map.Lookup(static_cast<VertexId>(probe.NextBounded(1u << 24)));
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_VertexDistMapLookup);

void BM_PathSetAppend(benchmark::State& state) {
  std::vector<VertexId> path = {1, 2, 3, 4, 5, 6};
  for (auto _ : state) {
    PathSet ps;
    for (int i = 0; i < 1000; ++i) ps.Add(path);
    benchmark::DoNotOptimize(ps.TotalVertices());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PathSetAppend);

void BM_HalfSearch(benchmark::State& state) {
  const Graph& g = BenchGraph();
  VertexDistMap to_t = HopCappedBfs(g, 12345, 6, Direction::kBackward);
  TargetSlack slack[] = {{&to_t, 6}};
  for (auto _ : state) {
    HalfSearchSpec spec;
    spec.start = 777;
    spec.budget = 3;
    spec.dir = Direction::kForward;
    spec.slacks = slack;
    PathSet out;
    Status st = RunHalfSearch(g, spec, &out, nullptr);
    benchmark::DoNotOptimize(out.size());
    benchmark::DoNotOptimize(st.ok());
  }
}
BENCHMARK(BM_HalfSearch);

/// BM_HalfSearch with the kernel dispatch resolved ONCE outside the loop —
/// the hoist every production entry point (enumerator facade, batch
/// engines, PathEngine views) now performs per graph instead of per
/// search. The delta against BM_HalfSearch is the per-search resolution
/// setup BENCH_PR6.json's micro_kernels_note flagged.
void BM_HalfSearchPreResolved(benchmark::State& state) {
  const Graph& g = BenchGraph();
  VertexDistMap to_t = HopCappedBfs(g, 12345, 6, Direction::kBackward);
  TargetSlack slack[] = {{&to_t, 6}};
  const ResolvedKernel rk = ResolveKernel(KernelMode::kAuto, g);
  for (auto _ : state) {
    HalfSearchSpec spec;
    spec.start = 777;
    spec.budget = 3;
    spec.dir = Direction::kForward;
    spec.slacks = slack;
    spec.resolved = rk;
    PathSet out;
    Status st = RunHalfSearch(g, spec, &out, nullptr);
    benchmark::DoNotOptimize(out.size());
    benchmark::DoNotOptimize(st.ok());
  }
}
BENCHMARK(BM_HalfSearchPreResolved);

void BM_CanonicalJoin(benchmark::State& state) {
  const Graph& g = BenchGraph();
  PathSet fwd, bwd;
  HalfSearchSpec f;
  f.start = 777;
  f.budget = 3;
  f.dir = Direction::kForward;
  (void)RunHalfSearch(g, f, &fwd, nullptr);
  HalfSearchSpec b;
  b.start = 888;
  b.budget = 3;
  b.dir = Direction::kBackward;
  (void)RunHalfSearch(g, b, &bwd, nullptr);
  CountingSink sink(1);
  for (auto _ : state) {
    JoinSpec join;
    join.forward = &fwd;
    join.backward = &bwd;
    join.s = 777;
    join.t = 888;
    join.hf = 3;
    join.hb = 3;
    auto emitted = JoinAndEmit(join, 0, &sink, nullptr);
    benchmark::DoNotOptimize(emitted.ok());
  }
}
BENCHMARK(BM_CanonicalJoin);

// ---------------------------------------------------------------------------
// Membership-kernel benchmarks. Each drives one of the three hot-loop
// kernels through its public entry point on synthetic path sets whose
// shape isolates the membership work:
//   * overlap == 1 ("dense overlap"): every candidate shares a vertex with
//     the stamped path, placed so the check runs its full length before
//     rejecting — the disjointness test is all the kernel does;
//   * overlap == 0 ("no overlap"): every candidate is accepted, so the
//     numbers include the (identical) emission cost.
// ---------------------------------------------------------------------------

/// Builds the synthetic forward/backward sets of one join query: every
/// forward path has length hf and ends at the shared midpoint, every
/// backward path has length hb and tail == midpoint, so every pair is
/// probed. Vertex ids are disjoint between paths except as `overlap`
/// dictates.
struct JoinFixture {
  PathSet fwd, bwd;
  VertexId s = 0, t = 1;
  Hop hf, hb;

  JoinFixture(size_t num_paths, Hop half_len, bool overlap)
      : hf(half_len), hb(half_len) {
    const VertexId mid = 2;
    VertexId next = 3;
    std::vector<VertexId> path;
    for (size_t i = 0; i < num_paths; ++i) {
      path.clear();
      path.push_back(s);
      for (Hop h = 1; h < hf; ++h) path.push_back(next++);
      path.push_back(mid);
      fwd.Add(path);
    }
    for (size_t i = 0; i < num_paths; ++i) {
      path.clear();
      path.push_back(t);
      for (Hop h = 1; h < hb; ++h) path.push_back(next++);
      if (overlap && hb >= 2) {
        // Collide on `s` (in every forward path) at the last internal
        // position the check visits, so every pair rejects — but only
        // after the naive scan has paid its full O(|pb| x |pf|) cost.
        path.back() = s;
      }
      path.push_back(mid);
      bwd.Add(path);
    }
  }
};

void BM_JoinProbeDisjoint(benchmark::State& state) {
  const bool overlap = state.range(0) != 0;
  const Hop half_len = static_cast<Hop>(state.range(1));
  const size_t kPaths = 32;
  JoinFixture fx(kPaths, half_len, overlap);
  CountingSink sink(1);
  uint64_t probes = 0;
  for (auto _ : state) {
    JoinSpec join;
    join.forward = &fx.fwd;
    join.backward = &fx.bwd;
    join.s = fx.s;
    join.t = fx.t;
    join.hf = fx.hf;
    join.hb = fx.hb;
    BatchStats stats;
    auto emitted = JoinAndEmit(join, 0, &sink, &stats);
    benchmark::DoNotOptimize(emitted.ok());
    probes += stats.join_probes;
  }
  state.SetItemsProcessed(static_cast<int64_t>(probes));
}
BENCHMARK(BM_JoinProbeDisjoint)
    ->ArgNames({"overlap", "len"})
    ->Args({1, 8})
    ->Args({0, 8})
    ->Args({1, 12})
    ->Args({0, 12});

/// Chain graph 0 -> 1 -> ... -> prefix_len with a shortcut dep at the
/// chain's end: the DFS walks the full prefix, then splices every cached
/// suffix, so the run is dominated by the splice disjointness check of
/// `num_cached` suffixes of length `suffix_len` against a stamped prefix.
void BM_SpliceDisjoint(benchmark::State& state) {
  const bool overlap = state.range(0) != 0;
  const Hop kPrefixLen = 16;
  const Hop kSuffixLen = 8;
  const size_t kNumCached = 256;
  const VertexId dep_vertex = kPrefixLen;
  GraphBuilder b(dep_vertex + 1 + kNumCached * kSuffixLen);
  for (VertexId v = 0; v < dep_vertex; ++v) b.AddEdge(v, v + 1);
  Graph g = *b.Build();

  PathSet cached;
  std::vector<VertexId> path;
  VertexId next = dep_vertex + 1;
  for (size_t i = 0; i < kNumCached; ++i) {
    path.clear();
    path.push_back(dep_vertex);
    for (Hop h = 0; h < kSuffixLen; ++h) path.push_back(next++);
    // Collide on the last suffix vertex so the naive scan pays the full
    // O(|suffix| x |prefix|) cost before rejecting.
    if (overlap) path.back() = 3;
    cached.Add(path);
  }
  SearchDep dep[] = {{dep_vertex, kSuffixLen, &cached}};

  uint64_t splices = 0;
  for (auto _ : state) {
    HalfSearchSpec spec;
    spec.start = 0;
    spec.budget = static_cast<Hop>(kPrefixLen + kSuffixLen);
    spec.dir = Direction::kForward;
    spec.deps = dep;
    PathSet out;
    BatchStats stats;
    Status st = RunHalfSearch(g, spec, &out, &stats);
    benchmark::DoNotOptimize(st.ok());
    splices += kNumCached;  // candidates tested per run
  }
  state.SetItemsProcessed(static_cast<int64_t>(splices));
}
BENCHMARK(BM_SpliceDisjoint)
    ->ArgNames({"overlap"})
    ->Arg(1)
    ->Arg(0);

/// Deep DFS on a complete graph: every edge expansion runs the on-path
/// membership test against a path of ~`budget` vertices, and expansions
/// vastly outnumber stored paths, so the run is dominated by that test.
void BM_DfsOnPath(benchmark::State& state) {
  const Hop budget = static_cast<Hop>(state.range(0));
  static const Graph* cg = new Graph(*GenerateComplete(9));
  const Graph& g = *cg;
  uint64_t expansions = 0;
  for (auto _ : state) {
    HalfSearchSpec spec;
    spec.start = 0;
    spec.budget = budget;
    spec.dir = Direction::kForward;
    // Store only full-length paths so the run measures the membership
    // test, not result materialization.
    spec.filter_for_join = true;
    spec.store_target = 0;
    PathSet out;
    BatchStats stats;
    Status st = RunHalfSearch(g, spec, &out, &stats);
    benchmark::DoNotOptimize(st.ok());
    expansions += stats.edges_expanded;
  }
  state.SetItemsProcessed(static_cast<int64_t>(expansions));
}
BENCHMARK(BM_DfsOnPath)->ArgNames({"budget"})->Arg(6)->Arg(8);

// ---------------------------------------------------------------------------
// Batched stamp-probe benchmarks: the AVX2 gather kernel vs the unrolled
// scalar fallback on the same table and probe vectors, isolated from the
// enumeration loops (scalar == 1 pins the fallback via TestOnlyForceScalar;
// scalar == 0 lets the host dispatch — AVX2 where supported). Probe ids
// all miss, so TestAny scans its full span instead of early-exiting and
// both kernels do identical per-lane work.
// ---------------------------------------------------------------------------

/// Table with the low half of a 2^20 universe ~6% marked; probes drawn
/// from the unmarked high half.
struct StampFixture {
  EpochStampTable table;
  std::vector<uint32_t> probes;

  explicit StampFixture(size_t len) {
    constexpr uint32_t kUniverse = 1u << 20;
    table.Reserve(kUniverse);
    Rng rng(31);
    for (int i = 0; i < (1 << 16); ++i) {
      table.Mark(rng.NextBounded(kUniverse / 2));
    }
    for (size_t i = 0; i < len; ++i) {
      probes.push_back(kUniverse / 2 + rng.NextBounded(kUniverse / 2));
    }
  }
};

void BM_StampTestAny(benchmark::State& state) {
  const bool force_scalar = state.range(0) != 0;
  const size_t len = static_cast<size_t>(state.range(1));
  StampFixture fx(len);
  EpochStampTable::TestOnlyForceScalar(force_scalar ? 1 : 0);
  for (auto _ : state) {
    bool any = fx.table.TestAny(fx.probes);
    benchmark::DoNotOptimize(any);
  }
  EpochStampTable::TestOnlyForceScalar(-1);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(len));
}
BENCHMARK(BM_StampTestAny)
    ->ArgNames({"scalar", "len"})
    ->Args({1, 8})
    ->Args({0, 8})
    ->Args({1, 32})
    ->Args({0, 32})
    ->Args({1, 256})
    ->Args({0, 256});

void BM_StampTestBatch(benchmark::State& state) {
  const bool force_scalar = state.range(0) != 0;
  const size_t len = static_cast<size_t>(state.range(1));
  StampFixture fx(len);
  std::vector<uint8_t> hits(len);
  EpochStampTable::TestOnlyForceScalar(force_scalar ? 1 : 0);
  for (auto _ : state) {
    fx.table.TestBatch(fx.probes, hits.data());
    benchmark::DoNotOptimize(hits.data());
  }
  EpochStampTable::TestOnlyForceScalar(-1);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(len));
}
BENCHMARK(BM_StampTestBatch)
    ->ArgNames({"scalar", "len"})
    ->Args({1, 8})
    ->Args({0, 8})
    ->Args({1, 32})
    ->Args({0, 32})
    ->Args({1, 256})
    ->Args({0, 256});

/// BM_HalfSearch (bounded DFS expansion over the 100k Barabási–Albert
/// graph) repeated per renumbering, so the cache-locality effect of the
/// remap orderings on the adjacency walk is measured in isolation:
/// remap == 0 original ids, 1 BFS order, 2 degree order. Work counters
/// are identical across the three (RemapParity); only memory layout moves.
void BM_HalfSearchRemap(benchmark::State& state) {
  const RemapMode modes[] = {RemapMode::kNone, RemapMode::kBfs,
                             RemapMode::kDegree};
  const RemapMode mode = modes[state.range(0)];
  const Graph& original = BenchGraph();
  const GraphRemap remap = GraphRemap::Build(original, mode);
  const Graph& g = remap.is_identity() ? original : remap.remapped();
  const VertexId start = remap.is_identity() ? 777 : remap.ToNew(777);
  uint64_t expansions = 0;
  for (auto _ : state) {
    HalfSearchSpec spec;
    spec.start = start;
    spec.budget = 3;
    spec.dir = Direction::kForward;
    PathSet out;
    BatchStats stats;
    Status st = RunHalfSearch(g, spec, &out, &stats);
    benchmark::DoNotOptimize(st.ok());
    benchmark::DoNotOptimize(out.size());
    expansions += stats.edges_expanded;
  }
  state.SetItemsProcessed(static_cast<int64_t>(expansions));
}
BENCHMARK(BM_HalfSearchRemap)->ArgNames({"remap"})->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace hcpath

BENCHMARK_MAIN();
