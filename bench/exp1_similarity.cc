// Exp-1 (Fig 7): processing time and speedup when varying query similarity
// µ_Q. For each dataset and similarity level, runs all five algorithms and
// reports BatchEnum(+)'s speedup over BasicEnum+ next to the theoretical
// speedup limit 1 / (1 - µ_Q).

#include <cstdio>

#include "bench_common.h"
#include "workload/dataset_registry.h"
#include "workload/similarity_gen.h"

using namespace hcpath;
using namespace hcpath::bench;

int main(int argc, char** argv) {
  CommonFlags cf;
  ParseOrDie(cf, argc, argv);
  auto csv = OpenCsv(*cf.csv);
  if (csv) {
    csv->Row("dataset", "target_mu", "achieved_mu", "pathenum_s", "basic_s",
             "basicplus_s", "batch_s", "batchplus_s", "speedup",
             "speedup_limit");
  }

  std::vector<double> levels = {0.0, 0.2, 0.4, 0.6, 0.8, 0.9};
  if (*cf.quick) levels = {0.0, 0.9};

  for (const std::string& name : ResolveDatasets(*cf.datasets)) {
    Graph g = LoadDataset(name, *cf.scale, *cf.seed);
    auto spec = *FindDataset(name);
    std::printf(
        "\nFig 7 (%s): time when varying query similarity (|Q|=%lld, "
        "k in [%d,%d], gamma=%.2f)\n",
        name.c_str(), static_cast<long long>(*cf.queries), spec.bench_k_min,
        spec.bench_k_max, *cf.gamma);
    std::printf("%6s %6s | %9s %9s %9s %9s %9s | %8s %8s %6s\n", "target",
                "muQ", "PathEnum", "Basic", "Basic+", "Batch", "Batch+",
                "speedup", "work-spd", "limit");

    for (double target : levels) {
      // Same seed across levels: the pool seeds and the random base set
      // stay fixed, so only the pooled fraction varies between rows.
      Rng rng(static_cast<uint64_t>(*cf.seed) * 7919);
      auto qs = GenerateQueriesWithSimilarity(
          g, static_cast<size_t>(*cf.queries), spec.bench_k_min,
          spec.bench_k_max, target, rng);
      if (!qs.ok()) {
        std::fprintf(stderr, "%s target %.1f: %s\n", name.c_str(), target,
                     qs.status().ToString().c_str());
        continue;
      }
      BatchOptions opt = MakeBatchOptions(cf);
      opt.max_paths_per_query = 5'000'000;

      RunOutcome pe = TimeAlgorithm(g, qs->queries, Algorithm::kPathEnum,
                                    opt, *cf.time_budget);
      RunOutcome ba = TimeAlgorithm(g, qs->queries, Algorithm::kBasicEnum,
                                    opt, *cf.time_budget);
      RunOutcome bp = TimeAlgorithm(
          g, qs->queries, Algorithm::kBasicEnumPlus, opt, *cf.time_budget);
      RunOutcome bt = TimeAlgorithm(g, qs->queries, Algorithm::kBatchEnum,
                                    opt, *cf.time_budget);
      RunOutcome btp = TimeAlgorithm(
          g, qs->queries, Algorithm::kBatchEnumPlus, opt, *cf.time_budget);

      const double mu = qs->achieved_mu;
      const double limit = mu < 1.0 ? 1.0 / (1.0 - mu) : 99.0;
      const double speedup =
          (!bp.over_time && !btp.over_time && btp.seconds > 0)
              ? bp.seconds / btp.seconds
              : 0.0;
      // Search-work sharing: the ratio of DFS edge expansions. On
      // output-bound synthetic workloads this is where the sharing shows
      // (wall time is dominated by emitting the result paths themselves).
      const double work_speedup =
          btp.stats.edges_expanded > 0
              ? static_cast<double>(bp.stats.edges_expanded) /
                    static_cast<double>(btp.stats.edges_expanded)
              : 0.0;
      std::printf(
          "%5.0f%% %5.2f | %9s %9s %9s %9s %9s | %7.2fx %7.2fx %5.2fx\n",
          target * 100, mu, FormatTime(pe).c_str(), FormatTime(ba).c_str(),
          FormatTime(bp).c_str(), FormatTime(bt).c_str(),
          FormatTime(btp).c_str(), speedup, work_speedup, limit);
      if (csv) {
        csv->Row(name, target, mu, pe.seconds, ba.seconds, bp.seconds,
                 bt.seconds, btp.seconds, speedup, limit);
      }
    }
  }
  if (csv) csv->Close();
  return 0;
}
