// Integration and failure-injection coverage that spans modules:
// dataset registry -> workload -> algorithms, resource-cap behavior,
// and end-to-end invariants on realistic stand-ins.

#include <gtest/gtest.h>

#include "hcpath/hcpath.h"
#include "ksp/dksp.h"
#include "ksp/onepass.h"
#include "workload/dataset_registry.h"
#include "workload/query_gen.h"
#include "workload/similarity_gen.h"

namespace hcpath {
namespace {

TEST(Integration, RegistryWorkloadBatchPipeline) {
  auto g = MakeDataset("EP", 0.1, 3);
  ASSERT_TRUE(g.ok());
  Rng rng(11);
  QueryGenOptions qopt;
  qopt.k_min = 4;
  qopt.k_max = 6;
  auto queries = GenerateRandomQueries(*g, 25, qopt, rng);
  ASSERT_TRUE(queries.ok());

  BatchPathEnumerator enumerator(*g);
  std::vector<uint64_t> reference;
  for (Algorithm algo :
       {Algorithm::kPathEnum, Algorithm::kBasicEnum,
        Algorithm::kBasicEnumPlus, Algorithm::kBatchEnum,
        Algorithm::kBatchEnumPlus}) {
    BatchOptions opt;
    opt.algorithm = algo;
    auto result = enumerator.Run(*queries, opt);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algo);
    if (reference.empty()) {
      reference = result->path_counts;
      uint64_t total = result->TotalPaths();
      EXPECT_GT(total, 0u);
    } else {
      EXPECT_EQ(result->path_counts, reference) << AlgorithmName(algo);
    }
  }
}

TEST(Integration, SimilarityWorkloadSharesComputation) {
  auto g = MakeDataset("EP", 0.1, 3);
  ASSERT_TRUE(g.ok());
  Rng rng(13);
  auto qs = GenerateQueriesWithSimilarity(*g, 30, 4, 6, 0.9, rng);
  ASSERT_TRUE(qs.ok());
  ASSERT_GT(qs->achieved_mu, 0.5);

  BatchPathEnumerator enumerator(*g);
  BatchOptions basic;
  basic.algorithm = Algorithm::kBasicEnum;
  auto b = enumerator.Run(qs->queries, basic);
  ASSERT_TRUE(b.ok());

  BatchOptions batch;
  batch.algorithm = Algorithm::kBatchEnum;
  auto s = enumerator.Run(qs->queries, batch);
  ASSERT_TRUE(s.ok());

  EXPECT_EQ(b->path_counts, s->path_counts);
  // The shared run must expand strictly fewer edges on a 90%-similar set.
  EXPECT_LT(s->stats.edges_expanded, b->stats.edges_expanded);
  EXPECT_GT(s->stats.shortcut_splices, 0u);
}

TEST(Integration, DominatingCapBoundsSharingGraph) {
  Graph g = *MakeDataset("EP", 0.05, 3);
  Rng rng(17);
  auto qs = GenerateQueriesWithSimilarity(g, 20, 4, 6, 0.9, rng);
  ASSERT_TRUE(qs.ok());

  BatchPathEnumerator enumerator(g);
  BatchOptions capped;
  capped.algorithm = Algorithm::kBatchEnum;
  capped.max_dominating_per_query = 0.1;  // ~2 dominating nodes total
  auto c = enumerator.Run(qs->queries, capped);
  ASSERT_TRUE(c.ok());

  BatchOptions uncapped;
  uncapped.algorithm = Algorithm::kBatchEnum;
  uncapped.max_dominating_per_query = 0;  // unlimited
  auto u = enumerator.Run(qs->queries, uncapped);
  ASSERT_TRUE(u.ok());

  EXPECT_EQ(c->path_counts, u->path_counts);  // caps never change results
  EXPECT_LE(c->stats.dominating_nodes, 3u);
  EXPECT_GE(u->stats.dominating_nodes, c->stats.dominating_nodes);
}

TEST(Integration, ResourceCapsFailWithoutCrashing) {
  auto g = GenerateComplete(12);
  ASSERT_TRUE(g.ok());
  std::vector<PathQuery> queries = {{0, 11, 6}, {1, 11, 6}};
  BatchPathEnumerator enumerator(*g);
  for (Algorithm algo : {Algorithm::kPathEnum, Algorithm::kBasicEnum,
                         Algorithm::kBatchEnumPlus}) {
    BatchOptions opt;
    opt.algorithm = algo;
    opt.max_paths_per_query = 50;
    auto result = enumerator.Run(queries, opt);
    ASSERT_FALSE(result.ok()) << AlgorithmName(algo);
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(Integration, KspBaselinesAgreeWithBatchOnStandIn) {
  auto g = MakeDataset("EP", 0.05, 3);
  ASSERT_TRUE(g.ok());
  Rng rng(19);
  QueryGenOptions qopt;
  qopt.k_min = 3;
  qopt.k_max = 4;
  auto queries = GenerateRandomQueries(*g, 5, qopt, rng);
  ASSERT_TRUE(queries.ok());

  BatchPathEnumerator enumerator(*g);
  BatchOptions opt;
  auto reference = enumerator.Run(*queries, opt);
  ASSERT_TRUE(reference.ok());

  for (size_t i = 0; i < queries->size(); ++i) {
    CountingSink dksp(1), onepass(1);
    ASSERT_TRUE(DkspEnumerate(*g, (*queries)[i], 0, &dksp, {}).ok());
    ASSERT_TRUE(OnePassEnumerate(*g, (*queries)[i], 0, &onepass, {}).ok());
    EXPECT_EQ(dksp.counts()[0], reference->path_counts[i]) << i;
    EXPECT_EQ(onepass.counts()[0], reference->path_counts[i]) << i;
  }
}

TEST(Integration, HubHeavyStandInStaysCorrect) {
  // WT is the saturated/hub-heavy corner: reach sets collide, clusters are
  // giant, outputs are large. Counts must still agree across algorithms.
  auto g = MakeDataset("WT", 0.1, 3);
  ASSERT_TRUE(g.ok());
  Rng rng(23);
  QueryGenOptions qopt;
  qopt.k_min = 3;
  qopt.k_max = 4;
  auto queries = GenerateRandomQueries(*g, 10, qopt, rng);
  ASSERT_TRUE(queries.ok());

  BatchPathEnumerator enumerator(*g);
  BatchOptions basic;
  basic.algorithm = Algorithm::kBasicEnum;
  auto b = enumerator.Run(*queries, basic);
  ASSERT_TRUE(b.ok());
  BatchOptions batch;
  batch.algorithm = Algorithm::kBatchEnumPlus;
  auto s = enumerator.Run(*queries, batch);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(b->path_counts, s->path_counts);
  EXPECT_GT(b->TotalPaths(), 0u);
}

TEST(Integration, ScalabilitySamplingPreservesCorrectness) {
  auto g = MakeDataset("EP", 0.1, 3);
  ASSERT_TRUE(g.ok());
  Rng srng(29);
  auto sampled = SampleVerticesInduced(*g, 0.5, srng);
  ASSERT_TRUE(sampled.ok());
  Rng rng(31);
  QueryGenOptions qopt;
  qopt.k_min = 4;
  qopt.k_max = 5;
  auto queries = GenerateRandomQueries(sampled->graph, 10, qopt, rng);
  ASSERT_TRUE(queries.ok());
  BatchPathEnumerator enumerator(sampled->graph);
  BatchOptions a, b;
  a.algorithm = Algorithm::kBasicEnum;
  b.algorithm = Algorithm::kBatchEnum;
  auto ra = enumerator.Run(*queries, a);
  auto rb = enumerator.Run(*queries, b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->path_counts, rb->path_counts);
}

}  // namespace
}  // namespace hcpath
