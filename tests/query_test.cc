#include "core/query.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace hcpath {
namespace {

TEST(PathQuery, Budgets) {
  PathQuery q{0, 1, 5};
  EXPECT_EQ(q.ForwardBudget(), 3);
  EXPECT_EQ(q.BackwardBudget(), 2);
  PathQuery even{0, 1, 6};
  EXPECT_EQ(even.ForwardBudget(), 3);
  EXPECT_EQ(even.BackwardBudget(), 3);
  PathQuery one{0, 1, 1};
  EXPECT_EQ(one.ForwardBudget(), 1);
  EXPECT_EQ(one.BackwardBudget(), 0);
}

TEST(PathQuery, ToStringAndEquality) {
  PathQuery q{3, 9, 4};
  EXPECT_EQ(q.ToString(), "q(s=3, t=9, k=4)");
  EXPECT_EQ(q, (PathQuery{3, 9, 4}));
  EXPECT_FALSE(q == (PathQuery{3, 9, 5}));
}

TEST(ValidateQueries, AcceptsGoodBatch) {
  auto g = GeneratePath(10);
  std::vector<PathQuery> qs = {{0, 5, 5}, {1, 9, 8}};
  EXPECT_TRUE(ValidateQueries(*g, qs).ok());
}

TEST(ValidateQueries, RejectsOutOfRangeEndpoint) {
  auto g = GeneratePath(10);
  EXPECT_FALSE(ValidateQueries(*g, {{0, 10, 3}}).ok());
  EXPECT_FALSE(ValidateQueries(*g, {{10, 0, 3}}).ok());
}

TEST(ValidateQueries, RejectsSelfQuery) {
  auto g = GeneratePath(10);
  Status st = ValidateQueries(*g, {{4, 4, 3}});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("s == t"), std::string::npos);
}

TEST(ValidateQueries, RejectsBadHopConstraint) {
  auto g = GeneratePath(10);
  EXPECT_FALSE(ValidateQueries(*g, {{0, 1, 0}}).ok());
  EXPECT_FALSE(ValidateQueries(*g, {{0, 1, -3}}).ok());
  EXPECT_FALSE(ValidateQueries(*g, {{0, 1, kMaxHops + 1}}).ok());
  EXPECT_TRUE(ValidateQueries(*g, {{0, 1, kMaxHops}}).ok());
}

TEST(ValidateQueries, ReportsOffendingIndex) {
  auto g = GeneratePath(10);
  Status st = ValidateQueries(*g, {{0, 1, 3}, {2, 2, 3}});
  EXPECT_NE(st.message().find("query 1"), std::string::npos);
}

}  // namespace
}  // namespace hcpath
