#include "core/path_enum.h"

#include <gtest/gtest.h>

#include "bfs/bfs.h"
#include "core/brute_force.h"
#include "graph/generators.h"
#include "test_graphs.h"

namespace hcpath {
namespace {

void ExpectMatchesOracle(const Graph& g, const PathQuery& q,
                         bool optimized) {
  CollectingSink got(1);
  SingleQueryOptions opt;
  opt.optimized_order = optimized;
  ASSERT_TRUE(PathEnumQuery(g, q, opt, 0, &got, nullptr).ok());
  auto expected = BruteForcePaths(g, q);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(got.paths(0).ToSortedVectors(), expected->ToSortedVectors())
      << q.ToString() << " optimized=" << optimized;
}

TEST(PathEnum, MatchesOracleOnPaperExample) {
  Graph g = PaperFigure1Graph();
  for (const PathQuery& q : PaperFigure1Queries()) {
    ExpectMatchesOracle(g, q, false);
    ExpectMatchesOracle(g, q, true);
  }
}

TEST(PathEnum, MatchesOracleOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    auto g = GenerateErdosRenyi(60, 400, rng);
    Rng qrng(seed + 100);
    for (int i = 0; i < 10; ++i) {
      VertexId s = static_cast<VertexId>(qrng.NextBounded(60));
      VertexId t = static_cast<VertexId>(qrng.NextBounded(60));
      if (s == t) continue;
      int k = static_cast<int>(1 + qrng.NextBounded(6));
      ExpectMatchesOracle(*g, {s, t, k}, false);
      ExpectMatchesOracle(*g, {s, t, k}, true);
    }
  }
}

TEST(PathEnum, KEqualsOneFindsDirectEdgeOnly) {
  Graph g = PaperFigure1Graph();
  CollectingSink sink(1);
  ASSERT_TRUE(PathEnumQuery(g, {0, 1, 1}, {}, 0, &sink, nullptr).ok());
  ASSERT_EQ(sink.paths(0).size(), 1u);
  EXPECT_EQ(sink.paths(0).Length(0), 1u);
  CollectingSink none(1);
  ASSERT_TRUE(PathEnumQuery(g, {0, 9, 1}, {}, 0, &none, nullptr).ok());
  EXPECT_EQ(none.paths(0).size(), 0u);
}

TEST(PathEnum, UnreachableTargetYieldsNothingQuickly) {
  auto g = GeneratePath(10);
  CollectingSink sink(1);
  BatchStats stats;
  ASSERT_TRUE(PathEnumQuery(*g, {9, 0, 8}, {}, 0, &sink, &stats).ok());
  EXPECT_EQ(sink.paths(0).size(), 0u);
  EXPECT_EQ(stats.edges_expanded, 0u);  // early-out before any search
}

TEST(PathEnum, StatsArePopulated) {
  Graph g = PaperFigure1Graph();
  CountingSink sink(1);
  BatchStats stats;
  ASSERT_TRUE(PathEnumQuery(g, {0, 11, 5}, {}, 0, &sink, &stats).ok());
  EXPECT_EQ(stats.paths_emitted, 3u);
  EXPECT_GT(stats.edges_expanded, 0u);
  EXPECT_GT(stats.total_seconds, 0.0);
}

TEST(PathEnum, MaxPathsGivesResourceExhausted) {
  auto g = GenerateComplete(10);
  CountingSink sink(1);
  SingleQueryOptions opt;
  opt.max_paths = 5;
  Status st = PathEnumQuery(*g, {0, 9, 5}, opt, 0, &sink, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(ChooseForwardBudget, BalancedWithoutOptimization) {
  auto g = GeneratePath(10);
  VertexDistMap fs = HopCappedBfs(*g, 0, 7, Direction::kForward);
  VertexDistMap tt = HopCappedBfs(*g, 7, 7, Direction::kBackward);
  EXPECT_EQ(ChooseForwardBudget(fs, tt, 7, false), 4);
  EXPECT_EQ(ChooseForwardBudget(fs, tt, 6, false), 3);
}

TEST(ChooseForwardBudget, OptimizedShiftsTowardCheaperSide) {
  // Forward side: 4-ary out-tree rooted at s (reach grows exponentially
  // per level). Backward side of the deepest leaf: a single chain. Every
  // forward hop costs ~4x more reach, so the optimizer should hand the
  // forward side as few hops as the window allows.
  GraphBuilder b;
  VertexId next = 1;
  std::vector<VertexId> frontier = {0};
  VertexId deepest = 0;
  for (int level = 0; level < 6; ++level) {
    std::vector<VertexId> children;
    for (VertexId u : frontier) {
      for (int c = 0; c < (level < 3 ? 4 : 1); ++c) {
        b.AddEdge(u, next);
        children.push_back(next);
        ++next;
      }
    }
    frontier = children;
    deepest = frontier.front();
  }
  Graph g = *b.Build();
  VertexDistMap fs = HopCappedBfs(g, 0, 6, Direction::kForward);
  VertexDistMap tt = HopCappedBfs(g, deepest, 6, Direction::kBackward);
  Hop optimized = ChooseForwardBudget(fs, tt, 6, true);
  EXPECT_LT(optimized, 3);  // balanced would be 3
  EXPECT_GE(optimized, 1);  // window floor
}

}  // namespace
}  // namespace hcpath
