#include "service/fault_injector.h"

#include <gtest/gtest.h>

namespace hcpath {
namespace {

TEST(FaultInjector, InertWhenEmpty) {
  FaultInjector fi;
  for (int shard = 0; shard < 4; ++shard) {
    for (uint64_t d = 0; d < 10; ++d) {
      FaultDecision dec = fi.OnDispatch(shard, d);
      EXPECT_FALSE(dec.crash);
      EXPECT_FALSE(dec.drop_reply);
      EXPECT_FALSE(dec.fail);
      EXPECT_EQ(dec.hang_seconds, 0.0);
      EXPECT_EQ(dec.slow_factor, 1.0);
    }
  }
  EXPECT_TRUE(fi.Exhausted());
}

TEST(FaultInjector, FailNThenSucceed) {
  FaultInjector fi;
  FaultRule r;
  r.shard = 1;
  r.at_dispatch = 2;
  r.count = 3;
  r.kind = FaultKind::kFailN;
  fi.AddRule(r);

  // Dispatches 0-1 clean, 2-4 fail, 5+ clean again.
  EXPECT_FALSE(fi.OnDispatch(1, 0).fail);
  EXPECT_FALSE(fi.OnDispatch(1, 1).fail);
  EXPECT_TRUE(fi.OnDispatch(1, 2).fail);
  EXPECT_TRUE(fi.OnDispatch(1, 3).fail);
  EXPECT_FALSE(fi.Exhausted());
  EXPECT_TRUE(fi.OnDispatch(1, 4).fail);
  EXPECT_TRUE(fi.Exhausted());
  EXPECT_FALSE(fi.OnDispatch(1, 5).fail);
  EXPECT_EQ(fi.fired(FaultKind::kFailN), 3u);

  // Another shard is never affected.
  EXPECT_FALSE(fi.OnDispatch(0, 2).fail);
}

TEST(FaultInjector, CrashHangDropSlowParameters) {
  FaultInjector fi({
      FaultRule{/*shard=*/0, /*at_dispatch=*/0, /*count=*/1,
                FaultKind::kCrash, 0.0, 1.0},
      FaultRule{/*shard=*/1, /*at_dispatch=*/0, /*count=*/1, FaultKind::kHang,
                /*seconds=*/2.5, 1.0},
      FaultRule{/*shard=*/2, /*at_dispatch=*/0, /*count=*/1,
                FaultKind::kDropReply, 0.0, 1.0},
      FaultRule{/*shard=*/3, /*at_dispatch=*/0, /*count=*/2, FaultKind::kSlow,
                0.0, /*factor=*/8.0},
  });
  EXPECT_TRUE(fi.OnDispatch(0, 0).crash);
  EXPECT_EQ(fi.OnDispatch(1, 0).hang_seconds, 2.5);
  EXPECT_TRUE(fi.OnDispatch(2, 0).drop_reply);
  EXPECT_EQ(fi.OnDispatch(3, 0).slow_factor, 8.0);
  EXPECT_EQ(fi.OnDispatch(3, 1).slow_factor, 8.0);
  EXPECT_EQ(fi.OnDispatch(3, 2).slow_factor, 1.0);
  EXPECT_TRUE(fi.Exhausted());
  EXPECT_EQ(fi.fired(FaultKind::kSlow), 2u);
}

TEST(FaultInjector, FirstMatchingRuleWins) {
  FaultInjector fi({
      FaultRule{0, 0, 1, FaultKind::kFailN, 0.0, 1.0},
      FaultRule{0, 0, 1, FaultKind::kCrash, 0.0, 1.0},
  });
  FaultDecision d = fi.OnDispatch(0, 0);
  EXPECT_TRUE(d.fail);
  EXPECT_FALSE(d.crash);  // second rule shadowed for this dispatch
  // The shadowed crash rule still covers its window; dispatch 0 is gone,
  // so it never fires and the script is not exhausted.
  EXPECT_FALSE(fi.Exhausted());
}

TEST(FaultInjector, DeterministicReplay) {
  // The decision stream is a pure function of (script, dispatch ordinals):
  // two injectors with the same script replay identically.
  std::vector<FaultRule> script = {
      FaultRule{0, 1, 2, FaultKind::kFailN, 0.0, 1.0},
      FaultRule{1, 0, 1, FaultKind::kSlow, 0.0, 4.0},
  };
  FaultInjector a(script), b(script);
  for (int shard = 0; shard < 2; ++shard) {
    for (uint64_t d = 0; d < 5; ++d) {
      FaultDecision da = a.OnDispatch(shard, d);
      FaultDecision db = b.OnDispatch(shard, d);
      EXPECT_EQ(da.fail, db.fail);
      EXPECT_EQ(da.crash, db.crash);
      EXPECT_EQ(da.slow_factor, db.slow_factor);
    }
  }
}

TEST(FaultInjector, DebugStringNamesRules) {
  FaultInjector fi({FaultRule{2, 3, 1, FaultKind::kDropReply, 0.0, 1.0}});
  const std::string s = fi.DebugString();
  EXPECT_NE(s.find("drop-reply@shard2"), std::string::npos);
}

}  // namespace
}  // namespace hcpath
