#include "util/status.h"

#include <gtest/gtest.h>

#include "service/admission_status.h"

namespace hcpath {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::InvalidArgument("bad k").message(), "bad k");
}

TEST(Status, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("missing").ToString(), "NotFound: missing");
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::InvalidArgument("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chained(int x) {
  HCPATH_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacros, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kOutOfRange);
}

TEST(Status, NewCodesCarryCodeAndName) {
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("gone").ToString(), "Unavailable: gone");
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
}

TEST(Status, RetryableClassification) {
  // Transient system state: pressure drains, shards heal, deadlines can be
  // re-issued.
  EXPECT_TRUE(Status::ResourceExhausted("x").retryable());
  EXPECT_TRUE(Status::Unavailable("x").retryable());
  EXPECT_TRUE(Status::DeadlineExceeded("x").retryable());
  // Properties of the request / durable state: deterministic on retry.
  EXPECT_FALSE(Status::InvalidArgument("x").retryable());
  EXPECT_FALSE(Status::NotFound("x").retryable());
  EXPECT_FALSE(Status::OutOfRange("x").retryable());
  EXPECT_FALSE(Status::FailedPrecondition("x").retryable());
  EXPECT_FALSE(Status::Internal("x").retryable());
  EXPECT_FALSE(Status::IOError("x").retryable());
  // OK is not "retryable": there is nothing to retry.
  EXPECT_FALSE(Status::OK().retryable());
  EXPECT_FALSE(StatusCodeRetryable(StatusCode::kOk));
}

TEST(AdmissionStatus, CanonicalConstructorsKeepLegacyMessages) {
  const Status full = QueueFullStatus(12, 3456);
  EXPECT_TRUE(IsQueueFull(full));
  EXPECT_TRUE(full.retryable());
  EXPECT_EQ(full.message(),
            "admission queue full: 12 queries / 3456 bytes queued");

  const Status shed = ShedStatus("tenant-a", 2.0);
  EXPECT_TRUE(IsShed(shed));
  EXPECT_TRUE(shed.retryable());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);

  const Status lag = SnapshotLagStatus(3, 9, 4, "tenant-b");
  EXPECT_TRUE(IsSnapshotLag(lag));
  EXPECT_FALSE(lag.retryable());
  EXPECT_EQ(lag.message(),
            "query snapshot over max lag: pinned epoch 3 lags current epoch "
            "9 beyond max_snapshot_lag 4 (tenant \"tenant-b\")");

  const Status down = ShuttingDownStatus();
  EXPECT_FALSE(down.retryable());
  EXPECT_EQ(down.message(), "PathEngine is shutting down");
}

TEST(AdmissionStatus, ShardedDispatchOutcomes) {
  const Status un = ShardUnavailableStatus(2, "crashed mid-dispatch");
  EXPECT_TRUE(IsShardUnavailable(un));
  EXPECT_TRUE(un.retryable());
  EXPECT_EQ(un.message(), "shard 2 unavailable: crashed mid-dispatch");

  const Status dl = QueryDeadlineStatus(1.5);
  EXPECT_TRUE(IsQueryDeadline(dl));
  EXPECT_TRUE(dl.retryable());
  EXPECT_EQ(dl.code(), StatusCode::kDeadlineExceeded);

  // Recognizers demand both the code and the prefix: a hand-rolled status
  // with the wrong code must not match.
  EXPECT_FALSE(IsShardUnavailable(Status::Internal("shard 2 unavailable: x")));
  EXPECT_FALSE(IsQueueFull(Status::Internal("admission queue full: x")));
}

}  // namespace
}  // namespace hcpath
