#include "util/status.h"

#include <gtest/gtest.h>

namespace hcpath {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::InvalidArgument("bad k").message(), "bad k");
}

TEST(Status, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("missing").ToString(), "NotFound: missing");
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::InvalidArgument("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chained(int x) {
  HCPATH_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacros, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace hcpath
