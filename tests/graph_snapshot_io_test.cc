#include "graph/graph_snapshot_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/batch_enum.h"
#include "core/path.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_store.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace hcpath {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Reads the whole file into a byte string.
std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Patches a little-endian u64 field in a raw snapshot image and repairs
/// the header checksum so only the targeted corruption is visible.
void PatchHeaderField(std::string* bytes, size_t offset, uint64_t value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
  uint64_t hc = Checksum64(bytes->data(), kSnapshotHeaderChecksumOffset, 0);
  std::memcpy(bytes->data() + kSnapshotHeaderChecksumOffset, &hc, sizeof(hc));
}

TEST(GraphSnapshotIO, RoundTripMmapStructuralEquality) {
  Rng rng(11);
  auto g = GenerateBarabasiAlbert(500, 6, rng);
  std::string path = TempPath("snap_rt.hcs");
  GraphSnapshotInfo save_info;
  ASSERT_TRUE(SaveGraphSnapshot(*g, path, 0, &save_info).ok());

  GraphSnapshotInfo load_info;
  auto loaded = LoadGraphSnapshot(path, {}, &load_info);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->uses_external_storage());
  EXPECT_FALSE(g->uses_external_storage());

  // Structural equality: same dimensions, same edges, same per-direction
  // views, same content checksum as both the saved info and the original.
  EXPECT_EQ(loaded->NumVertices(), g->NumVertices());
  EXPECT_EQ(loaded->NumEdges(), g->NumEdges());
  EXPECT_EQ(loaded->Edges(), g->Edges());
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    ASSERT_TRUE(std::equal(loaded->InNeighbors(v).begin(),
                           loaded->InNeighbors(v).end(),
                           g->InNeighbors(v).begin(),
                           g->InNeighbors(v).end()));
  }
  EXPECT_EQ(GraphContentChecksum(*loaded), GraphContentChecksum(*g));
  EXPECT_EQ(save_info.payload_checksum, GraphContentChecksum(*g));
  EXPECT_EQ(load_info.payload_checksum, save_info.payload_checksum);
  EXPECT_EQ(load_info.num_edges, g->NumEdges());

  // Differential: the enumeration pipeline must be byte-identical on the
  // mmapped graph — storage mode is invisible to every engine.
  auto queries = GenerateRandomQueries(*g, 8, QueryGenOptions{}, rng);
  ASSERT_TRUE(queries.ok()) << queries.status();
  BatchOptions opt;
  CollectingSink ref(queries->size()), got(queries->size());
  ASSERT_TRUE(RunBatchEnum(*g, *queries, opt, true, &ref, nullptr).ok());
  ASSERT_TRUE(RunBatchEnum(*loaded, *queries, opt, true, &got, nullptr).ok());
  for (size_t i = 0; i < queries->size(); ++i) {
    EXPECT_EQ(got.paths(i).ToSortedVectors(), ref.paths(i).ToSortedVectors());
  }
  std::remove(path.c_str());
}

TEST(GraphSnapshotIO, CopyOfMmappedGraphSharesMapping) {
  Rng rng(12);
  auto g = GenerateErdosRenyi(100, 400, rng);
  std::string path = TempPath("snap_copy.hcs");
  ASSERT_TRUE(SaveGraphSnapshot(*g, path).ok());
  auto loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // Deleting the file while mapped is safe (POSIX inode lifetime), and a
  // copy must keep the mapping alive after the original dies.
  std::remove(path.c_str());
  Graph copy = *loaded;
  EXPECT_TRUE(copy.uses_external_storage());
  *loaded = Graph();  // drop the original's pin
  EXPECT_EQ(copy.Edges(), g->Edges());
}

TEST(GraphSnapshotIO, EmptyAndDefaultGraphRoundTrip) {
  // A default-constructed graph serializes as the canonical empty CSR.
  Graph empty;
  std::string path = TempPath("snap_empty.hcs");
  ASSERT_TRUE(SaveGraphSnapshot(empty, path).ok());
  auto loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumVertices(), 0u);
  EXPECT_EQ(loaded->NumEdges(), 0u);
  std::remove(path.c_str());
}

TEST(GraphSnapshotIO, IsolatedVerticesPreserved) {
  GraphBuilder b(50);  // vertices 3.. have no edges
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  auto built = b.Build();
  ASSERT_TRUE(built.ok()) << built.status();
  const Graph& g = *built;
  std::string path = TempPath("snap_iso.hcs");
  ASSERT_TRUE(SaveGraphSnapshot(g, path).ok());
  auto loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumVertices(), 50u);
  EXPECT_EQ(loaded->Edges(), g.Edges());
  std::remove(path.c_str());
}

TEST(GraphSnapshotIO, OverlayFoldedOnSave) {
  // A store with a huge compaction threshold keeps an overlay alive;
  // SaveSnapshot must fold it, and the loaded graph must equal the
  // overlay's logical edge set.
  Rng rng(13);
  auto seed = GenerateErdosRenyi(120, 500, rng);
  GraphStoreOptions opt;
  opt.compaction_threshold = 100.0;
  GraphStore store(*seed, opt);
  std::vector<EdgeUpdate> ups = {EdgeUpdate::Add(0, 99),
                                 EdgeUpdate::Add(99, 100),
                                 EdgeUpdate::Remove(0, 1)};
  auto res = store.ApplyUpdates(ups);
  ASSERT_TRUE(res.ok()) << res.status();
  ASSERT_TRUE(res->used_overlay);
  ASSERT_NE(store.Current()->graph.overlay(), nullptr);

  std::string path = TempPath("snap_overlay.hcs");
  ASSERT_TRUE(store.SaveSnapshot(path).ok());
  GraphSnapshotInfo info;
  auto loaded = LoadGraphSnapshot(path, {}, &info);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(info.epoch, 1u);
  EXPECT_EQ(loaded->overlay(), nullptr);
  EXPECT_EQ(loaded->Edges(), store.Current()->graph.Edges());
  // GraphContentChecksum folds overlays the same way.
  EXPECT_EQ(GraphContentChecksum(*loaded),
            GraphContentChecksum(store.Current()->graph));
  std::remove(path.c_str());
}

TEST(GraphSnapshotIO, OpenSnapshotResumesEpochAndUpdates) {
  Rng rng(14);
  auto seed = GenerateErdosRenyi(80, 300, rng);
  GraphStore store(*seed);
  std::vector<EdgeUpdate> u1 = {EdgeUpdate::Add(0, 50)};
  std::vector<EdgeUpdate> u2 = {EdgeUpdate::Add(1, 60)};
  ASSERT_TRUE(store.ApplyUpdates(u1).ok());
  ASSERT_TRUE(store.ApplyUpdates(u2).ok());
  ASSERT_EQ(store.epoch(), 2u);

  std::string path = TempPath("snap_store.hcs");
  ASSERT_TRUE(store.SaveSnapshot(path).ok());

  auto reopened = GraphStore::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->epoch(), 2u);
  EXPECT_EQ((*reopened)->Current()->graph.Edges(),
            store.Current()->graph.Edges());
  EXPECT_TRUE((*reopened)->Current()->graph.uses_external_storage());

  // A reopened store keeps updating normally — including against the
  // mmapped seed (the overlay path reads it only through accessors).
  std::vector<EdgeUpdate> u3 = {EdgeUpdate::Add(2, 70),
                                EdgeUpdate::Remove(0, 50)};
  auto ra = (*reopened)->ApplyUpdates(u3);
  auto rb = store.ApplyUpdates(u3);
  ASSERT_TRUE(ra.ok()) << ra.status();
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_EQ(ra->snapshot->epoch, 3u);
  EXPECT_EQ(ra->snapshot->graph.Edges(), rb->snapshot->graph.Edges());
  std::remove(path.c_str());
}

TEST(GraphSnapshotIO, TruncatedFileIsInvalidArgument) {
  Rng rng(15);
  auto g = GenerateErdosRenyi(60, 240, rng);
  std::string path = TempPath("snap_trunc.hcs");
  ASSERT_TRUE(SaveGraphSnapshot(*g, path).ok());
  const auto full = std::filesystem::file_size(path);
  for (uintmax_t keep : {full / 2, full - 1, uintmax_t{100}, uintmax_t{0}}) {
    std::filesystem::resize_file(path, keep);
    auto loaded = LoadGraphSnapshot(path);
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << "keep=" << keep << ": " << loaded.status();
  }
  std::remove(path.c_str());
}

TEST(GraphSnapshotIO, BadMagicIsInvalidArgument) {
  Rng rng(16);
  auto g = GenerateErdosRenyi(40, 160, rng);
  std::string path = TempPath("snap_magic.hcs");
  ASSERT_TRUE(SaveGraphSnapshot(*g, path).ok());
  std::string bytes = Slurp(path);
  bytes[0] ^= 0x5A;
  Spit(path, bytes);
  auto loaded = LoadGraphSnapshot(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GraphSnapshotIO, HeaderCorruptionIsInvalidArgument) {
  // Flipping a header byte without repairing the header checksum must be
  // caught by the checksum, whatever the byte was.
  Rng rng(17);
  auto g = GenerateErdosRenyi(40, 160, rng);
  std::string path = TempPath("snap_hdr.hcs");
  ASSERT_TRUE(SaveGraphSnapshot(*g, path).ok());
  std::string pristine = Slurp(path);
  for (size_t off : {kSnapshotVersionOffset, kSnapshotNumVerticesOffset,
                     kSnapshotNumEdgesOffset, kSnapshotPayloadBytesOffset}) {
    std::string bytes = pristine;
    bytes[off] ^= 0xFF;
    Spit(path, bytes);
    auto loaded = LoadGraphSnapshot(path);
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << "offset " << off;
  }
  std::remove(path.c_str());
}

TEST(GraphSnapshotIO, PayloadCorruptionCaughtByVerify) {
  Rng rng(18);
  auto g = GenerateErdosRenyi(60, 240, rng);
  std::string path = TempPath("snap_payload.hcs");
  ASSERT_TRUE(SaveGraphSnapshot(*g, path).ok());
  std::string bytes = Slurp(path);
  // Flip one adjacency byte deep in the payload.
  bytes[bytes.size() - 3] ^= 0x01;
  Spit(path, bytes);
  auto verified = LoadGraphSnapshot(path);
  EXPECT_EQ(verified.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(verified.status().message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GraphSnapshotIO, OversizedHeaderCountsRejectedBeforeAllocation) {
  // A consistent header checksum with hostile n/m (petabyte-scale counts)
  // must be rejected fast by the file-size bound — this is the snapshot
  // analogue of the edge-list OOM bugfix.
  Rng rng(19);
  auto g = GenerateErdosRenyi(40, 160, rng);
  std::string path = TempPath("snap_counts.hcs");
  ASSERT_TRUE(SaveGraphSnapshot(*g, path).ok());
  std::string pristine = Slurp(path);

  std::string bytes = pristine;
  PatchHeaderField(&bytes, kSnapshotNumEdgesOffset, uint64_t{1} << 50);
  Spit(path, bytes);
  auto loaded = LoadGraphSnapshot(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);

  bytes = pristine;
  PatchHeaderField(&bytes, kSnapshotNumVerticesOffset, uint64_t{1} << 40);
  Spit(path, bytes);
  loaded = LoadGraphSnapshot(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(GraphSnapshotIO, UnwritablePathIsIOError) {
  Rng rng(20);
  auto g = GenerateErdosRenyi(10, 30, rng);
  EXPECT_EQ(SaveGraphSnapshot(*g, "/no/such/dir/snap.hcs").code(),
            StatusCode::kIOError);
  EXPECT_EQ(LoadGraphSnapshot("/no/such/file.hcs").status().code(),
            StatusCode::kIOError);
  EXPECT_EQ(ReadGraphSnapshotInfo("/no/such/file.hcs").status().code(),
            StatusCode::kIOError);
}

TEST(GraphSnapshotIO, ReadInfoMatchesSave) {
  Rng rng(21);
  auto g = GenerateErdosRenyi(70, 280, rng);
  std::string path = TempPath("snap_info.hcs");
  GraphSnapshotInfo save_info;
  ASSERT_TRUE(SaveGraphSnapshot(*g, path, 7, &save_info).ok());
  auto info = ReadGraphSnapshotInfo(path);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->epoch, 7u);
  EXPECT_EQ(info->num_vertices, g->NumVertices());
  EXPECT_EQ(info->num_edges, g->NumEdges());
  EXPECT_EQ(info->payload_checksum, save_info.payload_checksum);
  EXPECT_EQ(info->file_bytes, save_info.file_bytes);
  std::remove(path.c_str());
}

/// Fuzz (rides the fuzz ctest label): random byte mutations and random
/// truncations of a valid snapshot must never crash the loader — every
/// outcome is a clean Status, and when a mutation happens to slip past
/// validation (e.g. it only touched padding) the loaded graph must still
/// equal the original.
TEST(GraphSnapshotIO, MutationFuzzLoadsCleanly) {
  Rng rng(22);
  auto g = GenerateErdosRenyi(90, 360, rng);
  std::string path = TempPath("snap_fuzz.hcs");
  ASSERT_TRUE(SaveGraphSnapshot(*g, path).ok());
  const std::string pristine = Slurp(path);
  const auto original_edges = g->Edges();

  const int rounds = 300;
  int survived = 0;
  for (int round = 0; round < rounds; ++round) {
    std::string bytes = pristine;
    if (round % 5 == 4) {
      bytes.resize(rng.Next() % (bytes.size() + 1));  // random truncation
    } else {
      const int flips = 1 + static_cast<int>(rng.Next() % 8);
      for (int f = 0; f < flips; ++f) {
        size_t pos = static_cast<size_t>(rng.Next() % bytes.size());
        bytes[pos] ^= static_cast<char>(1 + (rng.Next() % 255));
      }
    }
    Spit(path, bytes);
    auto loaded = LoadGraphSnapshot(path);
    if (loaded.ok()) {
      ++survived;
      EXPECT_EQ(loaded->Edges(), original_edges)
          << "round " << round
          << ": a mutation that passes validation must be content-neutral";
    }
  }
  // Sanity: the vast majority of random mutations must be rejected (the
  // checksums are doing their job). Padding-only flips may survive.
  EXPECT_LT(survived, rounds / 10);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hcpath
