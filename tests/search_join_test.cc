#include <gtest/gtest.h>

#include "bfs/bfs.h"
#include "core/join.h"
#include "core/search.h"
#include "graph/generators.h"
#include "test_graphs.h"

namespace hcpath {
namespace {

TEST(HalfSearch, EnumeratesAllPrefixesWithinBudget) {
  auto g = GeneratePath(6);
  HalfSearchSpec spec;
  spec.start = 0;
  spec.budget = 3;
  spec.dir = Direction::kForward;
  PathSet out;
  ASSERT_TRUE(RunHalfSearch(*g, spec, &out, nullptr).ok());
  // Trivial + 1-hop + 2-hop + 3-hop prefixes.
  EXPECT_EQ(out.size(), 4u);
}

TEST(HalfSearch, SlackPruningCutsDeadBranches) {
  Graph g = PaperFigure1Graph();
  // Example 3.1: query q3(v4, v14, 4), index dist(v, v14).
  VertexDistMap to_t = HopCappedBfs(g, 14, 4, Direction::kBackward);
  TargetSlack slack[] = {{&to_t, 4}};
  HalfSearchSpec spec;
  spec.start = 4;
  spec.budget = 4;
  spec.dir = Direction::kForward;
  spec.slacks = slack;
  PathSet out;
  BatchStats stats;
  ASSERT_TRUE(RunHalfSearch(g, spec, &out, &stats).ok());
  // v8 must be pruned (dist(v8, v14) = inf) and v15 only reachable while
  // budget remains; prune counter must fire.
  EXPECT_GT(stats.edges_pruned, 0u);
  for (size_t i = 0; i < out.size(); ++i) {
    for (VertexId v : out[i]) EXPECT_NE(v, 8u);
  }
}

TEST(HalfSearch, GlobalMinPruningIsWeakerButSound) {
  Graph g = PaperFigure1Graph();
  std::vector<Hop> min_to_t = HopCappedBfsDense(g, 14, 4,
                                                Direction::kBackward);
  HalfSearchSpec spec;
  spec.start = 4;
  spec.budget = 4;
  spec.dir = Direction::kForward;
  spec.global_min = &min_to_t;
  spec.global_max_slack = 4;
  PathSet out;
  ASSERT_TRUE(RunHalfSearch(g, spec, &out, nullptr).ok());
  // The two q3 result paths (v4..v6 prefixes of length 4 ending at 14) must
  // be present among prefixes.
  bool found = false;
  for (size_t i = 0; i < out.size(); ++i) {
    PathView p = out[i];
    if (p.size() == 5 && p.back() == 14) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(HalfSearch, FilterForJoinStoresOnlyUseful) {
  auto g = GenerateGrid(3, 3);
  HalfSearchSpec spec;
  spec.start = 0;
  spec.budget = 2;
  spec.dir = Direction::kForward;
  spec.filter_for_join = true;
  spec.store_target = 8;
  PathSet out;
  ASSERT_TRUE(RunHalfSearch(*g, spec, &out, nullptr).ok());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(out.Length(i) == 2 || out[i].back() == 8u);
  }
}

TEST(HalfSearch, MaxPathsFailsCleanly) {
  auto g = GenerateComplete(8);
  HalfSearchSpec spec;
  spec.start = 0;
  spec.budget = 4;
  spec.dir = Direction::kForward;
  spec.max_paths = 10;
  PathSet out;
  Status st = RunHalfSearch(*g, spec, &out, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(HalfSearch, DepSpliceMatchesDirectSearch) {
  Graph g = PaperFigure1Graph();
  // Cache the HC-s path results of q_{v9,2} and splice them into a search
  // from v4 with budget 3: results must equal the direct search.
  HalfSearchSpec dep_spec;
  dep_spec.start = 9;
  dep_spec.budget = 2;
  dep_spec.dir = Direction::kForward;
  PathSet dep_paths;
  ASSERT_TRUE(RunHalfSearch(g, dep_spec, &dep_paths, nullptr).ok());

  SearchDep dep{9, 2, &dep_paths};
  HalfSearchSpec spec;
  spec.start = 4;
  spec.budget = 3;
  spec.dir = Direction::kForward;
  spec.deps = std::span<const SearchDep>(&dep, 1);
  PathSet with_splice;
  BatchStats stats;
  ASSERT_TRUE(RunHalfSearch(g, spec, &with_splice, &stats).ok());
  EXPECT_GT(stats.shortcut_splices, 0u);

  HalfSearchSpec direct = spec;
  direct.deps = {};
  PathSet without;
  ASSERT_TRUE(RunHalfSearch(g, direct, &without, nullptr).ok());
  EXPECT_EQ(with_splice.Fingerprint(), without.Fingerprint());
}

TEST(Join, CanonicalSplitProducesNoDuplicates) {
  auto g = GenerateComplete(5);
  VertexDistMap from_s = HopCappedBfs(*g, 0, 4, Direction::kForward);
  VertexDistMap to_t = HopCappedBfs(*g, 4, 4, Direction::kBackward);
  TargetSlack fs[] = {{&to_t, 4}};
  TargetSlack bs[] = {{&from_s, 4}};

  PathSet fwd, bwd;
  HalfSearchSpec f;
  f.start = 0;
  f.budget = 2;
  f.dir = Direction::kForward;
  f.slacks = fs;
  ASSERT_TRUE(RunHalfSearch(*g, f, &fwd, nullptr).ok());
  HalfSearchSpec b;
  b.start = 4;
  b.budget = 2;
  b.dir = Direction::kBackward;
  b.slacks = bs;
  ASSERT_TRUE(RunHalfSearch(*g, b, &bwd, nullptr).ok());

  JoinSpec join;
  join.forward = &fwd;
  join.backward = &bwd;
  join.s = 0;
  join.t = 4;
  join.hf = 2;
  join.hb = 2;
  CollectingSink sink(1);
  auto emitted = JoinAndEmit(join, 0, &sink, nullptr);
  ASSERT_TRUE(emitted.ok());

  auto sorted = sink.paths(0).ToSortedVectors();
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_NE(sorted[i - 1], sorted[i]) << "duplicate path emitted";
  }
  // Every emitted path simple, correct endpoints, <= 4 hops.
  for (const auto& p : sorted) {
    EXPECT_TRUE(IsSimplePath(p));
    EXPECT_EQ(p.front(), 0u);
    EXPECT_EQ(p.back(), 4u);
    EXPECT_LE(p.size() - 1, 4u);
  }
}

TEST(Join, RespectsMaxPaths) {
  auto g = GenerateComplete(6);
  PathSet fwd, bwd;
  HalfSearchSpec f;
  f.start = 0;
  f.budget = 2;
  f.dir = Direction::kForward;
  ASSERT_TRUE(RunHalfSearch(*g, f, &fwd, nullptr).ok());
  HalfSearchSpec b;
  b.start = 5;
  b.budget = 2;
  b.dir = Direction::kBackward;
  ASSERT_TRUE(RunHalfSearch(*g, b, &bwd, nullptr).ok());
  JoinSpec join;
  join.forward = &fwd;
  join.backward = &bwd;
  join.s = 0;
  join.t = 5;
  join.hf = 2;
  join.hb = 2;
  join.max_paths = 3;
  CountingSink sink(1);
  auto emitted = JoinAndEmit(join, 0, &sink, nullptr);
  EXPECT_EQ(emitted.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(sink.counts()[0], 3u);
}

TEST(Join, EmptyHalvesYieldNothing) {
  PathSet fwd, bwd;
  JoinSpec join;
  join.forward = &fwd;
  join.backward = &bwd;
  join.s = 0;
  join.t = 1;
  join.hf = 2;
  join.hb = 2;
  CountingSink sink(1);
  auto emitted = JoinAndEmit(join, 0, &sink, nullptr);
  ASSERT_TRUE(emitted.ok());
  EXPECT_EQ(*emitted, 0u);
}

}  // namespace
}  // namespace hcpath
