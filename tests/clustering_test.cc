#include "core/clustering.h"

#include <gtest/gtest.h>

#include "core/basic_enum.h"
#include "test_graphs.h"

namespace hcpath {
namespace {

TEST(Clustering, MergesOnlyAboveGamma) {
  SimilarityMatrix sim(4);
  sim.Set(0, 1, 0.9);
  sim.Set(2, 3, 0.85);
  sim.Set(0, 2, 0.1);
  auto clusters = ClusterQueries(sim, 0.5);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(clusters[1], (std::vector<size_t>{2, 3}));
}

TEST(Clustering, GammaOneKeepsSingletons) {
  SimilarityMatrix sim(3);
  sim.Set(0, 1, 0.99);
  auto clusters = ClusterQueries(sim, 1.0);
  EXPECT_EQ(clusters.size(), 3u);
}

TEST(Clustering, GammaZeroMergesConnectedQueries) {
  SimilarityMatrix sim(3);
  sim.Set(0, 1, 0.4);
  sim.Set(1, 2, 0.4);
  sim.Set(0, 2, 0.4);
  auto clusters = ClusterQueries(sim, 0.0);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 3u);
}

TEST(Clustering, AverageLinkageStopsChaining) {
  // 0-1 similar, 2 similar to 1 only; with average linkage and a high
  // threshold, 2 must not chain into {0,1} because δ({0,1},{2}) averages
  // in the dissimilar pair (0,2).
  SimilarityMatrix sim(3);
  sim.Set(0, 1, 0.95);
  sim.Set(1, 2, 0.8);
  sim.Set(0, 2, 0.0);
  auto clusters = ClusterQueries(sim, 0.7);
  // δ({0,1},{2}) = (0.8 + 0.0)/2 = 0.4 < 0.7 -> stays out.
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(clusters[1], (std::vector<size_t>{2}));
}

TEST(Clustering, EveryQueryInExactlyOneCluster) {
  SimilarityMatrix sim(10);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = i + 1; j < 10; ++j) {
      sim.Set(i, j, (i / 5 == j / 5) ? 0.9 : 0.05);
    }
  }
  auto clusters = ClusterQueries(sim, 0.5);
  std::vector<int> seen(10, 0);
  for (const auto& c : clusters) {
    for (size_t q : c) ++seen[q];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(Clustering, PaperExampleFormsTwoGroups) {
  // Example 4.1: with γ = 0.8, Q splits into {q0, q1, q2} and {q3, q4}.
  Graph g = PaperFigure1Graph();
  auto queries = PaperFigure1Queries();
  DistanceIndex index;
  BuildBatchIndex(g, queries, &index, nullptr);
  SimilarityMatrix sim =
      ComputeSimilarityMatrix(g, queries, index, SimilarityMode::kExact);
  auto clusters = ClusterQueries(sim, 0.8);
  ASSERT_EQ(clusters.size(), 2u);
  // Order-insensitive comparison.
  std::vector<std::vector<size_t>> expect = {{0, 1, 2}, {3, 4}};
  EXPECT_TRUE((clusters[0] == expect[0] && clusters[1] == expect[1]) ||
              (clusters[0] == expect[1] && clusters[1] == expect[0]))
      << "got " << clusters.size() << " clusters";
}

TEST(Clustering, SingleQueryTrivial) {
  SimilarityMatrix sim(1);
  auto clusters = ClusterQueries(sim, 0.5);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], (std::vector<size_t>{0}));
}

}  // namespace
}  // namespace hcpath
