#include "core/similarity.h"

#include <gtest/gtest.h>

#include "core/basic_enum.h"
#include "graph/generators.h"
#include "test_graphs.h"

namespace hcpath {
namespace {

SimilarityMatrix MatrixFor(const Graph& g,
                           const std::vector<PathQuery>& queries,
                           SimilarityMode mode) {
  DistanceIndex index;
  BuildBatchIndex(g, queries, &index, nullptr);
  return ComputeSimilarityMatrix(g, queries, index, mode);
}

TEST(Similarity, IdenticalQueriesHaveMuOne) {
  Graph g = PaperFigure1Graph();
  std::vector<PathQuery> qs = {{0, 11, 5}, {0, 11, 5}};
  SimilarityMatrix sim = MatrixFor(g, qs, SimilarityMode::kExact);
  EXPECT_DOUBLE_EQ(sim.Get(0, 1), 1.0);
}

TEST(Similarity, SubsetQueriesHaveMuOne) {
  // Property (2) of Def 4.5: if P(qA) ⊆ P(qB), µ = 1. A query with smaller
  // k at the same endpoints has subset reach sets.
  Graph g = PaperFigure1Graph();
  std::vector<PathQuery> qs = {{0, 11, 3}, {0, 11, 5}};
  SimilarityMatrix sim = MatrixFor(g, qs, SimilarityMode::kExact);
  EXPECT_DOUBLE_EQ(sim.Get(0, 1), 1.0);
}

TEST(Similarity, DisjointNeighborhoodsHaveMuZero) {
  // Two far-apart segments of a long path graph.
  auto g = GeneratePath(40);
  std::vector<PathQuery> qs = {{0, 3, 3}, {30, 33, 3}};
  SimilarityMatrix sim = MatrixFor(*g, qs, SimilarityMode::kExact);
  EXPECT_DOUBLE_EQ(sim.Get(0, 1), 0.0);
}

TEST(Similarity, MatrixIsSymmetricAndBounded) {
  Rng rng(3);
  auto g = GenerateBarabasiAlbert(500, 4, rng);
  Rng qrng(5);
  std::vector<PathQuery> qs;
  while (qs.size() < 12) {
    VertexId s = static_cast<VertexId>(qrng.NextBounded(500));
    VertexId t = static_cast<VertexId>(qrng.NextBounded(500));
    if (s != t) qs.push_back({s, t, 4});
  }
  SimilarityMatrix sim = MatrixFor(*g, qs, SimilarityMode::kExact);
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(sim.Get(i, i), 1.0);
    for (size_t j = 0; j < qs.size(); ++j) {
      EXPECT_DOUBLE_EQ(sim.Get(i, j), sim.Get(j, i));
      EXPECT_GE(sim.Get(i, j), 0.0);
      EXPECT_LE(sim.Get(i, j), 1.0);
    }
  }
}

TEST(Similarity, PaperExampleQ3Q4AreMaximallySimilar) {
  // Example 4.1: µ(q3, q4) = 1 and {q3,q4} clusters apart from {q0,q1,q2}.
  Graph g = PaperFigure1Graph();
  auto qs = PaperFigure1Queries();
  SimilarityMatrix sim = MatrixFor(g, qs, SimilarityMode::kExact);
  EXPECT_DOUBLE_EQ(sim.Get(3, 4), 1.0);
  EXPECT_GT(sim.Get(0, 1), 0.5);   // q0, q1 strongly overlap
  EXPECT_LT(sim.Get(0, 3), sim.Get(0, 1));
}

TEST(Similarity, SketchApproximatesExact) {
  Rng rng(7);
  auto g = GenerateBarabasiAlbert(2000, 5, rng);
  Rng qrng(9);
  std::vector<PathQuery> qs;
  // Mix of clones (high µ) and random pairs (low µ).
  VertexId hub_s = static_cast<VertexId>(qrng.NextBounded(2000));
  VertexId hub_t = static_cast<VertexId>(qrng.NextBounded(2000));
  if (hub_s == hub_t) hub_t = (hub_t + 1) % 2000;
  for (int i = 0; i < 5; ++i) qs.push_back({hub_s, hub_t, 5});
  while (qs.size() < 10) {
    VertexId s = static_cast<VertexId>(qrng.NextBounded(2000));
    VertexId t = static_cast<VertexId>(qrng.NextBounded(2000));
    if (s != t) qs.push_back({s, t, 5});
  }
  SimilarityMatrix exact = MatrixFor(*g, qs, SimilarityMode::kExact);
  SimilarityMatrix sketch = MatrixFor(*g, qs, SimilarityMode::kSketch);
  for (size_t i = 0; i < qs.size(); ++i) {
    for (size_t j = i + 1; j < qs.size(); ++j) {
      EXPECT_NEAR(sketch.Get(i, j), exact.Get(i, j), 0.25)
          << "pair " << i << "," << j;
    }
  }
  EXPECT_NEAR(sketch.Average(), exact.Average(), 0.1);
}

TEST(Similarity, AverageOfCloneSetIsOne) {
  Graph g = PaperFigure1Graph();
  std::vector<PathQuery> qs(4, PathQuery{0, 11, 5});
  SimilarityMatrix sim = MatrixFor(g, qs, SimilarityMode::kExact);
  EXPECT_DOUBLE_EQ(sim.Average(), 1.0);
}

TEST(OverlapCoefficient, HandComputed) {
  std::vector<VertexId> a = {1, 2, 3, 4};
  std::vector<VertexId> b = {3, 4, 5};
  EXPECT_DOUBLE_EQ(OverlapCoefficient(a, b), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient(a, {}), 0.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient(a, a), 1.0);
}

}  // namespace
}  // namespace hcpath
