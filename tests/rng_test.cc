#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace hcpath {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBoundedStaysInRange) {
  Rng rng(5);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, NextBoundedCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(8);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.03);  // rough uniformity
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesP) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(11);
  for (uint64_t n : {10ull, 1000ull}) {
    for (uint64_t k : std::vector<uint64_t>{0, 1, 5, n / 2, n}) {
      auto sample = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<uint64_t> uniq(sample.begin(), sample.end());
      EXPECT_EQ(uniq.size(), k);
      for (uint64_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng a(42);
  Rng child = a.Split();
  // The child stream should not replay the parent's output.
  Rng b(42);
  b.Split();
  EXPECT_EQ(child.Next(), Rng(42).Split().Next());  // deterministic split
}

}  // namespace
}  // namespace hcpath
