// Deterministic scheduler simulation of the PathEngine admission layer:
// a VirtualClock plus manual dispatch (StepDispatch) let each scenario
// interleave submissions, time steps, and dispatcher steps and observe
// exactly one schedule — making WFQ fairness ratios, shed ordering,
// backpressure release ordering, and cut timing exactly assertable
// (docs/SERVICE.md, "Admission determinism").
//
// Runs under the tsan label: the backpressure scenarios block real
// threads in Submit against the stepping thread.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/brute_force.h"
#include "service/clock.h"
#include "service/path_engine.h"
#include "service/tenant_queue.h"
#include "test_graphs.h"

namespace hcpath {
namespace {

bool Ready(const std::future<QueryResult>& f) {
  return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

bool IsShedStatus(const Status& st) {
  return st.code() == StatusCode::kResourceExhausted &&
         st.message().rfind("query shed by admission control", 0) == 0;
}

bool IsQueueFullStatus(const Status& st) {
  return st.code() == StatusCode::kResourceExhausted &&
         st.message().rfind("admission queue full", 0) == 0;
}

class RecordingSink : public PathSink {
 public:
  using Event = std::pair<size_t, std::vector<VertexId>>;
  void OnPath(size_t qi, PathView p) override {
    events_.emplace_back(qi, std::vector<VertexId>(p.begin(), p.end()));
  }
  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
};

/// Manual-dispatch engine on the paper graph with a virtual clock.
PathEngineOptions SimOptions(VirtualClock* clock) {
  PathEngineOptions opt;
  opt.batch.num_threads = 1;
  opt.max_wait_seconds = 0;  // cuts on size/Flush/shutdown unless a test arms it
  opt.max_batch_size = 1024;
  opt.clock = clock;
  opt.manual_dispatch = true;
  return opt;
}

// ---------------------------------------------------------------------------
// WeightedFairQueue unit scenarios: the exact drain and shed orders every
// engine-level assertion below builds on.

TEST(WeightedFairQueueSim, DrainOrderIsExactWfqSchedule) {
  WeightedFairQueue<int> q;
  q.SetWeight("a", 4);
  q.SetWeight("b", 2);
  q.SetWeight("c", 1);
  for (int i = 0; i < 8; ++i) q.Push("a", 0, 1, i);
  for (int i = 0; i < 4; ++i) q.Push("b", 0, 1, i);
  for (int i = 0; i < 2; ++i) q.Push("c", 0, 1, i);

  // Weights 4:2:1 with everyone backlogged: each 7-slot round serves
  // a,a,b,a,a,b,c (ties go to the lexicographically smallest tenant),
  // FIFO within a tenant.
  std::vector<std::string> order;
  std::vector<int> a_values;
  while (!q.empty()) {
    auto item = q.PopNext();
    if (item.tenant == "a") a_values.push_back(item.value);
    order.push_back(item.tenant);
  }
  const std::vector<std::string> expected = {"a", "a", "b", "a", "a", "b",
                                             "c", "a", "a", "b", "a", "a",
                                             "b", "c"};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(a_values, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(WeightedFairQueueSim, IdleTenantGetsNoCatchUpBurst) {
  WeightedFairQueue<int> q;
  q.SetWeight("a", 1);
  q.SetWeight("b", 1);
  for (int i = 0; i < 6; ++i) q.Push("a", 0, 1, i);
  // Drain 4 'a' items while b is idle; b then arrives.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.PopNext().tenant, "a");
  for (int i = 0; i < 4; ++i) q.Push("b", 0, 1, i);
  // b starts at the queue-wide virtual time: equal weights alternate
  // (ties to "a") instead of b burning its idle "credit" in a burst.
  std::vector<std::string> order;
  while (!q.empty()) order.push_back(q.PopNext().tenant);
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "a", "b", "b", "b"}));
}

TEST(WeightedFairQueueSim, ShedOrderLowestWeightNewestFirst) {
  WeightedFairQueue<int> q;
  q.SetWeight("hi", 4);
  q.SetWeight("lo", 1);
  q.SetWeight("mid", 2);
  for (int i = 0; i < 3; ++i) q.Push("hi", 0, 1, i);
  for (int i = 0; i < 3; ++i) q.Push("mid", 0, 1, i);
  for (int i = 0; i < 2; ++i) q.Push("lo", 0, 1, i);

  // Shed 8 -> 4: all of lo (newest first), then mid's newest.
  auto shed = q.ShedDownTo(4, /*target_bytes=*/1ull << 30);
  ASSERT_EQ(shed.size(), 4u);
  EXPECT_EQ(shed[0].tenant, "lo");
  EXPECT_EQ(shed[0].value, 1);  // newest lo first
  EXPECT_EQ(shed[1].tenant, "lo");
  EXPECT_EQ(shed[1].value, 0);
  EXPECT_EQ(shed[2].tenant, "mid");
  EXPECT_EQ(shed[2].value, 2);  // then mid, newest first
  EXPECT_EQ(shed[3].tenant, "mid");
  EXPECT_EQ(shed[3].value, 1);
  EXPECT_EQ(q.size(), 4u);
}

TEST(WeightedFairQueueSim, ShedTieBreaksOnGreatestTenantId) {
  WeightedFairQueue<int> q;  // equal (default) weights
  q.Push("a", 0, 1, 0);
  q.Push("b", 0, 1, 0);
  q.Push("b", 0, 1, 1);
  auto shed = q.ShedDownTo(1, 1ull << 30);
  ASSERT_EQ(shed.size(), 2u);
  // Equal weight: lexicographically greatest tenant sheds first.
  EXPECT_EQ(shed[0].tenant, "b");
  EXPECT_EQ(shed[0].value, 1);
  EXPECT_EQ(shed[1].tenant, "b");
  EXPECT_EQ(shed[1].value, 0);
  EXPECT_EQ(q.PopNext().tenant, "a");
}

TEST(WeightedFairQueueSim, ShedHonorsByteTarget) {
  WeightedFairQueue<int> q;
  for (int i = 0; i < 4; ++i) q.Push("a", 0, /*cost_bytes=*/100, i);
  EXPECT_EQ(q.bytes(), 400u);
  auto shed = q.ShedDownTo(/*target_items=*/4, /*target_bytes=*/250);
  EXPECT_EQ(shed.size(), 2u);  // 400 -> 200 bytes needs two drops
  EXPECT_EQ(q.bytes(), 200u);
}

// ---------------------------------------------------------------------------
// Engine scenarios.

TEST(AdmissionSim, FairnessRatiosOverSkewedTenants) {
  const Graph g = PaperFigure1Graph();
  VirtualClock clock;
  PathEngineOptions opt = SimOptions(&clock);
  opt.max_batch_size = 7;
  opt.admission.tenant_weights = {{"a", 4.0}, {"b", 2.0}, {"c", 1.0}};
  PathEngine engine(g, opt);
  ASSERT_TRUE(engine.status().ok());

  const PathQuery q{0, 11, 5};  // 3 paths
  std::vector<std::future<QueryResult>> fa, fb, fc;
  for (int i = 0; i < 12; ++i) fa.push_back(engine.Submit("a", q));
  for (int i = 0; i < 12; ++i) fb.push_back(engine.Submit("b", q));
  for (int i = 0; i < 12; ++i) fc.push_back(engine.Submit("c", q));

  // Three fully-backlogged rounds: every 7-slot micro-batch carries
  // exactly 4 a, 2 b, 1 c, FIFO within each tenant.
  for (int round = 1; round <= 3; ++round) {
    ASSERT_EQ(engine.StepDispatch(), 7u) << "round " << round;
    size_t ra = 0, rb = 0, rc = 0;
    for (const auto& f : fa) ra += Ready(f);
    for (const auto& f : fb) rb += Ready(f);
    for (const auto& f : fc) rc += Ready(f);
    EXPECT_EQ(ra, static_cast<size_t>(4 * round)) << "round " << round;
    EXPECT_EQ(rb, static_cast<size_t>(2 * round)) << "round " << round;
    EXPECT_EQ(rc, static_cast<size_t>(1 * round)) << "round " << round;
    // FIFO within a tenant: the ready futures are a prefix.
    for (size_t i = 0; i < fa.size(); ++i) {
      EXPECT_EQ(Ready(fa[i]), i < 4u * round) << "a[" << i << "]";
    }
  }
  PathEngineStats stats = engine.GetStats();
  EXPECT_EQ(stats.tenants.at("a").completed, 12u);
  EXPECT_EQ(stats.tenants.at("b").completed, 6u);
  EXPECT_EQ(stats.tenants.at("c").completed, 3u);

  // Drain the tail; every admitted query completes with correct results.
  engine.Flush();  // untimed mode: the last underfull batch needs a cut
  while (engine.StepDispatch() > 0) {
  }
  for (auto* fs : {&fa, &fb, &fc}) {
    for (auto& f : *fs) {
      QueryResult r = f.get();
      ASSERT_TRUE(r.status.ok()) << r.status;
      EXPECT_EQ(r.path_count, 3u);
    }
  }
  stats = engine.GetStats();
  EXPECT_EQ(stats.queries_completed, 36u);
  EXPECT_EQ(stats.queries_shed, 0u);
}

TEST(AdmissionSim, ShedOrderAndFastFailAreDeterministic) {
  const Graph g = PaperFigure1Graph();
  VirtualClock clock;
  PathEngineOptions opt = SimOptions(&clock);
  opt.max_batch_size = 4;
  opt.admission.max_queued_queries = 8;
  opt.admission.backpressure = AdmissionBackpressure::kFailFast;
  opt.admission.shed_high_watermark = 1.0;
  opt.admission.shed_low_watermark = 0.5;
  opt.admission.shed_patience_seconds = 10.0;
  opt.admission.tenant_weights = {{"hi", 4.0}, {"lo", 1.0}, {"mid", 2.0}};
  PathEngine engine(g, opt);
  ASSERT_TRUE(engine.status().ok());

  const PathQuery q{0, 11, 5};
  std::vector<std::future<QueryResult>> hi, mid, lo;
  for (int i = 0; i < 3; ++i) hi.push_back(engine.Submit("hi", q));
  for (int i = 0; i < 3; ++i) mid.push_back(engine.Submit("mid", q));
  for (int i = 0; i < 2; ++i) lo.push_back(engine.Submit("lo", q));

  // Queue is at its entry budget: the next submit fast-fails with the
  // documented Status, immediately.
  auto overflow = engine.Submit("lo", q);
  ASSERT_TRUE(Ready(overflow));
  QueryResult of = overflow.get();
  EXPECT_TRUE(IsQueueFullStatus(of.status)) << of.status;

  // Before the patience elapses nothing is shed.
  clock.Advance(9.999);
  EXPECT_EQ(engine.StepDispatch(), 4u);  // size cut still fires (8 >= 4)
  EXPECT_EQ(engine.GetStats().queries_shed, 0u);

  // Refill to the budget and let the overload persist past the patience:
  // the next step sheds 8 -> 4, lowest weight first, newest first within
  // a tenant — then cuts the surviving 4.
  std::vector<std::future<QueryResult>> hi2, mid2, lo2;
  // The first step consumed hi(3) + mid(1) [WFQ: hi,hi,mid,hi]; survivors
  // are mid x2 + lo x2. Top up to 8 again:
  for (int i = 0; i < 2; ++i) hi2.push_back(engine.Submit("hi", q));
  for (int i = 0; i < 2; ++i) mid2.push_back(engine.Submit("mid", q));
  ASSERT_EQ(engine.GetStats().queries_submitted, 12u);
  clock.Advance(10.0);
  EXPECT_EQ(engine.StepDispatch(), 4u);

  PathEngineStats stats = engine.GetStats();
  EXPECT_EQ(stats.queries_shed, 4u);
  EXPECT_EQ(stats.shed_rounds, 1u);
  // Shed victims: lo (weight 1) newest-first = lo[1], lo[0]; then mid
  // (weight 2) newest-first = mid2[1], mid2[0]. hi is untouched.
  EXPECT_EQ(stats.tenants.at("lo").shed, 2u);
  EXPECT_EQ(stats.tenants.at("mid").shed, 2u);
  EXPECT_EQ(stats.tenants.at("hi").shed, 0u);
  for (auto& f : lo) {
    ASSERT_TRUE(Ready(f));
    EXPECT_TRUE(IsShedStatus(f.get().status));
  }
  for (auto& f : mid2) {
    ASSERT_TRUE(Ready(f));
    QueryResult r = f.get();
    EXPECT_TRUE(IsShedStatus(r.status)) << r.status;
    EXPECT_EQ(r.tenant, "mid");
  }
  // Everything that was not shed or fast-failed completes fine.
  while (engine.StepDispatch() > 0) {
  }
  for (auto* fs : {&hi, &mid, &hi2}) {
    for (auto& f : *fs) {
      QueryResult r = f.get();
      ASSERT_TRUE(r.status.ok()) << r.status;
      EXPECT_EQ(r.path_count, 3u);
    }
  }
  EXPECT_EQ(engine.GetStats().tenants.at("lo").fast_failed, 1u);
}

TEST(AdmissionSim, BackpressureReleasesBlockedSubmittersInFifoOrder) {
  const Graph g = PaperFigure1Graph();
  VirtualClock clock;
  PathEngineOptions opt = SimOptions(&clock);
  opt.max_batch_size = 2;
  opt.admission.max_queued_queries = 2;
  opt.admission.backpressure = AdmissionBackpressure::kBlock;
  // low == high == 1.0 disables shedding: the queue cannot exceed its
  // budget, so it is never above the low-watermark targets.
  opt.admission.shed_high_watermark = 1.0;
  opt.admission.shed_low_watermark = 1.0;
  PathEngine engine(g, opt);
  ASSERT_TRUE(engine.status().ok());

  auto f1 = engine.Submit({0, 11, 5});
  auto f2 = engine.Submit({2, 13, 5});  // queue now at its entry budget

  // Two submitters block, in a forced order.
  RecordingSink s3, s4;
  std::future<QueryResult> f3, f4;
  std::thread t3([&] { f3 = engine.Submit({4, 14, 4}, &s3); });
  while (engine.GetStats().backpressure_blocks < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread t4([&] { f4 = engine.Submit({9, 14, 3}, &s4); });
  while (engine.GetStats().backpressure_blocks < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // One step drains the two queued queries; the freed capacity admits the
  // blocked submitters in block order (FIFO tickets): t3's query enters
  // the queue before t4's.
  ASSERT_EQ(engine.StepDispatch(), 2u);
  t3.join();
  t4.join();
  ASSERT_EQ(engine.GetStats().queries_submitted, 4u);

  // The next batch's input order is therefore [q3, q4]: sink events carry
  // the query's index inside its micro-batch, so q3 must be index 0 and
  // q4 index 1 — that IS the release ordering, observed end to end.
  ASSERT_EQ(engine.StepDispatch(), 2u);
  QueryResult r3 = f3.get();
  QueryResult r4 = f4.get();
  ASSERT_TRUE(r3.status.ok());
  ASSERT_TRUE(r4.status.ok());
  EXPECT_EQ(s3.events().size(), 2u);  // q3(v4,v14,4) -> 2 paths
  EXPECT_EQ(s4.events().size(), 2u);  // q4(v9,v14,3) -> 2 paths
  for (const auto& e : s3.events()) EXPECT_EQ(e.first, 0u);
  for (const auto& e : s4.events()) EXPECT_EQ(e.first, 1u);
  PathEngineStats stats = engine.GetStats();
  EXPECT_EQ(stats.backpressure_blocks, 2u);
  EXPECT_EQ(stats.queries_shed, 0u);
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
}

TEST(AdmissionSim, WaitCutFiresOnVirtualDeadline) {
  const Graph g = PaperFigure1Graph();
  VirtualClock clock;
  PathEngineOptions opt = SimOptions(&clock);
  opt.max_wait_seconds = 5.0;
  PathEngine engine(g, opt);
  ASSERT_TRUE(engine.status().ok());

  clock.AdvanceTo(100.0);
  auto f = engine.Submit({0, 11, 5});
  EXPECT_EQ(engine.StepDispatch(), 0u);  // not due yet
  clock.Advance(4.999);
  EXPECT_EQ(engine.StepDispatch(), 0u);  // still 1ms early
  clock.Advance(0.001);
  EXPECT_EQ(engine.StepDispatch(), 1u);  // exactly at the deadline
  QueryResult r = f.get();
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.path_count, 3u);
  EXPECT_DOUBLE_EQ(r.wait_seconds, 5.0);  // exact under the virtual clock
  PathEngineStats stats = engine.GetStats();
  EXPECT_EQ(stats.wait_cuts, 1u);
  EXPECT_EQ(stats.size_cuts, 0u);
}

TEST(AdmissionSim, FlushDuringFullQueueDrainsWithoutShedding) {
  const Graph g = PaperFigure1Graph();
  VirtualClock clock;
  PathEngineOptions opt = SimOptions(&clock);
  opt.max_batch_size = 3;
  opt.admission.max_queued_queries = 5;
  opt.admission.backpressure = AdmissionBackpressure::kFailFast;
  opt.admission.shed_patience_seconds = 60.0;
  PathEngine engine(g, opt);

  std::vector<std::future<QueryResult>> futures;
  for (const PathQuery& q : PaperFigure1Queries()) {
    futures.push_back(engine.Submit(q));  // exactly fills the budget
  }
  engine.Flush();
  // Flush drains everything queued (5 = 3 + 2) even though the queue sat
  // at its budget; the patience never elapsed, so nothing is shed.
  EXPECT_EQ(engine.StepDispatch(), 3u);
  EXPECT_EQ(engine.StepDispatch(), 2u);
  EXPECT_EQ(engine.StepDispatch(), 0u);
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  PathEngineStats stats = engine.GetStats();
  EXPECT_EQ(stats.queries_shed, 0u);
  EXPECT_EQ(stats.size_cuts, 1u);  // 5 >= 3 fired first
  EXPECT_EQ(stats.flush_cuts, 1u);
}

TEST(AdmissionSim, ShutdownDrainsFullQueueEvenWhenShedIsDue) {
  const Graph g = PaperFigure1Graph();
  VirtualClock clock;
  std::vector<std::future<QueryResult>> futures;
  {
    PathEngineOptions opt = SimOptions(&clock);
    opt.max_batch_size = 2;
    opt.admission.max_queued_queries = 5;
    opt.admission.backpressure = AdmissionBackpressure::kFailFast;
    opt.admission.shed_patience_seconds = 1.0;
    PathEngine engine(g, opt);
    for (const PathQuery& q : PaperFigure1Queries()) {
      futures.push_back(engine.Submit(q));
    }
    // Overload patience has long expired — but shutdown wins over
    // shedding: the destructor drains every queued query.
    clock.Advance(100.0);
  }
  for (auto& f : futures) {
    QueryResult r = f.get();
    EXPECT_TRUE(r.status.ok()) << r.status;
  }
}

/// The acceptance-criteria property at simulation level: under overload
/// (fast-fails and sheds happening all around), every admitted query's
/// path set is byte-identical to its unloaded one-shot run, and every
/// non-OK outcome carries one of the documented admission Statuses.
TEST(AdmissionSim, AdmittedQueriesAreByteIdenticalUnderOverload) {
  const Graph g = PaperFigure1Graph();
  const std::vector<PathQuery> pool = PaperFigure1Queries();
  VirtualClock clock;
  PathEngineOptions opt = SimOptions(&clock);
  opt.max_batch_size = 3;
  opt.admission.max_queued_queries = 6;
  opt.admission.backpressure = AdmissionBackpressure::kFailFast;
  opt.admission.shed_high_watermark = 1.0;
  opt.admission.shed_low_watermark = 0.5;
  opt.admission.shed_patience_seconds = 2.0;
  opt.admission.tenant_weights = {{"t0", 4.0}, {"t1", 2.0}, {"t2", 1.0}};
  PathEngine engine(g, opt);
  ASSERT_TRUE(engine.status().ok());

  struct Submitted {
    PathQuery query;
    std::future<QueryResult> future;
  };
  std::vector<Submitted> all;
  size_t qi = 0;
  for (int wave = 0; wave < 12; ++wave) {
    // Burst past the budget, then sometimes let the patience elapse so a
    // shed round hits, then step once.
    for (int i = 0; i < 8; ++i) {
      const PathQuery q = pool[qi++ % pool.size()];
      all.push_back(
          {q, engine.Submit("t" + std::to_string(i % 3), q)});
    }
    if (wave % 3 == 1) clock.Advance(3.0);
    engine.StepDispatch();
  }
  engine.Flush();  // untimed mode: cut whatever the waves left queued
  while (engine.StepDispatch() > 0) {
  }

  size_t completed = 0, failed = 0;
  for (Submitted& s : all) {
    QueryResult r = s.future.get();
    if (r.status.ok()) {
      ++completed;
      auto oracle = BruteForcePaths(g, s.query);
      ASSERT_TRUE(oracle.ok());
      ASSERT_EQ(r.paths.size(), oracle->size()) << s.query.ToString();
      EXPECT_EQ(r.paths.ToSortedVectors(), oracle->ToSortedVectors())
          << s.query.ToString();
    } else {
      ++failed;
      EXPECT_TRUE(IsShedStatus(r.status) || IsQueueFullStatus(r.status))
          << "undocumented overload Status: " << r.status;
    }
  }
  PathEngineStats stats = engine.GetStats();
  EXPECT_EQ(completed, stats.queries_completed);
  EXPECT_EQ(failed, stats.queries_shed + stats.submits_fast_failed);
  EXPECT_GT(stats.queries_shed, 0u);       // the scenario really shed
  EXPECT_GT(stats.submits_fast_failed, 0u);  // and really fast-failed
  // The queue honored its budgets throughout.
  EXPECT_LE(stats.peak_queued_queries, 6u);
}

/// StepDispatch is callable from any thread: two concurrent steppers must
/// run distinct batches (batches_in_flight_ is a counter, not a flag) and
/// Drain() must not return while either batch is still executing.
TEST(AdmissionSim, ConcurrentStepDispatchRunsDistinctBatches) {
  const Graph g = PaperFigure1Graph();
  VirtualClock clock;
  PathEngineOptions opt = SimOptions(&clock);
  opt.max_batch_size = 3;
  PathEngine engine(g, opt);
  ASSERT_TRUE(engine.status().ok());

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 6; ++i) {  // exactly two size-cut batches
    futures.push_back(engine.Submit({0, 11, 5}));
  }
  size_t n1 = 0, n2 = 0;
  std::thread t1([&] { n1 = engine.StepDispatch(); });
  std::thread t2([&] { n2 = engine.StepDispatch(); });
  t1.join();
  t2.join();
  engine.Drain();  // both batches must be fully accounted by now
  EXPECT_EQ(n1 + n2, 6u);
  PathEngineStats stats = engine.GetStats();
  EXPECT_EQ(stats.batches_run, 2u);
  EXPECT_EQ(stats.queries_completed, 6u);
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(f.get().status.ok());
  }
}

// Shutdown-vs-queued-work regression: destroying the engine while
// submitters sit blocked in the ticket wait must release every one of
// them with the canonical non-retryable shutting-down status — a blocked
// submitter must never outlive the engine, and must never be told to
// retry an engine that will not come back.
TEST(AdmissionSim, ShutdownReleasesBlockedSubmittersNonRetryably) {
  const Graph g = PaperFigure1Graph();
  VirtualClock clock;
  std::future<QueryResult> queued, blocked_a, blocked_b;
  std::thread ta, tb;
  {
    PathEngineOptions opt = SimOptions(&clock);
    opt.admission.max_queued_queries = 1;
    opt.admission.backpressure = AdmissionBackpressure::kBlock;
    opt.admission.shed_high_watermark = 1.0;  // disable shedding
    opt.admission.shed_low_watermark = 1.0;
    PathEngine engine(g, opt);
    ASSERT_TRUE(engine.status().ok());

    queued = engine.Submit({0, 11, 5});  // fills the entry budget
    ta = std::thread([&] { blocked_a = engine.Submit({2, 13, 5}); });
    while (engine.GetStats().backpressure_blocks < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    tb = std::thread([&] { blocked_b = engine.Submit({4, 14, 4}); });
    while (engine.GetStats().backpressure_blocks < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Engine destruction begins with both submitters blocked on tickets.
  }
  ta.join();
  tb.join();
  for (std::future<QueryResult>* f : {&blocked_a, &blocked_b}) {
    ASSERT_TRUE(Ready(*f));
    QueryResult r = f->get();
    EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(r.status.message(), "PathEngine is shutting down");
    EXPECT_FALSE(r.status.retryable());
  }
  // The admitted query still drained (shutdown = final flush).
  ASSERT_TRUE(Ready(queued));
  EXPECT_TRUE(queued.get().status.ok());
}

// The wait-boundary edge for the overload patience deadline, two shapes:
//  (a) submitters that blocked BEFORE patience elapsed are parked in
//      WaitUntil(overload_since + patience); when virtual time lands
//      exactly on the deadline (zero remaining) or far past it (negative
//      remaining), each must wake, shed the overloaded queue itself, and
//      enter — no deadlock, no spin, no further time advance. The second
//      waiter re-arms WaitUntil with a deadline already in the past, so
//      the wait must degenerate to an immediate predicate check.
//  (b) a submitter ARRIVING after the deadline must resolve synchronously
//      (shed at the admission loop top) without ever arming a stale wait
//      or counting a block.
TEST(AdmissionSim, BlockedSubmitShedsAtZeroOrNegativeRemainingPatience) {
  const Graph g = PaperFigure1Graph();
  for (double advance_past_patience : {0.0, 123.0}) {
    SCOPED_TRACE(advance_past_patience);
    VirtualClock clock;
    PathEngineOptions opt = SimOptions(&clock);
    opt.admission.max_queued_queries = 2;
    opt.admission.backpressure = AdmissionBackpressure::kBlock;
    opt.admission.shed_high_watermark = 0.5;  // overloaded at 1 queued
    opt.admission.shed_low_watermark = 0.5;   // shed back down to 1 queued
    opt.admission.shed_patience_seconds = 10.0;
    PathEngine engine(g, opt);
    ASSERT_TRUE(engine.status().ok());

    auto f1 = engine.Submit({0, 11, 5});  // overload clock starts here
    auto f2 = engine.Submit({2, 13, 5});  // queue full
    // Shape (a): two submitters block while the deadline is still ahead.
    std::future<QueryResult> f3, f4;
    std::thread t3([&] { f3 = engine.Submit({4, 14, 4}); });
    while (engine.GetStats().backpressure_blocks < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::thread t4([&] { f4 = engine.Submit({9, 14, 3}); });
    while (engine.GetStats().backpressure_blocks < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Land exactly on the deadline or far past it. One waiter wakes with
    // zero/negative slack, sheds one victim, and enters; the queue is at
    // capacity again, so the other waiter's deadline is already in the
    // past when it re-evaluates — it must shed again and enter too.
    clock.Advance(10.0 + advance_past_patience);
    t3.join();
    t4.join();

    PathEngineStats stats = engine.GetStats();
    EXPECT_EQ(stats.backpressure_blocks, 2u);
    EXPECT_EQ(stats.queries_submitted, 4u);  // every submitter entered
    EXPECT_EQ(stats.queries_shed, 2u);       // one victim per admitted waiter

    // Shape (b): arrival after the deadline sheds synchronously at the
    // loop top and enters without blocking — the block counter must not
    // move and no clock advance is needed.
    auto f5 = engine.Submit({5, 12, 5});
    stats = engine.GetStats();
    EXPECT_EQ(stats.backpressure_blocks, 2u);
    EXPECT_EQ(stats.queries_submitted, 5u);
    EXPECT_EQ(stats.queries_shed, 3u);

    // Every shed victim resolved already, with the canonical retryable
    // shed status; admitted-and-queued queries are still pending.
    std::vector<std::future<QueryResult>*> all = {&f1, &f2, &f3, &f4, &f5};
    size_t ready_shed = 0;
    for (std::future<QueryResult>* f : all) {
      if (!Ready(*f)) continue;
      ++ready_shed;
    }
    EXPECT_EQ(ready_shed, 3u);

    engine.Flush();
    while (engine.StepDispatch() > 0) {
    }
    // Conservation after the drain: the dispatcher sheds the still-due
    // backlog down to the low watermark before cutting, so of the five
    // admitted queries exactly one completes and four shed.
    size_t ok = 0, shed = 0;
    for (std::future<QueryResult>* f : all) {
      ASSERT_TRUE(Ready(*f));
      QueryResult r = f->get();
      if (r.status.ok()) {
        ++ok;
      } else {
        EXPECT_TRUE(IsShedStatus(r.status)) << r.status.ToString();
        EXPECT_TRUE(r.status.retryable());
        ++shed;
      }
    }
    stats = engine.GetStats();
    EXPECT_EQ(ok, 1u);
    EXPECT_EQ(shed, 4u);
    EXPECT_EQ(stats.queries_completed, ok);
    EXPECT_EQ(stats.queries_shed, shed);
    EXPECT_EQ(stats.queries_submitted, stats.queries_completed +
                                           stats.queries_shed);
  }
}

TEST(AdmissionSim, BackgroundDispatcherHonorsVirtualWaitCut) {
  const Graph g = PaperFigure1Graph();
  VirtualClock clock;
  PathEngineOptions opt;
  opt.batch.num_threads = 1;
  opt.max_batch_size = 1024;
  opt.max_wait_seconds = 1.0;
  opt.clock = &clock;  // background dispatcher, virtual time
  PathEngine engine(g, opt);
  ASSERT_TRUE(engine.status().ok());

  auto f = engine.Submit({0, 11, 5});
  // Nothing can cut until virtual time reaches the deadline.
  EXPECT_EQ(f.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  clock.Advance(2.0);
  QueryResult r = f.get();  // the dispatcher wakes on the advance
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.path_count, 3u);
  EXPECT_GE(engine.GetStats().wait_cuts, 1u);
}

}  // namespace
}  // namespace hcpath
