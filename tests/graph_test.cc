#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace hcpath {
namespace {

Graph Triangle() {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  return *b.Build();
}

TEST(Graph, BasicCounts) {
  Graph g = Triangle();
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
}

TEST(Graph, OutAndInNeighbors) {
  Graph g = Triangle();
  ASSERT_EQ(g.OutNeighbors(0).size(), 1u);
  EXPECT_EQ(g.OutNeighbors(0)[0], 1u);
  ASSERT_EQ(g.InNeighbors(0).size(), 1u);
  EXPECT_EQ(g.InNeighbors(0)[0], 2u);
}

TEST(Graph, NeighborsByDirection) {
  Graph g = Triangle();
  EXPECT_EQ(g.Neighbors(0, Direction::kForward)[0], 1u);
  EXPECT_EQ(g.Neighbors(0, Direction::kBackward)[0], 2u);
}

TEST(Graph, Degrees) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  b.AddEdge(1, 0);
  Graph g = *b.Build();
  EXPECT_EQ(g.OutDegree(0), 3u);
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_EQ(g.OutDegree(3), 0u);
  EXPECT_EQ(g.InDegree(3), 1u);
}

TEST(Graph, HasEdge) {
  Graph g = Triangle();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(Graph, NeighborListsAreSorted) {
  GraphBuilder b;
  b.AddEdge(0, 5);
  b.AddEdge(0, 2);
  b.AddEdge(0, 9);
  Graph g = *b.Build();
  auto nbrs = g.OutNeighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Graph, EdgesRoundTrip) {
  Graph g = Triangle();
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (std::pair<VertexId, VertexId>{0, 1}));
}

TEST(Graph, ReverseDirectionHelper) {
  EXPECT_EQ(Reverse(Direction::kForward), Direction::kBackward);
  EXPECT_EQ(Reverse(Direction::kBackward), Direction::kForward);
}

TEST(GraphBuilder, DropsSelfLoopsAndDuplicates) {
  GraphBuilder b;
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(1, 1);
  Graph g = *b.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(b.self_loops_dropped(), 2u);
  EXPECT_EQ(b.duplicates_dropped(), 1u);
}

TEST(GraphBuilder, EmptyBuilderYieldsSingleVertex) {
  GraphBuilder b;
  Graph g = *b.Build();
  EXPECT_EQ(g.NumVertices(), 1u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphBuilder, DeclaredVertexCountWithIsolatedTail) {
  GraphBuilder b(10);
  b.AddEdge(0, 1);
  Graph g = *b.Build();
  EXPECT_EQ(g.NumVertices(), 10u);
  EXPECT_EQ(g.OutDegree(9), 0u);
}

TEST(GraphBuilder, GrowsBeyondDeclaredCount) {
  GraphBuilder b(2);
  b.AddEdge(5, 6);
  Graph g = *b.Build();
  EXPECT_EQ(g.NumVertices(), 7u);
}

TEST(Graph, MemoryBytesNonZero) {
  Graph g = Triangle();
  EXPECT_GT(g.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace hcpath
