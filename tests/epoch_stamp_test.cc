// EpochStampTable: the O(1) membership kernel behind the enumeration hot
// loops (docs/PERF.md). Covers mark/unmark/contains semantics, O(1) clear,
// growth, epoch wraparound (the one place storage is re-zeroed), and
// concurrent leases from a ScratchPool.

#include "util/epoch_stamp.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace hcpath {
namespace {

TEST(EpochStampTable, MarkContainsUnmark) {
  EpochStampTable t;
  EXPECT_FALSE(t.Contains(0));
  EXPECT_FALSE(t.Contains(42));

  EXPECT_TRUE(t.Mark(42));
  EXPECT_TRUE(t.Contains(42));
  EXPECT_FALSE(t.Contains(41));
  EXPECT_FALSE(t.Mark(42)) << "second mark of the same vertex";

  t.Unmark(42);
  EXPECT_FALSE(t.Contains(42));
  EXPECT_TRUE(t.Mark(42)) << "re-mark after unmark is a fresh mark";
}

TEST(EpochStampTable, ClearForgetsEverythingWithoutTouchingStorage) {
  EpochStampTable t;
  for (uint32_t v = 0; v < 100; v += 7) t.Mark(v);
  const size_t cap = t.capacity();
  const uint32_t epoch_before = t.epoch();

  t.Clear();
  EXPECT_EQ(t.capacity(), cap) << "Clear must not shrink or grow storage";
  EXPECT_EQ(t.epoch(), epoch_before + 1);
  for (uint32_t v = 0; v < 100; ++v) {
    EXPECT_FALSE(t.Contains(v)) << "v=" << v;
  }
  // Marks made after a clear are independent of pre-clear history.
  EXPECT_TRUE(t.Mark(7));
  EXPECT_TRUE(t.Contains(7));
  EXPECT_FALSE(t.Contains(14));
}

TEST(EpochStampTable, GrowthPreservesMarksAndKeepsNewSlotsEmpty) {
  EpochStampTable t;
  t.Mark(3);
  t.Mark(1000000);  // forces growth well past the first mark
  EXPECT_TRUE(t.Contains(3));
  EXPECT_TRUE(t.Contains(1000000));
  EXPECT_FALSE(t.Contains(999999));
  EXPECT_GE(t.capacity(), 1000001u);
}

TEST(EpochStampTable, ReservePresizes) {
  EpochStampTable t;
  t.Reserve(512);
  EXPECT_GE(t.capacity(), 512u);
  EXPECT_FALSE(t.Contains(511));
  t.Mark(511);
  EXPECT_TRUE(t.Contains(511));
}

TEST(EpochStampTable, EpochWraparoundReZeroesStaleStamps) {
  EpochStampTable t;
  t.Mark(5);
  // Jump to the last representable epoch: the next Clear must wrap, and
  // wrapping re-zeroes storage so no stale stamp from the previous cycle
  // can ever match a repeated epoch value.
  t.TestOnlySetEpoch(UINT32_MAX);
  t.Mark(9);
  EXPECT_TRUE(t.Contains(9));

  t.Clear();
  EXPECT_EQ(t.epoch(), 1u) << "epoch restarts after the wrap";
  EXPECT_FALSE(t.Contains(5));
  EXPECT_FALSE(t.Contains(9));
  EXPECT_TRUE(t.Mark(9));
  EXPECT_TRUE(t.Contains(9));

  // A full post-wrap cycle still behaves: marks from epoch 1 are invisible
  // at epoch 2.
  t.Clear();
  EXPECT_FALSE(t.Contains(9));
}

TEST(EpochStampTable, RandomizedAgainstReferenceSet) {
  // Differential check of the stamp semantics against std::set across a
  // random mark/unmark/clear schedule.
  Rng rng(0xE70C5);
  EpochStampTable t;
  std::set<uint32_t> ref;
  for (int op = 0; op < 20000; ++op) {
    const uint32_t v = static_cast<uint32_t>(rng.NextBounded(300));
    switch (rng.NextBounded(8)) {
      case 0:
        t.Clear();
        ref.clear();
        break;
      case 1:
      case 2:
        t.Mark(v);  // ensure the slot exists; marking twice is fine
        t.Unmark(v);
        ref.erase(v);
        break;
      default: {
        const bool fresh = t.Mark(v);
        EXPECT_EQ(fresh, ref.insert(v).second) << "op " << op;
        break;
      }
    }
    const uint32_t probe = static_cast<uint32_t>(rng.NextBounded(300));
    EXPECT_EQ(t.Contains(probe), ref.count(probe) > 0)
        << "op " << op << " probe " << probe;
  }
}

TEST(ScratchPoolTest, RecyclesObjects) {
  EpochStampPool pool;
  EpochStampTable* a = pool.Acquire();
  a->Mark(123);
  EXPECT_EQ(pool.free_count(), 0u);
  pool.Release(a);
  EXPECT_EQ(pool.free_count(), 1u);
  EpochStampTable* b = pool.Acquire();
  EXPECT_EQ(b, a) << "pooled object is reused";
  EXPECT_GE(b->capacity(), 124u) << "storage survives the round trip";
  pool.Release(b);
}

TEST(ScratchPoolTest, ConcurrentTablesFromThePoolDoNotInterfere) {
  // Many threads lease tables concurrently, each marking a thread-unique
  // id pattern; a table observed with someone else's marks (or missing its
  // own) means the pool handed one object to two leases at once.
  EpochStampPool pool;
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&pool, &failures, ti] {
      for (int r = 0; r < kRounds; ++r) {
        ScratchLease<EpochStampTable> lease(&pool);
        lease->Clear();
        const uint32_t base = static_cast<uint32_t>(ti) * 1000;
        for (uint32_t k = 0; k < 50; ++k) lease->Mark(base + k);
        for (uint32_t other = 0; other < kThreads; ++other) {
          const uint32_t probe = other * 1000 + (r % 50);
          const bool expect = other == static_cast<uint32_t>(ti);
          if (lease->Contains(probe) != expect) ++failures[ti];
        }
        for (uint32_t k = 0; k < 50; ++k) lease->Unmark(base + k);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int ti = 0; ti < kThreads; ++ti) {
    EXPECT_EQ(failures[ti], 0) << "thread " << ti;
  }
  EXPECT_LE(pool.free_count(), EpochStampPool::MaxPooled());
  EXPECT_GE(pool.free_count(), 1u);
}

TEST(ScratchPoolTest, NullPoolLeaseFallsBackToThreadLocal) {
  // Direct API callers outside a BatchContext lease a per-thread fallback;
  // sequential leases on one thread reuse the same storage.
  size_t cap_first = 0;
  {
    ScratchLease<EpochStampTable> lease(nullptr);
    lease->Clear();
    lease->Mark(777);
    EXPECT_TRUE(lease->Contains(777));
    cap_first = lease->capacity();
  }
  {
    ScratchLease<EpochStampTable> lease(nullptr);
    EXPECT_GE(lease->capacity(), cap_first) << "storage is reused";
    lease->Clear();
    EXPECT_FALSE(lease->Contains(777));
  }
}

}  // namespace
}  // namespace hcpath
