#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "graph/generators.h"
#include "ksp/dksp.h"
#include "ksp/onepass.h"
#include "test_graphs.h"

namespace hcpath {
namespace {

void ExpectMatchesOracleDksp(const Graph& g, const PathQuery& q) {
  CollectingSink sink(1);
  ASSERT_TRUE(DkspEnumerate(g, q, 0, &sink, {}).ok());
  auto oracle = BruteForcePaths(g, q);
  EXPECT_EQ(sink.paths(0).ToSortedVectors(), oracle->ToSortedVectors())
      << "DkSP wrong on " << q.ToString();
}

void ExpectMatchesOracleOnePass(const Graph& g, const PathQuery& q) {
  CollectingSink sink(1);
  ASSERT_TRUE(OnePassEnumerate(g, q, 0, &sink, {}).ok());
  auto oracle = BruteForcePaths(g, q);
  EXPECT_EQ(sink.paths(0).ToSortedVectors(), oracle->ToSortedVectors())
      << "OnePass wrong on " << q.ToString();
}

TEST(Dksp, MatchesOracleOnPaperExample) {
  Graph g = PaperFigure1Graph();
  for (const PathQuery& q : PaperFigure1Queries()) {
    ExpectMatchesOracleDksp(g, q);
  }
}

TEST(OnePass, MatchesOracleOnPaperExample) {
  Graph g = PaperFigure1Graph();
  for (const PathQuery& q : PaperFigure1Queries()) {
    ExpectMatchesOracleOnePass(g, q);
  }
}

TEST(Dksp, MatchesOracleOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u}) {
    Rng rng(seed);
    auto g = GenerateErdosRenyi(40, 200, rng);
    Rng qrng(seed + 50);
    for (int i = 0; i < 6; ++i) {
      VertexId s = static_cast<VertexId>(qrng.NextBounded(40));
      VertexId t = static_cast<VertexId>(qrng.NextBounded(40));
      if (s == t) continue;
      ExpectMatchesOracleDksp(*g, {s, t, 4});
    }
  }
}

TEST(OnePass, MatchesOracleOnRandomGraphs) {
  for (uint64_t seed : {3u, 4u}) {
    Rng rng(seed);
    auto g = GenerateErdosRenyi(50, 300, rng);
    Rng qrng(seed + 60);
    for (int i = 0; i < 6; ++i) {
      VertexId s = static_cast<VertexId>(qrng.NextBounded(50));
      VertexId t = static_cast<VertexId>(qrng.NextBounded(50));
      if (s == t) continue;
      ExpectMatchesOracleOnePass(*g, {s, t, 5});
    }
  }
}

TEST(Dksp, EmitsInLengthOrder) {
  Graph g = PaperFigure1Graph();
  struct OrderSink : PathSink {
    std::vector<size_t> lengths;
    void OnPath(size_t, PathView p) override {
      lengths.push_back(p.size() - 1);
    }
  } sink;
  ASSERT_TRUE(DkspEnumerate(g, {0, 11, 5}, 0, &sink, {}).ok());
  EXPECT_TRUE(std::is_sorted(sink.lengths.begin(), sink.lengths.end()));
}

TEST(Ksp, LimitsFireAsResourceExhausted) {
  auto g = GenerateComplete(9);
  PathQuery q{0, 8, 5};
  CountingSink s1(1);
  KspLimits limits;
  limits.max_paths = 5;
  EXPECT_EQ(DkspEnumerate(*g, q, 0, &s1, limits).code(),
            StatusCode::kResourceExhausted);
  CountingSink s2(1);
  EXPECT_EQ(OnePassEnumerate(*g, q, 0, &s2, limits).code(),
            StatusCode::kResourceExhausted);
}

TEST(Ksp, UnreachableTargetYieldsNothing) {
  auto g = GeneratePath(6);
  CountingSink s1(1), s2(1);
  ASSERT_TRUE(DkspEnumerate(*g, {5, 0, 5}, 0, &s1, {}).ok());
  ASSERT_TRUE(OnePassEnumerate(*g, {5, 0, 5}, 0, &s2, {}).ok());
  EXPECT_EQ(s1.counts()[0], 0u);
  EXPECT_EQ(s2.counts()[0], 0u);
}

TEST(Ksp, InvalidQueriesRejected) {
  auto g = GeneratePath(6);
  CountingSink sink(1);
  EXPECT_FALSE(DkspEnumerate(*g, {0, 0, 3}, 0, &sink, {}).ok());
  EXPECT_FALSE(OnePassEnumerate(*g, {0, 9, 3}, 0, &sink, {}).ok());
}

}  // namespace
}  // namespace hcpath
