#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/stats.h"

namespace hcpath {
namespace {

TEST(Generators, ErdosRenyiExactEdgeCount) {
  Rng rng(1);
  auto g = GenerateErdosRenyi(100, 500, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 100u);
  EXPECT_EQ(g->NumEdges(), 500u);
}

TEST(Generators, ErdosRenyiRejectsBadArgs) {
  Rng rng(1);
  EXPECT_FALSE(GenerateErdosRenyi(1, 10, rng).ok());
  EXPECT_FALSE(GenerateErdosRenyi(10, 1000, rng).ok());  // > n*(n-1)
}

TEST(Generators, ErdosRenyiDeterministicPerSeed) {
  Rng a(7), b(7);
  auto g1 = GenerateErdosRenyi(50, 200, a);
  auto g2 = GenerateErdosRenyi(50, 200, b);
  EXPECT_EQ(g1->Edges(), g2->Edges());
}

TEST(Generators, BarabasiAlbertIsSkewed) {
  Rng rng(3);
  auto g = GenerateBarabasiAlbert(5000, 5, rng);
  ASSERT_TRUE(g.ok());
  GraphStats s = ComputeGraphStats(*g);
  EXPECT_EQ(s.num_vertices, 5000u);
  // Preferential attachment must produce hubs: max total degree far above
  // the mean.
  EXPECT_GT(static_cast<double>(s.max_total_degree), 8 * s.avg_degree);
}

TEST(Generators, BarabasiAlbertRejectsBadArgs) {
  Rng rng(1);
  EXPECT_FALSE(GenerateBarabasiAlbert(1, 3, rng).ok());
  EXPECT_FALSE(GenerateBarabasiAlbert(100, 0, rng).ok());
}

TEST(Generators, RMatShapeAndSkew) {
  Rng rng(5);
  auto g = GenerateRMat(12, 20000, 0.57, 0.19, 0.19, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 4096u);
  EXPECT_GT(g->NumEdges(), 15000u);  // some duplicates removed
  GraphStats s = ComputeGraphStats(*g);
  EXPECT_GT(static_cast<double>(s.max_total_degree), 5 * s.avg_degree);
}

TEST(Generators, RMatRejectsBadArgs) {
  Rng rng(1);
  EXPECT_FALSE(GenerateRMat(0, 100, 0.5, 0.2, 0.2, rng).ok());
  EXPECT_FALSE(GenerateRMat(32, 100, 0.5, 0.2, 0.2, rng).ok());
  EXPECT_FALSE(GenerateRMat(10, 100, 0.9, 0.2, 0.2, rng).ok());  // sum > 1
}

TEST(Generators, SmallWorldDegreeIsUniform) {
  Rng rng(2);
  auto g = GenerateSmallWorld(1000, 8, 0.1, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 1000u);
  // Every vertex emits exactly k_out edges (minus the rare dedup).
  EXPECT_NEAR(static_cast<double>(g->NumEdges()), 8000.0, 100.0);
}

TEST(Generators, SmallWorldRejectsBadArgs) {
  Rng rng(1);
  EXPECT_FALSE(GenerateSmallWorld(2, 1, 0.1, rng).ok());
  EXPECT_FALSE(GenerateSmallWorld(100, 100, 0.1, rng).ok());
  EXPECT_FALSE(GenerateSmallWorld(100, 5, 1.5, rng).ok());
}

TEST(Generators, GridHasMonotonePathCounts) {
  auto g = GenerateGrid(3, 3);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 9u);
  // Each interior vertex has east+south edges: total = 2*rows*cols-rows-cols.
  EXPECT_EQ(g->NumEdges(), 12u);
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(0, 3));
  EXPECT_FALSE(g->HasEdge(1, 0));
}

TEST(Generators, CompleteGraph) {
  auto g = GenerateComplete(5);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 20u);
  EXPECT_FALSE(GenerateComplete(1).ok());
  EXPECT_FALSE(GenerateComplete(5000).ok());
}

TEST(Generators, PathAndCycle) {
  auto p = GeneratePath(4);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->NumEdges(), 3u);
  auto c = GenerateCycle(4);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->NumEdges(), 4u);
  EXPECT_TRUE(c->HasEdge(3, 0));
}

TEST(Generators, LayeredDagIsAcyclicByConstruction) {
  Rng rng(9);
  auto g = GenerateLayeredDag(4, 10, 3, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 40u);
  // Edges only go from layer i to layer i+1.
  for (auto [u, v] : g->Edges()) {
    EXPECT_EQ(v / 10, u / 10 + 1);
  }
}

}  // namespace
}  // namespace hcpath
