#include "index/distance_index.h"

#include <gtest/gtest.h>

#include "bfs/bfs.h"
#include "graph/generators.h"

namespace hcpath {
namespace {

TEST(DistanceIndex, MatchesDirectBfs) {
  Rng grng(3);
  auto g = GenerateErdosRenyi(300, 2500, grng);
  std::vector<VertexId> sources = {0, 10, 20};
  std::vector<VertexId> targets = {5, 15, 25};
  std::vector<Hop> hops = {4, 5, 6};

  DistanceIndex index;
  index.Build(*g, sources, targets, hops);
  ASSERT_EQ(index.num_queries(), 3u);

  for (size_t i = 0; i < 3; ++i) {
    VertexDistMap fwd =
        HopCappedBfs(*g, sources[i], hops[i], Direction::kForward);
    VertexDistMap bwd =
        HopCappedBfs(*g, targets[i], hops[i], Direction::kBackward);
    fwd.ForEach([&](VertexId v, Hop d) {
      EXPECT_EQ(index.DistFromSource(i, v), d);
    });
    bwd.ForEach([&](VertexId v, Hop d) {
      EXPECT_EQ(index.DistToTarget(i, v), d);
    });
  }
}

TEST(DistanceIndex, GammaSetsAreSortedReachSets) {
  auto g = GeneratePath(10);
  DistanceIndex index;
  index.Build(*g, {0}, {9}, {3});
  // Γ(q): within 3 hops of vertex 0 forward: {0,1,2,3}.
  EXPECT_EQ(index.Gamma(0), (std::vector<VertexId>{0, 1, 2, 3}));
  // Γr(q): within 3 hops of 9 on the reverse graph: {6,7,8,9}.
  EXPECT_EQ(index.GammaR(0), (std::vector<VertexId>{6, 7, 8, 9}));
}

TEST(DistanceIndex, MinArraysAggregateAllEndpoints) {
  auto g = GeneratePath(8);
  DistanceIndex index;
  index.Build(*g, {0, 4}, {7, 7}, {2, 2});
  const auto& min_from = index.MinDistFromAnySource();
  EXPECT_EQ(min_from[0], 0);
  EXPECT_EQ(min_from[5], 1);  // from source 4
  EXPECT_EQ(min_from[3], kUnreachable);  // 3 hops from 0, 2-hop cap
  const auto& min_to = index.MinDistToAnyTarget();
  EXPECT_EQ(min_to[7], 0);
  EXPECT_EQ(min_to[5], 2);
  EXPECT_EQ(min_to[4], kUnreachable);
}

TEST(DistanceIndex, DistToOppositeSelectsDirection) {
  auto g = GeneratePath(5);
  DistanceIndex index;
  index.Build(*g, {0}, {4}, {4});
  // Forward search prunes against the target map.
  EXPECT_EQ(index.DistToOpposite(Direction::kForward, 0, 2), 2);
  // Backward search prunes against the source map.
  EXPECT_EQ(index.DistToOpposite(Direction::kBackward, 0, 2), 2);
  EXPECT_EQ(&index.MinDistToOpposite(Direction::kForward),
            &index.MinDistToAnyTarget());
  EXPECT_EQ(&index.MinDistToOpposite(Direction::kBackward),
            &index.MinDistFromAnySource());
}

TEST(DistanceIndex, BuildTimeAndMemoryReported) {
  Rng grng(5);
  auto g = GenerateErdosRenyi(500, 4000, grng);
  DistanceIndex index;
  index.Build(*g, {0, 1}, {2, 3}, {5, 5});
  EXPECT_GE(index.build_seconds(), 0.0);
  EXPECT_GT(index.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace hcpath
