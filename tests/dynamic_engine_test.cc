// Store-backed (dynamic) PathEngine: snapshot pinning at admission,
// per-epoch micro-batch partitioning, cone-precise cache retention across
// updates, blanket flush under renumbering, and the concurrent
// Submit/ApplyUpdates/GC interleaving the tsan label exists for.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/brute_force.h"
#include "graph/graph_builder.h"
#include "graph/graph_store.h"
#include "service/path_engine.h"
#include "test_graphs.h"
#include "util/rng.h"

namespace hcpath {
namespace {

PathEngineOptions UntimedOptions(int threads = 1) {
  PathEngineOptions opt;
  opt.batch.num_threads = threads;
  opt.max_wait_seconds = 0;  // deterministic: cuts on size/Flush only
  opt.max_batch_size = 1024;
  return opt;
}

void ExpectMatchesBruteForce(const Graph& g, const PathQuery& q,
                             const QueryResult& r) {
  ASSERT_TRUE(r.status.ok()) << r.status;
  auto oracle = BruteForcePaths(g, q);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(r.path_count, oracle->size()) << q.ToString();
  if (!r.paths.empty() || !oracle->empty()) {
    EXPECT_EQ(r.paths.ToSortedVectors(), oracle->ToSortedVectors())
        << q.ToString();
  }
}

TEST(DynamicEngine, FixedModeRejectsApplyUpdates) {
  const Graph g = PaperFigure1Graph();
  PathEngine engine(g, UntimedOptions());
  ASSERT_TRUE(engine.status().ok());
  std::vector<EdgeUpdate> batch = {EdgeUpdate::Add(0, 2)};
  auto result = engine.ApplyUpdates(batch);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.current_epoch(), 0u);
}

TEST(DynamicEngine, NullStoreFailsConstruction) {
  PathEngine engine(static_cast<GraphStore*>(nullptr), UntimedOptions());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(DynamicEngine, ResultsTrackAdmittedEpoch) {
  GraphStore store(PaperFigure1Graph());
  PathEngine engine(&store, UntimedOptions());
  ASSERT_TRUE(engine.status().ok());
  EXPECT_EQ(engine.current_epoch(), 0u);

  const PathQuery q{0, 11, 5};
  const Graph g0 = store.Current()->graph;

  auto f0 = engine.Submit(q);
  engine.Flush();
  engine.Drain();
  QueryResult r0 = f0.get();
  EXPECT_EQ(r0.graph_epoch, 0u);
  ExpectMatchesBruteForce(g0, q, r0);

  // Cutting 9->3 kills the 0..9->3..11 paths; the post-update epoch must
  // see the smaller answer.
  std::vector<EdgeUpdate> batch = {EdgeUpdate::Remove(9, 3)};
  auto applied = engine.ApplyUpdates(batch);
  ASSERT_TRUE(applied.status().ok());
  EXPECT_EQ(engine.current_epoch(), 1u);
  const Graph g1 = applied->snapshot->graph;

  auto f1 = engine.Submit(q);
  engine.Flush();
  engine.Drain();
  QueryResult r1 = f1.get();
  EXPECT_EQ(r1.graph_epoch, 1u);
  ExpectMatchesBruteForce(g1, q, r1);
  EXPECT_NE(r0.path_count, r1.path_count);  // the update was observable

  PathEngineStats stats = engine.GetStats();
  EXPECT_EQ(stats.graph_updates, 1u);
}

/// The pinning contract proper: a query admitted BEFORE an update keeps
/// its snapshot even though it runs after, and a single cut carrying
/// queries pinned to different epochs executes once per epoch.
TEST(DynamicEngine, QueriesPinAdmissionSnapshotAcrossUpdates) {
  for (int threads : {1, 4}) {
    GraphStore store(PaperFigure1Graph());
    PathEngineOptions opt = UntimedOptions(threads);
    opt.manual_dispatch = true;  // nothing runs until StepDispatch
    PathEngine engine(&store, opt);
    ASSERT_TRUE(engine.status().ok());

    const PathQuery q{0, 11, 5};
    const Graph g0 = store.Current()->graph;
    auto f_old = engine.Submit(q);  // pins epoch 0

    std::vector<EdgeUpdate> batch = {EdgeUpdate::Remove(9, 3)};
    auto applied = engine.ApplyUpdates(batch);
    ASSERT_TRUE(applied.status().ok());
    const Graph g1 = applied->snapshot->graph;

    auto f_new = engine.Submit(q);  // pins epoch 1
    engine.Flush();
    while (engine.StepDispatch() > 0) {
    }

    QueryResult r_old = f_old.get();
    QueryResult r_new = f_new.get();
    EXPECT_EQ(r_old.graph_epoch, 0u);
    EXPECT_EQ(r_new.graph_epoch, 1u);
    // The pinned query's answer is the OLD graph's, byte-identical to a
    // from-scratch run on it; its co-cut neighbor sees the new graph.
    ExpectMatchesBruteForce(g0, q, r_old);
    ExpectMatchesBruteForce(g1, q, r_new);
    EXPECT_NE(r_old.path_count, r_new.path_count);

    // One cut, two pinned epochs -> two pipeline invocations.
    PathEngineStats stats = engine.GetStats();
    EXPECT_EQ(stats.batches_run, 2u);
    EXPECT_EQ(stats.flush_cuts, 1u);

    // Nothing pins epoch 0 as a query snapshot anymore — but the epoch-1
    // delta overlay patches epoch 0's flat CSR, so the chain keeps that
    // snapshot alive and the engine's post-batch GC must NOT free it.
    ASSERT_TRUE(applied->used_overlay);
    GraphStoreStats store_stats = store.GetStats();
    EXPECT_EQ(store_stats.snapshots_collected, 0u);
    EXPECT_EQ(store_stats.snapshots_live, 2u);
  }
}

/// Cone-precision end to end: updates confined to a component disjoint
/// from every queried endpoint keep the endpoint cache warm — entries are
/// revalidated, not flushed, and the repeat batch is all hits.
TEST(DynamicEngine, DisjointUpdatesKeepDistanceCacheWarm) {
  // Component A: the paper graph on ids 0..15. Component B: a line on ids
  // 16..25, never reachable from A (and vice versa).
  GraphBuilder b(26);
  const Graph paper = PaperFigure1Graph();
  for (const auto& [u, v] : paper.Edges()) b.AddEdge(u, v);
  for (VertexId v = 16; v + 1 < 26; ++v) b.AddEdge(v, v + 1);
  GraphStore store(*b.Build());

  PathEngine engine(&store, UntimedOptions());
  ASSERT_TRUE(engine.status().ok());
  const std::vector<PathQuery> queries = PaperFigure1Queries();

  auto run_round = [&] {
    std::vector<std::future<QueryResult>> futures;
    for (const PathQuery& q : queries) futures.push_back(engine.Submit(q));
    engine.Flush();
    engine.Drain();
    for (auto& f : futures) ASSERT_TRUE(f.get().status.ok());
  };

  run_round();  // cold: fills the cache
  const EndpointDistanceCache* cache = engine.distance_cache();
  ASSERT_NE(cache, nullptr);
  const size_t warm_entries = cache->entries();
  ASSERT_GT(warm_entries, 0u);

  // Touch only component B.
  std::vector<EdgeUpdate> batch = {EdgeUpdate::Remove(20, 21),
                                   EdgeUpdate::Add(16, 25)};
  ASSERT_TRUE(engine.ApplyUpdates(batch).status().ok());

  // Every entry survived as revalidated-to-epoch-1...
  EXPECT_EQ(cache->entries(), warm_entries);
  EXPECT_EQ(cache->entries_revalidated(), warm_entries);
  EXPECT_EQ(cache->entries_invalidated(), 0u);

  // ...so the repeat round at epoch 1 misses nothing.
  const uint64_t misses_before = cache->misses();
  run_round();
  EXPECT_EQ(cache->misses(), misses_before);
  EXPECT_EQ(cache->stale_misses(), 0u);
}

/// An update overlapping cached cones invalidates those entries, and the
/// next round's answers are correct for the new graph (no stale serving).
TEST(DynamicEngine, OverlappingUpdatesInvalidateAndStayCorrect) {
  GraphStore store(PaperFigure1Graph());
  PathEngine engine(&store, UntimedOptions());
  ASSERT_TRUE(engine.status().ok());
  const std::vector<PathQuery> queries = PaperFigure1Queries();

  std::vector<std::future<QueryResult>> warm;
  for (const PathQuery& q : queries) warm.push_back(engine.Submit(q));
  engine.Flush();
  engine.Drain();
  for (auto& f : warm) ASSERT_TRUE(f.get().status.ok());

  std::vector<EdgeUpdate> batch = {EdgeUpdate::Remove(1, 7),
                                   EdgeUpdate::Add(5, 9)};
  auto applied = engine.ApplyUpdates(batch);
  ASSERT_TRUE(applied.status().ok());
  const Graph g1 = applied->snapshot->graph;
  EXPECT_GT(engine.distance_cache()->entries_invalidated(), 0u);

  std::vector<std::future<QueryResult>> futures;
  for (const PathQuery& q : queries) futures.push_back(engine.Submit(q));
  engine.Flush();
  engine.Drain();
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryResult r = futures[i].get();
    EXPECT_EQ(r.graph_epoch, 1u);
    ExpectMatchesBruteForce(g1, queries[i], r);
  }
}

/// With a non-identity remap the renumbering is rebuilt per snapshot and
/// the endpoint cache (keyed in run-graph ids) is blanket-flushed — the
/// documented fallback — while results stay correct.
TEST(DynamicEngine, RemapModeFlushesCacheButStaysCorrect) {
  GraphStore store(PaperFigure1Graph());
  PathEngineOptions opt = UntimedOptions();
  opt.batch.remap_mode = RemapMode::kDegree;
  PathEngine engine(&store, opt);
  ASSERT_TRUE(engine.status().ok());
  const std::vector<PathQuery> queries = PaperFigure1Queries();

  std::vector<std::future<QueryResult>> warm;
  for (const PathQuery& q : queries) warm.push_back(engine.Submit(q));
  engine.Flush();
  engine.Drain();
  for (auto& f : warm) ASSERT_TRUE(f.get().status.ok());
  ASSERT_GT(engine.distance_cache()->entries(), 0u);

  std::vector<EdgeUpdate> batch = {EdgeUpdate::Remove(9, 3)};
  auto applied = engine.ApplyUpdates(batch);
  ASSERT_TRUE(applied.status().ok());
  EXPECT_EQ(engine.distance_cache()->entries(), 0u);  // blanket flush

  const Graph g1 = applied->snapshot->graph;
  std::vector<std::future<QueryResult>> futures;
  for (const PathQuery& q : queries) futures.push_back(engine.Submit(q));
  engine.Flush();
  engine.Drain();
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectMatchesBruteForce(g1, queries[i], futures[i].get());
  }
}

/// The raciest surface of this PR, written for `ctest -L tsan`: submitters,
/// an updater, and the store's deferred GC run concurrently, and every
/// result must still be byte-identical to a from-scratch run on the exact
/// snapshot stamped into it.
TEST(DynamicEngine, ConcurrentSubmitUpdateGc) {
  GraphStore store(PaperFigure1Graph());
  PathEngineOptions opt = UntimedOptions(/*threads=*/2);
  opt.max_batch_size = 4;  // force many small cuts while updates land
  PathEngine engine(&store, opt);
  ASSERT_TRUE(engine.status().ok());

  // Epoch -> graph content, recorded by the updater as batches install.
  std::mutex epochs_mu;
  std::map<uint64_t, Graph> graph_at_epoch;
  graph_at_epoch.emplace(0, store.Current()->graph);

  const std::vector<PathQuery> queries = PaperFigure1Queries();
  constexpr int kRounds = 60;
  constexpr int kSubmitters = 2;

  std::vector<std::pair<PathQuery, std::future<QueryResult>>> results[
      kSubmitters];
  std::vector<std::thread> threads;
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kRounds; ++i) {
        const PathQuery& q = queries[rng.NextBounded(queries.size())];
        results[t].emplace_back(q, engine.Submit(q));
        if (i % 8 == 7) engine.Flush();
      }
    });
  }
  threads.emplace_back([&] {
    Rng rng(42);
    // Toggle edges the paper queries actually traverse, so stale serving
    // would be caught, not masked.
    const std::vector<std::pair<VertexId, VertexId>> pool = {
        {9, 3}, {1, 7}, {6, 13}, {0, 4}, {12, 11}};
    for (int i = 0; i < 20; ++i) {
      const auto& e = pool[rng.NextBounded(pool.size())];
      const Graph current = store.Current()->graph;
      std::vector<EdgeUpdate> batch = {
          current.HasEdge(e.first, e.second)
              ? EdgeUpdate::Remove(e.first, e.second)
              : EdgeUpdate::Add(e.first, e.second)};
      auto applied = engine.ApplyUpdates(batch);
      ASSERT_TRUE(applied.status().ok());
      std::lock_guard<std::mutex> lk(epochs_mu);
      graph_at_epoch.emplace(applied->snapshot->epoch,
                             applied->snapshot->graph);
    }
  });
  for (std::thread& th : threads) th.join();
  engine.Flush();
  engine.Drain();

  size_t checked = 0;
  for (int t = 0; t < kSubmitters; ++t) {
    for (auto& [q, f] : results[t]) {
      QueryResult r = f.get();
      auto it = graph_at_epoch.find(r.graph_epoch);
      ASSERT_NE(it, graph_at_epoch.end()) << "epoch " << r.graph_epoch;
      ExpectMatchesBruteForce(it->second, q, r);
      ++checked;
    }
  }
  EXPECT_EQ(checked, static_cast<size_t>(kRounds * kSubmitters));

  // Quiesced: every superseded snapshot has drained its pins and been
  // collected. Our graph_at_epoch copies of overlay graphs pin their flat
  // base snapshots (by design — a copied overlay graph must keep the CSR
  // it patches alive), so drop them before checking. What may remain
  // beyond the current snapshot is the current overlay chain's base.
  graph_at_epoch.clear();
  store.CollectGarbage();
  GraphStoreStats stats = store.GetStats();
  const uint64_t chain_base =
      store.Current()->graph.overlay() != nullptr ? 1u : 0u;
  EXPECT_EQ(stats.snapshots_live, 1u + chain_base);
  EXPECT_EQ(stats.snapshots_collected + chain_base, stats.snapshots_retired);
}

/// Incremental cache repair end to end: after an update that invalidates
/// cached cones, the engine rebuilds those entries against the new
/// snapshot before publishing it, so the post-update round is miss-free —
/// and with repair disabled the same round pays invalidated misses.
TEST(DynamicEngine, RepairRestoresWarmHitRateAfterUpdates) {
  const std::vector<PathQuery> queries = PaperFigure1Queries();
  const std::vector<EdgeUpdate> batch = {EdgeUpdate::Remove(1, 7),
                                         EdgeUpdate::Add(5, 9)};
  for (bool repair : {true, false}) {
    SCOPED_TRACE(repair ? "repair on" : "repair off");
    GraphStore store(PaperFigure1Graph());
    PathEngineOptions opt = UntimedOptions();
    opt.cache_repair_max_keys = repair ? 1024 : 0;
    PathEngine engine(&store, opt);
    ASSERT_TRUE(engine.status().ok());

    auto run_round = [&](const Graph& g, uint64_t epoch) {
      std::vector<std::future<QueryResult>> futures;
      for (const PathQuery& q : queries) futures.push_back(engine.Submit(q));
      engine.Flush();
      engine.Drain();
      for (size_t i = 0; i < queries.size(); ++i) {
        QueryResult r = futures[i].get();
        EXPECT_EQ(r.graph_epoch, epoch);
        ExpectMatchesBruteForce(g, queries[i], r);
      }
    };

    run_round(store.Current()->graph, 0);  // cold: fills the cache
    const EndpointDistanceCache* cache = engine.distance_cache();
    ASSERT_NE(cache, nullptr);
    const size_t warm_entries = cache->entries();
    ASSERT_GT(warm_entries, 0u);

    auto applied = engine.ApplyUpdates(batch);
    ASSERT_TRUE(applied.status().ok());
    const uint64_t killed = cache->entries_invalidated();
    ASSERT_GT(killed, 0u);  // the batch overlaps cached cones

    PathEngineStats stats = engine.GetStats();
    const uint64_t misses_before = cache->misses();
    run_round(applied->snapshot->graph, 1);

    if (repair) {
      // Every dead key was rebuilt before the new epoch went live, so the
      // post-update round misses nothing and the cache never shrank.
      EXPECT_EQ(stats.cache_entries_repaired, killed);
      EXPECT_EQ(stats.cache_repair_skipped, 0u);
      EXPECT_EQ(cache->entries(), warm_entries);
      EXPECT_EQ(cache->misses(), misses_before);
      EXPECT_EQ(cache->invalidated_misses(), 0u);
    } else {
      // Lazy refill: the invalidated keys miss once each, attributed to
      // invalidation (not never-seen) by the tombstone split.
      EXPECT_EQ(stats.cache_entries_repaired, 0u);
      EXPECT_GT(cache->misses(), misses_before);
      EXPECT_EQ(cache->invalidated_misses(), cache->misses() - misses_before);
    }
  }
}

/// Max-snapshot-lag enforcement: an update install fails still-queued
/// queries whose pinned epoch lags beyond the bound — with the documented
/// FailedPrecondition — releases their pins, and leaves fresher queued
/// work untouched.
TEST(DynamicEngine, MaxSnapshotLagFailsOverLaggedQueuedQueries) {
  GraphStore store(PaperFigure1Graph());
  PathEngineOptions opt = UntimedOptions();
  opt.manual_dispatch = true;  // nothing dispatches: queries sit queued
  opt.admission.max_snapshot_lag = 1;
  PathEngine engine(&store, opt);
  ASSERT_TRUE(engine.status().ok());

  const PathQuery q{0, 11, 5};
  auto f_old = engine.Submit(q);  // pins epoch 0

  // Lag 1 after the first update: within the bound, stays queued.
  std::vector<EdgeUpdate> b1 = {EdgeUpdate::Remove(9, 3)};
  ASSERT_TRUE(engine.ApplyUpdates(b1).status().ok());
  EXPECT_EQ(f_old.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);

  auto f_mid = engine.Submit(q);  // pins epoch 1

  // Lag 2 after the second: the epoch-0 query fails without dispatch; the
  // epoch-1 query (lag 1) survives.
  std::vector<EdgeUpdate> b2 = {EdgeUpdate::Add(0, 2)};
  auto applied = engine.ApplyUpdates(b2);
  ASSERT_TRUE(applied.status().ok());

  QueryResult r_old = f_old.get();
  EXPECT_EQ(r_old.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r_old.status.message().find("query snapshot over max lag"),
            std::string::npos)
      << r_old.status;
  EXPECT_EQ(r_old.graph_epoch, 0u);

  // The survivor still runs on its pinned epoch-1 snapshot.
  engine.Flush();
  while (engine.StepDispatch() > 0) {
  }
  QueryResult r_mid = f_mid.get();
  EXPECT_EQ(r_mid.graph_epoch, 1u);
  ASSERT_TRUE(r_mid.status.ok()) << r_mid.status;

  PathEngineStats stats = engine.GetStats();
  EXPECT_EQ(stats.queries_lag_failed, 1u);
  const TenantAdmissionStats& ts = stats.tenants.at(kDefaultTenant);
  EXPECT_EQ(ts.lag_failed, 1u);
  // The admission law with the new outcome: every admitted query landed in
  // exactly one of {completed, lag_failed} (nothing still queued).
  EXPECT_EQ(ts.admitted, ts.completed + ts.lag_failed);
}

/// max_snapshot_lag = 0 (the default) must never fail a queued query, no
/// matter how far its pin falls behind.
TEST(DynamicEngine, DefaultLagZeroNeverFailsQueued) {
  GraphStore store(PaperFigure1Graph());
  PathEngineOptions opt = UntimedOptions();
  opt.manual_dispatch = true;
  PathEngine engine(&store, opt);
  ASSERT_TRUE(engine.status().ok());

  const PathQuery q{0, 11, 5};
  const Graph g0 = store.Current()->graph;
  auto f = engine.Submit(q);
  for (int i = 0; i < 4; ++i) {
    std::vector<EdgeUpdate> b = {
        EdgeUpdate::Add(0, static_cast<VertexId>(2 + i))};
    ASSERT_TRUE(engine.ApplyUpdates(b).status().ok());
  }
  engine.Flush();
  while (engine.StepDispatch() > 0) {
  }
  QueryResult r = f.get();
  EXPECT_EQ(r.graph_epoch, 0u);
  ExpectMatchesBruteForce(g0, q, r);
  EXPECT_EQ(engine.GetStats().queries_lag_failed, 0u);
}

}  // namespace
}  // namespace hcpath
