// Determinism of the parallel batch engines: with any worker count, the
// emitted path stream, per-query counts, and work counters must be
// byte-identical to the single-threaded reference run (num_threads = 1).
// This suite is also the TSan workload (`ctest -L tsan` under
// -DHCPATH_SANITIZE=thread).

#include <gtest/gtest.h>

#include "bfs/msbfs.h"
#include "core/basic_enum.h"
#include "core/batch_enum.h"
#include "graph/generators.h"
#include "test_graphs.h"
#include "util/rng.h"

namespace hcpath {
namespace {

std::vector<PathQuery> RandomQueries(const Graph& g, size_t n, int k,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<PathQuery> queries;
  while (queries.size() < n) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    VertexId t = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    if (s != t) queries.push_back({s, t, k});
  }
  return queries;
}

/// Runs `algorithm` with 1 and with `threads` workers and asserts the
/// emission streams (order included), counts, and counters are identical.
void ExpectParallelMatchesSequential(
    const Graph& g, const std::vector<PathQuery>& queries,
    const BatchOptions& base, bool batch_enum, bool optimized_order,
    int threads) {
  BatchOptions seq = base;
  seq.num_threads = 1;
  BatchOptions par = base;
  par.num_threads = threads;

  CollectingSink seq_sink(queries.size()), par_sink(queries.size());
  BatchStats seq_stats, par_stats;
  Status s1, s2;
  if (batch_enum) {
    s1 = RunBatchEnum(g, queries, seq, optimized_order, &seq_sink, &seq_stats);
    s2 = RunBatchEnum(g, queries, par, optimized_order, &par_sink, &par_stats);
  } else {
    s1 = RunBasicEnum(g, queries, seq, optimized_order, &seq_sink, &seq_stats);
    s2 = RunBasicEnum(g, queries, par, optimized_order, &par_sink, &par_stats);
  }
  ASSERT_TRUE(s1.ok()) << s1;
  ASSERT_TRUE(s2.ok()) << s2;

  for (size_t i = 0; i < queries.size(); ++i) {
    const PathSet& a = seq_sink.paths(i);
    const PathSet& b = par_sink.paths(i);
    ASSERT_EQ(a.size(), b.size()) << "query " << i;
    // Byte-identical emission: same paths in the same order.
    for (size_t p = 0; p < a.size(); ++p) {
      EXPECT_TRUE(std::equal(a[p].begin(), a[p].end(), b[p].begin(),
                             b[p].end()))
          << "query " << i << " path " << p;
    }
  }
  // Work counters must merge to the sequential totals.
  EXPECT_EQ(seq_stats.paths_emitted, par_stats.paths_emitted);
  EXPECT_EQ(seq_stats.edges_expanded, par_stats.edges_expanded);
  EXPECT_EQ(seq_stats.edges_pruned, par_stats.edges_pruned);
  EXPECT_EQ(seq_stats.join_probes, par_stats.join_probes);
  EXPECT_EQ(seq_stats.join_rejected, par_stats.join_rejected);
  EXPECT_EQ(seq_stats.num_clusters, par_stats.num_clusters);
  EXPECT_EQ(seq_stats.sharing_nodes, par_stats.sharing_nodes);
  EXPECT_EQ(seq_stats.dominating_nodes, par_stats.dominating_nodes);
  EXPECT_EQ(seq_stats.shortcut_splices, par_stats.shortcut_splices);
  EXPECT_EQ(seq_stats.cached_paths, par_stats.cached_paths);
  EXPECT_EQ(seq_stats.cache_peak_vertices, par_stats.cache_peak_vertices);
}

TEST(ParallelEnum, BatchEnumPaperGraphFourThreads) {
  Graph g = PaperFigure1Graph();
  auto queries = PaperFigure1Queries();
  for (double gamma : {0.1, 0.5, 1.0}) {
    BatchOptions opt;
    opt.gamma = gamma;
    ExpectParallelMatchesSequential(g, queries, opt, /*batch_enum=*/true,
                                    /*optimized_order=*/false, 4);
    ExpectParallelMatchesSequential(g, queries, opt, /*batch_enum=*/true,
                                    /*optimized_order=*/true, 4);
  }
}

TEST(ParallelEnum, BasicEnumPaperGraphFourThreads) {
  Graph g = PaperFigure1Graph();
  auto queries = PaperFigure1Queries();
  BatchOptions opt;
  ExpectParallelMatchesSequential(g, queries, opt, /*batch_enum=*/false,
                                  /*optimized_order=*/false, 4);
  ExpectParallelMatchesSequential(g, queries, opt, /*batch_enum=*/false,
                                  /*optimized_order=*/true, 4);
}

TEST(ParallelEnum, BatchEnumRandomGraphManyClusters) {
  Rng rng(7);
  auto g = GenerateBarabasiAlbert(300, 3, rng);
  ASSERT_TRUE(g.ok());
  auto queries = RandomQueries(*g, 40, 4, 11);
  for (int threads : {2, 4, 8}) {
    BatchOptions opt;
    ExpectParallelMatchesSequential(*g, queries, opt, /*batch_enum=*/true,
                                    /*optimized_order=*/false, threads);
  }
}

TEST(ParallelEnum, BasicEnumRandomGraph) {
  Rng rng(19);
  auto g = GenerateErdosRenyi(200, 800, rng);
  ASSERT_TRUE(g.ok());
  auto queries = RandomQueries(*g, 30, 5, 23);
  BatchOptions opt;
  ExpectParallelMatchesSequential(*g, queries, opt, /*batch_enum=*/false,
                                  /*optimized_order=*/false, 4);
}

TEST(ParallelEnum, ZeroMeansHardwareConcurrency) {
  Graph g = PaperFigure1Graph();
  auto queries = PaperFigure1Queries();
  BatchOptions opt;
  opt.num_threads = 0;  // hardware_concurrency; must stay correct
  CollectingSink sink(queries.size());
  ASSERT_TRUE(RunBatchEnum(g, queries, opt, false, &sink, nullptr).ok());
  EXPECT_EQ(sink.paths(0).size(), 3u);
  EXPECT_EQ(sink.paths(1).size(), 3u);
  EXPECT_EQ(sink.paths(2).size(), 1u);
  EXPECT_EQ(sink.paths(3).size(), 2u);
  EXPECT_EQ(sink.paths(4).size(), 2u);
}

TEST(ParallelEnum, ErrorsSurfaceDeterministically) {
  auto g = GenerateComplete(10);
  ASSERT_TRUE(g.ok());
  std::vector<PathQuery> queries = {{0, 9, 5}, {1, 8, 5}};
  BatchOptions opt;
  opt.max_paths_per_query = 10;
  opt.num_threads = 4;
  CountingSink sink(queries.size());
  Status st = RunBatchEnum(*g, queries, opt, false, &sink, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(ParallelEnum, FailingClusterEmitsSameStreamAsSequential) {
  // Two clusters with disjoint neighborhoods: a complete blob (explodes
  // under a tiny max_paths cap) and a long path (exactly one result). The
  // healthy cluster comes first in query order, so the parallel merge must
  // replay it — and any pre-error paths of the failing cluster — before
  // surfacing the error, exactly like the sequential early return.
  GraphBuilder b(20);
  for (VertexId u = 0; u < 10; ++u) {
    for (VertexId v = 0; v < 10; ++v) {
      if (u != v) b.AddEdge(u, v);
    }
  }
  for (VertexId v = 10; v < 19; ++v) b.AddEdge(v, v + 1);
  Graph g = *b.Build();

  std::vector<PathQuery> queries = {{10, 19, 9}, {0, 9, 5}};
  BatchOptions seq;
  seq.max_paths_per_query = 10;
  seq.num_threads = 1;
  BatchOptions par = seq;
  par.num_threads = 4;

  CollectingSink seq_sink(2), par_sink(2);
  BatchStats seq_stats, par_stats;
  Status s1 = RunBatchEnum(g, queries, seq, false, &seq_sink, &seq_stats);
  Status s2 = RunBatchEnum(g, queries, par, false, &par_sink, &par_stats);
  ASSERT_GT(seq_stats.num_clusters, 1u);  // the scenario needs >= 2 clusters
  EXPECT_EQ(s1.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s2.code(), s1.code());
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(seq_sink.paths(i).ToSortedVectors(),
              par_sink.paths(i).ToSortedVectors())
        << "query " << i;
  }
  EXPECT_EQ(seq_sink.paths(0).size(), 1u);  // healthy cluster fully emitted
}

TEST(ParallelEnum, MsBfsWaveShardingMatchesSequential) {
  Rng rng(5);
  auto g = GenerateBarabasiAlbert(500, 4, rng);
  ASSERT_TRUE(g.ok());
  // > 64 unique sources forces several waves.
  std::vector<VertexId> sources;
  std::vector<Hop> caps;
  Rng srng(31);
  for (int i = 0; i < 150; ++i) {
    sources.push_back(static_cast<VertexId>(srng.NextBounded(500)));
    caps.push_back(static_cast<Hop>(2 + srng.NextBounded(4)));
  }
  MsBfsResult seq =
      MultiSourceBfs(*g, sources, caps, Direction::kForward, nullptr);
  ThreadPool pool(4);
  MsBfsResult par =
      MultiSourceBfs(*g, sources, caps, Direction::kForward, &pool);

  EXPECT_EQ(seq.total_discovered, par.total_discovered);
  EXPECT_EQ(seq.min_dist, par.min_dist);
  ASSERT_EQ(seq.per_source.size(), par.per_source.size());
  for (size_t i = 0; i < seq.per_source.size(); ++i) {
    EXPECT_EQ(seq.per_source[i].size(), par.per_source[i].size()) << i;
    EXPECT_EQ(seq.per_source[i].SortedKeys(), par.per_source[i].SortedKeys())
        << i;
    seq.per_source[i].ForEach([&](VertexId v, Hop d) {
      EXPECT_EQ(par.per_source[i].Lookup(v), d) << "source " << i;
    });
  }
}

}  // namespace
}  // namespace hcpath
