// GraphBuilder::ApplyUpdates batch semantics and the GraphStore snapshot
// lifecycle: epoch stamping, reader pinning, deferred GC.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_store.h"
#include "test_graphs.h"
#include "util/rng.h"

namespace hcpath {
namespace {

using Edge = std::pair<VertexId, VertexId>;

Graph LineGraph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1);
  return *b.Build();
}

/// Full CSR content equality (ids, counts, adjacency in stored order).
void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    const auto oa = a.OutNeighbors(v);
    const auto ob = b.OutNeighbors(v);
    ASSERT_EQ(std::vector<VertexId>(oa.begin(), oa.end()),
              std::vector<VertexId>(ob.begin(), ob.end()))
        << "out-adjacency of " << v;
    const auto ia = a.InNeighbors(v);
    const auto ib = b.InNeighbors(v);
    ASSERT_EQ(std::vector<VertexId>(ia.begin(), ia.end()),
              std::vector<VertexId>(ib.begin(), ib.end()))
        << "in-adjacency of " << v;
  }
}

TEST(ApplyUpdates, AddAndRemove) {
  const Graph base = LineGraph(5);  // 0->1->2->3->4
  std::vector<EdgeUpdate> batch = {EdgeUpdate::Add(0, 3),
                                   EdgeUpdate::Remove(2, 3)};
  UpdateApplyStats stats;
  const Graph g = *GraphBuilder::ApplyUpdates(base, batch, &stats);
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(2, 3));
  EXPECT_TRUE(g.HasEdge(0, 1));  // untouched edges survive
  EXPECT_EQ(g.NumEdges(), base.NumEdges());  // +1 - 1
  EXPECT_EQ(stats.added, std::vector<Edge>({{0, 3}}));
  EXPECT_EQ(stats.removed, std::vector<Edge>({{2, 3}}));
  // Base is untouched (snapshot semantics).
  EXPECT_FALSE(base.HasEdge(0, 3));
  EXPECT_TRUE(base.HasEdge(2, 3));
}

TEST(ApplyUpdates, LastWriteWinsWithinBatch) {
  const Graph base = LineGraph(4);
  // (0,2): add then remove -> absent and a no-op overall (never present).
  // (1,2): remove then add -> stays present; the transient remove must not
  // surface in the effective-removed list.
  std::vector<EdgeUpdate> batch = {
      EdgeUpdate::Add(0, 2), EdgeUpdate::Remove(0, 2),
      EdgeUpdate::Remove(1, 2), EdgeUpdate::Add(1, 2)};
  UpdateApplyStats stats;
  const Graph g = *GraphBuilder::ApplyUpdates(base, batch, &stats);
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(stats.added.empty());
  EXPECT_TRUE(stats.removed.empty());
  ExpectSameGraph(g, base);
}

TEST(ApplyUpdates, NoopsAreCountedNotApplied) {
  const Graph base = LineGraph(4);
  std::vector<EdgeUpdate> batch = {
      EdgeUpdate::Add(0, 1),      // already present
      EdgeUpdate::Remove(0, 3),   // absent
      EdgeUpdate::Add(2, 2)};     // self-loop
  UpdateApplyStats stats;
  const Graph g = *GraphBuilder::ApplyUpdates(base, batch, &stats);
  ExpectSameGraph(g, base);
  EXPECT_EQ(stats.add_noops, 1u);
  EXPECT_EQ(stats.remove_noops, 1u);
  EXPECT_EQ(stats.self_loops_dropped, 1u);
  EXPECT_TRUE(stats.added.empty());
  EXPECT_TRUE(stats.removed.empty());
}

TEST(ApplyUpdates, GrowsVertexSpace) {
  const Graph base = LineGraph(3);
  std::vector<EdgeUpdate> batch = {EdgeUpdate::Add(2, 7)};
  const Graph g = *GraphBuilder::ApplyUpdates(base, batch);
  EXPECT_EQ(g.NumVertices(), 8u);
  EXPECT_TRUE(g.HasEdge(2, 7));
  // Grown-but-untouched ids exist as isolated vertices.
  EXPECT_TRUE(g.OutNeighbors(5).empty());
}

TEST(ApplyUpdates, InvalidVertexFails) {
  const Graph base = LineGraph(3);
  std::vector<EdgeUpdate> batch = {EdgeUpdate::Add(kInvalidVertex, 1)};
  auto result = GraphBuilder::ApplyUpdates(base, batch);
  EXPECT_FALSE(result.status().ok());
}

/// The structural-identity contract: an updated CSR is indistinguishable
/// from a from-scratch Build over the surviving edge set.
TEST(ApplyUpdates, MatchesFromScratchBuildFuzz) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const VertexId n = 10 + static_cast<VertexId>(rng.NextBounded(40));
    const Graph base = *GenerateErdosRenyi(n, 3 * n, rng);

    std::vector<EdgeUpdate> batch;
    const size_t num_updates = 1 + rng.NextBounded(20);
    for (size_t i = 0; i < num_updates; ++i) {
      const VertexId u = static_cast<VertexId>(rng.NextBounded(n + 2));
      const VertexId v = static_cast<VertexId>(rng.NextBounded(n + 2));
      batch.push_back(rng.NextBounded(2) == 0 ? EdgeUpdate::Add(u, v)
                                              : EdgeUpdate::Remove(u, v));
    }
    const Graph updated = *GraphBuilder::ApplyUpdates(base, batch);

    // Shadow: replay the batch onto an edge list, rebuild from scratch.
    std::vector<Edge> edges = base.Edges();
    for (const EdgeUpdate& u : batch) {
      const Edge e{u.u, u.v};
      edges.erase(std::remove(edges.begin(), edges.end(), e), edges.end());
      if (u.op == EdgeUpdate::Op::kAddEdge && u.u != u.v) edges.push_back(e);
    }
    GraphBuilder b(updated.NumVertices());
    for (const Edge& e : edges) b.AddEdge(e.first, e.second);
    const Graph rebuilt = *b.Build();
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectSameGraph(updated, rebuilt);
  }
}

TEST(GraphStore, EpochAdvancesPerBatch) {
  GraphStore store(LineGraph(5));
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_EQ(store.Current()->epoch, 0u);

  std::vector<EdgeUpdate> batch = {EdgeUpdate::Add(0, 2)};
  auto r1 = store.ApplyUpdates(batch);
  ASSERT_TRUE(r1.status().ok());
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_EQ(r1->snapshot->epoch, 1u);
  EXPECT_TRUE(r1->snapshot->graph.HasEdge(0, 2));
  EXPECT_EQ(r1->applied.added, std::vector<Edge>({{0, 2}}));

  // A no-op batch still installs a new epoch: epochs identify admission
  // points, not content changes.
  std::vector<EdgeUpdate> noop = {EdgeUpdate::Add(0, 2)};
  auto r2 = store.ApplyUpdates(noop);
  ASSERT_TRUE(r2.status().ok());
  EXPECT_EQ(store.epoch(), 2u);
  EXPECT_TRUE(r2->applied.added.empty());
}

TEST(GraphStore, PinnedSnapshotSurvivesUpdates) {
  // Threshold 0 = always-rebuild, so this test exercises pure pin
  // semantics; overlay-chain base retention is covered separately below.
  GraphStore store(LineGraph(5), GraphStoreOptions{.compaction_threshold = 0});
  std::shared_ptr<const GraphSnapshot> pinned = store.Current();

  std::vector<EdgeUpdate> batch = {EdgeUpdate::Remove(0, 1)};
  ASSERT_TRUE(store.ApplyUpdates(batch).status().ok());

  // The pinned epoch-0 view still has the edge; the current one does not.
  EXPECT_TRUE(pinned->graph.HasEdge(0, 1));
  EXPECT_FALSE(store.Current()->graph.HasEdge(0, 1));

  // While pinned, GC cannot free it.
  EXPECT_EQ(store.CollectGarbage(), 0u);
  GraphStoreStats stats = store.GetStats();
  EXPECT_EQ(stats.snapshots_retired, 1u);
  EXPECT_EQ(stats.snapshots_collected, 0u);
  EXPECT_EQ(stats.snapshots_live, 2u);

  // Dropping the pin makes it collectable.
  pinned.reset();
  EXPECT_EQ(store.CollectGarbage(), 1u);
  stats = store.GetStats();
  EXPECT_EQ(stats.snapshots_collected, 1u);
  EXPECT_EQ(stats.snapshots_live, 1u);
}

TEST(GraphStore, ApplyUpdatesCollectsUnpinnedRetirees) {
  GraphStore store(LineGraph(5), GraphStoreOptions{.compaction_threshold = 0});
  // Nobody pins anything: each batch retires its predecessor and the
  // opportunistic GC inside ApplyUpdates frees it (always-rebuild mode;
  // an overlay chain would instead keep its flat base snapshot alive).
  for (int i = 0; i < 4; ++i) {
    std::vector<EdgeUpdate> batch = {
        EdgeUpdate::Add(0, static_cast<VertexId>(2 + i))};
    ASSERT_TRUE(store.ApplyUpdates(batch).status().ok());
  }
  GraphStoreStats stats = store.GetStats();
  EXPECT_EQ(stats.update_batches, 4u);
  EXPECT_EQ(stats.snapshots_created, 5u);  // seed + 4
  EXPECT_EQ(stats.snapshots_retired, 4u);
  EXPECT_EQ(stats.snapshots_collected, 4u);
  EXPECT_EQ(stats.snapshots_live, 1u);
  EXPECT_EQ(stats.edges_added, 4u);
  EXPECT_EQ(stats.edges_removed, 0u);
}

TEST(GraphStore, FailedBatchLeavesStoreUntouched) {
  GraphStore store(LineGraph(5));
  const uint64_t v0 = store.Current()->graph.version();
  std::vector<EdgeUpdate> bad = {EdgeUpdate::Add(1, kInvalidVertex)};
  EXPECT_FALSE(store.ApplyUpdates(bad).status().ok());
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_EQ(store.Current()->graph.version(), v0);
  EXPECT_EQ(store.GetStats().update_batches, 0u);
}

// The shard-supervisor restart path (src/service/sharded_service.cc,
// HandleRestartDone) re-pins store->Current() while the update stream and
// opportunistic GC keep running. This is the tsan-label race test for
// that triangle: restarting readers pin/drop snapshots, a writer installs
// new epochs, and an explicit collector frees drained chains — all
// concurrently, with the stats conservation law checked at the end.
TEST(GraphStore, ConcurrentRestartUpdateGc) {
  GraphStore store(LineGraph(8));
  constexpr int kBatches = 64;
  constexpr int kRestartThreads = 3;
  constexpr int kRepinsPerThread = 200;

  std::thread writer([&] {
    for (int i = 0; i < kBatches; ++i) {
      // Toggle one edge so every batch is valid against its predecessor.
      std::vector<EdgeUpdate> batch = {i % 2 == 0 ? EdgeUpdate::Add(0, 7)
                                                  : EdgeUpdate::Remove(0, 7)};
      ASSERT_TRUE(store.ApplyUpdates(batch).status().ok());
    }
  });
  std::vector<std::thread> restarts;
  for (int t = 0; t < kRestartThreads; ++t) {
    restarts.emplace_back([&] {
      uint64_t last_epoch = 0;
      for (int i = 0; i < kRepinsPerThread; ++i) {
        // A restarting shard pins whatever is current, reads through the
        // pin (epochs are monotone; adjacency must be coherent), drops it.
        std::shared_ptr<const GraphSnapshot> snap = store.Current();
        EXPECT_GE(snap->epoch, last_epoch);
        last_epoch = snap->epoch;
        const auto out = snap->graph.OutNeighbors(0);
        EXPECT_GE(out.size(), 1u);  // 0->1 is never touched
      }
    });
  }
  std::thread collector([&] {
    for (int i = 0; i < kRepinsPerThread; ++i) store.CollectGarbage();
  });
  writer.join();
  for (std::thread& t : restarts) t.join();
  collector.join();

  EXPECT_EQ(store.epoch(), static_cast<uint64_t>(kBatches));
  store.CollectGarbage();  // any still-live retirees have drained by now
  GraphStoreStats stats = store.GetStats();
  EXPECT_EQ(stats.update_batches, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(stats.snapshots_created, static_cast<uint64_t>(kBatches) + 1);
  EXPECT_EQ(stats.snapshots_retired, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(stats.snapshots_live,
            stats.snapshots_created - stats.snapshots_collected);
  EXPECT_EQ(stats.snapshots_live, 1u);
}

TEST(GraphStore, SnapshotsHaveDistinctGraphVersions) {
  GraphStore store(PaperFigure1Graph());
  std::shared_ptr<const GraphSnapshot> s0 = store.Current();
  std::vector<EdgeUpdate> batch = {EdgeUpdate::Add(0, 2)};
  ASSERT_TRUE(store.ApplyUpdates(batch).status().ok());
  // version() is the content-identity key the remap/kernel caches use;
  // distinct snapshots must never collide.
  EXPECT_NE(s0->graph.version(), store.Current()->graph.version());
}

}  // namespace
}  // namespace hcpath
