#ifndef HCPATH_TESTS_TEST_GRAPHS_H_
#define HCPATH_TESTS_TEST_GRAPHS_H_

#include "core/query.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace hcpath {

/// The running example of the paper (Fig 1): vertices v0..v15 with the
/// edges needed to realize the HC-s-t paths listed in Examples 2.1 / 4.2 /
/// 4.3. Expected results:
///   q0(v0, v11, 5) -> 3 paths, q1(v2, v13, 5) -> 3, q2(v5, v12, 5) -> 1,
///   q3(v4, v14, 4) -> 2, q4(v9, v14, 3) -> 2.
inline Graph PaperFigure1Graph() {
  GraphBuilder b(16);
  b.AddEdge(0, 1);
  b.AddEdge(0, 4);
  b.AddEdge(2, 1);
  b.AddEdge(2, 4);
  b.AddEdge(5, 1);
  b.AddEdge(1, 7);
  b.AddEdge(1, 8);
  b.AddEdge(7, 10);
  b.AddEdge(7, 8);
  b.AddEdge(4, 9);
  b.AddEdge(9, 3);
  b.AddEdge(9, 15);
  b.AddEdge(9, 8);
  b.AddEdge(3, 6);
  b.AddEdge(15, 6);
  b.AddEdge(6, 11);
  b.AddEdge(6, 13);
  b.AddEdge(6, 14);
  b.AddEdge(10, 12);
  b.AddEdge(12, 11);
  b.AddEdge(12, 13);
  return *b.Build();
}

/// The five queries of Fig 1.
inline std::vector<PathQuery> PaperFigure1Queries() {
  return {
      {0, 11, 5},  // q0
      {2, 13, 5},  // q1
      {5, 12, 5},  // q2
      {4, 14, 4},  // q3
      {9, 14, 3},  // q4
  };
}

}  // namespace hcpath

#endif  // HCPATH_TESTS_TEST_GRAPHS_H_
