#include "core/enumerator.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/graph_builder.h"
#include "test_graphs.h"

namespace hcpath {
namespace {

TEST(Enumerator, RunsWithoutSink) {
  Graph g = PaperFigure1Graph();
  BatchPathEnumerator enumerator(g);
  BatchOptions opt;
  auto result = enumerator.Run(PaperFigure1Queries(), opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->path_counts,
            (std::vector<uint64_t>{3, 3, 1, 2, 2}));
  EXPECT_EQ(result->TotalPaths(), 11u);
}

TEST(Enumerator, CountsMatchSink) {
  Graph g = PaperFigure1Graph();
  BatchPathEnumerator enumerator(g);
  BatchOptions opt;
  opt.algorithm = Algorithm::kBasicEnum;
  CollectingSink sink(5);
  auto result = enumerator.Run(PaperFigure1Queries(), opt, &sink);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result->path_counts[i], sink.paths(i).size());
  }
}

TEST(Enumerator, PropagatesValidationErrors) {
  Graph g = PaperFigure1Graph();
  BatchPathEnumerator enumerator(g);
  BatchOptions opt;
  for (Algorithm algo :
       {Algorithm::kPathEnum, Algorithm::kBasicEnum,
        Algorithm::kBatchEnum}) {
    opt.algorithm = algo;
    auto result = enumerator.Run({{0, 0, 3}}, opt);
    EXPECT_FALSE(result.ok()) << AlgorithmName(algo);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(Enumerator, EmptyBatchIsFine) {
  Graph g = PaperFigure1Graph();
  BatchPathEnumerator enumerator(g);
  BatchOptions opt;
  auto result = enumerator.Run({}, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->path_counts.empty());
}

/// Regression: RemapFor cached purely on RemapMode, so assigning a rebuilt
/// graph into the referenced object between Run calls kept translating
/// queries and paths through the DEAD graph's renumbering — silently wrong
/// counts. The cache is now keyed on Graph::version() too.
TEST(Enumerator, RemapSurvivesGraphReassignment) {
  for (Algorithm algo : {Algorithm::kPathEnum, Algorithm::kBatchEnumPlus}) {
    Graph g = PaperFigure1Graph();
    BatchPathEnumerator enumerator(g);
    BatchOptions opt;
    opt.algorithm = algo;
    opt.remap_mode = RemapMode::kDegree;  // non-identity renumbering

    auto before = enumerator.Run(PaperFigure1Queries(), opt);
    ASSERT_TRUE(before.ok());
    EXPECT_EQ(before->path_counts, (std::vector<uint64_t>{3, 3, 1, 2, 2}));

    // Mutate the graph object behind the enumerator's reference: drop
    // 9->3 (kills two of query 0's three paths) by rebuilding.
    std::vector<EdgeUpdate> batch = {EdgeUpdate::Remove(9, 3)};
    g = *GraphBuilder::ApplyUpdates(g, batch);

    auto after = enumerator.Run(PaperFigure1Queries(), opt);
    ASSERT_TRUE(after.ok()) << AlgorithmName(algo);
    // Oracle: a fresh enumerator over the mutated graph.
    BatchPathEnumerator fresh(g);
    auto oracle = fresh.Run(PaperFigure1Queries(), opt);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(after->path_counts, oracle->path_counts) << AlgorithmName(algo);
    EXPECT_NE(after->path_counts, before->path_counts)
        << "update must be observable";
  }
}

TEST(Enumerator, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kPathEnum), "PathEnum");
  EXPECT_STREQ(AlgorithmName(Algorithm::kBasicEnum), "BasicEnum");
  EXPECT_STREQ(AlgorithmName(Algorithm::kBasicEnumPlus), "BasicEnum+");
  EXPECT_STREQ(AlgorithmName(Algorithm::kBatchEnum), "BatchEnum");
  EXPECT_STREQ(AlgorithmName(Algorithm::kBatchEnumPlus), "BatchEnum+");
}

TEST(Enumerator, ParseAlgorithm) {
  EXPECT_EQ(*ParseAlgorithm("pathenum"), Algorithm::kPathEnum);
  EXPECT_EQ(*ParseAlgorithm("basic"), Algorithm::kBasicEnum);
  EXPECT_EQ(*ParseAlgorithm("basic+"), Algorithm::kBasicEnumPlus);
  EXPECT_EQ(*ParseAlgorithm("batch"), Algorithm::kBatchEnum);
  EXPECT_EQ(*ParseAlgorithm("batch+"), Algorithm::kBatchEnumPlus);
  EXPECT_EQ(*ParseAlgorithm("BatchEnum+"), Algorithm::kBatchEnumPlus);
  EXPECT_FALSE(ParseAlgorithm("bogus").ok());
}

}  // namespace
}  // namespace hcpath
