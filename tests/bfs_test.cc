#include "bfs/bfs.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace hcpath {
namespace {

TEST(HopCappedBfs, DistancesOnPathGraph) {
  auto g = GeneratePath(6);  // 0 -> 1 -> ... -> 5
  VertexDistMap d = HopCappedBfs(*g, 0, 3, Direction::kForward);
  EXPECT_EQ(d.Lookup(0), 0);
  EXPECT_EQ(d.Lookup(1), 1);
  EXPECT_EQ(d.Lookup(3), 3);
  EXPECT_EQ(d.Lookup(4), kUnreachable);  // beyond the cap
}

TEST(HopCappedBfs, BackwardUsesReverseEdges) {
  auto g = GeneratePath(5);
  VertexDistMap d = HopCappedBfs(*g, 4, 10, Direction::kBackward);
  EXPECT_EQ(d.Lookup(0), 4);
  EXPECT_EQ(d.Lookup(4), 0);
  VertexDistMap fwd = HopCappedBfs(*g, 4, 10, Direction::kForward);
  EXPECT_EQ(fwd.Lookup(0), kUnreachable);
}

TEST(HopCappedBfs, DenseMatchesSparse) {
  Rng rng(1);
  auto g = GenerateErdosRenyi(300, 2000, rng);
  for (VertexId s : {0u, 7u, 299u}) {
    VertexDistMap sparse = HopCappedBfs(*g, s, 4, Direction::kForward);
    std::vector<Hop> dense =
        HopCappedBfsDense(*g, s, 4, Direction::kForward);
    for (VertexId v = 0; v < g->NumVertices(); ++v) {
      EXPECT_EQ(sparse.Lookup(v), dense[v]) << "s=" << s << " v=" << v;
    }
  }
}

TEST(HopCappedBfs, ZeroCapOnlySource) {
  auto g = GeneratePath(3);
  VertexDistMap d = HopCappedBfs(*g, 0, 0, Direction::kForward);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.Lookup(0), 0);
}

TEST(ReachableWithin, Basic) {
  auto g = GeneratePath(5);
  EXPECT_TRUE(ReachableWithin(*g, 0, 4, 4));
  EXPECT_FALSE(ReachableWithin(*g, 0, 4, 3));
  EXPECT_FALSE(ReachableWithin(*g, 4, 0, 10));
  EXPECT_TRUE(ReachableWithin(*g, 2, 2, 0));  // trivially reachable
  EXPECT_FALSE(ReachableWithin(*g, 0, 99, 5));  // out of range
}

TEST(VertexDistMap, InsertMinKeepsSmaller) {
  VertexDistMap m;
  m.InsertMin(5, 3);
  m.InsertMin(5, 1);
  m.InsertMin(5, 2);
  EXPECT_EQ(m.Lookup(5), 1);
  EXPECT_EQ(m.size(), 1u);
}

TEST(VertexDistMap, GrowsBeyondInitialCapacity) {
  VertexDistMap m;
  for (VertexId v = 0; v < 10000; ++v) m.InsertMin(v, v % 250);
  EXPECT_EQ(m.size(), 10000u);
  EXPECT_EQ(m.Lookup(9999), 9999 % 250);
  EXPECT_EQ(m.Lookup(12345), kUnreachable);
}

TEST(VertexDistMap, SortedKeysAscendingAndCached) {
  VertexDistMap m;
  m.InsertMin(9, 1);
  m.InsertMin(3, 1);
  m.InsertMin(7, 1);
  const auto& keys = m.SortedKeys();
  EXPECT_EQ(keys, (std::vector<VertexId>{3, 7, 9}));
  m.InsertMin(1, 1);
  EXPECT_EQ(m.SortedKeys().front(), 1u);  // cache invalidated by insert
}

TEST(VertexDistMap, ForEachVisitsAll) {
  VertexDistMap m;
  m.InsertMin(2, 5);
  m.InsertMin(4, 6);
  size_t count = 0;
  Hop sum = 0;
  m.ForEach([&](VertexId, Hop d) {
    ++count;
    sum = static_cast<Hop>(sum + d);
  });
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(sum, 11);
}

TEST(VertexDistMap, EmptyMapLooksUpUnreachable) {
  VertexDistMap m;
  EXPECT_EQ(m.Lookup(0), kUnreachable);
  EXPECT_EQ(m.Lookup(123456), kUnreachable);
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.IsDense());
}

TEST(VertexDistMap, ConvertsToDenseAtOneEighthOfUniverse) {
  VertexDistMap m;
  m.SetUniverse(64);
  for (VertexId v = 0; v < 7; ++v) m.InsertMin(v * 2, static_cast<Hop>(v));
  EXPECT_FALSE(m.IsDense());
  m.InsertMin(60, 9);  // 8th entry of a 64-vertex universe: 1/8 threshold
  EXPECT_TRUE(m.IsDense());
  // Behavior is unchanged across the conversion.
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(m.Lookup(v * 2), v);
  EXPECT_EQ(m.Lookup(60), 9);
  EXPECT_EQ(m.Lookup(1), kUnreachable);
  EXPECT_EQ(m.Lookup(63), kUnreachable);
  EXPECT_EQ(m.size(), 8u);
  m.InsertMin(60, 3);
  EXPECT_EQ(m.Lookup(60), 3);  // InsertMin still keeps the smaller value
  EXPECT_EQ(m.size(), 8u);
  const auto& keys = m.SortedKeys();
  ASSERT_EQ(keys.size(), 8u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(VertexDistMap, DenseForEachAndReserve) {
  VertexDistMap m;
  m.SetUniverse(32);
  m.Reserve(16);  // expectation > 32/8 converts immediately
  EXPECT_TRUE(m.IsDense());
  m.InsertMin(31, 2);
  m.InsertMin(0, 1);
  size_t count = 0;
  m.ForEach([&](VertexId, Hop) { ++count; });
  EXPECT_EQ(count, 2u);
}

TEST(VertexDistMap, ReserveOnDenseMapIsHarmless) {
  VertexDistMap m;
  m.SetUniverse(32);
  for (VertexId v = 0; v < 4; ++v) m.InsertMin(v, 1);  // converts at 4*8>=32
  ASSERT_TRUE(m.IsDense());
  m.Reserve(2);  // small expectation must not resurrect the hash backing
  EXPECT_TRUE(m.IsDense());
  EXPECT_EQ(m.size(), 4u);
  EXPECT_EQ(m.Lookup(3), 1);
}

TEST(VertexDistMap, CopyAndMovePreserveLookups) {
  VertexDistMap m;
  for (VertexId v = 0; v < 100; ++v) m.InsertMin(v * 3, 2);
  VertexDistMap copy = m;
  EXPECT_EQ(copy.Lookup(99), 2);
  EXPECT_EQ(copy.Lookup(1), kUnreachable);
  VertexDistMap moved = std::move(m);
  EXPECT_EQ(moved.Lookup(99), 2);
  EXPECT_EQ(moved.size(), 100u);
  VertexDistMap empty_moved = std::move(copy);
  VertexDistMap copy2 = empty_moved;
  EXPECT_EQ(copy2.Lookup(99), 2);
}

}  // namespace
}  // namespace hcpath
