#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/histogram.h"

namespace hcpath {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CsvWriter, WritesRowsAndEscapes) {
  std::string path = ::testing::TempDir() + "/out.csv";
  CsvWriter csv(path);
  ASSERT_TRUE(csv.status().ok());
  csv.Row("dataset", "time_s", "note");
  csv.Row("EP", 1.5, "has,comma");
  csv.Row("SL", int64_t{42}, "quote\"inside");
  ASSERT_TRUE(csv.Close().ok());
  std::string content = ReadAll(path);
  EXPECT_EQ(content,
            "dataset,time_s,note\n"
            "EP,1.5,\"has,comma\"\n"
            "SL,42,\"quote\"\"inside\"\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, BadPathReportsIOError) {
  CsvWriter csv("/nonexistent-dir-xyz/file.csv");
  EXPECT_FALSE(csv.status().ok());
  EXPECT_EQ(csv.status().code(), StatusCode::kIOError);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 3.0);
  EXPECT_NEAR(h.Stddev(), 1.5811, 1e-3);
}

TEST(Histogram, PercentileEdges) {
  Histogram h;
  h.Add(10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 10.0);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.Add(1.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h;
  h.Add(2.0);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
  Histogram empty;
  EXPECT_EQ(empty.Summary(), "n=0");
}

}  // namespace
}  // namespace hcpath
