// End-to-end smoke test: every algorithm agrees with the brute-force
// oracle on a small random graph.

#include <gtest/gtest.h>

#include "hcpath/hcpath.h"

namespace hcpath {
namespace {

TEST(Smoke, AllAlgorithmsAgreeOnSmallGraph) {
  Rng rng(7);
  auto g = GenerateErdosRenyi(60, 300, rng);
  ASSERT_TRUE(g.ok()) << g.status();

  auto queries = [&]() {
    std::vector<PathQuery> qs;
    Rng qrng(11);
    while (qs.size() < 8) {
      VertexId s = static_cast<VertexId>(qrng.NextBounded(60));
      VertexId t = static_cast<VertexId>(qrng.NextBounded(60));
      if (s == t) continue;
      qs.push_back({s, t, 5});
    }
    return qs;
  }();

  // Oracle counts.
  std::vector<uint64_t> expected;
  for (const PathQuery& q : queries) {
    auto paths = BruteForcePaths(*g, q);
    ASSERT_TRUE(paths.ok()) << paths.status();
    expected.push_back(paths->size());
  }

  BatchPathEnumerator enumerator(*g);
  for (Algorithm algo :
       {Algorithm::kPathEnum, Algorithm::kBasicEnum,
        Algorithm::kBasicEnumPlus, Algorithm::kBatchEnum,
        Algorithm::kBatchEnumPlus}) {
    BatchOptions opt;
    opt.algorithm = algo;
    auto result = enumerator.Run(queries, opt);
    ASSERT_TRUE(result.ok()) << result.status();
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(result->path_counts[i], expected[i])
          << AlgorithmName(algo) << " disagrees on query " << i << " "
          << queries[i].ToString();
    }
  }
}

}  // namespace
}  // namespace hcpath
